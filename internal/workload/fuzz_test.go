package workload

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// FuzzEmpiricalCDF feeds NewEmpiricalCDF both arbitrary anchor points (the
// validator must reject or fully tame them — never panic, never accept a
// non-monotone or non-finite CDF) and normalized always-valid point sets
// derived from the same bytes (the constructor must accept them, and
// sampling must respect the quantile bounds: every draw lands in
// [1, max anchor], the mean is finite and positive, and Scaled copies stay
// valid). CI runs this alongside the wire-codec fuzz targets.
func FuzzEmpiricalCDF(f *testing.F) {
	// Seeds: encodings of the two shipped distributions plus edge shapes.
	f.Add(encodePoints(WebSearch().points))
	f.Add(encodePoints(DataMining().points))
	f.Add(encodePoints([]CDFPoint{{1, 0.5}, {1, 1}}))    // flat, tiny
	f.Add(encodePoints([]CDFPoint{{0.25, 0.5}, {2, 1}})) // sub-byte anchor
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Fuzz(func(t *testing.T, b []byte) {
		checkRaw(t, b)
		checkNormalized(t, b)
	})
}

// encodePoints serializes anchors as little-endian float64 pairs.
func encodePoints(pts []CDFPoint) []byte {
	out := make([]byte, 0, len(pts)*16)
	for _, p := range pts {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.Bytes))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.Prob))
	}
	return out
}

// checkRaw decodes the bytes as raw float pairs; the validator sees
// arbitrary values (NaN, infinities, non-monotone runs) and must reject
// anything that would break sampling.
func checkRaw(t *testing.T, b []byte) {
	var pts []CDFPoint
	for len(b) >= 16 {
		pts = append(pts, CDFPoint{
			Bytes: math.Float64frombits(binary.LittleEndian.Uint64(b)),
			Prob:  math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		})
		b = b[16:]
	}
	c, err := NewEmpiricalCDF("fuzz-raw", pts)
	if err != nil {
		return
	}
	// Accepted: the validator vouched for monotone, finite, (0,1]-bounded
	// anchors ending at exactly 1. Verify it did not lie.
	for i, p := range pts {
		if !(p.Bytes > 0) || math.IsInf(p.Bytes, 1) || !(p.Prob > 0) || p.Prob > 1 {
			t.Fatalf("validator accepted out-of-range point %d: %+v", i, p)
		}
		if i > 0 && (p.Prob <= pts[i-1].Prob || p.Bytes < pts[i-1].Bytes) {
			t.Fatalf("validator accepted non-monotone point %d: %+v after %+v", i, p, pts[i-1])
		}
	}
	checkQuantiles(t, c, pts)
}

// checkNormalized turns the same bytes into an always-valid CDF (positive
// strictly-increasing probabilities rescaled to end at exactly 1,
// non-decreasing positive sizes) that the constructor must accept.
func checkNormalized(t *testing.T, b []byte) {
	n := len(b) / 6
	if n < 2 {
		return
	}
	cum := make([]float64, n)
	bytesAt := make([]float64, n)
	total := 0.0
	size := 0.0
	for i := 0; i < n; i++ {
		chunk := b[i*6 : i*6+6]
		// Probability deltas in [1, 1024]; sizes accumulate in [0.5, ~1e9].
		total += float64(binary.LittleEndian.Uint16(chunk)%1024) + 1
		cum[i] = total
		size += float64(binary.LittleEndian.Uint32(chunk[2:]) % 1_000_000)
		bytesAt[i] = size + 0.5
	}
	pts := make([]CDFPoint, n)
	for i := range pts {
		pts[i] = CDFPoint{Bytes: bytesAt[i], Prob: cum[i] / total}
	}
	pts[n-1].Prob = 1 // cum[n-1]/total is 1.0 exactly, but be explicit
	c, err := NewEmpiricalCDF("fuzz-normalized", pts)
	if err != nil {
		t.Fatalf("constructor rejected a valid normalized CDF: %v\npoints: %+v", err, pts)
	}
	checkQuantiles(t, c, pts)

	for _, factor := range []float64{0.5, 1e-7, 3} {
		sc := c.Scaled(factor) // must not panic: scaling preserves validity
		if got := len(sc.points); got != n {
			t.Fatalf("Scaled(%v) has %d points, want %d", factor, got, n)
		}
	}
}

// checkQuantiles drives sampling and the mean estimate over an accepted CDF
// and asserts the inverse-transform bounds.
func checkQuantiles(t *testing.T, c *EmpiricalCDF, pts []CDFPoint) {
	maxBytes := pts[len(pts)-1].Bytes
	// Interpolation below the first anchor starts at 1 byte, so the upper
	// bound is max(1, last anchor); +1 absorbs the int64 truncation edge.
	upper := int64(math.Max(1, maxBytes)) + 1
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		s := c.Sample(rng)
		if s < 1 || s > upper {
			t.Fatalf("sample %d out of [1, %d] (max anchor %v)", s, upper, maxBytes)
		}
	}
	mean := c.Mean()
	if math.IsNaN(mean) || math.IsInf(mean, 0) || mean <= 0 {
		t.Fatalf("mean %v not finite-positive", mean)
	}
	if mean > math.Max(1, maxBytes)*1.0001 {
		t.Fatalf("mean %v exceeds max anchor %v", mean, maxBytes)
	}
}
