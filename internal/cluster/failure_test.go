package cluster

import (
	"testing"

	"clove/internal/packet"
	"clove/internal/sim"
)

// TestMidRunFailureWithRediscovery drives steady Clove-ECN traffic, fails a
// trunk mid-run, and verifies (a) everything still completes, (b) the
// prober re-installed path sets after the change, and (c) the weights
// shifted away from the surviving S2 bottleneck.
func TestMidRunFailureWithRediscovery(t *testing.T) {
	c := New(Config{
		Seed:          41,
		Topo:          smallTopo(),
		Scheme:        SchemeCloveECN,
		UseProber:     true,
		ProbeInterval: 10 * sim.Millisecond,
	})

	var pairs [][2]packet.HostID
	for i := 0; i < 4; i++ {
		pairs = append(pairs,
			[2]packet.HostID{packet.HostID(i), packet.HostID(4 + i)},
			[2]packet.HostID{packet.HostID(4 + i), packet.HostID(i)})
	}
	c.SetupPaths(pairs)

	// Continuous chains of 1MB jobs with gaps, so flowlets keep forming.
	completed := 0
	for i := 0; i < 4; i++ {
		conn := c.OpenConn(packet.HostID(i), packet.HostID(4+i), 0)
		var chain func()
		chain = func() {
			conn.StartJob(1_000_000, func(sim.Time) {
				completed++
				c.Sim.After(100*sim.Microsecond, chain)
			})
		}
		c.Sim.At(2*sim.Millisecond, chain)
	}

	c.Sim.At(40*sim.Millisecond, c.LS.FailPaperLink)
	c.Sim.RunUntil(120 * sim.Millisecond)

	if completed < 20 {
		t.Fatalf("only %d jobs completed through the failure", completed)
	}
	// The prober must have run multiple rounds, including post-failure.
	var updates int64
	for _, pr := range c.Probers {
		updates += pr.Stats().PathSetUpdates
	}
	if updates < 8 {
		t.Errorf("path set updates = %d, want several rounds", updates)
	}
	// Traffic through the degraded spine should be lighter than via S1
	// after the failure window.
	var viaS1, viaS2 int64
	for _, name := range []string{"L1->S1#0", "L1->S1#1"} {
		viaS1 += c.LS.LinkByName(name).Stats().TxBytes
	}
	for _, name := range []string{"L1->S2#0", "L1->S2#1"} {
		viaS2 += c.LS.LinkByName(name).Stats().TxBytes
	}
	if viaS2 >= viaS1 {
		t.Errorf("load not shifted off degraded spine: S1=%dMB S2=%dMB", viaS1/1e6, viaS2/1e6)
	}
}

// TestFailureWithoutRediscoveryStillCompletes verifies correctness (not
// performance) when discovery never reruns: stale port sets still map to
// valid paths because ECMP routes around the failure.
func TestFailureWithoutRediscoveryStillCompletes(t *testing.T) {
	c := New(Config{Seed: 42, Topo: smallTopo(), Scheme: SchemeCloveECN})
	c.SetupPaths([][2]packet.HostID{{0, 4}, {4, 0}})
	conn := c.OpenConn(0, 4, 0)
	done := 0
	for i := 0; i < 5; i++ {
		conn.StartJob(500_000, func(sim.Time) { done++ })
	}
	c.Sim.At(2*sim.Millisecond, c.LS.FailPaperLink)
	c.Sim.RunUntil(5 * sim.Second)
	if done != 5 {
		t.Errorf("completed %d/5 with stale paths after failure", done)
	}
}

// TestLinkRevivalRestoresCapacity fails and revives the trunk and checks
// the fabric returns to full-rate operation.
func TestLinkRevivalRestoresCapacity(t *testing.T) {
	c := New(Config{Seed: 43, Topo: smallTopo(), Scheme: SchemeEdgeFlowlet})
	conn := c.OpenConn(0, 4, 0)
	done := false
	c.Sim.At(0, c.LS.FailPaperLink)
	c.Sim.At(sim.Millisecond, func() { c.LS.SetLinkPairUp("L2", "S2", 0, true) })
	c.Sim.At(2*sim.Millisecond, func() {
		conn.StartJob(2_000_000, func(sim.Time) { done = true })
	})
	c.Sim.RunUntil(5 * sim.Second)
	if !done {
		t.Fatal("transfer did not complete after revival")
	}
	// All four spine trunks should be live routes again.
	if got := len(c.LS.Spines[1].NextHops(4)); got != 2 {
		t.Errorf("S2 routes after revival = %d", got)
	}
}
