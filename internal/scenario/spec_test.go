package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// baseSpec is a minimal valid spec with defaults applied; each validation
// case mutates one field and asserts the exact error message.
func baseSpec() *Spec {
	sp := &Spec{
		Name:     "test-scn",
		Topology: TopologySpec{K: 4},
		Workload: WorkloadSpec{Load: 0.5, TotalJobs: 100, Mix: MixFractions{WebSearch: 1}},
		Schemes:  []string{"ecmp"},
	}
	sp.ApplyDefaults()
	return sp
}

func link(a, b string, trunk int) *LinkRef { return &LinkRef{A: a, B: b, Trunk: trunk} }

// TestValidateErrorMessages pins every validation error path with its exact
// message: the messages are API (scenario authors debug against them).
func TestValidateErrorMessages(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"bad name", func(s *Spec) { s.Name = "Bad Name" },
			`scenario: name must be 1-64 chars of [a-z0-9-], got "Bad Name"`},
		{"empty name", func(s *Spec) { s.Name = "" },
			`scenario: name must be 1-64 chars of [a-z0-9-], got ""`},
		{"k odd", func(s *Spec) { s.Topology.K = 3 },
			`scenario "test-scn": topology.k must be a positive even number <= 64, got 3`},
		{"k zero", func(s *Spec) { s.Topology.K = 0 },
			`scenario "test-scn": topology.k must be a positive even number <= 64, got 0`},
		{"k huge", func(s *Spec) { s.Topology.K = 66 },
			`scenario "test-scn": topology.k must be a positive even number <= 64, got 66`},
		{"hosts out of range", func(s *Spec) { s.Topology.HostsPerLeaf = 65 },
			`scenario "test-scn": topology.hosts_per_leaf must be in [1, 64], got 65`},
		{"trunks out of range", func(s *Spec) { s.Topology.TrunksPerPair = 9 },
			`scenario "test-scn": topology.trunks_per_pair must be in [1, 8], got 9`},
		{"oversubscription negative", func(s *Spec) { s.Topology.Oversubscription = -1 },
			`scenario "test-scn": topology.oversubscription must be in (0, 64], got -1`},
		{"host_gbps out of range", func(s *Spec) { s.Topology.HostGbps = 1001 },
			`scenario "test-scn": topology.host_gbps must be in (0, 1000], got 1001`},
		{"rate_scale out of range", func(s *Spec) { s.Topology.RateScale = 2 },
			`scenario "test-scn": topology.rate_scale must be in (0, 1], got 2`},
		{"edge delay out of range", func(s *Spec) { s.Topology.EdgeDelayUs = -5 },
			`scenario "test-scn": topology.edge_delay_us must be in (0, 10000], got -5`},
		{"fabric delay out of range", func(s *Spec) { s.Topology.FabricDelayUs = 20000 },
			`scenario "test-scn": topology.fabric_delay_us must be in (0, 10000], got 20000`},
		{"scaled host rate too low", func(s *Spec) { s.Topology.HostGbps = 0.05 },
			`scenario "test-scn": topology: scaled host rate 500000 bps below 1000000 (raise host_gbps or rate_scale)`},
		{"scaled trunk rate too low", func(s *Spec) {
			s.Topology.HostsPerLeaf = 1
			s.Topology.Oversubscription = 64
		}, `scenario "test-scn": topology: scaled trunk rate 781250 bps below 1000000 (check oversubscription)`},
		{"load out of range", func(s *Spec) { s.Workload.Load = 1.5 },
			`scenario "test-scn": workload.load must be in (0, 1], got 1.5`},
		{"load zero", func(s *Spec) { s.Workload.Load = 0 },
			`scenario "test-scn": workload.load must be in (0, 1], got 0`},
		{"jobs out of range", func(s *Spec) { s.Workload.TotalJobs = 0 },
			`scenario "test-scn": workload.total_jobs must be in [1, 1000000], got 0`},
		{"size_scale out of range", func(s *Spec) { s.Workload.SizeScale = 11 },
			`scenario "test-scn": workload.size_scale must be in (0, 10], got 11`},
		{"mix fraction negative", func(s *Spec) { s.Workload.Mix.RPC = -0.5 },
			`scenario "test-scn": workload.mix.rpc must be in [0, 1], got -0.5`},
		{"mix fractions not summing", func(s *Spec) { s.Workload.Mix = MixFractions{WebSearch: 0.5} },
			`scenario "test-scn": workload.mix fractions must sum to 1, got 0.5`},
		{"mix fractions over 1", func(s *Spec) { s.Workload.Mix = MixFractions{WebSearch: 0.8, Incast: 0.4} },
			`scenario "test-scn": workload.mix fractions must sum to 1, got 1.2000000000000002`},
		{"incast fanout too large", func(s *Spec) { s.Workload.IncastFanout = 3 },
			`scenario "test-scn": workload.incast_fanout must be in [0, hosts_per_leaf=2], got 3`},
		{"incast bytes out of range", func(s *Spec) { s.Workload.IncastBytes = 0 },
			`scenario "test-scn": workload.incast_bytes must be in [1, 1e12], got 0`},
		{"ml bytes out of range", func(s *Spec) { s.Workload.MLBytes = -1 },
			`scenario "test-scn": workload.ml_bytes must be in [1, 1e12], got -1`},
		{"max time out of range", func(s *Spec) { s.Workload.MaxTimeMs = 4_000_000 },
			`scenario "test-scn": workload.max_time_ms must be in (0, 3600000], got 4e+06`},
		{"warmup out of range", func(s *Spec) { s.Workload.WarmupMs = 70000 },
			`scenario "test-scn": workload.warmup_ms must be in [0, max_time_ms], got 70000`},
		{"no schemes", func(s *Spec) { s.Schemes = nil },
			`scenario "test-scn": at least one scheme required`},
		{"unknown scheme", func(s *Spec) { s.Schemes = []string{"wrr"} },
			`scenario "test-scn": unknown scheme "wrr"`},
		{"duplicate scheme", func(s *Spec) { s.Schemes = []string{"ecmp", "ecmp"} },
			`scenario "test-scn": duplicate scheme "ecmp"`},
		{"too many seeds", func(s *Spec) { s.Seeds = make([]int64, 17) },
			`scenario "test-scn": at most 16 seeds, got 17`},
		{"timestamp negative", func(s *Spec) {
			s.Events = []EventSpec{{AtMs: -1, Type: EventLinkDown, Link: link("L1", "S1", 0)}}
		}, `scenario "test-scn": events[0]: at_ms -1 outside [0, 60000]`},
		{"timestamp past window", func(s *Spec) {
			s.Events = []EventSpec{{AtMs: 99999, Type: EventLinkDown, Link: link("L1", "S1", 0)}}
		}, `scenario "test-scn": events[0]: at_ms 99999 outside [0, 60000]`},
		{"unknown event type", func(s *Spec) {
			s.Events = []EventSpec{{AtMs: 1, Type: "reboot"}}
		}, `scenario "test-scn": events[0]: unknown event type "reboot"`},
		{"link event without link", func(s *Spec) {
			s.Events = []EventSpec{{AtMs: 1, Type: EventLinkDown}}
		}, `scenario "test-scn": events[0]: link-down requires a link`},
		{"link not in topology", func(s *Spec) {
			s.Events = []EventSpec{{AtMs: 1, Type: EventLinkUp, Link: link("L1", "S9", 0)}}
		}, `scenario "test-scn": events[0]: no link L1-S9#0 in this topology`},
		{"trunk index out of range", func(s *Spec) {
			s.Events = []EventSpec{{AtMs: 1, Type: EventLinkDown, Link: link("L2", "S1", 1)}}
		}, `scenario "test-scn": events[0]: no link L2-S1#1 in this topology`},
		{"link-rate bad rate", func(s *Spec) {
			s.Events = []EventSpec{{AtMs: 1, Type: EventLinkRate, Link: link("L1", "S1", 0)}}
		}, `scenario "test-scn": events[0]: rate_gbps must be in (0, 1000], got 0`},
		{"link-rate scaled too low", func(s *Spec) {
			s.Events = []EventSpec{{AtMs: 1, Type: EventLinkRate, Link: link("L1", "S1", 0), RateGbps: 0.01}}
		}, `scenario "test-scn": events[0]: scaled link rate 100000 bps below 1000000`},
		{"switch not a spine", func(s *Spec) {
			s.Events = []EventSpec{{AtMs: 1, Type: EventSwitchDown, Switch: "L1"}}
		}, `scenario "test-scn": events[0]: switch "L1" is not a spine of this topology`},
		{"load-scale bad scale", func(s *Spec) {
			s.Events = []EventSpec{{AtMs: 1, Type: EventLoadScale, Scale: -2}}
		}, `scenario "test-scn": events[0]: scale must be in (0, 100], got -2`},
		{"storm without block", func(s *Spec) {
			s.Events = []EventSpec{{AtMs: 1, Type: EventStorm}}
		}, `scenario "test-scn": events[0]: storm requires a storm block`},
		{"storm without links", func(s *Spec) {
			s.Events = []EventSpec{{AtMs: 1, Type: EventStorm, Storm: &StormSpec{PeriodMs: 10, DurationMs: 100}}}
		}, `scenario "test-scn": events[0]: storm needs at least one link`},
		{"storm zero duration", func(s *Spec) {
			s.Events = []EventSpec{{AtMs: 1, Type: EventStorm,
				Storm: &StormSpec{Links: []LinkRef{*link("L1", "S1", 0)}, PeriodMs: 10}}}
		}, `scenario "test-scn": events[0]: storm duration_ms must be positive, got 0`},
		{"storm period over duration", func(s *Spec) {
			s.Events = []EventSpec{{AtMs: 1, Type: EventStorm,
				Storm: &StormSpec{Links: []LinkRef{*link("L1", "S1", 0)}, PeriodMs: 200, DurationMs: 100}}}
		}, `scenario "test-scn": events[0]: storm period_ms must be in (0, duration_ms], got 200`},
		{"storm past window", func(s *Spec) {
			s.Events = []EventSpec{{AtMs: 59500, Type: EventStorm,
				Storm: &StormSpec{Links: []LinkRef{*link("L1", "S1", 0)}, PeriodMs: 100, DurationMs: 1000}}}
		}, `scenario "test-scn": events[0]: storm extends past workload window: 59500 + 1000 > 60000`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := baseSpec()
			tc.mutate(sp)
			err := sp.Validate()
			if err == nil {
				t.Fatalf("Validate accepted invalid spec, want %q", tc.want)
			}
			if err.Error() != tc.want {
				t.Errorf("error mismatch:\n got: %s\nwant: %s", err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsBase(t *testing.T) {
	if err := baseSpec().Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}
}

// TestParseRejections covers decode-level failures before validation.
func TestParseRejections(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string // substring
	}{
		{"not json", "nope", "scenario: parse:"},
		{"unknown field", `{"name":"x","bogus":1}`, `unknown field "bogus"`},
		{"trailing data", `{"name":"a-b","topology":{"k":4},"workload":{"load":0.5,"total_jobs":10,"mix":{"web_search":1}},"schemes":["ecmp"]} {}`,
			"trailing data after spec"},
		{"wrong type", `{"name":"x","topology":{"k":"four"}}`, "scenario: parse:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.data))
			if err == nil {
				t.Fatal("Parse accepted bad input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDefaultsIdempotentAndRoundTrip: defaults applied twice equal once, and
// a parsed spec survives Marshal -> Parse unchanged (the fuzz invariant, on
// a handwritten representative).
func TestDefaultsIdempotentAndRoundTrip(t *testing.T) {
	src := `{
	  "name": "round-trip",
	  "topology": {"k": 8, "trunks_per_pair": 2, "oversubscription": 2},
	  "workload": {"load": 0.6, "total_jobs": 120, "mix": {"web_search": 0.5, "rpc": 0.25, "ml": 0.125, "incast": 0.125}},
	  "schemes": ["ecmp", "clove-ecn"],
	  "seeds": [],
	  "events": [
	    {"at_ms": 100, "type": "storm", "storm": {"links": [{"a": "L2", "b": "S1"}], "period_ms": 50, "duration_ms": 200}},
	    {"at_ms": 400, "type": "load-scale", "scale": 2}
	  ]
	}`
	sp, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	twice := sp.Clone()
	twice.ApplyDefaults()
	if !reflect.DeepEqual(sp, twice) {
		t.Errorf("ApplyDefaults not idempotent:\n once: %+v\ntwice: %+v", sp, twice)
	}
	out, err := sp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse of marshaled spec failed: %v\n%s", err, out)
	}
	if !reflect.DeepEqual(sp, sp2) {
		t.Errorf("round trip changed the spec:\n before: %+v\n after: %+v", sp, sp2)
	}
	if sp.Seeds[0] != 1 || len(sp.Seeds) != 1 {
		t.Errorf("empty seeds should default to [1], got %v", sp.Seeds)
	}
	if sp.Topology.HostsPerLeaf != 4 {
		t.Errorf("hosts_per_leaf default = %d, want k/2 = 4", sp.Topology.HostsPerLeaf)
	}
	if sp.Workload.IncastFanout != 4 {
		t.Errorf("incast_fanout default = %d, want hosts_per_leaf", sp.Workload.IncastFanout)
	}
}
