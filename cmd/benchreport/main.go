// Command benchreport runs the repository's hot-path and figure benchmarks
// in-process via testing.Benchmark, emits a machine-readable JSON baseline
// (BENCH_<n>.json), and optionally compares a fresh run against a committed
// baseline with a benchstat-style relative-mean gate.
//
// Two modes:
//
//	benchreport -out BENCH_4.json              # record a baseline
//	benchreport -baseline BENCH_4.json         # gate: exit 1 on >10% ns/op
//	                                           # regression of any gated bench
//
// Each benchmark is sampled -count times (default 3) and the report records
// the mean, minimum, and median (p50) ns/op of the samples. The gate
// compares the MINIMUM: the fastest observed run is the cleanest estimate of
// the code's cost (scheduler noise, GC pauses, and CI neighbors only ever
// add time), so min-vs-min is far less flaky than mean-vs-mean at the same
// threshold. Baselines are machine-specific: a committed baseline gates CI
// runners against each other, and local runs against a locally recorded
// file, not laptops against CI.
//
// Hot-path benches additionally hard-fail (regardless of -baseline) if they
// allocate: per-forwarded-hop and per-event allocations must be exactly 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"testing"

	"clove/internal/experiments"
	"clove/internal/netem"
	"clove/internal/packet"
	"clove/internal/sim"
)

// Report is the BENCH_<n>.json schema.
type Report struct {
	Schema  int                     `json:"schema"`
	Go      string                  `json:"go"`
	Note    string                  `json:"note"`
	Benches map[string]*BenchResult `json:"benches"`
}

// BenchResult records one benchmark's samples and their mean/min/median.
type BenchResult struct {
	NsPerOp      float64   `json:"ns_per_op"`                // mean across samples
	MinNsPerOp   float64   `json:"min_ns_per_op,omitempty"`  // fastest sample (what the gate compares)
	P50NsPerOp   float64   `json:"p50_ns_per_op,omitempty"`  // median sample
	NsPerEvent   float64   `json:"ns_per_event,omitempty"`   // min ns/op over events/op
	EventsPerSec float64   `json:"events_per_sec,omitempty"` // events/op over min ns/op
	AllocsPerOp  int64     `json:"allocs_per_op"`
	BytesPerOp   int64     `json:"bytes_per_op"`
	Samples      []float64 `json:"samples_ns_per_op"`
}

// gateNs is the number the regression gate compares: the min when present,
// else (schema-1 baselines) the min of the recorded samples, else the mean.
func (r *BenchResult) gateNs() float64 {
	if r.MinNsPerOp > 0 {
		return r.MinNsPerOp
	}
	if len(r.Samples) > 0 {
		min := r.Samples[0]
		for _, s := range r.Samples[1:] {
			if s < min {
				min = s
			}
		}
		return min
	}
	return r.NsPerOp
}

// benchSpec declares one benchmark: its body, how many simulator events one
// op corresponds to (0 = not meaningful; -1 = the bench reports "events/op"
// itself via b.ReportMetric), whether the zero-alloc contract applies, and
// whether the regression gate covers it.
type benchSpec struct {
	name            string
	run             func(b *testing.B)
	eventsPerOp     float64
	mustBeZeroAlloc bool
	gated           bool
}

// --- HotPathEventChain: the sim package's pooled scheduling path ---

type chainState struct {
	s    *sim.Simulator
	left int
}

func chainStep(a, _ any) {
	st := a.(*chainState)
	st.left--
	if st.left > 0 {
		st.s.AfterCall(sim.Microsecond, chainStep, st, nil)
	}
}

func runChain(s *sim.Simulator, st *chainState, n int) {
	st.left = n
	s.AfterCall(0, chainStep, st, nil)
	s.Run()
}

func benchEventChain(b *testing.B) {
	s := sim.New(1)
	st := &chainState{s: s}
	runChain(s, st, 100) // warm slab, heap, free list
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runChain(s, st, 100)
	}
}

// --- HotPathLinkSwitchLink: one forwarded packet hop through the fabric ---

func hotPathFabric() (*sim.Simulator, *netem.Topology, *netem.Host) {
	s := sim.New(1)
	t := netem.NewTopology(s)
	sw := t.AddSwitch("S")
	cfg := netem.LinkConfig{RateBps: 40e9, Delay: 2 * sim.Microsecond}
	src := t.AddHost("h0", sw, cfg, cfg)
	t.AddHost("h1", sw, cfg, cfg)
	t.ComputeRoutes()
	return s, t, src
}

func sendOne(s *sim.Simulator, t *netem.Topology, src *netem.Host) {
	pkt := t.Pool().Get()
	pkt.Kind = packet.KindData
	pkt.Inner = packet.FiveTuple{Src: 0, Dst: 1, SrcPort: 40000, DstPort: 80, Proto: packet.ProtoTCP}
	pkt.PayloadLen = 1460
	src.Send(pkt)
	s.Run()
}

func benchLinkSwitchLink(b *testing.B) {
	s, topo, src := hotPathFabric()
	sendOne(s, topo, src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sendOne(s, topo, src)
	}
}

// --- Fig6Quick: the parameter-sensitivity figure at quick scale ---

func benchFig6(b *testing.B) {
	sc := experiments.Quick()
	sc.Loads = []float64{0.7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig6(sc, nil)
	}
}

// --- DomainScaling: the sharded engine on the 1024-host k16 fat-tree ---

// k16Fabric builds the PR 7 scaling topology: 64 leaves x 16 hosts (1024
// hosts), 8 spines, non-oversubscribed (16x10G hosts vs 8x20G trunks),
// partitioned into 72 event domains.
func k16Fabric() (*sim.Engine, *netem.LeafSpine) {
	cfg := netem.LeafSpineConfig{
		Leaves: 64, Spines: 8, TrunksPerPair: 1, HostsPerLeaf: 16,
		HostRateBps: 10e9, TrunkRateBps: 20e9,
		LinkDelay: 5 * sim.Microsecond,
		QueueCap:  netem.DefaultQueueCap, ECNK: 20,
	}
	eng := sim.NewEngine(1, cfg.FabricDelay())
	return eng, netem.BuildLeafSpineSharded(eng, cfg)
}

// benchTraffic is one host's self-refreshing cross-leaf send chain; the
// chain event and the packet both live in the host's own domain, so the
// whole load is domain-parallel except the trunk crossings.
type benchTraffic struct {
	ls   *netem.LeafSpine
	host packet.HostID
	peer packet.HostID
	gap  sim.Time
}

func benchTrafficSend(a, _ any) {
	t := a.(*benchTraffic)
	h := t.ls.Host(t.host)
	pkt := h.Pool().Get()
	pkt.Kind = packet.KindData
	pkt.Inner = packet.FiveTuple{Src: t.host, Dst: t.peer, SrcPort: 40000, DstPort: 80, Proto: packet.ProtoTCP}
	pkt.PayloadLen = 1460
	h.Send(pkt)
	h.Domain().AfterCall(t.gap, benchTrafficSend, a, nil)
}

// benchDomainScaling drives every host at ~1 packet per 2µs (under one
// serialization time of headroom at 10G) across the k16 fabric and measures
// aggregate engine throughput: one op = one 200µs window of simulated time.
// The bench reports events/op so the report can derive events/sec.
func benchDomainScaling(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		eng, ls := k16Fabric()
		const nHosts = 64 * 16
		for i := 0; i < nHosts; i++ {
			tr := &benchTraffic{
				ls:   ls,
				host: packet.HostID(i),
				peer: packet.HostID((i + 16) % nHosts), // next leaf over
				gap:  2 * sim.Microsecond,
			}
			ls.Host(tr.host).Domain().AfterCall(sim.Time(i)%tr.gap, benchTrafficSend, tr, nil)
		}
		const window = 200 * sim.Microsecond
		until := window
		eng.Run(until, workers, nil) // warm pools, queues, and the worker pool
		b.ReportAllocs()
		start := eng.Processed()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			until += window
			eng.Run(until, workers, nil)
		}
		b.StopTimer()
		b.ReportMetric(float64(eng.Processed()-start)/float64(b.N), "events/op")
	}
}

func specs() []benchSpec {
	return []benchSpec{
		// One op = a 100-event AfterCall chain; 4 events per forwarded hop
		// (2 serializations + 2 propagations) on the link-switch-link path.
		{name: "HotPathEventChain", run: benchEventChain, eventsPerOp: 100, mustBeZeroAlloc: true, gated: true},
		{name: "HotPathLinkSwitchLink", run: benchLinkSwitchLink, eventsPerOp: 4, mustBeZeroAlloc: true, gated: true},
		{name: "Fig6Quick", run: benchFig6, gated: true},
		// The sharded-engine scaling series (PR 7), first recorded in
		// BENCH_7.json. The serial (workers=1) run is gated — a regression
		// there is a real slowdown of the engine or the network model — while
		// W4/W8 are informational: worker counts above GOMAXPROCS time-slice
		// one core and measure only barrier overhead, so scaling deltas are
		// only meaningful compared on the same multi-core host.
		{name: "DomainScalingW1", run: benchDomainScaling(1), eventsPerOp: -1, gated: true},
		{name: "DomainScalingW4", run: benchDomainScaling(4), eventsPerOp: -1},
		{name: "DomainScalingW8", run: benchDomainScaling(8), eventsPerOp: -1},
	}
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default: stdout)")
	baseline := flag.String("baseline", "", "compare against this baseline file and exit 1 on regression")
	threshold := flag.Float64("threshold", 0.10, "relative min-ns/op regression gate (0.10 = +10%)")
	count := flag.Int("count", 3, "samples per benchmark")
	benchRe := flag.String("bench", "", "only run benchmarks whose name matches this regexp (default: all)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering all benchmark runs to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken after all benchmark runs to this file")
	flag.Parse()

	var profFile *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		profFile = f
	}

	var filter *regexp.Regexp
	if *benchRe != "" {
		re, err := regexp.Compile(*benchRe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: -bench: %v\n", err)
			os.Exit(2)
		}
		filter = re
	}

	rep := &Report{
		Schema:  2,
		Go:      runtime.Version(),
		Note:    fmt.Sprintf("mean/min/p50 of samples_ns_per_op; the gate compares min; recorded by cmd/benchreport on a single machine (GOMAXPROCS=%d) — compare like against like", runtime.GOMAXPROCS(0)),
		Benches: map[string]*BenchResult{},
	}

	failed := false
	for _, spec := range specs() {
		if filter != nil && !filter.MatchString(spec.name) {
			continue
		}
		res := &BenchResult{}
		eventsPerOp := spec.eventsPerOp
		for i := 0; i < *count; i++ {
			r := testing.Benchmark(spec.run)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			res.Samples = append(res.Samples, ns)
			res.AllocsPerOp = r.AllocsPerOp()
			res.BytesPerOp = r.AllocedBytesPerOp()
			if spec.eventsPerOp < 0 {
				eventsPerOp = r.Extra["events/op"]
			}
		}
		sorted := append([]float64(nil), res.Samples...)
		sort.Float64s(sorted)
		var sum float64
		for _, s := range sorted {
			sum += s
		}
		res.NsPerOp = sum / float64(len(sorted))
		res.MinNsPerOp = sorted[0]
		res.P50NsPerOp = sorted[(len(sorted)-1)/2]
		if eventsPerOp > 0 {
			res.NsPerEvent = res.MinNsPerOp / eventsPerOp
			res.EventsPerSec = eventsPerOp / res.MinNsPerOp * 1e9
		}
		rep.Benches[spec.name] = res
		fmt.Fprintf(os.Stderr, "%-24s %12.1f ns/op (min %12.1f)  %8d allocs/op", spec.name, res.NsPerOp, res.MinNsPerOp, res.AllocsPerOp)
		if res.NsPerEvent > 0 {
			fmt.Fprintf(os.Stderr, "  %6.1f ns/event  %6.2fM events/sec", res.NsPerEvent, res.EventsPerSec/1e6)
		}
		fmt.Fprintln(os.Stderr)
		if spec.mustBeZeroAlloc && res.AllocsPerOp != 0 {
			fmt.Fprintf(os.Stderr, "FAIL: %s allocates %d allocs/op, contract is exactly 0\n", spec.name, res.AllocsPerOp)
			failed = true
		}
	}

	if profFile != nil {
		pprof.StopCPUProfile()
		profFile.Close()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: -memprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: -memprofile: %v\n", err)
			os.Exit(2)
		}
		f.Close()
	}

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: read baseline: %v\n", err)
			os.Exit(2)
		}
		if compare(base, rep, *threshold) {
			failed = true
		}
	}

	if err := writeReport(rep, *out); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func writeReport(rep *Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// compare prints a benchstat-style old/new/delta table for every gated
// bench present in both reports and reports whether any regressed past the
// threshold. The comparison is min-vs-min (gateNs falls back to
// min-of-samples for schema-1 baselines that predate the min field);
// improvements and in-tolerance drift pass. A gated bench missing from the
// current run (e.g. filtered out by -bench) is skipped, not failed.
func compare(base, cur *Report, threshold float64) (regressed bool) {
	fmt.Fprintf(os.Stderr, "\n%-24s %14s %14s %8s\n", "name", "old min ns/op", "new min ns/op", "delta")
	for _, spec := range specs() {
		if !spec.gated {
			continue
		}
		b, okB := base.Benches[spec.name]
		c, okC := cur.Benches[spec.name]
		if !okB || !okC {
			fmt.Fprintf(os.Stderr, "%-24s missing from %s\n", spec.name,
				map[bool]string{true: "current run", false: "baseline"}[okB])
			continue
		}
		oldNs, newNs := b.gateNs(), c.gateNs()
		delta := (newNs - oldNs) / oldNs
		verdict := ""
		if delta > threshold {
			verdict = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(os.Stderr, "%-24s %14.1f %14.1f %+7.1f%%%s\n",
			spec.name, oldNs, newNs, delta*100, verdict)
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "\nFAIL: min ns/op regressed more than %.0f%% on a gated bench\n", threshold*100)
	}
	return regressed
}
