package netem

import (
	"testing"

	"clove/internal/packet"
	"clove/internal/sim"
)

// collector is a Node that records delivered packets.
type collector struct {
	id  packet.NodeID
	got []*packet.Packet
	at  []sim.Time
	s   *sim.Simulator
}

func (c *collector) ID() packet.NodeID { return c.id }
func (c *collector) Receive(p *packet.Packet, _ *Link) {
	c.got = append(c.got, p)
	if c.s != nil {
		c.at = append(c.at, c.s.Now())
	}
}

func dataPacket(src, dst packet.HostID, payload int) *packet.Packet {
	return &packet.Packet{
		Kind:       packet.KindData,
		Inner:      packet.FiveTuple{Src: src, Dst: dst, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP},
		PayloadLen: payload,
	}
}

func TestLinkDeliveryTiming(t *testing.T) {
	s := sim.New(1)
	c := &collector{id: 99, s: s}
	l := newLink(s, nil, 0, "t", 1, c, LinkConfig{RateBps: 1e9, Delay: 10 * sim.Microsecond})
	p := dataPacket(0, 1, 1000-packet.InnerHeaderLen) // 1000B on the wire
	l.Enqueue(p)
	s.Run()
	if len(c.got) != 1 {
		t.Fatalf("delivered %d packets", len(c.got))
	}
	// 1000B at 1Gbps = 8us serialization + 10us propagation = 18us.
	want := 18 * sim.Microsecond
	if c.at[0] != want {
		t.Errorf("arrival at %v, want %v", c.at[0], want)
	}
	st := l.Stats()
	if st.TxPackets != 1 || st.TxBytes != 1000 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	s := sim.New(1)
	c := &collector{id: 99, s: s}
	l := newLink(s, nil, 0, "t", 1, c, LinkConfig{RateBps: 1e9, Delay: 0})
	for i := 0; i < 3; i++ {
		l.Enqueue(dataPacket(0, 1, 1000-packet.InnerHeaderLen))
	}
	s.Run()
	if len(c.at) != 3 {
		t.Fatalf("delivered %d", len(c.at))
	}
	for i, at := range c.at {
		want := sim.Time(i+1) * 8 * sim.Microsecond
		if at != want {
			t.Errorf("packet %d at %v, want %v", i, at, want)
		}
	}
}

func TestLinkDropTail(t *testing.T) {
	s := sim.New(1)
	c := &collector{id: 99}
	l := newLink(s, nil, 0, "t", 1, c, LinkConfig{RateBps: 1e9, Delay: 0, QueueCap: 4})
	var dropped int
	l.SetOnDrop(func(*packet.Packet) { dropped++ })
	// One packet starts serializing immediately, 4 fill the queue, rest drop.
	for i := 0; i < 10; i++ {
		l.Enqueue(dataPacket(0, 1, 100))
	}
	s.Run()
	if len(c.got) != 5 {
		t.Errorf("delivered %d, want 5", len(c.got))
	}
	if dropped != 5 || l.Stats().Drops != 5 {
		t.Errorf("dropped %d (stats %d), want 5", dropped, l.Stats().Drops)
	}
}

func TestLinkECNMarking(t *testing.T) {
	s := sim.New(1)
	c := &collector{id: 99}
	l := newLink(s, nil, 0, "t", 1, c, LinkConfig{RateBps: 1e9, Delay: 0, QueueCap: 100, ECNK: 3})
	for i := 0; i < 8; i++ {
		p := dataPacket(0, 1, 100)
		p.Encap = &packet.Encap{ECT: true}
		l.Enqueue(p)
	}
	s.Run()
	// Enqueue i=0 starts tx immediately (queue len 0 at marking check);
	// i=1..3 see queue 0,1,2 -> below K=3; i=4..7 see 3,4,5,6 -> marked.
	marked := 0
	for _, p := range c.got {
		if p.CEMarked() {
			marked++
		}
	}
	if marked != 4 {
		t.Errorf("marked %d, want 4", marked)
	}
	if l.Stats().ECNMarks != 4 {
		t.Errorf("stats.ECNMarks = %d", l.Stats().ECNMarks)
	}
}

func TestLinkECNNotMarkedWhenNotECT(t *testing.T) {
	s := sim.New(1)
	c := &collector{id: 99}
	l := newLink(s, nil, 0, "t", 1, c, LinkConfig{RateBps: 1e9, Delay: 0, ECNK: 1})
	for i := 0; i < 5; i++ {
		l.Enqueue(dataPacket(0, 1, 100)) // no ECT anywhere
	}
	s.Run()
	if l.Stats().ECNMarks != 0 {
		t.Errorf("marks = %d on non-ECT traffic", l.Stats().ECNMarks)
	}
}

func TestLinkDown(t *testing.T) {
	s := sim.New(1)
	c := &collector{id: 99}
	l := newLink(s, nil, 0, "t", 1, c, LinkConfig{RateBps: 1e9, Delay: 0})
	l.SetUp(false)
	l.Enqueue(dataPacket(0, 1, 100))
	s.Run()
	if len(c.got) != 0 {
		t.Error("down link delivered a packet")
	}
	if l.Stats().DownDrops != 1 {
		t.Errorf("DownDrops = %d", l.Stats().DownDrops)
	}
	l.SetUp(true)
	l.Enqueue(dataPacket(0, 1, 100))
	s.Run()
	if len(c.got) != 1 {
		t.Error("revived link did not deliver")
	}
}

func TestLinkDownFlushesQueue(t *testing.T) {
	s := sim.New(1)
	c := &collector{id: 99}
	l := newLink(s, nil, 0, "t", 1, c, LinkConfig{RateBps: 1e6, Delay: 0}) // slow
	for i := 0; i < 5; i++ {
		l.Enqueue(dataPacket(0, 1, 100))
	}
	s.After(1, func() { l.SetUp(false) })
	s.Run()
	if len(c.got) != 0 {
		t.Errorf("delivered %d after mid-flight down", len(c.got))
	}
}

func TestDREConvergesToUtilization(t *testing.T) {
	s := sim.New(1)
	d := NewDRE(s, 1e9) // 1 Gbps
	// Feed exactly 50% of line rate for 10ms: 1 packet of 625B every 10us
	// is 0.5 Gbps... (625*8/10us = 500Mbps).
	for i := 0; i < 1000; i++ {
		at := sim.Time(i) * 10 * sim.Microsecond
		s.At(at, func() { d.Add(625) })
	}
	var got float64
	s.At(10*sim.Millisecond, func() { got = d.Utilization() })
	s.Run()
	if got < 0.4 || got > 0.6 {
		t.Errorf("utilization = %v, want ~0.5", got)
	}
}

func TestDREDecaysWhenIdle(t *testing.T) {
	s := sim.New(1)
	d := NewDRE(s, 1e9)
	s.At(0, func() { d.Add(100000) })
	var early, late float64
	s.At(sim.Microsecond, func() { early = d.Utilization() })
	s.At(50*sim.Millisecond, func() { late = d.Utilization() })
	s.Run()
	if late >= early {
		t.Errorf("DRE did not decay: early=%v late=%v", early, late)
	}
	if late > 0.001 {
		t.Errorf("DRE residual after long idle: %v", late)
	}
}

func paperScaleTopo(t *testing.T) *LeafSpine {
	t.Helper()
	s := sim.New(42)
	return BuildLeafSpine(s, PaperTestbed(0.01)) // 100M/400M links
}

func TestLeafSpineConstruction(t *testing.T) {
	ls := paperScaleTopo(t)
	if len(ls.Hosts()) != 32 || len(ls.Switches()) != 4 {
		t.Fatalf("hosts=%d switches=%d", len(ls.Hosts()), len(ls.Switches()))
	}
	// Each leaf: 2 spines * 2 trunks + 16 host downlinks = 20 egress.
	for _, lf := range ls.Leaves {
		if got := len(lf.Egress()); got != 20 {
			t.Errorf("%s egress = %d, want 20", lf.Name(), got)
		}
	}
	// Each spine: 2 leaves * 2 trunks = 4 egress.
	for _, sp := range ls.Spines {
		if got := len(sp.Egress()); got != 4 {
			t.Errorf("%s egress = %d, want 4", sp.Name(), got)
		}
	}
	if ls.BisectionBps() != int64(4*400e6) {
		t.Errorf("bisection = %d", ls.BisectionBps())
	}
}

func TestRoutingCrossLeafECMP(t *testing.T) {
	ls := paperScaleTopo(t)
	l1 := ls.Leaves[0]
	// Cross-leaf host (host 16 is on L2): 4 uplink candidates.
	nh := l1.NextHops(16)
	if len(nh) != 4 {
		t.Fatalf("L1 next-hops to h16 = %d, want 4", len(nh))
	}
	// Same-leaf host: exactly the downlink.
	nh = l1.NextHops(3)
	if len(nh) != 1 {
		t.Fatalf("L1 next-hops to h3 = %d, want 1", len(nh))
	}
	// Spine to any host: trunks to that host's leaf.
	nh = ls.Spines[0].NextHops(16)
	if len(nh) != 2 {
		t.Fatalf("S1 next-hops to h16 = %d, want 2", len(nh))
	}
}

func TestRoutingAfterFailure(t *testing.T) {
	ls := paperScaleTopo(t)
	ls.FailPaperLink()
	l1 := ls.Leaves[0]
	// All 4 L1 uplinks still lead to L2 (S2 keeps one trunk), so ECMP set
	// stays 4 wide — exactly the trap that hurts ECMP in Sec. 5.2.
	if got := len(l1.NextHops(16)); got != 4 {
		t.Errorf("L1 next-hops after failure = %d, want 4", got)
	}
	// S2 now has a single trunk to L2.
	if got := len(ls.Spines[1].NextHops(16)); got != 1 {
		t.Errorf("S2 next-hops after failure = %d, want 1", got)
	}
	// Revive.
	ls.SetLinkPairUp("L2", "S2", 0, true)
	if got := len(ls.Spines[1].NextHops(16)); got != 2 {
		t.Errorf("S2 next-hops after revival = %d, want 2", got)
	}
}

func TestEndToEndDeliveryAcrossFabric(t *testing.T) {
	ls := paperScaleTopo(t)
	src, dst := ls.Host(0), ls.Host(16)
	var got []*packet.Packet
	dst.Deliver = func(p *packet.Packet) { got = append(got, p) }
	for i := 0; i < 20; i++ {
		p := dataPacket(0, 16, 1000)
		p.Encap = &packet.Encap{SrcHyp: 0, DstHyp: 16, SrcPort: uint16(40000 + i), DstPort: 7471}
		src.Send(p)
	}
	ls.Sim.Run()
	if len(got) != 20 {
		t.Fatalf("delivered %d/20 across fabric", len(got))
	}
}

func TestECMPSpreadsAcrossPaths(t *testing.T) {
	ls := paperScaleTopo(t)
	src, dst := ls.Host(0), ls.Host(16)
	dst.Deliver = func(p *packet.Packet) {}
	paths := map[string]bool{}
	for i := 0; i < 256; i++ {
		p := dataPacket(0, 16, 100)
		p.Encap = &packet.Encap{SrcHyp: 0, DstHyp: 16, SrcPort: uint16(40000 + i), DstPort: 7471}
		p.PathTrace = []packet.LinkID{}
		src.Send(p)
		ls.Sim.Run()
		key := ""
		for _, lid := range p.PathTrace {
			key += ls.LinkByID(lid).Name() + ","
		}
		paths[key] = true
	}
	// 4 first-hop choices x 2 spine trunk choices... spine has 2 trunks to
	// L2, so up to 8 distinct paths; require at least 4 distinct.
	if len(paths) < 4 {
		t.Errorf("ECMP used only %d distinct paths", len(paths))
	}
}

func TestECMPDeterministicPerTuple(t *testing.T) {
	ls := paperScaleTopo(t)
	dst := ls.Host(16)
	dst.Deliver = func(p *packet.Packet) {}
	trace := func() string {
		p := dataPacket(0, 16, 100)
		p.Encap = &packet.Encap{SrcHyp: 0, DstHyp: 16, SrcPort: 51234, DstPort: 7471}
		p.PathTrace = []packet.LinkID{}
		ls.Host(0).Send(p)
		ls.Sim.Run()
		key := ""
		for _, lid := range p.PathTrace {
			key += ls.LinkByID(lid).Name() + ","
		}
		return key
	}
	a, b := trace(), trace()
	if a != b {
		t.Errorf("same tuple took different paths: %s vs %s", a, b)
	}
}

func TestECMPHashUniformity(t *testing.T) {
	// Distribution over 4 buckets across many source ports should be
	// roughly uniform for each seed.
	for _, seed := range []uint64{1, 0xdeadbeef, 42424242} {
		counts := make([]int, 4)
		for p := 0; p < 4000; p++ {
			t5 := packet.FiveTuple{Src: 1, Dst: 2, SrcPort: uint16(30000 + p), DstPort: 7471, Proto: packet.ProtoTCP}
			counts[hashTuple(seed, t5)%4]++
		}
		for i, c := range counts {
			if c < 800 || c > 1200 {
				t.Errorf("seed %x bucket %d: %d/4000, want ~1000", seed, i, c)
			}
		}
	}
}

func TestSwitchesHashDifferently(t *testing.T) {
	ls := paperScaleTopo(t)
	t5 := packet.FiveTuple{Src: 0, Dst: 16, SrcPort: 55555, DstPort: 7471, Proto: packet.ProtoTCP}
	a := hashTuple(ls.Leaves[0].seed, t5)
	b := hashTuple(ls.Leaves[1].seed, t5)
	if a == b {
		t.Error("two switches share a hash value for the same tuple (seeds equal?)")
	}
}

func TestProbeEchoMechanism(t *testing.T) {
	ls := paperScaleTopo(t)
	src := ls.Host(0)
	var echoes []*packet.Packet
	src.Deliver = func(p *packet.Packet) {
		if p.Kind == packet.KindProbeEcho {
			echoes = append(echoes, p)
		}
	}
	ls.Host(16).Deliver = func(p *packet.Packet) {}
	// TTL=1 expires at L1; TTL=2 at a spine; TTL=3 at L2.
	for ttl := 1; ttl <= 3; ttl++ {
		probe := &packet.Packet{
			Kind: packet.KindProbe, ProbeID: 7, ProbePort: 50001,
			TTL: ttl, HopIndex: ttl,
			Encap: &packet.Encap{SrcHyp: 0, DstHyp: 16, SrcPort: 50001, DstPort: 7471},
		}
		src.Send(probe)
	}
	ls.Sim.Run()
	if len(echoes) != 3 {
		t.Fatalf("got %d echoes, want 3", len(echoes))
	}
	byHop := map[int]*packet.Packet{}
	for _, e := range echoes {
		byHop[e.HopIndex] = e
	}
	if byHop[1] == nil || byHop[2] == nil || byHop[3] == nil {
		t.Fatalf("missing hop echoes: %v", byHop)
	}
	if byHop[1].EchoNode != ls.Leaves[0].ID() {
		t.Errorf("hop1 node = %d, want L1", byHop[1].EchoNode)
	}
	if n := byHop[2].EchoNode; n != ls.Spines[0].ID() && n != ls.Spines[1].ID() {
		t.Errorf("hop2 node = %d, want a spine", n)
	}
	if byHop[3].EchoNode != ls.Leaves[1].ID() {
		t.Errorf("hop3 node = %d, want L2", byHop[3].EchoNode)
	}
	// Hop echoes report egress consistent with actual forwarding: the hop-1
	// reported link should lead to the hop-2 node.
	l := ls.LinkByID(byHop[1].EchoLink)
	if l == nil || l.To().ID() != byHop[2].EchoNode {
		t.Error("hop1 reported egress inconsistent with hop2 switch")
	}
}

func TestINTStamping(t *testing.T) {
	ls := paperScaleTopo(t)
	dst := ls.Host(16)
	var got *packet.Packet
	dst.Deliver = func(p *packet.Packet) { got = p }
	p := dataPacket(0, 16, 1000)
	p.Encap = &packet.Encap{SrcHyp: 0, DstHyp: 16, SrcPort: 50001, DstPort: 7471}
	p.INT.Enabled = true
	ls.Host(0).Send(p)
	ls.Sim.Run()
	if got == nil {
		t.Fatal("not delivered")
	}
	if got.INT.Hops != 3 {
		t.Errorf("INT hops = %d, want 3 (L1, spine, L2)", got.INT.Hops)
	}
}

func TestNoRouteCounted(t *testing.T) {
	s := sim.New(1)
	topo := NewTopology(s)
	sw := topo.AddSwitch("X")
	p := dataPacket(0, 99, 10)
	sw.Receive(p, nil)
	if sw.Stats().NoRoute != 1 {
		t.Error("NoRoute not counted")
	}
}

func TestHostUndelivered(t *testing.T) {
	ls := paperScaleTopo(t)
	h := ls.Host(5)
	h.Receive(dataPacket(0, 5, 10), nil)
	if h.undelivered != 1 {
		t.Error("undelivered not counted without Deliver handler")
	}
}

func TestSetLinkPairUpPanicsOnUnknown(t *testing.T) {
	ls := paperScaleTopo(t)
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown link pair")
		}
	}()
	ls.SetLinkPairUp("L9", "S9", 0, false)
}

func TestBaseRTTPositive(t *testing.T) {
	ls := paperScaleTopo(t)
	if ls.BaseRTT() <= 0 {
		t.Error("BaseRTT not positive")
	}
}
