package telemetry_test

import (
	"testing"

	"clove/internal/netem"
	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/telemetry"
)

// TestDisabledTelemetryForwardingZeroAllocs is the end-to-end hook-overhead
// guard, mirroring the oracle's TestDisabledOracleZeroAllocs: with the
// telemetry package compiled in (a tracer even exists) but no SetTrace
// wiring, a forwarded hop through the link layer must still run
// allocation-free — the link's counter handles stay nil and each increment
// site costs one branch.
func TestDisabledTelemetryForwardingZeroAllocs(t *testing.T) {
	s := sim.New(1)
	topo := netem.NewTopology(s)
	sw := topo.AddSwitch("S")
	cfg := netem.LinkConfig{RateBps: 40e9, Delay: 2 * sim.Microsecond}
	src := topo.AddHost("h0", sw, cfg, cfg)
	topo.AddHost("h1", sw, cfg, cfg)
	topo.ComputeRoutes()
	_ = telemetry.NewTracer(s, telemetry.Config{}) // compiled in, not wired

	send := func() {
		pkt := topo.Pool().Get()
		pkt.Kind = packet.KindData
		pkt.Inner = packet.FiveTuple{Src: 0, Dst: 1, SrcPort: 40000, DstPort: 80, Proto: packet.ProtoTCP}
		pkt.PayloadLen = 1460
		src.Send(pkt)
		s.Run()
	}
	send() // warm pools and the event free list
	if allocs := testing.AllocsPerRun(100, send); allocs != 0 {
		t.Fatalf("hot path with disabled telemetry: %v allocs/op, want 0", allocs)
	}
}
