package netem

import (
	"testing"

	"clove/internal/sim"
)

// TestRouteRecomputeDelay models routing-protocol reconvergence: after a
// failure, the ECMP tables keep pointing at the dead link until the
// configured delay elapses.
func TestRouteRecomputeDelay(t *testing.T) {
	s := sim.New(1)
	ls := BuildLeafSpine(s, PaperTestbed(0.01))
	ls.RouteRecomputeDelay = 5 * sim.Millisecond

	before := len(ls.Spines[1].NextHops(16))
	if before != 2 {
		t.Fatalf("pre-failure S2 routes = %d", before)
	}
	ls.SetLinkPairUp("L2", "S2", 0, false)
	// Immediately after the failure, stale tables persist.
	if got := len(ls.Spines[1].NextHops(16)); got != 2 {
		t.Errorf("routes recomputed instantly despite delay: %d", got)
	}
	s.RunUntil(6 * sim.Millisecond)
	if got := len(ls.Spines[1].NextHops(16)); got != 1 {
		t.Errorf("routes not recomputed after delay: %d", got)
	}
}

// TestStaleRoutesBlackholeThenRecover: packets hashed to the dead link are
// lost during the reconvergence window and flow again afterwards — the
// transient Clove's probing tolerates.
func TestStaleRoutesBlackholeThenRecover(t *testing.T) {
	s := sim.New(2)
	ls := BuildLeafSpine(s, PaperTestbed(0.01))
	ls.RouteRecomputeDelay = 2 * sim.Millisecond
	ls.SetLinkPairUp("L2", "S2", 0, false)

	dead := ls.LinkByName("S2->L2#0")
	if dead.Up() {
		t.Fatal("link still up")
	}
	preDrops := dead.Stats().DownDrops
	_ = preDrops
	s.RunUntil(3 * sim.Millisecond)
	if got := len(ls.Spines[1].NextHops(16)); got != 1 {
		t.Fatalf("routes not converged: %d", got)
	}
}

func TestSimulatorReentrantRunPanics(t *testing.T) {
	s := sim.New(1)
	s.At(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("reentrant Run did not panic")
			}
		}()
		s.Run()
	})
	s.Run()
}
