package netem

import (
	"fmt"

	"clove/internal/packet"
	"clove/internal/sim"
)

// Sharded construction: one Topology spread across the event domains of a
// sim.Engine. Every node (switch or host) is owned by exactly one domain and
// schedules only on that domain's Simulator; every link lives in its source
// node's domain (queue, serializer, DRE), and a link whose endpoints sit in
// different domains becomes a cross-domain channel — its propagation stage
// is a Domain.Post with delay >= the engine lookahead instead of a local
// event. Each domain also gets its own packet.Pool, so the per-hop
// alloc-free recycling never crosses a thread boundary; a packet that
// crosses domains is simply recycled into the receiving domain's pool
// (pools are plain free lists — buffers migrate, ownership stays
// single-threaded).
//
// Ownership rules for cross-domain packets:
//
//   - the source domain owns the packet until the propagation Post fires;
//     after Post is buffered the source must not touch it again;
//   - the destination domain owns it from delivery on, including returning
//     it to (its own) pool;
//   - link administrative state (SetUp, SetRateBps) and route recomputation
//     mutate both sides, so they are legal only at engine barriers (global
//     events) — which is where scenario actions already run.

// enterDomain directs subsequent AddSwitch/AddHost calls at d.
func (t *Topology) enterDomain(d *sim.Domain, pool *packet.Pool) {
	t.curDom = d
	t.curPool = pool
}

// addDomainPool registers one per-domain pool in creation order.
func (t *Topology) addDomainPool() *packet.Pool {
	p := &packet.Pool{}
	t.pools = append(t.pools, p)
	return p
}

// Sharded reports whether this topology was built across event domains.
func (t *Topology) Sharded() bool { return t.eng != nil }

// Engine returns the engine a sharded topology runs on (nil otherwise).
func (t *Topology) Engine() *sim.Engine { return t.eng }

// Pools returns every packet pool of the topology: the single shared pool
// in single-sim mode, or one pool per domain (domain creation order) in
// sharded mode. Observers (the oracle) must be installed on all of them.
func (t *Topology) Pools() []*packet.Pool {
	if t.eng == nil {
		return []*packet.Pool{t.pool}
	}
	return t.pools
}

// NodePool returns the pool owning node id's packets.
func (t *Topology) NodePool(id packet.NodeID) *packet.Pool {
	if t.eng == nil {
		return t.pool
	}
	return t.nodePool[id]
}

// NodeDomain returns the event domain owning node id, or nil on a
// single-sim topology.
func (t *Topology) NodeDomain(id packet.NodeID) *sim.Domain {
	if t.eng == nil {
		return nil
	}
	return t.nodeDom[id]
}

// buildSim returns the Simulator new nodes should schedule on.
func (t *Topology) buildSim() *sim.Simulator {
	if t.eng != nil {
		return t.curDom.Simulator
	}
	return t.Sim
}

// buildPool returns the pool new nodes should draw from.
func (t *Topology) buildPool() *packet.Pool {
	if t.eng != nil {
		return t.curPool
	}
	return t.pool
}

// recordNode captures the owning domain of the node just allocated.
func (t *Topology) recordNode() {
	if t.eng == nil {
		return
	}
	t.nodeDom = append(t.nodeDom, t.curDom)
	t.nodePool = append(t.nodePool, t.curPool)
}

// scheduleRecompute reruns ComputeRoutes after the reconvergence delay.
// Route tables are read by every domain, so in sharded mode the recompute
// is a global event (it runs at a barrier, while all domains are paused).
func (t *Topology) scheduleRecompute() {
	if t.RouteRecomputeDelay <= 0 {
		t.ComputeRoutes()
		return
	}
	if t.eng != nil {
		t.eng.GlobalAfter(t.RouteRecomputeDelay, t.ComputeRoutes)
		return
	}
	t.Sim.After(t.RouteRecomputeDelay, t.ComputeRoutes)
}

// BuildLeafSpineSharded constructs the leaf–spine fabric across event
// domains of eng: one domain per leaf (owning the leaf switch and all its
// hosts — where nearly all events live), and one domain per spine. The only
// cross-domain links are the leaf<->spine trunks, whose propagation delay
// must be at least the engine lookahead.
//
// Node creation order (and therefore IDs, names, and ECMP hash seeds) is
// identical to BuildLeafSpine.
func BuildLeafSpineSharded(eng *sim.Engine, cfg LeafSpineConfig) *LeafSpine {
	if d := cfg.trunkDelay(); d < eng.Lookahead() {
		panic(fmt.Sprintf("netem: trunk delay %v under engine lookahead %v", d, eng.Lookahead()))
	}
	t := &Topology{eng: eng, byName: map[string]*Link{}}
	ls := &LeafSpine{Topology: t, Cfg: cfg}

	leafDoms := make([]*sim.Domain, cfg.Leaves)
	leafPools := make([]*packet.Pool, cfg.Leaves)
	for i := range leafDoms {
		leafDoms[i] = eng.AddDomain()
		leafPools[i] = t.addDomainPool()
	}
	spineDoms := make([]*sim.Domain, cfg.Spines)
	spinePools := make([]*packet.Pool, cfg.Spines)
	for i := range spineDoms {
		spineDoms[i] = eng.AddDomain()
		spinePools[i] = t.addDomainPool()
	}

	for i := 0; i < cfg.Leaves; i++ {
		t.enterDomain(leafDoms[i], leafPools[i])
		ls.Leaves = append(ls.Leaves, t.AddSwitch(fmt.Sprintf("L%d", i+1)))
	}
	for i := 0; i < cfg.Spines; i++ {
		t.enterDomain(spineDoms[i], spinePools[i])
		ls.Spines = append(ls.Spines, t.AddSwitch(fmt.Sprintf("S%d", i+1)))
	}
	// Trunks: addLink derives each direction's owning domain from its source
	// node, so no enterDomain is needed here.
	trunkCfg := LinkConfig{RateBps: cfg.TrunkRateBps, Delay: cfg.trunkDelay(), QueueCap: cfg.QueueCap, ECNK: cfg.ECNK}
	for _, lf := range ls.Leaves {
		for _, sp := range ls.Spines {
			for k := 0; k < cfg.TrunksPerPair; k++ {
				t.Connect(lf, sp, k, trunkCfg)
			}
		}
	}
	upCfg := LinkConfig{RateBps: cfg.HostRateBps, Delay: cfg.LinkDelay, QueueCap: HostQdiscCap}
	downCfg := LinkConfig{RateBps: cfg.HostRateBps, Delay: cfg.LinkDelay, QueueCap: cfg.QueueCap, ECNK: cfg.ECNK}
	for li, lf := range ls.Leaves {
		t.enterDomain(leafDoms[li], leafPools[li])
		for j := 0; j < cfg.HostsPerLeaf; j++ {
			t.AddHost(fmt.Sprintf("h%d", li*cfg.HostsPerLeaf+j), lf, upCfg, downCfg)
		}
	}
	t.ComputeRoutes()
	return ls
}
