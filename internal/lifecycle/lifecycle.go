// Package lifecycle is a small component manager for operated services: an
// ordered set of named components brought up with Init then Start and torn
// down with Stop in reverse order, each call bounded by a per-phase timeout,
// with Stop errors aggregated so one failing component never hides another.
//
// It is the k0s-style manager/component idiom scaled to this repo's needs:
// cmd/cloved registers its tunnel endpoints, admin server, tickers, and
// stdin reader as components, and the manager gives it deterministic
// bring-up order, reverse-order graceful drain, and idempotent shutdown
// (ROADMAP item 5).
//
// Contract:
//
//   - Init is called on every component in registration order; the first
//     error aborts (already-inited components are NOT stopped — Init must
//     not acquire resources that need teardown; that is Start's job).
//   - Start is called in registration order; on error, components that
//     already started are stopped in reverse order before Start returns.
//   - Stop stops started components in reverse registration order,
//     continues past errors, and returns them joined. Stop is idempotent:
//     second and later calls return the first call's result without
//     touching the components again.
//   - A phase timeout expiring produces an error naming the component and
//     phase; the offending call keeps running on its goroutine (the
//     manager cannot kill it) but the manager moves on so shutdown cannot
//     hang forever on one stuck component.
package lifecycle

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Component is the unit of managed lifecycle. Implementations must tolerate
// Stop without a preceding Start (the manager only stops what it started,
// but defensive components are easier to reuse).
type Component interface {
	// Init prepares the component (validate config, allocate state). It
	// must not begin background activity.
	Init(ctx context.Context) error
	// Start begins the component's work (bind, serve, spawn goroutines).
	Start(ctx context.Context) error
	// Stop halts the component and releases what Start acquired. It must
	// be safe to call exactly once after a successful Start.
	Stop() error
}

// Ready is optionally implemented by components with a distinct readiness
// condition (e.g. "the tunnel has a remote"). Manager.Ready aggregates it;
// a component without it is ready whenever it is started.
type Ready interface {
	Ready() error
}

// Healthy is optionally implemented by components with a liveness check.
// Manager.Healthy aggregates it.
type Healthy interface {
	Healthy() error
}

// DefaultTimeout bounds each component's Init/Start/Stop call when the
// corresponding Manager field is zero.
const DefaultTimeout = 30 * time.Second

type entry struct {
	name string
	comp Component
}

// Manager owns an ordered list of components. Not safe for concurrent Add;
// Init/Start/Stop/Ready/Healthy are mutually serialized.
type Manager struct {
	// InitTimeout, StartTimeout and StopTimeout bound each individual
	// component call in the respective phase. Zero means DefaultTimeout;
	// negative means no bound.
	InitTimeout  time.Duration
	StartTimeout time.Duration
	StopTimeout  time.Duration

	mu       sync.Mutex
	comps    []entry
	startedN int // components successfully started, a prefix of comps
	stopped  bool
	stopErr  error
}

// New returns an empty manager with default timeouts.
func New() *Manager { return &Manager{} }

// Add registers a component under name. Registration order is bring-up
// order and reverse teardown order.
func (m *Manager) Add(name string, c Component) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.comps = append(m.comps, entry{name: name, comp: c})
}

// Names returns the registered component names in order.
func (m *Manager) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.comps))
	for i, e := range m.comps {
		out[i] = e.name
	}
	return out
}

// Init initializes every component in order; the first error aborts.
func (m *Manager) Init(ctx context.Context) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.comps {
		if err := m.call(ctx, "init", e.name, m.InitTimeout, e.comp.Init); err != nil {
			return err
		}
	}
	return nil
}

// Start starts every component in order. On error, the components already
// started are stopped in reverse order and the Start error is returned
// (joined with any Stop errors from the rollback).
func (m *Manager) Start(ctx context.Context) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.comps {
		if err := m.call(ctx, "start", e.name, m.StartTimeout, e.comp.Start); err != nil {
			return errors.Join(err, m.stopLocked())
		}
		m.startedN++
	}
	return nil
}

// Stop stops the started components in reverse order, aggregating errors.
// Idempotent: later calls return the first result.
func (m *Manager) Stop() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return m.stopErr
	}
	m.stopped = true
	m.stopErr = m.stopLocked()
	return m.stopErr
}

// stopLocked tears down comps[:startedN] in reverse order. Caller holds mu.
func (m *Manager) stopLocked() error {
	var errs []error
	for i := m.startedN - 1; i >= 0; i-- {
		e := m.comps[i]
		stop := func(context.Context) error { return e.comp.Stop() }
		if err := m.call(context.Background(), "stop", e.name, m.StopTimeout, stop); err != nil {
			errs = append(errs, err)
		}
	}
	m.startedN = 0
	return errors.Join(errs...)
}

// Ready aggregates the Ready check of every started component that
// implements it; it fails if any component has not been started yet.
func (m *Manager) Ready() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return errors.New("lifecycle: stopped")
	}
	if m.startedN < len(m.comps) {
		return fmt.Errorf("lifecycle: %d/%d components started", m.startedN, len(m.comps))
	}
	var errs []error
	for _, e := range m.comps {
		if r, ok := e.comp.(Ready); ok {
			if err := r.Ready(); err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", e.name, err))
			}
		}
	}
	return errors.Join(errs...)
}

// Healthy aggregates the Healthy check of every component that implements
// it.
func (m *Manager) Healthy() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var errs []error
	for _, e := range m.comps {
		if h, ok := e.comp.(Healthy); ok {
			if err := h.Healthy(); err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", e.name, err))
			}
		}
	}
	return errors.Join(errs...)
}

// call runs one phase function under the phase timeout. ctx carries the
// deadline to cooperative components; the select enforces it on
// uncooperative ones (whose goroutine then outlives the call — documented
// at the package level).
func (m *Manager) call(ctx context.Context, phase, name string, d time.Duration, fn func(context.Context) error) error {
	if d == 0 {
		d = DefaultTimeout
	}
	if d < 0 {
		if err := fn(ctx); err != nil {
			return fmt.Errorf("lifecycle: %s %s: %w", phase, name, err)
		}
		return nil
	}
	cctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- fn(cctx) }()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("lifecycle: %s %s: %w", phase, name, err)
		}
		return nil
	case <-t.C:
		return fmt.Errorf("lifecycle: %s %s: timed out after %v", phase, name, d)
	}
}

// Fn adapts plain functions into a Component; nil fields are no-ops. The
// Ready/Healthy hooks are aggregated by the manager when set.
type Fn struct {
	InitFn    func(ctx context.Context) error
	StartFn   func(ctx context.Context) error
	StopFn    func() error
	ReadyFn   func() error
	HealthyFn func() error
}

func (f *Fn) Init(ctx context.Context) error {
	if f.InitFn == nil {
		return nil
	}
	return f.InitFn(ctx)
}

func (f *Fn) Start(ctx context.Context) error {
	if f.StartFn == nil {
		return nil
	}
	return f.StartFn(ctx)
}

func (f *Fn) Stop() error {
	if f.StopFn == nil {
		return nil
	}
	return f.StopFn()
}

func (f *Fn) Ready() error {
	if f.ReadyFn == nil {
		return nil
	}
	return f.ReadyFn()
}

func (f *Fn) Healthy() error {
	if f.HealthyFn == nil {
		return nil
	}
	return f.HealthyFn()
}
