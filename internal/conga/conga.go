// Package conga implements the CONGA baseline: in-network, leaf-to-leaf
// congestion-aware flowlet load balancing, the "best hardware" upper bound
// the paper compares against (Sec. 6). Source leaves pick the uplink
// minimizing the max of local DRE utilization and the remembered
// congestion-to-leaf metric; packets accumulate the maximum link
// utilization along their path in a fabric header, destination leaves
// record it and piggyback it back on reverse traffic. Spines route each
// flowlet onto their least-utilized egress, standing in for the full-fabric
// deployment of the real system.
package conga

import (
	"clove/internal/clove"
	"clove/internal/netem"
	"clove/internal/packet"
	"clove/internal/sim"
)

// Config parameterizes the CONGA fabric.
type Config struct {
	// FlowletGap is the hardware flowlet timeout.
	FlowletGap sim.Time
}

// Stats counts CONGA decisions for diagnostics.
type Stats struct {
	FlowletsRouted int64
	MetricsLearned int64
	FeedbackSent   int64
}

// leafState is the per-leaf CONGA table set.
type leafState struct {
	flowlets *clove.FlowletTable
	// pinned maps a flow's current flowlet to its chosen uplink.
	pinned map[packet.FiveTuple]*netem.Link
	// toLeaf[dstLeaf][uplinkID] is the learned congestion metric of the
	// path bundle starting at uplinkID toward dstLeaf.
	toLeaf map[packet.NodeID]map[packet.LinkID]float64
	// fromLeaf[srcLeaf][lbTag] is measured from arriving packets and fed
	// back to srcLeaf; lbTag indexes the source leaf's uplinks.
	fromLeaf map[packet.NodeID]map[uint8]float64
	// fbCursor rotates which metric is piggybacked next, per peer leaf.
	fbCursor map[packet.NodeID]uint8
	// uplinks in stable order; LBTag is the index in this slice.
	uplinks []*netem.Link
}

// spineState keeps per-spine flowlet pinning for trunk choice.
type spineState struct {
	flowlets *clove.FlowletTable
	pinned   map[packet.FiveTuple]*netem.Link
}

// Fabric wires CONGA onto a leaf-spine topology.
type Fabric struct {
	sim    *sim.Simulator
	cfg    Config
	pool   *packet.Pool
	leaves map[packet.NodeID]*leafState
	spines map[packet.NodeID]*spineState
	// leafOf maps a host to its leaf switch ID.
	leafOf map[packet.HostID]packet.NodeID

	stats Stats
}

// Attach installs CONGA on every switch of the leaf-spine fabric.
func Attach(s *sim.Simulator, ls *netem.LeafSpine, cfg Config) *Fabric {
	f := &Fabric{
		sim:    s,
		cfg:    cfg,
		pool:   ls.Pool(),
		leaves: map[packet.NodeID]*leafState{},
		spines: map[packet.NodeID]*spineState{},
		leafOf: map[packet.HostID]packet.NodeID{},
	}
	hostIDs := map[packet.NodeID]bool{}
	for _, h := range ls.Hosts() {
		hostIDs[h.ID()] = true
	}
	for _, lf := range ls.Leaves {
		st := &leafState{
			flowlets: clove.NewFlowletTable(cfg.FlowletGap),
			pinned:   map[packet.FiveTuple]*netem.Link{},
			toLeaf:   map[packet.NodeID]map[packet.LinkID]float64{},
			fromLeaf: map[packet.NodeID]map[uint8]float64{},
			fbCursor: map[packet.NodeID]uint8{},
		}
		for _, eg := range lf.Egress() {
			if !hostIDs[eg.To().ID()] {
				st.uplinks = append(st.uplinks, eg)
			}
		}
		f.leaves[lf.ID()] = st
		lf.SetLB(f)
	}
	for _, sp := range ls.Spines {
		f.spines[sp.ID()] = &spineState{
			flowlets: clove.NewFlowletTable(cfg.FlowletGap),
			pinned:   map[packet.FiveTuple]*netem.Link{},
		}
		sp.SetLB(f)
	}
	for li, lf := range ls.Leaves {
		for j := 0; j < ls.Cfg.HostsPerLeaf; j++ {
			f.leafOf[packet.HostID(li*ls.Cfg.HostsPerLeaf+j)] = lf.ID()
		}
	}
	return f
}

// Stats returns a snapshot of the counters.
func (f *Fabric) Stats() Stats { return f.stats }

// Observe implements netem.SwitchLB. At a destination leaf it harvests the
// accumulated path metric and the piggybacked feedback.
func (f *Fabric) Observe(sw *netem.Switch, pkt *packet.Packet, _ *netem.Link) {
	st := f.leaves[sw.ID()]
	if st == nil || pkt.Conga == nil {
		return
	}
	srcLeaf := f.leafOf[pkt.OuterTuple().Src]
	dstLeaf := f.leafOf[pkt.OuterDst()]
	if dstLeaf != sw.ID() || srcLeaf == sw.ID() {
		return // not the destination leaf of a cross-leaf packet
	}
	// Record the forward metric keyed by the source leaf's LBTag.
	m := st.fromLeaf[srcLeaf]
	if m == nil {
		m = map[uint8]float64{}
		st.fromLeaf[srcLeaf] = m
	}
	m[pkt.Conga.LBTag] = pkt.Conga.CEMetric
	f.stats.MetricsLearned++

	// Consume feedback about our own uplinks toward srcLeaf.
	if pkt.Conga.FbValid {
		tl := st.toLeaf[srcLeaf]
		if tl == nil {
			tl = map[packet.LinkID]float64{}
			st.toLeaf[srcLeaf] = tl
		}
		if int(pkt.Conga.FbLBTag) < len(st.uplinks) {
			tl[st.uplinks[pkt.Conga.FbLBTag].ID()] = pkt.Conga.FbMetric
		}
	}
}

// Pick implements netem.SwitchLB.
func (f *Fabric) Pick(sw *netem.Switch, pkt *packet.Packet, candidates []*netem.Link) (*netem.Link, bool) {
	if st := f.leaves[sw.ID()]; st != nil {
		return f.pickLeaf(sw, st, pkt, candidates)
	}
	if st := f.spines[sw.ID()]; st != nil {
		return f.pickSpine(st, pkt, candidates)
	}
	return nil, false
}

// pickLeaf handles both roles a leaf plays.
func (f *Fabric) pickLeaf(sw *netem.Switch, st *leafState, pkt *packet.Packet, candidates []*netem.Link) (*netem.Link, bool) {
	outer := pkt.OuterTuple()
	srcLeaf := f.leafOf[outer.Src]
	dstLeaf := f.leafOf[pkt.OuterDst()]

	if srcLeaf == sw.ID() && dstLeaf != sw.ID() {
		// Source leaf of a cross-leaf packet: tag and pick the uplink.
		now := f.sim.Now()
		_, isNew := st.flowlets.Touch(outer, now)
		eg := st.pinned[outer]
		if isNew || eg == nil || !linkIn(eg, candidates) {
			eg = f.bestUplink(st, dstLeaf, candidates)
			st.pinned[outer] = eg
			f.stats.FlowletsRouted++
		}
		tag := uint8(0)
		for i, u := range st.uplinks {
			if u == eg {
				tag = uint8(i)
				break
			}
		}
		c := f.pool.GetConga()
		c.LBTag = tag
		pkt.Conga = c
		// Piggyback one feedback metric about paths from dstLeaf to us.
		if m := st.fromLeaf[dstLeaf]; len(m) > 0 {
			cursor := st.fbCursor[dstLeaf]
			// Rotate deterministically over tags 0..len(uplinks).
			for i := 0; i < 256; i++ {
				tag := uint8((int(cursor) + i) % 256)
				if v, ok := m[tag]; ok {
					pkt.Conga.FbValid = true
					pkt.Conga.FbLBTag = tag
					pkt.Conga.FbMetric = v
					st.fbCursor[dstLeaf] = tag + 1
					f.stats.FeedbackSent++
					break
				}
			}
		}
		return eg, true
	}
	// Destination leaf (or same-leaf traffic): default forwarding.
	return nil, false
}

// bestUplink applies the CONGA rule: minimize max(local DRE of the uplink,
// remembered congestion-to-leaf via that uplink). Unknown remote metrics
// count as zero, which makes unprobed paths attractive.
func (f *Fabric) bestUplink(st *leafState, dstLeaf packet.NodeID, candidates []*netem.Link) *netem.Link {
	tl := st.toLeaf[dstLeaf]
	var best *netem.Link
	bestMetric := 2.0e9
	for _, c := range candidates {
		m := c.Utilization()
		if tl != nil {
			if remote, ok := tl[c.ID()]; ok && remote > m {
				m = remote
			}
		}
		if m < bestMetric {
			best, bestMetric = c, m
		}
	}
	return best
}

// pickSpine routes each flowlet onto the least-utilized egress trunk.
func (f *Fabric) pickSpine(st *spineState, pkt *packet.Packet, candidates []*netem.Link) (*netem.Link, bool) {
	if len(candidates) == 1 {
		return candidates[0], true
	}
	outer := pkt.OuterTuple()
	_, isNew := st.flowlets.Touch(outer, f.sim.Now())
	eg := st.pinned[outer]
	if isNew || eg == nil || !linkIn(eg, candidates) {
		eg = candidates[0]
		for _, c := range candidates[1:] {
			if c.Utilization() < eg.Utilization() {
				eg = c
			}
		}
		st.pinned[outer] = eg
	}
	return eg, true
}

func linkIn(l *netem.Link, set []*netem.Link) bool {
	for _, c := range set {
		if c == l {
			return true
		}
	}
	return false
}
