package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"clove/internal/netem"
	"clove/internal/sim"
	"clove/internal/telemetry"
)

// shardedTopo is a 4-leaf fabric (the smallest where cross-leaf traffic can
// exercise more than one remote domain), non-oversubscribed like the paper
// testbed: 3 hosts/leaf at 10G, 2 spines x 1 trunk at 15G.
func shardedTopo() netem.LeafSpineConfig {
	return netem.LeafSpineConfig{
		Leaves:        4,
		Spines:        2,
		TrunksPerPair: 1,
		HostsPerLeaf:  3,
		HostRateBps:   10e9,
		TrunkRateBps:  15e9,
		LinkDelay:     5 * sim.Microsecond,
		QueueCap:      netem.DefaultQueueCap,
		ECNK:          20,
	}
}

func shardedMix() MixParams {
	return MixParams{
		Load: 0.3, TotalJobs: 48, SizeScale: 0.02,
		FracWebSearch: 0.5, FracRPC: 0.2, FracML: 0.15, FracIncast: 0.15,
		IncastFanout: 3,
		MaxSimTime:   120 * sim.Second,
	}
}

// traceTree reads every exported trace file under dir into relpath -> bytes.
func traceTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	tree := map[string]string{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		tree[rel] = string(b)
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", dir, err)
	}
	return tree
}

type shardedOutcome struct {
	res     MixResult
	samples []string
	mean    float64
	traces  map[string]string
}

func runSharded(t *testing.T, seed int64, workers int, oracle bool) shardedOutcome {
	t.Helper()
	c := New(Config{
		Seed: seed, Topo: shardedTopo(), Scheme: SchemeCloveECN,
		DomainWorkers: workers, ServersPerClient: 4,
		Oracle:    oracle,
		Telemetry: &telemetry.Config{Interval: sim.Millisecond},
	})
	if c.Eng == nil {
		t.Fatal("4-leaf topology did not auto-enable domain mode")
	}
	res := c.RunMix(shardedMix())
	if res.Completed == 0 {
		t.Fatalf("workers=%d: nothing completed (issued %d)", workers, res.Issued)
	}
	if res.TimedOut {
		t.Fatalf("workers=%d: timed out at %d/%d", workers, res.Completed, res.Issued)
	}
	if oracle {
		if err := c.CheckOracle(); err != nil {
			t.Fatalf("workers=%d: oracle: %v", workers, err)
		}
	}
	// The figure tables experiments print are a pure function of the sample
	// stream, so pinning every (size, fct) pair pins the tables.
	out := shardedOutcome{res: res, mean: c.Recorder.Mean()}
	for _, s := range c.Recorder.Samples() {
		out.samples = append(out.samples, fmt.Sprintf("%d:%d", s.Size, int64(s.FCT)))
	}
	dir := t.TempDir()
	if err := c.ExportTraces(dir); err != nil {
		t.Fatalf("workers=%d: export: %v", workers, err)
	}
	out.traces = traceTree(t, dir)
	return out
}

// TestDomainModeDeterministicAcrossWorkers is the PR's core promise: the
// same seed produces byte-identical figure tables (the full FCT sample
// stream) AND byte-identical telemetry trace trees at every worker count,
// with the conservation oracle enabled and clean throughout.
func TestDomainModeDeterministicAcrossWorkers(t *testing.T) {
	base := runSharded(t, 31, 1, true)
	if len(base.traces) == 0 {
		t.Fatal("workers=1 exported no trace files")
	}
	for _, w := range []int{2, 4, 8} {
		got := runSharded(t, 31, w, true)
		if got.res != base.res {
			t.Errorf("workers=%d result %+v != workers=1 %+v", w, got.res, base.res)
		}
		if len(got.samples) != len(base.samples) {
			t.Fatalf("workers=%d: %d samples, want %d", w, len(got.samples), len(base.samples))
		}
		for i := range base.samples {
			if got.samples[i] != base.samples[i] {
				t.Fatalf("workers=%d sample %d diverged: %q != %q", w, i, got.samples[i], base.samples[i])
			}
		}
		if got.mean != base.mean {
			t.Errorf("workers=%d mean %v != %v", w, got.mean, base.mean)
		}
		if len(got.traces) != len(base.traces) {
			t.Fatalf("workers=%d: %d trace files, want %d", w, len(got.traces), len(base.traces))
		}
		for name, want := range base.traces {
			if got.traces[name] != want {
				t.Fatalf("workers=%d: trace file %s diverged", w, name)
			}
		}
	}
}

// TestDomainModeSeedPermutation checks the sharded path is genuinely seeded:
// each seed reproduces itself exactly, and permuting seeds permutes outputs
// (no hidden shared stream making all seeds collapse to one trajectory).
func TestDomainModeSeedPermutation(t *testing.T) {
	a1 := runSharded(t, 5, 2, false)
	b1 := runSharded(t, 6, 2, false)
	// Re-run in the opposite order: results must depend only on the seed.
	b2 := runSharded(t, 6, 2, false)
	a2 := runSharded(t, 5, 2, false)
	if a1.mean != a2.mean || a1.res != a2.res {
		t.Errorf("seed 5 not reproducible: %v/%+v vs %v/%+v", a1.mean, a1.res, a2.mean, a2.res)
	}
	if b1.mean != b2.mean || b1.res != b2.res {
		t.Errorf("seed 6 not reproducible: %v/%+v vs %v/%+v", b1.mean, b1.res, b2.mean, b2.res)
	}
	if a1.mean == b1.mean {
		t.Error("seeds 5 and 6 gave identical means (suspicious)")
	}
}

// TestDomainModeLegacyDriversPanic pins that the single-sim-only entry
// points refuse to run on a sharded cluster instead of dereferencing the
// nil legacy Simulator somewhere deep.
func TestDomainModeLegacyDriversPanic(t *testing.T) {
	c := New(Config{Seed: 1, Topo: shardedTopo(), Scheme: SchemeECMP})
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic in domain mode", name)
			}
		}()
		fn()
	}
	mustPanic("RunWebSearch", func() { c.RunWebSearch(WebSearchParams{}) })
	mustPanic("RunIncast", func() {
		c.RunIncast(IncastParams{Fanout: 1, Requests: 1, ResponseBytes: 1})
	})
	mustPanic("conga sharded", func() {
		New(Config{Seed: 1, Topo: shardedTopo(), Scheme: SchemeCONGA})
	})
}

// TestDomainModeSchemes smoke-runs each supported scheme end to end on the
// 4-leaf sharded fabric with 4 workers.
func TestDomainModeSchemes(t *testing.T) {
	for _, scheme := range AllSchemes() {
		if scheme == SchemeCONGA {
			continue // rejected in domain mode
		}
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			c := New(Config{
				Seed: 9, Topo: shardedTopo(), Scheme: scheme,
				DomainWorkers: 4, ServersPerClient: 3,
			})
			p := shardedMix()
			p.TotalJobs = 24
			res := c.RunMix(p)
			if res.Completed == 0 || res.TimedOut {
				t.Fatalf("%s: %+v", scheme, res)
			}
			if c.Recorder.Count() != res.Completed {
				t.Errorf("recorder has %d, completed %d", c.Recorder.Count(), res.Completed)
			}
		})
	}
}
