// Quickstart: build the paper's leaf-spine testbed (scaled to 4 hosts per
// leaf), break one spine trunk, and compare ECMP against Clove-ECN on the
// web-search workload at 70% load — the paper's headline scenario in under
// a minute.
package main

import (
	"fmt"

	"clove"
)

func main() {
	fmt.Println("Clove quickstart: ECMP vs Clove-ECN on an asymmetric leaf-spine fabric")
	fmt.Println()

	run := func(scheme clove.Scheme) clove.Summary {
		c := clove.NewCluster(clove.ClusterConfig{
			Seed:              1,
			Topo:              clove.ScaledTestbed(1.0, 8), // 10G links, 8 hosts/leaf
			Scheme:            scheme,
			AsymmetricFailure: true, // take down one spine-leaf trunk (Sec. 5.2)
		})
		res := c.RunWebSearch(clove.WebSearchParams{
			Load:      0.7,  // 70% of bisection bandwidth
			TotalJobs: 4000, // web-search distribution, Poisson arrivals
			SizeScale: 0.1,  // shrink flows 10x to keep this demo fast
		})
		fmt.Printf("%-12s completed %4d jobs: %s\n", scheme, res.Completed, c.Recorder.Summarize())
		return c.Recorder.Summarize()
	}

	ecmp := run(clove.ECMP)
	cloveECN := run(clove.CloveECN)

	fmt.Println()
	fmt.Printf("Clove-ECN speedup over ECMP: %.2fx mean, %.2fx p99\n",
		ecmp.MeanSec/cloveECN.MeanSec, ecmp.P99Sec/cloveECN.P99Sec)
	fmt.Println("(the paper reports 1.5x-7.5x at 70-80% load on the full 32-server testbed)")
}
