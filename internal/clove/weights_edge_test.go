package clove

import (
	"math"
	"testing"

	"clove/internal/sim"
)

// TestWRRZeroWeightEdgeCases drives the smooth scheduler through the
// zero-weight corners: a zero-weight path must never be selected while any
// positive weight exists, wherever it sits in the table, and an all-zero
// table degrades to plain round-robin.
func TestWRRZeroWeightEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		ports   []uint16
		weights []float64
		picks   int
		// banned ports must never come out of Next; wantEach, when set,
		// requires every non-banned port to appear.
		banned   []uint16
		wantEach bool
	}{
		{
			name:  "zero weight first",
			ports: []uint16{10, 11, 12}, weights: []float64{0, 1, 1},
			picks: 30, banned: []uint16{10}, wantEach: true,
		},
		{
			name:  "zero weight middle",
			ports: []uint16{10, 11, 12}, weights: []float64{1, 0, 1},
			picks: 30, banned: []uint16{11}, wantEach: true,
		},
		{
			name:  "zero weight last",
			ports: []uint16{10, 11, 12}, weights: []float64{1, 1, 0},
			picks: 30, banned: []uint16{12}, wantEach: true,
		},
		{
			name:  "all but one zero",
			ports: []uint16{10, 11, 12}, weights: []float64{0, 2.5, 0},
			picks: 30, banned: []uint16{10, 12}, wantEach: true,
		},
		{
			name:  "all zero degrades to round-robin",
			ports: []uint16{10, 11, 12}, weights: []float64{0, 0, 0},
			picks: 30, wantEach: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWRR(nil)
			w.Reset(tc.ports, tc.weights)
			counts := map[uint16]int{}
			for i := 0; i < tc.picks; i++ {
				counts[w.Next()]++
			}
			for _, b := range tc.banned {
				if counts[b] > 0 {
					t.Errorf("zero-weight port %d picked %d times", b, counts[b])
				}
			}
			if tc.wantEach {
				banned := map[uint16]bool{}
				for _, b := range tc.banned {
					banned[b] = true
				}
				for _, p := range tc.ports {
					if !banned[p] && counts[p] == 0 {
						t.Errorf("positive-weight port %d never picked", p)
					}
				}
			}
		})
	}
}

// TestWeightTableSinglePathDegeneracy pins the one-path corner: congestion
// feedback has nowhere to shift weight, so the weight must survive intact
// (not decay toward the floor), the single port keeps being scheduled, and
// AllCongested still flips on fresh feedback.
func TestWeightTableSinglePathDegeneracy(t *testing.T) {
	cfg := DefaultWeightTableConfig(100 * sim.Microsecond)
	tab := NewWeightTable(cfg, []uint16{42})
	for i := 0; i < 10; i++ {
		tab.OnCongestion(42, sim.Time(i+1)*sim.Microsecond)
	}
	if w := tab.Weights()[42]; w != 1 {
		t.Errorf("single path weight drifted to %v after congestion, want 1", w)
	}
	for i := 0; i < 5; i++ {
		if p := tab.NextPort(); p != 42 {
			t.Fatalf("NextPort = %d, want the only path 42", p)
		}
	}
	if !tab.AllCongested(11 * sim.Microsecond) {
		t.Error("fresh congestion on the only path: AllCongested = false")
	}
	if tab.AllCongested(10*sim.Microsecond + cfg.CongestedAge + 1) {
		t.Error("stale congestion: AllCongested = true")
	}
}

// TestWeightTableRenormalizationAfterPathLoss runs the rediscovery corners
// as a table: shrinking, replacing, and growing the port set must always
// leave weights summing to 1, keep learned state for surviving ports, and
// start new ports at the mean of the retained ones.
func TestWeightTableRenormalizationAfterPathLoss(t *testing.T) {
	now := sim.Time(1 * sim.Microsecond)
	cases := []struct {
		name     string
		initial  []uint16
		congest  []uint16 // feedback applied before the transition
		next     []uint16
		survivor uint16 // port present before and after
	}{
		{
			name:    "lose one of four",
			initial: []uint16{1, 2, 3, 4}, congest: []uint16{1, 1},
			next: []uint16{2, 3, 4}, survivor: 2,
		},
		{
			name:    "lose half",
			initial: []uint16{1, 2, 3, 4}, congest: []uint16{3},
			next: []uint16{3, 4}, survivor: 3,
		},
		{
			name:    "replace all but one",
			initial: []uint16{1, 2, 3, 4}, congest: []uint16{2, 4},
			next: []uint16{4, 9, 10, 11}, survivor: 4,
		},
		{
			name:    "grow after shrink",
			initial: []uint16{1, 2}, congest: []uint16{1},
			next: []uint16{1, 2, 3, 4}, survivor: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab := NewWeightTable(DefaultWeightTableConfig(100*sim.Microsecond), tc.initial)
			for i, p := range tc.congest {
				tab.OnCongestion(p, now+sim.Time(i))
			}
			before := tab.Weights()
			tab.SetPorts(tc.next)

			if got := tab.Len(); got != len(tc.next) {
				t.Fatalf("Len = %d, want %d", got, len(tc.next))
			}
			var sum float64
			for _, w := range tab.Weights() {
				if w <= 0 {
					t.Errorf("non-positive weight %v after renormalization", w)
				}
				sum += w
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("weights sum to %v after path loss, want 1", sum)
			}
			// The survivor's weight ranking relative to a fresh port should
			// reflect its learned state: a congested survivor starts below
			// the uncongested mean it was at before only if it was below
			// average already. The cheap, robust check: relative order of
			// surviving weights is preserved by renormalization.
			_ = before
			for _, st := range tab.States() {
				if st.Port == tc.survivor && st.LastCongested == 0 {
					for _, c := range tc.congest {
						if c == tc.survivor {
							t.Errorf("survivor %d lost its congestion state across SetPorts", tc.survivor)
						}
					}
				}
			}
			// Scheduling still works over the new set.
			seen := map[uint16]bool{}
			for i := 0; i < len(tc.next)*4; i++ {
				seen[tab.NextPort()] = true
			}
			for _, p := range tc.next {
				if !seen[p] {
					t.Errorf("port %d never scheduled after SetPorts", p)
				}
			}
		})
	}
}

// TestWeightTableFrozen pins the differential-testing knob: a frozen table
// ignores congestion and utilization feedback entirely — weights, congestion
// timestamps, and utilization state all stay untouched — and its scheduler
// cycles ports in table order like plain round-robin.
func TestWeightTableFrozen(t *testing.T) {
	cfg := DefaultWeightTableConfig(100 * sim.Microsecond)
	cfg.Frozen = true
	// Four ports: the uniform weight 1/4 is exactly representable, so the
	// smooth-WRR accumulator arithmetic below is exact. (With e.g. three
	// ports, 1/3 rounds and ulp-sized residues can perturb tie-breaking —
	// which is why the differential equivalence is exercised at the
	// default PathsK=4.)
	ports := []uint16{7, 8, 9, 10}
	tab := NewWeightTable(cfg, ports)

	tab.OnCongestion(7, 5*sim.Microsecond)
	tab.OnUtilization(8, 0.9, 5*sim.Microsecond)
	for _, st := range tab.States() {
		if st.LastCongested != 0 || st.UtilAt != 0 || st.Util != 0 {
			t.Fatalf("frozen table absorbed feedback: %+v", st)
		}
	}
	eq := 1.0 / 4.0
	for p, w := range tab.Weights() {
		if w != eq {
			t.Errorf("frozen weight[%d] = %v, want %v", p, w, eq)
		}
	}
	if tab.AllCongested(6 * sim.Microsecond) {
		t.Error("frozen table reports AllCongested")
	}
	// Uniform smooth WRR visits the table in order — the unit-level fact
	// the frozen-Clove-ECN ≡ CloveUniform differential test rests on.
	for i := 0; i < 12; i++ {
		if got, want := tab.NextPort(), ports[i%len(ports)]; got != want {
			t.Fatalf("pick %d = %d, want table-order %d", i, got, want)
		}
	}
}
