package wire

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{
		TOS: 0x12, TotalLen: 1500, ID: 0xbeef, TTL: 63, Protocol: 6,
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
	}
	b := h.Marshal(nil)
	if len(b) != IPv4HeaderLen {
		t.Fatalf("len = %d", len(b))
	}
	var g IPv4
	n, err := g.Unmarshal(b)
	if err != nil || n != IPv4HeaderLen {
		t.Fatalf("Unmarshal: %v n=%d", err, n)
	}
	if g != h {
		t.Errorf("round trip mismatch:\n%+v\n%+v", g, h)
	}
}

func TestIPv4ECNCodepoints(t *testing.T) {
	var h IPv4
	h.TOS = 0xb8 // DSCP EF
	h.SetECN(ECNCE)
	if h.ECN() != ECNCE {
		t.Errorf("ECN = %x", h.ECN())
	}
	if h.TOS>>2 != 0xb8>>2 {
		t.Error("SetECN clobbered DSCP")
	}
	h.SetECN(ECNECT0)
	if h.ECN() != ECNECT0 {
		t.Errorf("ECN = %x", h.ECN())
	}
}

func TestIPv4ChecksumValidation(t *testing.T) {
	h := IPv4{TTL: 64, Protocol: 17, TotalLen: 100}
	b := h.Marshal(nil)
	b[8] ^= 0xff // corrupt TTL
	var g IPv4
	if _, err := g.Unmarshal(b); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupted header accepted: %v", err)
	}
}

func TestIPv4Errors(t *testing.T) {
	var g IPv4
	if _, err := g.Unmarshal(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Error("short buffer accepted")
	}
	b := (&IPv4{TTL: 1}).Marshal(nil)
	b[0] = 0x65 // version 6
	if _, err := g.Unmarshal(b); !errors.Is(err, ErrBadVersion) {
		t.Error("wrong version accepted")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	h := TCP{SrcPort: 51234, DstPort: 7471, Seq: 1 << 30, Ack: 42,
		Flags: TCPAck | TCPEce, Window: 65535, Checksum: 0x1234, Urgent: 1}
	b := h.Marshal(nil)
	var g TCP
	n, err := g.Unmarshal(b)
	if err != nil || n != TCPHeaderLen {
		t.Fatalf("Unmarshal: %v n=%d", err, n)
	}
	if g != h {
		t.Errorf("round trip mismatch:\n%+v\n%+v", g, h)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	h := UDP{SrcPort: 40000, DstPort: 4789, Length: 108, Checksum: 7}
	b := h.Marshal(nil)
	var g UDP
	if _, err := g.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Errorf("mismatch %+v %+v", g, h)
	}
	bad := UDP{Length: 4}
	bb := bad.Marshal(nil)
	if _, err := g.Unmarshal(bb); !errors.Is(err, ErrBadLength) {
		t.Error("bad UDP length accepted")
	}
}

func TestSttShimFeedbackRoundTrip(t *testing.T) {
	s := SttShim{
		Version: 1, Flags: ShimFlagINTRequest, FlowletID: 99, VNI: 0xabcdef,
		Feedback: Feedback{Valid: true, Port: 54321, ECN: true, HasUtil: true, Util: 0.73},
	}
	b := s.Marshal(nil)
	var g SttShim
	if _, err := g.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if !g.Feedback.Valid || g.Feedback.Port != 54321 || !g.Feedback.ECN || !g.Feedback.HasUtil {
		t.Errorf("feedback lost: %+v", g.Feedback)
	}
	if math.Abs(g.Feedback.Util-0.73) > 1.0/255 {
		t.Errorf("util quantization too lossy: %v", g.Feedback.Util)
	}
	if g.Flags&ShimFlagINTRequest == 0 {
		t.Error("INT request flag lost")
	}
	if g.VNI != 0xabcdef || g.FlowletID != 99 {
		t.Errorf("fields lost: %+v", g)
	}
}

func TestSttShimNoFeedback(t *testing.T) {
	s := SttShim{Version: 1, VNI: 5}
	b := s.Marshal(nil)
	var g SttShim
	if _, err := g.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if g.Feedback.Valid {
		t.Error("phantom feedback")
	}
}

func TestSttShimPutMatchesMarshal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		s := SttShim{
			Version:    uint8(rng.Intn(4)),
			Flags:      uint8(rng.Intn(256)) &^ (ShimFlagECNFeedback | ShimFlagUtilValid),
			FlowletID:  rng.Uint32(),
			VNI:        rng.Uint32() & 0xffffff,
			PayloadLen: uint16(rng.Intn(1 << 16)),
			PathPort:   uint16(rng.Intn(1 << 16)),
		}
		if rng.Intn(2) == 0 {
			s.Feedback = Feedback{
				Valid: true, Port: uint16(rng.Intn(1 << 16)), ECN: rng.Intn(2) == 0,
				HasUtil: rng.Intn(2) == 0, Util: rng.Float64(),
			}
		}
		want := s.Marshal(nil)
		// Put into a dirty buffer: every byte must be overwritten.
		got := bytes.Repeat([]byte{0xa5}, SttShimLen)
		if n := s.Put(got); n != SttShimLen {
			t.Fatalf("Put returned %d", n)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Put differs from Marshal:\n%x\n%x\nshim %+v", got, want, s)
		}
	}
}

func TestSttShimPutZeroAlloc(t *testing.T) {
	s := SttShim{
		Version: 1, FlowletID: 7, VNI: 9, PayloadLen: 1200, PathPort: 40001,
		Feedback: Feedback{Valid: true, Port: 40002, ECN: true, HasUtil: true, Util: 0.5},
	}
	buf := make([]byte, SttShimLen)
	if n := testing.AllocsPerRun(1000, func() { s.Put(buf) }); n != 0 {
		t.Errorf("Put allocates %v per run, contract is 0", n)
	}
	var g SttShim
	if n := testing.AllocsPerRun(1000, func() { g.Unmarshal(buf) }); n != 0 {
		t.Errorf("Unmarshal allocates %v per run, contract is 0", n)
	}
}

func TestVxlanRoundTrip(t *testing.T) {
	v := Vxlan{VNI: 0x123456, Reserved: 0x80}
	b := v.Marshal(nil)
	var g Vxlan
	if _, err := g.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if g != v {
		t.Errorf("mismatch %+v %+v", g, v)
	}
	b[0] = 0
	if _, err := g.Unmarshal(b); !errors.Is(err, ErrBadVersion) {
		t.Error("missing I flag accepted")
	}
}

func TestEncapFrameRoundTrip(t *testing.T) {
	payload := []byte("tenant frame bytes: inner eth/ip/tcp would live here")
	f := &EncapFrame{
		OuterIP:  IPv4{TOS: ECNECT0, TTL: 64, SrcIP: [4]byte{172, 16, 0, 1}, DstIP: [4]byte{172, 16, 0, 2}},
		OuterTCP: TCP{SrcPort: 50001, DstPort: 7471, Window: 65535},
		Shim: SttShim{Version: 1, VNI: 7,
			Feedback: Feedback{Valid: true, Port: 50002, ECN: true}},
		Payload: payload,
	}
	b := f.Marshal()
	g, err := UnmarshalEncapFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g.Payload, payload) {
		t.Error("payload mismatch")
	}
	if g.OuterTCP.SrcPort != 50001 || g.OuterIP.ECN() != ECNECT0 {
		t.Error("outer fields lost")
	}
	if !g.Shim.Feedback.Valid || g.Shim.Feedback.Port != 50002 {
		t.Error("feedback lost")
	}
}

func TestEncapFrameChecksumDetectsCorruption(t *testing.T) {
	f := &EncapFrame{
		OuterIP:  IPv4{TTL: 64, SrcIP: [4]byte{1, 1, 1, 1}, DstIP: [4]byte{2, 2, 2, 2}},
		OuterTCP: TCP{SrcPort: 1, DstPort: 2},
		Payload:  []byte("payload"),
	}
	b := f.Marshal()
	b[len(b)-1] ^= 0x01
	if _, err := UnmarshalEncapFrame(b); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupted payload accepted: %v", err)
	}
}

// Fuzz-style property: no input slice makes the parsers panic, and valid
// frames round-trip exactly.
func TestQuickFrameNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		var ip IPv4
		var tcp TCP
		var udp UDP
		var shim SttShim
		var vx Vxlan
		ip.Unmarshal(raw)
		tcp.Unmarshal(raw)
		udp.Unmarshal(raw)
		shim.Unmarshal(raw)
		vx.Unmarshal(raw)
		UnmarshalEncapFrame(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Error(err)
	}
}

// Property: Marshal∘Unmarshal is the identity over the frame's degrees of
// freedom.
func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(srcPort, fbPort uint16, flowlet uint32, ecn bool, utilQ uint8, payload []byte) bool {
		if len(payload) > 4000 {
			payload = payload[:4000]
		}
		fr := &EncapFrame{
			OuterIP:  IPv4{TTL: 32, SrcIP: [4]byte{10, 1, 2, 3}, DstIP: [4]byte{10, 4, 5, 6}},
			OuterTCP: TCP{SrcPort: srcPort, DstPort: 7471},
			Shim: SttShim{Version: 1, FlowletID: flowlet, VNI: 1,
				Feedback: Feedback{Valid: true, Port: fbPort, ECN: ecn, HasUtil: true, Util: float64(utilQ) / 255}},
			Payload: payload,
		}
		b := fr.Marshal()
		g, err := UnmarshalEncapFrame(b)
		if err != nil {
			return false
		}
		return g.OuterTCP.SrcPort == srcPort &&
			g.Shim.FlowletID == flowlet &&
			g.Shim.Feedback.Port == fbPort &&
			g.Shim.Feedback.ECN == ecn &&
			math.Abs(g.Shim.Feedback.Util-float64(utilQ)/255) < 1e-9 &&
			bytes.Equal(g.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Error(err)
	}
}

func TestChecksumKnownValues(t *testing.T) {
	// RFC 1071 example-style check: checksum of a buffer with its checksum
	// embedded verifies to zero.
	b := []byte{0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
		0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7}
	c := Checksum(b)
	b[10], b[11] = byte(c>>8), byte(c)
	if Checksum(b) != 0 {
		t.Error("self-checksum not zero")
	}
	// Odd length handled.
	if Checksum([]byte{0xff}) != ^uint16(0xff00) {
		t.Errorf("odd-length checksum wrong: %x", Checksum([]byte{0xff}))
	}
}

func TestGeneveRoundTrip(t *testing.T) {
	g := Geneve{
		VNI: 0x00abcd, Protocol: 0x6558, Critical: true,
		Feedback: Feedback{Valid: true, Port: 51000, ECN: true, HasUtil: true, Util: 0.42},
	}
	b := g.Marshal(nil)
	var got Geneve
	n, err := got.Unmarshal(b)
	if err != nil || n != len(b) {
		t.Fatalf("Unmarshal: %v n=%d len=%d", err, n, len(b))
	}
	if got.VNI != g.VNI || got.Protocol != g.Protocol || !got.Critical {
		t.Errorf("header fields lost: %+v", got)
	}
	if !got.Feedback.Valid || got.Feedback.Port != 51000 || !got.Feedback.ECN {
		t.Errorf("feedback lost: %+v", got.Feedback)
	}
	if math.Abs(got.Feedback.Util-0.42) > 1.0/255 {
		t.Errorf("util = %v", got.Feedback.Util)
	}
}

func TestGeneveWithoutFeedback(t *testing.T) {
	g := Geneve{VNI: 5, Protocol: 0x0800}
	b := g.Marshal(nil)
	if len(b) != GeneveHeaderLen {
		t.Errorf("bare header len = %d", len(b))
	}
	var got Geneve
	if _, err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if got.Feedback.Valid {
		t.Error("phantom feedback")
	}
}

func TestGeneveSkipsUnknownOptions(t *testing.T) {
	// Hand-build a header with an unknown option followed by the Clove one.
	g := Geneve{VNI: 1, Feedback: Feedback{Valid: true, Port: 7}}
	withClove := g.Marshal(nil)
	cloveOpt := append([]byte(nil), withClove[GeneveHeaderLen:]...)
	unknown := []byte{0x01, 0x02, 0x99, 1, 0xde, 0xad, 0xbe, 0xef}
	opts := append(unknown, cloveOpt...)
	hdr := make([]byte, GeneveHeaderLen)
	hdr[0] = byte(len(opts) / 4)
	b := append(hdr, opts...)
	var got Geneve
	if _, err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if !got.Feedback.Valid || got.Feedback.Port != 7 {
		t.Errorf("Clove option not found after unknown option: %+v", got.Feedback)
	}
}

func TestGeneveErrors(t *testing.T) {
	var g Geneve
	if _, err := g.Unmarshal(make([]byte, 4)); !errors.Is(err, ErrTruncated) {
		t.Error("short geneve accepted")
	}
	b := (&Geneve{VNI: 1}).Marshal(nil)
	b[0] |= 0x40 // version 1
	if _, err := g.Unmarshal(b); !errors.Is(err, ErrBadVersion) {
		t.Error("wrong version accepted")
	}
	// Declared options longer than the buffer.
	b2 := (&Geneve{VNI: 1}).Marshal(nil)
	b2[0] = 4 // claims 16 bytes of options
	if _, err := g.Unmarshal(b2); !errors.Is(err, ErrTruncated) {
		t.Error("overlong opt len accepted")
	}
}
