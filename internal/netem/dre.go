package netem

import "clove/internal/sim"

// DRE (Discounting Rate Estimator) tracks the utilization of a link egress
// the way CONGA's switches do: a register X accumulates transmitted bytes
// and decays multiplicatively every Tdre, so that X/(C·Tdre/α) approximates
// the recent utilization with a time constant of Tdre/α.
//
// The same estimator feeds Clove-INT's per-hop utilization stamps and the
// CONGA baseline's congestion metrics.
type DRE struct {
	sim       *sim.Simulator
	x         float64 // discounted byte counter
	alpha     float64
	tdre      sim.Time
	rateBps   int64
	lastDecay sim.Time
}

// DRE defaults chosen to match CONGA's published configuration scaled to
// datacenter RTTs: decay interval well under an RTT, smoothing factor 1/8.
const (
	DefaultDREAlpha    = 0.125
	DefaultDREInterval = 20 * sim.Microsecond
)

// NewDRE creates an estimator for a link of the given rate. Decay is applied
// lazily on read/write rather than with a ticker, so idle links cost nothing.
func NewDRE(s *sim.Simulator, rateBps int64) *DRE {
	return &DRE{sim: s, alpha: DefaultDREAlpha, tdre: DefaultDREInterval, rateBps: rateBps}
}

// decayTo applies the multiplicative decay for every whole Tdre elapsed.
func (d *DRE) decayTo(now sim.Time) {
	if now <= d.lastDecay {
		return
	}
	steps := int64(now-d.lastDecay) / int64(d.tdre)
	if steps <= 0 {
		return
	}
	if steps > 64 {
		// Long idle: the register has fully decayed.
		d.x = 0
	} else {
		for i := int64(0); i < steps; i++ {
			d.x *= 1 - d.alpha
		}
	}
	d.lastDecay += sim.Time(steps) * d.tdre
}

// SetRate rebases the estimator on a new link capacity. The discounted byte
// register is kept: utilization readings immediately renormalize against the
// new rate, which is exactly what a downgraded link should report (the same
// traffic is now a larger fraction of capacity).
func (d *DRE) SetRate(rateBps int64) { d.rateBps = rateBps }

// Add records size bytes transmitted now.
func (d *DRE) Add(size int) {
	d.decayTo(d.sim.Now())
	d.x += float64(size)
}

// Utilization returns the estimated egress utilization; 1.0 means the link
// has been sending at line rate over the estimator's time constant.
func (d *DRE) Utilization() float64 {
	d.decayTo(d.sim.Now())
	// Steady state at line rate: X -> C * Tdre / alpha (in bytes).
	full := float64(d.rateBps) / 8 * d.tdre.Seconds() / d.alpha
	if full <= 0 {
		return 0
	}
	return d.x / full
}
