package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCDFValidation(t *testing.T) {
	cases := []struct {
		name   string
		points []CDFPoint
	}{
		{"too few", []CDFPoint{{100, 1}}},
		{"not ending at 1", []CDFPoint{{100, 0.5}, {200, 0.9}}},
		{"non-monotone prob", []CDFPoint{{100, 0.6}, {200, 0.5}, {300, 1}}},
		{"non-monotone bytes", []CDFPoint{{300, 0.5}, {200, 1}}},
		{"zero bytes", []CDFPoint{{0, 0.5}, {200, 1}}},
		{"prob > 1", []CDFPoint{{100, 0.5}, {200, 1.5}}},
	}
	for _, c := range cases {
		if _, err := NewEmpiricalCDF(c.name, c.points); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	if _, err := NewEmpiricalCDF("ok", []CDFPoint{{100, 0.5}, {200, 1}}); err != nil {
		t.Errorf("valid CDF rejected: %v", err)
	}
}

func TestWebSearchShape(t *testing.T) {
	c := WebSearch()
	rng := rand.New(rand.NewSource(1))
	const n = 50000
	var mice, elephants int
	var total float64
	var miceBytes, elephantBytes float64
	for i := 0; i < n; i++ {
		s := float64(c.Sample(rng))
		total += s
		if s < 100e3 {
			mice++
			miceBytes += s
		}
		if s > 1e6 {
			elephants++
			elephantBytes += s
		}
	}
	miceFrac := float64(mice) / n
	if miceFrac < 0.45 || miceFrac > 0.75 {
		t.Errorf("mice fraction = %v, want majority of flows small", miceFrac)
	}
	// The heavy tail carries most of the bytes.
	if elephantBytes/total < 0.6 {
		t.Errorf("elephant byte share = %v, want > 0.6", elephantBytes/total)
	}
	mean := total / n
	if mean < 0.8e6 || mean > 3e6 {
		t.Errorf("empirical mean = %v, want ~1.6MB", mean)
	}
	// Analytic mean agrees with empirical within 20%.
	am := c.Mean()
	if math.Abs(am-mean)/mean > 0.2 {
		t.Errorf("analytic mean %v vs empirical %v", am, mean)
	}
}

func TestDataMiningShape(t *testing.T) {
	c := DataMining()
	rng := rand.New(rand.NewSource(2))
	const n = 20000
	tiny := 0
	for i := 0; i < n; i++ {
		if c.Sample(rng) <= 1000 {
			tiny++
		}
	}
	frac := float64(tiny) / n
	if frac < 0.5 || frac > 0.7 {
		t.Errorf("<=1KB fraction = %v, want ~0.6", frac)
	}
}

func TestScaled(t *testing.T) {
	c := WebSearch().Scaled(0.1)
	rng := rand.New(rand.NewSource(3))
	var total float64
	const n = 20000
	for i := 0; i < n; i++ {
		total += float64(c.Sample(rng))
	}
	mean := total / n
	full := WebSearch().Mean()
	if math.Abs(mean-full*0.1)/(full*0.1) > 0.25 {
		t.Errorf("scaled mean %v, want ~%v", mean, full*0.1)
	}
}

func TestPoissonArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := NewPoissonArrivals(rng, 1000) // 1000 flows/s -> mean 1ms
	var total float64
	const n = 20000
	for i := 0; i < n; i++ {
		total += p.Next().Seconds()
	}
	mean := total / n
	if mean < 0.0009 || mean > 0.0011 {
		t.Errorf("mean inter-arrival = %v, want ~1ms", mean)
	}
}

func TestPoissonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero rate")
		}
	}()
	NewPoissonArrivals(rand.New(rand.NewSource(1)), 0)
}

func TestArrivalRateForLoad(t *testing.T) {
	// 50% of 160Gbps = 10GB/s; 16 conns of 1MB mean flows
	// -> 10e9 / (16 * 1e6) = 625 flows/s/conn.
	got := ArrivalRateForLoad(0.5, 160e9, 16, 1e6)
	if math.Abs(got-625) > 1e-6 {
		t.Errorf("rate = %v, want 625", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on bad args")
		}
	}()
	ArrivalRateForLoad(0, 1, 1, 1)
}

// Property: samples are always within the distribution's support and
// positive.
func TestQuickSampleSupport(t *testing.T) {
	c := WebSearch()
	maxBytes := int64(30e6)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			s := c.Sample(rng)
			if s <= 0 || s > maxBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Error(err)
	}
}

// Property: sampling is deterministic per seed.
func TestQuickSampleDeterministic(t *testing.T) {
	c := WebSearch()
	f := func(seed int64) bool {
		a := rand.New(rand.NewSource(seed))
		b := rand.New(rand.NewSource(seed))
		for i := 0; i < 20; i++ {
			if c.Sample(a) != c.Sample(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}
