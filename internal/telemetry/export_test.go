package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clove/internal/packet"
	"clove/internal/sim"
)

// streamNames are the exported stream basenames (metrics included).
var streamNames = []string{"queue", "weights", "cwnd", "retx", "flowlet", "fct", "sim", "metrics"}

func TestExportWritesEveryStreamInBothFormats(t *testing.T) {
	s := sim.New(1)
	tr := NewTracer(s, Config{})
	flow := packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 100, DstPort: 80, Proto: packet.ProtoTCP}
	tr.QueueSample(10, 3, "L1->S1", 7, 2, 1)
	tr.WeightSample(10, 0, 4, 7000, 0.25, 0.5, -1)
	tr.CwndSample(10, flow, 10, 32.5, 200_000, 14600)
	tr.Retransmit(11, flow, 1460, RetxFast)
	tr.Retransmit(12, flow, 2920, RetxTimeout)
	tr.Flowlet(13, flow, 2, 7001, 12, 17520, 150_000)
	tr.FCT(14, 1, 2, 100_000, 1_000_000)
	tr.Counter("netem.ecn_marks").Add(2)
	tr.Gauge("run.load").Set(0.7)

	dir := t.TempDir()
	if err := tr.Export(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range streamNames {
		for _, ext := range []string{".jsonl", ".csv"} {
			b, err := os.ReadFile(filepath.Join(dir, name+ext))
			if err != nil {
				t.Fatalf("stream %s%s missing: %v", name, ext, err)
			}
			if ext == ".csv" && len(b) == 0 {
				t.Errorf("%s.csv has no header", name)
			}
		}
	}

	// Every JSONL line must parse, with keys matching the CSV header.
	for _, name := range streamNames {
		csv, _ := os.ReadFile(filepath.Join(dir, name+".csv"))
		lines := strings.Split(strings.TrimRight(string(csv), "\n"), "\n")
		cols := strings.Split(lines[0], ",")
		jb, _ := os.ReadFile(filepath.Join(dir, name+".jsonl"))
		jlines := strings.Split(strings.TrimRight(string(jb), "\n"), "\n")
		if jb == nil || jlines[0] == "" {
			jlines = nil
		}
		if got, want := len(jlines), len(lines)-1; got != want {
			t.Errorf("%s: %d JSONL records vs %d CSV rows", name, got, want)
		}
		for i, l := range jlines {
			var m map[string]any
			if err := json.Unmarshal([]byte(l), &m); err != nil {
				t.Fatalf("%s.jsonl line %d: %v", name, i+1, err)
			}
			if len(m) != len(cols) {
				t.Errorf("%s.jsonl line %d has %d keys, header has %d columns", name, i+1, len(m), len(cols))
			}
		}
	}

	// Spot-check values survive the round trip.
	fct, _ := os.ReadFile(filepath.Join(dir, "fct.csv"))
	if want := "14,1,2,100000,1000000"; !strings.Contains(string(fct), want) {
		t.Errorf("fct.csv missing row %q:\n%s", want, fct)
	}
	retx, _ := os.ReadFile(filepath.Join(dir, "retx.jsonl"))
	if !strings.Contains(string(retx), `"kind":"timeout"`) || !strings.Contains(string(retx), `"kind":"fast"`) {
		t.Errorf("retx.jsonl missing kinds:\n%s", retx)
	}
	metrics, _ := os.ReadFile(filepath.Join(dir, "metrics.csv"))
	for _, want := range []string{"netem.ecn_marks,2", "run.load,0.7", "telemetry.dropped.fct,0"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics.csv missing %q:\n%s", want, metrics)
		}
	}
}

func TestExportIsByteStableAcrossCalls(t *testing.T) {
	build := func() *Tracer {
		s := sim.New(1)
		tr := NewTracer(s, Config{})
		flow := packet.FiveTuple{Src: 3, Dst: 4, SrcPort: 9, DstPort: 80, Proto: packet.ProtoTCP}
		for i := 0; i < 50; i++ {
			tr.QueueSample(sim.Time(i), packet.LinkID(i%5), "lk", i%17, int64(i), 0)
			tr.WeightSample(sim.Time(i), 3, 4, uint16(7000+i%4), 1.0/3.0, 0.1*float64(i%10), sim.Time(i%3)-1)
			tr.Retransmit(sim.Time(i), flow, int64(i)*1460, RetxKind(i%2))
		}
		tr.Counter("a").Add(5)
		tr.Gauge("b").Set(1.0 / 3.0)
		return tr
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := build().Export(dirA); err != nil {
		t.Fatal(err)
	}
	if err := build().Export(dirB); err != nil {
		t.Fatal(err)
	}
	for _, name := range streamNames {
		for _, ext := range []string{".jsonl", ".csv"} {
			a, _ := os.ReadFile(filepath.Join(dirA, name+ext))
			b, _ := os.ReadFile(filepath.Join(dirB, name+ext))
			if string(a) != string(b) {
				t.Errorf("%s%s differs between identical tracers", name, ext)
			}
		}
	}
}
