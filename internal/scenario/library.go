package scenario

import (
	"fmt"
	"io/fs"
	"os"
	"sort"
	"strings"

	"clove/scenarios"
)

// LoadLibrary parses every *.json spec in fsys into a name-keyed library.
// Any parse or validation failure, and any two files declaring the same
// scenario name, is an error: a broken library file should fail loudly at
// startup (and in the library test), not when someone runs the scenario.
func LoadLibrary(fsys fs.FS) (map[string]*Spec, error) {
	entries, err := fs.ReadDir(fsys, ".")
	if err != nil {
		return nil, fmt.Errorf("scenario: read library: %w", err)
	}
	lib := map[string]*Spec{}
	from := map[string]string{}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		data, err := fs.ReadFile(fsys, ent.Name())
		if err != nil {
			return nil, fmt.Errorf("scenario: read %s: %w", ent.Name(), err)
		}
		sp, err := Parse(data)
		if err != nil {
			return nil, fmt.Errorf("scenario library %s: %w", ent.Name(), err)
		}
		if prev, dup := from[sp.Name]; dup {
			return nil, fmt.Errorf("scenario: duplicate scenario name %q (%s and %s)", sp.Name, prev, ent.Name())
		}
		from[sp.Name] = ent.Name()
		lib[sp.Name] = sp
	}
	return lib, nil
}

// Library returns the embedded scenario library, panicking on any defect in
// the shipped files (they are compiled into the binary; a bad one is a bug,
// and the library test catches it before release).
func Library() map[string]*Spec {
	lib, err := LoadLibrary(scenarios.FS)
	if err != nil {
		panic(err)
	}
	return lib
}

// Names lists the embedded scenarios in sorted order.
func Names() []string {
	lib := Library()
	names := make([]string, 0, len(lib))
	for name := range lib {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Load resolves nameOrPath: an embedded scenario name first, else a path to
// a spec file on disk.
func Load(nameOrPath string) (*Spec, error) {
	if sp, ok := Library()[nameOrPath]; ok {
		return sp.Clone(), nil
	}
	data, err := os.ReadFile(nameOrPath)
	if err != nil {
		return nil, fmt.Errorf("scenario: %q is neither an embedded scenario (%s) nor a readable file: %w",
			nameOrPath, strings.Join(Names(), ", "), err)
	}
	return Parse(data)
}
