package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Simulator is a single-threaded discrete-event scheduler. It owns the
// virtual clock: time only advances when Run (or Step) pops the next event.
//
// Simulator is not safe for concurrent use; the simulated network is a
// sequential program by design so that runs are reproducible.
type Simulator struct {
	now    Time
	queue  eventHeap
	nextID uint64
	rng    *rand.Rand

	processed uint64
	running   bool
	stopped   bool
}

// New returns a Simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. All randomness
// in a run must come from here to keep runs reproducible.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Processed reports how many events have fired so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending reports how many events are scheduled but not yet fired.
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: it would violate causality and always indicates a bug.
func (s *Simulator) At(at Time, fn func()) EventID {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	ev := &event{at: at, seq: s.nextID, fn: fn}
	s.nextID++
	heap.Push(&s.queue, ev)
	return EventID{ev: ev}
}

// After schedules fn to run delay after the current time.
func (s *Simulator) After(delay Time, fn func()) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and reports false.
func (s *Simulator) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.index < 0 {
		return false
	}
	s.queue.remove(id.ev.index)
	return true
}

// Step fires the single next event. It reports false when the queue is empty.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.at
	s.processed++
	ev.fn()
	return true
}

// Run fires events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.runInternal(func() bool { return true })
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to exactly deadline. Events scheduled after deadline remain queued.
func (s *Simulator) RunUntil(deadline Time) {
	s.runInternal(func() bool { return s.queue[0].at <= deadline })
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// RunForEvents fires at most n events; useful as a watchdog in tests.
func (s *Simulator) RunForEvents(n uint64) {
	fired := uint64(0)
	s.runInternal(func() bool { fired++; return fired <= n })
}

func (s *Simulator) runInternal(cont func() bool) {
	if s.running {
		panic("sim: reentrant Run")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for len(s.queue) > 0 && !s.stopped {
		if !cont() {
			return
		}
		ev := heap.Pop(&s.queue).(*event)
		s.now = ev.at
		s.processed++
		ev.fn()
	}
}

// Stop makes the innermost Run/RunUntil return after the current event's
// callback completes. Pending events stay queued.
func (s *Simulator) Stop() { s.stopped = true }

// Ticker invokes fn every interval, starting interval from now, until the
// returned cancel function is called. fn observes the tick time via Now.
func (s *Simulator) Ticker(interval Time, fn func()) (cancel func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker interval %v", interval))
	}
	stopped := false
	var schedule func()
	schedule = func() {
		s.After(interval, func() {
			if stopped {
				return
			}
			fn()
			if !stopped {
				schedule()
			}
		})
	}
	schedule()
	return func() { stopped = true }
}
