// Package datapath is the deployable userspace realization of Clove: tunnel
// endpoints over real UDP sockets that steer traffic across ECMP paths by
// varying the outer source port (one bound socket per discovered path),
// split the stream into flowlets, reflect congestion feedback in the shim
// header of reverse traffic, and adapt per-path weights exactly as the
// simulator's Clove-ECN does (the weight logic is shared code from
// internal/clove).
//
// What the paper's OVS datapath gets from the fabric — outer-header ECN
// marks — a userspace process cannot portably observe on a UDP socket, so
// each datagram carries a one-byte fabric prefix standing in for the outer
// IP ECN field; the PathEmulator (and any Clove-aware middle hop) marks it
// under queueing. DESIGN.md documents this substitution.
package datapath

import (
	"fmt"
	"net"
	"sync"
	"time"

	"clove/internal/clove"
	"clove/internal/sim"
	"clove/internal/wire"
)

// fabric prefix bits (stand-in for the outer IP ECN codepoint).
const (
	fabricECT = 1 << 0
	fabricCE  = 1 << 1
)

// headerLen is the datagram overhead: fabric byte + shim.
const headerLen = 1 + wire.SttShimLen

// shim version for this datapath.
const shimVersion = 1

// shim Flags bit marking a keepalive/feedback-only datagram.
const shimFlagBare = 1 << 5

// Config parameterizes an endpoint.
type Config struct {
	// Paths is the number of distinct outer source ports (= sockets) used.
	Paths int
	// FlowletGap splits the outgoing stream into flowlets.
	FlowletGap time.Duration
	// RelayInterval rate-limits feedback relays per path.
	RelayInterval time.Duration
	// Beta is the weight reduction on congestion feedback.
	Beta float64
}

// DefaultConfig returns LAN-scale defaults.
func DefaultConfig() Config {
	return Config{
		Paths:         4,
		FlowletGap:    500 * time.Microsecond,
		RelayInterval: 250 * time.Microsecond,
		Beta:          1.0 / 3.0,
	}
}

// Stats counts endpoint activity.
type Stats struct {
	Sent, Received   int64
	CEObserved       int64
	FeedbackSent     int64
	FeedbackReceived int64
	Flowlets         int64
	DecodeErrors     int64
	ProbesSent       int64
	ProbesAnswered   int64
	ProbeEchoes      int64
}

// Endpoint is one side of a Clove tunnel.
type Endpoint struct {
	cfg    Config
	conns  []*net.UDPConn
	ports  []uint16 // local source ports, one per path
	remote *net.UDPAddr

	mu       sync.Mutex
	onRecv   func(payload []byte)
	weights  *clove.WeightTable
	start    time.Time
	lastSend time.Time
	curPort  uint16
	flowlet  uint32
	// receiver-side observations of the peer's forward paths.
	obs   map[uint16]*obsEntry
	stats Stats

	// path-quality probing (ProbePaths).
	probeSeq uint32
	probes   map[uint32]probeState
	rtts     map[uint16]*rttSample

	wg     sync.WaitGroup
	closed chan struct{}
}

type obsEntry struct {
	pendingECN bool
	lastRelay  time.Time
}

// NewEndpoint creates an endpoint bound to cfg.Paths UDP sockets on
// localIP (use "127.0.0.1" for loopback tests; port 0 picks free ports).
func NewEndpoint(localIP string, cfg Config) (*Endpoint, error) {
	if cfg.Paths <= 0 {
		return nil, fmt.Errorf("datapath: need at least one path, got %d", cfg.Paths)
	}
	e := &Endpoint{
		cfg:    cfg,
		obs:    map[uint16]*obsEntry{},
		start:  time.Now(),
		closed: make(chan struct{}),
	}
	for i := 0; i < cfg.Paths; i++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(localIP)})
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("datapath: bind path %d: %w", i, err)
		}
		e.conns = append(e.conns, conn)
		e.ports = append(e.ports, uint16(conn.LocalAddr().(*net.UDPAddr).Port))
	}
	wcfg := clove.WeightTableConfig{
		Beta:         cfg.Beta,
		Floor:        0.02,
		CongestedAge: sim.FromDuration(4 * cfg.RelayInterval),
		UtilAge:      sim.FromDuration(8 * cfg.RelayInterval),
	}
	e.weights = clove.NewWeightTable(wcfg, e.ports)
	return e, nil
}

// SetOnRecv installs the handler for decapsulated tenant payloads. Safe to
// call at any time, including after Start.
func (e *Endpoint) SetOnRecv(fn func(payload []byte)) {
	e.mu.Lock()
	e.onRecv = fn
	e.mu.Unlock()
}

// Ports returns the endpoint's local source ports (its path identifiers).
func (e *Endpoint) Ports() []uint16 { return append([]uint16(nil), e.ports...) }

// Weights returns the current path-weight snapshot.
func (e *Endpoint) Weights() map[uint16]float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.weights.Weights()
}

// Stats returns a snapshot of the counters.
func (e *Endpoint) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Start connects the tunnel to the remote address (the peer's path-0 port
// or a fabric/emulator ingress) and begins receiving on all paths.
func (e *Endpoint) Start(remote string) error {
	addr, err := net.ResolveUDPAddr("udp", remote)
	if err != nil {
		return fmt.Errorf("datapath: resolve %q: %w", remote, err)
	}
	e.remote = addr
	for _, conn := range e.conns {
		conn := conn
		e.wg.Add(1)
		go e.readLoop(conn)
	}
	return nil
}

// now returns monotonic time as sim.Time for the shared weight logic.
func (e *Endpoint) now() sim.Time { return sim.FromDuration(time.Since(e.start)) }

// Send encapsulates payload and transmits it on the current flowlet's path,
// piggybacking pending feedback.
func (e *Endpoint) Send(payload []byte) error {
	e.mu.Lock()
	nowT := time.Now()
	if e.lastSend.IsZero() || nowT.Sub(e.lastSend) > e.cfg.FlowletGap {
		e.curPort = e.weights.NextPort()
		e.flowlet++
		e.stats.Flowlets++
	}
	e.lastSend = nowT
	port := e.curPort
	flowlet := e.flowlet
	fb := e.takeFeedbackLocked(nowT)
	e.stats.Sent++
	if fb.Valid {
		e.stats.FeedbackSent++
	}
	e.mu.Unlock()

	return e.transmit(port, flowlet, fb, payload, 0)
}

// transmit builds and sends a datagram out the socket bound to port.
func (e *Endpoint) transmit(port uint16, flowlet uint32, fb wire.Feedback, payload []byte, extraFlags uint8) error {
	shim := wire.SttShim{
		Version:   shimVersion,
		Flags:     extraFlags,
		FlowletID: flowlet,
		Feedback:  fb,
		PathPort:  port,
	}
	shim.PayloadLen = uint16(len(payload))
	buf := make([]byte, 1, headerLen+len(payload))
	buf[0] = fabricECT
	buf = shim.Marshal(buf)
	buf = append(buf, payload...)

	conn := e.connFor(port)
	if conn == nil {
		return fmt.Errorf("datapath: unknown path port %d", port)
	}
	_, err := conn.WriteToUDP(buf, e.remote)
	return err
}

func (e *Endpoint) connFor(port uint16) *net.UDPConn {
	for i, p := range e.ports {
		if p == port {
			return e.conns[i]
		}
	}
	return nil
}

// readLoop receives datagrams on one socket.
func (e *Endpoint) readLoop(conn *net.UDPConn) {
	defer e.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, src, err := conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-e.closed:
				return
			default:
				continue
			}
		}
		e.handle(buf[:n], src)
	}
}

// handle processes one received datagram.
func (e *Endpoint) handle(b []byte, src *net.UDPAddr) {
	if len(b) < headerLen {
		e.countDecodeError()
		return
	}
	fabric := b[0]
	var shim wire.SttShim
	if _, err := shim.Unmarshal(b[1:]); err != nil || shim.Version != shimVersion {
		e.countDecodeError()
		return
	}
	payload := b[headerLen:]
	if int(shim.PayloadLen) != len(payload) {
		e.countDecodeError()
		return
	}

	switch {
	case shim.Flags&shimFlagProbe != 0:
		e.handleProbe(&shim)
		return
	case shim.Flags&shimFlagProbeEcho != 0:
		e.handleProbeEcho(&shim)
		return
	}

	// The shim restates the sender's outer source port so path attribution
	// survives middle hops that rewrite the outer header (the emulator, a
	// NAT). Direct tunnels could use src.Port; the shim is authoritative.
	peerPort := shim.PathPort
	if peerPort == 0 {
		peerPort = uint16(src.Port)
	}

	e.mu.Lock()
	e.stats.Received++
	if fabric&fabricCE != 0 {
		e.stats.CEObserved++
		ob := e.obs[peerPort]
		if ob == nil {
			ob = &obsEntry{lastRelay: time.Now().Add(-time.Hour)}
			e.obs[peerPort] = ob
		}
		ob.pendingECN = true
	}
	if shim.Feedback.Valid {
		e.stats.FeedbackReceived++
		if shim.Feedback.ECN {
			e.weights.OnCongestion(shim.Feedback.Port, e.now())
		}
		if shim.Feedback.HasUtil {
			e.weights.OnUtilization(shim.Feedback.Port, shim.Feedback.Util, e.now())
		}
	}
	recv := e.onRecv
	bare := shim.Flags&shimFlagBare != 0
	e.mu.Unlock()

	if recv != nil && !bare {
		out := make([]byte, len(payload))
		copy(out, payload)
		recv(out)
	}
}

// takeFeedbackLocked picks one due observation for piggybacking.
func (e *Endpoint) takeFeedbackLocked(now time.Time) wire.Feedback {
	for port, ob := range e.obs {
		if !ob.pendingECN || now.Sub(ob.lastRelay) < e.cfg.RelayInterval {
			continue
		}
		ob.pendingECN = false
		ob.lastRelay = now
		return wire.Feedback{Valid: true, Port: port, ECN: true}
	}
	return wire.Feedback{}
}

// Keepalive sends a payload-less datagram (feedback carrier / BFD-style
// liveness) on every path.
func (e *Endpoint) Keepalive() {
	e.mu.Lock()
	fb := e.takeFeedbackLocked(time.Now())
	ports := append([]uint16(nil), e.ports...)
	e.mu.Unlock()
	for _, port := range ports {
		e.transmit(port, 0, fb, nil, shimFlagBare)
		fb = wire.Feedback{}
	}
}

// Close shuts down all sockets and waits for readers to exit.
func (e *Endpoint) Close() error {
	select {
	case <-e.closed:
	default:
		close(e.closed)
	}
	for _, c := range e.conns {
		c.Close()
	}
	e.wg.Wait()
	return nil
}

func (e *Endpoint) countDecodeError() {
	e.mu.Lock()
	e.stats.DecodeErrors++
	e.mu.Unlock()
}
