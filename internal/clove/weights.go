package clove

import (
	"math"

	"clove/internal/sim"
)

// PathState is the per-(destination, encap source port) state kept by the
// source hypervisor: the current WRR weight and the latest congestion /
// utilization observations reflected by the destination hypervisor.
type PathState struct {
	Port          uint16
	Weight        float64
	LastCongested sim.Time // most recent ECN feedback for this path; 0 = never
	Util          float64  // latest INT-reported max path utilization
	UtilAt        sim.Time // when Util was reported; 0 = never
}

// WeightTableConfig parameterizes the congestion-reaction rule of Sec. 3.2.
type WeightTableConfig struct {
	// Beta is the fraction removed from a congested path's weight
	// ("reduced by some predefined proportion, e.g., by a third").
	Beta float64
	// Floor is the minimum weight any path keeps, so that previously
	// congested paths continue to be probed and can recover.
	Floor float64
	// CongestedAge is how long after an ECN report a path is still
	// considered congested (for the redistribution rule and for deciding
	// when to relay ECN to the sending VM).
	CongestedAge sim.Time
	// UtilAge is how long an INT utilization sample stays trusted; older
	// samples decay toward zero (optimism re-probes quiet paths).
	UtilAge sim.Time
	// Frozen disables all weight adaptation: OnCongestion and OnUtilization
	// become no-ops before touching any state, so the table stays at the
	// uniform weights it was created with. Differential tests use this to
	// compare Clove-ECN's machinery against a plain round-robin reference.
	Frozen bool
}

// DefaultWeightTableConfig matches the paper's parameters: beta = 1/3,
// congestion memory of a few RTTs.
func DefaultWeightTableConfig(rtt sim.Time) WeightTableConfig {
	return WeightTableConfig{
		Beta:         1.0 / 3.0,
		Floor:        0.02,
		CongestedAge: 4 * rtt,
		UtilAge:      8 * rtt,
	}
}

// WeightTable is the source hypervisor's per-destination path table
// (Fig. 2: "Path weight table"). It owns the WRR scheduler, applies the
// Clove-ECN weight-adjustment rule on congestion feedback, records INT
// utilization for Clove-INT, and survives topology transitions by carrying
// state over to re-discovered port sets.
type WeightTable struct {
	cfg   WeightTableConfig
	paths []PathState
	wrr   *WRR
	// floored is normalize's scratch marker slice, retained so the
	// per-feedback water-filling pass does not allocate.
	floored []bool
	// recipients is OnCongestion's scratch index slice, retained so the
	// real datapath's feedback path stays allocation-free.
	recipients []int
}

// NewWeightTable creates a table over the discovered ports with equal
// weights.
func NewWeightTable(cfg WeightTableConfig, ports []uint16) *WeightTable {
	t := &WeightTable{cfg: cfg, wrr: NewWRR(nil)}
	t.SetPorts(ports)
	return t
}

// SetPorts installs a (re-)discovered port set. Per the paper's
// optimization, state learned for a port that remains in the set is kept;
// new ports start at the mean weight of the retained ones. Weights are then
// renormalized.
func (t *WeightTable) SetPorts(ports []uint16) {
	old := map[uint16]PathState{}
	for _, p := range t.paths {
		old[p.Port] = p
	}
	mean := 1.0
	if len(t.paths) > 0 {
		var sum float64
		kept := 0
		for _, port := range ports {
			if p, ok := old[port]; ok {
				sum += p.Weight
				kept++
			}
		}
		if kept > 0 {
			mean = sum / float64(kept)
		}
	}
	t.paths = t.paths[:0]
	for _, port := range ports {
		if p, ok := old[port]; ok {
			t.paths = append(t.paths, p)
		} else {
			t.paths = append(t.paths, PathState{Port: port, Weight: mean})
		}
	}
	t.normalize()
	t.syncWRR()
}

// Ports returns the current port set in table order.
func (t *WeightTable) Ports() []uint16 {
	out := make([]uint16, len(t.paths))
	for i, p := range t.paths {
		out[i] = p.Port
	}
	return out
}

// Len reports the number of paths.
func (t *WeightTable) Len() int { return len(t.paths) }

// Weights returns a snapshot map port -> weight.
func (t *WeightTable) Weights() map[uint16]float64 {
	m := make(map[uint16]float64, len(t.paths))
	for _, p := range t.paths {
		m[p.Port] = p.Weight
	}
	return m
}

// States returns a copy of the per-path state (tests, telemetry).
func (t *WeightTable) States() []PathState { return append([]PathState(nil), t.paths...) }

// VisitStates calls fn for every path's state in table order without
// copying the slice (the telemetry sampler walks tables every interval).
func (t *WeightTable) VisitStates(fn func(PathState)) {
	for i := range t.paths {
		fn(t.paths[i])
	}
}

// NextPort returns the next flowlet's port per weighted round-robin.
func (t *WeightTable) NextPort() uint16 { return t.wrr.Next() }

// OnCongestion applies the Clove-ECN rule for ECN feedback on port at time
// now: remove Beta of the path's weight and spread it equally over the
// currently-uncongested other paths (over all other paths if none is
// uncongested), then re-floor and renormalize.
func (t *WeightTable) OnCongestion(port uint16, now sim.Time) {
	if t.cfg.Frozen {
		return
	}
	idx := t.index(port)
	if idx < 0 {
		return
	}
	t.paths[idx].LastCongested = now

	removed := t.paths[idx].Weight * t.cfg.Beta
	t.paths[idx].Weight -= removed

	recipients := t.recipients[:0]
	for i := range t.paths {
		if i != idx && !t.congested(i, now) {
			recipients = append(recipients, i)
		}
	}
	if len(recipients) == 0 {
		for i := range t.paths {
			if i != idx {
				recipients = append(recipients, i)
			}
		}
	}
	if len(recipients) == 0 {
		// Single path: nothing to shift to; restore.
		t.paths[idx].Weight += removed
		return
	}
	share := removed / float64(len(recipients))
	for _, i := range recipients {
		t.paths[i].Weight += share
	}
	t.recipients = recipients[:0]
	t.normalize()
	t.syncWRR()
}

// OnUtilization records an INT utilization report for port.
func (t *WeightTable) OnUtilization(port uint16, util float64, now sim.Time) {
	if t.cfg.Frozen {
		return
	}
	if idx := t.index(port); idx >= 0 {
		t.paths[idx].Util = util
		t.paths[idx].UtilAt = now
	}
}

// LeastUtilizedPort returns the port with the smallest current utilization
// estimate (Clove-INT's proactive choice). Samples older than UtilAge count
// as zero so that quiet paths get re-probed. Ties break by table order.
//
// When no path has a fresh sample at all (run start, or every report aged
// out), every effective utilization is zero and picking the tie-break winner
// would herd every new flowlet onto table index 0. Instead the choice falls
// back to the table's weighted round-robin, which spreads flowlets across
// all paths until INT feedback arrives.
func (t *WeightTable) LeastUtilizedPort(now sim.Time) uint16 {
	if len(t.paths) == 0 {
		panic("clove: LeastUtilizedPort on empty table")
	}
	best, bestUtil := 0, math.Inf(1)
	anyFresh := false
	for i := range t.paths {
		if t.fresh(i, now) {
			anyFresh = true
		}
		u := t.effectiveUtil(i, now)
		if u < bestUtil {
			best, bestUtil = i, u
		}
	}
	if !anyFresh {
		return t.wrr.Next()
	}
	return t.paths[best].Port
}

// AllCongested reports whether every path has fresh congestion feedback —
// the condition under which Clove stops masking ECN from the sending VM.
func (t *WeightTable) AllCongested(now sim.Time) bool {
	if len(t.paths) == 0 {
		return false
	}
	for i := range t.paths {
		if !t.congested(i, now) {
			return false
		}
	}
	return true
}

func (t *WeightTable) congested(i int, now sim.Time) bool {
	lc := t.paths[i].LastCongested
	return lc > 0 && now-lc < t.cfg.CongestedAge
}

// fresh reports whether path i has a utilization sample within UtilAge.
func (t *WeightTable) fresh(i int, now sim.Time) bool {
	return t.paths[i].UtilAt != 0 && now-t.paths[i].UtilAt <= t.cfg.UtilAge
}

func (t *WeightTable) effectiveUtil(i int, now sim.Time) float64 {
	if !t.fresh(i, now) {
		return 0
	}
	return t.paths[i].Util
}

func (t *WeightTable) index(port uint16) int {
	for i := range t.paths {
		if t.paths[i].Port == port {
			return i
		}
	}
	return -1
}

// normalize clamps weights to the floor and rescales to sum 1, keeping the
// floor invariant after the rescale.
//
// A single clamp-then-rescale pass is not enough: clamping raises the sum
// above 1, and dividing by that sum pushes the clamped paths back below the
// documented minimum — with many paths near the floor the violation
// compounds, and Clove stops probing exactly the paths the floor exists to
// keep alive. Instead, water-fill: pin every path that lands at the floor
// and rescale only the free paths into the remaining mass, repeating until
// no free path falls below the floor. The first iteration is numerically
// identical to the old single pass (multiply by 1, divide by sum), so runs
// that never hit the floor are bit-for-bit unchanged.
//
// When the floor itself is infeasible (Floor * len(paths) >= 1, e.g. 64
// paths at the default 0.02) no distribution can satisfy it; the table
// falls back to uniform weights, the closest floor-respecting shape.
func (t *WeightTable) normalize() {
	n := len(t.paths)
	if n == 0 {
		return
	}
	floor := t.cfg.Floor
	if floor*float64(n) >= 1 {
		eq := 1.0 / float64(n)
		for i := range t.paths {
			t.paths[i].Weight = eq
		}
		return
	}
	var sum float64
	for i := range t.paths {
		if t.paths[i].Weight < floor {
			t.paths[i].Weight = floor
		}
		sum += t.paths[i].Weight
	}
	if sum <= 0 {
		eq := 1.0 / float64(n)
		for i := range t.paths {
			t.paths[i].Weight = eq
		}
		return
	}
	if cap(t.floored) < n {
		t.floored = make([]bool, n)
	}
	floored := t.floored[:n]
	for i := range floored {
		floored[i] = false
	}
	// Each iteration either converges or pins at least one more path, so the
	// loop runs at most n times. Feasibility (floor*n < 1) guarantees the
	// free paths' target mass always exceeds floor per path on average, so
	// not every path can end up pinned; the defensive break below only
	// triggers under floating-point pathology.
	for iter := 0; iter < n; iter++ {
		nFloored := 0
		sumFree := 0.0
		for i := range t.paths {
			if floored[i] {
				nFloored++
			} else {
				sumFree += t.paths[i].Weight
			}
		}
		target := 1 - floor*float64(nFloored)
		if nFloored == n || sumFree <= 0 {
			break
		}
		changed := false
		for i := range t.paths {
			if floored[i] {
				continue
			}
			w := t.paths[i].Weight * target / sumFree
			if w < floor {
				w = floor
				floored[i] = true
				changed = true
			}
			t.paths[i].Weight = w
		}
		if !changed {
			return
		}
	}
}

func (t *WeightTable) syncWRR() {
	ports := make([]uint16, len(t.paths))
	weights := make([]float64, len(t.paths))
	for i, p := range t.paths {
		ports[i] = p.Port
		weights[i] = p.Weight
	}
	t.wrr.Reset(ports, weights)
}
