package datapath

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pair creates two endpoints tunnelling directly to each other (no
// emulator): a's traffic targets b's path-0 port and vice versa.
func pair(t *testing.T, cfg Config) (*Endpoint, *Endpoint) {
	t.Helper()
	a, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	if err := a.Start(fmt.Sprintf("127.0.0.1:%d", b.Ports()[0])); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(fmt.Sprintf("127.0.0.1:%d", a.Ports()[0])); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestEndpointDelivery(t *testing.T) {
	a, b := pair(t, DefaultConfig())
	var got atomic.Int64
	var mu sync.Mutex
	var last []byte
	b.SetOnRecv(func(p []byte) {
		// p aliases a shard receive buffer: copy to retain.
		mu.Lock()
		last = append(last[:0], p...)
		mu.Unlock()
		got.Add(1)
	})
	msg := []byte("hello through the overlay")
	for i := 0; i < 10; i++ {
		if err := a.Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return got.Load() == 10 }, "delivery")
	mu.Lock()
	defer mu.Unlock()
	if string(last) != string(msg) {
		t.Errorf("payload corrupted: %q", last)
	}
	if a.Stats().Sent != 10 {
		t.Errorf("sent = %d", a.Stats().Sent)
	}
}

func TestEndpointFlowletSplitting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlowletGap = time.Millisecond
	a, b := pair(t, cfg)
	b.SetOnRecv(func([]byte) {})
	// Two bursts separated by > gap: at least 2 flowlets.
	for i := 0; i < 5; i++ {
		a.Send([]byte("x"))
	}
	time.Sleep(5 * time.Millisecond)
	for i := 0; i < 5; i++ {
		a.Send([]byte("x"))
	}
	if fl := a.Stats().Flowlets; fl < 2 {
		t.Errorf("flowlets = %d, want >= 2", fl)
	}
}

func TestEndpointRejectsZeroPaths(t *testing.T) {
	if _, err := NewEndpoint("127.0.0.1", Config{Paths: 0}); err == nil {
		t.Error("zero-path endpoint created")
	}
}

func TestFeedbackShiftsWeightsThroughEmulator(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Paths = 2
	cfg.FlowletGap = 200 * time.Microsecond
	cfg.RelayInterval = 100 * time.Microsecond

	// Receiver first (emulator needs its address).
	recv, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	// One clean path and one that marks CE aggressively.
	emu, err := NewPathEmulator("127.0.0.1",
		fmt.Sprintf("127.0.0.1:%d", recv.Ports()[0]),
		[]PathProfile{
			{},                                // path for the first-seen sender port: clean
			{ECNDepth: 1, RateBps: 5_000_000}, // second port: slow and marking
		})
	if err != nil {
		t.Fatal(err)
	}
	defer emu.Close()

	snd, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()

	// Sender's forward traffic goes through the emulator; receiver's
	// reverse traffic (feedback carrier) goes directly back to the sender.
	if err := snd.Start(emu.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := recv.Start(fmt.Sprintf("127.0.0.1:%d", snd.Ports()[0])); err != nil {
		t.Fatal(err)
	}
	recv.SetOnRecv(func([]byte) {})
	snd.SetOnRecv(func([]byte) {})

	payload := make([]byte, 1200)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // forward traffic
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snd.Send(payload)
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	go func() { // reverse keepalives carry the feedback
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				recv.Keepalive()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	// Wait for the first relay only: each feedback shifts weight off the
	// marked path, and on a slow machine the reduced share can stop
	// exceeding the 5 Mbps path's queue — CE (correctly) stops recurring,
	// so demanding several relays races the adaptive equilibrium. The
	// weight-spread assertion below is what proves the shift happened.
	waitFor(t, 5*time.Second, func() bool {
		return snd.Stats().FeedbackReceived >= 1
	}, "feedback arrival at sender")
	close(stop)
	wg.Wait()

	if recv.Stats().CEObserved == 0 {
		t.Fatal("receiver observed no CE marks")
	}
	w := snd.Weights()
	var minW, maxW = 1.0, 0.0
	for _, x := range w {
		if x < minW {
			minW = x
		}
		if x > maxW {
			maxW = x
		}
	}
	if maxW-minW < 0.05 {
		t.Errorf("weights did not shift away from the marked path: %v", w)
	}
}

func TestEmulatorPreservesPayload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Paths = 2
	recv, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	emu, err := NewPathEmulator("127.0.0.1",
		fmt.Sprintf("127.0.0.1:%d", recv.Ports()[0]),
		[]PathProfile{{Delay: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer emu.Close()
	snd, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	if err := snd.Start(emu.Addr()); err != nil {
		t.Fatal(err)
	}

	var got atomic.Int64
	recv.SetOnRecv(func(p []byte) {
		if len(p) == 999 {
			got.Add(1)
		}
	})
	if err := recv.Start(fmt.Sprintf("127.0.0.1:%d", snd.Ports()[0])); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		snd.Send(make([]byte, 999))
	}
	waitFor(t, 2*time.Second, func() bool { return got.Load() == 5 }, "emulated delivery")
}

func TestEndpointDecodeErrorCounted(t *testing.T) {
	a, _ := pair(t, DefaultConfig())
	a.handleFrame(a.shards[0], []byte{1, 2, 3}, 0)
	if a.Stats().DecodeErrors != 1 {
		t.Error("decode error not counted")
	}
}

func TestProbePathsMeasuresRTT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Paths = 2
	recv, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	// Path for the 2nd-seen port is slow (5ms added delay).
	emu, err := NewPathEmulator("127.0.0.1",
		fmt.Sprintf("127.0.0.1:%d", recv.Ports()[0]),
		[]PathProfile{
			{Delay: 100 * time.Microsecond},
			{Delay: 5 * time.Millisecond},
		})
	if err != nil {
		t.Fatal(err)
	}
	defer emu.Close()
	snd, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	if err := snd.Start(emu.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := recv.Start(fmt.Sprintf("127.0.0.1:%d", snd.Ports()[0])); err != nil {
		t.Fatal(err)
	}
	recv.SetOnRecv(func([]byte) {})
	snd.SetOnRecv(func([]byte) {})

	// Warm both emulated paths deterministically (profile assignment is by
	// first appearance), then probe repeatedly.
	for i := 0; i < 4; i++ {
		snd.ProbePaths()
		time.Sleep(10 * time.Millisecond)
	}
	waitFor(t, 5*time.Second, func() bool { return snd.Stats().ProbeEchoes >= 2 }, "probe echoes")

	rtts := snd.PathRTTs()
	if len(rtts) != 2 {
		t.Fatalf("rtts = %v", rtts)
	}
	var fast, slow time.Duration
	for _, r := range rtts {
		if r.Samples == 0 {
			t.Fatalf("path %d never measured", r.Port)
		}
		if fast == 0 || r.RTT < fast {
			fast = r.RTT
		}
		if r.RTT > slow {
			slow = r.RTT
		}
	}
	if slow < fast+2*time.Millisecond {
		t.Errorf("slow path RTT %v not clearly above fast %v", slow, fast)
	}
	if recv.Stats().ProbesAnswered == 0 {
		t.Error("receiver answered no probes")
	}
}
