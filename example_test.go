package clove_test

import (
	"fmt"

	"clove"
)

// ExampleNewCluster runs a small Clove-ECN deployment on the paper's
// leaf-spine fabric and reports how many web-search jobs completed.
func ExampleNewCluster() {
	c := clove.NewCluster(clove.ClusterConfig{
		Seed:   7,
		Topo:   clove.ScaledTestbed(1.0, 4),
		Scheme: clove.CloveECN,
	})
	res := c.RunWebSearch(clove.WebSearchParams{
		Load:      0.4,
		TotalJobs: 100,
		SizeScale: 0.05,
	})
	fmt.Printf("completed %d jobs, timed out: %v\n", res.Completed, res.TimedOut)
	// Output: completed 100 jobs, timed out: false
}

// ExampleNewCluster_incast drives the partition-aggregate workload.
func ExampleNewCluster_incast() {
	c := clove.NewCluster(clove.ClusterConfig{
		Seed:   7,
		Topo:   clove.ScaledTestbed(1.0, 4),
		Scheme: clove.EdgeFlowlet,
	})
	res := c.RunIncast(clove.IncastParams{
		Fanout:        3,
		ResponseBytes: 300_000,
		Requests:      4,
	})
	fmt.Printf("requests served: %d\n", res.Completed)
	// Output: requests served: 4
}

// ExampleNewEndpoint shows the real userspace datapath: an endpoint binds
// one UDP socket per ECMP path.
func ExampleNewEndpoint() {
	cfg := clove.DefaultEndpointConfig()
	cfg.Paths = 4
	ep, err := clove.NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		fmt.Println("bind failed:", err)
		return
	}
	defer ep.Close()
	fmt.Printf("paths bound: %d\n", len(ep.Ports()))
	// Output: paths bound: 4
}

// ExampleSchemes lists every load-balancing scheme the simulator hosts.
func ExampleSchemes() {
	for _, s := range clove.Schemes() {
		fmt.Println(s)
	}
	// Output:
	// ecmp
	// edge-flowlet
	// clove-ecn
	// clove-int
	// presto
	// mptcp
	// conga
	// letflow
	// clove-latency
	// concury
	// charon
}
