package scenario

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"testing/fstest"

	"clove/scenarios"
)

// TestEmbeddedLibrary: the shipped library loads, is big enough, and follows
// the name-matches-filename convention (so -list-scenarios and the files on
// disk stay in sync).
func TestEmbeddedLibrary(t *testing.T) {
	lib, err := LoadLibrary(scenarios.FS)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib) < 10 {
		t.Errorf("embedded library has %d scenarios, want >= 10", len(lib))
	}
	entries, err := fs.ReadDir(scenarios.FS, ".")
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		data, err := fs.ReadFile(scenarios.FS, ent.Name())
		if err != nil {
			t.Fatal(err)
		}
		sp, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", ent.Name(), err)
		}
		if want := strings.TrimSuffix(ent.Name(), ".json"); sp.Name != want {
			t.Errorf("%s declares name %q, want %q (name must match filename)", ent.Name(), sp.Name, want)
		}
		if sp.Description == "" {
			t.Errorf("%s: missing description (shown by -list-scenarios)", ent.Name())
		}
	}
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	if len(names) != len(lib) {
		t.Errorf("Names() has %d entries, library %d", len(names), len(lib))
	}
}

const minimalSpec = `{
  "name": "%s",
  "topology": {"k": 4},
  "workload": {"load": 0.5, "total_jobs": 10, "mix": {"web_search": 1}},
  "schemes": ["ecmp"]
}`

func specJSON(name string) []byte {
	return []byte(strings.Replace(minimalSpec, "%s", name, 1))
}

func TestLoadLibraryDuplicateName(t *testing.T) {
	fsys := fstest.MapFS{
		"a.json": {Data: specJSON("dup-name")},
		"b.json": {Data: specJSON("dup-name")},
	}
	_, err := LoadLibrary(fsys)
	if err == nil {
		t.Fatal("LoadLibrary accepted two files with the same scenario name")
	}
	want := `scenario: duplicate scenario name "dup-name" (a.json and b.json)`
	if err.Error() != want {
		t.Errorf("error mismatch:\n got: %s\nwant: %s", err, want)
	}
}

func TestLoadLibraryBadFile(t *testing.T) {
	fsys := fstest.MapFS{
		"broken.json": {Data: []byte(`{"name":"broken","topology":{"k":3}}`)},
	}
	_, err := LoadLibrary(fsys)
	if err == nil || !strings.Contains(err.Error(), "scenario library broken.json:") {
		t.Errorf("want a scenario-library-prefixed error, got %v", err)
	}
}

func TestLoadByNameAndPath(t *testing.T) {
	// Embedded name wins, and Load hands back a private copy.
	sp, err := Load("baseline-symmetric")
	if err != nil {
		t.Fatal(err)
	}
	sp.Workload.Load = 0.001
	again, err := Load("baseline-symmetric")
	if err != nil {
		t.Fatal(err)
	}
	if again.Workload.Load == 0.001 {
		t.Error("Load returned a shared spec: mutation leaked into the library")
	}

	// A path to a spec file on disk also resolves.
	path := filepath.Join(t.TempDir(), "mine.json")
	if err := os.WriteFile(path, specJSON("my-local-spec"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "my-local-spec" {
		t.Errorf("loaded name = %q, want my-local-spec", got.Name)
	}

	// Neither a name nor a file: the error lists the embedded library.
	_, err = Load("no-such-scenario")
	if err == nil || !strings.Contains(err.Error(), "neither an embedded scenario") ||
		!strings.Contains(err.Error(), "baseline-symmetric") {
		t.Errorf("want a neither-name-nor-file error listing the library, got %v", err)
	}
}
