package datapath

// PR 10 battery: the operated-endpoint contract — hot-reloadable knobs
// (SetFlowletGap/SetRelayInterval), live retargeting without dropping the
// endpoint, receive-only start, graceful drain, idempotent close, and the
// deterministic sorted weight form.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newCounting returns a receive-only endpoint counting deliveries.
func newCounting(t *testing.T, cfg Config) (*Endpoint, *atomic.Int64) {
	t.Helper()
	ep, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	var got atomic.Int64
	ep.SetOnRecv(func([]byte) { got.Add(1) })
	if err := ep.Start(""); err != nil {
		t.Fatal(err)
	}
	return ep, &got
}

func eachIOMode(t *testing.T, fn func(t *testing.T, cfg Config)) {
	for _, mode := range []struct {
		name    string
		noBatch bool
	}{{"batched", false}, {"fallback", true}} {
		if !batchSyscallsAvailable && !mode.noBatch {
			continue
		}
		t.Run(mode.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Paths = 2
			cfg.NoBatchSyscalls = mode.noBatch
			fn(t, cfg)
		})
	}
}

func TestReceiveOnlyStartThenRetarget(t *testing.T) {
	eachIOMode(t, func(t *testing.T, cfg Config) {
		recv, got := newCounting(t, cfg)

		snd, err := NewEndpoint("127.0.0.1", cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer snd.Close()
		// Receive-only: transmitting must fail until a remote is installed.
		if err := snd.Start(""); err != nil {
			t.Fatal(err)
		}
		if err := snd.Send([]byte("x")); err == nil {
			t.Fatal("Send succeeded without a remote")
		}
		if snd.RemoteAddr() != "" {
			t.Errorf("receive-only RemoteAddr = %q", snd.RemoteAddr())
		}
		// Retarget turns the receive-only endpoint into a sender without
		// restarting it.
		target := fmt.Sprintf("127.0.0.1:%d", recv.Ports()[0])
		if err := snd.Retarget(target); err != nil {
			t.Fatal(err)
		}
		if snd.RemoteAddr() != target {
			t.Errorf("RemoteAddr = %q, want %q", snd.RemoteAddr(), target)
		}
		for i := 0; i < 10; i++ {
			if err := snd.Send([]byte("after retarget")); err != nil {
				t.Fatal(err)
			}
		}
		waitFor(t, 2*time.Second, func() bool { return got.Load() == 10 }, "delivery after retarget")
	})
}

func TestRetargetBeforeStartErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Paths = 1
	ep, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.Retarget("127.0.0.1:9"); err == nil {
		t.Fatal("Retarget before Start succeeded")
	}
}

func TestRetargetMidTransferRedirects(t *testing.T) {
	eachIOMode(t, func(t *testing.T, cfg Config) {
		r1, got1 := newCounting(t, cfg)
		r2, got2 := newCounting(t, cfg)

		snd, err := NewEndpoint("127.0.0.1", cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer snd.Close()
		if err := snd.Start(fmt.Sprintf("127.0.0.1:%d", r1.Ports()[0])); err != nil {
			t.Fatal(err)
		}
		const half = 50
		for i := 0; i < half; i++ {
			if err := snd.Send([]byte("phase-1")); err != nil {
				t.Fatal(err)
			}
		}
		// Start again on a live endpoint = Retarget (the hot-reload path).
		if err := snd.Start(fmt.Sprintf("127.0.0.1:%d", r2.Ports()[0])); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < half; i++ {
			if err := snd.Send([]byte("phase-2")); err != nil {
				t.Fatal(err)
			}
		}
		waitFor(t, 2*time.Second, func() bool { return got1.Load()+got2.Load() == 2*half }, "both phases delivered")
		if got1.Load() != half || got2.Load() != half {
			t.Errorf("split = %d/%d, want %d/%d", got1.Load(), got2.Load(), half, half)
		}
		if st := snd.Stats(); st.SocketErrors != 0 {
			t.Errorf("socket errors during retarget: %d", st.SocketErrors)
		}
	})
}

func TestSetFlowletGapHotReload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Paths = 2
	cfg.FlowletGap = time.Hour // one giant flowlet
	a, b := pairCfg(t, cfg)
	b.SetOnRecv(func([]byte) {})
	for i := 0; i < 5; i++ {
		if err := a.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if fl := a.Stats().Flowlets; fl != 1 {
		t.Fatalf("flowlets before reload = %d, want 1", fl)
	}
	a.SetFlowletGap(time.Nanosecond) // every send is its own flowlet
	if got := a.FlowletGap(); got != time.Nanosecond {
		t.Fatalf("FlowletGap = %v after SetFlowletGap", got)
	}
	for i := 0; i < 5; i++ {
		time.Sleep(10 * time.Microsecond)
		if err := a.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if fl := a.Stats().Flowlets; fl < 4 {
		t.Errorf("flowlets after reload = %d, want >= 4 (gap change not applied)", fl)
	}
	// Invalid values are ignored, not applied.
	a.SetFlowletGap(0)
	a.SetFlowletGap(-time.Second)
	if got := a.FlowletGap(); got != time.Nanosecond {
		t.Errorf("non-positive gap applied: %v", got)
	}
}

func TestSetRelayIntervalHotReload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Paths = 1
	cfg.RelayInterval = time.Hour
	e, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	takeFeedback := func(now time.Time) bool {
		e.sendMu.Lock()
		defer e.sendMu.Unlock()
		return e.takeFeedbackLocked(now).Valid
	}
	sh := e.shards[0]
	sh.noteCE(10)
	now := time.Now() // after noteCE: its lastRelay back-dating is now a full interval ago
	if !takeFeedback(now) {
		t.Fatal("first relay not due")
	}
	sh.noteCE(10)
	// With a 1h relay interval the second relay is rate-limited...
	if takeFeedback(now.Add(time.Second)) {
		t.Fatal("relay not rate-limited")
	}
	// ...until the hot-reload shortens the interval.
	e.SetRelayInterval(time.Millisecond)
	if got := e.RelayInterval(); got != time.Millisecond {
		t.Fatalf("RelayInterval = %v", got)
	}
	if !takeFeedback(now.Add(time.Second)) {
		t.Error("relay still rate-limited after SetRelayInterval")
	}
	e.SetRelayInterval(-1)
	if got := e.RelayInterval(); got != time.Millisecond {
		t.Errorf("negative relay interval applied: %v", got)
	}
}

func TestDrainFlushesPendingEnqueues(t *testing.T) {
	eachIOMode(t, func(t *testing.T, cfg Config) {
		recv, got := newCounting(t, cfg)
		snd, err := NewEndpoint("127.0.0.1", cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer snd.Close()
		if err := snd.Start(fmt.Sprintf("127.0.0.1:%d", recv.Ports()[0])); err != nil {
			t.Fatal(err)
		}
		// Fill rings without flushing: fewer than Batch per path, so
		// nothing is on the wire until Drain flushes.
		const n = 20
		for i := 0; i < n; i++ {
			if err := snd.Enqueue([]byte("pending")); err != nil {
				t.Fatal(err)
			}
		}
		if err := snd.Drain(5 * time.Second); err != nil {
			t.Fatalf("drain: %v", err)
		}
		waitFor(t, 2*time.Second, func() bool { return got.Load() == n }, "drained frames delivered")
		// The endpoint is closed: transmitting now fails.
		if err := snd.Send([]byte("x")); err == nil {
			t.Error("Send succeeded on drained endpoint")
		}
	})
}

func TestDrainReceiveOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Paths = 2
	ep, _ := newCounting(t, cfg)
	if err := ep.Drain(2 * time.Second); err != nil {
		t.Fatalf("receive-only drain: %v", err)
	}
}

func TestCloseConcurrentIdempotent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Paths = 2
	a, _ := pairCfg(t, cfg)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if err := a.Close(); err != nil { // and once more after the dust settles
		t.Error(err)
	}
}

func TestWeightsSortedByPort(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Paths = 8
	e, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ws := e.WeightsSorted()
	if len(ws) != 8 {
		t.Fatalf("len = %d, want 8", len(ws))
	}
	sum := 0.0
	for i, pw := range ws {
		if i > 0 && ws[i-1].Port >= pw.Port {
			t.Fatalf("weights not sorted by port: %v", ws)
		}
		sum += pw.Weight
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("weights sum to %v, want ~1", sum)
	}
}
