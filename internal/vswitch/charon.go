package vswitch

import (
	"clove/internal/packet"
	"clove/internal/sim"
)

// charonSalt derives the second power-of-two-choices candidate from the
// same five-tuple; it must differ from the first pick's salt so the two
// candidate indices are independent.
const charonSalt = 0x7f4a7c15

// charonPath is one path's latest fabric-reported load sample.
type charonPath struct {
	port uint16
	util float64
	at   sim.Time // 0 = never reported
}

// Charon is the switch-assisted load-aware scheme: the *fabric* initiates
// per-path load telemetry (leaf switches stamp egress utilization into
// transiting data packets via netem's load-stamping hook, reusing the
// DRE/INT machinery), the destination hypervisor reflects it through the
// ordinary feedback channel, and the edge steers each new flowlet with
// power-of-two-choices — hash two candidate paths, take the less loaded
// one. It is the design midpoint between Clove-INT (edge requests
// telemetry) and CONGA (fabric owns the whole decision): smart switches,
// dumb-but-informed edge.
//
// Ties — including the cold start, when no path has a fresh sample — go to
// the first hash candidate, which is itself uniform across flows, so the
// scheme never herds onto a fixed table index (the Clove-INT stale-sample
// lesson).
type Charon struct {
	now     func() sim.Time
	utilAge sim.Time
	tables  map[packet.HostID][]charonPath
}

// NewCharon creates the policy. now provides the simulation clock; utilAge
// is how long a reflected load sample stays trusted (stale samples count as
// zero load so quiet paths get re-probed).
func NewCharon(utilAge sim.Time, now func() sim.Time) *Charon {
	return &Charon{now: now, utilAge: utilAge, tables: map[packet.HostID][]charonPath{}}
}

// Name implements PathPolicy.
func (*Charon) Name() string { return "charon" }

// PickPort implements PathPolicy: power-of-two-choices over the installed
// paths. Before discovery it degrades to Edge-Flowlet hashing.
func (c *Charon) PickPort(dst packet.HostID, flow packet.FiveTuple, flowletID uint32) uint16 {
	paths := c.tables[dst]
	n := len(paths)
	if n == 0 {
		return portHash(flow, flowletID+1)
	}
	if n == 1 {
		return paths[0].port
	}
	i, j := charonCandidates(flow, flowletID, n)
	now := c.now()
	if charonLoad(paths[j], now, c.utilAge) < charonLoad(paths[i], now, c.utilAge) {
		return paths[j].port
	}
	return paths[i].port
}

// charonCandidates derives the two distinct candidate indices for a
// (flow, flowlet) over n >= 2 paths: the first is a plain hash choice, the
// second a hash offset in [1, n-1] from it, so i != j always.
func charonCandidates(flow packet.FiveTuple, flowletID uint32, n int) (int, int) {
	i := int(portHash(flow, flowletID+1)) % n
	j := (i + 1 + int(portHash(flow, flowletID+charonSalt))%(n-1)) % n
	return i, j
}

// charonLoad is a path's effective load: the reflected utilization while
// the sample is fresh, zero once it ages out (optimism re-probes).
func charonLoad(p charonPath, now, utilAge sim.Time) float64 {
	if p.at == 0 || now-p.at > utilAge {
		return 0
	}
	return p.util
}

// OnFeedback implements PathPolicy: record the fabric-stamped utilization
// the destination reflected. ECN feedback counts as a fully-loaded path —
// a CE mark means a queue exceeded its threshold, which DRE utilization may
// understate. Feedback for a port not currently installed is dropped.
func (c *Charon) OnFeedback(dst packet.HostID, fb packet.Feedback, now sim.Time) {
	if !fb.Valid {
		return
	}
	paths := c.tables[dst]
	for i := range paths {
		if paths[i].port != fb.Port {
			continue
		}
		if fb.HasUtil {
			paths[i].util = fb.Util
			paths[i].at = now
		}
		if fb.ECN && paths[i].util < 1 {
			paths[i].util = 1
			paths[i].at = now
		}
		return
	}
}

// SetPaths implements PathPolicy: install the discovered set, carrying load
// samples over for ports that survive (rediscovery must not blind the
// balancer). An empty list withdraws the path set per the PathPolicy
// contract.
func (c *Charon) SetPaths(dst packet.HostID, ports []uint16) {
	old := c.tables[dst]
	next := make([]charonPath, len(ports))
	for i, port := range ports {
		next[i] = charonPath{port: port}
		for _, p := range old {
			if p.port == port {
				next[i] = p
				break
			}
		}
	}
	c.tables[dst] = next
}

// AllCongested implements PathPolicy; Charon never masks ECN.
func (*Charon) AllCongested(packet.HostID, sim.Time) bool { return false }

// charonRefEvent is one recorded control event for the replay reference.
type charonRefEvent struct {
	install bool
	ports   []uint16 // install payload
	fb      packet.Feedback
	at      sim.Time // feedback arrival time
}

// CharonRef is the independent reference for differential-testing Charon:
// it records every SetPaths and OnFeedback verbatim and, on each pick,
// folds the whole log into a load table from scratch before applying the
// same power-of-two-choices rule. The incremental sample carry-over in
// Charon.SetPaths and the drop-unknown-port rule in OnFeedback must be
// observationally identical to this replay on every sample of a run.
type CharonRef struct {
	now     func() sim.Time
	utilAge sim.Time
	logs    map[packet.HostID][]charonRefEvent
}

// NewCharonRef returns the replay-based reference policy.
func NewCharonRef(utilAge sim.Time, now func() sim.Time) *CharonRef {
	return &CharonRef{now: now, utilAge: utilAge, logs: map[packet.HostID][]charonRefEvent{}}
}

// Name implements PathPolicy.
func (*CharonRef) Name() string { return "charon-ref" }

// SetPaths implements PathPolicy: append to the log.
func (c *CharonRef) SetPaths(dst packet.HostID, ports []uint16) {
	c.logs[dst] = append(c.logs[dst], charonRefEvent{
		install: true, ports: append([]uint16(nil), ports...),
	})
}

// OnFeedback implements PathPolicy: append to the log.
func (c *CharonRef) OnFeedback(dst packet.HostID, fb packet.Feedback, now sim.Time) {
	if !fb.Valid {
		return
	}
	c.logs[dst] = append(c.logs[dst], charonRefEvent{fb: fb, at: now})
}

// PickPort implements PathPolicy by replaying the control log: installs
// rebuild the port list and discard samples of removed ports, feedback for
// a currently-installed port records a sample, everything else is dropped.
// The fold is independent code from Charon's incremental bookkeeping.
func (c *CharonRef) PickPort(dst packet.HostID, flow packet.FiveTuple, flowletID uint32) uint16 {
	type sample struct {
		util float64
		at   sim.Time
	}
	var ports []uint16
	samples := map[uint16]sample{}
	for _, ev := range c.logs[dst] {
		if ev.install {
			for p := range samples {
				if !containsPort(ev.ports, p) {
					delete(samples, p)
				}
			}
			ports = ev.ports
			continue
		}
		if !containsPort(ports, ev.fb.Port) {
			continue
		}
		s := samples[ev.fb.Port]
		if ev.fb.HasUtil {
			s = sample{util: ev.fb.Util, at: ev.at}
		}
		if ev.fb.ECN && s.util < 1 {
			s = sample{util: 1, at: ev.at}
		}
		samples[ev.fb.Port] = s
	}

	n := len(ports)
	if n == 0 {
		return portHash(flow, flowletID+1)
	}
	if n == 1 {
		return ports[0]
	}
	i, j := charonCandidates(flow, flowletID, n)
	now := c.now()
	load := func(port uint16) float64 {
		s, ok := samples[port]
		if !ok {
			return 0
		}
		return charonLoad(charonPath{port: port, util: s.util, at: s.at}, now, c.utilAge)
	}
	if load(ports[j]) < load(ports[i]) {
		return ports[j]
	}
	return ports[i]
}

// AllCongested implements PathPolicy.
func (*CharonRef) AllCongested(packet.HostID, sim.Time) bool { return false }
