package vswitch

import (
	"sort"

	"clove/internal/clove"
	"clove/internal/packet"
	"clove/internal/sim"
)

// PrestoFlowcellBytes is the flow segment size Presto sprays independently
// (the paper adapts Presto to route 64KB TSO segments over ECMP, Sec. 5).
const PrestoFlowcellBytes = 64 * 1024

// PrestoReorderTimeout flushes buffered out-of-order flowcells to the VM
// ("an empirical static timeout", Sec. 5).
const PrestoReorderTimeout = 600 * sim.Microsecond

// PrestoMaxBuffered bounds the per-flow reorder buffer so packet loss does
// not stall delivery indefinitely.
const PrestoMaxBuffered = 192

// Presto implements the paper's adaptation of Presto to L3 ECMP fabrics:
// the sender rotates through a pre-computed set of encap source ports per
// 64KB flowcell in (weighted) round-robin, congestion-obliviously; the
// receiver reassembles out-of-order flowcells before the VM sees them.
// For asymmetric topologies the experiment may install ideal static path
// weights (the benefit of the doubt the paper grants Presto).
type Presto struct {
	sim *sim.Simulator

	// send side
	wrr     map[packet.HostID]*clove.WRR
	weights map[packet.HostID]map[uint16]float64 // optional static weights
	cells   map[packet.FiveTuple]*prestoCell

	// receive side
	reorder map[packet.FiveTuple]*prestoReorderQ

	// stats
	FlowcellsStarted int64
	BufferedPackets  int64
	TimeoutFlushes   int64
}

type prestoCell struct {
	port      uint16
	remaining int
}

type prestoReorderQ struct {
	expected int64
	buf      []*packet.Packet // sorted by Seq
	timerSet bool
	deadline sim.Time
}

// NewPresto creates the policy bound to the simulation clock.
func NewPresto(s *sim.Simulator) *Presto {
	return &Presto{
		sim:     s,
		wrr:     map[packet.HostID]*clove.WRR{},
		weights: map[packet.HostID]map[uint16]float64{},
		cells:   map[packet.FiveTuple]*prestoCell{},
		reorder: map[packet.FiveTuple]*prestoReorderQ{},
	}
}

// Name implements PathPolicy.
func (*Presto) Name() string { return "presto" }

// SetPaths implements PathPolicy: installs the port set used for spraying.
func (p *Presto) SetPaths(dst packet.HostID, ports []uint16) {
	w := clove.NewWRR(ports)
	if sw := p.weights[dst]; sw != nil {
		weights := make([]float64, len(ports))
		for i, port := range ports {
			if v, ok := sw[port]; ok {
				weights[i] = v
			} else {
				weights[i] = 1
			}
		}
		w.Reset(ports, weights)
	}
	p.wrr[dst] = w
}

// SetStaticWeights installs ideal per-port weights for dst (Sec. 5.2 gives
// Presto the correct asymmetric weights a centralized controller would
// compute). Call before or after SetPaths; ports are matched by value.
func (p *Presto) SetStaticWeights(dst packet.HostID, weights map[uint16]float64) {
	p.weights[dst] = weights
	if w := p.wrr[dst]; w != nil {
		p.SetPaths(dst, w.Ports())
	}
}

// PickPort implements PathPolicy; Presto is per-packet, so this is only the
// fallback used before paths are installed.
func (p *Presto) PickPort(_ packet.HostID, flow packet.FiveTuple, flowletID uint32) uint16 {
	return portHash(flow, flowletID+1)
}

// PickPortPacket implements perPacketPolicy: one port per 64KB flowcell.
func (p *Presto) PickPortPacket(dst packet.HostID, flow packet.FiveTuple, payloadLen int) uint16 {
	w := p.wrr[dst]
	cell := p.cells[flow]
	if cell == nil {
		cell = &prestoCell{}
		p.cells[flow] = cell
	}
	if cell.remaining <= 0 {
		cell.remaining = PrestoFlowcellBytes
		if w != nil && w.Len() > 0 {
			cell.port = w.Next()
		} else {
			cell.port = portHash(flow, uint32(p.FlowcellsStarted)+1)
		}
		p.FlowcellsStarted++
	}
	cell.remaining -= payloadLen
	if payloadLen == 0 {
		// Pure ACKs ride the current cell's port; they are tiny and their
		// ordering does not matter for spraying.
		return cell.port
	}
	return cell.port
}

// OnFeedback implements PathPolicy (Presto is congestion-oblivious).
func (*Presto) OnFeedback(packet.HostID, packet.Feedback, sim.Time) {}

// AllCongested implements PathPolicy.
func (*Presto) AllCongested(packet.HostID, sim.Time) bool { return false }

// OnDeliver implements receiverHook: reassemble data packets in inner
// sequence order before the VM's TCP stack sees them, so spraying does not
// trigger duplicate-ACK storms. Pure ACKs and old (retransmitted) segments
// pass straight through.
func (p *Presto) OnDeliver(pkt *packet.Packet, deliver func(*packet.Packet)) {
	if pkt.PayloadLen == 0 {
		deliver(pkt)
		return
	}
	q := p.reorder[pkt.Inner]
	if q == nil {
		q = &prestoReorderQ{}
		p.reorder[pkt.Inner] = q
	}
	end := pkt.Seq + int64(pkt.PayloadLen)
	switch {
	case pkt.Seq <= q.expected:
		if end > q.expected {
			q.expected = end
		}
		deliver(pkt)
		p.drain(q, deliver)
	default:
		p.BufferedPackets++
		q.insert(pkt)
		if len(q.buf) >= PrestoMaxBuffered {
			p.flush(q, deliver)
			return
		}
		if !q.timerSet {
			q.timerSet = true
			q.deadline = p.sim.Now() + PrestoReorderTimeout
			p.armTimer(q, deliver)
		}
	}
}

func (p *Presto) armTimer(q *prestoReorderQ, deliver func(*packet.Packet)) {
	p.sim.At(q.deadline, func() {
		if !q.timerSet {
			return
		}
		if len(q.buf) == 0 {
			q.timerSet = false
			return
		}
		p.TimeoutFlushes++
		p.flush(q, deliver)
	})
}

// drain releases buffered packets that became in-order.
func (p *Presto) drain(q *prestoReorderQ, deliver func(*packet.Packet)) {
	for len(q.buf) > 0 && q.buf[0].Seq <= q.expected {
		pkt := q.buf[0]
		q.buf = q.buf[1:]
		if end := pkt.Seq + int64(pkt.PayloadLen); end > q.expected {
			q.expected = end
		}
		deliver(pkt)
	}
	if len(q.buf) == 0 {
		q.timerSet = false
	}
}

// flush releases everything in sequence order (loss recovery path).
func (p *Presto) flush(q *prestoReorderQ, deliver func(*packet.Packet)) {
	for _, pkt := range q.buf {
		if end := pkt.Seq + int64(pkt.PayloadLen); end > q.expected {
			q.expected = end
		}
		deliver(pkt)
	}
	q.buf = q.buf[:0]
	q.timerSet = false
}

func (q *prestoReorderQ) insert(pkt *packet.Packet) {
	i := sort.Search(len(q.buf), func(i int) bool { return q.buf[i].Seq >= pkt.Seq })
	q.buf = append(q.buf, nil)
	copy(q.buf[i+1:], q.buf[i:])
	q.buf[i] = pkt
}
