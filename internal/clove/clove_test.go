package clove

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"clove/internal/packet"
	"clove/internal/sim"
)

func flow(n int) packet.FiveTuple {
	return packet.FiveTuple{Src: 1, Dst: 2, SrcPort: uint16(1000 + n), DstPort: 80, Proto: packet.ProtoTCP}
}

func TestFlowletFirstPacketIsNew(t *testing.T) {
	ft := NewFlowletTable(100 * sim.Microsecond)
	e, isNew := ft.Touch(flow(0), 0)
	if !isNew || e == nil || e.ID != 0 {
		t.Fatalf("first packet: isNew=%v e=%v", isNew, e)
	}
}

func TestFlowletGapSemantics(t *testing.T) {
	gap := 100 * sim.Microsecond
	ft := NewFlowletTable(gap)
	f := flow(0)
	ft.Touch(f, 0)
	// Within the gap: same flowlet.
	if _, isNew := ft.Touch(f, gap); isNew {
		t.Error("packet exactly at gap counted as new flowlet (must be >)")
	}
	// Beyond the gap from the *last* packet: new flowlet.
	if e, isNew := ft.Touch(f, gap+gap+1); !isNew || e.ID != 1 {
		t.Errorf("gap exceeded but isNew=%v id=%d", isNew, e.ID)
	}
	if ft.Flowlets() != 2 {
		t.Errorf("Flowlets = %d, want 2", ft.Flowlets())
	}
}

func TestFlowletPortPinning(t *testing.T) {
	ft := NewFlowletTable(100)
	f := flow(0)
	e, _ := ft.Touch(f, 0)
	e.Port = 5555
	e2, isNew := ft.Touch(f, 50)
	if isNew || e2.Port != 5555 {
		t.Error("continuing flowlet lost its pinned port")
	}
}

func TestFlowletIndependentFlows(t *testing.T) {
	ft := NewFlowletTable(100)
	ft.Touch(flow(0), 0)
	_, isNew := ft.Touch(flow(1), 1)
	if !isNew {
		t.Error("distinct flow not detected as new")
	}
	if ft.Len() != 2 {
		t.Errorf("Len = %d", ft.Len())
	}
}

func TestFlowletEviction(t *testing.T) {
	ft := NewFlowletTable(100)
	ft.SetMaxEntries(10)
	for i := 0; i < 10; i++ {
		ft.Touch(flow(i), sim.Time(i))
	}
	// All old entries idle > 10 gaps at t=100000. Eviction is amortized: the
	// at-capacity insert reclaims at most evictScanBudget entries (the old
	// implementation swept the whole table inline on one packet).
	ft.Touch(flow(99), 100000)
	if got, want := ft.Len(), 10-evictScanBudget+1; got != want {
		t.Errorf("after at-capacity insert Len = %d, want %d", got, want)
	}
}

func TestFlowletEvictionBoundedWorkPerInsert(t *testing.T) {
	ft := NewFlowletTable(100)
	ft.SetMaxEntries(3 * evictScanBudget)
	for i := 0; i < 3*evictScanBudget; i++ {
		ft.Touch(flow(i), sim.Time(i))
	}
	// Everything expired. Refilling takes several inserts, each evicting at
	// most the budget; the occupancy never exceeds the bound while evictable
	// entries remain (2*budget inserts leave budget expired entries spare).
	now := sim.Time(1_000_000)
	for i := 0; i < 2*evictScanBudget; i++ {
		ft.Touch(flow(1000+i), now+sim.Time(i))
		if ft.Len() > 3*evictScanBudget {
			t.Fatalf("insert %d: Len = %d exceeds capacity %d with expired entries present",
				i, ft.Len(), 3*evictScanBudget)
		}
	}
}

func TestFlowletEvictionSparesLiveEntries(t *testing.T) {
	ft := NewFlowletTable(100)
	ft.SetMaxEntries(4)
	for i := 0; i < 4; i++ {
		ft.Touch(flow(i), sim.Time(i))
	}
	// A 5th flow arrives while every tracked flow is recent: nothing in the
	// scan budget qualifies, so the table grows past the bound rather than
	// evicting a live flowlet (correctness over the memory bound).
	ft.Touch(flow(4), 50)
	if ft.Len() != 5 {
		t.Fatalf("Len = %d, want 5 (live entries must survive)", ft.Len())
	}
	for i := 0; i < 4; i++ {
		if _, isNew := ft.Touch(flow(i), sim.Time(60+i)); isNew {
			t.Errorf("live flow %d lost its entry to eviction", i)
		}
	}
}

func TestFlowletCounterAcrossEvictions(t *testing.T) {
	ft := NewFlowletTable(100)
	ft.SetMaxEntries(8)
	for i := 0; i < 8; i++ {
		ft.Touch(flow(i), sim.Time(i))
	}
	if ft.Flowlets() != 8 {
		t.Fatalf("Flowlets = %d, want 8", ft.Flowlets())
	}
	// Expire all 8 and insert a 9th: the scan (budget 8) reclaims them all.
	ft.Touch(flow(8), 100_000)
	if ft.Flowlets() != 9 {
		t.Errorf("Flowlets = %d, want 9", ft.Flowlets())
	}
	if ft.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ft.Len())
	}
	// The evicted flows return: each restarts as a fresh entry (ID 0) and the
	// cumulative flowlet counter keeps counting monotonically.
	for i := 0; i < 8; i++ {
		e, isNew := ft.Touch(flow(i), 100_001+sim.Time(i))
		if !isNew || e.ID != 0 {
			t.Errorf("returning flow %d: isNew=%v id=%d, want new with id 0", i, isNew, e.ID)
		}
	}
	if ft.Flowlets() != 17 {
		t.Errorf("Flowlets = %d, want 17", ft.Flowlets())
	}
}

// Property: packets closer together than the gap never start a new flowlet.
func TestQuickFlowletNoSpuriousSplit(t *testing.T) {
	f := func(deltas []uint16) bool {
		gap := 1000 * sim.Time(1)
		ft := NewFlowletTable(gap)
		fl := flow(0)
		now := sim.Time(0)
		ft.Touch(fl, now)
		for _, d := range deltas {
			now += sim.Time(d % 1000) // always <= gap
			if _, isNew := ft.Touch(fl, now); isNew {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

func TestWRREqualWeightsRoundRobin(t *testing.T) {
	w := NewWRR([]uint16{1, 2, 3})
	counts := map[uint16]int{}
	for i := 0; i < 300; i++ {
		counts[w.Next()]++
	}
	for p, c := range counts {
		if c != 100 {
			t.Errorf("port %d picked %d/300", p, c)
		}
	}
}

func TestWRRProportions(t *testing.T) {
	w := NewWRR(nil)
	w.Reset([]uint16{1, 2, 3, 4}, []float64{0.1, 0.3, 0.3, 0.3})
	counts := map[uint16]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[w.Next()]++
	}
	if got := counts[1]; got < 900 || got > 1100 {
		t.Errorf("light port picked %d/10000, want ~1000", got)
	}
	for _, p := range []uint16{2, 3, 4} {
		if got := counts[p]; got < 2900 || got > 3100 {
			t.Errorf("port %d picked %d/10000, want ~3000", p, got)
		}
	}
}

func TestWRRSmoothness(t *testing.T) {
	// With weights 5:1, the heavy port must not be picked 5 times in a row
	// followed by the light one — smooth WRR interleaves.
	w := NewWRR(nil)
	w.Reset([]uint16{7, 8}, []float64{5, 1})
	var seq []uint16
	for i := 0; i < 12; i++ {
		seq = append(seq, w.Next())
	}
	// The light port appears twice in 12 picks, roughly evenly spaced.
	idx := []int{}
	for i, p := range seq {
		if p == 8 {
			idx = append(idx, i)
		}
	}
	if len(idx) != 2 {
		t.Fatalf("light port picked %d times in 12: %v", len(idx), seq)
	}
	if idx[1]-idx[0] < 4 {
		t.Errorf("light picks bunched: %v", seq)
	}
}

func TestWRRZeroWeightsDegradeToRR(t *testing.T) {
	w := NewWRR(nil)
	w.Reset([]uint16{1, 2}, []float64{0, 0})
	counts := map[uint16]int{}
	for i := 0; i < 10; i++ {
		counts[w.Next()]++
	}
	if counts[1] != 5 || counts[2] != 5 {
		t.Errorf("zero-weight RR counts: %v", counts)
	}
}

func TestWRRPanics(t *testing.T) {
	w := NewWRR(nil)
	mustPanic(t, "empty Next", func() { w.Next() })
	mustPanic(t, "mismatched lengths", func() { w.Reset([]uint16{1}, []float64{1, 2}) })
	mustPanic(t, "negative weight", func() { w.Reset([]uint16{1}, []float64{-1}) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

// Property: empirical WRR frequencies converge to weights.
func TestQuickWRRFrequenciesMatchWeights(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		ports := make([]uint16, len(raw))
		weights := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			ports[i] = uint16(i)
			weights[i] = float64(r%10) + 1
			total += weights[i]
		}
		w := NewWRR(nil)
		w.Reset(ports, weights)
		const n = 5000
		counts := make([]int, len(ports))
		for i := 0; i < n; i++ {
			counts[w.Next()]++
		}
		for i := range ports {
			want := weights[i] / total * n
			if math.Abs(float64(counts[i])-want) > want*0.05+2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func defaultWT() *WeightTable {
	return NewWeightTable(DefaultWeightTableConfig(100*sim.Microsecond), []uint16{10, 20, 30, 40})
}

func TestWeightTableInitialEqual(t *testing.T) {
	wt := defaultWT()
	for p, w := range wt.Weights() {
		if math.Abs(w-0.25) > 1e-9 {
			t.Errorf("port %d weight %v, want 0.25", p, w)
		}
	}
}

func TestWeightTableCongestionShiftsWeight(t *testing.T) {
	wt := defaultWT()
	wt.OnCongestion(10, 1000)
	w := wt.Weights()
	// Port 10 lost a third: 0.25 -> ~0.1667; others gained equally.
	if math.Abs(w[10]-0.25*2/3) > 1e-9 {
		t.Errorf("congested weight = %v, want %v", w[10], 0.25*2/3)
	}
	for _, p := range []uint16{20, 30, 40} {
		if w[p] <= 0.25 {
			t.Errorf("uncongested port %d did not gain: %v", p, w[p])
		}
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
}

func TestWeightTableRedistributionSkipsCongested(t *testing.T) {
	wt := defaultWT()
	now := sim.Time(1000)
	wt.OnCongestion(10, now)
	wt.OnCongestion(20, now+1)
	w := wt.Weights()
	// 30 and 40 should hold the bulk.
	if w[30]+w[40] < 0.55 {
		t.Errorf("uncongested pair holds %v", w[30]+w[40])
	}
	if w[30] != w[40] {
		t.Errorf("equal recipients diverged: %v vs %v", w[30], w[40])
	}
}

func TestWeightTableAllCongested(t *testing.T) {
	wt := defaultWT()
	now := sim.Time(1000)
	if wt.AllCongested(now) {
		t.Error("fresh table reports all congested")
	}
	for _, p := range []uint16{10, 20, 30, 40} {
		wt.OnCongestion(p, now)
	}
	if !wt.AllCongested(now + 1) {
		t.Error("not all congested after marking every path")
	}
	// Congestion ages out.
	later := now + DefaultWeightTableConfig(100*sim.Microsecond).CongestedAge + 1
	if wt.AllCongested(later) {
		t.Error("congestion did not age out")
	}
}

func TestWeightTableFloor(t *testing.T) {
	wt := defaultWT()
	for i := 0; i < 200; i++ {
		wt.OnCongestion(10, sim.Time(1000+i))
	}
	if w := wt.Weights()[10]; w < 0.01 {
		t.Errorf("weight fell below floor: %v", w)
	}
}

// TestWeightTableFloorHoldsAfterRescale is the normalize regression test:
// the old single clamp-then-rescale pass clamped paths to the floor and then
// divided by the raised sum, pushing exactly the clamped paths back below
// the documented minimum. Water-filling must keep every weight at or above
// the floor after every feedback event.
func TestWeightTableFloorHoldsAfterRescale(t *testing.T) {
	cfg := DefaultWeightTableConfig(100 * sim.Microsecond)
	ports := make([]uint16, 40) // 40 * 0.02 = 0.8 < 1: floor is feasible
	for i := range ports {
		ports[i] = uint16(1000 + i)
	}
	wt := NewWeightTable(cfg, ports)
	// Congest every path but the first, repeatedly: 39 paths sink to the
	// floor while the survivor absorbs the mass. Check the invariant after
	// every event — the violation is largest right after a rescale.
	now := sim.Time(0)
	for r := 0; r < 20; r++ {
		for i := 1; i < len(ports); i++ {
			now++
			wt.OnCongestion(ports[i], now)
			var sum float64
			for p, w := range wt.Weights() {
				if w < cfg.Floor-1e-12 {
					t.Fatalf("round %d: port %d below floor: %v < %v", r, p, w, cfg.Floor)
				}
				sum += w
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("round %d: weights sum to %v", r, sum)
			}
		}
	}
}

// TestWeightTableFloorInfeasible64Paths: with 64 paths the default floor is
// infeasible (64 * 0.02 = 1.28 > 1) — no distribution can satisfy it, and
// the table must fall back to uniform weights instead of looping or
// producing a sum above 1.
func TestWeightTableFloorInfeasible64Paths(t *testing.T) {
	cfg := DefaultWeightTableConfig(100 * sim.Microsecond)
	ports := make([]uint16, 64)
	for i := range ports {
		ports[i] = uint16(2000 + i)
	}
	wt := NewWeightTable(cfg, ports)
	now := sim.Time(0)
	for i := 0; i < 300; i++ {
		now++
		wt.OnCongestion(ports[i%len(ports)], now)
	}
	eq := 1.0 / float64(len(ports))
	var sum float64
	for p, w := range wt.Weights() {
		if math.Abs(w-eq) > 1e-9 {
			t.Fatalf("port %d weight %v, want uniform %v under infeasible floor", p, w, eq)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
}

func TestWeightTableSinglePathStable(t *testing.T) {
	wt := NewWeightTable(DefaultWeightTableConfig(100), []uint16{10})
	wt.OnCongestion(10, 50)
	if w := wt.Weights()[10]; math.Abs(w-1) > 1e-9 {
		t.Errorf("single path weight %v", w)
	}
	if wt.NextPort() != 10 {
		t.Error("single path NextPort")
	}
}

func TestWeightTableUnknownPortIgnored(t *testing.T) {
	wt := defaultWT()
	wt.OnCongestion(999, 10)
	wt.OnUtilization(999, 0.5, 10)
	for _, w := range wt.Weights() {
		if math.Abs(w-0.25) > 1e-9 {
			t.Error("unknown-port feedback changed weights")
		}
	}
}

func TestWeightTableSetPortsKeepsState(t *testing.T) {
	wt := defaultWT()
	wt.OnCongestion(10, 1000)
	before := wt.Weights()
	// Rediscovery: 10 and 20 survive, 30/40 replaced by 50/60.
	wt.SetPorts([]uint16{10, 20, 50, 60})
	after := wt.Weights()
	if after[10] >= after[20] {
		t.Errorf("retained congested path lost its penalty: %v", after)
	}
	// Relative order of retained ports preserved.
	if (before[10] < before[20]) != (after[10] < after[20]) {
		t.Error("retained ordering flipped")
	}
	var sum float64
	for _, v := range after {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum after SetPorts = %v", sum)
	}
	st := wt.States()
	if len(st) != 4 {
		t.Fatalf("states len %d", len(st))
	}
}

func TestLeastUtilizedPort(t *testing.T) {
	wt := defaultWT()
	now := sim.Time(1000)
	wt.OnUtilization(10, 0.9, now)
	wt.OnUtilization(20, 0.3, now)
	wt.OnUtilization(30, 0.5, now)
	// 40 never reported: effective 0, least utilized.
	if got := wt.LeastUtilizedPort(now + 1); got != 40 {
		t.Errorf("least utilized = %d, want unreported 40", got)
	}
	wt.OnUtilization(40, 0.6, now)
	if got := wt.LeastUtilizedPort(now + 1); got != 20 {
		t.Errorf("least utilized = %d, want 20", got)
	}
	// Samples age out -> port 10 falls back to 0.
	later := now + DefaultWeightTableConfig(100*sim.Microsecond).UtilAge + 1
	wt.OnUtilization(20, 0.3, later)
	if got := wt.LeastUtilizedPort(later + 1); got == 20 {
		t.Error("fresh nonzero sample beat aged-out zeros")
	}
}

// TestLeastUtilizedPortAllStaleSpreads is the Clove-INT herding regression
// test: before any utilization report arrives (or after every report has
// aged out), each path's effective utilization is zero and the old
// tie-breaking pick returned table index 0 for every flowlet. The choice
// must instead fall back to weighted round-robin and spread flowlets evenly.
func TestLeastUtilizedPortAllStaleSpreads(t *testing.T) {
	wt := defaultWT()
	counts := map[uint16]int{}
	const picks = 400
	for i := 0; i < picks; i++ {
		counts[wt.LeastUtilizedPort(sim.Time(1000+i))]++
	}
	if len(counts) != 4 {
		t.Fatalf("all-stale picks herded onto %d ports: %v", len(counts), counts)
	}
	for p, c := range counts {
		if c != picks/4 {
			t.Errorf("port %d picked %d/%d, want even spread %d", p, c, picks, picks/4)
		}
	}

	// A report makes the freshness-based choice take over again...
	now := sim.Time(10_000)
	wt.OnUtilization(20, 0.3, now)
	if got := wt.LeastUtilizedPort(now + 1); got == 20 {
		t.Error("fresh nonzero sample beat never-reported zeros (optimistic re-probe broken)")
	}
	// ...and once it ages out, picks spread again instead of herding.
	later := now + DefaultWeightTableConfig(100*sim.Microsecond).UtilAge + 1
	counts = map[uint16]int{}
	for i := 0; i < picks; i++ {
		counts[wt.LeastUtilizedPort(later+sim.Time(i))]++
	}
	if len(counts) != 4 {
		t.Fatalf("aged-out picks herded onto %d ports: %v", len(counts), counts)
	}
}

// Property: under any sequence of congestion events, weights stay a valid
// distribution and every weight respects the floor.
func TestQuickWeightsStayDistribution(t *testing.T) {
	cfg := DefaultWeightTableConfig(100)
	f := func(events []uint8) bool {
		wt := NewWeightTable(cfg, []uint16{1, 2, 3, 4, 5})
		now := sim.Time(0)
		for _, e := range events {
			now += sim.Time(e)
			wt.OnCongestion(uint16(e%5)+1, now)
		}
		var sum float64
		for _, w := range wt.Weights() {
			if w < cfg.Floor/2 || w > 1 {
				return false
			}
			sum += w
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}

// Property: WRR pick frequencies track the weight table after congestion.
func TestWeightTableWRRIntegration(t *testing.T) {
	wt := defaultWT()
	wt.OnCongestion(10, 1000)
	wt.OnCongestion(10, 2000)
	counts := map[uint16]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[wt.NextPort()]++
	}
	w := wt.Weights()
	for p, c := range counts {
		want := w[p] * n
		if math.Abs(float64(c)-want) > want*0.1+5 {
			t.Errorf("port %d picked %d, want ~%.0f", p, c, want)
		}
	}
}
