package clove

import (
	"strings"
	"testing"
	"time"
)

func TestFacadeClusterRoundTrip(t *testing.T) {
	c := NewCluster(ClusterConfig{
		Seed:   1,
		Topo:   ScaledTestbed(1.0, 4),
		Scheme: CloveECN,
	})
	res := c.RunWebSearch(WebSearchParams{Load: 0.4, TotalJobs: 100, SizeScale: 0.05})
	if res.Completed == 0 || res.TimedOut {
		t.Fatalf("facade run failed: %+v", res)
	}
	if c.Recorder.Summarize().MeanSec <= 0 {
		t.Error("no FCT stats")
	}
}

func TestFacadeSchemesList(t *testing.T) {
	s := Schemes()
	// The paper's eight, the Sec. 7 latency extension, and the two
	// contrast points (stateless Concury, in-network Charon).
	if len(s) != 11 {
		t.Fatalf("schemes = %d, want 11", len(s))
	}
	seen := map[Scheme]bool{}
	for _, sc := range s {
		seen[sc] = true
	}
	for _, want := range []Scheme{ECMP, EdgeFlowlet, CloveECN, CloveINT, Presto, MPTCP, CONGA, LetFlow, CloveLatency, Concury, Charon} {
		if !seen[want] {
			t.Errorf("missing scheme %q", want)
		}
	}
}

func TestFacadeRunFigureUnknown(t *testing.T) {
	if _, err := RunFigure("nope", QuickScale(), nil); err == nil {
		t.Error("unknown figure accepted")
	}
	for _, id := range FigureIDs() {
		if _, ok := map[string]bool{"4b": true, "4c": true, "5a": true, "5b": true,
			"5c": true, "6": true, "7": true, "8a": true, "8b": true, "9": true}[id]; !ok {
			t.Errorf("unexpected figure id %q", id)
		}
	}
}

func TestFacadeRunFigureTiny(t *testing.T) {
	sc := QuickScale()
	sc.TotalJobs = 60
	sc.SizeScale = 0.02
	sc.Seeds = []int64{1}
	sc.Loads = []float64{0.4}
	rows, err := RunFigure("4b", sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := FormatRows(rows)
	if !strings.Contains(out, "== fig4b ==") || !strings.Contains(out, "clove-ecn") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestFacadeScales(t *testing.T) {
	q, s, p := QuickScale(), StandardScale(), PaperScale()
	if !(q.TotalJobs < s.TotalJobs && s.TotalJobs < p.TotalJobs) {
		t.Error("scales not ordered by job count")
	}
	if p.SizeScale != 1.0 || p.HostsPerLeaf != 16 {
		t.Error("paper scale is not full fidelity")
	}
}

func TestFacadeEndpointLifecycle(t *testing.T) {
	cfg := DefaultEndpointConfig()
	cfg.Paths = 2
	cfg.FlowletGap = time.Millisecond
	a, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if len(a.Ports()) != 2 {
		t.Errorf("ports = %v", a.Ports())
	}
	w := a.Weights()
	var sum float64
	for _, v := range w {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("initial weights not a distribution: %v", w)
	}
}

func TestPaperTestbedShape(t *testing.T) {
	topo := PaperTestbed(1.0)
	if topo.HostsPerLeaf != 16 || topo.Leaves != 2 || topo.Spines != 2 {
		t.Errorf("paper testbed misshapen: %+v", topo)
	}
	if topo.HostRateBps != 10e9 || topo.TrunkRateBps != 40e9 {
		t.Errorf("paper rates wrong: %+v", topo)
	}
	st := ScaledTestbed(1.0, 8)
	// Ratio preserved: hosts x host rate == bisection.
	if int64(st.HostsPerLeaf)*st.HostRateBps != int64(st.Spines*st.TrunksPerPair)*st.TrunkRateBps {
		t.Error("scaled testbed broke the non-oversubscription ratio")
	}
}
