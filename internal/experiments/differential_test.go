package experiments

import (
	"reflect"
	"testing"

	"clove/internal/cluster"
)

// TestFrozenCloveECNEquivalentToUniform is the differential property behind
// the Clove-ECN machinery: with weight adaptation frozen, the smooth-WRR
// scheduler over uniform weights must visit paths in plain round-robin
// order, so an entire frozen Clove-ECN run must be sample-for-sample
// identical to the CloveUniform reference policy. Any divergence means the
// weighted path (WRR state, feedback plumbing, ECN masking) perturbs
// steering even when the weights say it must not. Both runs execute under
// the oracle.
func TestFrozenCloveECNEquivalentToUniform(t *testing.T) {
	sc := tiny()
	sc.Seeds = []int64{1, 2}
	sc.Loads = []float64{0.4, 0.7}
	sc.Oracle = true

	frozen := sweepOpts{
		figure: "diff-frozen",
		mutate: func(cfg *cluster.Config) { cfg.FreezeWeights = true },
	}
	uniform := sweepOpts{figure: "diff-uniform"}
	for _, load := range sc.Loads {
		for _, seed := range sc.Seeds {
			recE, toE := runOne(sc, frozen, cluster.SchemeCloveECN, load, seed)
			recU, toU := runOne(sc, uniform, cluster.SchemeCloveUniform, load, seed)
			if toE != toU {
				t.Fatalf("load=%.1f seed=%d: timeout mismatch frozen=%v uniform=%v", load, seed, toE, toU)
			}
			sE, sU := recE.Samples(), recU.Samples()
			if len(sE) == 0 {
				t.Fatalf("load=%.1f seed=%d: run produced no samples", load, seed)
			}
			if len(sE) != len(sU) {
				t.Fatalf("load=%.1f seed=%d: %d vs %d samples", load, seed, len(sE), len(sU))
			}
			for i := range sE {
				if sE[i] != sU[i] {
					t.Fatalf("load=%.1f seed=%d: sample %d diverges: frozen=%+v uniform=%+v",
						load, seed, i, sE[i], sU[i])
				}
			}
			if !reflect.DeepEqual(recE.Summarize(), recU.Summarize()) {
				t.Fatalf("load=%.1f seed=%d: summaries diverge:\nfrozen:  %+v\nuniform: %+v",
					load, seed, recE.Summarize(), recU.Summarize())
			}
		}
	}
}

// TestSeedPermutationInvariance checks that aggregated rows do not depend on
// the order seed replicates are listed (or, via the runner's determinism,
// finish): mean and stderr are symmetric functions of the replicates, so
// FormatRows output must be byte-identical under seed permutation.
func TestSeedPermutationInvariance(t *testing.T) {
	opts := sweepOpts{
		figure:  "perm",
		schemes: []cluster.Scheme{cluster.SchemeECMP, cluster.SchemeCloveECN},
	}
	fwd := tiny()
	fwd.Seeds = []int64{1, 2}
	rowsFwd := sweep(fwd, opts, nil)

	rev := tiny()
	rev.Seeds = []int64{2, 1}
	rowsRev := sweep(rev, opts, nil)

	a, b := FormatRows(rowsFwd), FormatRows(rowsRev)
	if a != b {
		t.Fatalf("seed permutation changed aggregated output:\n{1,2}:\n%s\n{2,1}:\n%s", a, b)
	}
}

// diffRun executes one (scheme, load, seed) cell twice — once with the
// production policy, once with its replay reference — under the oracle, and
// asserts the full FCT sample streams and summaries are identical.
func diffRun(t *testing.T, prod, ref cluster.Scheme) {
	t.Helper()
	sc := tiny()
	sc.Seeds = []int64{1, 2}
	sc.Loads = []float64{0.4, 0.7}
	sc.Oracle = true
	opts := sweepOpts{figure: "diff-" + string(prod)}
	for _, load := range sc.Loads {
		for _, seed := range sc.Seeds {
			recP, toP := runOne(sc, opts, prod, load, seed)
			recR, toR := runOne(sc, opts, ref, load, seed)
			if toP != toR {
				t.Fatalf("load=%.1f seed=%d: timeout mismatch %s=%v %s=%v", load, seed, prod, toP, ref, toR)
			}
			sP, sR := recP.Samples(), recR.Samples()
			if len(sP) == 0 {
				t.Fatalf("load=%.1f seed=%d: run produced no samples", load, seed)
			}
			if len(sP) != len(sR) {
				t.Fatalf("load=%.1f seed=%d: %d vs %d samples", load, seed, len(sP), len(sR))
			}
			for i := range sP {
				if sP[i] != sR[i] {
					t.Fatalf("load=%.1f seed=%d: sample %d diverges: %s=%+v %s=%+v",
						load, seed, i, prod, sP[i], ref, sR[i])
				}
			}
			if !reflect.DeepEqual(recP.Summarize(), recR.Summarize()) {
				t.Fatalf("load=%.1f seed=%d: summaries diverge:\n%s: %+v\n%s: %+v",
					load, seed, prod, recP.Summarize(), ref, recR.Summarize())
			}
		}
	}
}

// TestConcuryEquivalentToReference pins the stateless scheme against an
// independent replay implementation: the production Concury keeps one live
// bucket table per destination and updates it incrementally on SetPaths,
// while ConcuryRef stores the full install history and re-folds it from
// scratch on every pick. Sample-for-sample equality under the oracle means
// the incremental table transition is exactly the reference fold.
func TestConcuryEquivalentToReference(t *testing.T) {
	diffRun(t, cluster.SchemeConcury, cluster.SchemeConcuryRef)
}

// TestCharonEquivalentToReference pins the in-network scheme the same way:
// production Charon mutates per-path load samples in place on feedback and
// carries them across re-installs, while CharonRef appends every install
// and feedback event to a log and re-folds it on every pick. Equality means
// the in-place state machine matches the event-sourced reference.
func TestCharonEquivalentToReference(t *testing.T) {
	diffRun(t, cluster.SchemeCharon, cluster.SchemeCharonRef)
}
