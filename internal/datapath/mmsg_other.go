//go:build !linux || !(amd64 || arm64)

package datapath

import "net/netip"

// batchSyscallsAvailable is false where the raw recvmmsg/sendmmsg seam
// (mmsg_linux.go) is not built; every shard uses the portable
// one-datagram-per-syscall path in shard.go instead.
const batchSyscallsAvailable = false

// batchIO is never instantiated on this platform; the stubs below keep the
// shard code building and are unreachable because initIO leaves bio nil.
type batchIO struct{}

func newBatchIO(sh *pathShard, remote netip.AddrPort) (*batchIO, error) {
	panic("datapath: batched syscalls unavailable on this platform")
}

func (sh *pathShard) recvBatchMmsg() (int, error) {
	panic("datapath: batched syscalls unavailable on this platform")
}

func (sh *pathShard) flushMmsgLocked() error {
	panic("datapath: batched syscalls unavailable on this platform")
}

func (bio *batchIO) retarget(remote netip.AddrPort) error {
	panic("datapath: batched syscalls unavailable on this platform")
}
