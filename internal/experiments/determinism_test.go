package experiments

import (
	"io"
	"runtime"
	"testing"

	"clove/internal/cluster"
)

// detScale is a grid small enough to rerun several times per test but
// wide enough (2 schemes x 2 loads x 2 seeds = 8 jobs) that a parallel
// run actually interleaves jobs.
func detScale() Scale {
	sc := tiny()
	sc.Seeds = []int64{1, 2}
	sc.Loads = []float64{0.3, 0.5}
	return sc
}

func detOpts() sweepOpts {
	return sweepOpts{
		figure:  "det",
		schemes: []cluster.Scheme{cluster.SchemeECMP, cluster.SchemeCloveECN},
		asym:    true,
	}
}

// TestSweepDeterministicAcrossParallelism pins the end-to-end determinism
// invariant of the concurrent runner: the same seeds must produce
// byte-identical FormatRows output at -j 1, -j 4, and -j GOMAXPROCS, and
// across two repeated runs at the same -j. This extends the DESIGN.md
// "identical seeds => identical packet traces" guarantee through the
// worker pool, the out-of-order job completion, and the cross-seed
// aggregation.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) string {
		sc := detScale()
		sc.Parallelism = parallelism
		// io.Discard (not nil) keeps the concurrent progress path in play.
		return FormatRows(sweep(sc, detOpts(), io.Discard))
	}
	want := run(1)
	if want == "" {
		t.Fatal("empty sweep output")
	}
	for _, j := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		if got := run(j); got != want {
			t.Errorf("output at -j %d differs from -j 1:\n--- j=1 ---\n%s--- j=%d ---\n%s", j, want, j, got)
		}
	}
}

// TestFig7DeterministicAcrossParallelism covers the incast runner's
// separate pooling path the same way.
func TestFig7DeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) string {
		sc := detScale()
		sc.Parallelism = parallelism
		return FormatRows(Fig7(sc, io.Discard))
	}
	want := run(1)
	if got := run(4); got != want {
		t.Errorf("fig7 output at -j 4 differs from -j 1:\n%s\nvs\n%s", want, got)
	}
}

// TestFig9DeterministicAcrossParallelism covers the CDF-aggregation path:
// per-run mice samples are merged after the pool drains, in grid order.
func TestFig9DeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) string {
		sc := detScale()
		sc.Parallelism = parallelism
		return FormatRows(Fig9(sc, io.Discard))
	}
	want := run(1)
	if got := run(4); got != want {
		t.Errorf("fig9 output at -j 4 differs from -j 1:\n%s\nvs\n%s", want, got)
	}
}

// TestSweepConcurrentRaceSmoke is the race-detector target: a reduced
// two-scheme sweep forced onto 4 workers so `go test -race` exercises
// concurrent cluster construction, simulation, and progress reporting.
// Any shared mutable state in sim/netem/cluster/tcp/vswitch would show up
// here as a data race.
func TestSweepConcurrentRaceSmoke(t *testing.T) {
	sc := detScale()
	sc.Parallelism = 4
	rows := sweep(sc, detOpts(), io.Discard)
	if len(rows) != 4 { // 2 schemes x 2 loads
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Samples == 0 {
			t.Errorf("%s/%s: no samples", r.Figure, r.Scheme)
		}
		if r.Replicates != 2 {
			t.Errorf("%s/%s: replicates = %d, want 2", r.Figure, r.Scheme, r.Replicates)
		}
	}
}

// TestSummaryConcurrent exercises the pooled Summary path and its
// repeat-run stability.
func TestSummaryConcurrent(t *testing.T) {
	sc := detScale()
	sc.Parallelism = 4
	a := Summary(sc, 0.5, io.Discard)
	b := Summary(sc, 0.5, io.Discard)
	if a != b {
		t.Errorf("summary not reproducible across runs:\n%+v\n%+v", a, b)
	}
	if a.CloveVsECMP <= 0 {
		t.Errorf("bad headline: %+v", a)
	}
}

// TestRunJobsCoversAllIndices checks the pool itself: every index runs
// exactly once at any worker count, including degenerate ones.
func TestRunJobsCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 50
		counts := make([]int32, n)
		runJobs(workers, n, func(i int) { counts[i]++ })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
	runJobs(4, 0, func(int) { t.Fatal("fn called for n=0") })
}
