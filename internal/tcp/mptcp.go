package tcp

import (
	"clove/internal/packet"
	"clove/internal/sim"
)

// MPSender models an MPTCP connection with a static set of subflows, as the
// paper deploys MPTCP v0.89 with 4 subflows (Sec. 5). Each subflow is a full
// NewReno sender with its own inner source port (so ECMP may route it on a
// distinct path). The data scheduler assigns application bytes to whichever
// subflow has congestion-window space, which is what lets MPTCP shift load
// toward uncongested paths; once assigned, a byte range completes on its
// subflow, which is why a subflow stuck on a congested path drags the tail
// (the paper's Fig. 5c observation).
//
// Congestion control is coupled with the Linked-Increases Algorithm (LIA):
// the congestion-avoidance increase on every subflow is scaled by a shared
// alpha so the aggregate is no more aggressive than one TCP flow.
type MPSender struct {
	sim      *sim.Simulator
	cfg      Config
	subflows []*Sender

	// Scheduler state: the next stream byte not yet assigned to a subflow.
	pendingBytes int64
	totalSize    int64
	acked        []int64 // bytes acked per subflow at last check

	jobs []job

	chunk int64 // scheduler granularity in bytes
}

// DefaultSubflows matches the paper's MPTCP configuration.
const DefaultSubflows = 4

// NewMPSender creates an MPTCP sender with n subflows. Subflow i uses inner
// source port base.SrcPort+i, and transmits via output (the vswitch treats
// subflows as independent flows, exactly as ECMP does).
func NewMPSender(s *sim.Simulator, cfg Config, base packet.FiveTuple, n int, output func(*packet.Packet)) *MPSender {
	cfg = cfg.withDefaults()
	m := &MPSender{
		sim:   s,
		cfg:   cfg,
		chunk: int64(cfg.MSS) * 16, // 16 segments per scheduling quantum
	}
	for i := 0; i < n; i++ {
		ft := base
		ft.SrcPort = base.SrcPort + uint16(i)
		sub := NewSender(s, cfg, ft, output)
		m.subflows = append(m.subflows, sub)
	}
	m.acked = make([]int64, n)
	// Couple the windows: recompute LIA alpha after every ACK by wrapping
	// the increase — approximated by periodic renormalization (see pump).
	return m
}

// Subflows exposes the underlying senders (for wiring ACK delivery).
func (m *MPSender) Subflows() []*Sender { return m.subflows }

// HandleAck dispatches an ACK to the owning subflow by inner source port
// (ACK dst port == subflow src port). The packet is consumed either way.
func (m *MPSender) HandleAck(pkt *packet.Packet) {
	matched := false
	for _, sub := range m.subflows {
		if sub.flow.SrcPort == pkt.Inner.DstPort {
			sub.HandleAck(pkt)
			matched = true
			break
		}
	}
	if !matched {
		m.cfg.Pool.Put(pkt)
	}
	m.applyLIA()
	m.pump()
	m.checkDone()
}

// Abort tears down every subflow and drops queued jobs (their done
// callbacks never fire); see Sender.Abort. Idempotent.
func (m *MPSender) Abort() {
	for _, sub := range m.subflows {
		sub.Abort()
	}
	m.jobs = nil
	// Stop the scheduler from assigning undispatched bytes.
	m.totalSize = m.pendingBytes
}

// StartJob appends an application transfer of size bytes.
func (m *MPSender) StartJob(size int64, done func(fct sim.Time)) {
	m.totalSize += size
	m.jobs = append(m.jobs, job{endSeq: m.totalSize, arrival: m.sim.Now(), done: done})
	m.pump()
}

// pump assigns pending bytes to subflows with window space, in chunks.
// Assignment is greedy over subflows ordered by available window, which
// naturally sends more data over faster/less congested subflows.
func (m *MPSender) pump() {
	for m.pendingBytes < m.totalSize {
		best := -1
		var bestSpace float64
		for i, sub := range m.subflows {
			space := sub.cwnd - sub.flightSegments()
			if space > bestSpace {
				bestSpace = space
				best = i
			}
		}
		if best < 0 || bestSpace < 1 {
			return
		}
		n := min64(m.chunk, m.totalSize-m.pendingBytes)
		m.pendingBytes += n
		m.subflows[best].StartJob(n, nil)
	}
}

// applyLIA rescales each subflow's window growth so that the aggregate
// increase matches LIA: alpha = cwnd_total * max(cwnd_i/rtt_i^2) /
// (sum cwnd_i/rtt_i)^2. We approximate by capping each subflow's cwnd at
// its LIA-fair share after growth, which keeps the aggregate bounded the
// same way without restructuring the per-subflow CC.
func (m *MPSender) applyLIA() {
	var sumRate, maxTerm, total float64
	for _, sub := range m.subflows {
		rtt := sub.srtt.Seconds()
		if rtt <= 0 {
			return // no samples yet; uncoupled during startup
		}
		total += sub.cwnd
		sumRate += sub.cwnd / rtt
		if t := sub.cwnd / (rtt * rtt); t > maxTerm {
			maxTerm = t
		}
	}
	if sumRate == 0 {
		return
	}
	alpha := total * maxTerm / (sumRate * sumRate)
	if alpha > 1 {
		alpha = 1
	}
	// Damp congestion-avoidance growth: shrink any window beyond its share
	// of the coupled aggregate by the LIA factor. Slow-start subflows are
	// left alone (LIA applies to congestion avoidance only).
	for _, sub := range m.subflows {
		if sub.cwnd >= sub.ssthresh && sub.cwnd > 2 {
			excess := sub.cwnd - total/float64(len(m.subflows))
			if excess > 0 {
				sub.cwnd -= excess * (1 - alpha) * 0.01
			}
		}
	}
}

// checkDone fires job completions: a job is complete when the total bytes
// acked across subflows covers its end offset. Because chunks are assigned
// in stream order and each subflow acks in its own order, total acked bytes
// is a lower bound that is exact at job boundaries when all assigned chunks
// complete; we use the conservative sum.
func (m *MPSender) checkDone() {
	var ackedTotal int64
	allIdle := true
	for _, sub := range m.subflows {
		ackedTotal += sub.sndUna
		if !sub.Idle() {
			allIdle = false
		}
	}
	for len(m.jobs) > 0 {
		j := m.jobs[0]
		reached := ackedTotal >= j.endSeq && (j.endSeq < m.totalSize || allIdle)
		if !reached {
			break
		}
		m.jobs = m.jobs[1:]
		if j.done != nil {
			j.done(m.sim.Now() - j.arrival)
		}
	}
}

// Outstanding reports unacked bytes across all subflows.
func (m *MPSender) Outstanding() int64 {
	var n int64
	for _, sub := range m.subflows {
		n += sub.Outstanding()
	}
	return n
}
