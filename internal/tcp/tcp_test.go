package tcp

import (
	"testing"

	"clove/internal/packet"
	"clove/internal/sim"
)

// pipe is a minimal test network: fixed one-way delay, optional per-packet
// hooks for dropping, marking, or reordering.
type pipe struct {
	s     *sim.Simulator
	delay sim.Time
	// intercept can mutate the packet or return false to drop it.
	intercept func(*packet.Packet) bool
	deliver   func(*packet.Packet)
}

func (p *pipe) send(pkt *packet.Packet) {
	if p.intercept != nil && !p.intercept(pkt) {
		return
	}
	p.s.After(p.delay, func() { p.deliver(pkt) })
}

// loop wires a sender and receiver over two pipes and returns them.
func loop(s *sim.Simulator, cfg Config, delay sim.Time) (*Sender, *Receiver, *pipe, *pipe) {
	flow := packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 100, DstPort: 200, Proto: packet.ProtoTCP}
	fwd := &pipe{s: s, delay: delay}
	rev := &pipe{s: s, delay: delay}
	snd := NewSender(s, cfg, flow, fwd.send)
	rcv := NewReceiver(s, cfg, flow, rev.send)
	fwd.deliver = rcv.HandleData
	rev.deliver = snd.HandleAck
	return snd, rcv, fwd, rev
}

func TestBasicTransferCompletes(t *testing.T) {
	s := sim.New(1)
	snd, rcv, _, _ := loop(s, DefaultConfig(), 50*sim.Microsecond)
	var fct sim.Time = -1
	snd.StartJob(100_000, func(d sim.Time) { fct = d })
	s.RunUntil(5 * sim.Second)
	if fct < 0 {
		t.Fatal("job did not complete")
	}
	if rcv.RcvNxt() != 100_000 {
		t.Errorf("receiver got %d bytes", rcv.RcvNxt())
	}
	if got := rcv.Stats().BytesDelivered; got != 100_000 {
		t.Errorf("delivered %d bytes", got)
	}
	if snd.Stats().Retransmits != 0 {
		t.Errorf("unexpected retransmits on clean pipe: %d", snd.Stats().Retransmits)
	}
}

func TestSmallJobSingleSegment(t *testing.T) {
	s := sim.New(1)
	snd, rcv, _, _ := loop(s, DefaultConfig(), 10*sim.Microsecond)
	done := false
	snd.StartJob(1, func(sim.Time) { done = true })
	s.RunUntil(time100ms())
	if !done || rcv.RcvNxt() != 1 {
		t.Fatalf("1-byte job: done=%v rcvNxt=%d", done, rcv.RcvNxt())
	}
}

func time100ms() sim.Time { return 100 * sim.Millisecond }

// cfgMinRTO returns the default config with an overridden minimum RTO.
func cfgMinRTO(rto sim.Time) Config {
	cfg := DefaultConfig()
	cfg.MinRTO = rto
	return cfg
}

func TestSequentialJobsOnPersistentConnection(t *testing.T) {
	s := sim.New(1)
	snd, _, _, _ := loop(s, DefaultConfig(), 20*sim.Microsecond)
	var fcts []sim.Time
	for i := 0; i < 3; i++ {
		snd.StartJob(50_000, func(d sim.Time) { fcts = append(fcts, d) })
	}
	s.RunUntil(5 * sim.Second)
	if len(fcts) != 3 {
		t.Fatalf("completed %d/3 jobs", len(fcts))
	}
	// Later jobs queued behind earlier ones: FCT must be non-decreasing.
	if fcts[1] < fcts[0] || fcts[2] < fcts[1] {
		t.Errorf("queued jobs have shrinking FCTs: %v", fcts)
	}
}

func TestSlowStartGrowth(t *testing.T) {
	s := sim.New(1)
	snd, _, _, _ := loop(s, DefaultConfig(), 100*sim.Microsecond)
	snd.StartJob(1_000_000, nil)
	start := snd.Cwnd()
	s.RunUntil(3 * sim.Millisecond) // several RTTs
	if snd.Cwnd() <= start*2 {
		t.Errorf("cwnd %v -> %v: slow start did not grow exponentially", start, snd.Cwnd())
	}
}

func TestRTTEstimate(t *testing.T) {
	s := sim.New(1)
	snd, _, _, _ := loop(s, DefaultConfig(), 250*sim.Microsecond)
	snd.StartJob(100_000, nil)
	s.RunUntil(sim.Second)
	srtt := snd.SRTT()
	if srtt < 450*sim.Microsecond || srtt > 650*sim.Microsecond {
		t.Errorf("SRTT = %v, want ~500us", srtt)
	}
}

func TestLossRecoveryByFastRetransmit(t *testing.T) {
	s := sim.New(1)
	snd, rcv, fwd, _ := loop(s, DefaultConfig(), 50*sim.Microsecond)
	dropped := false
	fwd.intercept = func(p *packet.Packet) bool {
		// Drop exactly one mid-stream segment.
		if !dropped && p.Seq == 14600 {
			dropped = true
			return false
		}
		return true
	}
	var fct sim.Time = -1
	snd.StartJob(200_000, func(d sim.Time) { fct = d })
	s.RunUntil(5 * sim.Second)
	if fct < 0 {
		t.Fatal("did not recover from single loss")
	}
	if !dropped {
		t.Fatal("test never dropped the segment")
	}
	if snd.Stats().FastRetransmits == 0 {
		t.Error("recovered without fast retransmit (RTO instead?)")
	}
	if rcv.RcvNxt() != 200_000 {
		t.Errorf("receiver at %d", rcv.RcvNxt())
	}
}

func TestBurstLossRecoveredByRTO(t *testing.T) {
	s := sim.New(1)
	snd, _, fwd, _ := loop(s, cfgMinRTO(sim.Millisecond), 50*sim.Microsecond)
	var blocked bool
	fwd.intercept = func(p *packet.Packet) bool { return !blocked }
	var fct sim.Time = -1
	snd.StartJob(50_000, func(d sim.Time) { fct = d })
	// Blackhole everything briefly from the start of recovery window.
	s.At(100*sim.Microsecond, func() { blocked = true })
	s.At(5*sim.Millisecond, func() { blocked = false })
	s.RunUntil(10 * sim.Second)
	if fct < 0 {
		t.Fatal("did not recover from blackhole")
	}
	if snd.Stats().Timeouts == 0 {
		t.Error("no RTO recorded across a blackhole")
	}
}

func TestECNHalvesWindow(t *testing.T) {
	s := sim.New(1)
	snd, _, fwd, _ := loop(s, DefaultConfig(), 100*sim.Microsecond)
	marking := false
	fwd.intercept = func(p *packet.Packet) bool {
		if marking && p.InnerECT {
			p.InnerCE = true
		}
		return true
	}
	snd.StartJob(1_000_000_000, nil) // effectively unbounded for this test
	var before float64
	s.At(sim.Millisecond, func() {
		before = snd.Cwnd()
		marking = true
	})
	var after float64
	s.At(2*sim.Millisecond, func() { after = snd.Cwnd() })
	s.RunUntil(2 * sim.Millisecond)
	if snd.Stats().ECNReductions == 0 {
		t.Fatal("no ECN reduction")
	}
	if after >= before {
		t.Errorf("cwnd %v -> %v under ECN marking", before, after)
	}
}

func TestECNDisabledIgnoresECE(t *testing.T) {
	s := sim.New(1)
	cfg := Config{ECN: false, MSS: 1460, InitCwnd: 10, MinRTO: 2 * sim.Millisecond,
		InitRTO: 10 * sim.Millisecond, MaxCwnd: 1024, DupAckThreshold: 3}
	snd, _, fwd, _ := loop(s, cfg, 100*sim.Microsecond)
	fwd.intercept = func(p *packet.Packet) bool {
		p.InnerCE = true
		return true
	}
	snd.StartJob(1_000_000, nil)
	s.RunUntil(20 * sim.Millisecond)
	if snd.Stats().ECNReductions != 0 {
		t.Error("ECN-disabled sender reduced on ECE")
	}
}

func TestReorderingTriggersDupAcksButRecovers(t *testing.T) {
	s := sim.New(1)
	snd, rcv, fwd, _ := loop(s, DefaultConfig(), 50*sim.Microsecond)
	// Delay one segment by 400us: it arrives out of order.
	delayedOnce := false
	fwd.intercept = func(p *packet.Packet) bool {
		if !delayedOnce && p.Seq == 29200 {
			delayedOnce = true
			s.After(400*sim.Microsecond, func() { fwd.deliver(p) })
			return false
		}
		return true
	}
	var fct sim.Time = -1
	snd.StartJob(300_000, func(d sim.Time) { fct = d })
	s.RunUntil(5 * sim.Second)
	if fct < 0 {
		t.Fatal("did not complete under reordering")
	}
	if rcv.Stats().OutOfOrder == 0 {
		t.Error("receiver saw no out-of-order segments")
	}
	if rcv.RcvNxt() != 300_000 {
		t.Errorf("rcvNxt = %d", rcv.RcvNxt())
	}
}

func TestReceiverOOOMerging(t *testing.T) {
	s := sim.New(1)
	flow := packet.FiveTuple{Src: 1, Dst: 2}
	var acks []int64
	r := NewReceiver(s, DefaultConfig(), flow, func(p *packet.Packet) { acks = append(acks, p.Ack) })
	seg := func(seq int64, n int) *packet.Packet {
		return &packet.Packet{Inner: flow, Seq: seq, PayloadLen: n}
	}
	r.HandleData(seg(2000, 1000)) // hole at 0
	r.HandleData(seg(4000, 1000)) // second hole
	r.HandleData(seg(3000, 1000)) // bridges 2000-5000
	if r.OOOSegments() != 1 {
		t.Errorf("ooo segments = %d, want 1 merged", r.OOOSegments())
	}
	r.HandleData(seg(0, 2000)) // fills the head hole
	if r.RcvNxt() != 5000 {
		t.Errorf("rcvNxt = %d, want 5000", r.RcvNxt())
	}
	if r.OOOSegments() != 0 {
		t.Error("ooo buffer not drained")
	}
	if got := acks[len(acks)-1]; got != 5000 {
		t.Errorf("last ack = %d", got)
	}
	// Pure duplicate.
	r.HandleData(seg(0, 1000))
	if r.Stats().Duplicates != 1 {
		t.Error("duplicate not counted")
	}
}

func TestSlowStartAfterIdle(t *testing.T) {
	s := sim.New(1)
	snd, _, _, _ := loop(s, DefaultConfig(), 50*sim.Microsecond)
	snd.StartJob(2_000_000, nil)
	s.RunUntil(2 * sim.Second)
	grown := snd.Cwnd()
	if grown <= 10 {
		t.Skipf("window did not grow (%v); cannot test idle reset", grown)
	}
	// Long idle, then a new job: cwnd must reset to initial.
	s.At(s.Now()+sim.Second, func() {
		snd.StartJob(1000, nil)
		if snd.Cwnd() != 10 {
			t.Errorf("cwnd after idle = %v, want 10", snd.Cwnd())
		}
	})
	s.RunUntil(s.Now() + 2*sim.Second)
}

func TestExactlyOnceInOrderDeliveryUnderRandomLoss(t *testing.T) {
	s := sim.New(99)
	snd, rcv, fwd, rev := loop(s, cfgMinRTO(sim.Millisecond), 30*sim.Microsecond)
	rng := s.Rand()
	fwd.intercept = func(p *packet.Packet) bool { return rng.Float64() > 0.03 }
	rev.intercept = func(p *packet.Packet) bool { return rng.Float64() > 0.03 }
	const total = 500_000
	var fct sim.Time = -1
	snd.StartJob(total, func(d sim.Time) { fct = d })
	s.RunUntil(60 * sim.Second)
	if fct < 0 {
		t.Fatalf("lossy transfer incomplete: una=%d nxt=%d", snd.sndUna, snd.sndNxt)
	}
	if rcv.RcvNxt() != total {
		t.Errorf("rcvNxt = %d, want %d", rcv.RcvNxt(), total)
	}
	if rcv.Stats().BytesDelivered != total {
		t.Errorf("delivered %d bytes exactly-once, want %d", rcv.Stats().BytesDelivered, total)
	}
	if snd.Stats().Retransmits == 0 {
		t.Error("lossy run had zero retransmits — loss injection broken?")
	}
}

func TestStartJobPanicsOnNonPositive(t *testing.T) {
	s := sim.New(1)
	snd, _, _, _ := loop(s, DefaultConfig(), sim.Microsecond)
	defer func() {
		if recover() == nil {
			t.Error("no panic for size 0")
		}
	}()
	snd.StartJob(0, nil)
}

// --- MPTCP ---

// mpLoop wires an MPSender to a single receiver per subflow over shared pipes.
func mpLoop(s *sim.Simulator, n int, delay sim.Time, perSubflowDelay map[uint16]sim.Time) (*MPSender, map[uint16]*Receiver) {
	base := packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 100, DstPort: 200, Proto: packet.ProtoTCP}
	receivers := map[uint16]*Receiver{}
	var mp *MPSender
	fwd := func(p *packet.Packet) {
		d := delay
		if pd, ok := perSubflowDelay[p.Inner.SrcPort]; ok {
			d = pd
		}
		s.After(d, func() { receivers[p.Inner.SrcPort].HandleData(p) })
	}
	mp = NewMPSender(s, DefaultConfig(), base, n, fwd)
	for _, sub := range mp.Subflows() {
		ft := sub.Flow()
		port := ft.SrcPort
		receivers[port] = NewReceiver(s, DefaultConfig(), ft, func(p *packet.Packet) {
			d := delay
			if pd, ok := perSubflowDelay[p.Inner.DstPort]; ok {
				d = pd
			}
			s.After(d, func() { mp.HandleAck(p) })
		})
	}
	return mp, receivers
}

func TestMPTCPTransferCompletes(t *testing.T) {
	s := sim.New(1)
	mp, receivers := mpLoop(s, 4, 50*sim.Microsecond, nil)
	var fct sim.Time = -1
	mp.StartJob(1_000_000, func(d sim.Time) { fct = d })
	s.RunUntil(30 * sim.Second)
	if fct < 0 {
		t.Fatal("MPTCP job incomplete")
	}
	var total int64
	active := 0
	for _, r := range receivers {
		total += r.Stats().BytesDelivered
		if r.Stats().BytesDelivered > 0 {
			active++
		}
	}
	if total != 1_000_000 {
		t.Errorf("delivered %d bytes across subflows", total)
	}
	if active < 2 {
		t.Errorf("only %d subflows carried data; scheduler not spreading", active)
	}
}

func TestMPTCPPrefersFasterSubflow(t *testing.T) {
	s := sim.New(1)
	slow := map[uint16]sim.Time{100: 2 * sim.Millisecond} // subflow 0 is slow
	mp, receivers := mpLoop(s, 2, 50*sim.Microsecond, slow)
	var fct sim.Time = -1
	mp.StartJob(2_000_000, func(d sim.Time) { fct = d })
	s.RunUntil(60 * sim.Second)
	if fct < 0 {
		t.Fatal("incomplete")
	}
	if receivers[101].Stats().BytesDelivered <= receivers[100].Stats().BytesDelivered {
		t.Errorf("fast subflow carried %d <= slow subflow %d",
			receivers[101].Stats().BytesDelivered, receivers[100].Stats().BytesDelivered)
	}
}

func TestMPTCPSequentialJobs(t *testing.T) {
	s := sim.New(1)
	mp, _ := mpLoop(s, 4, 50*sim.Microsecond, nil)
	count := 0
	for i := 0; i < 3; i++ {
		mp.StartJob(100_000, func(sim.Time) { count++ })
	}
	s.RunUntil(30 * sim.Second)
	if count != 3 {
		t.Errorf("completed %d/3 MPTCP jobs", count)
	}
}
