package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseTenantsDefaults(t *testing.T) {
	specs, err := parseTenants([]byte(`{"tenants":[{"name":"solo"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("len = %d", len(specs))
	}
	s := specs[0]
	if s.Listen != "127.0.0.1" {
		t.Errorf("Listen = %q", s.Listen)
	}
	if s.Paths != 4 {
		t.Errorf("Paths = %d, want datapath default 4", s.Paths)
	}
	if s.FlowletGap <= 0 || s.RelayInterval <= 0 {
		t.Errorf("gaps not defaulted: %v / %v", s.FlowletGap, s.RelayInterval)
	}
	if s.Remote != "" {
		t.Errorf("Remote defaulted to %q, want empty (receive-only)", s.Remote)
	}
}

func TestParseTenantsExplicit(t *testing.T) {
	specs, err := parseTenants([]byte(`{"tenants":[
		{"name":"a","listen":"127.0.0.2","remote":"10.0.0.1:9000","paths":8,
		 "flowlet_gap":"2ms","relay_interval":250000}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	s := specs[0]
	if s.Listen != "127.0.0.2" || s.Remote != "10.0.0.1:9000" || s.Paths != 8 {
		t.Errorf("explicit fields lost: %+v", s)
	}
	if time.Duration(s.FlowletGap) != 2*time.Millisecond {
		t.Errorf("FlowletGap = %v, want 2ms (string form)", time.Duration(s.FlowletGap))
	}
	if time.Duration(s.RelayInterval) != 250*time.Microsecond {
		t.Errorf("RelayInterval = %v, want 250µs (nanosecond number form)", time.Duration(s.RelayInterval))
	}
}

func TestParseTenantsErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty list", `{"tenants":[]}`, "no tenants defined"},
		{"no list", `{}`, "no tenants defined"},
		{"missing name", `{"tenants":[{"paths":2}]}`, "name is required"},
		{"duplicate name", `{"tenants":[{"name":"x"},{"name":"x"}]}`, `duplicate tenant name "x"`},
		{"negative paths", `{"tenants":[{"name":"x","paths":-1}]}`, "paths must be positive"},
		{"negative gap", `{"tenants":[{"name":"x","flowlet_gap":-5}]}`, "flowlet_gap must not be negative"},
		{"negative relay", `{"tenants":[{"name":"x","relay_interval":-5}]}`, "relay_interval must not be negative"},
		{"bad duration", `{"tenants":[{"name":"x","flowlet_gap":"fast"}]}`, `invalid duration "fast"`},
		{"unknown field", `{"tenants":[{"name":"x","pathz":2}]}`, `unknown field "pathz"`},
		{"trailing data", `{"tenants":[{"name":"x"}]} {"more":1}`, "trailing data"},
		{"not json", `nope`, "tenants:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseTenants([]byte(tc.in))
			if err == nil {
				t.Fatalf("parse accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestDurationJSONRoundTrip(t *testing.T) {
	d := Duration(1500 * time.Microsecond)
	b, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1.5ms"` {
		t.Errorf("marshal = %s", b)
	}
	var back Duration
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Errorf("round trip: %v != %v", back, d)
	}
}
