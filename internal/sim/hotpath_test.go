package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// chainState drives a self-rescheduling event chain through the static
// trampoline below — the allocation-free scheduling idiom the network model
// uses on its per-packet paths.
type chainState struct {
	s     *Simulator
	left  int
	fired int
}

func chainStep(a, _ any) {
	st := a.(*chainState)
	st.fired++
	st.left--
	if st.left > 0 {
		st.s.AfterCall(Microsecond, chainStep, st, nil)
	}
}

func noopCall(_, _ any) {}

// runChain schedules and drains a chain of n events.
func runChain(s *Simulator, st *chainState, n int) {
	st.left = n
	s.AfterCall(0, chainStep, st, nil)
	s.Run()
}

// TestHotPathChainZeroAllocs is the core tentpole assertion: once the free
// list is warm, scheduling and firing events through AtCall/AfterCall
// allocates nothing.
func TestHotPathChainZeroAllocs(t *testing.T) {
	s := New(1)
	st := &chainState{s: s}
	runChain(s, st, 100) // warm the free list and heap backing array

	allocs := testing.AllocsPerRun(50, func() {
		runChain(s, st, 100)
	})
	if allocs != 0 {
		t.Fatalf("allocs per 100-event chain = %v, want 0", allocs)
	}
}

// BenchmarkHotPathEventChain measures ns/event on the pooled scheduling path
// and fails on any alloc regression (the CI bench-smoke job runs it).
func BenchmarkHotPathEventChain(b *testing.B) {
	s := New(1)
	st := &chainState{s: s}
	runChain(s, st, 100)
	if allocs := testing.AllocsPerRun(20, func() { runChain(s, st, 100) }); allocs != 0 {
		b.Fatalf("allocs per 100-event chain = %v, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runChain(s, st, 100)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*100)/b.Elapsed().Seconds(), "events/sec")
}

// TestMillionOneShotEventsRecycle runs one million chained one-shot events
// and checks that (a) nothing stays pending, (b) the free list stays at the
// peak-pending size — a couple of structs, not a million — and (c) recycled
// events are fully cleared so the free list cannot pin dead closures or
// operands against the GC.
func TestMillionOneShotEventsRecycle(t *testing.T) {
	s := New(1)
	st := &chainState{s: s}
	const n = 1_000_000
	runChain(s, st, n)

	if st.fired != n {
		t.Fatalf("fired %d events, want %d", st.fired, n)
	}
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending() = %d after run, want 0", got)
	}
	if free := s.FreeEvents(); free > 4 {
		t.Errorf("FreeEvents() = %d after chained run, want a handful (peak pending was 1)", free)
	}
	if len(s.slab) > 4 {
		t.Errorf("slab grew to %d slots on a chained run, want a handful (peak pending was 1)", len(s.slab))
	}
	for i, slot := range s.free {
		ev := &s.slab[slot]
		if ev.fn != nil || ev.call != nil || ev.a != nil || ev.b != nil {
			t.Fatalf("free[%d] (slot %d) not cleared: fn-set=%t call-set=%t a=%v b=%v",
				i, slot, ev.fn != nil, ev.call != nil, ev.a, ev.b)
		}
		if ev.heapIdx >= 0 {
			t.Fatalf("free[%d] (slot %d) still claims heap position %d", i, slot, ev.heapIdx)
		}
	}
}

// TestBurstFreeListBounded schedules a large burst up front (peak pending =
// burst size) and checks the drained simulator sheds the surplus slab
// memory instead of pinning it for the rest of the run — and that stale IDs
// into the discarded region, and fresh scheduling afterwards, stay correct.
func TestBurstFreeListBounded(t *testing.T) {
	s := New(1)
	const burst = maxEventFree * 2
	var lastID EventID
	for i := 0; i < burst; i++ {
		lastID = s.AtCall(Time(i), noopCall, nil, nil)
	}
	s.Run()
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending() = %d, want 0", got)
	}
	if free := s.FreeEvents(); free > maxEventFree {
		t.Errorf("FreeEvents() = %d, exceeds cap %d", free, maxEventFree)
	}
	if got := len(s.slab); got > maxEventFree {
		t.Errorf("slab holds %d slots after drain, exceeds cap %d", got, maxEventFree)
	}
	// A stale ID referring to a slot beyond the shrunk slab is a no-op.
	if s.Cancel(lastID) {
		t.Error("stale ID into the discarded slab region cancelled something")
	}
	// The shrunk simulator schedules and fires normally.
	ran := 0
	s.AtCall(s.Now()+1, func(a, _ any) { *(a.(*int))++ }, &ran, nil)
	s.Run()
	if ran != 1 {
		t.Errorf("post-shrink event ran %d times, want 1", ran)
	}
}

// TestTickerZeroAllocsPerTick pins the periodic-timer guarantee: once a
// ticker is created (one state struct + one cancel closure), every tick —
// fire, callback, reschedule — is allocation-free. The pre-slab Ticker
// allocated a fresh closure chain per tick, which showed up as steady churn
// under periodic DRE relays and probe rounds.
func TestTickerZeroAllocsPerTick(t *testing.T) {
	s := New(1)
	ticks := 0
	cancel := s.Ticker(Microsecond, func() { ticks++ })
	defer cancel()
	s.RunUntil(s.Now() + 10*Microsecond) // warm slab, heap, free list

	allocs := testing.AllocsPerRun(50, func() {
		s.RunUntil(s.Now() + 100*Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("allocs per 100-tick window = %v, want 0", allocs)
	}
	if ticks < 100 {
		t.Fatalf("ticker fired %d times, want >= 100", ticks)
	}
}

// TestTickerCancelSemantics pins the cancellation contract the network model
// relies on: cancelling inside the callback stops future ticks immediately
// (no reschedule happens), while cancelling between ticks leaves the
// already-scheduled next event to fire once as a no-op rather than removing
// it — exactly the pre-slab closure ticker's behavior, so event sequence
// numbering is unchanged by the reimplementation.
func TestTickerCancelSemantics(t *testing.T) {
	// Cancel between ticks: the next event stays queued and no-ops.
	s := New(1)
	ticks := 0
	cancel := s.Ticker(10, func() { ticks++ })
	s.RunUntil(35) // ticks at 10, 20, 30; tick 4 pending at 40
	cancel()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after cancel, want the one residual no-op", got)
	}
	s.RunUntil(1000)
	if ticks != 3 {
		t.Errorf("ticks = %d after cancel, want 3", ticks)
	}
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending() = %d at end, want 0", got)
	}

	// Cancel inside the callback: no reschedule, queue drains at once.
	s2 := New(1)
	ticks2 := 0
	var cancel2 func()
	cancel2 = s2.Ticker(10, func() {
		ticks2++
		if ticks2 == 3 {
			cancel2()
		}
	})
	s2.RunUntil(1000)
	if ticks2 != 3 {
		t.Errorf("ticks2 = %d after in-callback cancel, want 3", ticks2)
	}
	if got := s2.Pending(); got != 0 {
		t.Errorf("Pending() = %d after in-callback cancel, want 0", got)
	}
}

// TestCancelStaleIDAfterFire verifies a fired event's ID goes stale: it can
// neither report a successful cancel nor touch the event struct's next
// incarnation.
func TestCancelStaleIDAfterFire(t *testing.T) {
	s := New(1)
	ran := 0
	id := s.AtCall(10, func(a, _ any) { *(a.(*int))++ }, &ran, nil)
	s.Run()
	if ran != 1 {
		t.Fatalf("event ran %d times, want 1", ran)
	}
	if s.Cancel(id) {
		t.Error("Cancel succeeded on an already-fired event")
	}

	// The slot is now on the free list; the next schedule reuses it.
	ran2 := 0
	id2 := s.AtCall(20, func(a, _ any) { *(a.(*int))++ }, &ran2, nil)
	if id2.slot != id.slot {
		t.Fatalf("expected the recycled slot to be reused (free list size 1)")
	}
	if s.Cancel(id) {
		t.Error("stale ID cancelled the struct's next incarnation")
	}
	s.Run()
	if ran2 != 1 {
		t.Errorf("second incarnation ran %d times, want 1 (stale ID must not affect it)", ran2)
	}
}

// TestCancelStaleIDAfterCancel is the same guarantee for cancellation: a
// cancelled event's ID cannot cancel or suppress the recycled struct.
func TestCancelStaleIDAfterCancel(t *testing.T) {
	s := New(1)
	id := s.AtCall(10, func(_, _ any) { t.Error("cancelled event fired") }, nil, nil)
	if !s.Cancel(id) {
		t.Fatal("first Cancel failed")
	}
	if s.Cancel(id) {
		t.Error("second Cancel of the same ID succeeded")
	}

	ran := 0
	id2 := s.AtCall(20, func(a, _ any) { *(a.(*int))++ }, &ran, nil)
	if id2.slot != id.slot {
		t.Fatalf("expected slot reuse after cancel")
	}
	if id2.seq == id.seq {
		t.Fatal("incarnation stamp not advanced on recycle")
	}
	if s.Cancel(id) {
		t.Error("stale ID cancelled the recycled event")
	}
	s.Run()
	if ran != 1 {
		t.Errorf("recycled event ran %d times, want 1", ran)
	}
}

// TestStressMixedScheduleCancel drives a randomized mix of At, After,
// AtCall, and Cancel against a reference model and requires the fired
// sequence to match the model exactly — order included. Heavy cancellation
// keeps the free list churning, so every firing exercises recycled structs.
func TestStressMixedScheduleCancel(t *testing.T) {
	s := New(7)
	rng := rand.New(rand.NewSource(42))

	type entry struct {
		id        EventID
		at        Time
		seq       int // scheduling order, the FIFO tiebreak
		payload   int
		cancelled bool
	}
	var entries []*entry
	var fired []int
	note := func(a, _ any) { fired = append(fired, a.(*entry).payload) }

	const ops = 5000
	for op := 0; op < ops; op++ {
		switch r := rng.Intn(10); {
		case r < 3: // closure form
			e := &entry{at: Time(rng.Intn(1000)), seq: op, payload: op}
			e.id = s.At(e.at, func() { fired = append(fired, e.payload) })
			entries = append(entries, e)
		case r < 6: // pooled form
			e := &entry{at: Time(rng.Intn(1000)), seq: op, payload: op}
			e.id = s.AtCall(e.at, note, e, nil)
			entries = append(entries, e)
		default: // cancel a random live entry
			live := make([]*entry, 0, len(entries))
			for _, e := range entries {
				if !e.cancelled {
					live = append(live, e)
				}
			}
			if len(live) == 0 {
				continue
			}
			e := live[rng.Intn(len(live))]
			if !s.Cancel(e.id) {
				t.Fatalf("Cancel of live event %d failed", e.payload)
			}
			e.cancelled = true
			if s.Cancel(e.id) {
				t.Fatalf("double Cancel of event %d succeeded", e.payload)
			}
		}
	}
	s.Run()

	var want []int
	alive := make([]*entry, 0, len(entries))
	for _, e := range entries {
		if !e.cancelled {
			alive = append(alive, e)
		}
	}
	sort.Slice(alive, func(i, j int) bool {
		if alive[i].at != alive[j].at {
			return alive[i].at < alive[j].at
		}
		return alive[i].seq < alive[j].seq
	})
	for _, e := range alive {
		want = append(want, e.payload)
	}

	if len(fired) != len(want) {
		t.Fatalf("fired %d events, model says %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("firing order diverges at %d: got %d, want %d", i, fired[i], want[i])
		}
	}
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending() = %d, want 0", got)
	}
}
