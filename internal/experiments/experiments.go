// Package experiments regenerates every table and figure in the paper's
// evaluation (Secs. 5 and 6): the testbed load sweeps on symmetric and
// asymmetric topologies (Figs. 4b, 4c), the FCT breakdowns (Figs. 5a–5c),
// the Clove-ECN parameter sensitivity study (Fig. 6), the incast workload
// (Fig. 7), the simulation comparison against Clove-INT and CONGA
// (Figs. 8a, 8b), the mice-FCT CDF (Fig. 9), and the headline summary
// ratios. Each experiment runs at a configurable Scale so the same code
// drives quick benchmarks and paper-scale runs.
package experiments

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"time"

	"clove/internal/cluster"
	"clove/internal/netem"
	"clove/internal/sim"
	"clove/internal/stats"
	"clove/internal/telemetry"
)

// Scale trades fidelity for runtime. Link rates are always the paper's
// (10G/40G): simulation cost depends on packet count, so the knobs are
// host count, flow-size scale, and job count.
type Scale struct {
	Name           string
	HostsPerLeaf   int       // paper: 16
	SizeScale      float64   // flow-size multiplier (paper: 1.0)
	TotalJobs      int       // jobs per run (testbed: 50K/conn; sim: 20K)
	ConnsPerClient int       // paper testbed: 1; NS2: 3
	Seeds          []int64   // paper: 3 random seeds, averaged
	Loads          []float64 // load sweep points
	IncastRequests int
	IncastBytes    int64
	MaxSimTime     sim.Time

	// DomainWorkers is the engine worker count inside each sharded
	// (leaves > 2) scenario run; 0/1 runs the conservative windows
	// serially. Orthogonal to Parallelism (workers across runs) and, like
	// it, never changes output bytes.
	DomainWorkers int

	// Parallelism bounds the worker pool running independent (scheme,
	// load, seed) jobs: 0 means GOMAXPROCS, 1 forces a serial run. Any
	// value produces byte-identical FormatRows output for the same seeds
	// (see runner.go); it only changes wall-clock time.
	Parallelism int

	// Oracle installs the correctness oracle (internal/oracle) on every
	// run; any detected invariant violation panics with the verdict.
	// Observation never changes results — output stays byte-identical.
	Oracle bool

	// Telemetry, when non-nil, traces every run and exports each run's
	// streams under Telemetry.Dir. Tracing reads simulation state but never
	// perturbs it, and every run's trace directory is written by exactly one
	// job, so trace bytes — like FormatRows output — are identical for the
	// same seeds at any Parallelism.
	Telemetry *TraceSpec
}

// TraceSpec asks every run of an experiment for a telemetry trace
// (internal/telemetry). Each run exports into its own subdirectory of Dir
// named <figure>_<scheme>[_<variant>]_load<NNN>_seed<N> (incast runs use
// fanout<NN> instead of load<NNN>).
type TraceSpec struct {
	// Dir is the root output directory (created if missing).
	Dir string
	// Interval is the sampling interval for the polled streams
	// (0 = telemetry.DefaultInterval).
	Interval sim.Time
	// MaxSamples bounds each stream's ring buffer
	// (0 = telemetry.DefaultMaxSamples).
	MaxSamples int
}

// config converts the spec into the cluster-level telemetry config.
func (ts *TraceSpec) config() *telemetry.Config {
	if ts == nil {
		return nil
	}
	return &telemetry.Config{Interval: ts.Interval, MaxSamples: ts.MaxSamples}
}

// runDir names one run's trace subdirectory. point is "load070" or
// "fanout05"; the variant label (Fig. 6) is folded to lowercase
// alphanumerics and dashes so it is filesystem-safe.
func traceRunDir(figure string, scheme cluster.Scheme, variant, point string, seed int64) string {
	name := fmt.Sprintf("%s_%s", figure, scheme)
	if v := sanitizeLabel(variant); v != "" {
		name += "_" + v
	}
	return fmt.Sprintf("%s_%s_seed%d", name, point, seed)
}

func sanitizeLabel(s string) string {
	out := make([]byte, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			out = append(out, byte(r))
		case r >= 'A' && r <= 'Z':
			out = append(out, byte(r-'A'+'a'))
		}
	}
	return string(out)
}

// Quick is sized for CI and `go test -bench`: one seed, few load points,
// small flows. Shapes (scheme ordering, crossover direction) already hold.
func Quick() Scale {
	return Scale{
		Name: "quick", HostsPerLeaf: 4, SizeScale: 0.1,
		TotalJobs: 1000, ConnsPerClient: 1, Seeds: []int64{1, 2},
		Loads:          []float64{0.3, 0.5, 0.7},
		IncastRequests: 8, IncastBytes: 1_000_000,
		MaxSimTime: 300 * sim.Second,
	}
}

// Standard is the CLI default: full load sweeps, three seeds, eight hosts
// per leaf. Minutes of wall time on one core.
func Standard() Scale {
	return Scale{
		Name: "standard", HostsPerLeaf: 8, SizeScale: 0.1,
		TotalJobs: 2000, ConnsPerClient: 1, Seeds: []int64{1, 2, 3},
		Loads:          []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
		IncastRequests: 30, IncastBytes: 4_000_000,
		MaxSimTime: 600 * sim.Second,
	}
}

// Paper is the full-fidelity configuration (hours of wall time).
func Paper() Scale {
	return Scale{
		Name: "paper", HostsPerLeaf: 16, SizeScale: 1.0,
		TotalJobs: 20000, ConnsPerClient: 3, Seeds: []int64{1, 2, 3},
		Loads:          []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		IncastRequests: 200, IncastBytes: 10_000_000,
		MaxSimTime: 3600 * sim.Second,
	}
}

// Row is one data point of a regenerated figure.
type Row struct {
	Figure  string
	Scheme  string
	Load    float64 // offered load fraction (load sweeps)
	Fanout  int     // incast only
	Variant string  // parameter-sensitivity label (Fig. 6)

	MeanFCTSec   float64
	P99FCTSec    float64
	MiceFCTSec   float64
	ElephFCTSec  float64
	GoodputBps   float64
	CDF          []stats.CDFPoint // Fig. 9 only
	Samples      int
	TimedOutRuns int

	// Cross-seed replication statistics: each metric above is the mean
	// over Replicates seed runs; the stderr fields carry the standard
	// error of that mean (0 with a single seed), so every grid point
	// reports mean ± stderr rather than a bare average.
	Replicates       int
	MeanFCTStderrSec float64
	P99FCTStderrSec  float64
	GoodputStderrBps float64
}

// sweepOpts configures one load-sweep experiment.
type sweepOpts struct {
	figure     string
	schemes    []cluster.Scheme
	asym       bool
	prestoGood bool // grant Presto ideal weights (asym runs)
	// mutate tweaks the cluster config per run (Fig. 6 variants).
	mutate  func(*cluster.Config)
	variant string
	maxLoad float64 // skip sweep points above this (paper stops asym at 0.8)
}

// runOne executes one (scheme, load, seed) run and returns its recorder.
func runOne(sc Scale, opts sweepOpts, scheme cluster.Scheme, load float64, seed int64) (*stats.FCTRecorder, bool) {
	cfg := cluster.Config{
		Seed:               seed,
		Topo:               netem.ScaledTestbed(1.0, sc.HostsPerLeaf),
		Scheme:             scheme,
		AsymmetricFailure:  opts.asym,
		PrestoIdealWeights: opts.prestoGood && scheme == cluster.SchemePresto,
		Oracle:             sc.Oracle,
		Telemetry:          sc.Telemetry.config(),
	}
	if opts.mutate != nil {
		opts.mutate(&cfg)
	}
	c := cluster.New(cfg)
	res := c.RunWebSearch(cluster.WebSearchParams{
		Load:           load,
		TotalJobs:      sc.TotalJobs,
		ConnsPerClient: sc.ConnsPerClient,
		SizeScale:      sc.SizeScale,
		MaxSimTime:     sc.MaxSimTime,
	})
	if err := c.CheckOracle(); err != nil {
		panic(fmt.Sprintf("%s %s load=%.2f seed=%d: %v", opts.figure, scheme, load, seed, err))
	}
	if sc.Telemetry != nil {
		point := fmt.Sprintf("load%03d", int(load*100+0.5))
		dir := filepath.Join(sc.Telemetry.Dir, traceRunDir(opts.figure, scheme, opts.variant, point, seed))
		if err := c.Trace.Export(dir); err != nil {
			panic(fmt.Sprintf("%s %s load=%.2f seed=%d: trace export: %v", opts.figure, scheme, load, seed, err))
		}
	}
	return c.Recorder, res.TimedOut
}

// sweep runs the cross product schemes x loads x seeds and aggregates.
func sweep(sc Scale, opts sweepOpts, progress io.Writer) []Row {
	return sweepMany(sc, []sweepOpts{opts}, progress)
}

// sweepPoint is one grid point of a sweep: every seed replicate of it is
// an independent job.
type sweepPoint struct {
	opts   *sweepOpts
	scheme cluster.Scheme
	load   float64
}

// runOutcome is what one (point, seed) job contributes to its row.
type runOutcome struct {
	sum      stats.Summary
	timedOut bool
}

// sweepMany expands every opts' schemes x loads grid (in order) into
// seed-replicated jobs, runs them on the worker pool, and aggregates each
// grid point's replicates into one Row. Rows come back in the same order
// the serial nested loops produced, whatever the parallelism.
func sweepMany(sc Scale, optsList []sweepOpts, progress io.Writer) []Row {
	var pts []sweepPoint
	for oi := range optsList {
		opts := &optsList[oi]
		for _, scheme := range opts.schemes {
			for _, load := range sc.Loads {
				if opts.maxLoad > 0 && load > opts.maxLoad {
					continue
				}
				pts = append(pts, sweepPoint{opts: opts, scheme: scheme, load: load})
			}
		}
	}
	seeds := sc.Seeds
	outs := make([]runOutcome, len(pts)*len(seeds))
	tracker := newProgressTracker(progress, len(outs))
	runJobs(sc.Workers(), len(outs), func(i int) {
		p := pts[i/len(seeds)]
		seed := seeds[i%len(seeds)]
		start := time.Now()
		rec, timedOut := runOne(sc, *p.opts, p.scheme, p.load, seed)
		outs[i] = runOutcome{sum: rec.Summarize(), timedOut: timedOut}
		tracker.jobDone(fmt.Sprintf("%s %s load=%.0f%% seed=%d",
			p.opts.figure, p.scheme, p.load*100, seed), time.Since(start))
	})

	rows := make([]Row, 0, len(pts))
	for pi, p := range pts {
		row := Row{
			Figure: p.opts.figure, Scheme: string(p.scheme), Load: p.load,
			Variant: p.opts.variant, Replicates: len(seeds),
		}
		means := make([]float64, 0, len(seeds))
		p99s := make([]float64, 0, len(seeds))
		mices := make([]float64, 0, len(seeds))
		elephs := make([]float64, 0, len(seeds))
		for si := range seeds {
			o := outs[pi*len(seeds)+si]
			if o.timedOut {
				row.TimedOutRuns++
			}
			means = append(means, o.sum.MeanSec)
			p99s = append(p99s, o.sum.P99Sec)
			mices = append(mices, o.sum.MiceMeanSec)
			elephs = append(elephs, o.sum.ElephMeanSec)
			row.Samples += o.sum.Count
		}
		row.MeanFCTSec, row.MeanFCTStderrSec = stats.MeanStderr(means)
		row.P99FCTSec, row.P99FCTStderrSec = stats.MeanStderr(p99s)
		row.MiceFCTSec, _ = stats.MeanStderr(mices)
		row.ElephFCTSec, _ = stats.MeanStderr(elephs)
		rows = append(rows, row)
		tracker.rowf("%s %-13s load=%.0f%% mean=%.4fs±%.4f p99=%.4fs n=%d\n",
			p.opts.figure, row.Scheme, p.load*100, row.MeanFCTSec, row.MeanFCTStderrSec,
			row.P99FCTSec, row.Samples)
	}
	return rows
}

// testbedSchemes are the deployable schemes of the hardware evaluation
// (Sec. 5). CONGA and Clove-INT need new switch features and only appear in
// the simulation figures (Sec. 6).
func testbedSchemes() []cluster.Scheme {
	return []cluster.Scheme{
		cluster.SchemeECMP, cluster.SchemeEdgeFlowlet, cluster.SchemeCloveECN,
		cluster.SchemeMPTCP, cluster.SchemePresto,
	}
}

// simSchemes are the simulation-only sweeps: the paper's set plus the two
// contrast points added here — stateless Concury and in-network Charon —
// which, like CONGA and Clove-INT, need features a commodity edge or
// fabric of the testbed era did not have.
func simSchemes() []cluster.Scheme {
	return []cluster.Scheme{
		cluster.SchemeECMP, cluster.SchemeEdgeFlowlet, cluster.SchemeCloveECN,
		cluster.SchemeCloveINT, cluster.SchemeCONGA,
		cluster.SchemeConcury, cluster.SchemeCharon,
	}
}

// Fig4b regenerates "Symmetric topology - avg FCT" (testbed, Fig. 4b).
func Fig4b(sc Scale, progress io.Writer) []Row {
	return sweep(sc, sweepOpts{figure: "fig4b", schemes: testbedSchemes()}, progress)
}

// Fig4c regenerates "Asymmetric topology - avg FCT" (testbed, Fig. 4c);
// Presto receives the ideal static path weights, as in the paper.
func Fig4c(sc Scale, progress io.Writer) []Row {
	return sweep(sc, sweepOpts{
		figure: "fig4c", schemes: testbedSchemes(),
		asym: true, prestoGood: true, maxLoad: 0.8,
	}, progress)
}

// Fig5a regenerates "Avg FCTs for <100KB flows" on the asymmetric testbed.
func Fig5a(sc Scale, progress io.Writer) []Row {
	rows := sweep(sc, sweepOpts{
		figure: "fig5a", schemes: testbedSchemes(),
		asym: true, prestoGood: true, maxLoad: 0.8,
	}, progress)
	return rows
}

// Fig5b regenerates "Avg FCTs for >10MB flows" on the asymmetric testbed.
// (With SizeScale < 1 the elephant bucket scales with it; the Row carries
// the elephant-bucket mean.)
func Fig5b(sc Scale, progress io.Writer) []Row {
	return sweep(sc, sweepOpts{
		figure: "fig5b", schemes: testbedSchemes(),
		asym: true, prestoGood: true, maxLoad: 0.8,
	}, progress)
}

// Fig5c regenerates "99th percentile FCTs" on the asymmetric testbed.
func Fig5c(sc Scale, progress io.Writer) []Row {
	return sweep(sc, sweepOpts{
		figure: "fig5c", schemes: testbedSchemes(),
		asym: true, prestoGood: true, maxLoad: 0.8,
	}, progress)
}

// Fig6 regenerates the Clove-ECN parameter-sensitivity study: variants of
// (flowlet gap, ECN threshold) on the asymmetric topology.
func Fig6(sc Scale, progress io.Writer) []Row {
	variants := []struct {
		label   string
		gapMult float64
		ecnK    int
	}{
		{"clove-best (1*RTT, 20pkts)", 1, 20},
		{"clove (0.2*RTT, 20pkts)", 0.2, 20},
		{"clove (5*RTT, 20pkts)", 5, 20},
		{"clove (1*RTT, 40pkts)", 1, 40},
	}
	var optsList []sweepOpts
	for _, v := range variants {
		v := v
		optsList = append(optsList, sweepOpts{
			figure:  "fig6",
			schemes: []cluster.Scheme{cluster.SchemeCloveECN},
			asym:    true, maxLoad: 0.8,
			variant: v.label,
			mutate: func(cfg *cluster.Config) {
				cfg.Topo.ECNK = v.ecnK
				// The gap multiple is in units of the effective (loaded)
				// RTT, matching the cluster default of 1x effective RTT.
				rtt := netem.BuildLeafSpine(sim.New(0), cfg.Topo).BaseRTT()
				cfg.FlowletGap = sim.Time(float64(rtt) * v.gapMult)
			},
		})
	}
	// One pool across all variants: a variant is just more grid columns.
	return sweepMany(sc, optsList, progress)
}

// Fig7 regenerates the incast experiment: client goodput vs request fanout
// for Clove-ECN, Edge-Flowlet, and MPTCP.
func Fig7(sc Scale, progress io.Writer) []Row {
	schemes := []cluster.Scheme{cluster.SchemeCloveECN, cluster.SchemeEdgeFlowlet, cluster.SchemeMPTCP}
	fanouts := []int{1, 3, 5, 7, 9, 11, 13, 15}
	type point struct {
		scheme cluster.Scheme
		fanout int
	}
	var pts []point
	for _, scheme := range schemes {
		for _, fanout := range fanouts {
			if fanout > sc.HostsPerLeaf {
				continue
			}
			pts = append(pts, point{scheme, fanout})
		}
	}
	type incastOutcome struct {
		goodput   float64
		completed int
		timedOut  bool
	}
	seeds := sc.Seeds
	outs := make([]incastOutcome, len(pts)*len(seeds))
	tracker := newProgressTracker(progress, len(outs))
	runJobs(sc.Workers(), len(outs), func(i int) {
		p := pts[i/len(seeds)]
		seed := seeds[i%len(seeds)]
		start := time.Now()
		c := cluster.New(cluster.Config{
			Seed:      seed,
			Topo:      netem.ScaledTestbed(1.0, sc.HostsPerLeaf),
			Scheme:    p.scheme,
			Oracle:    sc.Oracle,
			Telemetry: sc.Telemetry.config(),
		})
		res := c.RunIncast(cluster.IncastParams{
			Fanout:        p.fanout,
			ResponseBytes: sc.IncastBytes,
			Requests:      sc.IncastRequests,
			MaxSimTime:    sc.MaxSimTime,
		})
		if err := c.CheckOracle(); err != nil {
			panic(fmt.Sprintf("fig7 %s fanout=%d seed=%d: %v", p.scheme, p.fanout, seed, err))
		}
		if sc.Telemetry != nil {
			point := fmt.Sprintf("fanout%02d", p.fanout)
			dir := filepath.Join(sc.Telemetry.Dir, traceRunDir("fig7", p.scheme, "", point, seed))
			if err := c.Trace.Export(dir); err != nil {
				panic(fmt.Sprintf("fig7 %s fanout=%d seed=%d: trace export: %v", p.scheme, p.fanout, seed, err))
			}
		}
		outs[i] = incastOutcome{goodput: res.GoodputBps, completed: res.Completed, timedOut: res.TimedOut}
		tracker.jobDone(fmt.Sprintf("fig7 %s fanout=%d seed=%d", p.scheme, p.fanout, seed), time.Since(start))
	})
	rows := make([]Row, 0, len(pts))
	for pi, p := range pts {
		row := Row{Figure: "fig7", Scheme: string(p.scheme), Fanout: p.fanout, Replicates: len(seeds)}
		goodputs := make([]float64, 0, len(seeds))
		for si := range seeds {
			o := outs[pi*len(seeds)+si]
			if o.timedOut {
				row.TimedOutRuns++
			}
			goodputs = append(goodputs, o.goodput)
			row.Samples += o.completed
		}
		row.GoodputBps, row.GoodputStderrBps = stats.MeanStderr(goodputs)
		rows = append(rows, row)
		tracker.rowf("fig7 %-13s fanout=%-2d goodput=%.2f±%.2f Gbps\n",
			row.Scheme, p.fanout, row.GoodputBps/1e9, row.GoodputStderrBps/1e9)
	}
	return rows
}

// Fig8a regenerates the NS2 symmetric comparison including Clove-INT and
// CONGA.
func Fig8a(sc Scale, progress io.Writer) []Row {
	return sweep(sc, sweepOpts{figure: "fig8a", schemes: simSchemes()}, progress)
}

// Fig8b regenerates the NS2 asymmetric comparison.
func Fig8b(sc Scale, progress io.Writer) []Row {
	return sweep(sc, sweepOpts{
		figure: "fig8b", schemes: simSchemes(),
		asym: true, maxLoad: 0.7,
	}, progress)
}

// Fig9 regenerates the CDF of mice-flow FCTs at 70% load on the asymmetric
// topology for ECMP, Clove-ECN, and CONGA.
func Fig9(sc Scale, progress io.Writer) []Row {
	schemes := []cluster.Scheme{cluster.SchemeECMP, cluster.SchemeCloveECN, cluster.SchemeCONGA}
	seeds := sc.Seeds
	// Each job extracts its run's mice samples; the CDF aggregation
	// happens afterwards in deterministic (scheme, seed) index order.
	mice := make([][]stats.Sample, len(schemes)*len(seeds))
	tracker := newProgressTracker(progress, len(mice))
	runJobs(sc.Workers(), len(mice), func(i int) {
		scheme := schemes[i/len(seeds)]
		seed := seeds[i%len(seeds)]
		start := time.Now()
		rec, _ := runOne(sc, sweepOpts{figure: "fig9", asym: true}, scheme, 0.7, seed)
		mice[i] = rec.Mice().Samples()
		tracker.jobDone(fmt.Sprintf("fig9 %s seed=%d", scheme, seed), time.Since(start))
	})
	var rows []Row
	for si, scheme := range schemes {
		agg := &stats.FCTRecorder{}
		for j := si * len(seeds); j < (si+1)*len(seeds); j++ {
			for _, s := range mice[j] {
				agg.Add(s.Size, s.FCT)
			}
		}
		row := Row{
			Figure: "fig9", Scheme: string(scheme), Load: 0.7,
			Samples: agg.Count(), CDF: agg.CDF(20),
			MeanFCTSec: agg.Mean(), Replicates: len(seeds),
		}
		if agg.Count() > 0 {
			row.P99FCTSec = agg.Percentile(0.99)
		}
		rows = append(rows, row)
		tracker.rowf("fig9 %-13s mice n=%d p99=%.4fs\n", row.Scheme, row.Samples, row.P99FCTSec)
	}
	return rows
}

// FormatRows renders rows as an aligned text table, grouped by figure.
func FormatRows(rows []Row) string {
	sorted := append([]Row(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Figure < sorted[j].Figure })
	out := ""
	lastFig := ""
	for _, r := range sorted {
		if r.Figure != lastFig {
			out += fmt.Sprintf("== %s ==\n", r.Figure)
			lastFig = r.Figure
		}
		switch {
		case r.Fanout > 0:
			out += fmt.Sprintf("  %-28s fanout=%-2d goodput=%8.3f%s Gbps  (n=%d)\n",
				r.Scheme, r.Fanout, r.GoodputBps/1e9, stderrSuffixf("±%.3f", r.Replicates, r.GoodputStderrBps/1e9), r.Samples)
		case len(r.CDF) > 0:
			out += fmt.Sprintf("  %-28s mice CDF (n=%d):", r.Scheme, r.Samples)
			for _, pt := range r.CDF {
				out += fmt.Sprintf(" %.0f%%@%.4fs", pt.P*100, pt.Seconds)
			}
			out += "\n"
		default:
			label := r.Scheme
			if r.Variant != "" {
				label = r.Variant
			}
			out += fmt.Sprintf("  %-28s load=%2.0f%% mean=%8.4fs%s p99=%8.4fs%s mice=%8.4fs eleph=%8.4fs (n=%d)\n",
				label, r.Load*100,
				r.MeanFCTSec, stderrSuffix(r.Replicates, r.MeanFCTStderrSec),
				r.P99FCTSec, stderrSuffix(r.Replicates, r.P99FCTStderrSec),
				r.MiceFCTSec, r.ElephFCTSec, r.Samples)
		}
	}
	return out
}

// stderrSuffix renders "±x.xxxx" for multi-seed rows and nothing for
// single-replicate rows (where a standard error is undefined), keeping
// single-seed output byte-compatible with the pre-replication format.
func stderrSuffix(replicates int, stderr float64) string {
	return stderrSuffixf("±%.4f", replicates, stderr)
}

func stderrSuffixf(format string, replicates int, stderr float64) string {
	if replicates < 2 {
		return ""
	}
	return fmt.Sprintf(format, stderr)
}
