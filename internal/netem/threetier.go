package netem

import (
	"fmt"

	"clove/internal/packet"
	"clove/internal/sim"
)

// ThreeTierConfig parameterizes a 3-tier Clos (pods of leaves and
// aggregation switches under a spine layer) — the topology class the paper
// argues CONGA cannot cover but Clove's discovery handles unchanged, since
// traceroute probing and ECMP steering are topology-agnostic.
type ThreeTierConfig struct {
	Pods          int
	LeavesPerPod  int
	AggsPerPod    int
	Spines        int
	HostsPerLeaf  int
	HostRateBps   int64
	FabricRateBps int64 // leaf-agg and agg-spine links
	LinkDelay     sim.Time
	QueueCap      int
	ECNK          int
}

// DefaultThreeTier returns a small 3-tier fabric: 2 pods x (2 leaves + 2
// aggs), 2 spines, 4 hosts per leaf — 16 hosts, 5 switch hops across pods,
// and 4 distinct cross-pod paths per leaf pair.
func DefaultThreeTier() ThreeTierConfig {
	return ThreeTierConfig{
		Pods: 2, LeavesPerPod: 2, AggsPerPod: 2, Spines: 2,
		HostsPerLeaf: 4,
		HostRateBps:  10e9, FabricRateBps: 20e9,
		LinkDelay: 5 * sim.Microsecond,
		QueueCap:  DefaultQueueCap,
		ECNK:      20,
	}
}

// ThreeTier is the constructed fabric.
type ThreeTier struct {
	*Topology
	Cfg    ThreeTierConfig
	Leaves []*Switch // pod-major order
	Aggs   []*Switch
	Spines []*Switch
}

// BuildThreeTier constructs the fabric and computes routes.
func BuildThreeTier(s *sim.Simulator, cfg ThreeTierConfig) *ThreeTier {
	t := NewTopology(s)
	tt := &ThreeTier{Topology: t, Cfg: cfg}
	fab := LinkConfig{RateBps: cfg.FabricRateBps, Delay: cfg.LinkDelay, QueueCap: cfg.QueueCap, ECNK: cfg.ECNK}

	for p := 0; p < cfg.Pods; p++ {
		for l := 0; l < cfg.LeavesPerPod; l++ {
			tt.Leaves = append(tt.Leaves, t.AddSwitch(fmt.Sprintf("P%dL%d", p+1, l+1)))
		}
		for a := 0; a < cfg.AggsPerPod; a++ {
			tt.Aggs = append(tt.Aggs, t.AddSwitch(fmt.Sprintf("P%dA%d", p+1, a+1)))
		}
	}
	for sp := 0; sp < cfg.Spines; sp++ {
		tt.Spines = append(tt.Spines, t.AddSwitch(fmt.Sprintf("S%d", sp+1)))
	}
	// Leaf <-> agg within each pod.
	for p := 0; p < cfg.Pods; p++ {
		for l := 0; l < cfg.LeavesPerPod; l++ {
			leaf := tt.Leaves[p*cfg.LeavesPerPod+l]
			for a := 0; a < cfg.AggsPerPod; a++ {
				t.Connect(leaf, tt.Aggs[p*cfg.AggsPerPod+a], 0, fab)
			}
		}
	}
	// Agg <-> spine.
	for _, agg := range tt.Aggs {
		for _, sp := range tt.Spines {
			t.Connect(agg, sp, 0, fab)
		}
	}
	// Hosts.
	up := LinkConfig{RateBps: cfg.HostRateBps, Delay: cfg.LinkDelay, QueueCap: HostQdiscCap}
	down := LinkConfig{RateBps: cfg.HostRateBps, Delay: cfg.LinkDelay, QueueCap: cfg.QueueCap, ECNK: cfg.ECNK}
	for li, leaf := range tt.Leaves {
		for h := 0; h < cfg.HostsPerLeaf; h++ {
			t.AddHost(fmt.Sprintf("h%d", li*cfg.HostsPerLeaf+h), leaf, up, down)
		}
	}
	t.ComputeRoutes()
	return tt
}

// CrossPodPair returns a (src, dst) host pair in different pods.
func (tt *ThreeTier) CrossPodPair() (packet.HostID, packet.HostID) {
	podHosts := tt.Cfg.LeavesPerPod * tt.Cfg.HostsPerLeaf
	return 0, packet.HostID(podHosts)
}
