package experiments

import (
	"reflect"
	"testing"

	"clove/internal/scenario"
	"clove/internal/sim"
)

// stormSpec is an event-script workout: a rolling two-link storm overlapping
// a load ramp, run over four schemes (one per design point: hash baseline,
// edge-stateful, edge-stateless, in-network) and two seeds at CI scale.
func stormSpec(t *testing.T) *scenario.Spec {
	t.Helper()
	sp := &scenario.Spec{
		Name: "det-storm",
		Topology: scenario.TopologySpec{
			K: 4, HostsPerLeaf: 4, TrunksPerPair: 2,
		},
		Workload: scenario.WorkloadSpec{
			Load: 0.4, TotalJobs: 80, SizeScale: 0.1,
			Mix:       scenario.MixFractions{WebSearch: 0.75, RPC: 0.25},
			MaxTimeMs: 10000,
		},
		Schemes: []string{"ecmp", "clove-ecn", "concury", "charon"},
		Seeds:   []int64{1, 2},
		Events: []scenario.EventSpec{
			{AtMs: 200, Type: scenario.EventLoadScale, Scale: 2},
			{AtMs: 300, Type: scenario.EventStorm, Storm: &scenario.StormSpec{
				Links: []scenario.LinkRef{
					{A: "L2", B: "S1", Trunk: 0},
					{A: "L2", B: "S2", Trunk: 1},
				},
				PeriodMs: 150, DurationMs: 600,
			}},
			{AtMs: 1500, Type: scenario.EventLoadScale, Scale: 1},
		},
	}
	sp.ApplyDefaults()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestScenarioDeterministicAcrossParallelism: the same storm script run
// serially, serially again, and at -j4 produces byte-identical result tables
// and telemetry trace trees. Scripted events are ordinary simulator events,
// so the PR 4/5 byte-identity guarantees must survive them.
func TestScenarioDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs are slow; skipping in -short")
	}
	run := func(parallelism int, traceDir string) ([]Row, map[string]string) {
		opts := ScenarioOpts{Parallelism: parallelism, Oracle: parallelism == 1}
		if traceDir != "" {
			opts.Telemetry = &TraceSpec{Dir: traceDir, Interval: 200 * sim.Microsecond, MaxSamples: 256}
		}
		rows := RunScenario(stormSpec(t), opts, nil)
		if traceDir == "" {
			return rows, nil
		}
		return rows, readTree(t, traceDir)
	}

	d1 := t.TempDir()
	rows1, tree1 := run(1, d1)
	d1b := t.TempDir()
	rows1b, tree1b := run(1, d1b)
	d4 := t.TempDir()
	rows4, tree4 := run(4, d4)

	if got, want := FormatRows(rows1b), FormatRows(rows1); got != want {
		t.Errorf("same storm twice differs:\n run1:\n%s\n run2:\n%s", want, got)
	}
	if got, want := FormatRows(rows4), FormatRows(rows1); got != want {
		t.Errorf("-j4 differs from -j1:\n j1:\n%s\n j4:\n%s", want, got)
	}
	if !reflect.DeepEqual(tree1b, tree1) {
		t.Error("same storm twice: telemetry trace trees differ")
	}
	if !reflect.DeepEqual(tree4, tree1) {
		t.Error("-j4 telemetry trace tree differs from -j1")
	}
	if len(tree1) == 0 {
		t.Fatal("no trace files exported")
	}
}

// TestScenarioSeedPermutationInvariance: replicate seeds are a set — the
// aggregated per-scheme rows must not depend on seed order.
func TestScenarioSeedPermutationInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs are slow; skipping in -short")
	}
	fwd := stormSpec(t)
	rev := stormSpec(t)
	rev.Seeds = []int64{2, 1}
	a := RunScenario(fwd, ScenarioOpts{Parallelism: 2}, nil)
	b := RunScenario(rev, ScenarioOpts{Parallelism: 2}, nil)
	if got, want := FormatRows(b), FormatRows(a); got != want {
		t.Errorf("seed order changed the aggregate:\n {1,2}:\n%s\n {2,1}:\n%s", want, got)
	}
}

// TestScenarioStormUnderOracle: RunScenario panics on any oracle violation,
// so this run passing means conservation held through every mid-flap
// teardown and re-route of the storm (and the event queue drained clean).
func TestScenarioStormUnderOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario runs are slow; skipping in -short")
	}
	sp := stormSpec(t)
	sp.Seeds = []int64{1}
	rows := RunScenario(sp, ScenarioOpts{Parallelism: 1, Oracle: true}, nil)
	if len(rows) != len(sp.Schemes) {
		t.Fatalf("got %d rows, want %d", len(rows), len(sp.Schemes))
	}
	for _, r := range rows {
		if r.Samples == 0 {
			t.Errorf("%s: no flows completed under the storm", r.Scheme)
		}
	}
}
