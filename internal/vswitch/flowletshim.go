package vswitch

import (
	"clove/internal/clove"
	"clove/internal/packet"
	"clove/internal/sim"
)

// newFlowletShim wraps the clove flowlet table behind the small interface
// the vswitch needs: touch returns a pointer to the entry's pinned port so
// the caller writes the choice back for new flowlets.
func newFlowletShim(gap sim.Time) *flowletTableShim {
	t := clove.NewFlowletTable(gap)
	return &flowletTableShim{
		touch: func(flow packet.FiveTuple, now sim.Time) (*uint16, uint32, bool) {
			e, isNew := t.Touch(flow, now)
			return &e.Port, e.ID, isNew
		},
		count:  t.Flowlets,
		setGap: t.SetGap,
		gap:    t.Gap,
	}
}
