package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clove/internal/datapath"
	"clove/internal/lifecycle"
)

// appConfig is the resolved flag/file configuration for one cloved process.
type appConfig struct {
	tenants      []TenantSpec
	adminAddr    string // empty = no admin plane
	keepalive    time.Duration
	statsEvery   time.Duration
	drainTimeout time.Duration

	// Datapath I/O tuning, shared by every tenant endpoint.
	batch   int
	bufSize int
	noBatch bool
	noSeg   bool

	// serveAfterEOF keeps the process serving (receive + admin) after stdin
	// closes instead of exiting — set when an admin plane or a tenants file
	// makes this an operated service rather than a pipe filter.
	serveAfterEOF bool
}

// app wires tenants, the admin plane, tickers, and the stdin reader into a
// lifecycle manager. Component order is bring-up order; teardown is the
// reverse, so input stops first, tickers die, tenants drain, and the admin
// plane — observable throughout the drain — goes last.
type app struct {
	cfg     appConfig
	mgr     *lifecycle.Manager
	tenants []*tenant
	admin   *adminServer

	stdin  io.Reader
	stdout io.Writer
	stderr io.Writer

	// inputDone receives the scanner's terminal error (nil on clean EOF)
	// exactly once.
	inputDone chan error
	draining  atomic.Bool
}

func newApp(cfg appConfig, stdin io.Reader, stdout, stderr io.Writer) (*app, error) {
	if len(cfg.tenants) == 0 {
		return nil, fmt.Errorf("cloved: no tenants configured")
	}
	a := &app{
		cfg:       cfg,
		mgr:       lifecycle.New(),
		stdin:     stdin,
		stdout:    stdout,
		stderr:    stderr,
		inputDone: make(chan error, 1),
	}
	a.mgr.StopTimeout = cfg.drainTimeout + 5*time.Second

	if cfg.adminAddr != "" {
		a.admin = newAdminServer(a, cfg.adminAddr)
		a.mgr.Add("admin", a.admin)
	}
	for i := range cfg.tenants {
		t := &tenant{app: a, spec: cfg.tenants[i]}
		a.tenants = append(a.tenants, t)
		a.mgr.Add("tenant/"+t.spec.Name, t)
	}
	if cfg.keepalive > 0 {
		for _, t := range a.tenants {
			t := t
			a.mgr.Add("keepalive/"+t.spec.Name, &lifecycle.Ticker{
				Interval: cfg.keepalive,
				Tick: func() {
					if ep := t.endpoint(); ep != nil && t.ready.Load() {
						ep.Keepalive()
						ep.ProbePaths()
					}
				},
			})
		}
	}
	if cfg.statsEvery > 0 {
		a.mgr.Add("stats", &lifecycle.Ticker{
			Interval: cfg.statsEvery,
			Tick:     a.printStats,
		})
	}
	a.mgr.Add("stdin", &stdinReader{app: a})
	return a, nil
}

// tenantNamed returns the tenant with the given name, or the first tenant
// when name is empty.
func (a *app) tenantNamed(name string) *tenant {
	if name == "" {
		return a.tenants[0]
	}
	for _, t := range a.tenants {
		if t.spec.Name == name {
			return t
		}
	}
	return nil
}

// printStats emits one stats line (plus RTT detail) per tenant.
func (a *app) printStats() {
	for _, t := range a.tenants {
		ep := t.endpoint()
		if ep == nil {
			continue
		}
		fmt.Fprintf(a.stdout, "-- %s%s\n", t.label(), t.statsLine())
		for _, r := range ep.PathRTTs() {
			if r.Samples > 0 {
				fmt.Fprintf(a.stdout, "   path %d: rtt=%v (%d samples, %v old)\n",
					r.Port, r.RTT, r.Samples, r.Age.Round(time.Millisecond))
			}
		}
	}
}

// tenant is the lifecycle component owning one overlay's endpoint.
// Start acquires everything (sockets, read loops); Stop drains: flush the
// tx rings, close within the drain deadline, and emit a final stats line.
type tenant struct {
	app  *app
	spec TenantSpec

	ep    atomic.Pointer[datapath.Endpoint]
	ready atomic.Bool

	mu     sync.Mutex
	remote string

	stopOnce sync.Once
	stopErr  error
}

func (t *tenant) endpoint() *datapath.Endpoint { return t.ep.Load() }

// label prefixes multi-tenant output with the tenant name; the single-tenant
// stats line keeps the historical bare format.
func (t *tenant) label() string {
	if len(t.app.tenants) == 1 {
		return ""
	}
	return "[" + t.spec.Name + "] "
}

func (t *tenant) Init(ctx context.Context) error {
	if t.spec.Paths < 1 {
		return fmt.Errorf("tenant %q: need at least one path", t.spec.Name)
	}
	return nil
}

func (t *tenant) Start(ctx context.Context) error {
	cfg := datapath.DefaultConfig()
	cfg.Paths = t.spec.Paths
	cfg.FlowletGap = time.Duration(t.spec.FlowletGap)
	cfg.RelayInterval = time.Duration(t.spec.RelayInterval)
	if t.app.cfg.batch > 0 {
		cfg.Batch = t.app.cfg.batch
	}
	if t.app.cfg.bufSize > 0 {
		cfg.BufSize = t.app.cfg.bufSize
	}
	cfg.NoBatchSyscalls = t.app.cfg.noBatch
	cfg.NoSegmentation = t.app.cfg.noSeg

	ep, err := datapath.NewEndpoint(t.spec.Listen, cfg)
	if err != nil {
		return fmt.Errorf("tenant %q: %w", t.spec.Name, err)
	}
	label := t.label()
	out := t.app.stdout
	ep.SetOnRecv(func(p []byte) { fmt.Fprintf(out, "<- %s%s\n", label, p) })
	if err := ep.Start(t.spec.Remote); err != nil {
		ep.Close()
		return fmt.Errorf("tenant %q: %w", t.spec.Name, err)
	}
	t.ep.Store(ep)
	t.setRemote(t.spec.Remote)
	if t.spec.Remote != "" {
		t.ready.Store(true)
	}
	fmt.Fprintf(out, "paths%s: %v (batched syscalls: %v)\n",
		nameSuffix(label), ep.Ports(),
		datapath.BatchSyscallsSupported() && !cfg.NoBatchSyscalls)
	if t.spec.Remote == "" {
		fmt.Fprintf(out, "%sno remote; receive-only until a /config retarget\n", label)
	}
	return nil
}

// nameSuffix turns "[blue] " into "[blue]" for the paths banner.
func nameSuffix(label string) string { return strings.TrimSuffix(label, " ") }

// Stop drains the tenant: flush pending tx rings, close within the drain
// deadline, then print the final stats line so the last words of a tenant
// are its delivery counts. Idempotent.
func (t *tenant) Stop() error {
	t.stopOnce.Do(func() {
		ep := t.endpoint()
		if ep == nil {
			return
		}
		t.stopErr = ep.Drain(t.app.cfg.drainTimeout)
		fmt.Fprintf(t.app.stdout, "-- final %s%s\n", t.label(), t.statsLine())
	})
	return t.stopErr
}

// Ready reports whether this tenant's tunnel is serving a remote: it
// becomes ready when Start(remote) succeeds, or — for a receive-only
// tenant — when a /config retarget installs a remote.
func (t *tenant) Ready() error {
	if !t.ready.Load() {
		return fmt.Errorf("tenant %q: no remote configured", t.spec.Name)
	}
	return nil
}

func (t *tenant) setRemote(remote string) {
	t.mu.Lock()
	t.remote = remote
	t.mu.Unlock()
}

func (t *tenant) remoteAddr() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.remote
}

// retarget hot-reloads the tenant's remote without dropping the endpoint.
func (t *tenant) retarget(remote string) error {
	ep := t.endpoint()
	if ep == nil {
		return fmt.Errorf("tenant %q: not started", t.spec.Name)
	}
	if err := ep.Retarget(remote); err != nil {
		return err
	}
	t.setRemote(remote)
	t.ready.Store(true)
	return nil
}

// statsLine renders the counters with weights sorted by port, so the line
// is deterministic run-to-run (a map-ranged print was not).
func (t *tenant) statsLine() string {
	ep := t.endpoint()
	if ep == nil {
		return "(not started)"
	}
	st := ep.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "sent=%d recv=%d flowlets=%d ce=%d fb(tx=%d rx=%d) errs(sock=%d decode=%d) weights=[",
		st.Sent, st.Received, st.Flowlets, st.CEObserved,
		st.FeedbackSent, st.FeedbackReceived,
		st.SocketErrors, st.DecodeErrors)
	for i, pw := range ep.WeightsSorted() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%.3f", pw.Port, pw.Weight)
	}
	b.WriteByte(']')
	return b.String()
}

// stdinReader is the lifecycle component feeding stdin lines into the first
// tenant's tunnel. Its scanner accepts tokens up to the datapath's 65535-
// byte payload bound (the 64 KiB bufio default silently ended the old
// read loop), and the terminal scanner error is reported through
// app.inputDone instead of being dropped. Stop flips the draining flag so
// shutdown stops accepting input immediately; the blocked read itself is
// released when the process exits or the input closes.
type stdinReader struct {
	app *app
}

func (s *stdinReader) Init(ctx context.Context) error { return nil }

func (s *stdinReader) Start(ctx context.Context) error {
	a := s.app
	t := a.tenants[0]
	go func() {
		sc := bufio.NewScanner(a.stdin)
		sc.Buffer(make([]byte, 0, 16*1024), datapath.MaxPayload)
		for sc.Scan() {
			if a.draining.Load() {
				break
			}
			ep := t.endpoint()
			if ep == nil {
				continue
			}
			if err := ep.Send(sc.Bytes()); err != nil {
				fmt.Fprintln(a.stderr, "cloved: send:", err)
			}
		}
		a.inputDone <- sc.Err()
	}()
	return nil
}

func (s *stdinReader) Stop() error {
	s.app.draining.Store(true)
	return nil
}
