// Command dpbench is the loopback stress harness for the PR-9 batched
// zero-alloc datapath. It drives endpoint pairs back-to-back (and through
// the PathEmulator) on 127.0.0.1, measures packets/sec, one-way latency
// percentiles, and heap allocations per packet, and emits a BENCH_9.json
// artifact in the house benchreport style (schema + per-mode samples;
// regression gates compare best-vs-best against a committed baseline).
//
// Modes:
//
//	legacy   — replica of the pre-PR-9 per-packet path (see legacy.go)
//	fallback — new datapath with batched syscalls disabled (portable seam)
//	batched  — new datapath on recvmmsg/sendmmsg (linux amd64/arm64)
//	emulated — batched datapath driven through the PathEmulator
//
// Gates (exit 1 on violation):
//
//	-baseline FILE  per-mode pps must stay within -threshold of the file
//	-min-speedup X  batched pps must be >= X * legacy pps (same run)
//	allocs/packet   batched and fallback must stay below 0.01 (always on)
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"clove/internal/datapath"
)

// tunnel is the slice of the endpoint API the bench drives.
type tunnel interface {
	Enqueue([]byte) error
	Flush() error
	SetOnRecv(func([]byte))
	Ports() []uint16
	Start(string) error
	Close() error
}

type modeResult struct {
	PPS             float64   `json:"pps"`
	SamplesPPS      []float64 `json:"samples_pps"`
	SentPPS         float64   `json:"sent_pps"`
	Sent            int64     `json:"sent"`
	Received        int64     `json:"received"`
	DropRate        float64   `json:"drop_rate"`
	P50Ns           int64     `json:"p50_ns"`
	P99Ns           int64     `json:"p99_ns"`
	AllocsPerPacket float64   `json:"allocs_per_packet"`
	Batch           int       `json:"batch"`
}

type report struct {
	Schema                 int                   `json:"schema"`
	Go                     string                `json:"go"`
	Note                   string                `json:"note"`
	Modes                  map[string]modeResult `json:"modes"`
	SpeedupBatchedVsLegacy float64               `json:"speedup_batched_vs_legacy,omitempty"`
}

type opts struct {
	duration, warmup time.Duration
	samples          int
	payload          int
	paths            int
	batch            int
	window           int64
}

const latRingBits = 15 // 32768 latency samples retained (newest wins)

func main() {
	var (
		duration   = flag.Duration("duration", 2*time.Second, "length of each measured sample")
		warmup     = flag.Duration("warmup", time.Second, "warmup before measuring")
		samples    = flag.Int("samples", 3, "measured samples per mode (best is reported)")
		payload    = flag.Int("payload", 512, "tenant payload bytes (>= 16 for latency stamps)")
		paths      = flag.Int("paths", 4, "paths (sockets) per endpoint")
		batch      = flag.Int("batch", 0, "datagrams per mmsg batch (0 = datapath default)")
		window     = flag.Int64("window", 512, "max unacknowledged in-flight datagrams")
		modesFlag  = flag.String("modes", "", "comma-separated mode list (default: all supported)")
		out        = flag.String("out", "", "write JSON report to this file")
		baseline   = flag.String("baseline", "", "gate per-mode pps against this JSON report")
		threshold  = flag.Float64("threshold", 0.10, "allowed fractional pps regression vs baseline")
		minSpeedup = flag.Float64("min-speedup", 0, "require batched pps >= this multiple of legacy pps (0 = off)")
	)
	flag.Parse()
	if *payload < 16 {
		fmt.Fprintln(os.Stderr, "dpbench: -payload must be >= 16")
		os.Exit(2)
	}

	modes := []string{"legacy", "fallback"}
	if datapath.BatchSyscallsSupported() {
		modes = append(modes, "batched", "emulated")
	}
	if *modesFlag != "" {
		modes = strings.Split(*modesFlag, ",")
	}

	o := opts{
		duration: *duration, warmup: *warmup, samples: *samples,
		payload: *payload, paths: *paths, batch: *batch, window: *window,
	}
	rep := report{
		Schema: 1,
		Go:     runtime.Version(),
		Note: "loopback pair on 127.0.0.1, GOMAXPROCS=" + fmt.Sprint(runtime.GOMAXPROCS(0)) +
			"; pps is the best sample (compare like against like, min-vs-min); " +
			"allocs_per_packet counts both send and receive side; recorded by cmd/dpbench",
		Modes: map[string]modeResult{},
	}

	for _, mode := range modes {
		res, err := runMode(mode, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: mode %s: %v\n", mode, err)
			os.Exit(1)
		}
		rep.Modes[mode] = res
		fmt.Printf("%-9s %12.0f pps  (sent %12.0f pps, drop %5.2f%%)  p50 %8s  p99 %8s  allocs/pkt %.4f\n",
			mode, res.PPS, res.SentPPS, 100*res.DropRate,
			time.Duration(res.P50Ns), time.Duration(res.P99Ns), res.AllocsPerPacket)
	}

	if l, okL := rep.Modes["legacy"]; okL {
		if b, okB := rep.Modes["batched"]; okB && l.PPS > 0 {
			rep.SpeedupBatchedVsLegacy = b.PPS / l.PPS
			fmt.Printf("speedup batched vs legacy: %.2fx\n", rep.SpeedupBatchedVsLegacy)
		}
	}

	failed := false

	// Zero-alloc gate: the rewritten datapath must not allocate per packet
	// in either I/O flavor. (legacy and emulated are exempt: legacy is the
	// reference being beaten, and the emulator forwards through channels.)
	for _, m := range []string{"batched", "fallback"} {
		if res, ok := rep.Modes[m]; ok && res.AllocsPerPacket >= 0.01 {
			fmt.Printf("ALLOC REGRESSION: %s allocates %.4f/packet (contract: 0)\n", m, res.AllocsPerPacket)
			failed = true
		}
	}

	if *minSpeedup > 0 {
		if rep.SpeedupBatchedVsLegacy < *minSpeedup {
			fmt.Printf("SPEEDUP GATE: batched/legacy = %.2fx < required %.2fx\n",
				rep.SpeedupBatchedVsLegacy, *minSpeedup)
			failed = true
		}
	}

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: baseline: %v\n", err)
			os.Exit(1)
		}
		for name, b := range base.Modes {
			cur, ok := rep.Modes[name]
			if !ok {
				continue // mode not run (e.g. platform without mmsg)
			}
			floor := b.PPS * (1 - *threshold)
			if cur.PPS < floor {
				fmt.Printf("PPS REGRESSION: %s %.0f pps < %.0f (baseline %.0f - %d%%)\n",
					name, cur.PPS, floor, b.PPS, int(*threshold*100))
				failed = true
			} else {
				fmt.Printf("gate ok: %s %.0f pps vs baseline %.0f (floor %.0f)\n",
					name, cur.PPS, b.PPS, floor)
			}
		}
	}

	if *out != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dpbench: write %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func readReport(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// newPair builds the sender/receiver tunnels for a mode. The returned
// cleanup closes everything (emulator included).
func newPair(mode string, o opts) (snd, rcv tunnel, cleanup func(), err error) {
	mkCfg := func(noBatch bool) datapath.Config {
		cfg := datapath.DefaultConfig()
		cfg.Paths = o.paths
		if o.batch > 0 {
			cfg.Batch = o.batch
		}
		cfg.NoBatchSyscalls = noBatch
		return cfg
	}
	switch mode {
	case "legacy":
		a, err := newLegacyEndpoint("127.0.0.1", o.paths, datapath.DefaultConfig().FlowletGap)
		if err != nil {
			return nil, nil, nil, err
		}
		b, err := newLegacyEndpoint("127.0.0.1", o.paths, datapath.DefaultConfig().FlowletGap)
		if err != nil {
			a.Close()
			return nil, nil, nil, err
		}
		cleanup = func() { a.Close(); b.Close() }
		if err := a.Start(fmt.Sprintf("127.0.0.1:%d", b.Ports()[0])); err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		if err := b.Start(fmt.Sprintf("127.0.0.1:%d", a.Ports()[0])); err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		return a, b, cleanup, nil

	case "batched", "fallback":
		a, err := datapath.NewEndpoint("127.0.0.1", mkCfg(mode == "fallback"))
		if err != nil {
			return nil, nil, nil, err
		}
		b, err := datapath.NewEndpoint("127.0.0.1", mkCfg(mode == "fallback"))
		if err != nil {
			a.Close()
			return nil, nil, nil, err
		}
		cleanup = func() { a.Close(); b.Close() }
		if err := a.Start(fmt.Sprintf("127.0.0.1:%d", b.Ports()[0])); err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		if err := b.Start(fmt.Sprintf("127.0.0.1:%d", a.Ports()[0])); err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		return a, b, cleanup, nil

	case "emulated":
		b, err := datapath.NewEndpoint("127.0.0.1", mkCfg(false))
		if err != nil {
			return nil, nil, nil, err
		}
		emu, err := datapath.NewPathEmulator("127.0.0.1",
			fmt.Sprintf("127.0.0.1:%d", b.Ports()[0]),
			make([]datapath.PathProfile, o.paths))
		if err != nil {
			b.Close()
			return nil, nil, nil, err
		}
		a, err := datapath.NewEndpoint("127.0.0.1", mkCfg(false))
		if err != nil {
			emu.Close()
			b.Close()
			return nil, nil, nil, err
		}
		cleanup = func() { a.Close(); emu.Close(); b.Close() }
		if err := a.Start(emu.Addr()); err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		if err := b.Start(fmt.Sprintf("127.0.0.1:%d", a.Ports()[0])); err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		return a, b, cleanup, nil
	}
	return nil, nil, nil, fmt.Errorf("unknown mode %q", mode)
}

func runMode(mode string, o opts) (modeResult, error) {
	snd, rcv, cleanup, err := newPair(mode, o)
	if err != nil {
		return modeResult{}, err
	}
	defer cleanup()

	// Receive side: count, and stamp one-way latency from the 8-byte
	// monotonic send timestamp at payload[8:16]. The callback runs on a
	// shard read loop and must not allocate.
	var received atomic.Int64
	latRing := make([]int64, 1<<latRingBits)
	base := time.Now()
	rcv.SetOnRecv(func(p []byte) {
		n := received.Add(1)
		if len(p) >= 16 {
			sentNs := int64(binary.BigEndian.Uint64(p[8:16]))
			latRing[(n-1)&(1<<latRingBits-1)] = int64(time.Since(base)) - sentNs
		}
	})
	loadReceived := func() int64 { return received.Load() }

	payload := make([]byte, o.payload)
	for i := range payload {
		payload[i] = byte(i)
	}

	var sent, assumedLost int64
	sendOne := func() error {
		binary.BigEndian.PutUint64(payload[8:16], uint64(time.Since(base)))
		if err := snd.Enqueue(payload); err != nil {
			return err
		}
		sent++
		if sent-loadReceived()-assumedLost >= o.window {
			if err := snd.Flush(); err != nil {
				return err
			}
			deadline := time.Now().Add(20 * time.Millisecond)
			for sent-loadReceived()-assumedLost >= o.window {
				// Sleep, don't Gosched-spin: a spinning goroutine on one
				// core keeps the scheduler out of netpoll and the receiver
				// only wakes on sysmon's 10ms fallback poll.
				time.Sleep(20 * time.Microsecond)
				if time.Now().After(deadline) {
					// The gap is not in flight, it is lost datagrams:
					// re-baseline so pacing does not deadlock.
					assumedLost = sent - loadReceived()
					break
				}
			}
		}
		return nil
	}

	runFor := func(d time.Duration) (dSent, dRecv int64, elapsed time.Duration, err error) {
		s0, r0 := sent, loadReceived()
		start := time.Now()
		for {
			for i := 0; i < 64; i++ {
				if err := sendOne(); err != nil {
					return 0, 0, 0, err
				}
			}
			if el := time.Since(start); el >= d {
				if err := snd.Flush(); err != nil {
					return 0, 0, 0, err
				}
				// Let in-flight datagrams land so dRecv reflects dSent.
				drainUntil := time.Now().Add(50 * time.Millisecond)
				for loadReceived() < sent-assumedLost && time.Now().Before(drainUntil) {
					time.Sleep(20 * time.Microsecond)
				}
				return sent - s0, loadReceived() - r0, time.Since(start), nil
			}
		}
	}

	if _, _, _, err := runFor(o.warmup); err != nil {
		return modeResult{}, err
	}

	var m0, m1 runtime.MemStats
	samplesPPS := make([]float64, 0, o.samples)
	var totSent, totRecv int64
	var totElapsed time.Duration
	runtime.GC()
	runtime.ReadMemStats(&m0)
	for i := 0; i < o.samples; i++ {
		dSent, dRecv, elapsed, err := runFor(o.duration)
		if err != nil {
			return modeResult{}, err
		}
		samplesPPS = append(samplesPPS, float64(dRecv)/elapsed.Seconds())
		totSent += dSent
		totRecv += dRecv
		totElapsed += elapsed
	}
	runtime.ReadMemStats(&m1)

	res := modeResult{
		SamplesPPS: samplesPPS,
		Sent:       totSent,
		Received:   totRecv,
		Batch:      o.batch,
	}
	if res.Batch == 0 {
		res.Batch = datapath.DefaultConfig().Batch
	}
	for _, s := range samplesPPS {
		if s > res.PPS {
			res.PPS = s
		}
	}
	res.SentPPS = float64(totSent) / totElapsed.Seconds()
	if totSent > 0 {
		res.DropRate = float64(totSent-totRecv) / float64(totSent)
	}
	if moved := totSent + totRecv; moved > 0 {
		res.AllocsPerPacket = float64(m1.Mallocs-m0.Mallocs) / float64(moved)
	}

	// Latency percentiles over the retained ring (newest 32768 samples).
	n := received.Load()
	if n > int64(len(latRing)) {
		n = int64(len(latRing))
	}
	if n > 0 {
		lat := append([]int64(nil), latRing[:n]...)
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		res.P50Ns = lat[n/2]
		res.P99Ns = lat[n*99/100]
	}
	return res, nil
}
