package packet

import (
	"fmt"
	"testing"
)

// refString is the fmt-based formatter the hand-rolled String replaced; the
// two must agree byte for byte.
func refString(t FiveTuple) string {
	return fmt.Sprintf("%d:%d>%d:%d/%d", t.Src, t.SrcPort, t.Dst, t.DstPort, t.Proto)
}

func TestFiveTupleStringMatchesReference(t *testing.T) {
	cases := []FiveTuple{
		{},
		{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 5},
		{Src: 0, Dst: 65535, SrcPort: 65535, DstPort: 0, Proto: ProtoTCP},
		{Src: 12345, Dst: 54321, SrcPort: 40000, DstPort: 80, Proto: 255},
		{Src: ^HostID(0), Dst: ^HostID(0), SrcPort: 1, DstPort: 1, Proto: 1},
	}
	for _, tc := range cases {
		if got, want := tc.String(), refString(tc); got != want {
			t.Errorf("FiveTuple%+v.String() = %q, want %q", tc, got, want)
		}
	}
}

// BenchmarkFiveTupleString proves the strconv-based formatter performs at
// most the single unavoidable allocation (the returned string); the old
// fmt.Sprintf version cost several (boxing each operand plus the result).
func BenchmarkFiveTupleString(b *testing.B) {
	ft := FiveTuple{Src: 12345, Dst: 54321, SrcPort: 40000, DstPort: 80, Proto: ProtoTCP}
	if allocs := testing.AllocsPerRun(100, func() { _ = ft.String() }); allocs > 1 {
		b.Fatalf("FiveTuple.String allocates %v times, want <= 1", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ft.String()
	}
}
