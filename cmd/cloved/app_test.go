package main

// Lifecycle battery for the operated cloved service: SIGTERM-driven drain
// under load with zero payload loss, /healthz→/readyz ordering, hot-reload
// mid-transfer with clean error counters, oversized-stdin-line reporting
// (the old loop exited silently), multi-tenant serving, and double-Stop
// idempotence. Tests drive run() in process with injected stdin/stdout and
// real signals, or assemble the app directly for admin-plane checks.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"clove/internal/datapath"
)

// lockedBuf is a bytes.Buffer safe to read while run() is still writing.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// newReceiver starts a bare receive-only datapath endpoint counting payload
// deliveries, and returns it with its first path address as a dial target.
func newReceiver(t *testing.T, paths int) (*datapath.Endpoint, *atomic.Int64, string) {
	t.Helper()
	cfg := datapath.DefaultConfig()
	cfg.Paths = paths
	ep, err := datapath.NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	var got atomic.Int64
	ep.SetOnRecv(func([]byte) { got.Add(1) })
	if err := ep.Start(""); err != nil {
		t.Fatal(err)
	}
	return ep, &got, fmt.Sprintf("127.0.0.1:%d", ep.Ports()[0])
}

// guardSIGTERM registers a test-side handler so a SIGTERM aimed at run()
// cannot kill the test process in the window before run() installs its own.
func guardSIGTERM(t *testing.T) {
	t.Helper()
	ch := make(chan os.Signal, 4)
	signal.Notify(ch, syscall.SIGTERM)
	t.Cleanup(func() { signal.Stop(ch) })
}

var finalSentRE = regexp.MustCompile(`-- final (?:\[[^\]]*\] )?sent=(\d+)`)

// TestSIGTERMDrainUnderLoad drives run() with a live stdin feed, SIGTERMs
// the process mid-stream, and asserts a clean exit with zero payload loss:
// every line the service accepted before the drain began is delivered.
func TestSIGTERMDrainUnderLoad(t *testing.T) {
	guardSIGTERM(t)
	_, got, raddr := newReceiver(t, 2)

	pr, pw := io.Pipe()
	out, errOut := &lockedBuf{}, &lockedBuf{}
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-remote", raddr, "-paths", "2",
			"-stats", "0", "-keepalive", "2ms",
		}, pr, out, errOut)
	}()
	// Feed lines until the pipe is torn down after shutdown. Lightly paced:
	// the zero-loss contract under test is the drain (no accepted frame is
	// dropped by shutdown), not UDP backpressure under an unbounded burst.
	go func() {
		for i := 0; ; i++ {
			if _, err := fmt.Fprintf(pw, "payload-%d\n", i); err != nil {
				return
			}
			time.Sleep(20 * time.Microsecond)
		}
	}()

	waitUntil(t, 5*time.Second, func() bool { return got.Load() >= 200 }, "load in flight")
	syscall.Kill(os.Getpid(), syscall.SIGTERM)

	var code int
	select {
	case code = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
	pr.CloseWithError(io.ErrClosedPipe) // release the feeder
	pw.Close()

	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "received terminated, draining") {
		t.Errorf("missing drain banner in output:\n%s", out.String())
	}
	m := finalSentRE.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no final stats line in output:\n%s", out.String())
	}
	var sent int64
	fmt.Sscanf(m[1], "%d", &sent)
	if sent < 200 {
		t.Fatalf("final sent = %d, want >= 200 (load was in flight)", sent)
	}
	// Zero loss: everything the sender accepted arrives once the in-flight
	// tail lands. The drain flushed the tx rings before closing.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && got.Load() < sent {
		time.Sleep(2 * time.Millisecond)
	}
	if got.Load() != sent {
		t.Errorf("delivered %d payloads, sender counted %d (lost %d across drain)",
			got.Load(), sent, sent-got.Load())
	}
}

// startApp assembles and starts an app directly (no flag parsing, no
// signals) for admin-plane tests, returning it with its admin base URL.
func startApp(t *testing.T, cfg appConfig, stdin io.Reader) (*app, *lockedBuf, string) {
	t.Helper()
	if cfg.drainTimeout == 0 {
		cfg.drainTimeout = 2 * time.Second
	}
	for i := range cfg.tenants {
		applyTenantDefaults(&cfg.tenants[i])
	}
	if stdin == nil {
		stdin = strings.NewReader("")
	}
	out := &lockedBuf{}
	a, err := newApp(cfg, stdin, out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.mgr.Init(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.mgr.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.mgr.Stop() })
	base := ""
	if a.admin != nil {
		base = "http://" + a.admin.Addr()
	}
	return a, out, base
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func httpPost(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestHealthzReadyzOrdering: liveness is up from Start, readiness is gated
// on the tunnel having a remote — a receive-only tenant reports 503 until a
// /config retarget installs one.
func TestHealthzReadyzOrdering(t *testing.T) {
	_, _, raddr := newReceiver(t, 2)
	_, _, base := startApp(t, appConfig{
		tenants:   []TenantSpec{{Name: "default", Paths: 2}}, // no remote
		adminAddr: "127.0.0.1:0",
	}, nil)

	if code, _ := httpGet(t, base+"/healthz"); code != 200 {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	code, body := httpGet(t, base+"/readyz")
	if code != 503 || !strings.Contains(body, "no remote") {
		t.Fatalf("/readyz before retarget = %d %q, want 503 'no remote'", code, body)
	}
	if code, _ := httpPost(t, base+"/config", fmt.Sprintf(`{"remote":%q}`, raddr)); code != 200 {
		t.Fatalf("/config retarget = %d, want 200", code)
	}
	if code, _ = httpGet(t, base+"/readyz"); code != 200 {
		t.Fatalf("/readyz after retarget = %d, want 200", code)
	}
	// /config is POST-only.
	if code, _ := httpGet(t, base+"/config"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /config = %d, want 405", code)
	}
}

// TestHotReloadFlowletGapMidTransfer reloads the flowlet gap and relay
// interval through /config while payloads are streaming, and asserts full
// delivery with zero socket and decode errors on both sides.
func TestHotReloadFlowletGapMidTransfer(t *testing.T) {
	recv, got, raddr := newReceiver(t, 2)
	a, _, base := startApp(t, appConfig{
		tenants:   []TenantSpec{{Name: "default", Paths: 2, Remote: raddr}},
		adminAddr: "127.0.0.1:0",
		keepalive: 2 * time.Millisecond,
	}, nil)
	ep := a.tenants[0].endpoint()

	const total = 500
	stop := make(chan struct{})
	var sendErrs atomic.Int64
	go func() {
		defer close(stop)
		for i := 0; i < total; i++ {
			if err := ep.Send([]byte(fmt.Sprintf("line-%d", i))); err != nil {
				sendErrs.Add(1)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	waitUntil(t, 5*time.Second, func() bool { return got.Load() >= total/4 }, "transfer underway")
	code, body := httpPost(t, base+"/config", `{"flowlet_gap":"5ms","relay_interval":"1ms"}`)
	if code != 200 {
		t.Fatalf("/config = %d: %s", code, body)
	}
	if gap := ep.FlowletGap(); gap != 5*time.Millisecond {
		t.Fatalf("FlowletGap after reload = %v, want 5ms", gap)
	}
	if ri := ep.RelayInterval(); ri != time.Millisecond {
		t.Fatalf("RelayInterval after reload = %v, want 1ms", ri)
	}

	<-stop
	waitUntil(t, 5*time.Second, func() bool { return got.Load() == total }, "full delivery across reload")
	if n := sendErrs.Load(); n != 0 {
		t.Errorf("send errors during reload: %d", n)
	}
	for side, st := range map[string]datapath.Stats{"sender": ep.Stats(), "receiver": recv.Stats()} {
		if st.SocketErrors != 0 || st.DecodeErrors != 0 {
			t.Errorf("%s errors across reload: sock=%d decode=%d", side, st.SocketErrors, st.DecodeErrors)
		}
	}
}

// TestStdinOversizedLineReported: a line over the 65535-byte payload bound
// used to end the read loop silently with exit 0; now the scanner error is
// reported and the exit code is nonzero.
func TestStdinOversizedLineReported(t *testing.T) {
	_, _, raddr := newReceiver(t, 1)
	in := strings.NewReader(strings.Repeat("a", datapath.MaxPayload+1) + "\n")
	out, errOut := &lockedBuf{}, &lockedBuf{}
	code := run([]string{"-remote", raddr, "-paths", "1", "-stats", "0", "-keepalive", "0"}, in, out, errOut)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "token too long") {
		t.Errorf("scanner error not reported, stderr:\n%s", errOut.String())
	}
}

// TestStdinLargeLineDelivered: a line past bufio's 64 KiB default but under
// the payload bound is accepted and delivered (the old scanner dropped it).
func TestStdinLargeLineDelivered(t *testing.T) {
	_, got, raddr := newReceiver(t, 1)
	line := strings.Repeat("b", 65100) // > 64 KiB, + header still under the 65507 UDP max
	in := strings.NewReader(line + "\n")
	out, errOut := &lockedBuf{}, &lockedBuf{}
	code := run([]string{"-remote", raddr, "-paths", "1", "-stats", "0", "-keepalive", "0"}, in, out, errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	waitUntil(t, 2*time.Second, func() bool { return got.Load() == 1 }, "large line delivery")
}

// TestMultiTenantServing maps two overlays onto one process: /stats lists
// both, /config addresses one by name, and delivery between the two tenants
// carries the tenant label on stdout.
func TestMultiTenantServing(t *testing.T) {
	a, out, base := startApp(t, appConfig{
		tenants: []TenantSpec{
			{Name: "blue", Paths: 2},
			{Name: "green", Paths: 2},
		},
		adminAddr: "127.0.0.1:0",
	}, nil)

	code, body := httpGet(t, base+"/stats")
	if code != 200 {
		t.Fatalf("/stats = %d", code)
	}
	var stats struct {
		Tenants []struct {
			Name  string   `json:"name"`
			Ports []uint16 `json:"ports"`
			Ready bool     `json:"ready"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("bad /stats JSON: %v\n%s", err, body)
	}
	if len(stats.Tenants) != 2 || stats.Tenants[0].Name != "blue" || stats.Tenants[1].Name != "green" {
		t.Fatalf("unexpected tenants in /stats: %s", body)
	}

	// Point blue at green by name and send through the tunnel.
	greenPort := stats.Tenants[1].Ports[0]
	code, body = httpPost(t, base+"/config",
		fmt.Sprintf(`{"tenant":"blue","remote":"127.0.0.1:%d"}`, greenPort))
	if code != 200 {
		t.Fatalf("/config tenant=blue = %d: %s", code, body)
	}
	if err := a.tenantNamed("blue").endpoint().Send([]byte("cross-tenant")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, func() bool {
		return strings.Contains(out.String(), "<- [green] cross-tenant")
	}, "labelled delivery on the green tenant")
	// green never got a remote: readiness still names it.
	code, body = httpGet(t, base+"/readyz")
	if code != 503 || !strings.Contains(body, `"green"`) {
		t.Errorf("/readyz = %d %q, want 503 naming green", code, body)
	}
	// Unknown tenant is a 404, not a silent default.
	if code, _ := httpPost(t, base+"/config", `{"tenant":"red","flowlet_gap":"1ms"}`); code != 404 {
		t.Errorf("/config unknown tenant = %d, want 404", code)
	}
}

// TestTenantsFileEndToEnd drives run() with a -tenants file: both overlays
// come up, stdin EOF keeps the service alive (operated mode), and SIGTERM
// drains every tenant with a labelled final stats line each.
func TestTenantsFileEndToEnd(t *testing.T) {
	guardSIGTERM(t)
	dir := t.TempDir()
	spec := dir + "/tenants.json"
	if err := os.WriteFile(spec, []byte(`{"tenants":[
		{"name":"blue","paths":2},
		{"name":"green","paths":2,"flowlet_gap":"1ms"}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	out, errOut := &lockedBuf{}, &lockedBuf{}
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-tenants", spec, "-admin", "127.0.0.1:0",
			"-stats", "0", "-keepalive", "0",
		}, strings.NewReader(""), out, errOut)
	}()

	adminRE := regexp.MustCompile(`admin: (http://\S+)`)
	var base string
	waitUntil(t, 5*time.Second, func() bool {
		m := adminRE.FindStringSubmatch(out.String())
		if m == nil {
			return false
		}
		base = m[1]
		return true
	}, "admin plane up")
	waitUntil(t, 5*time.Second, func() bool {
		return strings.Contains(out.String(), "stdin closed; serving until signalled")
	}, "operated mode after EOF")

	if code, body := httpGet(t, base+"/stats"); code != 200 || !strings.Contains(body, `"green"`) {
		t.Fatalf("/stats = %d: %s", code, body)
	}
	syscall.Kill(os.Getpid(), syscall.SIGTERM)
	var code int
	select {
	case code = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	for _, name := range []string{"blue", "green"} {
		if !strings.Contains(out.String(), "-- final ["+name+"] ") {
			t.Errorf("missing final stats line for %s:\n%s", name, out.String())
		}
	}
}

// TestDoubleStopIdempotent: stopping the app twice drains once — one final
// stats line, same (nil) result both times.
func TestDoubleStopIdempotent(t *testing.T) {
	_, _, raddr := newReceiver(t, 2)
	a, out, _ := startApp(t, appConfig{
		tenants: []TenantSpec{{Name: "default", Paths: 2, Remote: raddr}},
	}, nil)
	if err := a.mgr.Stop(); err != nil {
		t.Fatalf("first Stop: %v", err)
	}
	if err := a.mgr.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	if n := strings.Count(out.String(), "-- final "); n != 1 {
		t.Errorf("final stats line printed %d times, want 1:\n%s", n, out.String())
	}
}
