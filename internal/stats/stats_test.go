package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"clove/internal/sim"
)

func recWith(fcts ...sim.Time) *FCTRecorder {
	r := &FCTRecorder{}
	for _, f := range fcts {
		r.Add(1000, f)
	}
	return r
}

func TestMean(t *testing.T) {
	r := recWith(sim.Second, 3*sim.Second)
	if got := r.Mean(); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if (&FCTRecorder{}).Mean() != 0 {
		t.Error("empty Mean != 0")
	}
}

func TestPercentile(t *testing.T) {
	r := &FCTRecorder{}
	for i := 1; i <= 100; i++ {
		r.Add(1, sim.Time(i)*sim.Second)
	}
	if got := r.Percentile(0.5); got != 50 {
		t.Errorf("p50 = %v", got)
	}
	if got := r.Percentile(0.99); got != 99 {
		t.Errorf("p99 = %v", got)
	}
	if got := r.Percentile(1); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if got := r.Percentile(0.001); got != 1 {
		t.Errorf("p0.1 = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on p=0")
		}
	}()
	recWith(sim.Second).Percentile(0)
}

func TestBuckets(t *testing.T) {
	r := &FCTRecorder{}
	r.Add(50_000, sim.Second)       // mouse
	r.Add(500_000, 2*sim.Second)    // middle
	r.Add(20_000_000, 3*sim.Second) // elephant
	if got := r.Mice().Count(); got != 1 {
		t.Errorf("mice = %d", got)
	}
	if got := r.Elephants().Count(); got != 1 {
		t.Errorf("elephants = %d", got)
	}
	s := r.Summarize()
	if s.MiceMeanSec != 1 || s.ElephMeanSec != 3 || s.Count != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

func TestCDF(t *testing.T) {
	r := &FCTRecorder{}
	for i := 1; i <= 1000; i++ {
		r.Add(1, sim.Time(i)*sim.Millisecond)
	}
	cdf := r.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("cdf points = %d", len(cdf))
	}
	if cdf[len(cdf)-1].P != 1 {
		t.Errorf("CDF does not end at 1: %v", cdf[len(cdf)-1])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].P < cdf[i-1].P || cdf[i].Seconds < cdf[i-1].Seconds {
			t.Errorf("CDF not monotone at %d", i)
		}
	}
	if (&FCTRecorder{}).CDF(5) != nil {
		t.Error("empty CDF should be nil")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []uint32, pa, pb uint16) bool {
		if len(raw) == 0 {
			return true
		}
		r := &FCTRecorder{}
		var lo, hi sim.Time = 1 << 62, 0
		for _, v := range raw {
			ft := sim.Time(v%1_000_000) + 1
			r.Add(1, ft)
			if ft < lo {
				lo = ft
			}
			if ft > hi {
				hi = ft
			}
		}
		p1 := float64(pa%1000+1) / 1000
		p2 := float64(pb%1000+1) / 1000
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := r.Percentile(p1), r.Percentile(p2)
		return v1 <= v2 && v1 >= lo.Seconds() && v2 <= hi.Seconds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Error(err)
	}
}

// Property: CDF of sorted data matches sorted order.
func TestQuickCDFMatchesSortedSamples(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 3 {
			return true
		}
		r := &FCTRecorder{}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			ft := sim.Time(v) + 1
			r.Add(1, ft)
			vals[i] = ft.Seconds()
		}
		sort.Float64s(vals)
		cdf := r.CDF(len(raw))
		for i, pt := range cdf {
			if pt.Seconds != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}

func TestScaledBuckets(t *testing.T) {
	r := &FCTRecorder{}
	r.SetSizeScale(0.1)
	r.Add(5_000, sim.Second)     // stands in for a 50KB mouse
	r.Add(2_000_000, sim.Second) // stands in for a 20MB elephant
	if r.Mice().Count() != 1 {
		t.Errorf("scaled mice = %d", r.Mice().Count())
	}
	if r.Elephants().Count() != 1 {
		t.Errorf("scaled elephants = %d", r.Elephants().Count())
	}
	// Nested buckets keep the scale.
	if r.Elephants().Elephants().Count() != 1 {
		t.Error("scale lost through Filter chain")
	}
	// Unscaled recorder uses absolute cutoffs.
	u := &FCTRecorder{}
	u.Add(2_000_000, sim.Second)
	if u.Elephants().Count() != 0 {
		t.Error("2MB counted as elephant without scaling")
	}
}

func TestMeanStderr(t *testing.T) {
	cases := []struct {
		name         string
		xs           []float64
		mean, stderr float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{3.5}, 3.5, 0},
		{"constant", []float64{2, 2, 2, 2}, 2, 0},
		// stddev of {1,2,3} is 1; stderr = 1/sqrt(3).
		{"simple", []float64{1, 2, 3}, 2, 1 / math.Sqrt(3)},
		// stddev of {4,8} is 2*sqrt(2); stderr = 2*sqrt(2)/sqrt(2) = 2.
		{"pair", []float64{4, 8}, 6, 2},
	}
	for _, c := range cases {
		mean, stderr := MeanStderr(c.xs)
		if math.Abs(mean-c.mean) > 1e-12 || math.Abs(stderr-c.stderr) > 1e-12 {
			t.Errorf("%s: MeanStderr = (%v, %v), want (%v, %v)", c.name, mean, stderr, c.mean, c.stderr)
		}
	}
}

func TestMeanStderrDeterministicOrder(t *testing.T) {
	// Identical input order must give bit-identical sums (the experiments
	// runner relies on this for byte-stable output at any parallelism).
	xs := []float64{0.1, 0.2, 0.30000000004, 1e-9, 7.7}
	m1, s1 := MeanStderr(xs)
	m2, s2 := MeanStderr(xs)
	if m1 != m2 || s1 != s2 {
		t.Error("MeanStderr not reproducible on identical input")
	}
}
