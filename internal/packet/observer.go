package packet

// DropReason classifies why the datapath discarded a packet.
type DropReason uint8

// Drop reasons reported through Observer.LinkDrop.
const (
	// DropQueueFull is a drop-tail discard: the egress queue was at
	// capacity when the packet arrived.
	DropQueueFull DropReason = iota
	// DropLinkDown is a discard because the link was administratively down
	// (at enqueue, at serialization end, at propagation end, or when a
	// queue is flushed by SetUp(false)).
	DropLinkDown
)

// Observer receives datapath events from every component that shares a Pool:
// the pool itself, links, host NICs, TCP endpoints, and virtual switches.
// It is the hook contract the opt-in correctness oracle (internal/oracle)
// implements; production runs leave it nil.
//
// The contract at every hook site is:
//
//   - The call happens synchronously at the point the event occurs, before
//     the component acts on its outcome (a Put hook fires before the struct
//     is zeroed, an enqueue hook before the packet joins the queue).
//   - The observer may read the packet but must not retain, mutate, or
//     release it — observation must never perturb the simulation, so a run
//     with an observer installed is byte-identical to one without.
//   - Hook sites guard with a nil check (`if o := pool.Obs(); o != nil`),
//     so a disabled observer costs one predictable branch and no
//     allocations on the hot path.
//
// Implementations live outside the packet package; the interface lives here
// because packet is the one package every datapath component already
// imports, so distributing the observer through Pool creates no new
// dependency edges.
type Observer interface {
	// PoolGet fires when the pool issues a packet (fresh or recycled).
	PoolGet(pkt *Packet)
	// PoolPut fires when a packet is released, before it is zeroed.
	PoolPut(pkt *Packet)
	// PoolGetEncap fires when the pool issues an encap header.
	PoolGetEncap(e *Encap)
	// PoolPutEncap fires when an encap header is released (directly, or
	// implicitly via PoolPut of a packet that still carries it).
	PoolPutEncap(e *Encap)

	// LinkSetUp fires on every administrative state change of a link.
	// Links start up; the observer may assume unknown links are up.
	LinkSetUp(link LinkID, up bool)
	// LinkEnqueue fires when a packet is accepted into a link's egress
	// queue. qlenBefore is the occupancy the packet saw on arrival,
	// queueCap the drop-tail capacity, ecnK the marking threshold
	// (0 = disabled), and marked whether this enqueue CE-marked the packet.
	LinkEnqueue(link LinkID, pkt *Packet, qlenBefore, queueCap, ecnK int, marked bool)
	// LinkDrop fires when a link discards a packet, immediately before the
	// link releases it to the pool.
	LinkDrop(link LinkID, pkt *Packet, reason DropReason, qlenBefore, queueCap int)
	// LinkDeliver fires when a packet finishes propagation and is about to
	// be handed to the receiving node.
	LinkDeliver(link LinkID, pkt *Packet)

	// HostDeliver fires when a host NIC receives a packet from the fabric,
	// before the hypervisor delivery callback runs.
	HostDeliver(host HostID, pkt *Packet)

	// StreamSent fires when a TCP sender emits the inner byte range
	// [seq, end) of flow; rexmit marks retransmissions.
	StreamSent(flow FiveTuple, seq, end int64, rexmit bool)
	// StreamDeliver fires when a TCP receiver advances its in-order
	// delivery point for flow from `from` to `to` (half-open byte range).
	StreamDeliver(flow FiveTuple, from, to int64)

	// FlowletPick fires when a source vswitch assigns an outer source port
	// to a packet of (flow, flowletID). Per-packet policies (Presto
	// flowcells) do not report here.
	FlowletPick(flow FiveTuple, flowletID uint32, port uint16)

	// PolicyPaths fires when a path set is installed into (or withdrawn
	// from, ports empty) the source hypervisor src's policy for
	// destination dst — the control-plane side of the data-plane picks
	// FlowletPick reports. The observer must copy ports if it retains
	// them; the slice belongs to the caller.
	PolicyPaths(src, dst HostID, ports []uint16)
}
