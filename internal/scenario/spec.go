// Package scenario is the declarative experiment layer: a Spec describes a
// fat-tree slice (k, oversubscription, per-tier speeds and latencies), a
// workload blend (web-search, RPC, ML all-to-all, incast), the schemes to
// compare, and a timestamped event script — link flaps, switch failures,
// speed downgrades, load ramps, and composed failure storms. Specs are JSON
// (stdlib only); compile.go lowers a validated Spec onto the existing
// cluster/netem machinery, where every scripted event becomes an ordinary
// deterministic simulator event, so the correctness oracle, telemetry, and
// parallel-run byte identity hold unchanged.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"clove/internal/cluster"
)

// Spec is one complete scenario. The zero value is invalid: use Parse (or
// fill every section and call ApplyDefaults + Validate).
type Spec struct {
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	Topology    TopologySpec `json:"topology"`
	Workload    WorkloadSpec `json:"workload"`
	// Schemes are the load-balancing schemes to compare (cluster.Scheme
	// names, e.g. "ecmp", "clove-ecn").
	Schemes []string `json:"schemes"`
	// Seeds are the replicate RNG seeds (default: [1]).
	Seeds []int64 `json:"seeds,omitempty"`
	// Events is the scripted timeline, applied identically to every
	// (scheme, seed) run.
	Events []EventSpec `json:"events,omitempty"`
}

// TopologySpec describes the fabric as a fat-tree slice: the K/2 spines of
// one pod pair mapped onto the simulator's two-leaf Clos (clients on leaf 1,
// servers on leaf 2), with the trunk tier thinned by the oversubscription
// ratio. Rates are nominal hardware speeds; RateScale shrinks them uniformly
// to keep packet-level simulation cheap (timestamps in the event script are
// authored against the scaled regime).
type TopologySpec struct {
	// K is the fat-tree arity: K/2 spine switches (even, >= 2).
	K int `json:"k"`
	// Leaves is the number of leaf switches (default 2, the paper's pod
	// pair). More than 2 leaves compiles to the sharded (event-domain)
	// cluster: one domain per switch, run in conservative parallel windows.
	Leaves int `json:"leaves,omitempty"`
	// HostsPerLeaf defaults to K/2.
	HostsPerLeaf int `json:"hosts_per_leaf,omitempty"`
	// TrunksPerPair is the number of parallel leaf-spine links (default 1).
	TrunksPerPair int `json:"trunks_per_pair,omitempty"`
	// Oversubscription is hosts' access bandwidth over trunk bandwidth
	// (default 1 = non-blocking; 4 = a 4:1 oversubscribed fabric).
	Oversubscription float64 `json:"oversubscription,omitempty"`
	// HostGbps is the nominal access-link speed (default 10).
	HostGbps float64 `json:"host_gbps,omitempty"`
	// RateScale multiplies every link rate (default 0.01: 10G hosts run as
	// 100M, preserving all ratios).
	RateScale float64 `json:"rate_scale,omitempty"`
	// EdgeDelayUs is the host<->leaf propagation delay in µs (default 5).
	EdgeDelayUs float64 `json:"edge_delay_us,omitempty"`
	// FabricDelayUs is the leaf<->spine propagation delay in µs
	// (default: EdgeDelayUs).
	FabricDelayUs float64 `json:"fabric_delay_us,omitempty"`
}

// WorkloadSpec describes the blended workload one run offers.
type WorkloadSpec struct {
	// Load is the offered load as a fraction of the bisection bandwidth.
	Load float64 `json:"load"`
	// TotalJobs across all clients (composite ML/incast jobs count as one).
	TotalJobs int `json:"total_jobs"`
	// SizeScale multiplies all component sizes (default 1).
	SizeScale float64 `json:"size_scale,omitempty"`
	// Mix gives each component's share of arrivals; must sum to 1.
	Mix MixFractions `json:"mix"`
	// IncastFanout servers answer each incast request (default: all).
	IncastFanout int `json:"incast_fanout,omitempty"`
	// IncastBytes is the total response per incast request (default 1e6).
	IncastBytes int64 `json:"incast_bytes,omitempty"`
	// MLBytes is the total push per all-to-all job (default 1e6).
	MLBytes int64 `json:"ml_bytes,omitempty"`
	// MaxTimeMs bounds the run in sim milliseconds (default 60000); the
	// event window: every event timestamp must fall inside [0, MaxTimeMs].
	MaxTimeMs float64 `json:"max_time_ms,omitempty"`
	// WarmupMs delays the first arrivals.
	WarmupMs float64 `json:"warmup_ms,omitempty"`
	// ServersPerClient caps each client's server set on topologies with
	// more than 2 leaves (0 = the cluster default, min(32, other-leaf
	// hosts)); ignored on the two-leaf full mesh.
	ServersPerClient int `json:"servers_per_client,omitempty"`
}

// MixFractions is the workload blend; fractions must sum to 1.
type MixFractions struct {
	WebSearch float64 `json:"web_search,omitempty"`
	RPC       float64 `json:"rpc,omitempty"`
	ML        float64 `json:"ml,omitempty"`
	Incast    float64 `json:"incast,omitempty"`
}

// EventSpec is one timestamped entry of the scenario script.
type EventSpec struct {
	// AtMs is the event time in sim milliseconds from run start.
	AtMs float64 `json:"at_ms"`
	// Type is one of: link-down, link-up, link-rate, switch-down,
	// switch-up, load-scale, storm.
	Type string `json:"type"`
	// Link names the leaf-spine link pair (link-down/link-up/link-rate).
	Link *LinkRef `json:"link,omitempty"`
	// Switch names the spine to fail or recover (switch-down/switch-up).
	Switch string `json:"switch,omitempty"`
	// RateGbps is the new nominal speed (link-rate); scaled by RateScale.
	RateGbps float64 `json:"rate_gbps,omitempty"`
	// Scale multiplies the offered load from this point on (load-scale);
	// 1 restores the configured load.
	Scale float64 `json:"scale,omitempty"`
	// Storm expands into a rolling sequence of link flaps (storm).
	Storm *StormSpec `json:"storm,omitempty"`
}

// LinkRef names one leaf-spine trunk pair: endpoints are a leaf ("L1"/"L2")
// and a spine ("S1".."Sn"), in either order.
type LinkRef struct {
	A     string `json:"a"`
	B     string `json:"b"`
	Trunk int    `json:"trunk,omitempty"`
}

// StormSpec is a composed failure storm: each listed link flaps with the
// given period (down for half a period, up for the other half), starts
// staggered across the link list, and the whole storm ends — every link
// restored — after DurationMs.
type StormSpec struct {
	Links      []LinkRef `json:"links"`
	PeriodMs   float64   `json:"period_ms"`
	DurationMs float64   `json:"duration_ms"`
}

// Event type names.
const (
	EventLinkDown   = "link-down"
	EventLinkUp     = "link-up"
	EventLinkRate   = "link-rate"
	EventSwitchDown = "switch-down"
	EventSwitchUp   = "switch-up"
	EventLoadScale  = "load-scale"
	EventStorm      = "storm"
)

// minScaledRateBps is the floor on any scaled link rate: below this the
// simulated serialization times collapse into the integer-time resolution.
const minScaledRateBps = 1e6

// Parse decodes, defaults, and validates one scenario spec. Unknown fields
// and trailing data are errors, so a spec that parses round-trips through
// Marshal byte-stably.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("scenario: trailing data after spec")
	}
	s.ApplyDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Marshal renders the spec as indented JSON (the on-disk scenario format).
func (s *Spec) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Clone deep-copies the spec via its JSON form.
func (s *Spec) Clone() *Spec {
	data, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("scenario: clone marshal: %v", err))
	}
	var out Spec
	if err := json.Unmarshal(data, &out); err != nil {
		panic(fmt.Sprintf("scenario: clone unmarshal: %v", err))
	}
	return &out
}

// ApplyDefaults fills every omitted field with its documented default. It is
// idempotent, and normalizes empty containers to nil, so default-filled
// specs survive a Marshal/Parse round trip unchanged.
func (s *Spec) ApplyDefaults() {
	t := &s.Topology
	if t.Leaves == 0 {
		t.Leaves = 2
	}
	if t.HostsPerLeaf == 0 {
		t.HostsPerLeaf = t.K / 2
	}
	if t.TrunksPerPair == 0 {
		t.TrunksPerPair = 1
	}
	if t.Oversubscription == 0 {
		t.Oversubscription = 1
	}
	if t.HostGbps == 0 {
		t.HostGbps = 10
	}
	if t.RateScale == 0 {
		t.RateScale = 0.01
	}
	if t.EdgeDelayUs == 0 {
		t.EdgeDelayUs = 5
	}
	if t.FabricDelayUs == 0 {
		t.FabricDelayUs = t.EdgeDelayUs
	}
	w := &s.Workload
	if w.SizeScale == 0 {
		w.SizeScale = 1
	}
	if w.MaxTimeMs == 0 {
		w.MaxTimeMs = 60000
	}
	if w.IncastBytes == 0 {
		w.IncastBytes = 1_000_000
	}
	if w.MLBytes == 0 {
		w.MLBytes = 1_000_000
	}
	if w.IncastFanout == 0 && w.Mix.Incast > 0 {
		w.IncastFanout = t.HostsPerLeaf
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{1}
	}
	if len(s.Schemes) == 0 {
		s.Schemes = nil
	}
	if len(s.Events) == 0 {
		s.Events = nil
	}
	for i := range s.Events {
		e := &s.Events[i]
		if e.Storm != nil && len(e.Storm.Links) == 0 {
			e.Storm.Links = nil
		}
	}
}

// errf prefixes a validation error with the scenario name.
func (s *Spec) errf(format string, a ...any) error {
	return fmt.Errorf("scenario %q: %s", s.Name, fmt.Sprintf(format, a...))
}

// validSchemes is every scheme a spec may name: the paper's evaluated set
// plus the hidden differential references (clove-uniform, concury-ref,
// charon-ref), so a scenario can pit a production scheme against its
// replay twin.
func validSchemes() map[string]bool {
	m := map[string]bool{
		string(cluster.SchemeCloveUniform): true,
		string(cluster.SchemeConcuryRef):   true,
		string(cluster.SchemeCharonRef):    true,
	}
	for _, sch := range cluster.AllSchemes() {
		m[string(sch)] = true
	}
	return m
}

// validName reports whether name is 1-64 chars of [a-z0-9-].
func validName(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for _, r := range name {
		if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-') {
			return false
		}
	}
	return true
}

// Validate checks a default-filled spec; the error messages are part of the
// package's contract (asserted exactly by the validation test battery).
func (s *Spec) Validate() error {
	if !validName(s.Name) {
		return fmt.Errorf("scenario: name must be 1-64 chars of [a-z0-9-], got %q", s.Name)
	}
	if err := s.validateTopology(); err != nil {
		return err
	}
	if err := s.validateWorkload(); err != nil {
		return err
	}
	if len(s.Schemes) == 0 {
		return s.errf("at least one scheme required")
	}
	seen := map[string]bool{}
	valid := validSchemes()
	for _, sch := range s.Schemes {
		if !valid[sch] {
			return s.errf("unknown scheme %q", sch)
		}
		if seen[sch] {
			return s.errf("duplicate scheme %q", sch)
		}
		if s.Topology.Leaves > 2 && sch == string(cluster.SchemeCONGA) {
			return s.errf("scheme %q requires a two-leaf topology (its congestion tables span event domains)", sch)
		}
		seen[sch] = true
	}
	if len(s.Seeds) > 16 {
		return s.errf("at most 16 seeds, got %d", len(s.Seeds))
	}
	for i := range s.Events {
		if err := s.validateEvent(i, &s.Events[i]); err != nil {
			return err
		}
	}
	return nil
}

func (s *Spec) validateTopology() error {
	t := s.Topology
	if t.K < 2 || t.K > 64 || t.K%2 != 0 {
		return s.errf("topology.k must be a positive even number <= 64, got %d", t.K)
	}
	if t.Leaves < 2 || t.Leaves > 64 {
		return s.errf("topology.leaves must be in [2, 64], got %d", t.Leaves)
	}
	if t.HostsPerLeaf < 1 || t.HostsPerLeaf > 64 {
		return s.errf("topology.hosts_per_leaf must be in [1, 64], got %d", t.HostsPerLeaf)
	}
	if t.TrunksPerPair < 1 || t.TrunksPerPair > 8 {
		return s.errf("topology.trunks_per_pair must be in [1, 8], got %d", t.TrunksPerPair)
	}
	if !(t.Oversubscription > 0) || t.Oversubscription > 64 {
		return s.errf("topology.oversubscription must be in (0, 64], got %v", t.Oversubscription)
	}
	if !(t.HostGbps > 0) || t.HostGbps > 1000 {
		return s.errf("topology.host_gbps must be in (0, 1000], got %v", t.HostGbps)
	}
	if !(t.RateScale > 0) || t.RateScale > 1 {
		return s.errf("topology.rate_scale must be in (0, 1], got %v", t.RateScale)
	}
	if !(t.EdgeDelayUs > 0) || t.EdgeDelayUs > 10000 {
		return s.errf("topology.edge_delay_us must be in (0, 10000], got %v", t.EdgeDelayUs)
	}
	if !(t.FabricDelayUs > 0) || t.FabricDelayUs > 10000 {
		return s.errf("topology.fabric_delay_us must be in (0, 10000], got %v", t.FabricDelayUs)
	}
	if rate := t.HostGbps * 1e9 * t.RateScale; rate < minScaledRateBps {
		return s.errf("topology: scaled host rate %.0f bps below %.0f (raise host_gbps or rate_scale)", rate, float64(minScaledRateBps))
	}
	if rate := s.scaledTrunkBps(); rate < minScaledRateBps {
		return s.errf("topology: scaled trunk rate %.0f bps below %.0f (check oversubscription)", rate, float64(minScaledRateBps))
	}
	return nil
}

// scaledTrunkBps is the per-trunk rate after oversubscription and scaling:
// the leaf's host bandwidth spread over its uplinks, thinned by the ratio.
func (s *Spec) scaledTrunkBps() float64 {
	t := s.Topology
	hostBps := t.HostGbps * 1e9 * t.RateScale
	return float64(t.HostsPerLeaf) * hostBps /
		(float64(t.K/2*t.TrunksPerPair) * t.Oversubscription)
}

func (s *Spec) validateWorkload() error {
	w := s.Workload
	if !(w.Load > 0) || w.Load > 1 {
		return s.errf("workload.load must be in (0, 1], got %v", w.Load)
	}
	if w.TotalJobs < 1 || w.TotalJobs > 1_000_000 {
		return s.errf("workload.total_jobs must be in [1, 1000000], got %d", w.TotalJobs)
	}
	if !(w.SizeScale > 0) || w.SizeScale > 10 {
		return s.errf("workload.size_scale must be in (0, 10], got %v", w.SizeScale)
	}
	fr := []struct {
		name string
		v    float64
	}{
		{"web_search", w.Mix.WebSearch}, {"rpc", w.Mix.RPC},
		{"ml", w.Mix.ML}, {"incast", w.Mix.Incast},
	}
	sum := 0.0
	for _, f := range fr {
		if !(f.v >= 0) || f.v > 1 {
			return s.errf("workload.mix.%s must be in [0, 1], got %v", f.name, f.v)
		}
		sum += f.v
	}
	if math.Abs(sum-1) > 1e-9 {
		return s.errf("workload.mix fractions must sum to 1, got %v", sum)
	}
	if w.IncastFanout < 0 || w.IncastFanout > s.Topology.HostsPerLeaf {
		return s.errf("workload.incast_fanout must be in [0, hosts_per_leaf=%d], got %d", s.Topology.HostsPerLeaf, w.IncastFanout)
	}
	if w.IncastBytes < 1 || w.IncastBytes > 1e12 {
		return s.errf("workload.incast_bytes must be in [1, 1e12], got %d", w.IncastBytes)
	}
	if w.MLBytes < 1 || w.MLBytes > 1e12 {
		return s.errf("workload.ml_bytes must be in [1, 1e12], got %d", w.MLBytes)
	}
	if !(w.MaxTimeMs > 0) || w.MaxTimeMs > 3_600_000 {
		return s.errf("workload.max_time_ms must be in (0, 3600000], got %v", w.MaxTimeMs)
	}
	if !(w.WarmupMs >= 0) || w.WarmupMs > w.MaxTimeMs {
		return s.errf("workload.warmup_ms must be in [0, max_time_ms], got %v", w.WarmupMs)
	}
	if w.ServersPerClient < 0 || w.ServersPerClient > 64 {
		return s.errf("workload.servers_per_client must be in [0, 64], got %d", w.ServersPerClient)
	}
	return nil
}

// checkLink validates a link reference against the spec's topology: one
// endpoint a leaf, the other an existing spine, trunk index in range.
func (s *Spec) checkLink(idx int, l *LinkRef) error {
	leaf := func(n string) bool {
		for i := 1; i <= s.Topology.Leaves; i++ {
			if n == fmt.Sprintf("L%d", i) {
				return true
			}
		}
		return false
	}
	spine := func(n string) bool {
		for i := 1; i <= s.Topology.K/2; i++ {
			if n == fmt.Sprintf("S%d", i) {
				return true
			}
		}
		return false
	}
	ok := (leaf(l.A) && spine(l.B)) || (spine(l.A) && leaf(l.B))
	if !ok || l.Trunk < 0 || l.Trunk >= s.Topology.TrunksPerPair {
		return s.errf("events[%d]: no link %s-%s#%d in this topology", idx, l.A, l.B, l.Trunk)
	}
	return nil
}

func (s *Spec) validateEvent(idx int, e *EventSpec) error {
	maxMs := s.Workload.MaxTimeMs
	if !(e.AtMs >= 0) || e.AtMs > maxMs {
		return s.errf("events[%d]: at_ms %v outside [0, %v]", idx, e.AtMs, maxMs)
	}
	switch e.Type {
	case EventLinkDown, EventLinkUp:
		if e.Link == nil {
			return s.errf("events[%d]: %s requires a link", idx, e.Type)
		}
		return s.checkLink(idx, e.Link)
	case EventLinkRate:
		if e.Link == nil {
			return s.errf("events[%d]: %s requires a link", idx, e.Type)
		}
		if err := s.checkLink(idx, e.Link); err != nil {
			return err
		}
		if !(e.RateGbps > 0) || e.RateGbps > 1000 {
			return s.errf("events[%d]: rate_gbps must be in (0, 1000], got %v", idx, e.RateGbps)
		}
		if rate := e.RateGbps * 1e9 * s.Topology.RateScale; rate < minScaledRateBps {
			return s.errf("events[%d]: scaled link rate %.0f bps below %.0f", idx, rate, float64(minScaledRateBps))
		}
		return nil
	case EventSwitchDown, EventSwitchUp:
		if !s.isSpine(e.Switch) {
			return s.errf("events[%d]: switch %q is not a spine of this topology", idx, e.Switch)
		}
		return nil
	case EventLoadScale:
		if !(e.Scale > 0) || e.Scale > 100 {
			return s.errf("events[%d]: scale must be in (0, 100], got %v", idx, e.Scale)
		}
		return nil
	case EventStorm:
		st := e.Storm
		if st == nil {
			return s.errf("events[%d]: storm requires a storm block", idx)
		}
		if len(st.Links) == 0 {
			return s.errf("events[%d]: storm needs at least one link", idx)
		}
		for li := range st.Links {
			if err := s.checkLink(idx, &st.Links[li]); err != nil {
				return err
			}
		}
		if !(st.DurationMs > 0) {
			return s.errf("events[%d]: storm duration_ms must be positive, got %v", idx, st.DurationMs)
		}
		if !(st.PeriodMs > 0) || st.PeriodMs > st.DurationMs {
			return s.errf("events[%d]: storm period_ms must be in (0, duration_ms], got %v", idx, st.PeriodMs)
		}
		if e.AtMs+st.DurationMs > maxMs {
			return s.errf("events[%d]: storm extends past workload window: %v + %v > %v", idx, e.AtMs, st.DurationMs, maxMs)
		}
		return nil
	default:
		return s.errf("events[%d]: unknown event type %q", idx, e.Type)
	}
}

func (s *Spec) isSpine(name string) bool {
	for i := 1; i <= s.Topology.K/2; i++ {
		if name == fmt.Sprintf("S%d", i) {
			return true
		}
	}
	return false
}
