package sim

import "container/heap"

// EventFunc is the closure-free callback form used on the simulator's hot
// path. The two operands are supplied at scheduling time (AtCall/AfterCall)
// and handed back verbatim when the event fires, so callers can bind a
// receiver and a payload without allocating a closure per event. Pass
// pointers (or nil): boxing a pointer into an interface does not allocate,
// while boxing most scalar values does.
type EventFunc func(a, b any)

// event is one scheduled callback. Fired and cancelled events are recycled
// through the Simulator's free list; gen distinguishes incarnations so a
// stale EventID can never cancel (or be confused with) the struct's next
// tenant.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among equal timestamps
	fn  func() // cold path: closure form (At/After)

	// Hot path: closure-free form (AtCall/AfterCall). When call is non-nil
	// it takes precedence over fn.
	call EventFunc
	a, b any

	gen uint32 // incarnation counter, bumped on every recycle
	// index within the heap, maintained by heap.Interface methods, so that
	// cancellation can be O(log n). Negative once removed.
	index int
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// EventID is never issued. IDs are incarnation-stamped: once the event has
// fired or been cancelled, the ID goes stale and Cancel on it is a no-op,
// even if the underlying struct has been recycled for a new event.
type EventID struct {
	ev  *event
	gen uint32
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// remove deletes the event at index i.
func (h *eventHeap) remove(i int) {
	heap.Remove(h, i)
}
