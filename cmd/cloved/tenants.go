package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"clove/internal/datapath"
)

// Duration is a JSON-friendly time.Duration: it marshals as a string
// ("500µs") and unmarshals from either a Go duration string or a plain
// number of nanoseconds.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("invalid duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return err
	}
	*d = Duration(ns)
	return nil
}

// TenantSpec configures one tenant overlay: its own shared-nothing
// datapath.Endpoint with private path sockets, stats, weights, and drain.
type TenantSpec struct {
	// Name identifies the tenant on the stats line and the admin API.
	Name string `json:"name"`
	// Listen is the local IP to bind path sockets on (default 127.0.0.1).
	Listen string `json:"listen,omitempty"`
	// Remote is the peer address; empty starts the tenant receive-only
	// until a /config retarget installs one.
	Remote string `json:"remote,omitempty"`
	// Paths is the number of path sockets (default 4).
	Paths int `json:"paths,omitempty"`
	// FlowletGap and RelayInterval override the datapath defaults.
	FlowletGap    Duration `json:"flowlet_gap,omitempty"`
	RelayInterval Duration `json:"relay_interval,omitempty"`
}

type tenantsFile struct {
	Tenants []TenantSpec `json:"tenants"`
}

// parseTenants decodes and validates a tenants spec. Unknown fields and
// trailing data are rejected so a typo cannot silently configure nothing.
func parseTenants(data []byte) ([]TenantSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var tf tenantsFile
	if err := dec.Decode(&tf); err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	if dec.More() {
		return nil, errors.New("tenants: trailing data after spec")
	}
	if len(tf.Tenants) == 0 {
		return nil, errors.New("tenants: no tenants defined")
	}
	seen := make(map[string]bool, len(tf.Tenants))
	for i := range tf.Tenants {
		t := &tf.Tenants[i]
		if t.Name == "" {
			return nil, fmt.Errorf("tenants: tenant %d: name is required", i)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("tenants: duplicate tenant name %q", t.Name)
		}
		seen[t.Name] = true
		if t.Paths < 0 {
			return nil, fmt.Errorf("tenants: tenant %q: paths must be positive, got %d", t.Name, t.Paths)
		}
		if t.FlowletGap < 0 {
			return nil, fmt.Errorf("tenants: tenant %q: flowlet_gap must not be negative", t.Name)
		}
		if t.RelayInterval < 0 {
			return nil, fmt.Errorf("tenants: tenant %q: relay_interval must not be negative", t.Name)
		}
		applyTenantDefaults(t)
	}
	return tf.Tenants, nil
}

// applyTenantDefaults fills zero fields from the datapath defaults.
func applyTenantDefaults(t *TenantSpec) {
	def := datapath.DefaultConfig()
	if t.Listen == "" {
		t.Listen = "127.0.0.1"
	}
	if t.Paths == 0 {
		t.Paths = def.Paths
	}
	if t.FlowletGap == 0 {
		t.FlowletGap = Duration(def.FlowletGap)
	}
	if t.RelayInterval == 0 {
		t.RelayInterval = Duration(def.RelayInterval)
	}
}

// loadTenants reads and parses a tenants spec file.
func loadTenants(path string) ([]TenantSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	return parseTenants(data)
}
