package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// ringModel is a small multi-domain workload used by the determinism tests:
// every domain runs a local event chain with RNG-jittered gaps, and every
// few events posts a message to the next domain in the ring with an
// RNG-jittered cross-domain delay (always >= lookahead). Each fired event
// appends a record to its domain's thread-confined log.
type ringModel struct {
	eng  *Engine
	logs [][]string
}

const ringLookahead = 5 * Microsecond

func buildRing(seed int64, nDomains int) *ringModel {
	eng := NewEngine(seed, ringLookahead)
	m := &ringModel{eng: eng, logs: make([][]string, nDomains)}
	for i := 0; i < nDomains; i++ {
		d := eng.AddDomain()
		m.start(d, fmt.Sprintf("boot%d", i))
	}
	return m
}

func (m *ringModel) start(d *Domain, tag string) {
	d.After(Time(d.Rand().Int63n(int64(Microsecond))), func() { m.step(d, tag, 0) })
}

func (m *ringModel) step(d *Domain, tag string, n int) {
	m.logs[d.ID()] = append(m.logs[d.ID()],
		fmt.Sprintf("%s#%d@%d r%d", tag, n, d.Now(), d.Rand().Int63n(1000)))
	if n >= 40 {
		return
	}
	if n%5 == 4 {
		dst := (d.ID() + 1) % m.eng.NumDomains()
		at := d.Now() + m.eng.Lookahead() + Time(d.Rand().Int63n(int64(2*Microsecond)))
		hop := fmt.Sprintf("%s>%d", tag, dst)
		d.Post(dst, at, func(a, _ any) {
			t := a.(*Domain)
			m.step(t, hop, n+1)
		}, m.eng.Domain(dst), nil)
	}
	d.After(Time(1+d.Rand().Int63n(int64(3*Microsecond))), func() { m.step(d, tag, n+1) })
}

func (m *ringModel) run(until Time, workers int) []string {
	m.eng.Run(until, workers, nil)
	var all []string
	for i, lg := range m.logs {
		for _, s := range lg {
			all = append(all, fmt.Sprintf("d%d %s", i, s))
		}
	}
	return all
}

// TestEngineDeterministicAcrossWorkers is the core tentpole guarantee: the
// same seeded model produces an identical per-domain event log at any
// worker count.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	const until = 500 * Microsecond
	ref := buildRing(42, 6).run(until, 1)
	if len(ref) == 0 {
		t.Fatal("reference run produced no events")
	}
	for _, workers := range []int{2, 4, 8} {
		got := buildRing(42, 6).run(until, workers)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d log diverges from workers=1 (len %d vs %d)",
				workers, len(got), len(ref))
		}
	}
}

// TestEngineSeedSensitivity guards against the domains accidentally sharing
// one RNG stream: a different engine seed must change the log.
func TestEngineSeedSensitivity(t *testing.T) {
	const until = 500 * Microsecond
	a := buildRing(1, 4).run(until, 1)
	b := buildRing(2, 4).run(until, 1)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical logs")
	}
}

// TestEnginePostUnderLookaheadPanics pins the conservative-sync contract:
// posting a cross-domain message closer than the lookahead is a bug in the
// model and must fail loudly at the source.
func TestEnginePostUnderLookaheadPanics(t *testing.T) {
	eng := NewEngine(7, 10*Microsecond)
	d0 := eng.AddDomain()
	eng.AddDomain()
	d0.At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("post under lookahead did not panic")
			}
		}()
		d0.Post(1, d0.Now()+9*Microsecond, func(any, any) {}, nil, nil)
	})
	eng.Run(Microsecond, 1, nil)
}

// TestEngineZeroLookaheadPanics: a zero or negative lookahead would allow
// same-instant cross-domain causality and deadlock the window computation.
func TestEngineZeroLookaheadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewEngine(lookahead=0) did not panic")
		}
	}()
	NewEngine(1, 0)
}

// TestEngineGlobalsRunAtBarriers pins the ordering contract for control
// events: all domain events with timestamps <= t fire before a global at t,
// and globals at the same time run in scheduling order (including ones they
// enqueue themselves).
func TestEngineGlobalsRunAtBarriers(t *testing.T) {
	eng := NewEngine(3, 2*Microsecond)
	d0 := eng.AddDomain()
	d1 := eng.AddDomain()
	var order []string
	d0.At(10*Microsecond, func() { order = append(order, "d0@10") })
	d1.At(10*Microsecond, func() { order = append(order, "d1@10") })
	d1.At(11*Microsecond, func() { order = append(order, "d1@11") })
	eng.GlobalAt(10*Microsecond, func() {
		order = append(order, "g1@10")
		eng.GlobalAt(10*Microsecond, func() { order = append(order, "g3@10") })
	})
	eng.GlobalAt(10*Microsecond, func() { order = append(order, "g2@10") })
	eng.GlobalAt(5*Microsecond, func() { order = append(order, "g0@5") })
	eng.Run(20*Microsecond, 1, nil)
	want := []string{"g0@5", "d0@10", "d1@10", "g1@10", "g2@10", "g3@10", "d1@11"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if eng.Now() != 20*Microsecond {
		t.Fatalf("Now() = %v after drain, want 20µs", eng.Now())
	}
	if eng.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", eng.Pending())
	}
}

// TestEnginePostTieOrder pins the flush order for messages landing at the
// same timestamp: source domain id, then source sequence — independent of
// which worker ran which domain.
func TestEnginePostTieOrder(t *testing.T) {
	for _, workers := range []int{1, 3} {
		eng := NewEngine(5, Microsecond)
		var doms []*Domain
		for i := 0; i < 4; i++ {
			doms = append(doms, eng.AddDomain())
		}
		var got []string
		// Domains 3,2,1 each post two messages to domain 0, all landing at
		// exactly 2µs. Expected arrival order: by (src, seq).
		for _, src := range []int{3, 2, 1} {
			d := doms[src]
			src := src
			d.At(Microsecond, func() {
				for k := 0; k < 2; k++ {
					k := k
					d.Post(0, 2*Microsecond, func(any, any) {
						got = append(got, fmt.Sprintf("s%dk%d", src, k))
					}, nil, nil)
				}
			})
		}
		eng.Run(10*Microsecond, workers, nil)
		want := []string{"s1k0", "s1k1", "s2k0", "s2k1", "s3k0", "s3k1"}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d arrival order = %v, want %v", workers, got, want)
		}
	}
}

// TestEngineStopAtBarrier: the stop predicate is honored at a barrier and
// leaves the engine in a resumable state.
func TestEngineStopAtBarrier(t *testing.T) {
	eng := NewEngine(9, Microsecond)
	d := eng.AddDomain()
	var fired int
	var tick func()
	tick = func() {
		fired++
		d.After(Microsecond, tick)
	}
	d.After(Microsecond, tick)
	eng.Run(Second, 1, func() bool { return fired >= 10 })
	if fired < 10 || fired > 12 {
		t.Fatalf("fired = %d, want ~10 (stop checked at barriers)", fired)
	}
	if eng.Now() >= Second {
		t.Fatalf("engine ran to deadline despite stop (now=%v)", eng.Now())
	}
}

// TestEngineProcessedPending sanity-checks the aggregate accounting.
func TestEngineProcessedPending(t *testing.T) {
	eng := NewEngine(11, Microsecond)
	d0 := eng.AddDomain()
	d1 := eng.AddDomain()
	d0.At(Microsecond, func() {})
	d1.At(Microsecond, func() {})
	d1.At(2*Microsecond, func() {})
	eng.GlobalAt(3*Microsecond, func() {})
	if eng.Pending() != 4 {
		t.Fatalf("Pending() = %d, want 4", eng.Pending())
	}
	eng.Run(Millisecond, 2, nil)
	if eng.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", eng.Pending())
	}
	if eng.Processed() != 3 {
		t.Fatalf("Processed() = %d, want 3", eng.Processed())
	}
}

// TestEngineResumableRun: Run may be called repeatedly with increasing
// deadlines; clocks and pending work carry over.
func TestEngineResumableRun(t *testing.T) {
	eng := NewEngine(13, Microsecond)
	d := eng.AddDomain()
	var at []Time
	for i := 1; i <= 4; i++ {
		i := i
		d.At(Time(i)*10*Microsecond, func() { at = append(at, d.Now()) })
	}
	eng.Run(15*Microsecond, 1, nil)
	if len(at) != 1 {
		t.Fatalf("fired %d events before first deadline, want 1", len(at))
	}
	if eng.Now() != 15*Microsecond {
		t.Fatalf("Now() = %v, want 15µs", eng.Now())
	}
	eng.Run(Millisecond, 2, nil)
	if len(at) != 4 {
		t.Fatalf("fired %d events total, want 4", len(at))
	}
}
