package scenario

import (
	"io/fs"
	"reflect"
	"strings"
	"testing"

	"clove/scenarios"
)

// FuzzScenarioParse: Parse must never panic, and any input it accepts must
// survive Marshal -> Parse unchanged (the round-trip stability contract the
// embedded library and -scenario files rely on).
func FuzzScenarioParse(f *testing.F) {
	entries, err := fs.ReadDir(scenarios.FS, ".")
	if err != nil {
		f.Fatal(err)
	}
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		data, err := fs.ReadFile(scenarios.FS, ent.Name())
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","topology":{"k":4}}`))
	f.Add([]byte(`{"name":"a","topology":{"k":4},"workload":{"load":0.5,"total_jobs":10,"mix":{"web_search":1}},"schemes":["ecmp"]}`))
	f.Add([]byte(`{"name":"a","topology":{"k":1e300},"workload":{"load":1e-300}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"name":"a","events":[{"at_ms":1,"type":"storm","storm":{"links":[{"a":"L1","b":"S1"}],"period_ms":1,"duration_ms":2}}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Parse(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		out, err := sp.Marshal()
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		sp2, err := Parse(out)
		if err != nil {
			t.Fatalf("marshaled spec does not reparse: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("round trip changed the spec:\n before: %+v\n after:  %+v", sp, sp2)
		}
	})
}
