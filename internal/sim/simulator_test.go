package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5ms*1000", got)
	}
	if got := FromDuration(2 * time.Millisecond); got != 2*Millisecond {
		t.Errorf("FromDuration(2ms) = %v", got)
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Errorf("Seconds = %v, want 0.25", got)
	}
	if s := (1500 * Microsecond).String(); s != "1.5ms" {
		t.Errorf("String = %q, want 1.5ms", s)
	}
}

func TestTransmissionTime(t *testing.T) {
	// 1500 bytes at 10 Gbps = 1.2 us.
	if got := TransmissionTime(1500, 10_000_000_000); got != 1200*Nanosecond {
		t.Errorf("TransmissionTime = %v, want 1.2us", got)
	}
	// 1 byte at 8 bps = 1 s.
	if got := TransmissionTime(1, 8); got != Second {
		t.Errorf("TransmissionTime = %v, want 1s", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("TransmissionTime with zero rate did not panic")
		}
	}()
	TransmissionTime(1, 0)
}

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events fired in order %v, want [1 2 3]", got)
	}
	if s.Now() != 30 {
		t.Errorf("Now = %v, want 30", s.Now())
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-timestamp events fired out of order at %d: %v", i, v)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestAfterAndNestedScheduling(t *testing.T) {
	s := New(1)
	var times []Time
	s.After(10, func() {
		times = append(times, s.Now())
		s.After(15, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 25 {
		t.Errorf("nested times = %v, want [10 25]", times)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	id := s.At(10, func() { fired = true })
	if !s.Cancel(id) {
		t.Error("Cancel returned false for pending event")
	}
	if s.Cancel(id) {
		t.Error("double Cancel returned true")
	}
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New(1)
	var got []int
	var ids []EventID
	for i := 0; i < 10; i++ {
		i := i
		ids = append(ids, s.At(Time(i*10), func() { got = append(got, i) }))
	}
	s.Cancel(ids[3])
	s.Cancel(ids[7])
	s.Run()
	want := []int{0, 1, 2, 4, 5, 6, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCancelFiredEventIsNoop(t *testing.T) {
	s := New(1)
	id := s.At(1, func() {})
	s.Run()
	if s.Cancel(id) {
		t.Error("Cancel returned true for already-fired event")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5,10", fired)
	}
	if s.Now() != 12 {
		t.Errorf("Now = %v, want 12 after RunUntil", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", s.Pending())
	}
	s.Run()
	if len(fired) != 4 || s.Now() != 20 {
		t.Errorf("after Run: fired=%v now=%v", fired, s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3 after Stop", count)
	}
	if s.Pending() != 7 {
		t.Errorf("Pending = %d, want 7", s.Pending())
	}
}

func TestRunForEvents(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i), func() { count++ })
	}
	s.RunForEvents(4)
	if count != 4 {
		t.Errorf("count = %d, want 4", count)
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	var ticks []Time
	var cancel func()
	cancel = s.Ticker(10, func() {
		ticks = append(ticks, s.Now())
		if len(ticks) == 5 {
			cancel()
		}
	})
	s.RunUntil(1000)
	if len(ticks) != 5 {
		t.Fatalf("ticks = %v, want 5 ticks", ticks)
	}
	for i, at := range ticks {
		if at != Time((i+1)*10) {
			t.Errorf("tick %d at %v, want %v", i, at, Time((i+1)*10))
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var trace []int64
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 6 {
				return
			}
			delay := Time(s.Rand().Intn(100) + 1)
			s.After(delay, func() {
				trace = append(trace, int64(s.Now()))
				spawn(depth + 1)
				if s.Rand().Intn(2) == 0 {
					spawn(depth + 1)
				}
			})
		}
		spawn(0)
		spawn(0)
		s.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic trace length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces; RNG unused?")
	}
}

// Property: popping events always yields non-decreasing timestamps, for any
// random insertion order.
func TestQuickMonotonePop(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		s := New(7)
		var fired []Time
		for _, r := range raw {
			at := Time(r % 100000)
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		return len(fired) == len(raw)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
