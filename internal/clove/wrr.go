package clove

// WRR is a smooth weighted round-robin scheduler over encap source ports.
// Unlike naive WRR (which emits bursts of the heavy item), the smooth
// variant interleaves picks so consecutive flowlets spread across paths,
// which is what "rotating through the ports according to the set of
// weights" (Sec. 3.2) needs in practice.
//
// Weights are arbitrary non-negative floats; they are treated as relative.
// The scheduler is deterministic.
type WRR struct {
	ports   []uint16
	weights []float64
	current []float64
}

// NewWRR creates a scheduler over ports with equal weights.
func NewWRR(ports []uint16) *WRR {
	w := &WRR{}
	eq := make([]float64, len(ports))
	for i := range eq {
		eq[i] = 1
	}
	w.Reset(ports, eq)
	return w
}

// Reset replaces the port set and weights. Smoothing state restarts. It
// panics on mismatched lengths or negative weights: both are caller bugs.
func (w *WRR) Reset(ports []uint16, weights []float64) {
	if len(ports) != len(weights) {
		panic("clove: ports/weights length mismatch")
	}
	for _, wt := range weights {
		if wt < 0 {
			panic("clove: negative WRR weight")
		}
	}
	w.ports = append(w.ports[:0], ports...)
	w.weights = append(w.weights[:0], weights...)
	w.current = make([]float64, len(ports))
}

// SetWeight updates one port's weight in place (smoothing state preserved).
// Unknown ports are ignored.
func (w *WRR) SetWeight(port uint16, weight float64) {
	for i, p := range w.ports {
		if p == port {
			w.weights[i] = weight
			return
		}
	}
}

// Len returns the number of ports.
func (w *WRR) Len() int { return len(w.ports) }

// Ports returns the scheduled port set (do not modify).
func (w *WRR) Ports() []uint16 { return w.ports }

// Next returns the next port per smooth WRR: each pick adds every weight to
// its accumulator, selects the largest accumulator, and subtracts the total
// weight from it. With all-zero weights it degrades to plain round-robin.
// It panics on an empty scheduler.
func (w *WRR) Next() uint16 {
	if len(w.ports) == 0 {
		panic("clove: Next on empty WRR")
	}
	var total float64
	for _, wt := range w.weights {
		total += wt
	}
	if total == 0 {
		// Plain round-robin via the accumulators.
		best := 0
		for i := range w.current {
			w.current[i]++
			if w.current[i] > w.current[best] {
				best = i
			}
		}
		w.current[best] -= float64(len(w.current))
		return w.ports[best]
	}
	best := 0
	for i := range w.current {
		w.current[i] += w.weights[i]
		if w.current[i] > w.current[best] {
			best = i
		}
	}
	w.current[best] -= total
	return w.ports[best]
}
