package telemetry

import (
	"testing"

	"clove/internal/packet"
	"clove/internal/sim"
)

func TestRegistryCreateOrGet(t *testing.T) {
	var r Registry
	c1 := r.Counter("a.b")
	c2 := r.Counter("a.b")
	if c1 != c2 {
		t.Error("same name resolved to two counter handles")
	}
	c1.Add(3)
	c2.Inc()
	if c1.Value() != 4 {
		t.Errorf("counter = %d, want 4", c1.Value())
	}
	g := r.Gauge("g")
	g.Set(1.5)
	if r.Gauge("g").Value() != 1.5 {
		t.Errorf("gauge = %v, want 1.5", g.Value())
	}
}

func TestRegistryVisitSortedOrder(t *testing.T) {
	var r Registry
	r.Counter("z")
	r.Counter("a")
	r.Counter("m")
	r.Gauge("k")
	r.Gauge("b")
	var cs, gs []string
	r.VisitSorted(
		func(c *Counter) { cs = append(cs, c.Name()) },
		func(g *Gauge) { gs = append(gs, g.Name()) },
	)
	wantC := []string{"a", "m", "z"}
	wantG := []string{"b", "k"}
	for i, n := range wantC {
		if cs[i] != n {
			t.Fatalf("counters visited as %v, want %v", cs, wantC)
		}
	}
	for i, n := range wantG {
		if gs[i] != n {
			t.Fatalf("gauges visited as %v, want %v", gs, wantG)
		}
	}
}

func TestNilHandlesAndNilTracerAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	c.Add(1)
	c.Inc()
	g.Set(2)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil handle returned nonzero value")
	}

	var tr *Tracer
	if tr.Counter("x") != nil || tr.Gauge("x") != nil || tr.Registry() != nil {
		t.Error("nil tracer resolved a non-nil handle")
	}
	flow := packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	tr.AddSampler(func(sim.Time) {})
	tr.Start()
	tr.Stop()
	tr.QueueSample(0, 1, "l", 0, 0, 0)
	tr.WeightSample(0, 1, 2, 3, 0.5, 0.1, -1)
	tr.CwndSample(0, flow, 10, 20, 1000, 0)
	tr.Retransmit(0, flow, 0, RetxFast)
	tr.Flowlet(0, flow, 0, 1, 2, 3, 4)
	tr.FCT(0, 1, 2, 100, 50)
	if err := tr.Export(t.TempDir()); err != nil {
		t.Errorf("nil tracer Export: %v", err)
	}
	if tr.Weights() != nil || tr.FCTs() != nil {
		t.Error("nil tracer returned samples")
	}
}

// TestDisabledTelemetryZeroAllocs pins the disabled-path cost contract of
// the package doc: with telemetry compiled in but not enabled, the nil
// handles and nil tracer hooks used on hot paths must not allocate.
func TestDisabledTelemetryZeroAllocs(t *testing.T) {
	var c *Counter
	var tr *Tracer
	flow := packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		tr.Retransmit(0, flow, 0, RetxTimeout)
		tr.Flowlet(0, flow, 0, 1, 2, 3, 4)
	}); allocs != 0 {
		t.Fatalf("disabled telemetry hooks: %v allocs/op, want 0", allocs)
	}
}

func TestRingWrapsAndCountsDrops(t *testing.T) {
	s := sim.New(1)
	tr := NewTracer(s, Config{Interval: sim.Microsecond, MaxSamples: 4})
	for i := 0; i < 7; i++ {
		tr.FCT(sim.Time(i), 1, 2, int64(i), sim.Time(i))
	}
	got := tr.FCTs()
	if len(got) != 4 {
		t.Fatalf("ring kept %d records, want 4", len(got))
	}
	for i, rec := range got {
		if want := sim.Time(3 + i); rec.T != want {
			t.Errorf("record %d at t=%d, want %d (oldest-first after wrap)", i, rec.T, want)
		}
	}
	if tr.fcts.dropped != 3 {
		t.Errorf("dropped = %d, want 3", tr.fcts.dropped)
	}
}

func TestTickerSamplesAtInterval(t *testing.T) {
	s := sim.New(1)
	tr := NewTracer(s, Config{Interval: 10 * sim.Microsecond})
	var ticks []sim.Time
	tr.AddSampler(func(now sim.Time) { ticks = append(ticks, now) })
	tr.Start()
	tr.Start() // idempotent
	s.RunUntil(95 * sim.Microsecond)
	if len(ticks) != 9 {
		t.Fatalf("sampler ran %d times in 95µs at 10µs interval, want 9", len(ticks))
	}
	for i, tk := range ticks {
		if want := sim.Time(i+1) * 10 * sim.Microsecond; tk != want {
			t.Errorf("tick %d at %v, want %v", i, tk, want)
		}
	}
	if len(tr.sims.snapshot()) != 9 {
		t.Errorf("sim stream captured %d samples, want 9", len(tr.sims.snapshot()))
	}
	tr.Stop()
	s.RunUntil(200 * sim.Microsecond)
	if len(ticks) != 9 {
		t.Errorf("sampler ran after Stop: %d ticks", len(ticks))
	}
}
