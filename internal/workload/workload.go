// Package workload generates the traffic the paper evaluates with: flow
// sizes drawn from an empirical web-search distribution (heavy-tailed, most
// flows small, most bytes in a few large flows), Poisson flow arrivals
// tuned to a target network load, and the incast partition–aggregate
// pattern of Sec. 5.3.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"clove/internal/sim"
)

// CDFPoint anchors an empirical flow-size CDF: P(size <= Bytes) = Prob.
type CDFPoint struct {
	Bytes float64
	Prob  float64
}

// EmpiricalCDF samples flow sizes by inverse-transform sampling with
// log-linear interpolation between anchor points, the standard way
// datacenter workload CDFs are replayed in simulation.
type EmpiricalCDF struct {
	points []CDFPoint
	name   string
}

// NewEmpiricalCDF validates and builds a CDF. Points must be sorted by
// probability, start above probability 0, and end at exactly 1.
func NewEmpiricalCDF(name string, points []CDFPoint) (*EmpiricalCDF, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: CDF %q needs >= 2 points", name)
	}
	for i, p := range points {
		// The positive form (rather than `<= 0`) also rejects NaN, which
		// fails every ordered comparison and would otherwise slip through.
		if !(p.Bytes > 0) || math.IsInf(p.Bytes, 1) || !(p.Prob > 0) || p.Prob > 1 {
			return nil, fmt.Errorf("workload: CDF %q point %d out of range: %+v", name, i, p)
		}
		if i > 0 && (p.Prob <= points[i-1].Prob || p.Bytes < points[i-1].Bytes) {
			return nil, fmt.Errorf("workload: CDF %q not monotone at point %d", name, i)
		}
	}
	if points[len(points)-1].Prob != 1 {
		return nil, fmt.Errorf("workload: CDF %q must end at probability 1", name)
	}
	return &EmpiricalCDF{points: points, name: name}, nil
}

// mustCDF builds a CDF or panics (package-internal literals only).
func mustCDF(name string, points []CDFPoint) *EmpiricalCDF {
	c, err := NewEmpiricalCDF(name, points)
	if err != nil {
		panic(err)
	}
	return c
}

// WebSearch returns the web-search flow-size distribution used throughout
// the paper's evaluation (originally measured in a production search
// cluster and published with DCTCP). The anchor points below approximate
// that distribution: about half the flows are mice under ~100KB, while
// flows above 1MB carry the bulk of the bytes; the mean is ~1.6MB.
func WebSearch() *EmpiricalCDF {
	return mustCDF("web-search", []CDFPoint{
		{6e3, 0.15},
		{13e3, 0.20},
		{19e3, 0.30},
		{33e3, 0.40},
		{53e3, 0.53},
		{133e3, 0.60},
		{667e3, 0.70},
		{1467e3, 0.80},
		{3333e3, 0.90},
		{6667e3, 0.95},
		{20e6, 0.98},
		{30e6, 1.00},
	})
}

// DataMining returns the data-mining distribution (from the VL2 study),
// offered as an additional workload: even heavier-tailed, with ~80% of
// flows under 10KB and a maximum around 1GB (truncated here to 100MB to
// keep simulations tractable).
func DataMining() *EmpiricalCDF {
	return mustCDF("data-mining", []CDFPoint{
		{100, 0.50},
		{1e3, 0.60},
		{10e3, 0.78},
		{100e3, 0.85},
		{1e6, 0.91},
		{10e6, 0.96},
		{100e6, 1.00},
	})
}

// CacheFollower returns an RPC-style flow-size distribution modelled on the
// published cache-follower traffic of a large social-network datacenter:
// dominated by sub-kilobyte request/response pairs, with a thin tail of
// larger object fetches. It is the "RPC" component of scenario workload
// mixes — latency-bound mice against which the web-search elephants compete.
func CacheFollower() *EmpiricalCDF {
	return mustCDF("cache-follower", []CDFPoint{
		{350, 0.50},
		{1e3, 0.70},
		{5e3, 0.80},
		{50e3, 0.90},
		{500e3, 0.97},
		{2e6, 0.99},
		{10e6, 1.00},
	})
}

// Name returns the distribution's name.
func (c *EmpiricalCDF) Name() string { return c.name }

// maxFlowSize caps sampled flow sizes: converting a float beyond int64
// range is implementation-specific in Go, so the clamp keeps Sample total
// even for pathological (huge-anchor) distributions.
const maxFlowSize = int64(1) << 62

// toSize converts an interpolated size to a positive flow size in bytes.
func toSize(v float64) int64 {
	if !(v > 1) { // also catches NaN from degenerate interpolation
		return 1
	}
	if v > float64(maxFlowSize) {
		return maxFlowSize
	}
	return int64(v)
}

// Sample draws one flow size in bytes, always in [1, maxFlowSize].
func (c *EmpiricalCDF) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	pts := c.points
	if u <= pts[0].Prob {
		// Below the first anchor: interpolate from 1 byte.
		frac := u / pts[0].Prob
		return toSize(math.Exp(math.Log(pts[0].Bytes) * frac))
	}
	for i := 1; i < len(pts); i++ {
		if u <= pts[i].Prob {
			lo, hi := pts[i-1], pts[i]
			frac := (u - lo.Prob) / (hi.Prob - lo.Prob)
			logSize := math.Log(lo.Bytes) + (math.Log(hi.Bytes)-math.Log(lo.Bytes))*frac
			return toSize(math.Exp(logSize))
		}
	}
	return toSize(pts[len(pts)-1].Bytes)
}

// Mean estimates the distribution mean by numeric integration over the
// interpolated CDF (used to convert target load to arrival rate).
func (c *EmpiricalCDF) Mean() float64 {
	// Sample-free estimate: piecewise mean of the log-linear segments via
	// fine slicing.
	const steps = 10000
	var sum float64
	prevP := 0.0
	prevB := 1.0
	idx := 0
	for s := 1; s <= steps; s++ {
		u := float64(s) / steps
		for idx < len(c.points) && c.points[idx].Prob < u {
			idx++
		}
		var b float64
		if idx == 0 {
			frac := u / c.points[0].Prob
			b = math.Exp(math.Log(c.points[0].Bytes) * frac)
		} else if idx >= len(c.points) {
			b = c.points[len(c.points)-1].Bytes
		} else {
			lo, hi := c.points[idx-1], c.points[idx]
			frac := (u - lo.Prob) / (hi.Prob - lo.Prob)
			b = math.Exp(math.Log(lo.Bytes) + (math.Log(hi.Bytes)-math.Log(lo.Bytes))*frac)
		}
		sum += (b + prevB) / 2 * (u - prevP)
		prevP, prevB = u, b
	}
	return sum
}

// Scaled returns a copy with all sizes multiplied by factor — used to run
// the same distribution shape at simulation-friendly scales.
func (c *EmpiricalCDF) Scaled(factor float64) *EmpiricalCDF {
	pts := make([]CDFPoint, len(c.points))
	for i, p := range c.points {
		pts[i] = CDFPoint{Bytes: math.Max(1, p.Bytes*factor), Prob: p.Prob}
	}
	return mustCDF(fmt.Sprintf("%s(x%g)", c.name, factor), pts)
}

// PoissonArrivals yields exponential inter-arrival times with the given
// mean rate (flows per second).
type PoissonArrivals struct {
	rng  *rand.Rand
	rate float64
}

// NewPoissonArrivals creates an arrival process; rate must be positive.
func NewPoissonArrivals(rng *rand.Rand, ratePerSec float64) *PoissonArrivals {
	if ratePerSec <= 0 {
		panic(fmt.Sprintf("workload: arrival rate %v", ratePerSec))
	}
	return &PoissonArrivals{rng: rng, rate: ratePerSec}
}

// Next draws the time to the next arrival.
func (p *PoissonArrivals) Next() sim.Time {
	return sim.FromSeconds(p.rng.ExpFloat64() / p.rate)
}

// ArrivalRateForLoad converts a target network load into a per-connection
// Poisson flow rate: load × capacity spread over nConns connections of
// meanFlow-byte flows.
func ArrivalRateForLoad(load float64, capacityBps int64, nConns int, meanFlowBytes float64) float64 {
	if load <= 0 || capacityBps <= 0 || nConns <= 0 || meanFlowBytes <= 0 {
		panic("workload: non-positive load parameters")
	}
	bytesPerSec := load * float64(capacityBps) / 8
	return bytesPerSec / (float64(nConns) * meanFlowBytes)
}
