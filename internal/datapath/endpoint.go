// Package datapath is the deployable userspace realization of Clove: tunnel
// endpoints over real UDP sockets that steer traffic across ECMP paths by
// varying the outer source port (one bound socket per discovered path),
// split the stream into flowlets, reflect congestion feedback in the shim
// header of reverse traffic, and adapt per-path weights exactly as the
// simulator's Clove-ECN does (the weight logic is shared code from
// internal/clove).
//
// What the paper's OVS datapath gets from the fabric — outer-header ECN
// marks — a userspace process cannot portably observe on a UDP socket, so
// each datagram carries a one-byte fabric prefix standing in for the outer
// IP ECN field; the PathEmulator (and any Clove-aware middle hop) marks it
// under queueing. DESIGN.md documents this substitution.
//
// # Performance model (PR 9)
//
// The packet path is engineered with the same zero-allocation discipline as
// the simulator's hot path:
//
//   - Each path socket is a shard: its read loop goroutine owns a
//     preallocated receive ring, its transmit side owns a preallocated send
//     ring, and receive-side observations live in shard-private state. No
//     global mutex is taken per packet.
//   - On linux/amd64 and linux/arm64, datagrams move in batches via raw
//     recvmmsg/sendmmsg syscalls (mmsg_linux.go); everywhere else — and
//     under Config.NoBatchSyscalls — a portable one-datagram-per-syscall
//     path using the allocation-free netip socket API is used instead. The
//     two paths are differential-tested byte-identical.
//   - The steady-state Send and receive paths perform zero heap
//     allocations (asserted by tests); payloads larger than a ring slot
//     take a documented allocating slow path.
//
// Ownership contract: the payload slice passed to the SetOnRecv callback
// aliases a shard-owned receive buffer and is valid only for the duration
// of the call. Callbacks that retain the payload must copy it.
package datapath

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clove/internal/clove"
	"clove/internal/sim"
	"clove/internal/wire"
)

// fabric prefix bits (stand-in for the outer IP ECN codepoint).
const (
	fabricECT = 1 << 0
	fabricCE  = 1 << 1
)

// headerLen is the datagram overhead: fabric byte + shim.
const headerLen = 1 + wire.SttShimLen

// shim version for this datapath.
const shimVersion = 1

// shim Flags bit marking a keepalive/feedback-only datagram.
const shimFlagBare = 1 << 5

// MaxPayload is the largest payload the shim's 16-bit length field can
// describe. Larger payloads are rejected with ErrPayloadTooLarge instead of
// being silently truncated to len mod 65536 and garbled at the peer.
const MaxPayload = 65535

// Ring and buffer defaults (see Config.Batch / Config.BufSize).
const (
	DefaultBatch   = 32
	DefaultBufSize = 2048
)

// ErrPayloadTooLarge is returned by Send/Enqueue for payloads over
// MaxPayload bytes.
var ErrPayloadTooLarge = errors.New("datapath: payload exceeds 65535 bytes")

// errNoRemote is returned when transmitting before a remote is configured
// (Start with a remote, or Retarget on a receive-only endpoint).
var errNoRemote = errors.New("datapath: no remote configured (call Start or Retarget first)")

// errNotStarted is returned by Retarget before Start.
var errNotStarted = errors.New("datapath: not started (call Start first)")

// probeExpiry bounds how long an unanswered probe stays in the in-flight
// table before ProbePaths prunes it (a lost probe would otherwise leak its
// entry forever).
const probeExpiry = 30 * time.Second

// Read-loop error backoff bounds: a persistent socket error must not
// busy-spin the shard goroutine, so consecutive failures sleep with
// exponential backoff between these bounds.
const (
	errBackoffMin = time.Millisecond
	errBackoffMax = 100 * time.Millisecond
)

// Config parameterizes an endpoint.
type Config struct {
	// Paths is the number of distinct outer source ports (= sockets) used.
	Paths int
	// FlowletGap splits the outgoing stream into flowlets.
	FlowletGap time.Duration
	// RelayInterval rate-limits feedback relays per path.
	RelayInterval time.Duration
	// Beta is the weight reduction on congestion feedback.
	Beta float64
	// Batch is the depth of each shard's preallocated send and receive
	// rings: the maximum datagrams moved by one batched syscall and the
	// coalescing bound for Enqueue. 0 means DefaultBatch.
	Batch int
	// BufSize is the capacity of one ring slot (fabric byte + shim +
	// payload). Payloads that do not fit a slot are sent through an
	// allocating slow path; received datagrams larger than a slot are
	// truncated by the kernel and counted as decode errors. 0 means
	// DefaultBufSize.
	BufSize int
	// NoBatchSyscalls forces the portable one-datagram-per-syscall I/O
	// path even on platforms where recvmmsg/sendmmsg batching is
	// available. Used by differential tests and apples-to-apples
	// benchmarks.
	NoBatchSyscalls bool
	// NoSegmentation disables UDP GSO/GRO on the batched path (one
	// super-datagram per flush segmented by the kernel), leaving plain
	// sendmmsg/recvmmsg. Only meaningful where batched syscalls are in
	// use; support is probed per socket at Start and degrades silently.
	NoSegmentation bool
}

// DefaultConfig returns LAN-scale defaults.
func DefaultConfig() Config {
	return Config{
		Paths:         4,
		FlowletGap:    500 * time.Microsecond,
		RelayInterval: 250 * time.Microsecond,
		Beta:          1.0 / 3.0,
		Batch:         DefaultBatch,
		BufSize:       DefaultBufSize,
	}
}

// Stats counts endpoint activity.
type Stats struct {
	Sent, Received   int64
	CEObserved       int64
	FeedbackSent     int64
	FeedbackReceived int64
	Flowlets         int64
	DecodeErrors     int64
	// SocketErrors counts receive/transmit syscall failures (excluding
	// clean shutdown). A persistently erroring socket backs off instead of
	// spinning; this counter makes that visible.
	SocketErrors   int64
	ProbesSent     int64
	ProbesAnswered int64
	ProbeEchoes    int64
}

// Endpoint is one side of a Clove tunnel.
type Endpoint struct {
	cfg     Config
	batch   int
	bufSize int

	shards  []*pathShard
	ports   []uint16 // local source ports, one per path
	portIdx []int16  // dense port -> shard index + 1 (0 = unknown)

	// remoteAP is the current transmit target, nil until Start installs one
	// (receive-only endpoints stay nil until Retarget). It is an atomic
	// pointer so Retarget can re-point a live endpoint without stalling the
	// packet path: shards load it once per flush.
	remoteAP atomic.Pointer[netip.AddrPort]
	started  atomic.Bool

	// Hot-reloadable knobs (SetFlowletGap / SetRelayInterval), read on the
	// send path as single atomic loads so reconfiguration never contends
	// with traffic.
	flowletGapNs atomic.Int64
	relayNs      atomic.Int64

	onRecv atomic.Pointer[func(payload []byte)]
	start  time.Time

	// Send-path state: flowlet tracking and the feedback-relay cursor.
	// This lock is never taken by the per-packet receive path.
	sendMu   sync.Mutex
	lastSend time.Time
	curPort  uint16
	flowlet  uint32
	fbShard  int // round-robin cursor over shards for feedback relay

	// curPortA mirrors curPort for lock-free reads from receive shards
	// (probe answering).
	curPortA atomic.Uint32

	// The weight table is read-mostly from the send path (NextPort per
	// flowlet) and written only on feedback arrival, so it sits behind its
	// own small mutex rather than the send-path lock.
	wmu     sync.Mutex
	weights *clove.WeightTable

	// path-quality probing (ProbePaths).
	probeMu  sync.Mutex
	probeSeq uint32
	probes   map[uint32]probeState
	rtts     map[uint16]*rttSample

	// Send-side counters (the receive side counts per shard).
	sent         atomic.Int64
	flowlets     atomic.Int64
	feedbackSent atomic.Int64
	probesSent   atomic.Int64

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// NewEndpoint creates an endpoint bound to cfg.Paths UDP sockets on
// localIP (use "127.0.0.1" for loopback tests; port 0 picks free ports).
func NewEndpoint(localIP string, cfg Config) (*Endpoint, error) {
	if cfg.Paths <= 0 {
		return nil, fmt.Errorf("datapath: need at least one path, got %d", cfg.Paths)
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	bufSize := cfg.BufSize
	if bufSize <= 0 {
		bufSize = DefaultBufSize
	}
	if bufSize < headerLen+1 {
		bufSize = headerLen + 1
	}
	e := &Endpoint{
		cfg:     cfg,
		batch:   batch,
		bufSize: bufSize,
		portIdx: make([]int16, 1<<16),
		start:   time.Now(),
		closed:  make(chan struct{}),
	}
	for i := 0; i < cfg.Paths; i++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(localIP)})
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("datapath: bind path %d: %w", i, err)
		}
		// Large socket buffers absorb scheduling gaps between batched
		// drains; best-effort (the OS may clamp).
		conn.SetReadBuffer(4 << 20)
		conn.SetWriteBuffer(4 << 20)
		sh, err := newPathShard(e, i, conn)
		if err != nil {
			conn.Close()
			e.Close()
			return nil, fmt.Errorf("datapath: shard %d: %w", i, err)
		}
		e.shards = append(e.shards, sh)
		e.ports = append(e.ports, sh.port)
		e.portIdx[sh.port] = int16(i + 1)
	}
	wcfg := clove.WeightTableConfig{
		Beta:         cfg.Beta,
		Floor:        0.02,
		CongestedAge: sim.FromDuration(4 * cfg.RelayInterval),
		UtilAge:      sim.FromDuration(8 * cfg.RelayInterval),
	}
	e.weights = clove.NewWeightTable(wcfg, e.ports)
	e.flowletGapNs.Store(int64(cfg.FlowletGap))
	e.relayNs.Store(int64(cfg.RelayInterval))
	return e, nil
}

// SetOnRecv installs the handler for decapsulated tenant payloads. Safe to
// call at any time, including after Start.
//
// Ownership: the payload aliases a receive-ring buffer owned by the
// delivering shard and is only valid until the callback returns; copy it to
// retain it.
func (e *Endpoint) SetOnRecv(fn func(payload []byte)) {
	if fn == nil {
		e.onRecv.Store(nil)
		return
	}
	e.onRecv.Store(&fn)
}

// Ports returns the endpoint's local source ports (its path identifiers).
func (e *Endpoint) Ports() []uint16 { return append([]uint16(nil), e.ports...) }

// BatchSyscallsSupported reports whether this platform has the batched
// recvmmsg/sendmmsg fast path compiled in (Config.NoBatchSyscalls opts a
// single endpoint out of it at runtime).
func BatchSyscallsSupported() bool { return batchSyscallsAvailable }

// Weights returns the current path-weight snapshot.
func (e *Endpoint) Weights() map[uint16]float64 {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	return e.weights.Weights()
}

// PathWeight is one path's share of the weighted round-robin, in the
// deterministic sorted form returned by WeightsSorted.
type PathWeight struct {
	Port   uint16  `json:"port"`
	Weight float64 `json:"weight"`
}

// WeightsSorted returns the path weights sorted by port. Weights is a map,
// so ranging over it is nondeterministic run-to-run; anything printed or
// serialized (the cloved stats line, the /stats admin endpoint) uses this
// form instead.
func (e *Endpoint) WeightsSorted() []PathWeight {
	w := e.Weights()
	out := make([]PathWeight, 0, len(w))
	for port, weight := range w {
		out = append(out, PathWeight{Port: port, Weight: weight})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Port < out[j].Port })
	return out
}

// SetFlowletGap hot-reloads the flowlet inter-packet gap. Safe concurrently
// with traffic; takes effect on the next Send. Non-positive values are
// ignored (the gap must stay meaningful for flowlet splitting).
func (e *Endpoint) SetFlowletGap(d time.Duration) {
	if d > 0 {
		e.flowletGapNs.Store(int64(d))
	}
}

// FlowletGap returns the current flowlet inter-packet gap.
func (e *Endpoint) FlowletGap() time.Duration {
	return time.Duration(e.flowletGapNs.Load())
}

// SetRelayInterval hot-reloads the feedback relay rate limit. Safe
// concurrently with traffic. Zero means "relay as fast as feedback is
// observed"; negative values are ignored. The weight table's staleness
// windows (CongestedAge/UtilAge) are fixed at construction from the initial
// Config.RelayInterval.
func (e *Endpoint) SetRelayInterval(d time.Duration) {
	if d >= 0 {
		e.relayNs.Store(int64(d))
	}
}

// RelayInterval returns the current feedback relay rate limit.
func (e *Endpoint) RelayInterval() time.Duration {
	return time.Duration(e.relayNs.Load())
}

// RemoteAddr returns the current transmit target, or "" for a receive-only
// endpoint.
func (e *Endpoint) RemoteAddr() string {
	if ap := e.remoteAP.Load(); ap != nil {
		return ap.String()
	}
	return ""
}

// Stats returns a snapshot of the counters, aggregated across shards.
func (e *Endpoint) Stats() Stats {
	s := Stats{
		Sent:         e.sent.Load(),
		Flowlets:     e.flowlets.Load(),
		FeedbackSent: e.feedbackSent.Load(),
		ProbesSent:   e.probesSent.Load(),
	}
	for _, sh := range e.shards {
		s.Received += sh.stats.received.Load()
		s.CEObserved += sh.stats.ceObserved.Load()
		s.FeedbackReceived += sh.stats.feedbackReceived.Load()
		s.DecodeErrors += sh.stats.decodeErrors.Load()
		s.SocketErrors += sh.stats.socketErrors.Load()
		s.ProbesAnswered += sh.stats.probesAnswered.Load()
		s.ProbeEchoes += sh.stats.probeEchoes.Load()
	}
	return s
}

// resolveRemote resolves a host:port into the unmapped netip form the
// socket paths use (4-in-6 ::ffff:a.b.c.d is unmapped so WriteToUDPAddrPort
// accepts the address on IPv4 sockets).
func resolveRemote(remote string) (netip.AddrPort, error) {
	addr, err := net.ResolveUDPAddr("udp", remote)
	if err != nil {
		return netip.AddrPort{}, fmt.Errorf("datapath: resolve %q: %w", remote, err)
	}
	ap := addr.AddrPort()
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()), nil
}

// Start begins receiving on all paths and, when remote is non-empty,
// connects the tunnel's transmit side to it (the peer's path-0 port or a
// fabric/emulator ingress). With remote == "" the endpoint starts
// receive-only: Send/Enqueue fail with a "no remote" error until Retarget
// installs a target. Calling Start again on a started endpoint delegates to
// Retarget, so operated callers can treat it as "ensure running, aimed
// here".
func (e *Endpoint) Start(remote string) error {
	if e.started.Load() {
		if remote == "" {
			return nil
		}
		return e.Retarget(remote)
	}
	if remote != "" {
		ap, err := resolveRemote(remote)
		if err != nil {
			return err
		}
		e.remoteAP.Store(&ap)
	}
	for _, sh := range e.shards {
		// The batched I/O machinery bakes a sockaddr into its send headers;
		// a receive-only endpoint aims it at the shard's own local address
		// until Retarget rewrites it (nothing is transmitted before then).
		target := e.remoteAP.Load()
		var ap netip.AddrPort
		if target != nil {
			ap = *target
		} else {
			lap := sh.conn.LocalAddr().(*net.UDPAddr).AddrPort()
			ap = netip.AddrPortFrom(lap.Addr().Unmap(), lap.Port())
		}
		if err := sh.initIO(ap); err != nil {
			return fmt.Errorf("datapath: path %d I/O setup: %w", sh.idx, err)
		}
	}
	for _, sh := range e.shards {
		e.wg.Add(1)
		go sh.readLoop()
	}
	e.started.Store(true)
	return nil
}

// Retarget re-points a live endpoint's transmit side at a new remote
// without dropping the sockets, the read loops, or any accumulated path
// state (weights, RTT samples, flowlet position) — the hot-reload half of
// operated serving. Frames already enqueued are flushed to the old remote
// first so no queued datagram is silently redirected mid-batch.
func (e *Endpoint) Retarget(remote string) error {
	if !e.started.Load() {
		return errNotStarted
	}
	ap, err := resolveRemote(remote)
	if err != nil {
		return err
	}
	var first error
	for _, sh := range e.shards {
		sh.txMu.Lock()
		if ferr := sh.flushLocked(); ferr != nil && !errors.Is(ferr, errNoRemote) && first == nil {
			first = ferr
		}
		if sh.bio != nil {
			if rerr := sh.bio.retarget(ap); rerr != nil && first == nil {
				first = rerr
			}
		}
		sh.txMu.Unlock()
	}
	e.remoteAP.Store(&ap)
	return first
}

// Drain performs the graceful-shutdown half of the endpoint contract: flush
// every shard's pending transmit ring to the wire, then close the sockets
// and wait — bounded by timeout — for the read loops to exit. A zero or
// negative timeout waits indefinitely (plain Close semantics). On timeout
// the endpoint is still closing in the background; Drain just stops
// waiting and reports it.
func (e *Endpoint) Drain(timeout time.Duration) error {
	flushErr := e.Flush()
	if errors.Is(flushErr, errNoRemote) {
		flushErr = nil // receive-only: nothing pending to flush
	}
	done := make(chan error, 1)
	go func() { done <- e.Close() }()
	if timeout <= 0 {
		if err := <-done; err != nil && flushErr == nil {
			flushErr = err
		}
		return flushErr
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case err := <-done:
		if err != nil && flushErr == nil {
			flushErr = err
		}
		return flushErr
	case <-t.C:
		return fmt.Errorf("datapath: drain: close did not complete within %v", timeout)
	}
}

// now returns monotonic time as sim.Time for the shared weight logic.
func (e *Endpoint) now() sim.Time { return sim.FromDuration(time.Since(e.start)) }

// shardFor maps a local path port to its shard via the dense index.
func (e *Endpoint) shardFor(port uint16) *pathShard {
	if i := e.portIdx[port]; i > 0 {
		return e.shards[i-1]
	}
	return nil
}

// Send encapsulates payload and transmits it on the current flowlet's path,
// piggybacking pending feedback. It flushes the path's send ring, so the
// datagram (and any batch built up by Enqueue) is on the wire when Send
// returns.
func (e *Endpoint) Send(payload []byte) error { return e.send(payload, true) }

// Enqueue is Send's batching variant: the datagram is placed in its path's
// preallocated send ring and the ring is flushed with one batched syscall
// when it fills (Config.Batch datagrams) or when Send/Flush is called.
// High-throughput callers use Enqueue in their inner loop and Flush at
// natural boundaries.
func (e *Endpoint) Enqueue(payload []byte) error { return e.send(payload, false) }

func (e *Endpoint) send(payload []byte, flush bool) error {
	if len(payload) > MaxPayload {
		return ErrPayloadTooLarge
	}
	e.sendMu.Lock()
	nowT := time.Now()
	if e.lastSend.IsZero() || nowT.Sub(e.lastSend) > time.Duration(e.flowletGapNs.Load()) {
		e.wmu.Lock()
		e.curPort = e.weights.NextPort()
		e.wmu.Unlock()
		e.curPortA.Store(uint32(e.curPort))
		e.flowlet++
		e.flowlets.Add(1)
	}
	e.lastSend = nowT
	port := e.curPort
	flowlet := e.flowlet
	fb := e.takeFeedbackLocked(nowT)
	e.sendMu.Unlock()
	err := e.transmitOpt(port, flowlet, fb, payload, 0, flush)
	if err != nil {
		// Not counted as sent: a drain-time caller comparing Stats().Sent
		// against the receiver's delivery count must not see frames that
		// never made it to a socket.
		return err
	}
	e.sent.Add(1)
	if fb.Valid {
		e.feedbackSent.Add(1)
	}
	return nil
}

// Flush pushes every shard's pending send ring to the wire. It returns the
// first error encountered (all shards are still flushed).
func (e *Endpoint) Flush() error {
	var first error
	for _, sh := range e.shards {
		sh.txMu.Lock()
		if err := sh.flushLocked(); err != nil && first == nil {
			first = err
		}
		sh.txMu.Unlock()
	}
	return first
}

// transmit builds and immediately sends a datagram out the socket bound to
// port (control traffic: keepalives, probes, probe echoes).
func (e *Endpoint) transmit(port uint16, flowlet uint32, fb wire.Feedback, payload []byte, extraFlags uint8) error {
	return e.transmitOpt(port, flowlet, fb, payload, extraFlags, true)
}

// transmitOpt encodes one datagram into the port's send ring and flushes it
// if requested (or if the ring filled).
func (e *Endpoint) transmitOpt(port uint16, flowlet uint32, fb wire.Feedback, payload []byte, extraFlags uint8, flush bool) error {
	if e.remoteAP.Load() == nil {
		return errNoRemote
	}
	sh := e.shardFor(port)
	if sh == nil {
		return fmt.Errorf("datapath: unknown path port %d", port)
	}
	frameLen := headerLen + len(payload)

	sh.txMu.Lock()
	defer sh.txMu.Unlock()
	if frameLen > e.bufSize {
		// Slow path for oversize payloads: flush what is queued so order
		// holds, then send from a one-off buffer. This allocates; size
		// BufSize for the workload to stay on the zero-alloc path.
		if err := sh.flushLocked(); err != nil {
			return err
		}
		buf := make([]byte, frameLen)
		encodeFrame(buf, port, flowlet, fb, payload, extraFlags)
		return sh.writeOne(buf)
	}
	slot := sh.txBufs[sh.txCnt]
	n := encodeFrame(slot[:frameLen], port, flowlet, fb, payload, extraFlags)
	sh.txLen[sh.txCnt] = n
	sh.txCnt++
	if flush || sh.txCnt == len(sh.txBufs) {
		return sh.flushLocked()
	}
	return nil
}

// encodeFrame writes fabric byte + shim + payload into dst (sized by the
// caller) and returns the frame length. Zero allocations.
func encodeFrame(dst []byte, port uint16, flowlet uint32, fb wire.Feedback, payload []byte, extraFlags uint8) int {
	shim := wire.SttShim{
		Version:    shimVersion,
		Flags:      extraFlags,
		FlowletID:  flowlet,
		Feedback:   fb,
		PathPort:   port,
		PayloadLen: uint16(len(payload)),
	}
	dst[0] = fabricECT
	shim.Put(dst[1:])
	n := copy(dst[headerLen:], payload)
	return headerLen + n
}

// handleFrame processes one received datagram on sh's goroutine. b aliases
// the shard's receive ring (or the portable read buffer); everything that
// escapes this call must be copied.
func (e *Endpoint) handleFrame(sh *pathShard, b []byte, srcPort uint16) {
	if len(b) < headerLen {
		sh.stats.decodeErrors.Add(1)
		return
	}
	fabric := b[0]
	var shim wire.SttShim
	if _, err := shim.Unmarshal(b[1:]); err != nil || shim.Version != shimVersion {
		sh.stats.decodeErrors.Add(1)
		return
	}
	payload := b[headerLen:]
	if int(shim.PayloadLen) != len(payload) {
		sh.stats.decodeErrors.Add(1)
		return
	}

	switch {
	case shim.Flags&shimFlagProbe != 0:
		e.handleProbe(sh, &shim)
		return
	case shim.Flags&shimFlagProbeEcho != 0:
		e.handleProbeEcho(sh, &shim)
		return
	}

	// The shim restates the sender's outer source port so path attribution
	// survives middle hops that rewrite the outer header (the emulator, a
	// NAT). Direct tunnels could use the datagram source; the shim is
	// authoritative.
	peerPort := shim.PathPort
	if peerPort == 0 {
		peerPort = srcPort
	}

	sh.stats.received.Add(1)
	if fabric&fabricCE != 0 {
		sh.stats.ceObserved.Add(1)
		sh.noteCE(peerPort)
	}
	if shim.Feedback.Valid {
		sh.stats.feedbackReceived.Add(1)
		e.wmu.Lock()
		if shim.Feedback.ECN {
			e.weights.OnCongestion(shim.Feedback.Port, e.now())
		}
		if shim.Feedback.HasUtil {
			e.weights.OnUtilization(shim.Feedback.Port, shim.Feedback.Util, e.now())
		}
		e.wmu.Unlock()
	}
	if recv := e.onRecv.Load(); recv != nil && shim.Flags&shimFlagBare == 0 {
		(*recv)(payload)
	}
}

// takeFeedbackLocked picks one due observation for piggybacking. Selection
// is deterministic: shards are visited round-robin from a persistent
// cursor, and within a shard entries are round-robin in first-observed
// order, so every congested peer path gets relayed in bounded turns (a Go
// map iteration here would relay an arbitrary one). Caller holds sendMu.
func (e *Endpoint) takeFeedbackLocked(now time.Time) wire.Feedback {
	ns := len(e.shards)
	for k := 0; k < ns; k++ {
		idx := e.fbShard + k
		if idx >= ns {
			idx -= ns
		}
		if port, ok := e.shards[idx].takeFeedbackRR(now, time.Duration(e.relayNs.Load())); ok {
			e.fbShard = idx + 1
			if e.fbShard >= ns {
				e.fbShard = 0
			}
			return wire.Feedback{Valid: true, Port: port, ECN: true}
		}
	}
	return wire.Feedback{}
}

// Keepalive sends a payload-less datagram (feedback carrier / BFD-style
// liveness) on every path. A no-op on a receive-only endpoint.
func (e *Endpoint) Keepalive() {
	if e.remoteAP.Load() == nil {
		return
	}
	e.sendMu.Lock()
	fb := e.takeFeedbackLocked(time.Now())
	e.sendMu.Unlock()
	if fb.Valid {
		e.feedbackSent.Add(1)
	}
	for _, port := range e.ports {
		e.transmit(port, 0, fb, nil, shimFlagBare)
		fb = wire.Feedback{}
	}
}

// Close shuts down all sockets and waits for readers to exit. Idempotent
// and safe to call concurrently; every call waits for the readers.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.closed)
		for _, sh := range e.shards {
			sh.conn.Close()
		}
	})
	e.wg.Wait()
	return nil
}
