package cluster

import (
	"clove/internal/clove"
	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/tcp"
	"clove/internal/telemetry"
)

// tableVisitor is implemented by the Clove policies that keep per-destination
// weight tables (CloveECN, CloveINT); other schemes simply have no weight
// stream.
type tableVisitor interface {
	VisitTables(func(packet.HostID, *clove.WeightTable))
}

// setupTelemetry builds and arms the run's tracer when Config.Telemetry is
// set. All polled streams iterate deterministic structures — the topology's
// link list, the host-indexed vswitch slice, sorted destination tables, the
// connection open-order list — never Go maps, so the captured records (and
// the exported trace bytes) are a pure function of the seed regardless of
// worker count or process. When Config.Telemetry is nil this is a no-op and
// every telemetry call site in the hot path stays behind its single nil
// check.
func (c *Cluster) setupTelemetry() {
	if c.Cfg.Telemetry == nil {
		return
	}
	tr := telemetry.NewTracer(c.Sim, *c.Cfg.Telemetry)
	c.Trace = tr

	links := c.LS.Links()
	for _, l := range links {
		l.SetTrace(tr)
	}
	for _, v := range c.VSwitches {
		v.SetTrace(tr)
	}

	// Stream: link queue occupancy plus cumulative ECN marks and drops, for
	// every link in topology build order.
	tr.AddSampler(func(now sim.Time) {
		for _, l := range links {
			st := l.Stats()
			tr.QueueSample(now, l.ID(), l.Name(), l.QueueLen(), st.ECNMarks, st.Drops+st.DownDrops)
		}
	})

	// Stream: per-destination path weights, INT utilizations, and congestion
	// ages for every source hypervisor running a weight-table policy.
	tr.AddSampler(func(now sim.Time) {
		for src, v := range c.VSwitches {
			tv, ok := v.Policy().(tableVisitor)
			if !ok {
				continue
			}
			srcID := packet.HostID(src)
			tv.VisitTables(func(dst packet.HostID, t *clove.WeightTable) {
				t.VisitStates(func(p clove.PathState) {
					age := sim.Time(-1) // never congested
					if p.LastCongested > 0 {
						age = now - p.LastCongested
					}
					tr.WeightSample(now, srcID, dst, p.Port, p.Weight, p.Util, age)
				})
			})
		}
	})

	// Stream: sender cwnd/ssthresh/RTO/outstanding for every open connection
	// (MPTCP samples each subflow). connList is in open order; the conns map
	// iterates in randomized order and must not drive sampling.
	tr.AddSampler(func(now sim.Time) {
		for _, conn := range c.connList {
			if conn.mp != nil {
				for _, sub := range conn.mp.Subflows() {
					sampleSender(tr, now, sub)
				}
				continue
			}
			sampleSender(tr, now, conn.snd)
		}
	})

	tr.Start()
}

func sampleSender(tr *telemetry.Tracer, now sim.Time, s *tcp.Sender) {
	tr.CwndSample(now, s.Flow(), s.Cwnd(), s.Ssthresh(), s.RTO(), s.Outstanding())
}
