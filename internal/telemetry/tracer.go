package telemetry

import (
	"clove/internal/packet"
	"clove/internal/sim"
)

// Config parameterizes a Tracer.
type Config struct {
	// Interval is the periodic sampling interval for the polled streams
	// (queue occupancy, path weights, cwnd, sim load). 0 means the default
	// of 100µs — about one unloaded fabric RTT at testbed scale.
	Interval sim.Time
	// MaxSamples bounds each stream's ring buffer; when a stream overflows,
	// the oldest records are overwritten (the drop count is exported as a
	// telemetry.dropped.* metric). 0 means the default of 16384.
	MaxSamples int
}

// DefaultInterval is the sampling interval used when Config.Interval is 0.
const DefaultInterval = 100 * sim.Microsecond

// DefaultMaxSamples is the per-stream ring bound when Config.MaxSamples is 0.
const DefaultMaxSamples = 16384

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = DefaultMaxSamples
	}
	return c
}

// RetxKind classifies a retransmission event.
type RetxKind uint8

// Retransmission kinds recorded by the tcp stream.
const (
	// RetxFast is a fast retransmit (dupack-triggered, including the
	// partial-ACK retransmissions of NewReno recovery).
	RetxFast RetxKind = iota
	// RetxTimeout is an RTO expiry (go-back-N restart).
	RetxTimeout
)

func (k RetxKind) String() string {
	if k == RetxTimeout {
		return "timeout"
	}
	return "fast"
}

// QueueSample is one polled observation of a link's egress queue.
type QueueSample struct {
	T        sim.Time
	Link     packet.LinkID
	Name     string
	QLen     int
	ECNMarks int64 // cumulative marks on this link so far
	Drops    int64 // cumulative queue-overflow + link-down drops
}

// WeightSample is one polled observation of one path's state in a source
// hypervisor's weight table.
type WeightSample struct {
	T            sim.Time
	Src, Dst     packet.HostID
	Port         uint16
	Weight       float64
	Util         float64
	CongestedAge sim.Time // now - LastCongested; -1 = never congested
}

// CwndSample is one polled observation of a TCP sender.
type CwndSample struct {
	T           sim.Time
	Flow        packet.FiveTuple
	Cwnd        float64 // segments
	Ssthresh    float64 // segments
	RTO         sim.Time
	Outstanding int64 // unacknowledged bytes
}

// RetxEvent is one retransmission event on a sender.
type RetxEvent struct {
	T    sim.Time
	Flow packet.FiveTuple
	Seq  int64
	Kind RetxKind
}

// FlowletSample records one *completed* flowlet: a new flowlet (or nothing —
// the final flowlet of a flow has no closing record) ends the previous one,
// whose size and the idle gap that terminated it are reported here.
type FlowletSample struct {
	T       sim.Time
	Flow    packet.FiveTuple
	ID      uint32 // the completed flowlet's ID
	Port    uint16 // the encap source port it was pinned to
	Packets int64
	Bytes   int64
	Gap     sim.Time // idle gap that ended it
}

// FCTSample is one completed application job.
type FCTSample struct {
	T        sim.Time // completion time
	Src, Dst packet.HostID
	Size     int64
	FCT      sim.Time
}

// SimSample is one polled observation of the event engine.
type SimSample struct {
	T         sim.Time
	Processed uint64
	Pending   int
	FreeList  int
}

// ring is a bounded append-only buffer: it grows like a slice up to cap
// records, then wraps, overwriting the oldest (dropped counts the
// overwrites). snapshot returns retained records oldest-first.
type ring[T any] struct {
	buf     []T
	max     int
	head    int // index of the oldest record once wrapped
	dropped int64
}

func (r *ring[T]) push(v T) {
	if len(r.buf) < r.max {
		r.buf = append(r.buf, v)
		return
	}
	r.buf[r.head] = v
	r.head++
	if r.head == r.max {
		r.head = 0
	}
	r.dropped++
}

func (r *ring[T]) snapshot() []T {
	if r.head == 0 {
		return r.buf
	}
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// Tracer records a run's telemetry. A nil *Tracer is the disabled state:
// every method is a nil-receiver no-op, so call sites need no guard beyond
// the one nil check the method itself performs.
type Tracer struct {
	sim *sim.Simulator
	cfg Config
	reg Registry

	queues   ring[QueueSample]
	weights  ring[WeightSample]
	cwnds    ring[CwndSample]
	retx     ring[RetxEvent]
	flowlets ring[FlowletSample]
	fcts     ring[FCTSample]
	sims     ring[SimSample]

	samplers []func(now sim.Time)
	started  bool
	cancel   func()
}

// NewTracer creates a tracer bound to the run's simulator. Call AddSampler
// to register polled streams, then Start to arm the sampling ticker.
func NewTracer(s *sim.Simulator, cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	t := &Tracer{sim: s, cfg: cfg}
	t.queues.max = cfg.MaxSamples
	t.weights.max = cfg.MaxSamples
	t.cwnds.max = cfg.MaxSamples
	t.retx.max = cfg.MaxSamples
	t.flowlets.max = cfg.MaxSamples
	t.fcts.max = cfg.MaxSamples
	t.sims.max = cfg.MaxSamples
	return t
}

// Interval returns the effective sampling interval.
func (t *Tracer) Interval() sim.Time {
	if t == nil {
		return 0
	}
	return t.cfg.Interval
}

// Counter resolves a typed counter handle by name at wiring time. On a nil
// tracer it returns a nil handle, whose Add/Inc are no-ops.
func (t *Tracer) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	return t.reg.Counter(name)
}

// Gauge resolves a typed gauge handle by name at wiring time (nil handle on
// a nil tracer).
func (t *Tracer) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	return t.reg.Gauge(name)
}

// Registry exposes the run's metric registry (export, tests).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return &t.reg
}

// AddSampler registers a polled stream producer, invoked every Interval in
// registration order (registration order is wiring order, which is
// deterministic, so records interleave identically across runs).
func (t *Tracer) AddSampler(fn func(now sim.Time)) {
	if t == nil {
		return
	}
	t.samplers = append(t.samplers, fn)
}

// Start arms the sampling ticker. Idempotent; no-op on a nil tracer.
func (t *Tracer) Start() {
	if t == nil || t.started {
		return
	}
	t.started = true
	t.cancel = t.sim.Ticker(t.cfg.Interval, t.tick)
}

// Stop cancels the sampling ticker (the tracer's records stay exportable).
func (t *Tracer) Stop() {
	if t == nil || t.cancel == nil {
		return
	}
	t.cancel()
	t.cancel = nil
	t.started = false
}

func (t *Tracer) tick() {
	now := t.sim.Now()
	t.sims.push(SimSample{
		T: now, Processed: t.sim.Processed(),
		Pending: t.sim.Pending(), FreeList: t.sim.FreeEvents(),
	})
	for _, fn := range t.samplers {
		fn(now)
	}
}

// QueueSample records one link-queue observation.
func (t *Tracer) QueueSample(now sim.Time, link packet.LinkID, name string, qlen int, ecnMarks, drops int64) {
	if t == nil {
		return
	}
	t.queues.push(QueueSample{T: now, Link: link, Name: name, QLen: qlen, ECNMarks: ecnMarks, Drops: drops})
}

// WeightSample records one path-weight observation.
func (t *Tracer) WeightSample(now sim.Time, src, dst packet.HostID, port uint16, weight, util float64, congestedAge sim.Time) {
	if t == nil {
		return
	}
	t.weights.push(WeightSample{T: now, Src: src, Dst: dst, Port: port, Weight: weight, Util: util, CongestedAge: congestedAge})
}

// CwndSample records one TCP-sender observation.
func (t *Tracer) CwndSample(now sim.Time, flow packet.FiveTuple, cwnd, ssthresh float64, rto sim.Time, outstanding int64) {
	if t == nil {
		return
	}
	t.cwnds.push(CwndSample{T: now, Flow: flow, Cwnd: cwnd, Ssthresh: ssthresh, RTO: rto, Outstanding: outstanding})
}

// Retransmit records a retransmission event.
func (t *Tracer) Retransmit(now sim.Time, flow packet.FiveTuple, seq int64, kind RetxKind) {
	if t == nil {
		return
	}
	t.retx.push(RetxEvent{T: now, Flow: flow, Seq: seq, Kind: kind})
}

// Flowlet records a completed flowlet.
func (t *Tracer) Flowlet(now sim.Time, flow packet.FiveTuple, id uint32, port uint16, packets, bytes int64, gap sim.Time) {
	if t == nil {
		return
	}
	t.flowlets.push(FlowletSample{T: now, Flow: flow, ID: id, Port: port, Packets: packets, Bytes: bytes, Gap: gap})
}

// FCT records a completed application job.
func (t *Tracer) FCT(now sim.Time, src, dst packet.HostID, size int64, fct sim.Time) {
	if t == nil {
		return
	}
	t.fcts.push(FCTSample{T: now, Src: src, Dst: dst, Size: size, FCT: fct})
}

// Weights returns the retained weight samples oldest-first (tests).
func (t *Tracer) Weights() []WeightSample {
	if t == nil {
		return nil
	}
	return t.weights.snapshot()
}

// FCTs returns the retained FCT samples oldest-first (tests).
func (t *Tracer) FCTs() []FCTSample {
	if t == nil {
		return nil
	}
	return t.fcts.snapshot()
}

// Queues returns the retained queue samples oldest-first (tests).
func (t *Tracer) Queues() []QueueSample {
	if t == nil {
		return nil
	}
	return t.queues.snapshot()
}

// Cwnds returns the retained sender samples oldest-first (tests).
func (t *Tracer) Cwnds() []CwndSample {
	if t == nil {
		return nil
	}
	return t.cwnds.snapshot()
}

// Flowlets returns the retained flowlet samples oldest-first (tests).
func (t *Tracer) Flowlets() []FlowletSample {
	if t == nil {
		return nil
	}
	return t.flowlets.snapshot()
}

// Retransmits returns the retained retransmit events oldest-first (tests).
func (t *Tracer) Retransmits() []RetxEvent {
	if t == nil {
		return nil
	}
	return t.retx.snapshot()
}
