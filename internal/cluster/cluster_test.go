package cluster

import (
	"testing"

	"clove/internal/netem"
	"clove/internal/packet"
	"clove/internal/sim"
)

// smallTopo shrinks the fabric to 4 hosts per leaf at full 10G link rate,
// preserving the paper's non-oversubscription ratio. Full rate keeps the
// queueing-delay-to-RTT ratio faithful; simulation cost scales with packet
// count (flow sizes and job counts), not bandwidth.
func smallTopo() netem.LeafSpineConfig {
	return netem.ScaledTestbed(1.0, 4) // 10 Gbps hosts, 10 Gbps trunks
}

func smallWS(load float64) WebSearchParams {
	return WebSearchParams{
		Load:       load,
		TotalJobs:  40,
		SizeScale:  0.02, // mean ~32KB
		MaxSimTime: 120 * sim.Second,
	}
}

func TestWebSearchRunsEveryScheme(t *testing.T) {
	for _, scheme := range AllSchemes() {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			c := New(Config{Seed: 7, Topo: smallTopo(), Scheme: scheme})
			res := c.RunWebSearch(smallWS(0.4))
			if res.Completed == 0 {
				t.Fatalf("no jobs completed (issued %d)", res.Issued)
			}
			if res.TimedOut {
				t.Errorf("run timed out: %d/%d", res.Completed, res.Issued)
			}
			if c.Recorder.Count() != res.Completed {
				t.Errorf("recorder has %d, completed %d", c.Recorder.Count(), res.Completed)
			}
			if c.Recorder.Mean() <= 0 {
				t.Error("non-positive mean FCT")
			}
		})
	}
}

func TestWebSearchAsymmetricEveryScheme(t *testing.T) {
	for _, scheme := range []Scheme{SchemeECMP, SchemeCloveECN, SchemeCONGA, SchemePresto} {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			c := New(Config{
				Seed: 8, Topo: smallTopo(), Scheme: scheme,
				AsymmetricFailure:  true,
				PrestoIdealWeights: scheme == SchemePresto,
			})
			res := c.RunWebSearch(smallWS(0.3))
			if res.Completed == 0 || res.TimedOut {
				t.Fatalf("asym run failed: %+v", res)
			}
		})
	}
}

func TestCloveECNBeatsECMPUnderAsymmetryAtHighLoad(t *testing.T) {
	// The paper's headline: under asymmetry at high load, Clove-ECN's FCT
	// is far lower than ECMP's. Use a modest scale but real contention.
	run := func(scheme Scheme) float64 {
		c := New(Config{Seed: 11, Topo: smallTopo(), Scheme: scheme, AsymmetricFailure: true})
		res := c.RunWebSearch(WebSearchParams{
			Load: 0.65, TotalJobs: 400, SizeScale: 0.05,
			MaxSimTime: 300 * sim.Second,
		})
		if res.Completed < res.Issued*8/10 {
			t.Fatalf("%s: only %d/%d completed", scheme, res.Completed, res.Issued)
		}
		return c.Recorder.Mean()
	}
	ecmp := run(SchemeECMP)
	cloveECN := run(SchemeCloveECN)
	t.Logf("asym 60%% load: ecmp=%.4fs clove-ecn=%.4fs", ecmp, cloveECN)
	if cloveECN >= ecmp {
		t.Errorf("Clove-ECN (%.4fs) not better than ECMP (%.4fs) under asymmetry", cloveECN, ecmp)
	}
}

func TestProberDiscoveryPathsMatchOracle(t *testing.T) {
	// The same cluster with prober vs oracle must install port sets that
	// map to the same set of first-hop links.
	firstHops := func(useProber bool) map[packet.LinkID]bool {
		c := New(Config{Seed: 9, Topo: smallTopo(), Scheme: SchemeCloveECN, UseProber: useProber})
		pairs := [][2]packet.HostID{{0, 4}}
		c.SetupPaths(pairs)
		c.Sim.RunUntil(sim.Second) // let the prober finish a round
		ports := c.DiscoveredPorts(0, 4)
		if len(ports) == 0 {
			t.Fatalf("no ports (prober=%v)", useProber)
		}
		hops := map[packet.LinkID]bool{}
		leaf := c.LS.Leaves[0]
		for _, port := range ports {
			p := &packet.Packet{Encap: &packet.Encap{SrcHyp: 0, DstHyp: 4, SrcPort: port, DstPort: 7471}}
			hops[leaf.RoutePreview(p).ID()] = true
		}
		return hops
	}
	oracle := firstHops(false)
	probed := firstHops(true)
	if len(oracle) != 4 || len(probed) != 4 {
		t.Errorf("first-hop coverage: oracle=%d probed=%d, want 4", len(oracle), len(probed))
	}
}

func TestIncastRuns(t *testing.T) {
	for _, scheme := range []Scheme{SchemeCloveECN, SchemeEdgeFlowlet, SchemeMPTCP} {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			c := New(Config{Seed: 10, Topo: smallTopo(), Scheme: scheme})
			res := c.RunIncast(IncastParams{
				Fanout: 3, ResponseBytes: 100_000, Requests: 5,
				MaxSimTime: 120 * sim.Second,
			})
			if res.TimedOut || res.Completed != 5 {
				t.Fatalf("incast failed: %+v", res)
			}
			if res.GoodputBps <= 0 {
				t.Error("no goodput")
			}
			if res.Bytes < 5*100_000*9/10 {
				t.Errorf("bytes = %d", res.Bytes)
			}
		})
	}
}

func TestIncastFanoutHurtsMPTCPMoreThanClove(t *testing.T) {
	run := func(scheme Scheme, fanout int) float64 {
		c := New(Config{Seed: 12, Topo: smallTopo(), Scheme: scheme})
		res := c.RunIncast(IncastParams{
			Fanout: fanout, ResponseBytes: 400_000, Requests: 8,
			MaxSimTime: 300 * sim.Second,
		})
		if res.TimedOut {
			t.Fatalf("%s fanout %d timed out", scheme, fanout)
		}
		return res.GoodputBps
	}
	cloveHi := run(SchemeCloveECN, 4)
	mptcpHi := run(SchemeMPTCP, 4)
	t.Logf("incast fanout 4: clove=%.1f Mbps mptcp=%.1f Mbps", cloveHi/1e6, mptcpHi/1e6)
	if mptcpHi > cloveHi*1.5 {
		t.Errorf("MPTCP (%.0f) should not dominate Clove (%.0f) under incast", mptcpHi, cloveHi)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		c := New(Config{Seed: 5, Topo: smallTopo(), Scheme: SchemeCloveECN})
		c.RunWebSearch(smallWS(0.4))
		return c.Recorder.Mean()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed gave different means: %v vs %v", a, b)
	}
	c := New(Config{Seed: 6, Topo: smallTopo(), Scheme: SchemeCloveECN})
	c.RunWebSearch(smallWS(0.4))
	if c.Recorder.Mean() == run() {
		t.Error("different seeds gave identical means (suspicious)")
	}
}

func TestUnknownSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown scheme")
		}
	}()
	New(Config{Seed: 1, Topo: smallTopo(), Scheme: "bogus"})
}

func TestIncastParamValidation(t *testing.T) {
	c := New(Config{Seed: 1, Topo: smallTopo(), Scheme: SchemeECMP})
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero fanout")
		}
	}()
	c.RunIncast(IncastParams{Fanout: 0, ResponseBytes: 1, Requests: 1})
}

func TestConnReuse(t *testing.T) {
	c := New(Config{Seed: 1, Topo: smallTopo(), Scheme: SchemeECMP})
	a := c.OpenConn(0, 4, 0)
	b := c.OpenConn(0, 4, 0)
	if a != b {
		t.Error("same (client,server,idx) returned distinct conns")
	}
	d := c.OpenConn(0, 4, 1)
	if d == a {
		t.Error("different idx returned same conn")
	}
}
