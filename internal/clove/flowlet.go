// Package clove implements the scheme-independent building blocks of the
// Clove load balancer (Sec. 3): software flowlet detection, smooth weighted
// round-robin path rotation, and the congestion-adaptive path-weight table
// driven by ECN or INT feedback. The hypervisor virtual switch in
// internal/vswitch composes these into the full Edge-Flowlet, Clove-ECN and
// Clove-INT schemes.
package clove

import (
	"clove/internal/packet"
	"clove/internal/sim"
)

// FlowletEntry is the per-flow state the virtual switch keeps to pin all
// packets of a flowlet to one path (encap source port).
type FlowletEntry struct {
	lastSeen sim.Time
	// Port is the encap source port this flowlet is pinned to. The caller
	// sets it when Touch reports a new flowlet.
	Port uint16
	// ID increments on every new flowlet of the flow.
	ID uint32
}

// FlowletTable detects flowlet boundaries: a new flowlet starts when a
// flow's inter-packet gap exceeds the configured gap (Sec. 3.2 recommends
// about twice the network RTT, Fig. 6 explores the sensitivity). The table
// is sized-bounded with lazy eviction of idle entries.
type FlowletTable struct {
	gap     sim.Time
	entries map[packet.FiveTuple]*FlowletEntry

	// maxEntries bounds memory; exceeded, idle entries are swept.
	maxEntries int

	flowlets int64 // total new flowlets observed
}

// DefaultMaxFlowletEntries bounds the table (paper: order of the number of
// destination hypervisors actively talked to, i.e. small).
const DefaultMaxFlowletEntries = 65536

// NewFlowletTable creates a table with the given flowlet inter-packet gap.
func NewFlowletTable(gap sim.Time) *FlowletTable {
	return &FlowletTable{
		gap:        gap,
		entries:    map[packet.FiveTuple]*FlowletEntry{},
		maxEntries: DefaultMaxFlowletEntries,
	}
}

// Gap returns the configured flowlet time gap.
func (t *FlowletTable) Gap() sim.Time { return t.gap }

// SetGap changes the flowlet gap (used by the adaptive-gap extension).
func (t *FlowletTable) SetGap(gap sim.Time) { t.gap = gap }

// Flowlets reports the total number of flowlet starts observed.
func (t *FlowletTable) Flowlets() int64 { return t.flowlets }

// Len reports the number of tracked flows.
func (t *FlowletTable) Len() int { return len(t.entries) }

// Touch records a packet of flow at time now. It returns the flow's entry
// and whether this packet starts a new flowlet (first packet of the flow, or
// idle gap exceeded). On a new flowlet the caller must choose and store the
// entry's Port; on a continuing flowlet the stored Port must be reused —
// that invariant is what keeps flowlets in order on a single path.
func (t *FlowletTable) Touch(flow packet.FiveTuple, now sim.Time) (e *FlowletEntry, isNew bool) {
	e, ok := t.entries[flow]
	if !ok {
		if len(t.entries) >= t.maxEntries {
			t.evict(now)
		}
		e = &FlowletEntry{lastSeen: now}
		t.entries[flow] = e
		t.flowlets++
		return e, true
	}
	idle := now - e.lastSeen
	e.lastSeen = now
	if idle > t.gap {
		e.ID++
		t.flowlets++
		return e, true
	}
	return e, false
}

// evict removes entries idle for more than 10 gaps. If nothing qualifies,
// the table is allowed to grow (correctness over the bound).
func (t *FlowletTable) evict(now sim.Time) {
	cutoff := now - 10*t.gap
	for k, e := range t.entries {
		if e.lastSeen < cutoff {
			delete(t.entries, k)
		}
	}
}
