package oracle

import (
	"sync"

	"clove/internal/packet"
)

// Locked adapts an Oracle for sharded runs: domain workers fire observer
// hooks concurrently, and the Oracle's maps are not safe for that, so every
// hook takes one mutex. The wrapper changes nothing about what is checked —
// each invariant is keyed on a single packet, flow, or link, whose events
// are totally ordered by the engine's barriers (ownership hand-off happens
// only through cross-domain posts), so the interleaving of unrelated keys
// under the lock cannot produce false verdicts.
//
// The per-event audit hook (Oracle.AfterEvent) is intentionally not fanned
// out to domain simulators: it only triggers the periodic live-counter
// self-audit, which Check covers at the end of the run.
type Locked struct {
	mu sync.Mutex
	o  *Oracle
}

// NewLocked wraps o.
func NewLocked(o *Oracle) *Locked { return &Locked{o: o} }

// PoolGet implements packet.Observer.
func (l *Locked) PoolGet(pkt *packet.Packet) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.PoolGet(pkt)
}

// PoolPut implements packet.Observer.
func (l *Locked) PoolPut(pkt *packet.Packet) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.PoolPut(pkt)
}

// PoolGetEncap implements packet.Observer.
func (l *Locked) PoolGetEncap(e *packet.Encap) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.PoolGetEncap(e)
}

// PoolPutEncap implements packet.Observer.
func (l *Locked) PoolPutEncap(e *packet.Encap) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.PoolPutEncap(e)
}

// LinkSetUp implements packet.Observer.
func (l *Locked) LinkSetUp(link packet.LinkID, up bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.LinkSetUp(link, up)
}

// LinkEnqueue implements packet.Observer.
func (l *Locked) LinkEnqueue(link packet.LinkID, pkt *packet.Packet, qlenBefore, queueCap, ecnK int, marked bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.LinkEnqueue(link, pkt, qlenBefore, queueCap, ecnK, marked)
}

// LinkDrop implements packet.Observer.
func (l *Locked) LinkDrop(link packet.LinkID, pkt *packet.Packet, reason packet.DropReason, qlenBefore, queueCap int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.LinkDrop(link, pkt, reason, qlenBefore, queueCap)
}

// LinkDeliver implements packet.Observer.
func (l *Locked) LinkDeliver(link packet.LinkID, pkt *packet.Packet) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.LinkDeliver(link, pkt)
}

// HostDeliver implements packet.Observer.
func (l *Locked) HostDeliver(host packet.HostID, pkt *packet.Packet) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.HostDeliver(host, pkt)
}

// StreamSent implements packet.Observer.
func (l *Locked) StreamSent(flow packet.FiveTuple, seq, end int64, rexmit bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.StreamSent(flow, seq, end, rexmit)
}

// StreamDeliver implements packet.Observer.
func (l *Locked) StreamDeliver(flow packet.FiveTuple, from, to int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.StreamDeliver(flow, from, to)
}

// FlowletPick implements packet.Observer.
func (l *Locked) FlowletPick(flow packet.FiveTuple, flowletID uint32, port uint16) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.FlowletPick(flow, flowletID, port)
}

// PolicyPaths implements packet.Observer.
func (l *Locked) PolicyPaths(src, dst packet.HostID, ports []uint16) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.o.PolicyPaths(src, dst, ports)
}
