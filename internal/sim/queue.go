package sim

import "container/heap"

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among equal timestamps
	fn  func()
	// index within the heap, maintained by heap.Interface methods, so that
	// cancellation can be O(log n). Negative once removed.
	index int
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// EventID is never issued.
type EventID struct{ ev *event }

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// remove deletes the event at index i.
func (h *eventHeap) remove(i int) {
	heap.Remove(h, i)
}
