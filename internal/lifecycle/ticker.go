package lifecycle

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Ticker is a Component that runs Tick every Interval on its own goroutine.
// Unlike the `for range time.Tick(...)` idiom it replaces, the underlying
// time.Ticker is stopped and the goroutine joined when the component stops,
// so a managed service leaks neither on shutdown.
type Ticker struct {
	// Interval between ticks; must be positive.
	Interval time.Duration
	// Tick is the periodic work. It runs on the ticker goroutine; a tick
	// that outlasts Interval delays later ticks (time.Ticker semantics).
	Tick func()

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	started  bool
}

// Init validates the configuration.
func (t *Ticker) Init(ctx context.Context) error {
	if t.Interval <= 0 {
		return errors.New("ticker: interval must be positive")
	}
	if t.Tick == nil {
		return errors.New("ticker: nil Tick func")
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	return nil
}

// Start launches the ticking goroutine.
func (t *Ticker) Start(ctx context.Context) error {
	if t.stop == nil {
		if err := t.Init(ctx); err != nil {
			return err
		}
	}
	t.started = true
	go func() {
		defer close(t.done)
		tk := time.NewTicker(t.Interval)
		defer tk.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tk.C:
				t.Tick()
			}
		}
	}()
	return nil
}

// Stop halts the ticker and waits for the goroutine (and any in-flight
// tick) to finish. Idempotent; safe before Start.
func (t *Ticker) Stop() error {
	if t.stop == nil {
		return nil // never inited
	}
	t.stopOnce.Do(func() { close(t.stop) })
	if t.started {
		<-t.done
	}
	return nil
}
