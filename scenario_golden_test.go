package clove

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenScenariosQuick pins the quick-scale output of every embedded
// scenario byte-for-byte against testdata/golden/scenarios/. As with the
// figure goldens, two passes run: serial (-j 1) under the correctness oracle
// — certifying every scripted flap, switch failure, and load ramp against
// the conservation/pool invariants — and parallel (-j 4, 4 domain workers
// inside each sharded run) without it, so the scripted timelines stay
// byte-identical at any worker count on both axes. Regenerate with
// `go test -run TestGoldenScenariosQuick -update`.
func TestGoldenScenariosQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario golden regression is minutes of simulation; skipped in -short")
	}
	passes := []struct {
		name        string
		parallelism int
		oracle      bool
		domWorkers  int
	}{
		{"serial-oracle", 1, true, 1},
		{"parallel-j4", 4, false, 4},
	}
	for _, pass := range passes {
		pass := pass
		t.Run(pass.name, func(t *testing.T) {
			for _, name := range ScenarioNames() {
				sp, err := LoadScenario(name)
				if err != nil {
					t.Fatalf("LoadScenario(%q): %v", name, err)
				}
				rows := RunScenario(sp, ScenarioOpts{
					Quick:         true,
					Parallelism:   pass.parallelism,
					Oracle:        pass.oracle,
					DomainWorkers: pass.domWorkers,
				}, nil)
				got := FormatRows(rows)
				path := filepath.Join("testdata", "golden", "scenarios", fmt.Sprintf("%s.txt", name))
				if *updateGolden && pass.name == "serial-oracle" {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatalf("update golden %s: %v", path, err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (run with -update to create): %v", err)
				}
				if got != string(want) {
					t.Errorf("scenario %s output diverges from %s (-update to accept):\n--- got ---\n%s--- want ---\n%s",
						name, path, got, want)
				}
			}
		})
	}
}
