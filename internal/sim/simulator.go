package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// maxEventFree bounds the Simulator's event free list. Recycling beyond the
// peak number of concurrently pending events buys nothing, and the cap keeps
// a burst from pinning memory for the rest of the run; surplus events are
// simply left to the garbage collector.
const maxEventFree = 1 << 15

// Simulator is a single-threaded discrete-event scheduler. It owns the
// virtual clock: time only advances when Run (or Step) pops the next event.
//
// Simulator is not safe for concurrent use; the simulated network is a
// sequential program by design so that runs are reproducible.
//
// Scheduling comes in two forms. At/After take a plain closure and are fine
// for cold paths (setup, workload arrival chains, tickers). AtCall/AfterCall
// take a static EventFunc plus two operands and do not allocate per event:
// the event structs themselves are recycled through a free list as they fire
// or are cancelled, so the per-packet event path of the network model runs
// allocation-free.
type Simulator struct {
	now    Time
	queue  eventHeap
	free   []*event
	nextID uint64
	rng    *rand.Rand

	processed uint64
	running   bool
	stopped   bool

	// onEvent, when non-nil, runs after every fired event's callback. It is
	// the simulator-side hook of the opt-in correctness oracle (the datapath
	// hooks travel through packet.Pool, which sim cannot import).
	onEvent func()
}

// New returns a Simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. All randomness
// in a run must come from here to keep runs reproducible.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Processed reports how many events have fired so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending reports how many events are scheduled but not yet fired.
func (s *Simulator) Pending() int { return len(s.queue) }

// FreeEvents reports the current size of the event free list (telemetry and
// leak tests; the list is bounded by maxEventFree).
func (s *Simulator) FreeEvents() int { return len(s.free) }

// getEvent takes a recycled event or allocates a fresh one. The returned
// event keeps its gen (incarnations accumulate) but every payload field is
// already cleared.
func (s *Simulator) getEvent() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{}
}

// putEvent recycles a fired or cancelled event. The gen bump invalidates
// every outstanding EventID for this incarnation, and clearing fn/call/a/b
// is what keeps the free list from pinning dead closures or packets across
// the (arbitrarily long) wait until reuse.
func (s *Simulator) putEvent(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.call = nil
	ev.a, ev.b = nil, nil
	ev.index = -1
	if len(s.free) < maxEventFree {
		s.free = append(s.free, ev)
	}
}

func (s *Simulator) schedule(at Time) *event {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	ev := s.getEvent()
	ev.at = at
	ev.seq = s.nextID
	s.nextID++
	heap.Push(&s.queue, ev)
	return ev
}

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: it would violate causality and always indicates a bug.
//
// The closure form allocates; use AtCall on per-packet paths.
func (s *Simulator) At(at Time, fn func()) EventID {
	ev := s.schedule(at)
	ev.fn = fn
	return EventID{ev: ev, gen: ev.gen}
}

// After schedules fn to run delay after the current time.
func (s *Simulator) After(delay Time, fn func()) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// AtCall schedules fn(a, b) at absolute time at without allocating: the
// event struct comes from the free list and fn is a static function value
// rather than a closure. Callers pass their receiver and payload through a
// and b (pointers box into interfaces allocation-free).
func (s *Simulator) AtCall(at Time, fn EventFunc, a, b any) EventID {
	ev := s.schedule(at)
	ev.call = fn
	ev.a, ev.b = a, b
	return EventID{ev: ev, gen: ev.gen}
}

// AfterCall schedules fn(a, b) delay after the current time; the
// allocation-free form of After.
func (s *Simulator) AfterCall(delay Time, fn EventFunc, a, b any) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.AtCall(s.now+delay, fn, a, b)
}

// Cancel removes a scheduled event. Cancelling an already-fired,
// already-cancelled, or otherwise stale ID is a no-op and reports false;
// generation stamps guarantee a stale ID can never cancel a later event
// that happens to reuse the same recycled struct.
func (s *Simulator) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.gen != id.gen || ev.index < 0 {
		return false
	}
	s.queue.remove(ev.index)
	s.putEvent(ev)
	return true
}

// fire pops the next event, advances the clock, and runs the callback. The
// event is recycled before the callback executes, so a callback that
// immediately reschedules reuses the struct it just vacated and the free
// list stays at the size of the peak pending set.
func (s *Simulator) fire() {
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.at
	s.processed++
	fn, call, a, b := ev.fn, ev.call, ev.a, ev.b
	s.putEvent(ev)
	if call != nil {
		call(a, b)
	} else {
		fn()
	}
	if s.onEvent != nil {
		s.onEvent()
	}
}

// SetEventHook installs (or, with nil, removes) a function invoked after
// every fired event's callback returns. Used by the correctness oracle for
// per-event audits; nil (the default) costs one predictable branch per event.
func (s *Simulator) SetEventHook(fn func()) { s.onEvent = fn }

// Step fires the single next event. It reports false when the queue is empty.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	s.fire()
	return true
}

// Run fires events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.runInternal(func() bool { return true })
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to exactly deadline. Events scheduled after deadline remain queued.
func (s *Simulator) RunUntil(deadline Time) {
	s.runInternal(func() bool { return s.queue[0].at <= deadline })
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// RunForEvents fires at most n events; useful as a watchdog in tests.
func (s *Simulator) RunForEvents(n uint64) {
	fired := uint64(0)
	s.runInternal(func() bool { fired++; return fired <= n })
}

func (s *Simulator) runInternal(cont func() bool) {
	if s.running {
		panic("sim: reentrant Run")
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for len(s.queue) > 0 && !s.stopped {
		if !cont() {
			return
		}
		s.fire()
	}
}

// Stop makes the innermost Run/RunUntil return after the current event's
// callback completes. Pending events stay queued.
func (s *Simulator) Stop() { s.stopped = true }

// Ticker invokes fn every interval, starting interval from now, until the
// returned cancel function is called. fn observes the tick time via Now.
func (s *Simulator) Ticker(interval Time, fn func()) (cancel func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker interval %v", interval))
	}
	stopped := false
	var schedule func()
	schedule = func() {
		s.After(interval, func() {
			if stopped {
				return
			}
			fn()
			if !stopped {
				schedule()
			}
		})
	}
	schedule()
	return func() { stopped = true }
}
