package wire

import "encoding/binary"

// GeneveHeaderLen is the fixed part of a Geneve header (RFC 8926); options
// follow in 4-byte multiples.
const GeneveHeaderLen = 8

// GeneveOptClove is the option class/type this implementation uses to carry
// Clove feedback as a Geneve TLV (experimental class range).
const (
	GeneveOptCloveClass = 0xff01
	GeneveOptCloveType  = 0x42
	geneveCloveOptLen   = 8 // option body: port(2) flags(1) util(1) pad(4)
)

// Geneve is a Geneve encapsulation header with optional Clove feedback
// carried as a single TLV option — the third overlay variant (after the
// STT-like shim and VXLAN) showing the feedback channel is protocol-
// agnostic as long as the encap format has extensible metadata.
type Geneve struct {
	VNI      uint32 // 24 bits
	Protocol uint16 // inner protocol (0x6558 = Ethernet)
	Critical bool
	Feedback Feedback
}

// Marshal appends the header (and the Clove option when feedback is set).
func (g *Geneve) Marshal(b []byte) []byte {
	optWords := 0
	if g.Feedback.Valid {
		optWords = (4 + geneveCloveOptLen) / 4
	}
	off := len(b)
	b = append(b, make([]byte, GeneveHeaderLen+optWords*4)...)
	p := b[off:]
	p[0] = byte(optWords) & 0x3f // version 0, opt len in words
	if g.Critical {
		p[1] = 1 << 6
	}
	binary.BigEndian.PutUint16(p[2:], g.Protocol)
	binary.BigEndian.PutUint32(p[4:], g.VNI<<8)
	if g.Feedback.Valid {
		opt := p[GeneveHeaderLen:]
		binary.BigEndian.PutUint16(opt[0:], GeneveOptCloveClass)
		opt[2] = GeneveOptCloveType
		opt[3] = geneveCloveOptLen / 4
		binary.BigEndian.PutUint16(opt[4:], g.Feedback.Port)
		var flags uint8
		if g.Feedback.ECN {
			flags |= 1
		}
		if g.Feedback.HasUtil {
			flags |= 2
			opt[7] = quantizeUtil(g.Feedback.Util)
		}
		opt[6] = flags
	}
	return b
}

// Unmarshal parses the header and any Clove option; unknown options are
// skipped. It returns bytes consumed.
func (g *Geneve) Unmarshal(b []byte) (int, error) {
	if len(b) < GeneveHeaderLen {
		return 0, ErrTruncated
	}
	if b[0]>>6 != 0 {
		return 0, ErrBadVersion
	}
	optLen := int(b[0]&0x3f) * 4
	total := GeneveHeaderLen + optLen
	if len(b) < total {
		return 0, ErrTruncated
	}
	g.Critical = b[1]&(1<<6) != 0
	g.Protocol = binary.BigEndian.Uint16(b[2:])
	g.VNI = binary.BigEndian.Uint32(b[4:]) >> 8
	g.Feedback = Feedback{}

	opts := b[GeneveHeaderLen:total]
	for len(opts) >= 4 {
		class := binary.BigEndian.Uint16(opts[0:])
		typ := opts[2]
		bodyLen := int(opts[3]&0x1f) * 4
		if len(opts) < 4+bodyLen {
			return 0, ErrBadLength
		}
		body := opts[4 : 4+bodyLen]
		if class == GeneveOptCloveClass && typ == GeneveOptCloveType && bodyLen >= 4 {
			g.Feedback.Valid = true
			g.Feedback.Port = binary.BigEndian.Uint16(body[0:])
			g.Feedback.ECN = body[2]&1 != 0
			if body[2]&2 != 0 {
				g.Feedback.HasUtil = true
				g.Feedback.Util = dequantizeUtil(body[3])
			}
		}
		opts = opts[4+bodyLen:]
	}
	return total, nil
}
