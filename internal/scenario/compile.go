package scenario

import (
	"fmt"
	"sort"

	"clove/internal/cluster"
	"clove/internal/netem"
	"clove/internal/sim"
	"clove/internal/telemetry"
)

// TopoConfig lowers the fat-tree slice onto the simulator's leaf-spine
// Clos: K/2 spines, per-tier delays, and trunks thinned by the
// oversubscription ratio so hosts×hostRate = spines×trunks×trunkRate×ratio.
// Specs with more than 2 leaves build the sharded (event-domain) fabric.
func (s *Spec) TopoConfig() netem.LeafSpineConfig {
	t := s.Topology
	return netem.LeafSpineConfig{
		Leaves:        t.Leaves,
		Spines:        t.K / 2,
		TrunksPerPair: t.TrunksPerPair,
		HostsPerLeaf:  t.HostsPerLeaf,
		HostRateBps:   int64(t.HostGbps * 1e9 * t.RateScale),
		TrunkRateBps:  int64(s.scaledTrunkBps()),
		LinkDelay:     usToSim(t.EdgeDelayUs),
		TrunkDelay:    usToSim(t.FabricDelayUs),
		QueueCap:      netem.DefaultQueueCap,
		ECNK:          20,
	}
}

// ClusterConfig builds the cluster config for one (scheme, seed) run of
// this scenario. workers sets cluster.Config.DomainWorkers — the engine
// worker count on sharded (leaves > 2) topologies, ignored on two-leaf
// ones; results are byte-identical at any value.
func (s *Spec) ClusterConfig(scheme string, seed int64, oracle bool, tcfg *telemetry.Config, workers int) cluster.Config {
	return cluster.Config{
		Seed:             seed,
		Topo:             s.TopoConfig(),
		Scheme:           cluster.Scheme(scheme),
		Oracle:           oracle,
		Telemetry:        tcfg,
		DomainWorkers:    workers,
		ServersPerClient: s.Workload.ServersPerClient,
	}
}

// MixParams lowers the workload section for cluster.RunMix.
func (s *Spec) MixParams() cluster.MixParams {
	w := s.Workload
	return cluster.MixParams{
		Load:          w.Load,
		TotalJobs:     w.TotalJobs,
		SizeScale:     w.SizeScale,
		FracWebSearch: w.Mix.WebSearch,
		FracRPC:       w.Mix.RPC,
		FracML:        w.Mix.ML,
		FracIncast:    w.Mix.Incast,
		IncastFanout:  w.IncastFanout,
		IncastBytes:   w.IncastBytes,
		MLBytes:       w.MLBytes,
		MaxSimTime:    msToSim(w.MaxTimeMs),
		Warmup:        msToSim(w.WarmupMs),
	}
}

// ActionKind is a primitive scripted operation after storm expansion.
type ActionKind string

// The primitive action kinds.
const (
	ActionLinkUp     ActionKind = "link-up"
	ActionLinkDown   ActionKind = "link-down"
	ActionLinkRate   ActionKind = "link-rate"
	ActionSwitchUp   ActionKind = "switch-up"
	ActionSwitchDown ActionKind = "switch-down"
	ActionLoadScale  ActionKind = "load-scale"
)

// Action is one primitive timeline entry: what Actions expands the event
// script (storms included) into, and exactly what InstallEvents schedules.
type Action struct {
	At      sim.Time
	Kind    ActionKind
	Link    LinkRef // link actions
	Switch  string  // switch actions
	RateBps int64   // link-rate
	Scale   float64 // load-scale
}

// String renders an action for logs and expansion tests.
func (a Action) String() string {
	switch a.Kind {
	case ActionLinkUp, ActionLinkDown:
		return fmt.Sprintf("%v %s %s-%s#%d", a.At, a.Kind, a.Link.A, a.Link.B, a.Link.Trunk)
	case ActionLinkRate:
		return fmt.Sprintf("%v %s %s-%s#%d %dbps", a.At, a.Kind, a.Link.A, a.Link.B, a.Link.Trunk, a.RateBps)
	case ActionSwitchUp, ActionSwitchDown:
		return fmt.Sprintf("%v %s %s", a.At, a.Kind, a.Switch)
	default:
		return fmt.Sprintf("%v %s %g", a.At, a.Kind, a.Scale)
	}
}

// Actions expands the event script into a flat primitive timeline, sorted by
// time (stable: expansion order breaks ties, so the schedule is fully
// deterministic). A storm staggers its links across one period and flaps
// each down for half a period at a time until the storm window closes, when
// every link is restored.
func (s *Spec) Actions() []Action {
	var acts []Action
	for i := range s.Events {
		e := &s.Events[i]
		at := msToSim(e.AtMs)
		switch e.Type {
		case EventLinkDown:
			acts = append(acts, Action{At: at, Kind: ActionLinkDown, Link: *e.Link})
		case EventLinkUp:
			acts = append(acts, Action{At: at, Kind: ActionLinkUp, Link: *e.Link})
		case EventLinkRate:
			rate := int64(e.RateGbps * 1e9 * s.Topology.RateScale)
			acts = append(acts, Action{At: at, Kind: ActionLinkRate, Link: *e.Link, RateBps: rate})
		case EventSwitchDown:
			acts = append(acts, Action{At: at, Kind: ActionSwitchDown, Switch: e.Switch})
		case EventSwitchUp:
			acts = append(acts, Action{At: at, Kind: ActionSwitchUp, Switch: e.Switch})
		case EventLoadScale:
			acts = append(acts, Action{At: at, Kind: ActionLoadScale, Scale: e.Scale})
		case EventStorm:
			acts = append(acts, expandStorm(at, e.Storm)...)
		}
	}
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].At < acts[j].At })
	return acts
}

// expandStorm lowers one storm block: link i starts flapping period*i/n into
// the storm, goes down for half a period, and comes back up — repeatedly —
// with the final recovery clamped to the storm end, so the fabric leaves the
// storm fully healed.
func expandStorm(at sim.Time, st *StormSpec) []Action {
	period := msToSim(st.PeriodMs)
	end := at + msToSim(st.DurationMs)
	n := sim.Time(len(st.Links))
	var acts []Action
	for i, link := range st.Links {
		start := at + period*sim.Time(i)/n
		for t := start; t < end; t += period {
			up := t + period/2
			if up > end {
				up = end
			}
			acts = append(acts,
				Action{At: t, Kind: ActionLinkDown, Link: link},
				Action{At: up, Kind: ActionLinkUp, Link: link},
			)
		}
	}
	return acts
}

// InstallEvents schedules the expanded timeline on the cluster; call before
// the workload driver runs (sim time 0). Each action becomes an ordinary
// deterministic simulator event — a global barrier event on sharded
// clusters, where control actions touch many domains at once — so scripted
// runs keep the oracle, telemetry, and parallel-run byte-identity
// guarantees of unscripted ones.
func (s *Spec) InstallEvents(c *cluster.Cluster) {
	for _, a := range s.Actions() {
		a := a
		c.ScheduleControl(a.At, func() { a.Apply(c) })
	}
}

// Apply performs the action on a live cluster.
func (a Action) Apply(c *cluster.Cluster) {
	switch a.Kind {
	case ActionLinkDown:
		c.LS.SetLinkPairUp(a.Link.A, a.Link.B, a.Link.Trunk, false)
	case ActionLinkUp:
		c.LS.SetLinkPairUp(a.Link.A, a.Link.B, a.Link.Trunk, true)
	case ActionLinkRate:
		c.LS.SetLinkPairRate(a.Link.A, a.Link.B, a.Link.Trunk, a.RateBps)
	case ActionSwitchDown:
		c.LS.SetSwitchUp(a.Switch, false)
	case ActionSwitchUp:
		c.LS.SetSwitchUp(a.Switch, true)
	case ActionLoadScale:
		c.SetLoadScale(a.Scale)
	default:
		panic(fmt.Sprintf("scenario: unknown action kind %q", a.Kind))
	}
}

// Quick shrinks the scenario to CI scale: at most 4 leaves and 4 hosts per
// leaf, 240 jobs, and one seed. Arrival rates track the bisection, so
// per-client load — and with it the event-script timeline — stays
// meaningful. Sharded specs stay sharded (the leaf floor is 4 when leaves
// exceed 2), so the quick run exercises the same domain-mode machinery;
// events referencing leaves the shrink removed are dropped.
func (s *Spec) Quick() *Spec {
	q := s.Clone()
	if q.Topology.Leaves > 4 {
		q.Topology.Leaves = 4
		q.Events = dropMissingLeafEvents(q.Events, 4)
	}
	if q.Topology.HostsPerLeaf > 4 {
		q.Topology.HostsPerLeaf = 4
	}
	if q.Workload.TotalJobs > 240 {
		q.Workload.TotalJobs = 240
	}
	if len(q.Seeds) > 1 {
		q.Seeds = q.Seeds[:1]
	}
	if q.Workload.IncastFanout > q.Topology.HostsPerLeaf {
		q.Workload.IncastFanout = q.Topology.HostsPerLeaf
	}
	if q.Topology.Leaves > 2 && (q.Workload.ServersPerClient == 0 || q.Workload.ServersPerClient > 4) {
		q.Workload.ServersPerClient = 4
	}
	return q
}

// dropMissingLeafEvents removes link events (and storm links) whose leaf
// endpoint no longer exists after a Quick shrink to `leaves` leaves; storms
// left with no links, and the emptied events, are dropped entirely.
func dropMissingLeafEvents(events []EventSpec, leaves int) []EventSpec {
	present := func(l *LinkRef) bool {
		for i := 1; i <= leaves; i++ {
			name := fmt.Sprintf("L%d", i)
			if l.A == name || l.B == name {
				return true
			}
		}
		return false
	}
	var out []EventSpec
	for _, e := range events {
		if e.Link != nil && !present(e.Link) {
			continue
		}
		if e.Storm != nil {
			var keep []LinkRef
			for _, l := range e.Storm.Links {
				if present(&l) {
					keep = append(keep, l)
				}
			}
			if len(keep) == 0 {
				continue
			}
			e.Storm.Links = keep
		}
		out = append(out, e)
	}
	return out
}

func usToSim(us float64) sim.Time { return sim.Time(us * float64(sim.Microsecond)) }
func msToSim(ms float64) sim.Time { return sim.Time(ms * float64(sim.Millisecond)) }
