package experiments

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"clove/internal/cluster"
	"clove/internal/scenario"
	"clove/internal/stats"
)

// ScenarioOpts configures one scenario run, mirroring the Scale knobs the
// figure sweeps use: the same worker pool, oracle, and telemetry wiring, so
// scenario output is byte-identical at any parallelism.
type ScenarioOpts struct {
	// Quick shrinks the spec to CI scale (scenario.Spec.Quick) first.
	Quick bool
	// Parallelism bounds the worker pool (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// Oracle installs the correctness oracle on every run; a violation
	// panics with the verdict.
	Oracle bool
	// Telemetry, when non-nil, exports each run's trace under its Dir.
	Telemetry *TraceSpec
	// DomainWorkers is the per-run engine worker count on sharded
	// (leaves > 2) scenarios: 0/1 = serial windows, N = N workers. Like
	// Parallelism it never changes output bytes, only wall-clock time.
	DomainWorkers int
}

func (o ScenarioOpts) workers() int {
	return Scale{Parallelism: o.Parallelism}.Workers()
}

// RunScenario executes every (scheme, seed) run of the spec — identical
// scripted timeline in each — and aggregates one Row per scheme. Row order
// follows the spec's scheme list whatever the parallelism.
func RunScenario(sp *scenario.Spec, opts ScenarioOpts, progress io.Writer) []Row {
	if opts.Quick {
		sp = sp.Quick()
	}
	figure := "scenario/" + sp.Name
	seeds := sp.Seeds
	outs := make([]runOutcome, len(sp.Schemes)*len(seeds))
	tracker := newProgressTracker(progress, len(outs))
	runJobs(opts.workers(), len(outs), func(i int) {
		scheme := sp.Schemes[i/len(seeds)]
		seed := seeds[i%len(seeds)]
		start := time.Now()
		c := cluster.New(sp.ClusterConfig(scheme, seed, opts.Oracle, opts.Telemetry.config(), opts.DomainWorkers))
		sp.InstallEvents(c)
		res := c.RunMix(sp.MixParams())
		if err := c.CheckOracle(); err != nil {
			panic(fmt.Sprintf("%s %s seed=%d: %v", figure, scheme, seed, err))
		}
		if opts.Telemetry != nil {
			point := fmt.Sprintf("load%03d", int(sp.Workload.Load*100+0.5))
			dir := filepath.Join(opts.Telemetry.Dir,
				traceRunDir("scn-"+sp.Name, cluster.Scheme(scheme), "", point, seed))
			if err := c.ExportTraces(dir); err != nil {
				panic(fmt.Sprintf("%s %s seed=%d: trace export: %v", figure, scheme, seed, err))
			}
		}
		outs[i] = runOutcome{sum: c.Recorder.Summarize(), timedOut: res.TimedOut}
		tracker.jobDone(fmt.Sprintf("%s %s seed=%d", figure, scheme, seed), time.Since(start))
	})

	rows := make([]Row, 0, len(sp.Schemes))
	for si, scheme := range sp.Schemes {
		row := Row{
			Figure: figure, Scheme: scheme, Load: sp.Workload.Load,
			Replicates: len(seeds),
		}
		means := make([]float64, 0, len(seeds))
		p99s := make([]float64, 0, len(seeds))
		mices := make([]float64, 0, len(seeds))
		elephs := make([]float64, 0, len(seeds))
		for k := range seeds {
			o := outs[si*len(seeds)+k]
			if o.timedOut {
				row.TimedOutRuns++
			}
			means = append(means, o.sum.MeanSec)
			p99s = append(p99s, o.sum.P99Sec)
			mices = append(mices, o.sum.MiceMeanSec)
			elephs = append(elephs, o.sum.ElephMeanSec)
			row.Samples += o.sum.Count
		}
		row.MeanFCTSec, row.MeanFCTStderrSec = stats.MeanStderr(means)
		row.P99FCTSec, row.P99FCTStderrSec = stats.MeanStderr(p99s)
		row.MiceFCTSec, _ = stats.MeanStderr(mices)
		row.ElephFCTSec, _ = stats.MeanStderr(elephs)
		rows = append(rows, row)
		tracker.rowf("%s %-13s mean=%.4fs±%.4f p99=%.4fs n=%d\n",
			figure, row.Scheme, row.MeanFCTSec, row.MeanFCTStderrSec, row.P99FCTSec, row.Samples)
	}
	return rows
}
