package wire

import "encoding/binary"

// SttShimLen is the length of the STT-like shim header that follows the
// outer TCP header. Its layout mirrors the fields the paper's Fig. 3 relies
// on: a flags byte, the tenant VLAN/context area, and — crucially for Clove
// — a 64-bit context word whose reserved bits carry the reflected path
// feedback (observed source port, an ECN-seen bit, and a quantized path
// utilization).
const SttShimLen = 18

// Shim flag bits.
const (
	ShimFlagECNFeedback = 1 << 0 // Context carries valid feedback
	ShimFlagUtilValid   = 1 << 1 // Context utilization byte is meaningful
	ShimFlagINTRequest  = 1 << 2 // request per-hop utilization stamping
)

// Feedback is the Clove metadata reflected between hypervisors inside the
// shim context bits.
type Feedback struct {
	Valid bool
	Port  uint16 // forward-direction encap source port being reported
	ECN   bool   // the reported path saw a CE mark
	// Util is the max path utilization in [0,1]; quantized to 1/255 steps.
	HasUtil bool
	Util    float64
}

// SttShim is the overlay shim between the outer transport header and the
// encapsulated tenant frame.
type SttShim struct {
	Version    uint8
	Flags      uint8
	FlowletID  uint32 // flowlet/flowcell sequence (Presto-style reassembly)
	VNI        uint32 // tenant network identifier (24 bits used)
	Feedback   Feedback
	PayloadLen uint16
	// PathPort is the sender's outer source port, restated inside the shim
	// so the receiver can attribute congestion observations to the forward
	// path even when a middle hop rewrites the outer header.
	PathPort uint16
}

// Marshal appends the shim to b.
func (s *SttShim) Marshal(b []byte) []byte {
	off := len(b)
	b = append(b, make([]byte, SttShimLen)...)
	s.Put(b[off:])
	return b
}

// Put marshals the shim into the first SttShimLen bytes of p, which the
// caller must have sized, and returns SttShimLen. Unlike Marshal it never
// grows a slice, so a preallocated wire buffer round-trips with zero
// allocations — this is the datapath's steady-state encoder.
func (s *SttShim) Put(p []byte) int {
	_ = p[SttShimLen-1]
	flags := s.Flags
	var fbPort uint16
	var fbUtil uint8
	if s.Feedback.Valid {
		flags |= ShimFlagECNFeedback
		fbPort = s.Feedback.Port
		if s.Feedback.HasUtil {
			flags |= ShimFlagUtilValid
			fbUtil = quantizeUtil(s.Feedback.Util)
		}
	}
	p[0] = s.Version
	p[1] = flags
	binary.BigEndian.PutUint16(p[2:], s.PayloadLen)
	binary.BigEndian.PutUint32(p[4:], s.FlowletID)
	binary.BigEndian.PutUint32(p[8:], s.VNI&0xffffff)
	// Context word: feedback port, ECN bit, quantized utilization.
	binary.BigEndian.PutUint16(p[12:], fbPort)
	if s.Feedback.Valid && s.Feedback.ECN {
		p[14] = 1
	} else {
		p[14] = 0
	}
	p[15] = fbUtil
	binary.BigEndian.PutUint16(p[16:], s.PathPort)
	return SttShimLen
}

// Unmarshal parses the shim and returns bytes consumed.
func (s *SttShim) Unmarshal(b []byte) (int, error) {
	if len(b) < SttShimLen {
		return 0, ErrTruncated
	}
	s.Version = b[0]
	s.Flags = b[1] &^ (ShimFlagECNFeedback | ShimFlagUtilValid)
	s.PayloadLen = binary.BigEndian.Uint16(b[2:])
	s.FlowletID = binary.BigEndian.Uint32(b[4:])
	s.VNI = binary.BigEndian.Uint32(b[8:]) & 0xffffff
	s.Feedback = Feedback{}
	if b[1]&ShimFlagECNFeedback != 0 {
		s.Feedback.Valid = true
		s.Feedback.Port = binary.BigEndian.Uint16(b[12:])
		s.Feedback.ECN = b[14]&1 != 0
		if b[1]&ShimFlagUtilValid != 0 {
			s.Feedback.HasUtil = true
			s.Feedback.Util = dequantizeUtil(b[15])
		}
	}
	s.PathPort = binary.BigEndian.Uint16(b[16:])
	return SttShimLen, nil
}

func quantizeUtil(u float64) uint8 {
	if u <= 0 {
		return 0
	}
	if u >= 1 {
		return 255
	}
	return uint8(u*255 + 0.5)
}

func dequantizeUtil(q uint8) float64 { return float64(q) / 255 }

// VxlanHeaderLen is the fixed VXLAN header length (RFC 7348 layout).
const VxlanHeaderLen = 8

// Vxlan is a VXLAN header; Clove in a UDP-based overlay steers paths with
// the outer UDP source port, and this implementation additionally uses the
// reserved bytes the way STT uses its context field (a documented deviation
// from RFC 7348, required because VXLAN has no context bits of its own).
type Vxlan struct {
	VNI      uint32
	Reserved uint8 // low reserved byte, used for the feedback ECN bit
}

// Marshal appends the 8-byte header to b.
func (v *Vxlan) Marshal(b []byte) []byte {
	off := len(b)
	b = append(b, make([]byte, VxlanHeaderLen)...)
	p := b[off:]
	p[0] = 0x08 // I flag: VNI valid
	binary.BigEndian.PutUint32(p[4:], v.VNI<<8)
	p[7] = v.Reserved
	return b
}

// Unmarshal parses the header and returns bytes consumed.
func (v *Vxlan) Unmarshal(b []byte) (int, error) {
	if len(b) < VxlanHeaderLen {
		return 0, ErrTruncated
	}
	if b[0]&0x08 == 0 {
		return 0, ErrBadVersion
	}
	v.VNI = binary.BigEndian.Uint32(b[4:]) >> 8
	v.Reserved = b[7]
	return VxlanHeaderLen, nil
}
