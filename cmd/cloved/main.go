// Command cloved runs a real userspace Clove tunnel endpoint over UDP:
// multiple local sockets (one per ECMP path, distinguished by outer source
// port), flowlet switching, and in-band congestion feedback with adaptive
// path weights. Lines read from stdin are sent through the tunnel; received
// payloads are printed to stdout. Two instances pointed at each other (or
// at a path emulator) form a bidirectional overlay.
//
// Example (two terminals):
//
//	cloved -listen 127.0.0.1 -paths 4
//	  -> prints "paths: [p1 p2 p3 p4]"; pick the first port P
//	cloved -listen 127.0.0.1 -paths 4 -remote 127.0.0.1:P
//	  -> then point the first instance at this one's first port
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"clove/internal/datapath"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1", "local IP to bind path sockets on")
		remote  = flag.String("remote", "", "remote endpoint addr (host:port); empty = receive-only until set")
		paths   = flag.Int("paths", 4, "number of path sockets (outer source ports)")
		gap     = flag.Duration("flowlet-gap", 500*time.Microsecond, "flowlet inter-packet gap")
		relay   = flag.Duration("relay", 250*time.Microsecond, "feedback relay interval")
		stats   = flag.Duration("stats", 2*time.Second, "stats print interval (0 disables)")
		keepint = flag.Duration("keepalive", 100*time.Millisecond, "keepalive/feedback-carrier interval")
		batch   = flag.Int("batch", 0, "datagrams per batched syscall / ring depth (0 = default)")
		bufsize = flag.Int("bufsize", 0, "transmit ring slot size in bytes (0 = default)")
		noBatch = flag.Bool("no-batch", false, "force one-datagram-per-syscall I/O (portable path)")
		noSeg   = flag.Bool("no-gso", false, "disable UDP GSO/GRO segmentation offload")
	)
	flag.Parse()

	cfg := datapath.DefaultConfig()
	cfg.Paths = *paths
	cfg.FlowletGap = *gap
	cfg.RelayInterval = *relay
	if *batch > 0 {
		cfg.Batch = *batch
	}
	if *bufsize > 0 {
		cfg.BufSize = *bufsize
	}
	cfg.NoBatchSyscalls = *noBatch
	cfg.NoSegmentation = *noSeg

	ep, err := datapath.NewEndpoint(*listen, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloved:", err)
		os.Exit(1)
	}
	defer ep.Close()
	fmt.Printf("paths: %v (batched syscalls: %v)\n", ep.Ports(),
		datapath.BatchSyscallsSupported() && !*noBatch)

	ep.SetOnRecv(func(p []byte) { fmt.Printf("<- %s\n", p) })

	if *remote == "" {
		fmt.Println("no -remote given; waiting (receive-only)")
		select {}
	}
	if err := ep.Start(*remote); err != nil {
		fmt.Fprintln(os.Stderr, "cloved:", err)
		os.Exit(1)
	}

	if *keepint > 0 {
		go func() {
			for range time.Tick(*keepint) {
				ep.Keepalive()
				ep.ProbePaths()
			}
		}()
	}
	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				st := ep.Stats()
				fmt.Printf("-- sent=%d recv=%d flowlets=%d ce=%d fb(tx=%d rx=%d) errs(sock=%d decode=%d) weights=%v\n",
					st.Sent, st.Received, st.Flowlets, st.CEObserved,
					st.FeedbackSent, st.FeedbackReceived,
					st.SocketErrors, st.DecodeErrors, ep.Weights())
				for _, r := range ep.PathRTTs() {
					if r.Samples > 0 {
						fmt.Printf("   path %d: rtt=%v (%d samples, %v old)\n", r.Port, r.RTT, r.Samples, r.Age.Round(time.Millisecond))
					}
				}
			}
		}()
	}

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if err := ep.Send(sc.Bytes()); err != nil {
			fmt.Fprintln(os.Stderr, "cloved: send:", err)
		}
	}
}
