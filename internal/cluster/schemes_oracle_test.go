package cluster

import (
	"fmt"
	"testing"
)

// TestNewSchemesOracleClean runs the stateless (concury) and in-network
// (charon) contrast schemes — and their hidden differential references —
// under the full oracle in both execution modes. Concury additionally arms
// the per-connection-consistency invariant (see connConsistent), so a clean
// CheckOracle here proves no connection moved ports while its pick remained
// installed.
func TestNewSchemesOracleClean(t *testing.T) {
	for _, scheme := range []Scheme{SchemeConcury, SchemeConcuryRef, SchemeCharon, SchemeCharonRef} {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			c := New(Config{Seed: 7, Topo: smallTopo(), Scheme: scheme, Oracle: true})
			res := c.RunWebSearch(smallWS(0.5))
			if res.Completed == 0 || res.TimedOut {
				t.Fatalf("legacy: bad run %+v", res)
			}
			if err := c.CheckOracle(); err != nil {
				t.Errorf("legacy: oracle: %v", err)
			}

			c2 := New(Config{Seed: 7, Topo: shardedTopo(), Scheme: scheme,
				Oracle: true, DomainWorkers: 4, ServersPerClient: 4})
			res2 := c2.RunMix(shardedMix())
			if res2.Completed == 0 || res2.TimedOut {
				t.Fatalf("sharded: bad run %+v", res2)
			}
			if err := c2.CheckOracle(); err != nil {
				t.Errorf("sharded: oracle: %v", err)
			}
		})
	}
}

// TestNewSchemesWorkerInvariance pins the PR 7 determinism promise for the
// new schemes: a sharded run's full FCT sample stream is byte-identical at
// 1 and 4 workers (satellite: seed-permutation and -workers invariance).
func TestNewSchemesWorkerInvariance(t *testing.T) {
	for _, scheme := range []Scheme{SchemeConcury, SchemeCharon} {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			stream := func(workers int) []string {
				c := New(Config{Seed: 31, Topo: shardedTopo(), Scheme: scheme,
					Oracle: true, DomainWorkers: workers, ServersPerClient: 4})
				res := c.RunMix(shardedMix())
				if res.Completed == 0 || res.TimedOut {
					t.Fatalf("workers=%d: bad run %+v", workers, res)
				}
				if err := c.CheckOracle(); err != nil {
					t.Fatalf("workers=%d: oracle: %v", workers, err)
				}
				var out []string
				for _, s := range c.Recorder.Samples() {
					out = append(out, fmt.Sprintf("%d:%d", s.Size, int64(s.FCT)))
				}
				return out
			}
			base := stream(1)
			got := stream(4)
			if len(base) != len(got) {
				t.Fatalf("sample counts differ: %d vs %d", len(base), len(got))
			}
			for i := range base {
				if base[i] != got[i] {
					t.Fatalf("sample %d differs: %s vs %s", i, base[i], got[i])
				}
			}
		})
	}
}
