// Package packet defines the in-simulator packet model shared by all
// network elements: inner (tenant VM) TCP/IP headers, the overlay
// encapsulation header the hypervisor adds, and optional telemetry
// metadata (INT, CONGA).
//
// The simulator moves packets as structs for speed; the byte-level codecs in
// internal/wire mirror these fields one-to-one for the real datapath.
//
// # Packet ownership and Release
//
// Hot simulation paths recycle packets through a per-simulation Pool rather
// than allocating per segment. The ownership rule is: a packet belongs to
// whichever component currently holds it, and the component that takes it
// OUT of the simulated network — the TCP endpoint that consumes a delivered
// segment, the link or switch that drops it, the vswitch that terminally
// handles a control packet — must release it with Pool.Put. Components that
// forward a packet (links, switches, vswitch encap/decap) pass ownership
// along and must not touch it afterwards; components that intentionally
// retain one (a reorder buffer, a test capturing delivery) take ownership
// and simply never Put it. After Put the packet's contents are zeroed and
// the struct may be reissued by the next Get, so holding a reference across
// a Put is a use-after-release bug.
package packet

import (
	"fmt"
	"strconv"
)

// HostID identifies a physical server (and its hypervisor) in the fabric.
type HostID int32

// NodeID identifies any forwarding element (switch or host NIC).
type NodeID int32

// LinkID identifies a unidirectional link in the fabric.
type LinkID int32

// Proto is the inner transport protocol number.
type Proto uint8

// Transport protocols used by the tenant traffic model.
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

// FiveTuple is the classic connection identifier. In the simulator, IP
// addresses are host IDs.
type FiveTuple struct {
	Src, Dst         HostID
	SrcPort, DstPort uint16
	Proto            Proto
}

// Reverse returns the tuple of the opposite direction.
func (t FiveTuple) Reverse() FiveTuple {
	return FiveTuple{Src: t.Dst, Dst: t.Src, SrcPort: t.DstPort, DstPort: t.SrcPort, Proto: t.Proto}
}

// String formats the tuple as "src:port>dst:port/proto". It is hand-rolled
// on strconv so trace and debug paths cost one allocation (the returned
// string) instead of fmt's boxing of every operand.
func (t FiveTuple) String() string {
	// Worst case: two int32s (11 runes each), three uint16s (5 each),
	// four separators: 41 bytes. 48 keeps the array comfortably stack-sized.
	var buf [48]byte
	b := strconv.AppendInt(buf[:0], int64(t.Src), 10)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(t.SrcPort), 10)
	b = append(b, '>')
	b = strconv.AppendInt(b, int64(t.Dst), 10)
	b = append(b, ':')
	b = strconv.AppendUint(b, uint64(t.DstPort), 10)
	b = append(b, '/')
	b = strconv.AppendUint(b, uint64(t.Proto), 10)
	return string(b)
}

// TCPFlags is the inner TCP flag set (only the bits the model needs).
type TCPFlags uint8

// TCP flag bits.
const (
	FlagSYN TCPFlags = 1 << iota
	FlagACK
	FlagFIN
	FlagECE // ECN echo, receiver -> sender
	FlagCWR // congestion window reduced, sender -> receiver
)

// Has reports whether all bits in mask are set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// Kind discriminates the roles a simulated packet can play.
type Kind uint8

// Packet kinds.
const (
	KindData      Kind = iota // tenant TCP segment (possibly with payload)
	KindProbe                 // path-discovery probe (TTL-limited)
	KindProbeEcho             // reply generated when a probe's TTL expires
	KindFeedback              // standalone Clove feedback (no reverse data to piggyback on)
)

// Wire-size constants in bytes. The simulator prices every packet at
// inner size + encap overhead so that link serialization times are realistic.
const (
	MTU            = 1500     // max inner IP datagram on the wire
	InnerHeaderLen = 54       // Ethernet(14) + IPv4(20) + TCP(20)
	EncapHeaderLen = 76       // outer Eth+IP+TCP + STT-like shim, per Fig. 3
	MaxSegment     = MTU - 40 // MSS for inner TCP: MTU - IP(20) - TCP(20)
	ProbePacketLen = 64
)

// INTMeta carries In-band Network Telemetry state accumulated hop by hop
// (Sec. 3.2, Clove-INT). Each switch raises MaxUtil to its egress link
// utilization as the packet passes.
type INTMeta struct {
	Enabled bool
	MaxUtil float64 // max egress link utilization seen so far, 0..1+
	Hops    int     // number of switches that stamped the packet
}

// Feedback is the Clove metadata the destination hypervisor reflects to the
// source inside reserved encapsulation-header bits (the STT context field,
// Sec. 4): which forward-direction source port the observation is about, and
// either a binary congestion bit (Clove-ECN) or a path utilization
// (Clove-INT).
type Feedback struct {
	Valid   bool
	Port    uint16  // encap source port of the observed forward path
	ECN     bool    // forward path experienced congestion marking
	HasUtil bool    // Util field is meaningful (Clove-INT)
	Util    float64 // max path utilization observed on the forward path
}

// Encap is the overlay encapsulation header added by the source hypervisor.
// The outer source port is Clove's path-steering knob: physical switches
// hash the outer 5-tuple for ECMP.
type Encap struct {
	SrcHyp, DstHyp HostID
	SrcPort        uint16 // rotated by the load-balancing scheme
	DstPort        uint16 // fixed per encap protocol (e.g. 7471 for STT)
	ECT            bool   // outer header is ECN-capable (set by hypervisor)
	CE             bool   // congestion experienced, set by switches
	Feedback       Feedback
	FlowletSeq     uint32 // optional flowlet/flowcell sequence (Presto reassembly)
	FlowletID      uint32
}

// Conga is the per-packet CONGA metadata (piggybacked in a custom fabric
// header in the real system). Present only when the fabric runs CONGA.
type Conga struct {
	LBTag    uint8   // uplink port chosen by the source leaf
	CEMetric float64 // max link utilization accumulated along path
	// Feedback direction: metric for the reverse leaf-to-leaf path.
	FbValid  bool
	FbLBTag  uint8
	FbMetric float64
}

// Packet is one simulated packet. Fields are grouped inner-to-outer.
type Packet struct {
	Kind Kind

	// Inner tenant headers (valid for KindData).
	Inner      FiveTuple
	Seq        int64 // first payload byte offset, TCP-style
	Ack        int64 // cumulative ACK offset
	Flags      TCPFlags
	PayloadLen int
	InnerECT   bool // tenant stack is ECN-capable
	InnerCE    bool // CE visible to the tenant stack (hypervisor-controlled)

	// Overlay encapsulation; nil before encap / after decap.
	Encap *Encap

	// Telemetry.
	INT   INTMeta
	Conga *Conga

	// Probe state (valid for KindProbe / KindProbeEcho).
	TTL       int
	ProbeID   uint32
	ProbePort uint16 // encap source port under test
	EchoNode  NodeID // switch that answered
	EchoLink  LinkID // egress link the switch chose for the probe
	HopIndex  int    // distance at which the echo was generated

	// SentAtNs is the hypervisor encapsulation timestamp in simulated
	// nanoseconds, used by the path-latency feedback variant (Sec. 7 "Use
	// of path latency": NIC timestamping + synchronized clocks). Zero when
	// not stamped.
	SentAtNs int64

	// PathTrace, when enabled on the packet, records every link traversed.
	// Used by tests and by path discovery verification; nil in normal runs.
	PathTrace []LinkID
}

// Size returns the packet's total wire size in bytes, including inner
// headers and, when present, encapsulation overhead.
func (p *Packet) Size() int {
	switch p.Kind {
	case KindProbe, KindProbeEcho, KindFeedback:
		return ProbePacketLen + EncapHeaderLen
	}
	n := InnerHeaderLen + p.PayloadLen
	if p.Encap != nil {
		n += EncapHeaderLen
	}
	return n
}

// OuterTuple returns the header fields a physical switch hashes for ECMP:
// the encapsulation 5-tuple when present, the inner 5-tuple otherwise.
func (p *Packet) OuterTuple() FiveTuple {
	if p.Encap != nil {
		return FiveTuple{
			Src:     p.Encap.SrcHyp,
			Dst:     p.Encap.DstHyp,
			SrcPort: p.Encap.SrcPort,
			DstPort: p.Encap.DstPort,
			Proto:   ProtoTCP, // STT looks like TCP to the fabric
		}
	}
	return p.Inner
}

// OuterDst returns the destination the fabric routes on.
func (p *Packet) OuterDst() HostID {
	if p.Encap != nil {
		return p.Encap.DstHyp
	}
	return p.Inner.Dst
}

// MarkCE sets the congestion-experienced bit on the outermost ECN-capable
// header and reports whether the packet was markable. Non-ECT packets are
// not marked (a real switch would drop instead; our queues still drop on
// overflow independently).
func (p *Packet) MarkCE() bool {
	if p.Encap != nil {
		if !p.Encap.ECT {
			return false
		}
		p.Encap.CE = true
		return true
	}
	if !p.InnerECT {
		return false
	}
	p.InnerCE = true
	return true
}

// CEMarked reports whether the outermost header carries a CE mark.
func (p *Packet) CEMarked() bool {
	if p.Encap != nil {
		return p.Encap.CE
	}
	return p.InnerCE
}

// Clone returns a deep copy of the packet (Encap and Conga included).
// PathTrace is copied too so the clone can diverge.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Encap != nil {
		e := *p.Encap
		q.Encap = &e
	}
	if p.Conga != nil {
		c := *p.Conga
		q.Conga = &c
	}
	if p.PathTrace != nil {
		q.PathTrace = append([]LinkID(nil), p.PathTrace...)
	}
	return &q
}

// String renders a compact human-readable description for logs and tests.
func (p *Packet) String() string {
	switch p.Kind {
	case KindProbe:
		return fmt.Sprintf("probe id=%d port=%d ttl=%d", p.ProbeID, p.ProbePort, p.TTL)
	case KindProbeEcho:
		return fmt.Sprintf("probe-echo id=%d port=%d hop=%d node=%d", p.ProbeID, p.ProbePort, p.HopIndex, p.EchoNode)
	case KindFeedback:
		if p.Encap != nil {
			return fmt.Sprintf("feedback %d->%d port=%d ecn=%v", p.Encap.SrcHyp, p.Encap.DstHyp, p.Encap.Feedback.Port, p.Encap.Feedback.ECN)
		}
		return "feedback"
	}
	return fmt.Sprintf("data %s seq=%d ack=%d len=%d flags=%03b", p.Inner, p.Seq, p.Ack, p.PayloadLen, p.Flags)
}
