//go:build linux && arm64

package datapath

// recvmmsg/sendmmsg syscall numbers (sendmmsg postdates the stdlib syscall
// table freeze, so both are spelled out per target).
const (
	sysRecvmmsg uintptr = 243
	sysSendmmsg uintptr = 269
)
