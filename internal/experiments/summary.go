package experiments

import (
	"fmt"
	"io"
	"time"

	"clove/internal/cluster"
	"clove/internal/stats"
)

// HeadlineResult reproduces the paper's headline claims as measured ratios:
//   - Clove-ECN vs ECMP average-FCT speedup on the asymmetric testbed at
//     high load (paper: 7.5x at 80%).
//   - Edge-Flowlet vs ECMP speedup (paper: 4.2x at 80%).
//   - The fraction of the ECMP→CONGA improvement Clove-ECN captures in the
//     simulation figures (paper: ~80%), and Clove-INT (paper: ~95%).
type HeadlineResult struct {
	Load                float64
	CloveVsECMP         float64 // speedup factor on asymmetric topology
	EdgeFlowletVsECMP   float64
	CloveECNGainCapture float64 // fraction of ECMP->CONGA gain, asym
	CloveINTGainCapture float64
}

// Summary runs the asymmetric comparison at one high load across the five
// simulation schemes (scheme x seed jobs on the worker pool) and derives
// the headline ratios.
func Summary(sc Scale, load float64, progress io.Writer) HeadlineResult {
	schemes := simSchemes()
	seeds := sc.Seeds
	perRun := make([]float64, len(schemes)*len(seeds))
	tracker := newProgressTracker(progress, len(perRun))
	runJobs(sc.Workers(), len(perRun), func(i int) {
		scheme := schemes[i/len(seeds)]
		seed := seeds[i%len(seeds)]
		start := time.Now()
		rec, _ := runOne(sc, sweepOpts{asym: true}, scheme, load, seed)
		perRun[i] = rec.Mean()
		tracker.jobDone(fmt.Sprintf("summary %s seed=%d", scheme, seed), time.Since(start))
	})
	means := map[cluster.Scheme]float64{}
	for si, scheme := range schemes {
		means[scheme], _ = stats.MeanStderr(perRun[si*len(seeds) : (si+1)*len(seeds)])
		tracker.rowf("summary %-13s load=%.0f%% mean=%.4fs\n", scheme, load*100, means[scheme])
	}
	return deriveHeadline(load, means)
}

// deriveHeadline turns per-scheme mean FCTs into the paper's headline
// ratios. Ratios against a zero (missing) scheme mean stay 0, and the
// gain-capture fractions are only defined when CONGA actually improves on
// ECMP (gain > 0).
func deriveHeadline(load float64, means map[cluster.Scheme]float64) HeadlineResult {
	res := HeadlineResult{Load: load}
	ecmp := means[cluster.SchemeECMP]
	conga := means[cluster.SchemeCONGA]
	if m := means[cluster.SchemeCloveECN]; m > 0 {
		res.CloveVsECMP = ecmp / m
	}
	if m := means[cluster.SchemeEdgeFlowlet]; m > 0 {
		res.EdgeFlowletVsECMP = ecmp / m
	}
	gain := ecmp - conga
	if gain > 0 {
		res.CloveECNGainCapture = (ecmp - means[cluster.SchemeCloveECN]) / gain
		res.CloveINTGainCapture = (ecmp - means[cluster.SchemeCloveINT]) / gain
	}
	return res
}

// String renders the headline comparison next to the paper's claims.
func (h HeadlineResult) String() string {
	return fmt.Sprintf(
		"at %.0f%% load (asymmetric):\n"+
			"  Clove-ECN vs ECMP speedup:    %.2fx  (paper: 1.5x-7.5x at 70-80%%)\n"+
			"  Edge-Flowlet vs ECMP speedup: %.2fx  (paper: ~4.2x at 80%%)\n"+
			"  Clove-ECN captures           %5.1f%% of ECMP->CONGA gain (paper: ~80%%)\n"+
			"  Clove-INT captures           %5.1f%% of ECMP->CONGA gain (paper: ~95%%)",
		h.Load*100, h.CloveVsECMP, h.EdgeFlowletVsECMP,
		h.CloveECNGainCapture*100, h.CloveINTGainCapture*100)
}

// Registry maps experiment IDs to their runners, for the CLI.
var Registry = map[string]func(Scale, io.Writer) []Row{
	"4b": Fig4b,
	"4c": Fig4c,
	"5a": Fig5a,
	"5b": Fig5b,
	"5c": Fig5c,
	"6":  Fig6,
	"7":  Fig7,
	"8a": Fig8a,
	"8b": Fig8b,
	"9":  Fig9,
}

// ExperimentIDs lists the registry keys in figure order.
func ExperimentIDs() []string {
	return []string{"4b", "4c", "5a", "5b", "5c", "6", "7", "8a", "8b", "9"}
}
