package cluster

import (
	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/workload"
)

// WebSearchParams configures the paper's main workload (Sec. 5): clients on
// one leaf send flows drawn from the web-search size distribution to random
// servers on the other leaf, over persistent connections, with Poisson
// arrivals tuned to a target fraction of the bisection bandwidth.
type WebSearchParams struct {
	// Load is the offered load as a fraction of the bisection bandwidth
	// (the paper sweeps 0.2–0.9).
	Load float64
	// TotalJobs across all connections (the testbed used 50K per
	// connection; simulations use scaled counts).
	TotalJobs int
	// ConnsPerClient persistent connections each client opens (testbed 1,
	// NS2 simulations 3).
	ConnsPerClient int
	// SizeScale multiplies flow sizes (1.0 = paper sizes); smaller values
	// keep packet-level simulation cheap while preserving the shape.
	SizeScale float64
	// Dist overrides the flow-size distribution (default web-search).
	Dist *workload.EmpiricalCDF
	// MaxSimTime guards against non-converging runs (default 10 min sim
	// time): the run stops and unfinished jobs are dropped from the stats.
	MaxSimTime sim.Time
	// Warmup delays the first arrivals, giving the prober (when enabled)
	// one round to install paths.
	Warmup sim.Time
}

// WebSearchResult is the outcome of one run.
type WebSearchResult struct {
	Completed int
	Issued    int
	// TimedOut reports that MaxSimTime elapsed before all jobs finished.
	TimedOut bool
}

// RunWebSearch drives the workload to completion and records every job's
// FCT in c.Recorder. Clients are the hosts of leaf 1, servers of leaf 2.
func (c *Cluster) RunWebSearch(p WebSearchParams) WebSearchResult {
	if c.Eng != nil {
		panic("cluster: RunWebSearch is single-sim only; domain-mode clusters run workloads through RunMix")
	}
	if p.ConnsPerClient == 0 {
		p.ConnsPerClient = 1
	}
	if p.SizeScale == 0 {
		p.SizeScale = 1
	}
	if p.Dist == nil {
		p.Dist = workload.WebSearch()
	}
	if p.MaxSimTime == 0 {
		p.MaxSimTime = 600 * sim.Second
	}
	dist := p.Dist
	if p.SizeScale != 1 {
		dist = dist.Scaled(p.SizeScale)
	}
	// The recorder's mice/elephant cutoffs track the size scale so scaled
	// runs still populate the paper's Fig. 5 buckets.
	c.Recorder.SetSizeScale(p.SizeScale)

	nHosts := c.Cfg.Topo.HostsPerLeaf
	rng := c.Sim.Rand()

	// Clients on leaf 1 pick random servers on leaf 2 (persistent).
	type cw struct {
		conn     *Conn
		arrivals *workload.PoissonArrivals
	}
	var conns []*cw
	var pairs [][2]packet.HostID
	nConns := nHosts * p.ConnsPerClient
	meanFlow := dist.Mean()
	rate := workload.ArrivalRateForLoad(p.Load, c.LS.BisectionBps(), nConns, meanFlow)

	// Clients pair with servers by random permutation, one permutation per
	// connection round: every server terminates exactly ConnsPerClient
	// connections, so the offered load (measured against the bisection)
	// never oversubscribes an access link by construction and the fabric
	// is the contention point — the regime the paper's load sweep studies.
	perms := make([][]int, p.ConnsPerClient)
	for k := range perms {
		perms[k] = rng.Perm(nHosts)
	}
	for ci := 0; ci < nHosts; ci++ {
		client := packet.HostID(ci)
		for k := 0; k < p.ConnsPerClient; k++ {
			server := packet.HostID(nHosts + perms[k][ci])
			conn := c.OpenConn(client, server, k)
			conns = append(conns, &cw{
				conn:     conn,
				arrivals: workload.NewPoissonArrivals(rng, rate),
			})
			pairs = append(pairs, [2]packet.HostID{client, server})
			// The server's ACK stream also benefits from discovered paths.
			pairs = append(pairs, [2]packet.HostID{server, client})
		}
	}
	c.SetupPaths(pairs)

	res := WebSearchResult{}
	jobsPerConn := p.TotalJobs / len(conns)
	if jobsPerConn == 0 {
		jobsPerConn = 1
	}
	target := jobsPerConn * len(conns)
	record := func(conn *Conn, size int64) func(sim.Time) {
		return func(fct sim.Time) {
			c.Recorder.Add(size, fct)
			if tr := c.Trace; tr != nil {
				tr.FCT(c.Sim.Now(), conn.Client, conn.Server, size, fct)
			}
			res.Completed++
			if res.Completed == target {
				c.Sim.Stop()
			}
		}
	}
	// Schedule each connection's arrival chain.
	for _, w := range conns {
		w := w
		var issue func(remaining int)
		issue = func(remaining int) {
			if remaining == 0 {
				return
			}
			size := dist.Sample(rng)
			if size <= 0 {
				size = 1
			}
			res.Issued++
			w.conn.StartJob(size, record(w.conn, size))
			c.Sim.After(w.arrivals.Next(), func() { issue(remaining - 1) })
		}
		start := p.Warmup + w.arrivals.Next()
		c.Sim.After(start, func() { issue(jobsPerConn) })
	}

	c.Sim.RunUntil(p.MaxSimTime)
	if res.Completed < res.Issued {
		res.TimedOut = true
	}
	return res
}
