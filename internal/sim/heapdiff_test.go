package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// This file drives the slab-backed 4-ary heap and an independent
// container/heap reference scheduler — the pre-slab implementation used
// through PR 3 — side by side through randomized schedule / cancel /
// reschedule workloads, asserting identical fire order and identical
// stale-ID Cancel behavior. Ordering is the strict total order (at, seq),
// so any divergence in sift logic, cancellation repair, or slot recycling
// shows up as a mismatched sequence.

// refEvent is the reference scheduler's separately allocated event struct.
type refEvent struct {
	at      Time
	seq     uint64
	payload int
	index   int // heap position; -1 once fired or cancelled
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }

func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *refHeap) Push(x any) {
	ev := x.(*refEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// refSched is a minimal binary-heap scheduler mirroring the Simulator's
// scheduling semantics: (at, seq) ordering, O(log n) cancel, stale handles
// report false.
type refSched struct {
	h      refHeap
	nextID uint64
}

func (r *refSched) schedule(at Time, payload int) *refEvent {
	ev := &refEvent{at: at, seq: r.nextID, payload: payload}
	r.nextID++
	heap.Push(&r.h, ev)
	return ev
}

func (r *refSched) cancel(ev *refEvent) bool {
	if ev.index < 0 {
		return false
	}
	heap.Remove(&r.h, ev.index)
	ev.index = -1
	return true
}

func (r *refSched) drain() []int {
	var order []int
	for len(r.h) > 0 {
		ev := heap.Pop(&r.h).(*refEvent)
		order = append(order, ev.payload)
	}
	return order
}

func TestDifferentialSchedulerVsContainerHeap(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1337} {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		s := New(seed)
		ref := &refSched{}

		type pair struct {
			id      EventID
			ref     *refEvent
			payload int
		}
		var all []*pair // every entry ever issued, including dead ones
		nextPayload := 0

		// Several rounds: schedule/cancel/reschedule churn, then drain both
		// schedulers and compare the complete fire orders. Later rounds
		// schedule on a warm (recycled, previously shrunk/grown) slab.
		for round := 0; round < 4; round++ {
			var fired []int
			note := func(a, _ any) { fired = append(fired, a.(*pair).payload) }
			base := s.Now()

			live := func() []*pair {
				out := make([]*pair, 0, len(all))
				for _, p := range all {
					if p.ref.index >= 0 {
						out = append(out, p)
					}
				}
				return out
			}

			const ops = 3000
			for op := 0; op < ops; op++ {
				switch r := rng.Intn(10); {
				case r < 5: // schedule
					p := &pair{payload: nextPayload}
					nextPayload++
					at := base + Time(rng.Intn(1000))
					p.id = s.AtCall(at, note, p, nil)
					p.ref = ref.schedule(at, p.payload)
					all = append(all, p)
				case r < 7: // cancel a random entry, live or stale
					if len(all) == 0 {
						continue
					}
					p := all[rng.Intn(len(all))]
					got, want := s.Cancel(p.id), ref.cancel(p.ref)
					if got != want {
						t.Fatalf("seed %d: Cancel(payload %d) = %v, reference says %v",
							seed, p.payload, got, want)
					}
				default: // reschedule a random live entry at a new time
					l := live()
					if len(l) == 0 {
						continue
					}
					p := l[rng.Intn(len(l))]
					got, want := s.Cancel(p.id), ref.cancel(p.ref)
					if got != want || !got {
						t.Fatalf("seed %d: reschedule-cancel(payload %d) = %v, reference %v",
							seed, p.payload, got, want)
					}
					at := base + Time(rng.Intn(1000))
					p.id = s.AtCall(at, note, p, nil)
					p.ref = ref.schedule(at, p.payload)
				}
			}

			if got, want := s.Pending(), len(ref.h); got != want {
				t.Fatalf("seed %d round %d: Pending() = %d, reference holds %d",
					seed, round, got, want)
			}
			s.Run()
			want := ref.drain()
			if len(fired) != len(want) {
				t.Fatalf("seed %d round %d: fired %d events, reference fired %d",
					seed, round, len(fired), len(want))
			}
			for i := range want {
				if fired[i] != want[i] {
					t.Fatalf("seed %d round %d: fire order diverges at %d: got payload %d, reference %d",
						seed, round, i, fired[i], want[i])
				}
			}

			// Every ID ever issued is now stale (fired or cancelled); Cancel
			// must be a no-op on all of them, in both schedulers.
			for _, p := range all {
				got, want := s.Cancel(p.id), ref.cancel(p.ref)
				if got || want {
					t.Fatalf("seed %d round %d: stale Cancel(payload %d) = %v/%v, want false/false",
						seed, round, p.payload, got, want)
				}
			}
		}
	}
}

// TestDifferentialSchedulerSeqAdvances checks the reference harness itself
// can fail: two schedulers with different tiebreak rules must diverge. (A
// differential test that cannot detect a planted fault proves nothing.)
func TestDifferentialSchedulerSeqAdvances(t *testing.T) {
	s := New(1)
	ref := &refSched{}
	var fired []int
	// Schedule two equal-timestamp events in opposite orders.
	p1, p2 := 1, 2
	s.AtCall(10, func(a, _ any) { fired = append(fired, *(a.(*int))) }, &p1, nil)
	s.AtCall(10, func(a, _ any) { fired = append(fired, *(a.(*int))) }, &p2, nil)
	ref.schedule(10, 2) // reversed on purpose
	ref.schedule(10, 1)
	s.Run()
	want := ref.drain()
	if fired[0] == want[0] {
		t.Fatal("planted FIFO fault not detected; the differential harness is vacuous")
	}
}
