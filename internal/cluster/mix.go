package cluster

import (
	"fmt"

	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/workload"
)

// MixParams configures a blended workload: every arriving job is one of four
// components — a web-search flow, an RPC (cache-follower) flow, an ML
// all-to-all transfer, or an incast partition–aggregate request — drawn with
// the configured probabilities. The blend is what scenario specs run: the
// paper's load sweep is the special case FracWebSearch=1.
type MixParams struct {
	// Load is the offered load as a fraction of the bisection bandwidth.
	Load float64
	// TotalJobs across all clients (composite ML/incast jobs count as one).
	TotalJobs int
	// SizeScale multiplies all component sizes (flow-size CDFs, MLBytes,
	// IncastBytes); smaller values keep packet-level simulation cheap.
	SizeScale float64

	// Component fractions; they must be non-negative and sum to 1 (the
	// scenario validator enforces the exact sum, this driver re-checks).
	FracWebSearch float64
	FracRPC       float64
	FracML        float64
	FracIncast    float64

	// IncastFanout servers answer each incast request (clamped to the
	// server count); IncastBytes is the total response size per request.
	IncastFanout int
	IncastBytes  int64
	// MLBytes is the total bytes one all-to-all job pushes from its client,
	// split evenly across every server.
	MLBytes int64

	// MaxSimTime guards non-converging runs (default 10 min sim time).
	MaxSimTime sim.Time
	// Warmup delays the first arrivals (prober path installation).
	Warmup sim.Time
}

// MixResult is the outcome of one blended run.
type MixResult struct {
	Completed int
	Issued    int
	// TimedOut reports that MaxSimTime elapsed before all jobs finished
	// (expected under unrecovered failures, which strand in-flight jobs).
	TimedOut bool
}

// job component indices, in cumulative-probability order.
const (
	mixWeb = iota
	mixRPC
	mixML
	mixIncast
)

// RunMix drives the blended workload to completion and records every job in
// c.Recorder. Clients are the hosts of leaf 1, servers of leaf 2; each client
// keeps a persistent connection to every server (and, when incast is in the
// mix, each server one back to every client), so ML all-to-all and incast
// use the same cached transports as the singleton flows.
//
// Scenario event scripts schedule their link flaps, switch failures, and
// load ramps on c.Sim before calling RunMix; SetLoadScale takes effect on
// every inter-arrival gap drawn after the ramp fires.
func (c *Cluster) RunMix(p MixParams) MixResult {
	if c.Eng != nil {
		return c.runMixDomains(p)
	}
	if p.SizeScale == 0 {
		p.SizeScale = 1
	}
	if p.MaxSimTime == 0 {
		p.MaxSimTime = 600 * sim.Second
	}
	fracSum := p.FracWebSearch + p.FracRPC + p.FracML + p.FracIncast
	if p.FracWebSearch < 0 || p.FracRPC < 0 || p.FracML < 0 || p.FracIncast < 0 ||
		fracSum < 0.999 || fracSum > 1.001 {
		panic(fmt.Sprintf("cluster: mix fractions must be >= 0 and sum to 1, got %v", fracSum))
	}
	nHosts := c.Cfg.Topo.HostsPerLeaf
	if p.IncastFanout <= 0 || p.IncastFanout > nHosts {
		p.IncastFanout = nHosts
	}
	if p.IncastBytes == 0 {
		p.IncastBytes = 1e6
	}
	if p.MLBytes == 0 {
		p.MLBytes = 1e6
	}

	webDist := workload.WebSearch()
	rpcDist := workload.CacheFollower()
	if p.SizeScale != 1 {
		webDist = webDist.Scaled(p.SizeScale)
		rpcDist = rpcDist.Scaled(p.SizeScale)
	}
	mlBytes := int64(float64(p.MLBytes) * p.SizeScale)
	incastBytes := int64(float64(p.IncastBytes) * p.SizeScale)
	if mlBytes <= 0 {
		mlBytes = 1
	}
	if incastBytes <= 0 {
		incastBytes = 1
	}
	c.Recorder.SetSizeScale(p.SizeScale)

	rng := c.Sim.Rand()

	// Persistent connection meshes. The forward mesh carries web, RPC, and
	// ML traffic; the reverse mesh (servers answering clients) exists only
	// when incast is in the blend.
	fwd := make([][]*Conn, nHosts)
	var rev [][]*Conn
	var pairs [][2]packet.HostID
	for ci := 0; ci < nHosts; ci++ {
		fwd[ci] = make([]*Conn, nHosts)
		for si := 0; si < nHosts; si++ {
			client, server := packet.HostID(ci), packet.HostID(nHosts+si)
			fwd[ci][si] = c.OpenConn(client, server, 0)
			pairs = append(pairs, [2]packet.HostID{client, server}, [2]packet.HostID{server, client})
		}
	}
	if p.FracIncast > 0 {
		rev = make([][]*Conn, nHosts)
		for ci := 0; ci < nHosts; ci++ {
			rev[ci] = make([]*Conn, nHosts)
			for si := 0; si < nHosts; si++ {
				rev[ci][si] = c.OpenConn(packet.HostID(nHosts+si), packet.HostID(ci), 0)
			}
		}
	}
	c.SetupPaths(pairs)

	// Arrival rate per client, from the blend's mean job footprint.
	meanJob := p.FracWebSearch*webDist.Mean() + p.FracRPC*rpcDist.Mean() +
		p.FracML*float64(mlBytes) + p.FracIncast*float64(incastBytes)
	rate := workload.ArrivalRateForLoad(p.Load, c.LS.BisectionBps(), nHosts, meanJob)

	res := MixResult{}
	jobsPerClient := p.TotalJobs / nHosts
	if jobsPerClient == 0 {
		jobsPerClient = 1
	}
	target := jobsPerClient * nHosts
	jobDone := func() {
		res.Completed++
		if res.Completed == target {
			c.Sim.Stop()
		}
	}
	// recordFlow finishes a singleton (web/RPC) job.
	recordFlow := func(conn *Conn, size int64) func(sim.Time) {
		return func(fct sim.Time) {
			c.Recorder.Add(size, fct)
			if tr := c.Trace; tr != nil {
				tr.FCT(c.Sim.Now(), conn.Client, conn.Server, size, fct)
			}
			jobDone()
		}
	}
	// recordShard traces one shard of a composite job and completes the job
	// when the last shard lands: the Recorder sees one sample whose FCT
	// spans issue → slowest shard, the paper's partition–aggregate metric.
	type composite struct {
		pending int
		total   int64
		start   sim.Time
	}
	recordShard := func(conn *Conn, comp *composite, shard int64) func(sim.Time) {
		return func(sim.Time) {
			if tr := c.Trace; tr != nil {
				tr.FCT(c.Sim.Now(), conn.Client, conn.Server, shard, c.Sim.Now()-comp.start)
			}
			comp.pending--
			if comp.pending == 0 {
				c.Recorder.Add(comp.total, c.Sim.Now()-comp.start)
				jobDone()
			}
		}
	}

	pick := func() int {
		u := rng.Float64()
		switch {
		case u < p.FracWebSearch:
			return mixWeb
		case u < p.FracWebSearch+p.FracRPC:
			return mixRPC
		case u < p.FracWebSearch+p.FracRPC+p.FracML:
			return mixML
		default:
			return mixIncast
		}
	}

	issueJob := func(ci int) {
		res.Issued++
		switch pick() {
		case mixWeb:
			si := rng.Intn(nHosts)
			size := webDist.Sample(rng)
			fwd[ci][si].StartJob(size, recordFlow(fwd[ci][si], size))
		case mixRPC:
			si := rng.Intn(nHosts)
			size := rpcDist.Sample(rng)
			fwd[ci][si].StartJob(size, recordFlow(fwd[ci][si], size))
		case mixML:
			shard := mlBytes / int64(nHosts)
			if shard <= 0 {
				shard = 1
			}
			comp := &composite{pending: nHosts, total: shard * int64(nHosts), start: c.Sim.Now()}
			for si := 0; si < nHosts; si++ {
				fwd[ci][si].StartJob(shard, recordShard(fwd[ci][si], comp, shard))
			}
		case mixIncast:
			shard := incastBytes / int64(p.IncastFanout)
			if shard <= 0 {
				shard = 1
			}
			perm := rng.Perm(nHosts)[:p.IncastFanout]
			comp := &composite{pending: p.IncastFanout, total: shard * int64(p.IncastFanout), start: c.Sim.Now()}
			for _, si := range perm {
				rev[ci][si].StartJob(shard, recordShard(rev[ci][si], comp, shard))
			}
		}
	}

	// One arrival chain per client. The inter-arrival gap is drawn at
	// schedule time so a mid-run SetLoadScale bends the process immediately.
	nextGap := func() sim.Time {
		return sim.FromSeconds(rng.ExpFloat64() / (rate * c.loadScale))
	}
	for ci := 0; ci < nHosts; ci++ {
		ci := ci
		var issue func(remaining int)
		issue = func(remaining int) {
			if remaining == 0 {
				return
			}
			issueJob(ci)
			c.Sim.After(nextGap(), func() { issue(remaining - 1) })
		}
		c.Sim.After(p.Warmup+nextGap(), func() { issue(jobsPerClient) })
	}

	c.Sim.RunUntil(p.MaxSimTime)
	if res.Completed < target {
		res.TimedOut = true
	}
	return res
}

// AbortOpenConns tears down the transport of every open connection (see
// Conn.Abort); used by teardown tests and scenario runs that end with
// unrecovered failures, so the event queue can drain for the oracle's
// conservation audit.
func (c *Cluster) AbortOpenConns() {
	for _, conn := range c.connList {
		conn.Abort()
	}
}
