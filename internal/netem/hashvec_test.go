package netem

import (
	"testing"

	"clove/internal/packet"
)

// TestHashTupleVectors pins hashTuple to outputs recorded from the original
// closure-based implementation (PR 3 tree) before the loop was unrolled.
// Every per-switch ECMP decision — and therefore every discovered path set
// and every golden figure — depends on these exact values, so any drift in
// the unrolled body (byte order, masking, finalizer) must fail loudly here
// rather than silently re-routing the whole fabric.
func TestHashTupleVectors(t *testing.T) {
	vectors := []struct {
		seed uint64
		t5   packet.FiveTuple
		want uint64
	}{
		{0x0000000000000000, packet.FiveTuple{Src: 0, Dst: 0, SrcPort: 0, DstPort: 0, Proto: 0}, 0x8044259ac302db3e},
		{0x0000000000000000, packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 6}, 0xcac068d854abc154},
		{0x9e3779b97f4a7c15, packet.FiveTuple{Src: 0, Dst: 1, SrcPort: 40000, DstPort: 80, Proto: 6}, 0xf1491a752f6f32a9},
		{0x3c6ef372fe94f82a, packet.FiveTuple{Src: 0, Dst: 1, SrcPort: 40000, DstPort: 80, Proto: 6}, 0xc47ab70f68ecb8df},
		{0x123456789abcdef0, packet.FiveTuple{Src: 31, Dst: 17, SrcPort: 65535, DstPort: 1, Proto: 17}, 0xf06d60ab4bb331cd},
		{0xffffffffffffffff, packet.FiveTuple{Src: -1, Dst: -1, SrcPort: 65535, DstPort: 65535, Proto: 255}, 0x6a72a5d1d66d5ec8},
		{0x0000000000000001, packet.FiveTuple{Src: 100, Dst: 200, SrcPort: 12345, DstPort: 54321, Proto: 6}, 0x3d096a77c2968762},
		{0xdeadbeefcafebabe, packet.FiveTuple{Src: 7, Dst: 7, SrcPort: 7, DstPort: 7, Proto: 7}, 0xffeb48d3cf4e5dce},
	}
	for _, v := range vectors {
		if got := hashTuple(v.seed, v.t5); got != v.want {
			t.Errorf("hashTuple(%#x, %+v) = %#x, want %#x", v.seed, v.t5, got, v.want)
		}
	}
}

// TestHashTupleMatchesByteLoop cross-checks the unrolled fnvMix against a
// straightforward byte-loop reimplementation of the original closure over
// randomized-ish structured inputs, so the table above is not the only line
// of defense.
func TestHashTupleMatchesByteLoop(t *testing.T) {
	ref := func(seed uint64, t5 packet.FiveTuple) uint64 {
		h := uint64(fnvOffset) ^ seed
		mix := func(v uint64) {
			for i := 0; i < 8; i++ {
				h ^= (v >> (8 * i)) & 0xff
				h *= fnvPrime
			}
		}
		mix(uint64(uint32(t5.Src)))
		mix(uint64(uint32(t5.Dst)))
		mix(uint64(t5.SrcPort)<<16 | uint64(t5.DstPort))
		mix(uint64(t5.Proto))
		h ^= seed
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		h *= 0xc4ceb9fe1a85ec53
		h ^= h >> 33
		return h
	}
	seed := uint64(0x9e3779b97f4a7c15)
	for src := int32(0); src < 8; src++ {
		for dst := int32(0); dst < 8; dst++ {
			for port := 0; port < 64; port++ {
				t5 := packet.FiveTuple{
					Src:     packet.HostID(src * 1000003),
					Dst:     packet.HostID(dst * 7777777),
					SrcPort: uint16(32768 + port*997),
					DstPort: uint16(port * 331),
					Proto:   packet.ProtoTCP,
				}
				s := seed * uint64(port+1)
				if got, want := hashTuple(s, t5), ref(s, t5); got != want {
					t.Fatalf("hashTuple(%#x, %+v) = %#x, byte-loop reference says %#x", s, t5, got, want)
				}
			}
		}
	}
}
