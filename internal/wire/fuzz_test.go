package wire

import (
	"bytes"
	"testing"
)

// Native Go fuzz targets for the three overlay codecs whose inputs arrive
// off the wire. Seeds come from the package's round-trip test vectors;
// the corpus then mutates them into truncated/corrupt frames. The
// invariants under fuzz: Unmarshal never panics, never reports consuming
// more bytes than it was given, and any header it accepts survives a
// Marshal/Unmarshal round trip unchanged.

func FuzzIPv4Unmarshal(f *testing.F) {
	// Round-trip seeds from TestIPv4RoundTrip / TestIPv4ChecksumValidation.
	seed := IPv4{
		TOS: 0x12, TotalLen: 1500, ID: 0xbeef, TTL: 63, Protocol: 6,
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
	}
	good := seed.Marshal(nil)
	f.Add(good)
	f.Add((&IPv4{TTL: 64, Protocol: 17, TotalLen: 100}).Marshal(nil))
	f.Add(good[:IPv4HeaderLen-1]) // truncated
	corrupt := append([]byte(nil), good...)
	corrupt[8] ^= 0xff // checksum no longer matches
	f.Add(corrupt)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		var h IPv4
		n, err := h.Unmarshal(b)
		if err != nil {
			return
		}
		if n < IPv4HeaderLen || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		// Accepted headers must round-trip: the checksum Marshal writes
		// over the parsed fields must validate and reproduce the fields.
		re := h.Marshal(nil)
		var again IPv4
		if _, err := again.Unmarshal(re); err != nil {
			t.Fatalf("remarshal of accepted header rejected: %v", err)
		}
		if again != h {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", h, again)
		}
	})
}

func FuzzGeneveUnmarshal(f *testing.F) {
	// Seeds: bare header, header with the Clove feedback TLV (the
	// TestGeneve* round-trip shapes), and truncated variants.
	plain := (&Geneve{VNI: 0xabcdef, Protocol: 0x6558}).Marshal(nil)
	withFb := (&Geneve{
		VNI: 42, Protocol: 0x6558, Critical: true,
		Feedback: Feedback{Valid: true, Port: 54321, ECN: true, HasUtil: true, Util: 0.73},
	}).Marshal(nil)
	f.Add(plain)
	f.Add(withFb)
	f.Add(withFb[:GeneveHeaderLen+2]) // option cut mid-TLV
	f.Add(plain[:GeneveHeaderLen-1])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		var g Geneve
		n, err := g.Unmarshal(b)
		if err != nil {
			return
		}
		if n < GeneveHeaderLen || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if g.VNI > 0xffffff {
			t.Fatalf("VNI %#x exceeds 24 bits", g.VNI)
		}
		re := g.Marshal(nil)
		var again Geneve
		if _, err := again.Unmarshal(re); err != nil {
			t.Fatalf("remarshal of accepted header rejected: %v", err)
		}
		if again != g {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", g, again)
		}
	})
}

func FuzzSTTUnmarshal(f *testing.F) {
	// Seeds from TestSttShimFeedbackRoundTrip plus edge shapes.
	full := (&SttShim{
		Version: 1, Flags: ShimFlagINTRequest, FlowletID: 99, VNI: 0xabcdef,
		Feedback: Feedback{Valid: true, Port: 54321, ECN: true, HasUtil: true, Util: 0.73},
		PathPort: 40001, PayloadLen: 1460,
	}).Marshal(nil)
	bare := (&SttShim{VNI: 7}).Marshal(nil)
	f.Add(full)
	f.Add(bare)
	f.Add(full[:SttShimLen-1])
	f.Add(bytes.Repeat([]byte{0xff}, SttShimLen))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		var s SttShim
		n, err := s.Unmarshal(b)
		if err != nil {
			return
		}
		if n != SttShimLen {
			t.Fatalf("consumed %d bytes, want %d", n, SttShimLen)
		}
		if s.VNI > 0xffffff {
			t.Fatalf("VNI %#x exceeds 24 bits", s.VNI)
		}
		if s.Feedback.HasUtil && (s.Feedback.Util < 0 || s.Feedback.Util > 1) {
			t.Fatalf("utilization %v outside [0,1]", s.Feedback.Util)
		}
		re := s.Marshal(nil)
		var again SttShim
		if _, err := again.Unmarshal(re); err != nil {
			t.Fatalf("remarshal of accepted shim rejected: %v", err)
		}
		if again != s {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", s, again)
		}
	})
}
