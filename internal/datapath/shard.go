package datapath

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// pathShard is the per-path execution unit: one bound UDP socket, a read
// loop goroutine that owns the receive ring, a transmit ring guarded by a
// shard-local mutex, shard-private congestion observations, and padded
// atomic counters. Shards share no per-packet state, so the packet path
// never takes an endpoint-wide lock.
type pathShard struct {
	ep   *Endpoint
	idx  int
	port uint16
	conn *net.UDPConn
	rawc syscall.RawConn

	// Receive ring — owned by the readLoop goroutine. rxBufs[i] is a fixed
	// slot (BufSize, widened to 64 KB when GRO is active); after a batch of
	// n datagrams, rxLen[:n] holds their lengths, rxSrc[:n] the datagram
	// source ports, and rxSeg[:n] the GRO segment size (0 = the datagram is
	// a single frame).
	rxBufs [][]byte
	rxLen  []int
	rxSrc  []uint16
	rxSeg  []int

	// bio is the linux mmsghdr machinery (mmsg_linux.go); nil when the
	// portable one-at-a-time path is in use.
	bio *batchIO

	// Transmit ring: txCnt encoded frames pending in txBufs, flushed by one
	// batched syscall (or a portable write loop).
	txMu   sync.Mutex
	txBufs [][]byte
	txLen  []int
	txCnt  int

	// Receive-side observations of the peer's forward paths, private to
	// this shard. obs is append-only in first-observed order; the relay
	// cursor makes feedback selection deterministic and fair.
	obsMu    sync.Mutex
	obs      []obsEntry
	obsIdx   map[uint16]int
	fbCursor int

	stats shardStats
}

type obsEntry struct {
	port       uint16
	pendingECN bool
	lastRelay  time.Time
}

// shardStats is padded so shards on different cores do not false-share.
type shardStats struct {
	received         atomic.Int64
	ceObserved       atomic.Int64
	feedbackReceived atomic.Int64
	decodeErrors     atomic.Int64
	socketErrors     atomic.Int64
	probesAnswered   atomic.Int64
	probeEchoes      atomic.Int64
	_                [64]byte
}

func newPathShard(e *Endpoint, idx int, conn *net.UDPConn) (*pathShard, error) {
	rawc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	sh := &pathShard{
		ep:     e,
		idx:    idx,
		port:   uint16(conn.LocalAddr().(*net.UDPAddr).Port),
		conn:   conn,
		rawc:   rawc,
		rxLen:  make([]int, e.batch),
		rxSrc:  make([]uint16, e.batch),
		rxSeg:  make([]int, e.batch),
		txLen:  make([]int, e.batch),
		obsIdx: map[uint16]int{},
	}
	// One contiguous slab per ring keeps slots cache-adjacent.
	rxSlab := make([]byte, e.batch*e.bufSize)
	txSlab := make([]byte, e.batch*e.bufSize)
	sh.rxBufs = make([][]byte, e.batch)
	sh.txBufs = make([][]byte, e.batch)
	for i := 0; i < e.batch; i++ {
		sh.rxBufs[i] = rxSlab[i*e.bufSize : (i+1)*e.bufSize : (i+1)*e.bufSize]
		sh.txBufs[i] = txSlab[i*e.bufSize : (i+1)*e.bufSize : (i+1)*e.bufSize]
	}
	return sh, nil
}

// initIO selects the I/O implementation once the remote is known: batched
// mmsg syscalls where the platform supports them, the portable netip path
// otherwise (or when forced by Config.NoBatchSyscalls).
func (sh *pathShard) initIO(remote netip.AddrPort) error {
	if !batchSyscallsAvailable || sh.ep.cfg.NoBatchSyscalls {
		sh.bio = nil
		return nil
	}
	bio, err := newBatchIO(sh, remote)
	if err != nil {
		// Unsupported address family etc. — fall back, don't fail.
		sh.bio = nil
		return nil
	}
	sh.bio = bio
	return nil
}

// readLoop receives datagram batches until the endpoint closes. On a
// persistent socket error it backs off exponentially (errBackoffMin..
// errBackoffMax) instead of hot-looping, and counts the error; a closed
// socket ends the loop.
func (sh *pathShard) readLoop() {
	defer sh.ep.wg.Done()
	backoff := errBackoffMin
	for {
		n, err := sh.recvBatch()
		if err != nil {
			select {
			case <-sh.ep.closed:
				return
			default:
			}
			sh.stats.socketErrors.Add(1)
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if !sleepOrClosed(sh.ep.closed, backoff) {
				return
			}
			backoff = nextBackoff(backoff)
			continue
		}
		backoff = errBackoffMin
		for i := 0; i < n; i++ {
			b := sh.rxBufs[i][:sh.rxLen[i]]
			if seg := sh.rxSeg[i]; seg > 0 && seg < len(b) {
				// GRO-coalesced super-datagram: every seg bytes is one
				// wire frame (the last may be shorter).
				for off := 0; off < len(b); off += seg {
					end := off + seg
					if end > len(b) {
						end = len(b)
					}
					sh.ep.handleFrame(sh, b[off:end], sh.rxSrc[i])
				}
			} else {
				sh.ep.handleFrame(sh, b, sh.rxSrc[i])
			}
		}
	}
}

// recvBatch fills the receive ring with as many datagrams as one syscall
// yields (>= 1), blocking via the runtime poller when none are queued.
func (sh *pathShard) recvBatch() (int, error) {
	if sh.bio != nil {
		return sh.recvBatchMmsg()
	}
	n, ap, err := sh.conn.ReadFromUDPAddrPort(sh.rxBufs[0])
	if err != nil {
		return 0, err
	}
	sh.rxLen[0] = n
	sh.rxSrc[0] = ap.Port()
	sh.rxSeg[0] = 0
	return 1, nil
}

// flushLocked sends the pending transmit ring. Caller holds txMu.
func (sh *pathShard) flushLocked() error {
	if sh.txCnt == 0 {
		return nil
	}
	if sh.bio != nil {
		return sh.flushMmsgLocked()
	}
	rap := sh.ep.remoteAP.Load()
	if rap == nil {
		sh.txCnt = 0
		return errNoRemote
	}
	var first error
	for i := 0; i < sh.txCnt; i++ {
		if _, err := sh.conn.WriteToUDPAddrPort(sh.txBufs[i][:sh.txLen[i]], *rap); err != nil {
			sh.stats.socketErrors.Add(1)
			if first == nil {
				first = err
			}
		}
	}
	sh.txCnt = 0
	return first
}

// writeOne sends a single out-of-ring buffer (the oversize slow path).
func (sh *pathShard) writeOne(buf []byte) error {
	rap := sh.ep.remoteAP.Load()
	if rap == nil {
		return errNoRemote
	}
	_, err := sh.conn.WriteToUDPAddrPort(buf, *rap)
	if err != nil {
		sh.stats.socketErrors.Add(1)
	}
	return err
}

// noteCE records a CE mark observed for the peer's forward path peerPort.
// First observation of a port appends an entry (the only allocation on this
// path, once per peer port); steady state only flips a bool.
func (sh *pathShard) noteCE(peerPort uint16) {
	sh.obsMu.Lock()
	if i, ok := sh.obsIdx[peerPort]; ok {
		sh.obs[i].pendingECN = true
	} else {
		sh.obsIdx[peerPort] = len(sh.obs)
		sh.obs = append(sh.obs, obsEntry{
			port:       peerPort,
			pendingECN: true,
			// Far in the past so the first relay is immediate.
			lastRelay: time.Now().Add(-time.Hour),
		})
	}
	sh.obsMu.Unlock()
}

// takeFeedbackRR returns the next due observation's port in round-robin
// (first-observed) order, or false when none is due.
func (sh *pathShard) takeFeedbackRR(now time.Time, relayInterval time.Duration) (uint16, bool) {
	sh.obsMu.Lock()
	defer sh.obsMu.Unlock()
	n := len(sh.obs)
	for k := 0; k < n; k++ {
		i := sh.fbCursor + k
		if i >= n {
			i -= n
		}
		ob := &sh.obs[i]
		if !ob.pendingECN || now.Sub(ob.lastRelay) < relayInterval {
			continue
		}
		ob.pendingECN = false
		ob.lastRelay = now
		sh.fbCursor = i + 1
		if sh.fbCursor >= n {
			sh.fbCursor = 0
		}
		return ob.port, true
	}
	return 0, false
}

// sleepOrClosed sleeps for d unless closed fires first; it reports whether
// the sleep completed (false = endpoint closing).
func sleepOrClosed(closed <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-closed:
		return false
	case <-t.C:
		return true
	}
}

// nextBackoff doubles d, bounded at errBackoffMax.
func nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > errBackoffMax {
		d = errBackoffMax
	}
	return d
}
