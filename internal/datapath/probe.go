package datapath

import (
	"time"

	"clove/internal/wire"
)

// Shim flag bits used by the datapath's path-quality probing.
const (
	shimFlagProbe     = 1 << 6
	shimFlagProbeEcho = 1 << 7
)

// PathRTT is one path's latest probe measurement.
type PathRTT struct {
	Port    uint16
	RTT     time.Duration
	Age     time.Duration // since the sample was taken
	Samples int64
}

// probeState tracks one in-flight probe.
type probeState struct {
	port   uint16
	sentAt time.Time
}

// ProbePaths sends one RTT probe on every path. Echoes update the path
// metric table (the same table the latency-based selection reads), so a
// slow or congested path is deprioritized even without any data traffic —
// the real-network analogue of the simulator's Clove-Latency scheme.
func (e *Endpoint) ProbePaths() {
	if e.remoteAP.Load() == nil {
		return // receive-only: registering in-flight probes would leak them
	}
	seqs := make([]uint32, len(e.ports))
	now := time.Now()
	e.probeMu.Lock()
	// Prune probes that were lost on the wire; their entries would otherwise
	// accumulate forever.
	for seq, st := range e.probes {
		if now.Sub(st.sentAt) > probeExpiry {
			delete(e.probes, seq)
		}
	}
	for i, port := range e.ports {
		e.probeSeq++
		seqs[i] = e.probeSeq
		if e.probes == nil {
			e.probes = map[uint32]probeState{}
		}
		e.probes[e.probeSeq] = probeState{port: port, sentAt: now}
	}
	e.probeMu.Unlock()
	e.probesSent.Add(int64(len(e.ports)))
	for i, port := range e.ports {
		e.transmit(port, seqs[i], wire.Feedback{}, nil, shimFlagProbe)
	}
}

// handleProbe answers an incoming probe: echo its sequence and the path
// port it arrived on, so the prober can attribute the RTT. Runs on the
// receiving shard's goroutine.
func (e *Endpoint) handleProbe(sh *pathShard, shim *wire.SttShim) {
	sh.stats.probesAnswered.Add(1)
	port := uint16(e.curPortA.Load())
	if port == 0 && len(e.ports) > 0 {
		port = e.ports[0]
	}
	// The echo carries the original probe's path port in the feedback
	// field (attribution) and the sequence in FlowletID.
	fb := wire.Feedback{Valid: true, Port: shim.PathPort}
	e.transmit(port, shim.FlowletID, fb, nil, shimFlagProbeEcho)
}

// handleProbeEcho resolves an in-flight probe and records the RTT sample.
func (e *Endpoint) handleProbeEcho(sh *pathShard, shim *wire.SttShim) {
	now := time.Now()
	e.probeMu.Lock()
	st, ok := e.probes[shim.FlowletID]
	if !ok {
		e.probeMu.Unlock()
		return
	}
	delete(e.probes, shim.FlowletID)
	rtt := now.Sub(st.sentAt)
	sh.stats.probeEchoes.Add(1)
	if e.rtts == nil {
		e.rtts = map[uint16]*rttSample{}
	}
	s := e.rtts[st.port]
	if s == nil {
		s = &rttSample{}
		e.rtts[st.port] = s
	}
	s.rtt = rtt
	s.at = now
	s.count++
	e.probeMu.Unlock()
	// Feed the weight table's metric channel so latency-based selection
	// and congestion weighting can both see it.
	e.wmu.Lock()
	e.weights.OnUtilization(st.port, rtt.Seconds(), e.now())
	e.wmu.Unlock()
}

type rttSample struct {
	rtt   time.Duration
	at    time.Time
	count int64
}

// PathRTTs returns the latest per-path RTT samples, sorted by port order.
func (e *Endpoint) PathRTTs() []PathRTT {
	e.probeMu.Lock()
	defer e.probeMu.Unlock()
	now := time.Now()
	out := make([]PathRTT, 0, len(e.ports))
	for _, port := range e.ports {
		s := e.rtts[port]
		if s == nil {
			out = append(out, PathRTT{Port: port})
			continue
		}
		out = append(out, PathRTT{Port: port, RTT: s.rtt, Age: now.Sub(s.at), Samples: s.count})
	}
	return out
}
