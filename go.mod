module clove

go 1.22
