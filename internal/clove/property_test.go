package clove

import (
	"math"
	"math/rand"
	"testing"

	"clove/internal/sim"
)

// randomPortSet returns 1..maxN distinct ports in random order.
func randomPortSet(rng *rand.Rand, maxN int) []uint16 {
	n := 1 + rng.Intn(maxN)
	perm := rng.Perm(4 * maxN)[:n]
	ports := make([]uint16, n)
	for i, p := range perm {
		ports[i] = uint16(1000 + p)
	}
	return ports
}

// TestWeightTablePropertyRandomizedOps drives 1000 randomized operation
// sequences of OnCongestion / OnUtilization / SetPorts (including feedback
// for ports not in the set) and checks the table invariants after every
// single operation:
//
//   - the weights sum to 1 within 1e-6,
//   - every weight respects the floor (feasible by construction: at most 12
//     paths at the default floor of 0.02),
//   - the port set is exactly the most recent SetPorts argument, in order.
func TestWeightTablePropertyRandomizedOps(t *testing.T) {
	const sequences = 1000
	const maxPaths = 12
	rng := rand.New(rand.NewSource(1))
	for seq := 0; seq < sequences; seq++ {
		cfg := DefaultWeightTableConfig(sim.Time(1+rng.Intn(1000)) * sim.Microsecond)
		ports := randomPortSet(rng, maxPaths)
		wt := NewWeightTable(cfg, ports)
		now := sim.Time(0)
		nOps := 5 + rng.Intn(40)
		for op := 0; op < nOps; op++ {
			now += sim.Time(rng.Intn(1_000_000))
			switch rng.Intn(6) {
			case 0, 1:
				wt.OnCongestion(ports[rng.Intn(len(ports))], now)
			case 2:
				wt.OnUtilization(ports[rng.Intn(len(ports))], rng.Float64()*1.2, now)
			case 3:
				ports = randomPortSet(rng, maxPaths)
				wt.SetPorts(ports)
			case 4:
				// Feedback for a port outside the set must change nothing.
				wt.OnCongestion(uint16(60000+rng.Intn(100)), now)
			case 5:
				wt.OnUtilization(uint16(60000+rng.Intn(100)), rng.Float64(), now)
			}
			checkTableInvariants(t, wt, ports, cfg, seq, op)
		}
	}
}

func checkTableInvariants(t *testing.T, wt *WeightTable, ports []uint16, cfg WeightTableConfig, seq, op int) {
	t.Helper()
	got := wt.Ports()
	if len(got) != len(ports) {
		t.Fatalf("seq %d op %d: port count %d, want %d", seq, op, len(got), len(ports))
	}
	for i := range ports {
		if got[i] != ports[i] {
			t.Fatalf("seq %d op %d: port[%d] = %d, want %d", seq, op, i, got[i], ports[i])
		}
	}
	var sum float64
	wt.VisitStates(func(p PathState) {
		if p.Weight < cfg.Floor-1e-9 {
			t.Fatalf("seq %d op %d: port %d weight %v below floor %v", seq, op, p.Port, p.Weight, cfg.Floor)
		}
		if p.Weight > 1+1e-9 {
			t.Fatalf("seq %d op %d: port %d weight %v above 1", seq, op, p.Port, p.Weight)
		}
		sum += p.Weight
	})
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("seq %d op %d: weights sum to %v", seq, op, sum)
	}
}
