// Package wire implements byte-level codecs for the headers Clove
// manipulates on a real network: IPv4, TCP, UDP, and the overlay
// encapsulation shims (an STT-like TCP-based shim with a context field, and
// a VXLAN-like UDP-based alternative). The userspace datapath in
// internal/datapath uses these to build and parse real packets; the
// simulator mirrors the same fields as structs.
//
// The codecs follow the gopacket convention of explicit, allocation-light
// Marshal/Unmarshal pairs and defensive length validation: truncated input
// returns an error, never panics.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Codec errors.
var (
	ErrTruncated   = errors.New("wire: truncated packet")
	ErrBadVersion  = errors.New("wire: bad version")
	ErrBadChecksum = errors.New("wire: bad checksum")
	ErrBadLength   = errors.New("wire: bad length field")
)

// IPv4HeaderLen is the length of a header without options.
const IPv4HeaderLen = 20

// ECN codepoints in the IPv4 TOS field (RFC 3168).
const (
	ECNNotECT = 0x0
	ECNECT1   = 0x1
	ECNECT0   = 0x2
	ECNCE     = 0x3
)

// IPv4 is a minimal IPv4 header (no options).
type IPv4 struct {
	TOS      uint8 // DSCP<<2 | ECN
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Protocol uint8
	SrcIP    [4]byte
	DstIP    [4]byte
}

// ECN returns the ECN codepoint.
func (h *IPv4) ECN() uint8 { return h.TOS & 0x3 }

// SetECN sets the ECN codepoint.
func (h *IPv4) SetECN(cp uint8) { h.TOS = h.TOS&^0x3 | cp&0x3 }

// Marshal appends the 20-byte header (with checksum) to b.
func (h *IPv4) Marshal(b []byte) []byte {
	off := len(b)
	b = append(b, make([]byte, IPv4HeaderLen)...)
	p := b[off:]
	p[0] = 0x45 // version 4, IHL 5
	p[1] = h.TOS
	binary.BigEndian.PutUint16(p[2:], h.TotalLen)
	binary.BigEndian.PutUint16(p[4:], h.ID)
	// flags+fragment offset zero (DF could be set; Clove never fragments)
	p[8] = h.TTL
	p[9] = h.Protocol
	copy(p[12:16], h.SrcIP[:])
	copy(p[16:20], h.DstIP[:])
	binary.BigEndian.PutUint16(p[10:], Checksum(p[:IPv4HeaderLen]))
	return b
}

// Unmarshal parses a header from b, validating version, length, and
// checksum. It returns the number of bytes consumed.
func (h *IPv4) Unmarshal(b []byte) (int, error) {
	if len(b) < IPv4HeaderLen {
		return 0, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return 0, ErrBadVersion
	}
	ihl := int(b[0]&0xf) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return 0, fmt.Errorf("%w: IHL %d", ErrBadLength, ihl)
	}
	if Checksum(b[:ihl]) != 0 {
		return 0, ErrBadChecksum
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:])
	h.ID = binary.BigEndian.Uint16(b[4:])
	h.TTL = b[8]
	h.Protocol = b[9]
	copy(h.SrcIP[:], b[12:16])
	copy(h.DstIP[:], b[16:20])
	return ihl, nil
}

// Checksum computes the Internet checksum (RFC 1071) over b. A header
// marshalled with its checksum field filled sums to zero.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
