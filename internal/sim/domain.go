package sim

import (
	"fmt"
	"slices"
	"sync/atomic"
)

// This file is the sharded parallel-in-time engine: one simulation split
// into event domains, each a full Simulator (own slab heap, clock, RNG),
// coupled only through cross-domain messages that must respect a positive
// lookahead. Execution proceeds in conservative windows: every domain runs
// its events up to a horizon no later than (earliest pending event anywhere
// + lookahead); any message a domain emits during a window therefore arrives
// at or after the horizon, so it can be injected at the barrier before the
// next window without ever violating timestamp order. Domains never observe
// each other mid-window, which makes the execution order — and every
// simulated outcome — a pure function of the domain decomposition,
// independent of how many OS threads execute the windows.
//
// Determinism contract: for a fixed engine (same domains, same seeds, same
// scheduled work), runs are bit-identical at any worker count. The engine
// guarantees this by construction:
//
//   - each domain's event stream is a sequential Simulator run;
//   - cross-domain posts are buffered in per-source-domain slices (touched
//     only by the goroutine executing that domain's window) and flushed at
//     the barrier in sorted (time, source domain, source sequence) order;
//   - global control actions (route recomputation, scripted failures, stop
//     checks) execute serially at barriers, at deterministic times.
//
// Note that a sharded run defines its *own* total order of same-timestamp
// events — consistent across worker counts, but not identical to running
// the same workload on one shared Simulator.

// timeMax is the sentinel for "no pending event".
const timeMax = Time(1<<63 - 1)

// xpost is one buffered cross-domain message: fn(a, b) scheduled onto the
// dst domain at time at. src and seq establish the deterministic flush
// order for messages landing at the same timestamp.
type xpost struct {
	at       Time
	src, dst int32
	seq      uint64
	fn       EventFunc
	a, b     any
}

// globalEvent is one serialized control-plane action, run at a barrier.
type globalEvent struct {
	at  Time
	seq uint64
	fn  func()
}

// Domain is one shard of a sharded simulation: a full Simulator plus the
// cross-domain outbox. Components inside a domain hold the embedded
// *Simulator and schedule on it exactly as in a single-sim run; only
// boundary components (cross-domain links, workload fan-out) use Post.
type Domain struct {
	*Simulator
	id  int32
	eng *Engine
	out []xpost
	seq uint64
}

// ID returns the domain's index within its engine.
func (d *Domain) ID() int { return int(d.id) }

// Engine returns the engine this domain belongs to.
func (d *Domain) Engine() *Engine { return d.eng }

// Post schedules fn(a, b) at absolute time at on the dst domain. It is the
// only legal way to touch another domain: the message is buffered in this
// domain's outbox (thread-confined during a window) and injected into dst's
// event queue at the next barrier.
//
// at must be at least the posting domain's current time plus the engine
// lookahead — the conservative-synchronization contract that makes barrier
// injection safe. Posting under the lookahead panics immediately, naming
// the violation at its source rather than corrupting the schedule.
//
// Post is allocation-free in steady state: the outbox slice is reused
// across windows, and pointer operands box into the interface fields
// without allocating.
func (d *Domain) Post(dst int, at Time, fn EventFunc, a, b any) {
	if dst < 0 || dst >= len(d.eng.domains) {
		panic(fmt.Sprintf("sim: post to unknown domain %d", dst))
	}
	if min := d.Now() + d.eng.lookahead; at < min {
		panic(fmt.Sprintf("sim: cross-domain post at %v under lookahead (now %v + %v)",
			at, d.Now(), d.eng.lookahead))
	}
	d.out = append(d.out, xpost{at: at, src: d.id, dst: int32(dst), seq: d.seq, fn: fn, a: a, b: b})
	d.seq++
}

// Engine coordinates a set of event domains through conservative windows.
// Build it once per run: NewEngine, AddDomain for every shard, wire the
// model, then Run. Engines are not reusable across topologies.
type Engine struct {
	seed      int64
	lookahead Time
	domains   []*Domain
	now       Time // last barrier time; all domain clocks equal it between windows

	globals []globalEvent // sorted by (at, seq)
	gseq    uint64

	posts []xpost // flush scratch, reused

	// worker machinery, live only inside Run(workers > 1).
	workCh  []chan Time
	doneCh  chan struct{}
	nextDom atomic.Int64
	remain  atomic.Int64
}

// NewEngine creates an engine with the given base seed and lookahead. The
// lookahead must be positive: it is the minimum timestamp increment of any
// cross-domain message (in the network model, the smallest propagation
// delay of a trunk link crossing a domain boundary), and it is what bounds
// each window's horizon.
func NewEngine(seed int64, lookahead Time) *Engine {
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive engine lookahead %v", lookahead))
	}
	return &Engine{seed: seed, lookahead: lookahead, doneCh: make(chan struct{})}
}

// AddDomain creates the next domain. Its Simulator seed is derived from the
// engine seed and the domain index with a fixed mix, so every domain draws
// an independent, reproducible random stream.
func (e *Engine) AddDomain() *Domain {
	id := len(e.domains)
	seed := int64(uint64(e.seed) + uint64(id+1)*0x9e3779b97f4a7c15)
	d := &Domain{Simulator: New(seed), id: int32(id), eng: e}
	e.domains = append(e.domains, d)
	return d
}

// Lookahead returns the engine's cross-domain lookahead.
func (e *Engine) Lookahead() Time { return e.lookahead }

// Now returns the last barrier time. Between windows every domain clock
// equals it.
func (e *Engine) Now() Time { return e.now }

// NumDomains returns the number of domains.
func (e *Engine) NumDomains() int { return len(e.domains) }

// Domain returns the i-th domain.
func (e *Engine) Domain(i int) *Domain { return e.domains[i] }

// Domains returns all domains in creation order (read-only).
func (e *Engine) Domains() []*Domain { return e.domains }

// Processed sums fired events across all domains.
func (e *Engine) Processed() uint64 {
	var n uint64
	for _, d := range e.domains {
		n += d.Simulator.Processed()
	}
	return n
}

// Pending sums scheduled-but-unfired events across all domains plus queued
// global actions. Between windows no cross-domain posts are outstanding, so
// Pending()==0 means the whole sharded simulation has drained — the state
// the oracle's conservation audit requires.
func (e *Engine) Pending() int {
	n := len(e.globals)
	for _, d := range e.domains {
		n += d.Simulator.Pending()
	}
	return n
}

// GlobalAt schedules a control-plane action at absolute time at. Globals
// run serially at a barrier once every domain clock has reached exactly
// that time, after all domain events with timestamps <= at have fired —
// they may therefore touch state in any domain (route tables, link
// administrative state, load knobs) without synchronization. Scheduling in
// the past panics.
func (e *Engine) GlobalAt(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: global event at %v before engine now %v", at, e.now))
	}
	ev := globalEvent{at: at, seq: e.gseq, fn: fn}
	e.gseq++
	// Insert keeping (at, seq) order; the timeline is short and cold.
	i := len(e.globals)
	for i > 0 && e.globals[i-1].at > at {
		i--
	}
	e.globals = append(e.globals, globalEvent{})
	copy(e.globals[i+1:], e.globals[i:])
	e.globals[i] = ev
}

// GlobalAfter schedules a control-plane action delay after the last
// barrier time.
func (e *Engine) GlobalAfter(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative global delay %v", delay))
	}
	e.GlobalAt(e.now+delay, fn)
}

// minNext returns the earliest pending event timestamp across domains.
func (e *Engine) minNext() Time {
	min := timeMax
	for _, d := range e.domains {
		if at, ok := d.NextEventAt(); ok && at < min {
			min = at
		}
	}
	return min
}

// Run executes the sharded simulation until every queue drains, until the
// deadline is reached, or until stop (evaluated at each barrier, serially)
// reports true. workers is the number of OS threads executing windows;
// results are bit-identical for any value. On return every domain clock
// equals min(deadline, drain time).
func (e *Engine) Run(until Time, workers int, stop func() bool) {
	if until < e.now {
		panic(fmt.Sprintf("sim: engine deadline %v before now %v", until, e.now))
	}
	if workers > len(e.domains) {
		workers = len(e.domains)
	}
	if workers > 1 {
		e.startWorkers(workers)
		defer e.stopWorkers()
	}
	for {
		if stop != nil && stop() {
			return
		}
		tmin := e.minNext()
		gmin := timeMax
		if len(e.globals) > 0 {
			gmin = e.globals[0].at
		}
		if tmin == timeMax && gmin == timeMax {
			// Fully drained: advance clocks to the deadline, as RunUntil does.
			e.window(until, workers)
			e.now = until
			return
		}
		if tmin > until && gmin > until {
			e.window(until, workers)
			e.now = until
			return
		}
		var horizon Time
		if gmin <= tmin {
			// Domain events at exactly gmin fire first, then the globals.
			horizon = gmin
		} else {
			horizon = tmin + e.lookahead
			if gmin < horizon {
				horizon = gmin
			}
			if horizon > until {
				horizon = until
			}
		}
		e.window(horizon, workers)
		e.flushPosts()
		e.now = horizon
		if horizon == gmin {
			e.runGlobals(gmin)
		}
	}
}

// window runs every domain up to and including horizon. With one worker it
// is a plain loop on the calling goroutine; otherwise the persistent
// workers claim domains off a shared counter (dynamic load balancing; the
// claim order cannot affect results because domains are independent within
// a window).
func (e *Engine) window(horizon Time, workers int) {
	if workers <= 1 {
		for _, d := range e.domains {
			d.RunUntil(horizon)
		}
		return
	}
	e.nextDom.Store(0)
	e.remain.Store(int64(workers))
	for _, ch := range e.workCh {
		ch <- horizon
	}
	<-e.doneCh
}

func (e *Engine) startWorkers(n int) {
	e.workCh = make([]chan Time, n)
	for i := range e.workCh {
		ch := make(chan Time, 1)
		e.workCh[i] = ch
		go func() {
			for dl := range ch {
				for {
					i := e.nextDom.Add(1) - 1
					if i >= int64(len(e.domains)) {
						break
					}
					e.domains[i].RunUntil(dl)
				}
				if e.remain.Add(-1) == 0 {
					e.doneCh <- struct{}{}
				}
			}
		}()
	}
}

func (e *Engine) stopWorkers() {
	for _, ch := range e.workCh {
		close(ch)
	}
	e.workCh = nil
}

// flushPosts injects every message buffered during the last window into its
// destination domain, in (time, source domain, source sequence) order. The
// order is a pure function of the window's (deterministic) contents, and
// injection happens while all domains are paused, so the resulting event
// sequence numbers — and hence same-timestamp tie-breaks — are identical at
// any worker count. Buffers are reused; the flush allocates nothing in
// steady state.
func (e *Engine) flushPosts() {
	e.posts = e.posts[:0]
	for _, d := range e.domains {
		e.posts = append(e.posts, d.out...)
		for i := range d.out {
			d.out[i].fn, d.out[i].a, d.out[i].b = nil, nil, nil
		}
		d.out = d.out[:0]
	}
	// (at, src, seq) is a total order — seq is unique per source — so the
	// unstable pdqsort yields one deterministic permutation. At fabric scale
	// a window can carry thousands of trunk crossings, which rules out the
	// quadratic nearly-sorted-insertion shortcut.
	slices.SortFunc(e.posts, postCmp)
	for i := range e.posts {
		p := &e.posts[i]
		e.domains[p.dst].AtCall(p.at, p.fn, p.a, p.b)
		p.fn, p.a, p.b = nil, nil, nil
	}
}

// postCmp orders cross-domain posts by (time, source domain, source seq).
func postCmp(a, b xpost) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	if a.src != b.src {
		return int(a.src) - int(b.src)
	}
	if a.seq < b.seq {
		return -1
	}
	if a.seq > b.seq {
		return 1
	}
	return 0
}

// runGlobals executes every queued global action with timestamp at, in
// scheduling order, including any the actions themselves add at the same
// time.
func (e *Engine) runGlobals(at Time) {
	for len(e.globals) > 0 && e.globals[0].at == at {
		fn := e.globals[0].fn
		copy(e.globals, e.globals[1:])
		e.globals = e.globals[:len(e.globals)-1]
		fn()
	}
}
