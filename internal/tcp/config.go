// Package tcp models the tenant VM transport: a NewReno-style TCP sender and
// receiver with ECN support, plus an MPTCP multipath sender. The model is
// segment-level (no byte buffers): enough fidelity for ACK clocking, loss
// recovery, ECN response, and the flowlet dynamics Clove depends on, while
// staying fast inside the discrete-event simulator.
//
// Simplifications relative to a kernel stack, all documented in DESIGN.md:
// connections start established (no SYN handshake), the receive window is
// unbounded, and there is no SACK (NewReno partial-ACK recovery instead).
package tcp

import (
	"clove/internal/packet"
	"clove/internal/sim"
)

// Config holds the transport parameters shared by senders and receivers.
type Config struct {
	// MSS is the maximum segment payload in bytes.
	MSS int
	// InitCwnd is the initial congestion window in segments (RFC 6928: 10).
	InitCwnd float64
	// MinRTO clamps the retransmission timeout from below.
	MinRTO sim.Time
	// InitRTO is used before the first RTT sample.
	InitRTO sim.Time
	// MaxCwnd caps the window in segments (stands in for the receive window).
	MaxCwnd float64
	// ECN enables sender reaction to ECN-Echo and marks outgoing segments
	// ECN-capable.
	ECN bool
	// SlowStartAfterIdle resets cwnd to InitCwnd when a connection has been
	// idle for more than one RTO before new data arrives (RFC 2581 §4.1).
	SlowStartAfterIdle bool
	// DupAckThreshold triggers fast retransmit (normally 3).
	DupAckThreshold int
	// Pool, when set, is the simulation's packet free list: outgoing
	// segments and ACKs are drawn from it, and consumed incoming packets
	// are released back to it (see the packet package ownership rule). A
	// nil Pool falls back to plain allocation.
	Pool *packet.Pool
}

// DefaultConfig returns datacenter-tuned parameters: 1460B MSS, IW10, 2 ms
// minimum RTO (standard in DC TCP studies), ECN on.
func DefaultConfig() Config {
	return Config{
		MSS:                1460,
		InitCwnd:           10,
		MinRTO:             2 * sim.Millisecond,
		InitRTO:            10 * sim.Millisecond,
		MaxCwnd:            256,
		ECN:                true,
		SlowStartAfterIdle: true,
		DupAckThreshold:    3,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MSS == 0 {
		c.MSS = d.MSS
	}
	if c.InitCwnd == 0 {
		c.InitCwnd = d.InitCwnd
	}
	if c.MinRTO == 0 {
		c.MinRTO = d.MinRTO
	}
	if c.InitRTO == 0 {
		c.InitRTO = d.InitRTO
	}
	if c.MaxCwnd == 0 {
		c.MaxCwnd = d.MaxCwnd
	}
	if c.DupAckThreshold == 0 {
		c.DupAckThreshold = d.DupAckThreshold
	}
	return c
}
