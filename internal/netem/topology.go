package netem

import (
	"fmt"

	"clove/internal/packet"
	"clove/internal/sim"
)

// Topology owns every node and link in the fabric and computes ECMP routing.
// It supports arbitrary graphs; the leaf–spine and fat-tree builders below
// cover the paper's setups.
type Topology struct {
	Sim *sim.Simulator

	// pool is the simulation-wide packet free list. Every link, switch, and
	// host of this topology shares it, as do the vswitches and TCP endpoints
	// stacked on top (they fetch it via Host.Pool / Topology.Pool).
	pool *packet.Pool

	hosts    []*Host
	switches []*Switch
	links    []*Link
	byName   map[string]*Link // "A->B#k"
	nextNode packet.NodeID
	nextLink packet.LinkID

	// RouteRecomputeDelay models routing-protocol reconvergence after a
	// topology change: route tables update this long after SetLinkPairUp.
	// Zero means instantaneous.
	RouteRecomputeDelay sim.Time

	// Sharded-construction state (see domains.go); all nil/empty when the
	// topology lives on a single Simulator.
	eng      *sim.Engine
	curDom   *sim.Domain
	curPool  *packet.Pool
	nodeDom  []*sim.Domain  // owning domain per NodeID
	nodePool []*packet.Pool // owning pool per NodeID
	pools    []*packet.Pool // one pool per domain, creation order
}

// NewTopology creates an empty fabric bound to s, with a fresh packet pool.
func NewTopology(s *sim.Simulator) *Topology {
	return &Topology{Sim: s, pool: &packet.Pool{}, byName: map[string]*Link{}}
}

// Pool returns the simulation-wide packet free list.
func (t *Topology) Pool() *packet.Pool { return t.pool }

// Hosts returns all hosts in creation order (HostID order).
func (t *Topology) Hosts() []*Host { return t.hosts }

// Switches returns all switches in creation order.
func (t *Topology) Switches() []*Switch { return t.switches }

// Links returns all links in creation order (LinkID order).
func (t *Topology) Links() []*Link { return t.links }

// Host returns the host with the given fabric address.
func (t *Topology) Host(id packet.HostID) *Host { return t.hosts[id] }

// LinkByID returns the link with the given ID.
func (t *Topology) LinkByID(id packet.LinkID) *Link { return t.links[id] }

// LinkByName returns the link named "From->To#k", or nil.
func (t *Topology) LinkByName(name string) *Link { return t.byName[name] }

// SwitchByName returns the switch with the builder-assigned name, or nil.
func (t *Topology) SwitchByName(name string) *Switch {
	for _, sw := range t.switches {
		if sw.name == name {
			return sw
		}
	}
	return nil
}

// AddSwitch creates a switch. The per-switch ECMP hash seed is derived
// deterministically from the node ID so that runs are reproducible while
// different switches still hash differently.
func (t *Topology) AddSwitch(name string) *Switch {
	sw := &Switch{
		id:   t.nextNode,
		name: name,
		sim:  t.buildSim(),
		pool: t.buildPool(),
		seed: 0x9e3779b97f4a7c15 * uint64(t.nextNode+1),
		topo: t,
	}
	t.nextNode++
	t.recordNode()
	t.switches = append(t.switches, sw)
	return sw
}

// AddHost creates a host attached to leaf over a bidirectional link pair.
// upCfg shapes the host's transmit path (NIC ring + qdisc: deep, no ECN
// marking — a local stack backpressures rather than marks); downCfg shapes
// the leaf's switch port toward the host.
func (t *Topology) AddHost(name string, leaf *Switch, upCfg, downCfg LinkConfig) *Host {
	h := &Host{id: t.nextNode, hostID: packet.HostID(len(t.hosts)), name: name, pool: t.buildPool(), dom: t.curDom}
	t.nextNode++
	t.recordNode()
	up := t.addLink(fmt.Sprintf("%s->%s#0", name, leaf.name), h.id, leaf, upCfg)
	down := t.addLink(fmt.Sprintf("%s->%s#0", leaf.name, name), leaf.id, h, downCfg)
	h.uplink = up
	leaf.addEgress(down)
	t.hosts = append(t.hosts, h)
	return h
}

// HostQdiscCap is the depth of a host's transmit queue (Linux txqueuelen
// order of magnitude), much deeper than a switch port.
const HostQdiscCap = 1024

// Connect creates the k-th bidirectional link pair between two switches.
func (t *Topology) Connect(a, b *Switch, trunk int, cfg LinkConfig) {
	ab := t.addLink(fmt.Sprintf("%s->%s#%d", a.name, b.name, trunk), a.id, b, cfg)
	ba := t.addLink(fmt.Sprintf("%s->%s#%d", b.name, a.name, trunk), b.id, a, cfg)
	a.addEgress(ab)
	b.addEgress(ba)
}

func (t *Topology) addLink(name string, from packet.NodeID, to Node, cfg LinkConfig) *Link {
	s, pool := t.Sim, t.pool
	if t.eng != nil {
		s, pool = t.nodeDom[from].Simulator, t.nodePool[from]
	}
	l := newLink(s, pool, t.nextLink, name, from, to, cfg)
	if t.eng != nil {
		dst := t.nodeDom[to.ID()]
		l.rxPool = t.nodePool[to.ID()]
		if src := t.nodeDom[from]; src != dst {
			l.srcDom = src
			l.dstDomID = dst.ID()
		}
	}
	t.nextLink++
	t.links = append(t.links, l)
	t.byName[name] = l
	return l
}

// SetLinkPairUp changes the state of both directions of the trunk-th link
// pair between switches named a and b, then recomputes routing (after
// RouteRecomputeDelay if configured). It panics if the pair does not exist:
// failing a nonexistent link is always a test-configuration bug.
func (t *Topology) SetLinkPairUp(a, b string, trunk int, up bool) {
	n1 := fmt.Sprintf("%s->%s#%d", a, b, trunk)
	n2 := fmt.Sprintf("%s->%s#%d", b, a, trunk)
	l1, l2 := t.byName[n1], t.byName[n2]
	if l1 == nil || l2 == nil {
		panic(fmt.Sprintf("netem: no link pair %s / %s", n1, n2))
	}
	l1.SetUp(up)
	l2.SetUp(up)
	t.scheduleRecompute()
}

// SetSwitchUp changes the state of every link adjacent to the named switch
// (both directions), modelling a whole-switch failure or recovery, then
// recomputes routing once (after RouteRecomputeDelay if configured). It
// panics if the switch does not exist: failing a nonexistent switch is
// always a test-configuration bug.
func (t *Topology) SetSwitchUp(name string, up bool) {
	sw := t.SwitchByName(name)
	if sw == nil {
		panic(fmt.Sprintf("netem: no switch %q", name))
	}
	for _, l := range t.links {
		if l.from == sw.id || l.to.ID() == sw.id {
			l.SetUp(up)
		}
	}
	t.scheduleRecompute()
}

// SetLinkPairRate changes the rate of both directions of the trunk-th link
// pair between switches named a and b (scenario speed downgrades). It panics
// if the pair does not exist.
func (t *Topology) SetLinkPairRate(a, b string, trunk int, rateBps int64) {
	n1 := fmt.Sprintf("%s->%s#%d", a, b, trunk)
	n2 := fmt.Sprintf("%s->%s#%d", b, a, trunk)
	l1, l2 := t.byName[n1], t.byName[n2]
	if l1 == nil || l2 == nil {
		panic(fmt.Sprintf("netem: no link pair %s / %s", n1, n2))
	}
	l1.SetRateBps(rateBps)
	l2.SetRateBps(rateBps)
}

// ComputeRoutes rebuilds every switch's ECMP table: for each destination
// host, the next-hops are all up egress links lying on a shortest path.
// Hosts attach to exactly one leaf, so this is a reverse BFS per host.
func (t *Topology) ComputeRoutes() {
	// Node IDs are dense (assigned from a creation counter), so every
	// working structure here is a flat array indexed by NodeID rather than a
	// map: route recomputation runs in-simulation on every link flap of a
	// failure storm, and at fat-tree scale (1024 hosts x 72 switches) the
	// map-based BFS dominated the flap cost. The produced next-hop sets are
	// identical — BFS visit order only affects discovery order, never the
	// hop distances the candidate filter compares.
	nNodes := int(t.nextNode)
	for _, sw := range t.switches {
		sw.routes = make([][]*Link, len(t.hosts))
	}
	// adjacency: for each node, its up egress links to other nodes.
	type edge struct {
		link *Link
		to   packet.NodeID
	}
	adj := make([][]edge, nNodes)
	for _, sw := range t.switches {
		sw.sortEgress() // finalize build-time insertions before use
		for _, l := range sw.egress {
			if !l.Up() {
				continue
			}
			adj[sw.id] = append(adj[sw.id], edge{l, l.To().ID()})
		}
	}
	for _, h := range t.hosts {
		if h.uplink.Up() {
			adj[h.id] = append(adj[h.id], edge{h.uplink, h.uplink.To().ID()})
		}
	}

	// reverse adjacency for BFS from the destination.
	radj := make([][]packet.NodeID, nNodes)
	for from, edges := range adj {
		for _, e := range edges {
			radj[e.to] = append(radj[e.to], packet.NodeID(from))
		}
	}

	// dist[node] = hops from node to the target host; -1 = unreached.
	dist := make([]int32, nNodes)
	queue := make([]packet.NodeID, 0, nNodes)
	for _, h := range t.hosts {
		for i := range dist {
			dist[i] = -1
		}
		dist[h.id] = 0
		queue = append(queue[:0], h.id)
		for head := 0; head < len(queue); head++ {
			n := queue[head]
			for _, prev := range radj[n] {
				if dist[prev] < 0 {
					dist[prev] = dist[n] + 1
					queue = append(queue, prev)
				}
			}
		}
		for _, sw := range t.switches {
			d := dist[sw.id]
			if d < 0 {
				continue
			}
			var nh []*Link
			for _, e := range adj[sw.id] {
				if dd := dist[e.to]; dd >= 0 && dd == d-1 {
					nh = append(nh, e.link)
				}
			}
			if len(nh) > 0 {
				sw.routes[h.hostID] = nh
			}
		}
	}
}

// LeafSpineConfig parameterizes the 2-tier Clos used throughout the paper's
// evaluation (Fig. 4a): two leaves, two spines, two 40G trunks per
// leaf–spine pair, 16 hosts per leaf at 10G.
type LeafSpineConfig struct {
	Leaves        int
	Spines        int
	TrunksPerPair int // parallel links between each leaf-spine pair
	HostsPerLeaf  int
	HostRateBps   int64
	TrunkRateBps  int64
	LinkDelay     sim.Time // per-hop propagation delay (edge: host<->leaf)
	// TrunkDelay is the per-hop propagation delay of the leaf<->spine tier;
	// zero means LinkDelay (the paper's single-delay fabric). Scenario specs
	// use it for per-tier latency asymmetry.
	TrunkDelay sim.Time
	QueueCap   int
	ECNK       int // switch ECN marking threshold (packets)
}

// trunkDelay resolves the fabric-tier delay default.
func (cfg LeafSpineConfig) trunkDelay() sim.Time {
	if cfg.TrunkDelay > 0 {
		return cfg.TrunkDelay
	}
	return cfg.LinkDelay
}

// FabricDelay returns the effective leaf<->spine propagation delay (the
// TrunkDelay default resolved). It is the natural engine lookahead for a
// sharded build: every cross-domain link has at least this delay.
func (cfg LeafSpineConfig) FabricDelay() sim.Time { return cfg.trunkDelay() }

// PaperTestbed returns the evaluation topology of Sec. 5 at the given rate
// scale: scale=1.0 is the paper's 10G/40G testbed. Smaller scales keep the
// ratios (bisection = 4 trunks, non-oversubscribed) while making packet-level
// simulation cheap.
func PaperTestbed(scale float64) LeafSpineConfig {
	return LeafSpineConfig{
		Leaves:        2,
		Spines:        2,
		TrunksPerPair: 2,
		HostsPerLeaf:  16,
		HostRateBps:   int64(10e9 * scale),
		TrunkRateBps:  int64(40e9 * scale),
		LinkDelay:     5 * sim.Microsecond,
		QueueCap:      DefaultQueueCap,
		ECNK:          20, // DCTCP-style threshold used by Clove-ECN (Sec. 3.2)
	}
}

// ScaledTestbed returns the paper topology shrunk along two axes while
// preserving its defining ratio — hosts per leaf × host rate = bisection
// bandwidth (no oversubscription) — so the fabric, not the access links,
// stays the contention point. scale multiplies link rates; hostsPerLeaf
// shrinks the host count (paper: 16).
func ScaledTestbed(scale float64, hostsPerLeaf int) LeafSpineConfig {
	cfg := PaperTestbed(scale)
	cfg.HostsPerLeaf = hostsPerLeaf
	// 4 trunks total between the leaf pair: trunk rate = hosts*hostRate/4.
	cfg.TrunkRateBps = int64(hostsPerLeaf) * cfg.HostRateBps /
		int64(cfg.Spines*cfg.TrunksPerPair)
	return cfg
}

// LeafSpine holds the constructed fabric plus name indexes.
type LeafSpine struct {
	*Topology
	Cfg    LeafSpineConfig
	Leaves []*Switch
	Spines []*Switch
}

// BuildLeafSpine constructs the topology and computes initial routes.
func BuildLeafSpine(s *sim.Simulator, cfg LeafSpineConfig) *LeafSpine {
	t := NewTopology(s)
	ls := &LeafSpine{Topology: t, Cfg: cfg}
	for i := 0; i < cfg.Leaves; i++ {
		ls.Leaves = append(ls.Leaves, t.AddSwitch(fmt.Sprintf("L%d", i+1)))
	}
	for i := 0; i < cfg.Spines; i++ {
		ls.Spines = append(ls.Spines, t.AddSwitch(fmt.Sprintf("S%d", i+1)))
	}
	trunkCfg := LinkConfig{RateBps: cfg.TrunkRateBps, Delay: cfg.trunkDelay(), QueueCap: cfg.QueueCap, ECNK: cfg.ECNK}
	for _, lf := range ls.Leaves {
		for _, sp := range ls.Spines {
			for k := 0; k < cfg.TrunksPerPair; k++ {
				t.Connect(lf, sp, k, trunkCfg)
			}
		}
	}
	upCfg := LinkConfig{RateBps: cfg.HostRateBps, Delay: cfg.LinkDelay, QueueCap: HostQdiscCap}
	downCfg := LinkConfig{RateBps: cfg.HostRateBps, Delay: cfg.LinkDelay, QueueCap: cfg.QueueCap, ECNK: cfg.ECNK}
	for li, lf := range ls.Leaves {
		for j := 0; j < cfg.HostsPerLeaf; j++ {
			t.AddHost(fmt.Sprintf("h%d", li*cfg.HostsPerLeaf+j), lf, upCfg, downCfg)
		}
	}
	t.ComputeRoutes()
	return ls
}

// FailPaperLink takes down one trunk between S2 and L2, the asymmetry used
// in Sec. 5.2 and 6.2 (drops cross-leaf bandwidth by 25%).
func (ls *LeafSpine) FailPaperLink() {
	ls.SetLinkPairUp("L2", "S2", 0, false)
}

// BaseRTT estimates the unloaded round-trip time between hosts on different
// leaves: 4 hops each way plus negligible serialization.
func (ls *LeafSpine) BaseRTT() sim.Time {
	// host->leaf->spine->leaf->host and back: 4 edge + 4 fabric propagation
	// delays, plus 8 serializations of an MTU packet (dominated by host
	// links).
	prop := 4*ls.Cfg.LinkDelay + 4*ls.Cfg.trunkDelay()
	ser := 4*sim.TransmissionTime(packet.MTU+packet.EncapHeaderLen, ls.Cfg.HostRateBps) +
		4*sim.TransmissionTime(packet.MTU+packet.EncapHeaderLen, ls.Cfg.TrunkRateBps)
	return prop + ser
}

// BisectionBps returns the full inter-leaf bisection bandwidth with all
// links up (paper: 160 Gbps).
func (ls *LeafSpine) BisectionBps() int64 {
	return int64(ls.Cfg.Spines*ls.Cfg.TrunksPerPair) * ls.Cfg.TrunkRateBps
}
