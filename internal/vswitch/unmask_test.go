package vswitch

import (
	"testing"

	"clove/internal/clove"
	"clove/internal/packet"
	"clove/internal/sim"
)

// TestECNRelayedToVMWhenAllPathsCongested exercises the escape hatch of
// Sec. 3.2: when every discovered path toward a peer is congested, the
// source vswitch stops masking and sets ECE on inner ACKs so the sending
// VM throttles.
func TestECNRelayedToVMWhenAllPathsCongested(t *testing.T) {
	mk := func(int) PathPolicy {
		return NewCloveECN(clove.DefaultWeightTableConfig(100 * sim.Microsecond))
	}
	r := newRig(t, 31, mk, nil)
	v := r.vsw[0]
	pol := v.Policy().(*CloveECN)
	ports := []uint16{50001, 50002}
	pol.SetPaths(16, ports)

	// Mark every path toward host 16 as congested via direct feedback.
	// (Advance the clock first: time zero is the "never congested"
	// sentinel in the weight table.)
	r.s.RunUntil(sim.Millisecond)
	now := r.s.Now()
	for _, p := range ports {
		pol.OnFeedback(16, packet.Feedback{Valid: true, Port: p, ECN: true}, now)
	}
	if !pol.AllCongested(16, now+1) {
		t.Fatal("paths not all congested after feedback")
	}

	// Deliver an inner ACK from host 16; the vswitch must stamp ECE.
	var got *packet.Packet
	ackTuple := packet.FiveTuple{Src: 16, Dst: 0, SrcPort: 2000, DstPort: 1000, Proto: packet.ProtoTCP}
	v.Register(ackTuple, func(p *packet.Packet) { got = p })
	ack := &packet.Packet{
		Kind:  packet.KindData,
		Inner: ackTuple,
		Flags: packet.FlagACK,
		Encap: &packet.Encap{SrcHyp: 16, DstHyp: 0, SrcPort: 60000, DstPort: 7471},
	}
	v.FromNetwork(ack)
	if got == nil {
		t.Fatal("ACK not delivered")
	}
	if !got.Flags.Has(packet.FlagECE) {
		t.Error("ECE not relayed to VM despite all paths congested")
	}
	if v.Stats().ECNRelayedToVM != 1 {
		t.Errorf("relay counter = %d", v.Stats().ECNRelayedToVM)
	}

	// Once congestion ages out, ACKs pass clean again.
	r.s.RunUntil(r.s.Now() + sim.Second)
	got = nil
	ack2 := &packet.Packet{
		Kind:  packet.KindData,
		Inner: ackTuple,
		Flags: packet.FlagACK,
		Encap: &packet.Encap{SrcHyp: 16, DstHyp: 0, SrcPort: 60000, DstPort: 7471},
	}
	v.FromNetwork(ack2)
	if got == nil || got.Flags.Has(packet.FlagECE) {
		t.Error("ECE still set after congestion aged out")
	}
}

// TestDataPacketsNeverGetECEStamp verifies the relay touches only pure
// ACKs: data segments to the receiver VM must stay unmodified.
func TestDataPacketsNeverGetECEStamp(t *testing.T) {
	mk := func(int) PathPolicy {
		return NewCloveECN(clove.DefaultWeightTableConfig(100 * sim.Microsecond))
	}
	r := newRig(t, 32, mk, nil)
	v := r.vsw[0]
	pol := v.Policy().(*CloveECN)
	pol.SetPaths(16, []uint16{50001})
	pol.OnFeedback(16, packet.Feedback{Valid: true, Port: 50001, ECN: true}, r.s.Now())

	var got *packet.Packet
	dataTuple := packet.FiveTuple{Src: 16, Dst: 0, SrcPort: 7, DstPort: 8, Proto: packet.ProtoTCP}
	v.Register(dataTuple, func(p *packet.Packet) { got = p })
	v.FromNetwork(&packet.Packet{
		Kind: packet.KindData, Inner: dataTuple, Flags: packet.FlagACK, PayloadLen: 100,
		Encap: &packet.Encap{SrcHyp: 16, DstHyp: 0, SrcPort: 60000, DstPort: 7471},
	})
	if got == nil {
		t.Fatal("not delivered")
	}
	if got.Flags.Has(packet.FlagECE) {
		t.Error("data segment stamped with ECE")
	}
}

// TestLatencyMeasurementReflected checks the Sec. 7 latency variant at the
// vswitch level: a stamped packet's one-way delay lands in the receiver's
// observation table and is relayed back.
func TestLatencyMeasurementReflected(t *testing.T) {
	var vsws []*VSwitch
	mkPol := func(i int) PathPolicy {
		return NewCloveINT(clove.DefaultWeightTableConfig(100*sim.Microsecond), func() sim.Time {
			return vsws[i].sim.Now()
		})
	}
	r := newRig(t, 33, mkPol, func(c *Config) { c.MeasureLatency = true })
	vsws = r.vsw
	pol := r.vsw[0].Policy().(*CloveINT)
	pol.SetPaths(16, r.fourPorts(t, 0, 16))

	snd, _ := r.conn(0, 16, 1000, 2000)
	snd.StartJob(500_000, nil)
	r.s.RunUntil(2 * sim.Second)

	table := pol.Table(16)
	found := false
	for _, st := range table.States() {
		if st.UtilAt > 0 {
			found = true
			// The reflected metric is a one-way delay in seconds on a
			// 100 Mbps-scaled fabric: between 10us and 1s.
			if st.Util <= 1e-5 || st.Util > 1 {
				t.Errorf("reflected delay out of range: %v", st.Util)
			}
		}
	}
	if !found {
		t.Error("no latency reflections recorded")
	}
}
