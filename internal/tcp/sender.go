package tcp

import (
	"fmt"

	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/telemetry"
)

// job is one application-level transfer queued on a persistent connection.
type job struct {
	endSeq  int64 // stream offset after which the job is complete
	arrival sim.Time
	done    func(fct sim.Time)
}

// SenderStats counts transport events for diagnostics and tests.
type SenderStats struct {
	SegmentsSent    int64
	Retransmits     int64
	FastRetransmits int64
	Timeouts        int64
	ECNReductions   int64
	BytesAcked      int64
}

// Sender is a NewReno TCP data sender for one direction of a connection.
// Application jobs are byte ranges appended to a single stream (modelling
// sequential RPCs on a persistent connection, as in the paper's workload).
type Sender struct {
	sim  *sim.Simulator
	cfg  Config
	flow packet.FiveTuple

	// Output transmits a segment toward the network (the hypervisor
	// vswitch installs itself here).
	Output func(*packet.Packet)

	// Stream state.
	sndUna, sndNxt int64
	sndLimit       int64 // total bytes the app has asked to send
	jobs           []job

	// Congestion control (cwnd in segments).
	cwnd, ssthresh float64
	dupAcks        int
	inRecovery     bool
	recover        int64
	lastSendTime   sim.Time
	// hasSent records that at least one segment was ever emitted. The
	// slow-start-after-idle check needs it explicitly: lastSendTime == 0 is
	// ambiguous between "never sent" and "first send happened at sim time
	// 0", and treating time 0 as the never-sent sentinel disabled the idle
	// reset for the whole life of such a connection.
	hasSent bool

	// RTT estimation (Karn: only time un-retransmitted segments).
	srtt, rttvar sim.Time
	rttSeq       int64
	rttSentAt    sim.Time
	rttValid     bool

	// Retransmission timer.
	rtoTimer   sim.EventID
	rtoActive  bool
	rtoBackoff int

	// aborted marks a torn-down sender: no new data, no timer re-arming.
	aborted bool

	// ECN.
	lastECNCut sim.Time
	sendCWR    bool

	// Telemetry (nil when disabled; see internal/telemetry). The counter
	// handles are resolved once in SetTrace so the hot path never touches
	// the registry.
	trace      *telemetry.Tracer
	trRetx     *telemetry.Counter
	trTimeouts *telemetry.Counter

	stats SenderStats
}

// NewSender creates a sender for flow, transmitting via output.
func NewSender(s *sim.Simulator, cfg Config, flow packet.FiveTuple, output func(*packet.Packet)) *Sender {
	cfg = cfg.withDefaults()
	return &Sender{
		sim:      s,
		cfg:      cfg,
		flow:     flow,
		Output:   output,
		cwnd:     cfg.InitCwnd,
		ssthresh: cfg.MaxCwnd,
	}
}

// Flow returns the sender's inner 5-tuple.
func (s *Sender) Flow() packet.FiveTuple { return s.flow }

// Stats returns a snapshot of the sender's counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// Outstanding reports unacknowledged bytes.
func (s *Sender) Outstanding() int64 { return s.sndNxt - s.sndUna }

// Cwnd returns the congestion window in segments (for tests/telemetry).
func (s *Sender) Cwnd() float64 { return s.cwnd }

// Ssthresh returns the slow-start threshold in segments (tests/telemetry).
func (s *Sender) Ssthresh() float64 { return s.ssthresh }

// RTO returns the current retransmission timeout (tests/telemetry).
func (s *Sender) RTO() sim.Time { return s.currentRTO() }

// SetTrace installs the telemetry tracer (nil keeps tracing disabled).
// Counter handles resolve here, at wiring time.
func (s *Sender) SetTrace(tr *telemetry.Tracer) {
	if tr == nil {
		return
	}
	s.trace = tr
	s.trRetx = tr.Counter("tcp.retransmits")
	s.trTimeouts = tr.Counter("tcp.timeouts")
}

// Idle reports whether the sender has nothing outstanding and nothing queued.
func (s *Sender) Idle() bool { return s.sndUna == s.sndLimit }

// Abort tears the sender down mid-stream: the retransmission timer is
// cancelled, queued jobs are dropped (their done callbacks never fire), and
// unsent bytes are discarded, so an abandoned connection — say one whose
// only path's switch failed — stops injecting retransmissions and the event
// queue can drain. Late ACKs are still consumed harmlessly, but never re-arm
// the timer or emit data. Abort is idempotent.
func (s *Sender) Abort() {
	s.aborted = true
	s.stopRTO()
	s.jobs = nil
	s.sndLimit = s.sndNxt
}

// Aborted reports whether Abort was called.
func (s *Sender) Aborted() bool { return s.aborted }

// StartJob appends size bytes to the stream. done (optional) fires when the
// last byte is acknowledged, with the flow completion time measured from
// this call. Jobs queued behind earlier jobs include the queueing delay in
// their FCT, matching the paper's job-completion-time metric.
func (s *Sender) StartJob(size int64, done func(fct sim.Time)) {
	if size <= 0 {
		panic(fmt.Sprintf("tcp: job size %d", size))
	}
	if s.aborted {
		// Teardown races benignly with already-scheduled arrivals; the job
		// is silently dropped, like writes on a closed socket.
		return
	}
	if s.cfg.SlowStartAfterIdle && s.Idle() {
		idle := s.sim.Now() - s.lastSendTime
		rto := s.currentRTO()
		if s.hasSent && idle > rto {
			s.cwnd = s.cfg.InitCwnd
			s.dupAcks = 0
			s.inRecovery = false
		}
	}
	s.sndLimit += size
	s.jobs = append(s.jobs, job{endSeq: s.sndLimit, arrival: s.sim.Now(), done: done})
	s.trySend()
}

// HandleAck processes an incoming (inner) ACK segment. The sender consumes
// the packet: it is released to the configured pool before returning and
// must not be referenced by the caller afterwards.
func (s *Sender) HandleAck(pkt *packet.Packet) {
	if !pkt.Flags.Has(packet.FlagACK) {
		s.cfg.Pool.Put(pkt)
		return
	}
	ack := pkt.Ack
	ece := s.cfg.ECN && pkt.Flags.Has(packet.FlagECE)
	s.cfg.Pool.Put(pkt)

	if ece {
		s.onECE()
	}

	switch {
	case ack > s.sndUna:
		s.onNewAck(ack)
	case ack == s.sndUna && s.sndNxt > s.sndUna:
		s.onDupAck()
	}
	s.trySend()
}

func (s *Sender) onNewAck(ack int64) {
	acked := ack - s.sndUna
	s.stats.BytesAcked += acked
	s.sndUna = ack
	s.dupAcks = 0

	// RTT sample (Karn's rule: only if the timed segment wasn't rexmitted).
	if s.rttValid && ack > s.rttSeq {
		s.updateRTT(s.sim.Now() - s.rttSentAt)
		s.rttValid = false
	}
	s.rtoBackoff = 0

	if s.inRecovery {
		if ack >= s.recover {
			// Full recovery: deflate to ssthresh.
			s.inRecovery = false
			s.cwnd = s.ssthresh
		} else {
			// Partial ACK: retransmit the next hole, deflate partially.
			s.retransmitFirst()
			s.cwnd = minf(maxf(s.ssthresh, s.cwnd-float64(acked)/float64(s.cfg.MSS)+1), s.cfg.MaxCwnd)
		}
	} else if s.cwnd < s.ssthresh {
		// Slow start: one segment per segment acked.
		s.cwnd = minf(s.cwnd+float64(acked)/float64(s.cfg.MSS), s.cfg.MaxCwnd)
	} else {
		// Congestion avoidance: 1/cwnd per segment acked.
		s.cwnd = minf(s.cwnd+float64(acked)/float64(s.cfg.MSS)/s.cwnd, s.cfg.MaxCwnd)
	}

	s.completeJobs()

	if s.sndUna == s.sndNxt {
		s.stopRTO()
	} else {
		s.restartRTO()
	}
}

func (s *Sender) onDupAck() {
	s.dupAcks++
	if s.inRecovery {
		// Window inflation during recovery lets new data flow, bounded by
		// the receive-window stand-in.
		s.cwnd = minf(s.cwnd+1, s.cfg.MaxCwnd)
		return
	}
	if s.dupAcks >= s.cfg.DupAckThreshold {
		// RFC 6582 "careful" variant: while still below the previous
		// recovery point, these dupacks are echoes of segments retransmitted
		// (or reordered) in the last episode — entering recovery again would
		// cut the window repeatedly for one loss event.
		if s.sndUna <= s.recover && s.recover > 0 {
			return
		}
		// Fast retransmit + fast recovery.
		s.stats.FastRetransmits++
		s.ssthresh = maxf(s.flightSegments()/2, 2)
		s.cwnd = s.ssthresh + float64(s.cfg.DupAckThreshold)
		s.inRecovery = true
		s.recover = s.sndNxt
		s.retransmitFirst()
		s.restartRTO()
	}
}

func (s *Sender) onECE() {
	// At most one multiplicative decrease per RTT (RFC 3168 behaviour).
	rtt := s.srtt
	if rtt == 0 {
		rtt = s.cfg.InitRTO / 2
	}
	if s.sim.Now()-s.lastECNCut < rtt {
		return
	}
	s.lastECNCut = s.sim.Now()
	s.stats.ECNReductions++
	s.ssthresh = maxf(s.cwnd/2, 2)
	s.cwnd = s.ssthresh
	s.sendCWR = true
}

func (s *Sender) completeJobs() {
	for len(s.jobs) > 0 && s.sndUna >= s.jobs[0].endSeq {
		j := s.jobs[0]
		s.jobs = s.jobs[1:]
		if j.done != nil {
			j.done(s.sim.Now() - j.arrival)
		}
	}
}

func (s *Sender) flightSegments() float64 {
	return float64(s.sndNxt-s.sndUna) / float64(s.cfg.MSS)
}

// trySend transmits as much new data as the window allows.
func (s *Sender) trySend() {
	for {
		if s.sndNxt >= s.sndLimit {
			return
		}
		if s.flightSegments() >= s.cwnd {
			return
		}
		segLen := int(min64(int64(s.cfg.MSS), s.sndLimit-s.sndNxt))
		s.emit(s.sndNxt, segLen, false)
		s.sndNxt += int64(segLen)
		if !s.rtoActive {
			s.restartRTO()
		}
	}
}

// emit builds and transmits one segment.
func (s *Sender) emit(seq int64, segLen int, isRexmit bool) {
	flags := packet.TCPFlags(0)
	if s.sendCWR {
		flags |= packet.FlagCWR
		s.sendCWR = false
	}
	// The last byte of the stream so far carries FIN semantics for the
	// receiver's bookkeeping; harmless for middle jobs.
	p := s.cfg.Pool.Get()
	p.Kind = packet.KindData
	p.Inner = s.flow
	p.Seq = seq
	p.Flags = flags
	p.PayloadLen = segLen
	p.InnerECT = s.cfg.ECN
	s.stats.SegmentsSent++
	if isRexmit {
		s.stats.Retransmits++
		s.trRetx.Inc()
		if tr := s.trace; tr != nil {
			tr.Retransmit(s.sim.Now(), s.flow, seq, telemetry.RetxFast)
		}
		// Karn: invalidate the RTT sample if we retransmitted into it.
		if s.rttValid && seq <= s.rttSeq {
			s.rttValid = false
		}
	} else if !s.rttValid {
		s.rttSeq = seq
		s.rttSentAt = s.sim.Now()
		s.rttValid = true
	}
	s.lastSendTime = s.sim.Now()
	s.hasSent = true
	if o := s.cfg.Pool.Obs(); o != nil {
		o.StreamSent(s.flow, seq, seq+int64(segLen), isRexmit)
	}
	s.Output(p)
}

func (s *Sender) retransmitFirst() {
	segLen := int(min64(int64(s.cfg.MSS), s.sndLimit-s.sndUna))
	if segLen <= 0 {
		return
	}
	s.emit(s.sndUna, segLen, true)
}

// --- RTO management ---

func (s *Sender) currentRTO() sim.Time {
	var rto sim.Time
	if s.srtt == 0 {
		rto = s.cfg.InitRTO
	} else {
		rto = s.srtt + 4*s.rttvar
	}
	if rto < s.cfg.MinRTO {
		rto = s.cfg.MinRTO
	}
	for i := 0; i < s.rtoBackoff; i++ {
		rto *= 2
		if rto > 60*sim.Second {
			return 60 * sim.Second
		}
	}
	return rto
}

// senderRTO is the static trampoline for the retransmission timer; a method
// value here would allocate on every restart (once per ACK in steady state).
func senderRTO(a, _ any) { a.(*Sender).onRTO() }

func (s *Sender) restartRTO() {
	if s.aborted {
		return
	}
	s.stopRTO()
	s.rtoActive = true
	s.rtoTimer = s.sim.AfterCall(s.currentRTO(), senderRTO, s, nil)
}

func (s *Sender) stopRTO() {
	if s.rtoActive {
		s.sim.Cancel(s.rtoTimer)
		s.rtoActive = false
	}
}

func (s *Sender) onRTO() {
	s.rtoActive = false
	if s.sndUna == s.sndNxt {
		return // everything acked in the meantime
	}
	s.stats.Timeouts++
	s.trTimeouts.Inc()
	if tr := s.trace; tr != nil {
		tr.Retransmit(s.sim.Now(), s.flow, s.sndUna, telemetry.RetxTimeout)
	}
	s.ssthresh = maxf(s.flightSegments()/2, 2)
	s.cwnd = 1
	s.dupAcks = 0
	s.inRecovery = false
	s.rtoBackoff++
	// Go-back-N restart: rewind transmission to the loss point.
	s.sndNxt = s.sndUna
	s.rttValid = false
	s.trySend()
	if s.sndUna != s.sndNxt {
		s.restartRTO()
	}
}

func (s *Sender) updateRTT(sample sim.Time) {
	if s.srtt == 0 {
		s.srtt = sample
		s.rttvar = sample / 2
		return
	}
	// RFC 6298 with alpha=1/8, beta=1/4.
	d := s.srtt - sample
	if d < 0 {
		d = -d
	}
	s.rttvar = (3*s.rttvar + d) / 4
	s.srtt = (7*s.srtt + sample) / 8
}

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Sender) SRTT() sim.Time { return s.srtt }

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
