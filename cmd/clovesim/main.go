// Command clovesim regenerates the paper's evaluation figures on the
// packet-level simulator.
//
// Usage:
//
//	clovesim -fig 4b                 # one figure at the standard scale
//	clovesim -fig all -scale quick   # everything, CI-sized
//	clovesim -fig summary            # the paper's headline ratios
//	clovesim -fig 8b -scale paper -v # full fidelity with progress
//	clovesim -fig 4c -j 8            # 8 parallel workers, same output as -j 1
//	clovesim -list-scenarios         # embedded scenario library
//	clovesim -scenario storm-rolling-spine -scale quick -oracle
//	clovesim -scenario ./my-spec.json
//
// Independent (scheme, load, seed) runs execute on a worker pool sized by
// -j (default GOMAXPROCS). Results are collected in deterministic grid
// order, so the printed tables are byte-identical at any -j for the same
// seeds.
//
// Figures: 4b 4c 5a 5b 5c 6 7 8a 8b 9 (see DESIGN.md for the experiment
// index), plus "summary" and "all".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"clove"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate (4b..9, summary, all)")
		scen       = flag.String("scenario", "", "run a declarative scenario instead of a figure: an embedded name (see -list-scenarios) or a spec-file path")
		listScen   = flag.Bool("list-scenarios", false, "list the embedded scenario library and exit")
		scale      = flag.String("scale", "standard", "run scale: quick | standard | paper")
		load       = flag.Float64("load", 0.7, "network load for -fig summary")
		verbose    = flag.Bool("v", false, "stream per-run progress")
		workers    = flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS, 1 = serial); output is identical for any -j")
		domWorkers = flag.Int("workers", 0, "event-domain workers inside each sharded (leaves > 2) scenario run (0/1 = serial); output is identical for any -workers")
		useOracle  = flag.Bool("oracle", false, "run every simulation under the correctness oracle (see EXPERIMENTS.md \"Correctness\"); panics on any invariant violation")

		// Telemetry (see EXPERIMENTS.md "Telemetry & tracing").
		traceDir      = flag.String("trace", "", "export per-run telemetry traces (JSONL+CSV) under this directory")
		traceInterval = flag.Duration("trace-interval", 0, "telemetry sampling interval (default 100µs sim time)")
		traceSamples  = flag.Int("trace-samples", 0, "per-stream ring-buffer bound (default 16384)")

		// Optional overrides on top of the chosen scale.
		hosts     = flag.Int("hosts", 0, "override hosts per leaf")
		jobs      = flag.Int("jobs", 0, "override total jobs per run")
		sizeScale = flag.Float64("size-scale", 0, "override flow-size multiplier")
		seeds     = flag.Int("seeds", 0, "override number of seeds (1..n)")

		// Profiling (see EXPERIMENTS.md "Performance").
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clovesim: -cpuprofile:", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "clovesim: -cpuprofile:", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clovesim: -memprofile:", err)
			os.Exit(2)
		}
		defer f.Close()
		runtime.GC() // settle live objects so the profile shows retained allocs
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "clovesim: -memprofile:", err)
			os.Exit(2)
		}
	}()

	var sc clove.Scale
	switch *scale {
	case "quick":
		sc = clove.QuickScale()
	case "standard":
		sc = clove.StandardScale()
	case "paper":
		sc = clove.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "clovesim: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *hosts > 0 {
		sc.HostsPerLeaf = *hosts
	}
	if *jobs > 0 {
		sc.TotalJobs = *jobs
	}
	if *sizeScale > 0 {
		sc.SizeScale = *sizeScale
	}
	if *seeds > 0 {
		sc.Seeds = sc.Seeds[:0]
		for i := 1; i <= *seeds; i++ {
			sc.Seeds = append(sc.Seeds, int64(i))
		}
	}
	sc.Parallelism = *workers
	sc.DomainWorkers = *domWorkers
	sc.Oracle = *useOracle
	if *traceDir != "" {
		sc.Telemetry = &clove.TraceSpec{
			Dir:        *traceDir,
			Interval:   clove.FromDuration(*traceInterval),
			MaxSamples: *traceSamples,
		}
	}

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}

	if *listScen {
		for _, name := range clove.ScenarioNames() {
			sp, err := clove.LoadScenario(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "clovesim:", err)
				os.Exit(2)
			}
			fmt.Printf("%-24s %s\n", name, sp.Description)
		}
		return
	}
	if *scen != "" {
		sp, err := clove.LoadScenario(*scen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clovesim:", err)
			os.Exit(2)
		}
		rows := clove.RunScenario(sp, clove.ScenarioOpts{
			Quick:         *scale == "quick",
			Parallelism:   *workers,
			Oracle:        *useOracle,
			Telemetry:     sc.Telemetry,
			DomainWorkers: *domWorkers,
		}, progress)
		fmt.Print(clove.FormatRows(rows))
		return
	}

	run := func(id string) {
		rows, err := clove.RunFigure(id, sc, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "clovesim:", err)
			os.Exit(2)
		}
		fmt.Print(clove.FormatRows(rows))
	}

	switch *fig {
	case "summary":
		fmt.Println(clove.RunSummary(sc, *load, progress))
	case "all":
		for _, id := range clove.FigureIDs() {
			run(id)
		}
		fmt.Println(clove.RunSummary(sc, *load, progress))
	default:
		run(*fig)
	}
}
