// Package cluster composes the full simulated deployment: the leaf–spine
// fabric, one virtual switch per hypervisor running the selected
// load-balancing scheme, path discovery, tenant TCP/MPTCP endpoints, and
// the workload drivers (web-search load sweeps and incast) used by every
// experiment in the paper.
package cluster

import (
	"fmt"

	"clove/internal/clove"
	"clove/internal/conga"
	"clove/internal/discovery"
	"clove/internal/netem"
	"clove/internal/oracle"
	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/stats"
	"clove/internal/tcp"
	"clove/internal/telemetry"
	"clove/internal/vswitch"
)

// Scheme selects the load-balancing algorithm under test.
type Scheme string

// The schemes evaluated in the paper (Secs. 5 and 6).
const (
	SchemeECMP        Scheme = "ecmp"
	SchemeEdgeFlowlet Scheme = "edge-flowlet"
	SchemeCloveECN    Scheme = "clove-ecn"
	SchemeCloveINT    Scheme = "clove-int"
	SchemePresto      Scheme = "presto"
	SchemeMPTCP       Scheme = "mptcp"
	SchemeCONGA       Scheme = "conga"
	SchemeLetFlow     Scheme = "letflow"
	// SchemeCloveLatency is the Sec. 7 extension: instead of ECN or INT,
	// the destination hypervisor reflects measured one-way path latency
	// (NIC timestamping + synchronized clocks), and new flowlets go to the
	// currently-fastest path.
	SchemeCloveLatency Scheme = "clove-latency"
	// SchemeConcury is the stateless edge design point (after Concury's
	// small-state L4 balancer): the encap source port is a pure consistent
	// hash over the five-tuple and a versioned bucket table, with no
	// per-flow state — per-connection consistency across path churn
	// instead of flowlet agility. Runs under the oracle's conn-consistency
	// invariant (see oracle.RequireConnConsistency).
	SchemeConcury Scheme = "concury"
	// SchemeCharon is the switch-assisted design point (a Charon-style
	// "smart fabric" midpoint between Clove-ECN and CONGA): leaf switches
	// stamp per-path load into transiting packets (netem's load-stamping
	// hook on top of the DRE/INT machinery), and the edge steers new
	// flowlets by power-of-two-choices over the reflected loads.
	SchemeCharon Scheme = "charon"
	// SchemeCloveUniform is a differential-testing reference, not a paper
	// scheme (it is deliberately absent from AllSchemes): plain round-robin
	// over discovered paths. Clove-ECN with frozen uniform weights must
	// behave byte-for-byte identically to it.
	SchemeCloveUniform Scheme = "clove-uniform"
	// SchemeConcuryRef and SchemeCharonRef are the reference twins of
	// SchemeConcury and SchemeCharon for differential testing (absent from
	// AllSchemes, like SchemeCloveUniform): the same scheme semantics
	// implemented by replaying the control-event history instead of
	// incremental state. A full run under either must be byte-for-byte
	// identical to its principal.
	SchemeConcuryRef Scheme = "concury-ref"
	SchemeCharonRef  Scheme = "charon-ref"
)

// AllSchemes lists every scheme in presentation order (the paper's eight,
// the Sec. 7 latency-feedback extension, and the two non-paper contenders —
// stateless Concury and switch-assisted Charon).
func AllSchemes() []Scheme {
	return []Scheme{SchemeECMP, SchemeEdgeFlowlet, SchemeCloveECN, SchemeCloveINT,
		SchemePresto, SchemeMPTCP, SchemeCONGA, SchemeLetFlow, SchemeCloveLatency,
		SchemeConcury, SchemeCharon}
}

// Config parameterizes a cluster.
type Config struct {
	Seed   int64
	Topo   netem.LeafSpineConfig
	Scheme Scheme

	// FlowletGap overrides the flowlet inter-packet gap (default: 1x base
	// RTT, the paper's best setting in Fig. 6).
	FlowletGap sim.Time
	// RelayInterval overrides the feedback relay spacing (default RTT/2).
	RelayInterval sim.Time
	// Beta overrides the weight-reduction fraction (default 1/3).
	Beta float64
	// CongestedAge overrides how long a path stays "congested" after ECN
	// feedback (drives weight redistribution and ECN unmasking).
	CongestedAge sim.Time
	// UtilAge overrides how long INT utilization samples stay trusted.
	UtilAge sim.Time
	// PathsK is how many disjoint paths discovery selects (default 4).
	PathsK int
	// UseProber selects real traceroute discovery with periodic refresh;
	// false uses the oracle enumeration (identical result, instant, for
	// cheap benchmark setup).
	UseProber bool
	// ProbeInterval for periodic rediscovery when UseProber is set.
	ProbeInterval sim.Time
	// MPTCPSubflows for the MPTCP scheme (default 4, as deployed in Sec. 5).
	MPTCPSubflows int
	// PrestoIdealWeights grants Presto the statically-correct asymmetric
	// path weights (Sec. 5.2 gives it this benefit of the doubt).
	PrestoIdealWeights bool
	// AsymmetricFailure takes the S2–L2 trunk down before traffic starts.
	AsymmetricFailure bool
	// AdaptiveFlowletGap lets the clove-latency scheme widen the flowlet
	// gap with the measured path-delay spread (Sec. 7 extension).
	AdaptiveFlowletGap bool
	// TCP overrides the transport parameters (zero value = defaults).
	TCP tcp.Config
	// TenantECN gives tenant VM stacks RFC 3168 ECN response. Off by
	// default: the paper's 2017 tenant stacks run loss-based TCP without
	// ECN negotiation, and the fabric's ECN marks exist solely for the
	// hypervisor's consumption. (DCTCP-style tenants are the paper's
	// future-work discussion, reachable by setting this.)
	TenantECN bool
	// Oracle installs the correctness oracle (internal/oracle) on this run.
	// Observation never perturbs the simulation; call CheckOracle after the
	// run for the verdict.
	Oracle bool
	// Telemetry, when non-nil, installs the metrics/trace subsystem
	// (internal/telemetry): polled streams for queue occupancy, path weights,
	// cwnd, and sim load, plus event streams for retransmits, flowlets, and
	// FCTs. Nil (the default) leaves every hot-path hook behind a single nil
	// check, preserving the zero-allocation forwarding path.
	Telemetry *telemetry.Config
	// FreezeWeights disables Clove weight adaptation (WeightTableConfig
	// .Frozen) — differential tests only.
	FreezeWeights bool
	// Domains shards the cluster across event domains (one per leaf, one per
	// spine) on a sim.Engine instead of one Simulator; RunMix then uses the
	// all-to-all sharded driver (mixdomains.go). Implied — and forced — for
	// topologies with more than two leaves, which the legacy two-leaf driver
	// cannot run. Results are bit-identical at any DomainWorkers but are a
	// different (sharded) simulation than single-sim mode at the same seed.
	Domains bool
	// DomainWorkers is how many OS threads execute domain windows in sharded
	// mode (<=1 = serial). Any value produces identical results.
	DomainWorkers int
	// ServersPerClient caps each client's persistent-connection fan-out in
	// the sharded mix driver (0 = min(32, hosts on other leaves)); the
	// legacy driver's full two-leaf mesh would be quadratic at 1024 hosts.
	ServersPerClient int
}

// Cluster is a fully wired deployment ready to run workloads.
type Cluster struct {
	Cfg Config
	// Sim is the single Simulator in legacy mode; nil in sharded mode.
	Sim *sim.Simulator
	// Eng is the sharded engine in domain mode; nil in legacy mode.
	Eng *sim.Engine
	LS  *netem.LeafSpine

	VSwitches []*vswitch.VSwitch
	Conga     *conga.Fabric
	Probers   []*discovery.Prober
	Recorder  *stats.FCTRecorder
	// Oracle is the installed correctness oracle, nil unless Config.Oracle.
	Oracle *oracle.Oracle
	// Trace is the installed tracer, nil unless Config.Telemetry is set.
	Trace *telemetry.Tracer

	rtt      sim.Time
	tcpCfg   tcp.Config
	conns    map[connKey]*Conn
	connList []*Conn // open order, for deterministic telemetry sampling
	nextPort uint16

	// loadScale multiplies every mix-workload arrival rate; scenario
	// load-ramp events change it mid-run (see RunMix and SetLoadScale).
	// In sharded mode it is written only at engine barriers and read by
	// domain windows after them, so no synchronization is needed.
	loadScale float64

	// Sharded-mode state: per-domain tracers (domain order) and per-domain
	// connection lists (by client's domain, open order) for race-free,
	// deterministic telemetry sampling.
	domTraces []*telemetry.Tracer
	domConns  [][]*Conn
}

type connKey struct {
	client, server packet.HostID
	idx            int
}

// New builds the cluster: topology, vswitches with the scheme's policy, and
// (for CONGA) the in-network fabric. Link failure, if configured, is applied
// before routing converges, as in the paper's asymmetric experiments.
func New(cfg Config) *Cluster {
	if cfg.Topo.Leaves == 0 {
		cfg.Topo = netem.PaperTestbed(0.01)
	}
	if cfg.Topo.Leaves > 2 {
		cfg.Domains = true
	}
	if cfg.Domains {
		return newSharded(cfg)
	}
	if cfg.PathsK == 0 {
		cfg.PathsK = 4
	}
	if cfg.MPTCPSubflows == 0 {
		cfg.MPTCPSubflows = tcp.DefaultSubflows
	}
	s := sim.New(cfg.Seed)
	ls := netem.BuildLeafSpine(s, cfg.Topo)
	c := &Cluster{
		Cfg:       cfg,
		Sim:       s,
		LS:        ls,
		Recorder:  &stats.FCTRecorder{},
		rtt:       ls.BaseRTT(),
		conns:     map[connKey]*Conn{},
		nextPort:  10000,
		loadScale: 1,
	}
	// The oracle attaches before anything else happens (in particular before
	// FailPaperLink) so its link-state tracking observes every transition.
	if cfg.Oracle {
		c.Oracle = oracle.New()
		ls.Pool().SetObserver(c.Oracle)
		s.SetEventHook(c.Oracle.AfterEvent)
		if connConsistent(cfg.Scheme) {
			c.Oracle.RequireConnConsistency()
		}
	}
	// Defaults match the paper's best settings (Fig. 6): flowlet gap of one
	// network RTT, feedback relay every half RTT (Sec. 3.2). The Fig. 6
	// parameter scan on this simulator reproduces the same optimum.
	if cfg.FlowletGap == 0 {
		c.Cfg.FlowletGap = c.rtt
	}
	if cfg.RelayInterval == 0 {
		c.Cfg.RelayInterval = c.rtt / 2
	}
	if cfg.Beta == 0 {
		c.Cfg.Beta = 1.0 / 3.0
	}
	c.tcpCfg = cfg.TCP
	if c.tcpCfg.MSS == 0 {
		c.tcpCfg = tcp.DefaultConfig()
	}
	c.tcpCfg.ECN = cfg.TenantECN
	// All transport endpoints draw segments from (and release them to) the
	// topology's shared packet free list.
	c.tcpCfg.Pool = ls.Pool()

	if cfg.AsymmetricFailure {
		ls.FailPaperLink()
	}

	vcfg := vswitch.Config{
		EncapDstPort:       7471,
		FlowletGap:         c.Cfg.FlowletGap,
		RelayInterval:      c.Cfg.RelayInterval,
		StandaloneFeedback: true,
	}
	switch cfg.Scheme {
	case SchemeCloveECN, SchemeCloveINT, SchemeCloveUniform:
		vcfg.MaskECN = true
		vcfg.RequestINT = cfg.Scheme == SchemeCloveINT
	case SchemeCloveLatency:
		vcfg.MaskECN = true
		vcfg.MeasureLatency = true
		vcfg.AdaptiveFlowletGap = cfg.AdaptiveFlowletGap
	default:
		vcfg.MaskECN = false
	}

	// Weight-table timescales key off the base RTT: congestion memory of a
	// few unloaded RTTs reacts at feedback timescales without smearing
	// stale state over the (longer) flowlet timescale.
	wtCfg := clove.DefaultWeightTableConfig(c.rtt)
	wtCfg.Beta = c.Cfg.Beta
	wtCfg.Frozen = cfg.FreezeWeights
	if cfg.CongestedAge > 0 {
		wtCfg.CongestedAge = cfg.CongestedAge
	}
	if cfg.UtilAge > 0 {
		wtCfg.UtilAge = cfg.UtilAge
	}

	for i, h := range ls.Hosts() {
		var pol vswitch.PathPolicy
		switch cfg.Scheme {
		case SchemeECMP, SchemeMPTCP, SchemeCONGA, SchemeLetFlow:
			pol = vswitch.NewECMP()
		case SchemeEdgeFlowlet:
			pol = vswitch.NewEdgeFlowlet()
		case SchemeCloveECN:
			pol = vswitch.NewCloveECN(wtCfg)
		case SchemeCloveUniform:
			pol = vswitch.NewCloveUniform()
		case SchemeCloveINT, SchemeCloveLatency:
			// Both are "least reflected metric" policies: INT stamps max
			// link utilization; the latency variant reflects one-way delay.
			pol = vswitch.NewCloveINT(wtCfg, s.Now)
		case SchemePresto:
			pol = vswitch.NewPresto(s)
		case SchemeConcury:
			pol = vswitch.NewConcury()
		case SchemeConcuryRef:
			pol = vswitch.NewConcuryRef()
		case SchemeCharon:
			pol = vswitch.NewCharon(wtCfg.UtilAge, s.Now)
		case SchemeCharonRef:
			pol = vswitch.NewCharonRef(wtCfg.UtilAge, s.Now)
		default:
			panic(fmt.Sprintf("cluster: unknown scheme %q", cfg.Scheme))
		}
		_ = i
		c.VSwitches = append(c.VSwitches, vswitch.New(s, h, vcfg, pol))
	}

	switch cfg.Scheme {
	case SchemeCONGA:
		// Hardware flowlet detection runs at a finer timescale than the
		// software edge (the CONGA ASIC reroutes within a fraction of an
		// RTT); a quarter of the edge gap reproduces its advantage.
		c.Conga = conga.Attach(s, ls, conga.Config{FlowletGap: c.Cfg.FlowletGap / 4})
	case SchemeLetFlow:
		attachLetFlow(s, ls, c.Cfg.FlowletGap)
	case SchemeCharon, SchemeCharonRef:
		attachCharonStamping(ls)
	}
	c.setupTelemetry()
	return c
}

// attachCharonStamping turns on fabric-initiated load stamping at every
// leaf. The first-hop leaf enables INT on a data packet, and the ordinary
// stamping then records the max egress utilization across that hop and
// every later one — the same telemetry Clove-INT requests from the edge,
// initiated by the switches instead.
func attachCharonStamping(ls *netem.LeafSpine) {
	for _, sw := range ls.Leaves {
		sw.SetLoadStamp(true)
	}
}

// connConsistent reports whether scheme promises per-connection path
// stability (the oracle's conn-consistency invariant applies).
func connConsistent(s Scheme) bool {
	return s == SchemeConcury || s == SchemeConcuryRef
}

// RTT returns the unloaded base round-trip time of the fabric.
func (c *Cluster) RTT() sim.Time { return c.rtt }

// SetLoadScale multiplies the arrival rate of every mix-workload client from
// now on (scenario load-ramp events; 1 restores the configured load). It
// only affects inter-arrival gaps drawn after the call.
func (c *Cluster) SetLoadScale(f float64) {
	if !(f > 0) {
		panic(fmt.Sprintf("cluster: load scale %v", f))
	}
	c.loadScale = f
}

// Quiesce stops every periodic process the cluster started — path probers
// and the telemetry sampling ticker — so that, once in-flight traffic
// settles (completing or being Conn.Abort-ed), the event queue can drain to
// empty: the state in which the oracle's conservation audit is exact
// (oracle.Check with 0 pending events reports any leaked packet).
func (c *Cluster) Quiesce() {
	for _, pr := range c.Probers {
		pr.Stop()
	}
	c.Trace.Stop()
	for _, tr := range c.domTraces {
		tr.Stop()
	}
}

// needsPaths reports whether the scheme consumes discovered path sets.
func (c *Cluster) needsPaths() bool {
	switch c.Cfg.Scheme {
	case SchemeCloveECN, SchemeCloveINT, SchemeCloveLatency, SchemePresto, SchemeCloveUniform,
		SchemeConcury, SchemeConcuryRef, SchemeCharon, SchemeCharonRef:
		return true
	}
	return false
}

// CheckOracle returns the oracle's end-of-run verdict, nil when the oracle
// is not installed or found no violation.
func (c *Cluster) CheckOracle() error {
	if c.Oracle == nil {
		return nil
	}
	if c.Eng != nil {
		return c.Oracle.Check(c.Eng.Pending())
	}
	return c.Oracle.Check(c.Sim.Pending())
}

// SetupPaths installs path sets for every (src, dst) pair that will carry
// traffic, using either the oracle enumeration or the traceroute prober.
func (c *Cluster) SetupPaths(pairs [][2]packet.HostID) {
	if !c.needsPaths() {
		return
	}
	if c.Cfg.UseProber {
		dcfg := discovery.DefaultConfig(c.rtt)
		dcfg.K = c.Cfg.PathsK
		if c.Cfg.ProbeInterval > 0 {
			dcfg.Interval = c.Cfg.ProbeInterval
		}
		bySrc := map[packet.HostID][]packet.HostID{}
		var srcs []packet.HostID // first-appearance order: prober start order must be deterministic
		for _, p := range pairs {
			if _, ok := bySrc[p[0]]; !ok {
				srcs = append(srcs, p[0])
			}
			bySrc[p[0]] = append(bySrc[p[0]], p[1])
		}
		for _, src := range srcs {
			dsts := bySrc[src]
			pr := discovery.NewProber(c.simFor(src), c.VSwitches[src], dcfg)
			if c.Cfg.Scheme == SchemePresto && c.Cfg.PrestoIdealWeights {
				pr.OnPaths = func(dst packet.HostID, ports []uint16, paths []discovery.Path) {
					c.installPrestoWeights(src, dst, ports, paths)
				}
			}
			pr.Start(dsts)
			c.Probers = append(c.Probers, pr)
		}
		return
	}
	for _, p := range pairs {
		c.oracleInstall(p[0], p[1])
	}
}

// installPrestoWeights derives the ideal static weights from path link
// overlap: a path's weight is inversely proportional to the number of
// selected paths sharing its most-shared link. On the paper's asymmetric
// topology this yields exactly (0.33, 0.33, 0.17, 0.17).
func (c *Cluster) installPrestoWeights(src, dst packet.HostID, ports []uint16, paths []discovery.Path) {
	use := map[packet.LinkID]int{}
	for _, p := range paths {
		for _, l := range fabricLinks(p.Links) {
			use[l]++
		}
	}
	weights := map[uint16]float64{}
	for _, p := range paths {
		maxShare := 1
		for _, l := range fabricLinks(p.Links) {
			if use[l] > maxShare {
				maxShare = use[l]
			}
		}
		weights[p.Port] = 1.0 / float64(maxShare)
	}
	pol := c.VSwitches[src].Policy().(*vswitch.Presto)
	pol.SetStaticWeights(dst, weights)
	c.VSwitches[src].SetPaths(dst, ports)
}

// fabricLinks drops the terminal leaf->host downlink every path shares.
func fabricLinks(links []packet.LinkID) []packet.LinkID {
	if len(links) <= 1 {
		return links
	}
	return links[:len(links)-1]
}
