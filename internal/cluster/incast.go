package cluster

import (
	"clove/internal/packet"
	"clove/internal/sim"
)

// IncastParams configures the partition–aggregate workload of Sec. 5.3: a
// single client requests a fixed response split evenly across n servers,
// which all answer simultaneously, stressing the client access link.
type IncastParams struct {
	// Fanout is the number of servers per request (the paper sweeps 1–16).
	Fanout int
	// ResponseBytes is the total response size per request (paper: 10 MB).
	ResponseBytes int64
	// Requests is how many sequential requests to issue.
	Requests int
	// MaxSimTime guards non-converging runs.
	MaxSimTime sim.Time
}

// IncastResult reports the client-side outcome.
type IncastResult struct {
	Completed  int
	Bytes      int64
	Elapsed    sim.Time
	GoodputBps float64 // client access-link goodput over the run
	TimedOut   bool
}

// RunIncast drives the incast workload: host 0 is the client; each request
// picks Fanout servers uniformly from the far leaf; all send
// ResponseBytes/Fanout concurrently; the next request issues when every
// shard of the previous one completes.
func (c *Cluster) RunIncast(p IncastParams) IncastResult {
	if p.Fanout <= 0 || p.Requests <= 0 || p.ResponseBytes <= 0 {
		panic("cluster: incast parameters must be positive")
	}
	if c.Eng != nil {
		panic("cluster: RunIncast is single-sim only; domain-mode clusters run workloads through RunMix (FracIncast)")
	}
	if p.MaxSimTime == 0 {
		p.MaxSimTime = 600 * sim.Second
	}
	nHosts := c.Cfg.Topo.HostsPerLeaf
	client := packet.HostID(0)
	rng := c.Sim.Rand()

	// Pre-open a persistent connection from every candidate server to the
	// client, and install paths for both directions.
	var pairs [][2]packet.HostID
	serverConns := make([]*Conn, nHosts)
	for i := 0; i < nHosts; i++ {
		server := packet.HostID(nHosts + i)
		serverConns[i] = c.OpenConn(server, client, 0)
		pairs = append(pairs, [2]packet.HostID{server, client}, [2]packet.HostID{client, server})
	}
	c.SetupPaths(pairs)

	res := IncastResult{}
	shard := p.ResponseBytes / int64(p.Fanout)
	if shard <= 0 {
		shard = 1
	}
	var issue func(remaining int)
	issue = func(remaining int) {
		if remaining == 0 {
			res.Elapsed = c.Sim.Now()
			c.Sim.Stop()
			return
		}
		// Choose Fanout distinct servers uniformly.
		perm := rng.Perm(nHosts)[:p.Fanout]
		pending := p.Fanout
		for _, si := range perm {
			conn := serverConns[si]
			conn.StartJob(shard, func(fct sim.Time) {
				if tr := c.Trace; tr != nil {
					tr.FCT(c.Sim.Now(), conn.Client, conn.Server, shard, fct)
				}
				res.Bytes += shard
				pending--
				if pending == 0 {
					res.Completed++
					issue(remaining - 1)
				}
			})
		}
	}
	c.Sim.After(0, func() { issue(p.Requests) })
	c.Sim.RunUntil(p.MaxSimTime)

	if res.Completed < p.Requests {
		res.TimedOut = true
		res.Elapsed = c.Sim.Now()
	}
	if res.Elapsed > 0 {
		res.GoodputBps = float64(res.Bytes) * 8 / res.Elapsed.Seconds()
	}
	return res
}
