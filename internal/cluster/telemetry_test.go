package cluster

import (
	"testing"

	"clove/internal/sim"
	"clove/internal/telemetry"
)

// TestTelemetryDoesNotPerturb pins the zero-interference contract: enabling
// the tracer must not change simulation outcomes. Sampling draws no
// randomness and injects no packets, so two runs from the same seed — one
// with telemetry off, one on — must produce identical FCT sample streams.
func TestTelemetryDoesNotPerturb(t *testing.T) {
	run := func(tcfg *telemetry.Config) ([]int64, []sim.Time) {
		c := New(Config{Seed: 21, Topo: smallTopo(), Scheme: SchemeCloveECN, Telemetry: tcfg})
		res := c.RunWebSearch(smallWS(0.5))
		if res.Completed == 0 || res.TimedOut {
			t.Fatalf("run failed: %+v", res)
		}
		sizes := make([]int64, 0, res.Completed)
		fcts := make([]sim.Time, 0, res.Completed)
		for _, s := range c.Recorder.Samples() {
			sizes = append(sizes, s.Size)
			fcts = append(fcts, s.FCT)
		}
		return sizes, fcts
	}
	szOff, fctOff := run(nil)
	szOn, fctOn := run(&telemetry.Config{})
	if len(szOff) != len(szOn) {
		t.Fatalf("completed %d jobs without telemetry, %d with", len(szOff), len(szOn))
	}
	for i := range szOff {
		if szOff[i] != szOn[i] || fctOff[i] != fctOn[i] {
			t.Fatalf("sample %d diverged: off=(%d,%v) on=(%d,%v)",
				i, szOff[i], fctOff[i], szOn[i], fctOn[i])
		}
	}
}

// TestTelemetryEmitsAllStreams runs a traced clove-ecn workload and checks
// every stream the tracer is wired for actually captured data: link queues,
// path weights, sender cwnd, flowlet splits, and per-job FCTs.
func TestTelemetryEmitsAllStreams(t *testing.T) {
	c := New(Config{
		Seed: 22, Topo: smallTopo(), Scheme: SchemeCloveECN,
		Telemetry: &telemetry.Config{Interval: sim.Millisecond},
	})
	res := c.RunWebSearch(smallWS(0.5))
	if res.Completed == 0 || res.TimedOut {
		t.Fatalf("run failed: %+v", res)
	}
	tr := c.Trace
	if tr == nil {
		t.Fatal("cluster did not build a tracer")
	}
	if n := len(tr.Queues()); n == 0 {
		t.Error("no queue samples")
	}
	if n := len(tr.Weights()); n == 0 {
		t.Error("no weight samples")
	}
	if n := len(tr.Cwnds()); n == 0 {
		t.Error("no cwnd samples")
	}
	if n := len(tr.Flowlets()); n == 0 {
		t.Error("no flowlet samples")
	}
	if got := len(tr.FCTs()); got != res.Completed {
		t.Errorf("FCT stream has %d records, completed %d jobs", got, res.Completed)
	}

	// Weight samples must come from real clove tables: positive weights
	// that respect the floor, and ages either -1 (never congested) or >= 0.
	for _, w := range tr.Weights() {
		if w.Weight <= 0 || w.Weight > 1 {
			t.Fatalf("weight sample out of range: %+v", w)
		}
		if w.CongestedAge < -1 {
			t.Fatalf("bad congested age: %+v", w)
		}
	}
	// Export must succeed end-to-end from a live run.
	if err := tr.Export(t.TempDir()); err != nil {
		t.Fatalf("export: %v", err)
	}
}
