// Websearch sweeps network load on the symmetric testbed for three schemes
// and prints a Fig. 4b-style table: average flow completion time vs load.
// Flags control the scale so the same binary can run anywhere from a quick
// demo to a paper-scale sweep.
package main

import (
	"flag"
	"fmt"

	"clove"
)

func main() {
	var (
		hosts     = flag.Int("hosts", 4, "hosts per leaf")
		jobs      = flag.Int("jobs", 1000, "total jobs per run")
		sizeScale = flag.Float64("size-scale", 0.1, "flow-size multiplier vs the paper's distribution")
		asym      = flag.Bool("asym", false, "fail one spine trunk (Fig. 4c instead of 4b)")
		seed      = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	schemes := []clove.Scheme{clove.ECMP, clove.EdgeFlowlet, clove.CloveECN}
	loads := []float64{0.3, 0.5, 0.7}

	fmt.Printf("web-search load sweep (%d hosts/leaf, %d jobs, asym=%v)\n\n", *hosts, *jobs, *asym)
	fmt.Printf("%-14s", "load")
	for _, s := range schemes {
		fmt.Printf("%16s", s)
	}
	fmt.Println()

	for _, load := range loads {
		fmt.Printf("%-14.0f", load*100)
		for _, scheme := range schemes {
			c := clove.NewCluster(clove.ClusterConfig{
				Seed:              *seed,
				Topo:              clove.ScaledTestbed(1.0, *hosts),
				Scheme:            scheme,
				AsymmetricFailure: *asym,
			})
			res := c.RunWebSearch(clove.WebSearchParams{
				Load: load, TotalJobs: *jobs, SizeScale: *sizeScale,
			})
			if res.TimedOut {
				fmt.Printf("%16s", "timeout")
				continue
			}
			fmt.Printf("%14.3fms", c.Recorder.Mean()*1000)
		}
		fmt.Println()
	}
	fmt.Println("\n(avg FCT per load; lower is better — compare the scheme ordering with Fig. 4b/4c)")
}
