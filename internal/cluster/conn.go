package cluster

import (
	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/tcp"
)

// Conn is one persistent application connection from a client VM to a
// server VM: a TCP (or MPTCP) sender on the client plus receiver(s) on the
// server, wired through both hypervisors' virtual switches.
type Conn struct {
	Client, Server packet.HostID
	Flow           packet.FiveTuple

	snd *tcp.Sender
	mp  *tcp.MPSender
}

// OpenConn establishes the idx-th persistent connection between client and
// server (connections are cached per (client, server, idx)). Under the
// MPTCP scheme the connection carries the configured number of subflows.
func (c *Cluster) OpenConn(client, server packet.HostID, idx int) *Conn {
	key := connKey{client, server, idx}
	if conn, ok := c.conns[key]; ok {
		return conn
	}
	sp := c.nextPort
	c.nextPort += uint16(c.Cfg.MPTCPSubflows) + 1
	flow := packet.FiveTuple{
		Src: client, Dst: server,
		SrcPort: sp, DstPort: 80,
		Proto: packet.ProtoTCP,
	}
	conn := &Conn{Client: client, Server: server, Flow: flow}
	cvs, svs := c.VSwitches[client], c.VSwitches[server]

	// Each endpoint lives on its host's Simulator and draws from its host's
	// pool. In legacy mode both resolve to the cluster-wide Sim and the
	// topology's shared pool, so this is behavior-identical there; in
	// sharded mode they are the endpoint's domain Sim and pool.
	cs, ss := c.simFor(client), c.simFor(server)
	ccfg, scfg := c.tcpCfg, c.tcpCfg
	ccfg.Pool = c.poolFor(client)
	scfg.Pool = c.poolFor(server)

	if c.Cfg.Scheme == SchemeMPTCP {
		mp := tcp.NewMPSender(cs, ccfg, flow, c.Cfg.MPTCPSubflows, cvs.FromVM)
		for _, sub := range mp.Subflows() {
			sf := sub.Flow()
			rcv := tcp.NewReceiver(ss, scfg, sf, svs.FromVM)
			svs.Register(sf, rcv.HandleData)
			cvs.Register(sf.Reverse(), mp.HandleAck)
		}
		conn.mp = mp
	} else {
		snd := tcp.NewSender(cs, ccfg, flow, cvs.FromVM)
		rcv := tcp.NewReceiver(ss, scfg, flow, svs.FromVM)
		svs.Register(flow, rcv.HandleData)
		cvs.Register(flow.Reverse(), snd.HandleAck)
		conn.snd = snd
	}
	tr := c.traceFor(client)
	if conn.mp != nil {
		for _, sub := range conn.mp.Subflows() {
			sub.SetTrace(tr)
		}
	} else {
		conn.snd.SetTrace(tr)
	}
	c.conns[key] = conn
	c.connList = append(c.connList, conn)
	if c.domConns != nil {
		id := c.domFor(client).ID()
		c.domConns[id] = append(c.domConns[id], conn)
	}
	return conn
}

// TransportStats sums sender-side transport counters across all open
// connections (diagnostics: retransmission and timeout pressure).
func (c *Cluster) TransportStats() tcp.SenderStats {
	var agg tcp.SenderStats
	add := func(s tcp.SenderStats) {
		agg.SegmentsSent += s.SegmentsSent
		agg.Retransmits += s.Retransmits
		agg.FastRetransmits += s.FastRetransmits
		agg.Timeouts += s.Timeouts
		agg.ECNReductions += s.ECNReductions
		agg.BytesAcked += s.BytesAcked
	}
	for _, conn := range c.conns {
		if conn.mp != nil {
			for _, sub := range conn.mp.Subflows() {
				add(sub.Stats())
			}
			continue
		}
		add(conn.snd.Stats())
	}
	return agg
}

// StartJob sends size bytes on the connection; done fires with the job
// completion time (measured from now, queueing included).
func (conn *Conn) StartJob(size int64, done func(fct sim.Time)) {
	if conn.mp != nil {
		conn.mp.StartJob(size, done)
		return
	}
	conn.snd.StartJob(size, done)
}

// Abort tears down the connection's transport mid-transfer: retransmission
// timers are cancelled and unfinished jobs dropped without completion
// callbacks. Used when the workload abandons a connection stranded by a
// fabric failure; with every periodic process also stopped (Quiesce), the
// event queue then drains and the oracle's conservation audit is exact.
func (conn *Conn) Abort() {
	if conn.mp != nil {
		conn.mp.Abort()
		return
	}
	conn.snd.Abort()
}
