package scenario

import (
	"reflect"
	"testing"
)

// TestTopoConfigDerivation pins the fat-tree -> leaf-spine lowering: spine
// count, scaled rates, and oversubscription thinning of the trunk tier.
func TestTopoConfigDerivation(t *testing.T) {
	sp := &Spec{
		Name:     "derive",
		Topology: TopologySpec{K: 8, Oversubscription: 2},
		Workload: WorkloadSpec{Load: 0.5, TotalJobs: 100, Mix: MixFractions{WebSearch: 1}},
		Schemes:  []string{"ecmp"},
	}
	sp.ApplyDefaults()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := sp.TopoConfig()
	if cfg.Leaves != 2 {
		t.Errorf("Leaves = %d, want 2", cfg.Leaves)
	}
	if cfg.Spines != 4 {
		t.Errorf("Spines = %d, want k/2 = 4", cfg.Spines)
	}
	if cfg.HostsPerLeaf != 4 {
		t.Errorf("HostsPerLeaf = %d, want 4", cfg.HostsPerLeaf)
	}
	// 10 Gbps x 0.01 rate scale = 100 Mbps access links.
	if cfg.HostRateBps != 100_000_000 {
		t.Errorf("HostRateBps = %d, want 1e8", cfg.HostRateBps)
	}
	// 4 hosts x 1e8 spread over 4 spines, thinned 2:1 -> 5e7 per trunk.
	if cfg.TrunkRateBps != 50_000_000 {
		t.Errorf("TrunkRateBps = %d, want 5e7", cfg.TrunkRateBps)
	}
	if cfg.LinkDelay != usToSim(5) || cfg.TrunkDelay != usToSim(5) {
		t.Errorf("delays = %v/%v, want 5us each", cfg.LinkDelay, cfg.TrunkDelay)
	}
}

// TestStormExpansion pins the exact flap schedule a storm lowers to: links
// staggered across one period, down for half a period at a time, final
// recovery clamped to the storm end.
func TestStormExpansion(t *testing.T) {
	l1 := LinkRef{A: "L1", B: "S1"}
	l2 := LinkRef{A: "L1", B: "S2"}
	sp := &Spec{
		Name:     "storm-x",
		Topology: TopologySpec{K: 4},
		Workload: WorkloadSpec{Load: 0.5, TotalJobs: 100, Mix: MixFractions{WebSearch: 1}},
		Schemes:  []string{"ecmp"},
		Events: []EventSpec{{
			AtMs: 1000, Type: EventStorm,
			Storm: &StormSpec{Links: []LinkRef{l1, l2}, PeriodMs: 100, DurationMs: 300},
		}},
	}
	sp.ApplyDefaults()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	down := func(ms float64, l LinkRef) Action {
		return Action{At: msToSim(ms), Kind: ActionLinkDown, Link: l}
	}
	up := func(ms float64, l LinkRef) Action {
		return Action{At: msToSim(ms), Kind: ActionLinkUp, Link: l}
	}
	want := []Action{
		down(1000, l1),
		up(1050, l1), down(1050, l2),
		down(1100, l1), up(1100, l2),
		up(1150, l1), down(1150, l2),
		down(1200, l1), up(1200, l2),
		up(1250, l1), down(1250, l2),
		up(1300, l2), // clamped to the storm end: fabric leaves healed
	}
	got := sp.Actions()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("storm schedule mismatch:\n got:  %v\n want: %v", got, want)
	}
	// Every link must end the storm up: last action per link is a link-up.
	last := map[LinkRef]ActionKind{}
	for _, a := range got {
		last[a.Link] = a.Kind
	}
	for l, k := range last {
		if k != ActionLinkUp {
			t.Errorf("link %v leaves the storm in state %v, want link-up", l, k)
		}
	}
}

// TestActionsSortedStable: mixed event types expand into a time-sorted
// timeline, with authoring order breaking ties.
func TestActionsSortedStable(t *testing.T) {
	sp := baseSpec()
	sp.Events = []EventSpec{
		{AtMs: 500, Type: EventLoadScale, Scale: 2},
		{AtMs: 100, Type: EventLinkDown, Link: link("L2", "S1", 0)},
		{AtMs: 100, Type: EventSwitchDown, Switch: "S2"},
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	got := sp.Actions()
	want := []Action{
		{At: msToSim(100), Kind: ActionLinkDown, Link: LinkRef{A: "L2", B: "S1"}},
		{At: msToSim(100), Kind: ActionSwitchDown, Switch: "S2"},
		{At: msToSim(500), Kind: ActionLoadScale, Scale: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("timeline mismatch:\n got:  %v\n want: %v", got, want)
	}
}

// TestQuickCaps: Quick shrinks to CI scale without mutating the original.
func TestQuickCaps(t *testing.T) {
	sp := &Spec{
		Name:     "big",
		Topology: TopologySpec{K: 32, HostsPerLeaf: 16},
		Workload: WorkloadSpec{
			Load: 0.5, TotalJobs: 10000,
			Mix: MixFractions{WebSearch: 0.5, Incast: 0.5}, IncastFanout: 16,
		},
		Schemes: []string{"ecmp"},
		Seeds:   []int64{1, 2, 3},
	}
	sp.ApplyDefaults()
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	q := sp.Quick()
	if q.Topology.HostsPerLeaf != 4 {
		t.Errorf("quick hosts = %d, want 4", q.Topology.HostsPerLeaf)
	}
	if q.Workload.TotalJobs != 240 {
		t.Errorf("quick jobs = %d, want 240", q.Workload.TotalJobs)
	}
	if len(q.Seeds) != 1 {
		t.Errorf("quick seeds = %v, want one", q.Seeds)
	}
	if q.Workload.IncastFanout != 4 {
		t.Errorf("quick fanout = %d, want clamped to 4", q.Workload.IncastFanout)
	}
	if err := q.Validate(); err != nil {
		t.Errorf("quick spec invalid: %v", err)
	}
	if sp.Topology.HostsPerLeaf != 16 || sp.Workload.TotalJobs != 10000 || len(sp.Seeds) != 3 {
		t.Error("Quick mutated the original spec")
	}
}
