package datapath

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"
)

// PathEmulator is an in-process stand-in for an ECMP fabric, used by tests
// and the realnet example: it listens on one UDP ingress, classifies each
// datagram by the sender's path (the shim-restated source port, exactly
// what a real ECMP hash keys on), and forwards it to the configured
// destination through a per-path token-bucket queue with its own rate,
// delay, and ECN-marking threshold. A congested emulated path marks the
// datagram's fabric byte the way a switch would mark the outer IP header.
type PathEmulator struct {
	ingress *net.UDPConn
	out     *net.UDPConn
	dest    *net.UDPAddr
	destAP  netip.AddrPort

	mu    sync.Mutex
	paths map[uint16]*emuPath // keyed by sender path port
	// pathFor assigns an emulated path index to each new sender port.
	nextIdx  int
	profiles []PathProfile

	// freeBufs recycles packet buffers between the ingress reader and the
	// per-path drains so the steady-state forwarding path does not allocate
	// (a datagram is read straight into a pooled buffer, queued, written
	// out, and the buffer returned).
	freeBufs chan []byte

	closed chan struct{}
	wg     sync.WaitGroup
}

// emuPoolSize bounds the buffer free list (beyond it, buffers are dropped
// to the garbage collector; under it, new ones are allocated on demand).
const emuPoolSize = 1024

func (e *PathEmulator) getBuf() []byte {
	select {
	case b := <-e.freeBufs:
		return b[:cap(b)]
	default:
		return make([]byte, 65536)
	}
}

func (e *PathEmulator) putBuf(b []byte) {
	select {
	case e.freeBufs <- b:
	default:
	}
}

// PathProfile shapes one emulated path.
type PathProfile struct {
	RateBps  int64         // token rate; 0 = unlimited
	Delay    time.Duration // added one-way delay
	ECNDepth int           // queue depth (packets) beyond which CE is set; 0 = never
	QueueCap int           // drop-tail bound; 0 = 256
	Drop     float64       // random loss probability (0..1) — not used by default
}

// emuPath is the runtime queue for one path.
type emuPath struct {
	profile PathProfile
	queue   chan []byte
	depth   int
	mu      sync.Mutex
}

// NewPathEmulator creates an emulator with one queue per profile; sender
// ports are assigned to profiles round-robin in order of first appearance
// (deterministic for a fixed send pattern).
func NewPathEmulator(localIP string, dest string, profiles []PathProfile) (*PathEmulator, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("datapath: emulator needs at least one path profile")
	}
	ingress, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(localIP)})
	if err != nil {
		return nil, fmt.Errorf("datapath: emulator ingress: %w", err)
	}
	out, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(localIP)})
	if err != nil {
		ingress.Close()
		return nil, fmt.Errorf("datapath: emulator egress: %w", err)
	}
	destAddr, err := net.ResolveUDPAddr("udp", dest)
	if err != nil {
		ingress.Close()
		out.Close()
		return nil, fmt.Errorf("datapath: emulator dest: %w", err)
	}
	ingress.SetReadBuffer(4 << 20)
	out.SetWriteBuffer(4 << 20)
	destAP := destAddr.AddrPort()
	e := &PathEmulator{
		ingress:  ingress,
		out:      out,
		dest:     destAddr,
		destAP:   netip.AddrPortFrom(destAP.Addr().Unmap(), destAP.Port()),
		paths:    map[uint16]*emuPath{},
		profiles: profiles,
		freeBufs: make(chan []byte, emuPoolSize),
		closed:   make(chan struct{}),
	}
	e.wg.Add(1)
	go e.run()
	return e, nil
}

// Addr returns the emulator's ingress address (point endpoints here).
func (e *PathEmulator) Addr() string { return e.ingress.LocalAddr().String() }

// run receives and dispatches datagrams to per-path queues. Each datagram
// is read directly into a pooled buffer that travels through the path
// queue and returns to the pool after the egress write — no per-packet
// allocation or copy in steady state.
func (e *PathEmulator) run() {
	defer e.wg.Done()
	for {
		buf := e.getBuf()
		n, _, err := e.ingress.ReadFromUDPAddrPort(buf)
		if err != nil {
			e.putBuf(buf)
			select {
			case <-e.closed:
				return
			default:
				continue
			}
		}
		e.dispatch(buf[:n])
	}
}

// pathPortOf extracts the sender's path port from the datagram (fabric byte
// + shim at fixed offset 16 within the shim).
func pathPortOf(pkt []byte) uint16 {
	if len(pkt) < headerLen {
		return 0
	}
	return uint16(pkt[1+16])<<8 | uint16(pkt[1+17])
}

func (e *PathEmulator) dispatch(pkt []byte) {
	port := pathPortOf(pkt)
	e.mu.Lock()
	p := e.paths[port]
	if p == nil {
		profile := e.profiles[e.nextIdx%len(e.profiles)]
		e.nextIdx++
		cap := profile.QueueCap
		if cap == 0 {
			cap = 256
		}
		p = &emuPath{profile: profile, queue: make(chan []byte, cap)}
		e.paths[port] = p
		e.wg.Add(1)
		go e.drain(p)
	}
	e.mu.Unlock()

	p.mu.Lock()
	if p.profile.ECNDepth > 0 && p.depth >= p.profile.ECNDepth && len(pkt) > 0 {
		pkt[0] |= fabricCE // mark like a switch whose queue exceeds K
	}
	p.mu.Unlock()

	select {
	case p.queue <- pkt:
		p.mu.Lock()
		p.depth++
		p.mu.Unlock()
	default:
		// drop-tail: recycle the buffer
		e.putBuf(pkt)
	}
}

// drain serializes one path's queue at its configured rate and delay.
func (e *PathEmulator) drain(p *emuPath) {
	defer e.wg.Done()
	for {
		select {
		case <-e.closed:
			return
		case pkt := <-p.queue:
			p.mu.Lock()
			p.depth--
			p.mu.Unlock()
			if p.profile.RateBps > 0 {
				tx := time.Duration(int64(len(pkt)) * 8 * int64(time.Second) / p.profile.RateBps)
				time.Sleep(tx)
			}
			if p.profile.Delay > 0 {
				time.Sleep(p.profile.Delay)
			}
			e.out.WriteToUDPAddrPort(pkt, e.destAP)
			e.putBuf(pkt)
		}
	}
}

// Close shuts the emulator down.
func (e *PathEmulator) Close() error {
	select {
	case <-e.closed:
	default:
		close(e.closed)
	}
	e.ingress.Close()
	e.out.Close()
	e.wg.Wait()
	return nil
}
