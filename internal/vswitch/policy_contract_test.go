package vswitch

import (
	"math/rand"
	"testing"

	"clove/internal/clove"
	"clove/internal/packet"
	"clove/internal/sim"
)

// contractPorts are deliberately below the ephemeral range portHash emits
// (32768+), so a hash-fallback pick can never collide with an installed
// port and every membership assertion is exact.
var contractPorts = []uint16{1000, 1001, 1002, 1003}

// policyCase describes one PathPolicy for the contract and property tests.
type policyCase struct {
	name string
	make func() PathPolicy
	// consumesPaths: PickPort must return an installed port whenever the
	// installed set is non-empty (false for the pure-hash schemes and for
	// Presto, whose PickPort is only the pre-install fallback).
	consumesPaths bool
	// connStable: picks depend only on the five-tuple, never the flowlet
	// ID, and may change only when the picked port leaves the set.
	connStable bool
	// pureHash: picks are a pure function of (flow, flowletID) and ignore
	// installed paths entirely.
	pureHash bool
}

func allPolicyCases() []policyCase {
	wtCfg := clove.DefaultWeightTableConfig(100 * sim.Microsecond)
	var now sim.Time
	clock := func() sim.Time { return now }
	return []policyCase{
		{name: "ecmp", make: func() PathPolicy { return NewECMP() }, pureHash: true, connStable: true},
		{name: "edge-flowlet", make: func() PathPolicy { return NewEdgeFlowlet() }, pureHash: true},
		{name: "clove-ecn", make: func() PathPolicy { return NewCloveECN(wtCfg) }, consumesPaths: true},
		{name: "clove-uniform", make: func() PathPolicy { return NewCloveUniform() }, consumesPaths: true},
		{name: "clove-int", make: func() PathPolicy { return NewCloveINT(wtCfg, clock) }, consumesPaths: true},
		{name: "presto", make: func() PathPolicy { return NewPresto(sim.New(1)) }},
		{name: "concury", make: func() PathPolicy { return NewConcury() }, consumesPaths: true, connStable: true},
		{name: "concury-ref", make: func() PathPolicy { return NewConcuryRef() }, consumesPaths: true, connStable: true},
		{name: "charon", make: func() PathPolicy { return NewCharon(100*sim.Microsecond, clock) }, consumesPaths: true},
		{name: "charon-ref", make: func() PathPolicy { return NewCharonRef(100*sim.Microsecond, clock) }, consumesPaths: true},
	}
}

func inSet(ports []uint16, p uint16) bool { return containsPort(ports, p) }

// TestSetPathsEmptyContract pins the withdrawal semantics documented on
// PathPolicy.SetPaths for every policy: install, withdraw, and re-install,
// asserting no panics, hash fallback while withdrawn, AllCongested false,
// and that feedback for withdrawn ports is accepted and ignored.
func TestSetPathsEmptyContract(t *testing.T) {
	const dst = packet.HostID(3)
	for _, tc := range allPolicyCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			pol := tc.make()
			flow := packet.FiveTuple{Src: 1, Dst: dst, SrcPort: 5000, DstPort: 80, Proto: packet.ProtoTCP}

			// Withdrawing before any install must be a no-op.
			pol.SetPaths(dst, nil)
			if p := pol.PickPort(dst, flow, 1); p < 32768 {
				t.Fatalf("pre-install withdrawn pick %d is not a hash fallback", p)
			}

			pol.SetPaths(dst, contractPorts)
			if p := pol.PickPort(dst, flow, 2); tc.consumesPaths && !inSet(contractPorts, p) {
				t.Fatalf("installed pick %d outside set %v", p, contractPorts)
			}

			// Withdraw: picks must fall back to hashing (the ephemeral
			// range), never a withdrawn port.
			pol.SetPaths(dst, nil)
			for fl := uint32(3); fl < 6; fl++ {
				if p := pol.PickPort(dst, flow, fl); p < 32768 {
					t.Fatalf("withdrawn pick %d not a hash fallback", p)
				}
			}
			if pol.AllCongested(dst, 50*sim.Microsecond) {
				t.Fatal("AllCongested true on a withdrawn path set")
			}
			// Feedback for a withdrawn port: accepted and ignored.
			pol.OnFeedback(dst, packet.Feedback{Valid: true, Port: contractPorts[0], ECN: true, HasUtil: true, Util: 0.9}, 10*sim.Microsecond)
			if p := pol.PickPort(dst, flow, 6); p < 32768 {
				t.Fatalf("pick %d after withdrawn-port feedback not a hash fallback", p)
			}

			// Re-install restores normal operation.
			pol.SetPaths(dst, contractPorts)
			if p := pol.PickPort(dst, flow, 7); tc.consumesPaths && !inSet(contractPorts, p) {
				t.Fatalf("re-installed pick %d outside set %v", p, contractPorts)
			}
		})
	}
}

// TestConnConsistencyChurnProperty is the randomized battery behind the
// conn-consistency oracle invariant: 1000 random SetPaths churn steps per
// policy (random subsets of a port universe, including full withdrawals),
// with a population of tracked connections picked after every step.
//
//   - connStable policies (Concury and its reference): a connection's port
//     may change only when the port left the installed set — if the
//     previous pick is still installed, the pick must be identical. This
//     also pins bucket retention across withdraw/re-install cycles.
//   - pureHash policies: picks never depend on churn at all.
//   - consumesPaths policies: every pick lands in the installed set.
func TestConnConsistencyChurnProperty(t *testing.T) {
	const dst = packet.HostID(9)
	universe := []uint16{1000, 1001, 1002, 1003, 1004, 1005, 1006, 1007}
	for _, tc := range allPolicyCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			pol := tc.make()
			flows := make([]packet.FiveTuple, 8)
			for i := range flows {
				flows[i] = packet.FiveTuple{Src: 1, Dst: dst, SrcPort: uint16(6000 + i), DstPort: 80, Proto: packet.ProtoTCP}
			}
			// lastInstalledPick[i] is flow i's most recent pick made while
			// a non-empty set was installed (zero = none yet).
			lastInstalledPick := make([]uint16, len(flows))
			baseline := make([]uint16, len(flows))
			for i, f := range flows {
				baseline[i] = pol.PickPort(dst, f, 0)
			}

			for step := 0; step < 1000; step++ {
				var ports []uint16
				if rng.Intn(10) > 0 { // 1-in-10 steps fully withdraw
					n := 1 + rng.Intn(len(universe))
					perm := rng.Perm(len(universe))
					for _, k := range perm[:n] {
						ports = append(ports, universe[k])
					}
				}
				pol.SetPaths(dst, ports)

				for i, f := range flows {
					got := pol.PickPort(dst, f, uint32(step))
					if len(ports) == 0 {
						if got < 32768 && !tc.pureHash {
							t.Fatalf("step %d: withdrawn pick %d not a hash fallback", step, got)
						}
						continue
					}
					if tc.consumesPaths && !inSet(ports, got) {
						t.Fatalf("step %d flow %d: pick %d outside installed %v", step, i, got, ports)
					}
					if tc.pureHash {
						continue
					}
					if tc.connStable {
						// Flowlet ID must be irrelevant.
						if again := pol.PickPort(dst, f, uint32(step)+7777); again != got {
							t.Fatalf("step %d flow %d: pick depends on flowlet ID: %d vs %d", step, i, got, again)
						}
						if prev := lastInstalledPick[i]; prev != 0 && inSet(ports, prev) && got != prev {
							t.Fatalf("step %d flow %d: moved %d -> %d while %d stayed installed (set %v)",
								step, i, prev, got, prev, ports)
						}
						lastInstalledPick[i] = got
					}
				}
			}
			_ = baseline
		})
	}
}

// TestConcuryZeroAllocPicks proves the "no per-flow state" claim mechanically:
// the stateless data plane allocates nothing per pick, for any number of
// distinct flows, installed or withdrawn.
func TestConcuryZeroAllocPicks(t *testing.T) {
	c := NewConcury()
	const dst = packet.HostID(2)
	c.SetPaths(dst, contractPorts)
	var sink uint16
	flows := make([]packet.FiveTuple, 512)
	for i := range flows {
		flows[i] = packet.FiveTuple{Src: 1, Dst: dst, SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoTCP}
	}
	probe := func() {
		for i := range flows {
			sink = c.PickPort(dst, flows[i], uint32(i))
		}
	}
	if allocs := testing.AllocsPerRun(100, probe); allocs != 0 {
		t.Fatalf("installed picks allocate: %v allocs/run, want 0", allocs)
	}
	c.SetPaths(dst, nil)
	if allocs := testing.AllocsPerRun(100, probe); allocs != 0 {
		t.Fatalf("withdrawn (fallback) picks allocate: %v allocs/run, want 0", allocs)
	}
	_ = sink
}

// TestCharonZeroAllocPicks keeps Charon's data plane allocation-free too:
// P2C reads the per-destination table, it never writes per-flow state.
func TestCharonZeroAllocPicks(t *testing.T) {
	var now sim.Time
	c := NewCharon(100*sim.Microsecond, func() sim.Time { return now })
	const dst = packet.HostID(2)
	c.SetPaths(dst, contractPorts)
	c.OnFeedback(dst, packet.Feedback{Valid: true, Port: contractPorts[1], HasUtil: true, Util: 0.7}, 1)
	var sink uint16
	flows := make([]packet.FiveTuple, 512)
	for i := range flows {
		flows[i] = packet.FiveTuple{Src: 1, Dst: dst, SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoTCP}
	}
	probe := func() {
		for i := range flows {
			sink = c.PickPort(dst, flows[i], uint32(i))
		}
	}
	if allocs := testing.AllocsPerRun(100, probe); allocs != 0 {
		t.Fatalf("charon picks allocate: %v allocs/run, want 0", allocs)
	}
	_ = sink
}
