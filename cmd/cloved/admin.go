package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"clove/internal/datapath"
)

// adminServer is the lifecycle component serving cloved's operational API:
//
//	GET  /healthz  — liveness: 200 while the process runs
//	GET  /readyz   — readiness: 200 once every tenant tunnel has a remote
//	GET  /stats    — JSON stats, sorted weights, and RTTs per tenant
//	POST /config   — hot-reload: flowlet gap, relay interval, remote
//
// It registers first so liveness is observable before (and readiness
// reflects) tenant bring-up, and stops last so /stats stays queryable
// through the drain. Handlers read tenant state through atomics only —
// never through the lifecycle manager — so a probe can never deadlock
// against a shutdown in progress.
type adminServer struct {
	app  *app
	addr string

	ln  net.Listener
	srv *http.Server
}

func newAdminServer(a *app, addr string) *adminServer {
	return &adminServer{app: a, addr: addr}
}

// Addr returns the bound address (resolves ":0" requests); valid after
// Start.
func (s *adminServer) Addr() string {
	if s.ln == nil {
		return s.addr
	}
	return s.ln.Addr().String()
}

func (s *adminServer) Init(ctx context.Context) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/config", s.handleConfig)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return nil
}

func (s *adminServer) Start(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return fmt.Errorf("admin: listen %s: %w", s.addr, err)
	}
	s.ln = ln
	go s.srv.Serve(ln)
	fmt.Fprintf(s.app.stdout, "admin: http://%s\n", ln.Addr())
	return nil
}

func (s *adminServer) Stop() error {
	if s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

func (s *adminServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *adminServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	for _, t := range s.app.tenants {
		if err := t.Ready(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, err)
			return
		}
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// tenantStatus is the /stats JSON shape for one tenant.
type tenantStatus struct {
	Name          string                `json:"name"`
	Ports         []uint16              `json:"ports"`
	Remote        string                `json:"remote,omitempty"`
	Ready         bool                  `json:"ready"`
	FlowletGap    Duration              `json:"flowlet_gap"`
	RelayInterval Duration              `json:"relay_interval"`
	Stats         datapath.Stats        `json:"stats"`
	Weights       []datapath.PathWeight `json:"weights"`
	RTTs          []pathRTTStatus       `json:"rtts,omitempty"`
}

type pathRTTStatus struct {
	Port    uint16 `json:"port"`
	RTTNs   int64  `json:"rtt_ns"`
	AgeNs   int64  `json:"age_ns"`
	Samples int64  `json:"samples"`
}

type statsResponse struct {
	Tenants []tenantStatus `json:"tenants"`
}

func (s *adminServer) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{Tenants: make([]tenantStatus, 0, len(s.app.tenants))}
	for _, t := range s.app.tenants {
		ts := tenantStatus{Name: t.spec.Name, Ready: t.ready.Load(), Remote: t.remoteAddr()}
		if ep := t.endpoint(); ep != nil {
			ts.Ports = ep.Ports()
			ts.FlowletGap = Duration(ep.FlowletGap())
			ts.RelayInterval = Duration(ep.RelayInterval())
			ts.Stats = ep.Stats()
			ts.Weights = ep.WeightsSorted()
			for _, rtt := range ep.PathRTTs() {
				if rtt.Samples > 0 {
					ts.RTTs = append(ts.RTTs, pathRTTStatus{
						Port: rtt.Port, RTTNs: int64(rtt.RTT), AgeNs: int64(rtt.Age), Samples: rtt.Samples,
					})
				}
			}
		}
		resp.Tenants = append(resp.Tenants, ts)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// configRequest is the /config POST body. Absent fields are left unchanged;
// "tenant" selects the overlay (default: the first).
type configRequest struct {
	Tenant        string    `json:"tenant,omitempty"`
	FlowletGap    *Duration `json:"flowlet_gap,omitempty"`
	RelayInterval *Duration `json:"relay_interval,omitempty"`
	Remote        *string   `json:"remote,omitempty"`
}

func (s *adminServer) handleConfig(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req configRequest
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad config: "+err.Error(), http.StatusBadRequest)
		return
	}
	t := s.app.tenantNamed(req.Tenant)
	if t == nil {
		http.Error(w, fmt.Sprintf("unknown tenant %q", req.Tenant), http.StatusNotFound)
		return
	}
	ep := t.endpoint()
	if ep == nil {
		http.Error(w, fmt.Sprintf("tenant %q not started", t.spec.Name), http.StatusServiceUnavailable)
		return
	}
	if req.FlowletGap != nil && *req.FlowletGap <= 0 {
		http.Error(w, "flowlet_gap must be positive", http.StatusBadRequest)
		return
	}
	if req.RelayInterval != nil && *req.RelayInterval < 0 {
		http.Error(w, "relay_interval must not be negative", http.StatusBadRequest)
		return
	}
	// Validated: apply. Retarget goes first so a bad remote rejects the
	// request before any knob moved.
	if req.Remote != nil {
		if err := t.retarget(*req.Remote); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	if req.FlowletGap != nil {
		ep.SetFlowletGap(time.Duration(*req.FlowletGap))
	}
	if req.RelayInterval != nil {
		ep.SetRelayInterval(time.Duration(*req.RelayInterval))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"tenant":         t.spec.Name,
		"flowlet_gap":    Duration(ep.FlowletGap()),
		"relay_interval": Duration(ep.RelayInterval()),
		"remote":         t.remoteAddr(),
	})
}
