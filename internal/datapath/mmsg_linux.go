//go:build linux && (amd64 || arm64)

// Batched socket I/O via raw recvmmsg/sendmmsg syscalls. This is the
// high-throughput half of the platform seam: one syscall moves up to
// Config.Batch datagrams in either direction, with every msghdr, iovec,
// sockaddr buffer, and data buffer preallocated at Start so the steady
// state performs zero heap allocations. The portable fallback (used on
// other platforms and under Config.NoBatchSyscalls) lives in shard.go; the
// two are differential-tested byte-identical on the wire.
//
// The mmsghdr layout below matches the 64-bit linux ABI (struct msghdr is
// 56 bytes, followed by a u32 msg_len and 4 bytes of padding), which is why
// this file is gated to amd64/arm64 rather than all linux.
package datapath

import (
	"fmt"
	"net/netip"
	"syscall"
	"unsafe"
)

// batchSyscallsAvailable gates Endpoint.initIO onto the mmsg path.
const batchSyscallsAvailable = true

// mmsghdr mirrors linux struct mmsghdr on 64-bit targets.
type mmsghdr struct {
	hdr    syscall.Msghdr
	msgLen uint32
	_      uint32
}

// sockaddrBufLen fits any AF_INET/AF_INET6 source address.
const sockaddrBufLen = syscall.SizeofSockaddrInet6

// UDP segmentation-offload plumbing. With GSO the whole transmit ring is
// handed to the kernel as ONE datagram plus a UDP_SEGMENT cmsg giving the
// frame size; the stack traverses once and segments at the edge (on
// loopback, a GRO-enabled receiving socket gets the super-datagram intact
// with a UDP_GRO cmsg, so per-frame kernel cost collapses on both sides).
// Constants are spelled out because the stdlib syscall table predates them.
const (
	solUDP     = 17
	udpSegment = 103 // SOL_UDP cmsg/sockopt: outgoing GSO segment size
	udpGRO     = 104 // SOL_UDP sockopt/cmsg: coalesce incoming segments

	// udpMaxSegments is the kernel's UDP_MAX_SEGMENTS limit per GSO send.
	udpMaxSegments = 64
	// gsoMaxBytes bounds one super-datagram (max IPv4 UDP payload).
	gsoMaxBytes = 65000
	// groBufLen is the receive-slot size once GRO may coalesce up to a full
	// UDP datagram into one buffer.
	groBufLen = 1 << 16
	// ctlBufLen is the per-message control-buffer size (one UDP_GRO cmsg
	// needs CMSG_SPACE(4) = 24 bytes; 64 keeps slots 8-aligned with room).
	ctlBufLen = 64
)

// batchIO is one shard's preallocated mmsg state. The recv and send
// closures are built once so RawConn.Read/Write are passed the same func
// values on every call (a per-call closure would allocate).
type batchIO struct {
	sh *pathShard

	rhdrs  []mmsghdr
	riovs  []syscall.Iovec
	rnames [][sockaddrBufLen]byte
	recvN  int
	recvE  syscall.Errno
	recvFn func(fd uintptr) bool

	shdrs  []mmsghdr
	siovs  []syscall.Iovec
	raddr  []byte
	sendAt int // offset of the first unsent frame in the current flush
	sendHi int // one past the last frame in the current flush
	sendN  int
	sendE  syscall.Errno
	sendFn func(fd uintptr) bool

	// GRO receive state: per-message control buffers (a []uint64 slab so
	// cmsg headers are 8-aligned) that carry the kernel's UDP_GRO segment
	// size after each recvmmsg.
	gro  bool
	rctl []uint64

	// GSO transmit state: a dedicated msghdr whose iovec array gathers the
	// transmit ring and whose control message carries UDP_SEGMENT.
	gsoTx  bool
	gsoHdr syscall.Msghdr
	gsoCtl [3]uint64 // CMSG_SPACE(2) = 24 bytes, 8-aligned
	gsoFn  func(fd uintptr) bool
}

// newBatchIO wires the shard's rings into mmsg headers aimed at remote.
func newBatchIO(sh *pathShard, remote netip.AddrPort) (*batchIO, error) {
	raddr, err := encodeSockaddr(remote)
	if err != nil {
		return nil, err
	}
	b := len(sh.rxBufs)
	bio := &batchIO{
		sh:     sh,
		rhdrs:  make([]mmsghdr, b),
		riovs:  make([]syscall.Iovec, b),
		rnames: make([][sockaddrBufLen]byte, b),
		shdrs:  make([]mmsghdr, b),
		siovs:  make([]syscall.Iovec, b),
		raddr:  raddr,
	}

	// Probe segmentation-offload support on this socket. GSO support is
	// detected by clearing the socket-wide segment size (we send the real
	// size per-message via cmsg); GRO is enabled socket-wide.
	if !sh.ep.cfg.NoSegmentation {
		sh.rawc.Control(func(fd uintptr) {
			if syscall.SetsockoptInt(int(fd), solUDP, udpSegment, 0) == nil {
				bio.gsoTx = true
			}
			if syscall.SetsockoptInt(int(fd), solUDP, udpGRO, 1) == nil {
				bio.gro = true
			}
		})
	}
	if bio.gro {
		// Widen receive slots: one GRO buffer may hold a full coalesced
		// UDP datagram.
		slab := make([]byte, b*groBufLen)
		for i := 0; i < b; i++ {
			sh.rxBufs[i] = slab[i*groBufLen : (i+1)*groBufLen : (i+1)*groBufLen]
		}
		bio.rctl = make([]uint64, b*ctlBufLen/8)
	}

	for i := 0; i < b; i++ {
		bio.riovs[i].Base = &sh.rxBufs[i][0]
		bio.riovs[i].SetLen(len(sh.rxBufs[i]))
		bio.rhdrs[i].hdr.Name = &bio.rnames[i][0]
		bio.rhdrs[i].hdr.Namelen = sockaddrBufLen
		bio.rhdrs[i].hdr.Iov = &bio.riovs[i]
		bio.rhdrs[i].hdr.Iovlen = 1
		if bio.gro {
			bio.rhdrs[i].hdr.Control = (*byte)(unsafe.Pointer(&bio.rctl[i*ctlBufLen/8]))
			bio.rhdrs[i].hdr.SetControllen(ctlBufLen)
		}

		bio.siovs[i].Base = &sh.txBufs[i][0]
		bio.shdrs[i].hdr.Name = &bio.raddr[0]
		bio.shdrs[i].hdr.Namelen = uint32(len(bio.raddr))
		bio.shdrs[i].hdr.Iov = &bio.siovs[i]
		bio.shdrs[i].hdr.Iovlen = 1
	}
	if bio.gsoTx {
		// cmsghdr{Len: CMSG_LEN(2)=18, Level: SOL_UDP, Type: UDP_SEGMENT}
		// followed by the u16 segment size, patched per flush.
		ctl := (*[24]byte)(unsafe.Pointer(&bio.gsoCtl[0]))
		*(*uint64)(unsafe.Pointer(&ctl[0])) = 18
		*(*int32)(unsafe.Pointer(&ctl[8])) = solUDP
		*(*int32)(unsafe.Pointer(&ctl[12])) = udpSegment
		bio.gsoHdr.Name = &bio.raddr[0]
		bio.gsoHdr.Namelen = uint32(len(bio.raddr))
		bio.gsoHdr.Iov = &bio.siovs[0]
		bio.gsoHdr.Control = &ctl[0]
		bio.gsoHdr.SetControllen(24)
	}
	bio.recvFn = func(fd uintptr) bool {
		for {
			r1, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&bio.rhdrs[0])), uintptr(len(bio.rhdrs)), 0, 0, 0)
			switch errno {
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false
			default:
				bio.recvN, bio.recvE = int(r1), errno
				return true
			}
		}
	}
	bio.sendFn = func(fd uintptr) bool {
		for {
			r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&bio.shdrs[bio.sendAt])), uintptr(bio.sendHi-bio.sendAt), 0, 0, 0)
			switch errno {
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false
			default:
				bio.sendN, bio.sendE = int(r1), errno
				return true
			}
		}
	}
	bio.gsoFn = func(fd uintptr) bool {
		for {
			r1, _, errno := syscall.Syscall(syscall.SYS_SENDMSG, fd,
				uintptr(unsafe.Pointer(&bio.gsoHdr)), 0)
			switch errno {
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false
			default:
				bio.sendN, bio.sendE = int(r1), errno
				return true
			}
		}
	}
	return bio, nil
}

// retarget re-aims the baked send headers at a new remote. Callers hold the
// shard's txMu (the send closures only run under it), so the sockaddr bytes
// are never rewritten mid-syscall. A same-family change rewrites the buffer
// in place; a family change swaps the buffer and repoints every header.
func (bio *batchIO) retarget(remote netip.AddrPort) error {
	raddr, err := encodeSockaddr(remote)
	if err != nil {
		return err
	}
	if len(raddr) == len(bio.raddr) {
		copy(bio.raddr, raddr)
		return nil
	}
	bio.raddr = raddr
	for i := range bio.shdrs {
		bio.shdrs[i].hdr.Name = &bio.raddr[0]
		bio.shdrs[i].hdr.Namelen = uint32(len(bio.raddr))
	}
	bio.gsoHdr.Name = &bio.raddr[0]
	bio.gsoHdr.Namelen = uint32(len(bio.raddr))
	return nil
}

// recvBatchMmsg pulls up to len(rxBufs) datagrams in one recvmmsg,
// blocking via the runtime poller when the socket is empty.
func (sh *pathShard) recvBatchMmsg() (int, error) {
	bio := sh.bio
	// The kernel rewrites msg_namelen (and msg_controllen) per message;
	// restore before reuse.
	for i := range bio.rhdrs {
		bio.rhdrs[i].hdr.Namelen = sockaddrBufLen
		if bio.gro {
			bio.rhdrs[i].hdr.SetControllen(ctlBufLen)
		}
	}
	bio.recvN, bio.recvE = 0, 0
	if err := sh.rawc.Read(bio.recvFn); err != nil {
		return 0, err
	}
	if bio.recvE != 0 {
		return 0, bio.recvE
	}
	n := bio.recvN
	for i := 0; i < n; i++ {
		sh.rxLen[i] = int(bio.rhdrs[i].msgLen)
		// sockaddr_in and sockaddr_in6 both carry the port big-endian at
		// bytes [2:4].
		sh.rxSrc[i] = uint16(bio.rnames[i][2])<<8 | uint16(bio.rnames[i][3])
		sh.rxSeg[i] = 0
		if bio.gro && bio.rhdrs[i].hdr.Controllen >= 20 {
			// The only cmsg enabled on this socket is UDP_GRO:
			// cmsghdr{Len>=CMSG_LEN(4)=20, SOL_UDP, UDP_GRO} + int segsize.
			ctl := (*[ctlBufLen]byte)(unsafe.Pointer(&bio.rctl[i*ctlBufLen/8]))
			cl := *(*uint64)(unsafe.Pointer(&ctl[0]))
			level := *(*int32)(unsafe.Pointer(&ctl[8]))
			typ := *(*int32)(unsafe.Pointer(&ctl[12]))
			if cl >= 20 && level == solUDP && typ == udpGRO {
				sh.rxSeg[i] = int(*(*int32)(unsafe.Pointer(&ctl[16])))
			}
		}
	}
	return n, nil
}

// flushMmsgLocked sends txBufs[:txCnt]: as one GSO super-datagram when the
// pending frames are uniform (the kernel segments once at the edge), else
// with as few sendmmsg calls as the kernel allows (partial sends continue
// from the cut). Caller holds txMu.
func (sh *pathShard) flushMmsgLocked() error {
	bio := sh.bio
	if bio.gsoTx && sh.txCnt > 1 && sh.txCnt <= udpMaxSegments {
		if done, err := sh.flushGSOLocked(); done {
			return err
		}
	}
	for i := 0; i < sh.txCnt; i++ {
		bio.siovs[i].SetLen(sh.txLen[i])
	}
	bio.sendAt, bio.sendHi = 0, sh.txCnt
	for bio.sendAt < bio.sendHi {
		bio.sendN, bio.sendE = 0, 0
		if err := sh.rawc.Write(bio.sendFn); err != nil {
			sh.stats.socketErrors.Add(1)
			sh.txCnt = 0
			return err
		}
		if bio.sendE != 0 {
			sh.stats.socketErrors.Add(1)
			sh.txCnt = 0
			return fmt.Errorf("datapath: sendmmsg: %w", bio.sendE)
		}
		if bio.sendN <= 0 {
			break
		}
		bio.sendAt += bio.sendN
	}
	sh.txCnt = 0
	return nil
}

// flushGSOLocked tries to send the pending ring as one sendmsg carrying a
// UDP_SEGMENT cmsg. It reports done=false (and leaves the ring intact) when
// the frames are not GSO-shaped — non-uniform sizes or an oversized total —
// so the caller falls through to sendmmsg. A kernel rejection permanently
// disables GSO on this shard and falls back the same way. Caller holds txMu.
func (sh *pathShard) flushGSOLocked() (done bool, err error) {
	bio := sh.bio
	seg := sh.txLen[0]
	total := 0
	for i := 0; i < sh.txCnt; i++ {
		l := sh.txLen[i]
		total += l
		if l != seg && (i != sh.txCnt-1 || l > seg) {
			return false, nil // non-uniform: not segmentable
		}
	}
	if total > gsoMaxBytes {
		return false, nil
	}
	for i := 0; i < sh.txCnt; i++ {
		bio.siovs[i].SetLen(sh.txLen[i])
	}
	bio.gsoHdr.Iovlen = uint64(sh.txCnt)
	ctl := (*[24]byte)(unsafe.Pointer(&bio.gsoCtl[0]))
	*(*uint16)(unsafe.Pointer(&ctl[16])) = uint16(seg)
	bio.sendN, bio.sendE = 0, 0
	if err := sh.rawc.Write(bio.gsoFn); err != nil {
		sh.stats.socketErrors.Add(1)
		sh.txCnt = 0
		return true, err
	}
	if bio.sendE != 0 {
		// EINVAL/EIO here means this socket cannot GSO after all (probe
		// passed but the send path refused): drop to sendmmsg for good.
		bio.gsoTx = false
		return false, nil
	}
	sh.txCnt = 0
	return true, nil
}

// encodeSockaddr renders ap as a raw linux sockaddr (native-endian family,
// big-endian port).
func encodeSockaddr(ap netip.AddrPort) ([]byte, error) {
	addr := ap.Addr()
	if addr.Is4() || addr.Is4In6() {
		var sa syscall.RawSockaddrInet4
		sa.Family = syscall.AF_INET
		sa.Addr = addr.Unmap().As4()
		buf := make([]byte, syscall.SizeofSockaddrInet4)
		copy(buf, (*(*[syscall.SizeofSockaddrInet4]byte)(unsafe.Pointer(&sa)))[:])
		buf[2] = byte(ap.Port() >> 8)
		buf[3] = byte(ap.Port())
		return buf, nil
	}
	if addr.Is6() {
		var sa syscall.RawSockaddrInet6
		sa.Family = syscall.AF_INET6
		sa.Addr = addr.As16()
		sa.Scope_id = 0
		buf := make([]byte, syscall.SizeofSockaddrInet6)
		copy(buf, (*(*[syscall.SizeofSockaddrInet6]byte)(unsafe.Pointer(&sa)))[:])
		buf[2] = byte(ap.Port() >> 8)
		buf[3] = byte(ap.Port())
		return buf, nil
	}
	return nil, fmt.Errorf("datapath: unsupported remote address %v", ap)
}
