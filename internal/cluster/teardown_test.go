package cluster

import (
	"testing"

	"clove/internal/packet"
	"clove/internal/sim"
)

// TestTotalPartitionTeardownLeavesNoLeak strands in-flight transfers by
// failing every spine mid-transfer, then tears the workload down the way
// RunMix does (AbortOpenConns + Quiesce) and drains the event queue. The
// oracle's pool-ownership audit then runs with zero pending events, so any
// packet stranded on a dead switch, an orphaned retransmission timer, or a
// pooled buffer not returned on the drop path is an exact, attributable
// failure here.
func TestTotalPartitionTeardownLeavesNoLeak(t *testing.T) {
	c := New(Config{Seed: 7, Topo: smallTopo(), Scheme: SchemeCloveECN, Oracle: true})
	c.SetupPaths([][2]packet.HostID{{0, 4}, {1, 5}, {4, 0}, {5, 1}})

	done := 0
	for i := 0; i < 2; i++ {
		conn := c.OpenConn(packet.HostID(i), packet.HostID(4+i), 0)
		conn.StartJob(10_000_000, func(sim.Time) { done++ })
	}
	// Both spines die mid-transfer: the fabric is fully partitioned, every
	// unacked segment and its retransmissions are lost.
	c.Sim.At(2*sim.Millisecond, func() {
		c.LS.SetSwitchUp("S1", false)
		c.LS.SetSwitchUp("S2", false)
	})
	// The workload gives up on the stranded connections.
	c.Sim.At(50*sim.Millisecond, func() {
		c.AbortOpenConns()
		c.Quiesce()
	})
	c.Sim.Run()

	if done != 0 {
		t.Errorf("%d jobs completed across a total partition", done)
	}
	if p := c.Sim.Pending(); p != 0 {
		t.Fatalf("event queue did not drain after teardown: %d pending", p)
	}
	if err := c.CheckOracle(); err != nil {
		t.Fatalf("oracle after mid-transfer teardown: %v", err)
	}
}

// TestSpineFailureMidTransferRecovers is the companion: one spine fails
// mid-transfer and later returns; the transfer must complete over the
// survivor, and the run must still audit clean.
func TestSpineFailureMidTransferRecovers(t *testing.T) {
	c := New(Config{Seed: 8, Topo: smallTopo(), Scheme: SchemeCloveECN, Oracle: true})
	c.SetupPaths([][2]packet.HostID{{0, 4}, {4, 0}})

	done := 0
	conn := c.OpenConn(0, 4, 0)
	conn.StartJob(5_000_000, func(sim.Time) { done++ })
	c.Sim.At(1*sim.Millisecond, func() { c.LS.SetSwitchUp("S1", false) })
	c.Sim.At(30*sim.Millisecond, func() { c.LS.SetSwitchUp("S1", true) })
	c.Sim.RunUntil(500 * sim.Millisecond)

	if done != 1 {
		t.Fatalf("transfer did not complete through single-spine failure (done=%d)", done)
	}
	c.AbortOpenConns()
	c.Quiesce()
	c.Sim.Run()
	if p := c.Sim.Pending(); p != 0 {
		t.Fatalf("event queue did not drain: %d pending", p)
	}
	if err := c.CheckOracle(); err != nil {
		t.Fatalf("oracle after recovery run: %v", err)
	}
}

// TestAbortIsIdempotentAndFinal: aborting twice is safe, and an aborted
// connection never resurrects its retransmission machinery.
func TestAbortIsIdempotentAndFinal(t *testing.T) {
	c := New(Config{Seed: 9, Topo: smallTopo(), Scheme: SchemeECMP, Oracle: true})
	conn := c.OpenConn(0, 4, 0)
	conn.StartJob(1_000_000, func(sim.Time) { t.Error("aborted job completed") })
	c.Sim.RunUntil(200 * sim.Microsecond) // let some segments into flight
	conn.Abort()
	conn.Abort()
	c.Quiesce()
	c.Sim.Run()
	if p := c.Sim.Pending(); p != 0 {
		t.Fatalf("pending after double abort: %d", p)
	}
	if err := c.CheckOracle(); err != nil {
		t.Fatalf("oracle after double abort: %v", err)
	}
}
