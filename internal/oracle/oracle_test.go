package oracle_test

import (
	"strings"
	"testing"

	"clove/internal/netem"
	"clove/internal/oracle"
	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/tcp"
)

// fabric builds the minimal forwarding path (host -> leaf switch -> host)
// with the oracle installed on the topology pool and the sim event hook.
// The destination host has no Deliver hook, so it sinks packets back into
// the pool — the clean lifecycle the conservation invariant expects.
func fabric(t *testing.T, downCfg netem.LinkConfig) (*sim.Simulator, *netem.Topology, *netem.Host, *netem.Host, *oracle.Oracle) {
	t.Helper()
	s := sim.New(1)
	topo := netem.NewTopology(s)
	sw := topo.AddSwitch("S")
	upCfg := netem.LinkConfig{RateBps: 40e9, Delay: 2 * sim.Microsecond}
	if downCfg.RateBps == 0 {
		downCfg = upCfg
	}
	src := topo.AddHost("h0", sw, upCfg, downCfg)
	dst := topo.AddHost("h1", sw, upCfg, downCfg)
	topo.ComputeRoutes()
	o := oracle.New()
	topo.Pool().SetObserver(o)
	s.SetEventHook(o.AfterEvent)
	return s, topo, src, dst, o
}

func dataPacket(pool *packet.Pool, src, dst packet.HostID, ect bool) *packet.Packet {
	pkt := pool.Get()
	pkt.Kind = packet.KindData
	pkt.Inner = packet.FiveTuple{Src: src, Dst: dst, SrcPort: 40000, DstPort: 80, Proto: packet.ProtoTCP}
	pkt.PayloadLen = 1460
	pkt.InnerECT = ect
	return pkt
}

// wantViolation asserts the oracle detected at least one violation of class
// and that Check surfaces it as an error.
func wantViolation(t *testing.T, o *oracle.Oracle, pending int, class string) {
	t.Helper()
	if err := o.Check(pending); err == nil {
		t.Fatalf("oracle missed a seeded %s violation", class)
	}
	for _, v := range o.Violations() {
		if v.Class == class {
			return
		}
	}
	t.Fatalf("no %s violation recorded; got %v", class, o.Violations())
}

func TestCleanForwardingNoViolations(t *testing.T) {
	s, topo, src, dst, o := fabric(t, netem.LinkConfig{})
	for i := 0; i < 50; i++ {
		src.Send(dataPacket(topo.Pool(), 0, 1, false))
	}
	s.Run()
	if err := o.Check(s.Pending()); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	if dst.RxPackets() != 50 {
		t.Fatalf("sink received %d packets, want 50", dst.RxPackets())
	}
	st := o.Stats()
	if st.PacketsCreated != st.PacketsReleased || st.PacketsLive != 0 {
		t.Fatalf("lifecycle imbalance: %+v", st)
	}
}

// TestECNAndOverflowClean drives a slow, shallow, ECN-marking downlink into
// both CE marking and drop-tail overflow with a mix of ECT and non-ECT
// traffic; none of it is an invariant violation.
func TestECNAndOverflowClean(t *testing.T) {
	s, topo, src, _, o := fabric(t, netem.LinkConfig{
		RateBps: 1e9, Delay: 2 * sim.Microsecond, QueueCap: 4, ECNK: 2,
	})
	for i := 0; i < 200; i++ {
		src.Send(dataPacket(topo.Pool(), 0, 1, i%2 == 0))
	}
	s.Run()
	down := topo.LinkByName("S->h1#0")
	if down.Stats().ECNMarks == 0 || down.Stats().Drops == 0 {
		t.Fatalf("burst did not exercise marking+overflow: %+v", down.Stats())
	}
	if err := o.Check(s.Pending()); err != nil {
		t.Fatalf("legitimate marks/drops flagged: %v", err)
	}
}

// TestLinkFailureClean takes a link down mid-run (flushing its queue) and
// back up; administrative drops are not violations.
func TestLinkFailureClean(t *testing.T) {
	s, topo, src, _, o := fabric(t, netem.LinkConfig{
		RateBps: 1e9, Delay: 2 * sim.Microsecond, QueueCap: 16,
	})
	down := topo.LinkByName("S->h1#0")
	for i := 0; i < 30; i++ {
		src.Send(dataPacket(topo.Pool(), 0, 1, false))
	}
	s.After(5*sim.Microsecond, func() { down.SetUp(false) })
	s.After(40*sim.Microsecond, func() { down.SetUp(true) })
	s.Run()
	if down.Stats().DownDrops == 0 {
		t.Fatal("failure window dropped nothing; timing off")
	}
	if err := o.Check(s.Pending()); err != nil {
		t.Fatalf("administrative drops flagged: %v", err)
	}
}

// --- TCP stream oracle over a lossy pipe ---

// tcpLoop wires a pooled sender and receiver over delayed pipes; dropEvery
// discards (and correctly releases) every n-th forward data segment to force
// retransmissions.
func tcpLoop(s *sim.Simulator, pool *packet.Pool, dropEvery int) (*tcp.Sender, *tcp.Receiver) {
	cfg := tcp.DefaultConfig()
	cfg.Pool = pool
	flow := packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 100, DstPort: 200, Proto: packet.ProtoTCP}
	var snd *tcp.Sender
	var rcv *tcp.Receiver
	n := 0
	snd = tcp.NewSender(s, cfg, flow, func(pkt *packet.Packet) {
		n++
		if dropEvery > 0 && n%dropEvery == 0 {
			pool.Put(pkt) // the drop releases, as a real link does
			return
		}
		s.After(20*sim.Microsecond, func() { rcv.HandleData(pkt) })
	})
	rcv = tcp.NewReceiver(s, cfg, flow, func(pkt *packet.Packet) {
		s.After(20*sim.Microsecond, func() { snd.HandleAck(pkt) })
	})
	return snd, rcv
}

func TestTCPStreamCleanAcrossRetransmits(t *testing.T) {
	s := sim.New(1)
	pool := &packet.Pool{}
	o := oracle.New()
	pool.SetObserver(o)
	s.SetEventHook(o.AfterEvent)

	snd, rcv := tcpLoop(s, pool, 7)
	done := false
	snd.StartJob(300_000, func(sim.Time) { done = true })
	s.RunUntil(10 * sim.Second)
	if !done || rcv.RcvNxt() != 300_000 {
		t.Fatalf("transfer incomplete: done=%v rcvNxt=%d", done, rcv.RcvNxt())
	}
	if snd.Stats().Retransmits == 0 {
		t.Fatal("lossy pipe caused no retransmits; test exercises nothing")
	}
	if err := o.Check(s.Pending()); err != nil {
		t.Fatalf("clean lossy transfer flagged: %v", err)
	}
}

// --- Mutation smoke tests: one seeded bug per invariant class ---

// TestMutationConservationLeak retains a delivered packet (a skipped pool
// release) and expects the drain-time leak check to fire.
func TestMutationConservationLeak(t *testing.T) {
	s, topo, src, dst, o := fabric(t, netem.LinkConfig{})
	var stolen *packet.Packet
	dst.Deliver = func(pkt *packet.Packet) {
		if stolen == nil {
			stolen = pkt // the bug: keep it, never Put it
			return
		}
		topo.Pool().Put(pkt)
	}
	for i := 0; i < 5; i++ {
		src.Send(dataPacket(topo.Pool(), 0, 1, false))
	}
	s.Run()
	if stolen == nil {
		t.Fatal("no packet delivered")
	}
	wantViolation(t, o, s.Pending(), "conservation")
}

// TestMutationDoubleRelease releases the same packet twice.
func TestMutationDoubleRelease(t *testing.T) {
	o := oracle.New()
	pool := &packet.Pool{}
	pool.SetObserver(o)
	pkt := pool.Get()
	pool.Put(pkt)
	pool.Put(pkt)
	wantViolation(t, o, 1, "pool")
}

// TestMutationUseAfterRelease sends a packet into the fabric after releasing
// it to the pool.
func TestMutationUseAfterRelease(t *testing.T) {
	s, topo, src, _, o := fabric(t, netem.LinkConfig{})
	pkt := dataPacket(topo.Pool(), 0, 1, false)
	topo.Pool().Put(pkt)
	src.Send(pkt) // the bug: the sender kept a reference across the Put
	s.Run()
	wantViolation(t, o, 1, "pool")
}

// TestMutationForgedStreamDelivery feeds a receiver a segment its sender
// never emitted; the stream oracle must reject the delivery.
func TestMutationForgedStreamDelivery(t *testing.T) {
	s := sim.New(1)
	pool := &packet.Pool{}
	o := oracle.New()
	pool.SetObserver(o)

	cfg := tcp.DefaultConfig()
	cfg.Pool = pool
	flow := packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 100, DstPort: 200, Proto: packet.ProtoTCP}
	rcv := tcp.NewReceiver(s, cfg, flow, func(pkt *packet.Packet) { pool.Put(pkt) })

	forged := pool.Get()
	forged.Kind = packet.KindData
	forged.Inner = flow
	forged.Seq = 0
	forged.PayloadLen = 1000
	rcv.HandleData(forged)
	if rcv.RcvNxt() != 1000 {
		t.Fatalf("receiver ignored the forged segment: rcvNxt=%d", rcv.RcvNxt())
	}
	wantViolation(t, o, 1, "tcp-stream")
}

// TestMutationStreamGapAndOverDelivery seeds the two sender-side stream
// bugs: emitting past a gap and delivering beyond sent coverage.
func TestMutationStreamGapAndOverDelivery(t *testing.T) {
	o := oracle.New()
	flow := packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 9, DstPort: 10, Proto: packet.ProtoTCP}
	o.StreamSent(flow, 0, 1000, false)
	o.StreamSent(flow, 2000, 3000, false) // gap [1000,2000) never sent
	o.StreamDeliver(flow, 0, 5000)        // beyond even the gapped coverage
	wantViolation(t, o, 1, "tcp-stream")
	if o.Count() < 2 {
		t.Fatalf("want both gap and over-delivery flagged, got %v", o.Violations())
	}
}

// TestMutationQueueECN seeds the queue/ECN bugs a broken link could exhibit:
// accepting past capacity, marking below threshold, and drop-tail below
// capacity.
func TestMutationQueueECN(t *testing.T) {
	o := oracle.New()
	pkt := &packet.Packet{Kind: packet.KindData, InnerECT: true}
	o.LinkEnqueue(1, pkt, 8, 8, 0, false) // at capacity, should have dropped
	wantViolation(t, o, 1, "queue-ecn")

	o = oracle.New()
	o.LinkEnqueue(1, pkt, 0, 8, 4, true) // marked below threshold
	wantViolation(t, o, 1, "queue-ecn")

	o = oracle.New()
	o.LinkEnqueue(1, pkt, 5, 8, 4, false) // at threshold but unmarked
	wantViolation(t, o, 1, "queue-ecn")

	o = oracle.New()
	o.LinkDrop(1, pkt, packet.DropQueueFull, 3, 8) // drop-tail below capacity
	wantViolation(t, o, 1, "queue-ecn")
}

// TestMutationMisroutedPacket injects a packet addressed to h0 onto the
// downlink toward h1 — the wrong egress, as a broken routing table would.
func TestMutationMisroutedPacket(t *testing.T) {
	s, topo, _, _, o := fabric(t, netem.LinkConfig{})
	wrongDown := topo.LinkByName("S->h1#0")
	wrongDown.Enqueue(dataPacket(topo.Pool(), 1, 0, false)) // destined h0
	s.Run()
	wantViolation(t, o, s.Pending(), "routing")
}

// TestMutationDownLinkDelivery seeds a forwarding-over-down-link bug at the
// hook level (the real datapath cannot express it without the bug).
func TestMutationDownLinkDelivery(t *testing.T) {
	o := oracle.New()
	pkt := &packet.Packet{Kind: packet.KindData}
	o.LinkSetUp(3, false)
	o.LinkDeliver(3, pkt)
	wantViolation(t, o, 1, "routing")

	// Back up: delivery is clean again.
	o = oracle.New()
	o.LinkSetUp(3, false)
	o.LinkSetUp(3, true)
	o.LinkDeliver(3, pkt)
	if err := o.Check(1); err != nil {
		t.Fatalf("delivery over re-raised link flagged: %v", err)
	}
}

// TestMutationFlowletPortChange seeds the flowlet bug: one flowlet of one
// flow steered to two different outer ports.
func TestMutationFlowletPortChange(t *testing.T) {
	o := oracle.New()
	flow := packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 100, DstPort: 200, Proto: packet.ProtoTCP}
	o.FlowletPick(flow, 7, 40000)
	o.FlowletPick(flow, 7, 40000) // same port: fine
	o.FlowletPick(flow, 8, 40001) // new flowlet may move: fine
	if err := o.Check(1); err != nil {
		t.Fatalf("consistent flowlets flagged: %v", err)
	}
	o.FlowletPick(flow, 8, 40002) // the bug: mid-flowlet port change
	wantViolation(t, o, 1, "flowlet")
}

// TestViolationCapAndErr checks reporting: the recorded list is capped but
// the count keeps going, and Err names the first violation.
func TestViolationCapAndErr(t *testing.T) {
	o := oracle.New()
	pkt := &packet.Packet{}
	for i := 0; i < 100; i++ {
		o.LinkDrop(1, pkt, packet.DropQueueFull, 0, 8)
	}
	if len(o.Violations()) != 64 {
		t.Fatalf("recorded %d violations, want cap of 64", len(o.Violations()))
	}
	if o.Count() != 100 {
		t.Fatalf("counted %d violations, want 100", o.Count())
	}
	err := o.Err()
	if err == nil || !strings.Contains(err.Error(), "100 violation(s)") {
		t.Fatalf("Err() = %v", err)
	}
}

// TestDisabledOracleZeroAllocs is the hook-overhead guard: with the oracle
// package compiled in but no observer installed, the forwarding hot path
// must still run allocation-free (the sim/netem hot-path benches assert the
// same; this keeps the guarantee pinned next to the oracle itself).
func TestDisabledOracleZeroAllocs(t *testing.T) {
	s := sim.New(1)
	topo := netem.NewTopology(s)
	sw := topo.AddSwitch("S")
	cfg := netem.LinkConfig{RateBps: 40e9, Delay: 2 * sim.Microsecond}
	src := topo.AddHost("h0", sw, cfg, cfg)
	topo.AddHost("h1", sw, cfg, cfg)
	topo.ComputeRoutes()
	_ = oracle.New() // compiled in, not installed

	send := func() {
		src.Send(dataPacket(topo.Pool(), 0, 1, false))
		s.Run()
	}
	send() // warm pools and event free list
	if allocs := testing.AllocsPerRun(100, send); allocs != 0 {
		t.Fatalf("hot path with disabled oracle: %v allocs/op, want 0", allocs)
	}
}

// TestConnConsistencyClean exercises every legal move of the opt-in
// conn-consistency invariant: staying put across churn, moving after the
// pinned port is withdrawn, fallback picks during a full withdrawal, and
// remove-then-readd churn that must not be mistaken for a violation.
func TestConnConsistencyClean(t *testing.T) {
	o := oracle.New()
	o.RequireConnConsistency()
	flow := packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 100, DstPort: 200, Proto: packet.ProtoTCP}

	// Pre-discovery fallback pick, then install containing a different port.
	o.FlowletPick(flow, 1, 33000)
	o.PolicyPaths(1, 2, []uint16{40000, 40001})
	// Moving off the fallback port is legal: it was never installed.
	o.FlowletPick(flow, 2, 40000)
	// Staying on the pick across an install refresh is always legal.
	o.PolicyPaths(1, 2, []uint16{40000, 40001})
	o.FlowletPick(flow, 3, 40000)
	// Remove the pinned port: moving is now legal.
	o.PolicyPaths(1, 2, []uint16{40001, 40002})
	o.FlowletPick(flow, 4, 40001)
	// Remove-then-readd the pinned port: a later move is still legal,
	// because 40001 was absent after the pick was made.
	o.PolicyPaths(1, 2, []uint16{40002})
	o.PolicyPaths(1, 2, []uint16{40001, 40002})
	o.FlowletPick(flow, 5, 40002)
	// Full withdrawal: a fallback pick outside the (empty) set, then
	// re-install and return to an installed port.
	o.PolicyPaths(1, 2, nil)
	o.FlowletPick(flow, 6, 33017)
	o.PolicyPaths(1, 2, []uint16{40000, 40001})
	o.FlowletPick(flow, 7, 40000)

	if err := o.Check(1); err != nil {
		t.Fatalf("clean conn-consistency sequence flagged: %v", err)
	}
}

// TestMutationConnConsistency seeds the stateless-scheme bug the invariant
// exists to catch: a connection moved to a different installed port while
// its current port never left the installed set.
func TestMutationConnConsistency(t *testing.T) {
	o := oracle.New()
	o.RequireConnConsistency()
	flow := packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 100, DstPort: 200, Proto: packet.ProtoTCP}
	o.PolicyPaths(1, 2, []uint16{40000, 40001})
	o.FlowletPick(flow, 1, 40000)
	o.FlowletPick(flow, 2, 40001) // the bug: 40000 is still installed
	wantViolation(t, o, 1, "conn-consistency")
}

// TestConnConsistencyOffByDefault runs the same seeded violation without
// arming the invariant: stateful schemes may legally rebalance across
// flowlets, so nothing must be flagged.
func TestConnConsistencyOffByDefault(t *testing.T) {
	o := oracle.New()
	flow := packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 100, DstPort: 200, Proto: packet.ProtoTCP}
	o.PolicyPaths(1, 2, []uint16{40000, 40001})
	o.FlowletPick(flow, 1, 40000)
	o.FlowletPick(flow, 2, 40001)
	if err := o.Check(1); err != nil {
		t.Fatalf("unarmed oracle flagged a flowlet-level rebalance: %v", err)
	}
}

// TestMutationConnConsistencyReaddLaundering pins the version bookkeeping:
// re-adding a port that was never removed since the pick must not make a
// move off it legal, while a genuine remove-then-readd must.
func TestMutationConnConsistencyReaddLaundering(t *testing.T) {
	o := oracle.New()
	o.RequireConnConsistency()
	flow := packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 100, DstPort: 200, Proto: packet.ProtoTCP}
	o.PolicyPaths(1, 2, []uint16{40000, 40001})
	o.FlowletPick(flow, 1, 40000)
	// Install refreshes that keep 40000 present do not reset its age.
	o.PolicyPaths(1, 2, []uint16{40000, 40002})
	o.PolicyPaths(1, 2, []uint16{40000, 40003})
	o.FlowletPick(flow, 2, 40003)
	wantViolation(t, o, 1, "conn-consistency")
}
