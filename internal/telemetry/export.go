package telemetry

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// Export writes every stream and the metric registry to dir (created if
// missing), as both JSONL (one object per record, fixed key order) and CSV
// (header + one row per record). Numbers are formatted with strconv, records
// appear in capture order, and no wall-clock state is written, so the
// directory's bytes are a pure function of the run — identical for the same
// seed at any worker count.
//
// Files: queue, weights, cwnd, retx, flowlet, fct, sim (.jsonl and .csv
// each) and metrics.jsonl/metrics.csv. Streams that captured nothing still
// produce files (headers only), so a trace directory always has the same
// shape.
func (t *Tracer) Export(dir string) error {
	if t == nil {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	if err := exportStream(dir, "queue",
		[]string{"t_ns", "link", "name", "qlen", "ecn_marks", "drops"},
		t.queues.snapshot(), func(f *fields, s QueueSample) {
			f.int(int64(s.T)).int(int64(s.Link)).str(s.Name).int(int64(s.QLen)).int(s.ECNMarks).int(s.Drops)
		}); err != nil {
		return err
	}
	if err := exportStream(dir, "weights",
		[]string{"t_ns", "src", "dst", "port", "weight", "util", "congested_age_ns"},
		t.weights.snapshot(), func(f *fields, s WeightSample) {
			f.int(int64(s.T)).int(int64(s.Src)).int(int64(s.Dst)).int(int64(s.Port)).
				float(s.Weight).float(s.Util).int(int64(s.CongestedAge))
		}); err != nil {
		return err
	}
	if err := exportStream(dir, "cwnd",
		[]string{"t_ns", "flow", "cwnd", "ssthresh", "rto_ns", "outstanding"},
		t.cwnds.snapshot(), func(f *fields, s CwndSample) {
			f.int(int64(s.T)).str(s.Flow.String()).float(s.Cwnd).float(s.Ssthresh).
				int(int64(s.RTO)).int(s.Outstanding)
		}); err != nil {
		return err
	}
	if err := exportStream(dir, "retx",
		[]string{"t_ns", "flow", "seq", "kind"},
		t.retx.snapshot(), func(f *fields, s RetxEvent) {
			f.int(int64(s.T)).str(s.Flow.String()).int(s.Seq).str(s.Kind.String())
		}); err != nil {
		return err
	}
	if err := exportStream(dir, "flowlet",
		[]string{"t_ns", "flow", "flowlet_id", "port", "packets", "bytes", "gap_ns"},
		t.flowlets.snapshot(), func(f *fields, s FlowletSample) {
			f.int(int64(s.T)).str(s.Flow.String()).int(int64(s.ID)).int(int64(s.Port)).
				int(s.Packets).int(s.Bytes).int(int64(s.Gap))
		}); err != nil {
		return err
	}
	if err := exportStream(dir, "fct",
		[]string{"t_ns", "src", "dst", "size", "fct_ns"},
		t.fcts.snapshot(), func(f *fields, s FCTSample) {
			f.int(int64(s.T)).int(int64(s.Src)).int(int64(s.Dst)).int(s.Size).int(int64(s.FCT))
		}); err != nil {
		return err
	}
	if err := exportStream(dir, "sim",
		[]string{"t_ns", "processed", "pending", "free_events"},
		t.sims.snapshot(), func(f *fields, s SimSample) {
			f.int(int64(s.T)).int(int64(s.Processed)).int(int64(s.Pending)).int(int64(s.FreeList))
		}); err != nil {
		return err
	}
	return t.exportMetrics(dir)
}

// exportMetrics writes the registry plus the per-stream overwrite counts.
func (t *Tracer) exportMetrics(dir string) error {
	type metric struct {
		name  string
		value string
	}
	var ms []metric
	t.reg.VisitSorted(
		func(c *Counter) { ms = append(ms, metric{c.Name(), strconv.FormatInt(c.Value(), 10)}) },
		func(g *Gauge) { ms = append(ms, metric{g.Name(), formatFloat(g.Value())}) },
	)
	for _, d := range []struct {
		name    string
		dropped int64
	}{
		{"telemetry.dropped.queue", t.queues.dropped},
		{"telemetry.dropped.weights", t.weights.dropped},
		{"telemetry.dropped.cwnd", t.cwnds.dropped},
		{"telemetry.dropped.retx", t.retx.dropped},
		{"telemetry.dropped.flowlet", t.flowlets.dropped},
		{"telemetry.dropped.fct", t.fcts.dropped},
		{"telemetry.dropped.sim", t.sims.dropped},
	} {
		ms = append(ms, metric{d.name, strconv.FormatInt(d.dropped, 10)})
	}
	return exportStream(dir, "metrics", []string{"name", "value"}, ms,
		func(f *fields, m metric) { f.str(m.name).raw(m.value) })
}

// fields accumulates one record's values; the same sequence renders both the
// CSV row and the JSONL object so the two files can never disagree.
type fields struct {
	vals   []string
	quoted []bool // JSONL: quote this field as a string
}

func (f *fields) reset() { f.vals = f.vals[:0]; f.quoted = f.quoted[:0] }

func (f *fields) int(v int64) *fields {
	f.vals = append(f.vals, strconv.FormatInt(v, 10))
	f.quoted = append(f.quoted, false)
	return f
}

func (f *fields) float(v float64) *fields {
	f.vals = append(f.vals, formatFloat(v))
	f.quoted = append(f.quoted, false)
	return f
}

func (f *fields) str(v string) *fields {
	f.vals = append(f.vals, v)
	f.quoted = append(f.quoted, true)
	return f
}

// raw emits a pre-formatted numeric string (unquoted in JSONL).
func (f *fields) raw(v string) *fields {
	f.vals = append(f.vals, v)
	f.quoted = append(f.quoted, false)
	return f
}

// formatFloat renders a float deterministically; shortest round-trip form.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// exportStream writes name.jsonl and name.csv under dir from recs.
func exportStream[T any](dir, name string, cols []string, recs []T, emit func(*fields, T)) error {
	jf, err := os.Create(filepath.Join(dir, name+".jsonl"))
	if err != nil {
		return err
	}
	defer jf.Close()
	cf, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer cf.Close()
	jw := bufio.NewWriter(jf)
	cw := bufio.NewWriter(cf)

	for i, c := range cols {
		if i > 0 {
			cw.WriteByte(',')
		}
		cw.WriteString(c)
	}
	cw.WriteByte('\n')

	var f fields
	for _, rec := range recs {
		f.reset()
		emit(&f, rec)
		if len(f.vals) != len(cols) {
			return fmt.Errorf("telemetry: stream %s emitted %d fields, schema has %d", name, len(f.vals), len(cols))
		}
		jw.WriteByte('{')
		for i, v := range f.vals {
			if i > 0 {
				jw.WriteByte(',')
			}
			jw.WriteByte('"')
			jw.WriteString(cols[i])
			jw.WriteString(`":`)
			if f.quoted[i] {
				jw.WriteString(strconv.Quote(v))
			} else {
				jw.WriteString(v)
			}
		}
		jw.WriteString("}\n")
		for i, v := range f.vals {
			if i > 0 {
				cw.WriteByte(',')
			}
			cw.WriteString(v)
		}
		cw.WriteByte('\n')
	}
	if err := jw.Flush(); err != nil {
		return err
	}
	if err := cw.Flush(); err != nil {
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	return cf.Close()
}
