// Package clove is a Go implementation and experimental reproduction of
// Clove, the congestion-aware load balancer that runs entirely in the
// hypervisor virtual switch (Katta et al., CoNEXT 2017).
//
// The package exposes three layers:
//
//   - A deterministic packet-level datacenter simulator (leaf–spine ECMP
//     fabric, NewReno/MPTCP tenant transports, hypervisor virtual switches)
//     with all eight load-balancing schemes from the paper's evaluation:
//     ECMP, Edge-Flowlet, Clove-ECN, Clove-INT, Presto, MPTCP, CONGA, and
//     LetFlow. Build one with NewCluster and drive it with RunWebSearch /
//     RunIncast, or regenerate any of the paper's figures with RunFigure.
//
//   - The Clove algorithm itself as reusable pieces (flowlet detection,
//     weighted round-robin with congestion-adaptive weights, traceroute
//     path discovery) living under internal packages and surfaced through
//     the cluster and datapath APIs.
//
//   - A real userspace datapath (NewEndpoint): UDP tunnel endpoints that
//     steer traffic across ECMP paths by outer source port, with flowlet
//     switching and in-band congestion feedback — the deployable form of
//     the algorithm.
//
// Quick start:
//
//	c := clove.NewCluster(clove.ClusterConfig{
//		Seed:              1,
//		Topo:              clove.ScaledTestbed(1.0, 8),
//		Scheme:            clove.CloveECN,
//		AsymmetricFailure: true,
//	})
//	c.RunWebSearch(clove.WebSearchParams{Load: 0.7, TotalJobs: 2000, SizeScale: 0.1})
//	fmt.Println(c.Recorder.Summarize())
package clove

import (
	"fmt"
	"io"
	"time"

	"clove/internal/cluster"
	"clove/internal/datapath"
	"clove/internal/experiments"
	"clove/internal/netem"
	"clove/internal/scenario"
	"clove/internal/sim"
	"clove/internal/stats"
)

// Scheme selects a load-balancing algorithm.
type Scheme = cluster.Scheme

// The schemes evaluated in the paper.
const (
	ECMP        = cluster.SchemeECMP
	EdgeFlowlet = cluster.SchemeEdgeFlowlet
	CloveECN    = cluster.SchemeCloveECN
	CloveINT    = cluster.SchemeCloveINT
	Presto      = cluster.SchemePresto
	MPTCP       = cluster.SchemeMPTCP
	CONGA       = cluster.SchemeCONGA
	LetFlow     = cluster.SchemeLetFlow
	// CloveLatency is the Sec. 7 extension: one-way path delay as the
	// reflected congestion metric instead of ECN or INT.
	CloveLatency = cluster.SchemeCloveLatency
	// Concury is the edge-stateless contrast point: encap ports come from
	// a versioned consistent-hash table with no per-flow state.
	Concury = cluster.SchemeConcury
	// Charon is the in-network contrast point: leaf switches stamp
	// per-path load and the edge picks the less-loaded of two hashed
	// candidates.
	Charon = cluster.SchemeCharon
)

// Schemes lists every scheme in presentation order.
func Schemes() []Scheme { return cluster.AllSchemes() }

// ClusterConfig parameterizes a simulated deployment.
type ClusterConfig = cluster.Config

// Cluster is a fully wired simulated deployment; see internal/cluster.
type Cluster = cluster.Cluster

// WebSearchParams configures the paper's main workload.
type WebSearchParams = cluster.WebSearchParams

// IncastParams configures the partition-aggregate workload (Sec. 5.3).
type IncastParams = cluster.IncastParams

// TopoConfig parameterizes the leaf-spine fabric.
type TopoConfig = netem.LeafSpineConfig

// Summary is the FCT digest of a run.
type Summary = stats.Summary

// NewCluster builds a simulated deployment.
func NewCluster(cfg ClusterConfig) *Cluster { return cluster.New(cfg) }

// PaperTestbed returns the paper's 32-server 10G/40G leaf-spine testbed
// configuration, optionally rate-scaled.
func PaperTestbed(scale float64) TopoConfig { return netem.PaperTestbed(scale) }

// ScaledTestbed shrinks the testbed while preserving its
// non-oversubscription ratio; see netem.ScaledTestbed.
func ScaledTestbed(scale float64, hostsPerLeaf int) TopoConfig {
	return netem.ScaledTestbed(scale, hostsPerLeaf)
}

// Scale sizes an experiment run (see QuickScale / StandardScale /
// PaperScale).
type Scale = experiments.Scale

// TraceSpec asks every experiment run for a telemetry trace exported under
// its Dir (see internal/telemetry and EXPERIMENTS.md "Telemetry & tracing").
type TraceSpec = experiments.TraceSpec

// FromDuration converts a wall-clock time.Duration into simulated time (for
// TraceSpec.Interval and similar knobs).
func FromDuration(d time.Duration) sim.Time { return sim.FromDuration(d) }

// Row is one data point of a regenerated figure.
type Row = experiments.Row

// HeadlineResult holds the paper's headline claims as measured ratios.
type HeadlineResult = experiments.HeadlineResult

// QuickScale is sized for CI and benchmarks.
func QuickScale() Scale { return experiments.Quick() }

// StandardScale is the CLI default (minutes of wall time).
func StandardScale() Scale { return experiments.Standard() }

// PaperScale is the full-fidelity configuration (hours).
func PaperScale() Scale { return experiments.Paper() }

// FigureIDs lists the reproducible paper figures ("4b" ... "9").
func FigureIDs() []string { return experiments.ExperimentIDs() }

// RunFigure regenerates one of the paper's evaluation figures at the given
// scale, streaming progress lines to progress (may be nil).
func RunFigure(id string, sc Scale, progress io.Writer) ([]Row, error) {
	fn, ok := experiments.Registry[id]
	if !ok {
		return nil, fmt.Errorf("clove: unknown figure %q (known: %v)", id, experiments.ExperimentIDs())
	}
	return fn(sc, progress), nil
}

// RunSummary measures the paper's headline ratios at the given load on the
// asymmetric topology.
func RunSummary(sc Scale, load float64, progress io.Writer) HeadlineResult {
	return experiments.Summary(sc, load, progress)
}

// FormatRows renders figure rows as an aligned text table.
func FormatRows(rows []Row) string { return experiments.FormatRows(rows) }

// Scenario is a declarative experiment spec: topology, workload blend,
// schemes, and a timestamped event script (see internal/scenario and the
// EXPERIMENTS.md "Scenarios" section).
type Scenario = scenario.Spec

// ScenarioOpts configures a scenario run (parallelism, oracle, telemetry,
// quick CI scale).
type ScenarioOpts = experiments.ScenarioOpts

// ScenarioNames lists the scenarios embedded in the binary.
func ScenarioNames() []string { return scenario.Names() }

// LoadScenario resolves an embedded scenario name or a path to a spec file.
func LoadScenario(nameOrPath string) (*Scenario, error) { return scenario.Load(nameOrPath) }

// RunScenario executes every (scheme, seed) run of the spec and returns one
// aggregated Row per scheme; output is byte-identical at any parallelism.
func RunScenario(sp *Scenario, opts ScenarioOpts, progress io.Writer) []Row {
	return experiments.RunScenario(sp, opts, progress)
}

// Endpoint is a real userspace Clove tunnel endpoint over UDP sockets.
type Endpoint = datapath.Endpoint

// EndpointConfig parameterizes an Endpoint.
type EndpointConfig = datapath.Config

// PathEmulator emulates a multipath ECMP fabric in-process for endpoint
// tests and demos.
type PathEmulator = datapath.PathEmulator

// PathProfile shapes one emulated path.
type PathProfile = datapath.PathProfile

// NewEndpoint creates a tunnel endpoint bound to cfg.Paths UDP sockets.
func NewEndpoint(localIP string, cfg EndpointConfig) (*Endpoint, error) {
	return datapath.NewEndpoint(localIP, cfg)
}

// DefaultEndpointConfig returns LAN-scale endpoint defaults.
func DefaultEndpointConfig() EndpointConfig { return datapath.DefaultConfig() }

// NewPathEmulator creates an in-process multipath fabric emulator.
func NewPathEmulator(localIP, dest string, profiles []PathProfile) (*PathEmulator, error) {
	return datapath.NewPathEmulator(localIP, dest, profiles)
}
