package cluster

import (
	"testing"

	"clove/internal/netem"
	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/vswitch"
)

func TestCloveLatencyLearnsDelays(t *testing.T) {
	c := New(Config{
		Seed: 21, Topo: smallTopo(), Scheme: SchemeCloveLatency,
		AsymmetricFailure: true,
	})
	res := c.RunWebSearch(WebSearchParams{
		Load: 0.6, TotalJobs: 400, SizeScale: 0.1, MaxSimTime: 300 * sim.Second,
	})
	if res.Completed == 0 || res.TimedOut {
		t.Fatalf("clove-latency run failed: %+v", res)
	}
	// The source tables must hold reflected delay metrics.
	pol := c.VSwitches[0].Policy().(*vswitch.CloveINT)
	sawMetric := false
	for dst := 4; dst < 8; dst++ {
		tbl := pol.Table(packet.HostID(dst))
		if tbl == nil {
			continue
		}
		for _, st := range tbl.States() {
			if st.UtilAt > 0 && st.Util > 0 {
				sawMetric = true
				// Reflected delays on this fabric are tens of microseconds
				// to a few milliseconds; a value outside that means the
				// timestamp math is broken.
				if st.Util < 1e-6 || st.Util > 1 {
					t.Errorf("implausible reflected delay %v s", st.Util)
				}
			}
		}
	}
	if !sawMetric {
		t.Error("no delay metrics reached any weight table")
	}
}

func TestCloveLatencyCompetitiveWithCloveECN(t *testing.T) {
	run := func(scheme Scheme) float64 {
		var mean float64
		for _, seed := range []int64{1, 2} {
			c := New(Config{
				Seed: seed, Topo: netem.ScaledTestbed(1.0, 4), Scheme: scheme,
				AsymmetricFailure: true,
			})
			c.RunWebSearch(WebSearchParams{
				Load: 0.7, TotalJobs: 1000, SizeScale: 0.1, MaxSimTime: 300 * sim.Second,
			})
			mean += c.Recorder.Mean() / 2
		}
		return mean
	}
	ecmp := run(SchemeECMP)
	lat := run(SchemeCloveLatency)
	t.Logf("asym 70%%: ecmp=%.4fs clove-latency=%.4fs", ecmp, lat)
	if lat >= ecmp {
		t.Errorf("clove-latency (%.4fs) not better than ECMP (%.4fs) under asymmetry", lat, ecmp)
	}
}

func TestAdaptiveFlowletGapWidens(t *testing.T) {
	c := New(Config{
		Seed: 22, Topo: smallTopo(), Scheme: SchemeCloveLatency,
		AsymmetricFailure: true, AdaptiveFlowletGap: true,
	})
	base := c.Cfg.FlowletGap
	res := c.RunWebSearch(WebSearchParams{
		Load: 0.7, TotalJobs: 600, SizeScale: 0.1, MaxSimTime: 300 * sim.Second,
	})
	if res.Completed == 0 {
		t.Fatal("no jobs completed")
	}
	widened := false
	for _, v := range c.VSwitches {
		if v.FlowletGap() > base {
			widened = true
		}
		if v.FlowletGap() < base {
			t.Errorf("adaptive gap shrank below base: %v < %v", v.FlowletGap(), base)
		}
	}
	if !widened {
		t.Error("no vswitch widened its gap despite congested paths")
	}
}

func TestAdaptiveGapOffStaysAtBase(t *testing.T) {
	c := New(Config{
		Seed: 23, Topo: smallTopo(), Scheme: SchemeCloveLatency,
		AsymmetricFailure: true, // AdaptiveFlowletGap off
	})
	c.RunWebSearch(WebSearchParams{
		Load: 0.7, TotalJobs: 300, SizeScale: 0.1, MaxSimTime: 300 * sim.Second,
	})
	for _, v := range c.VSwitches {
		if v.FlowletGap() != c.Cfg.FlowletGap {
			t.Errorf("gap moved without adaptation enabled: %v", v.FlowletGap())
		}
	}
}
