// Package sim provides the discrete-event simulation core used by the Clove
// network emulator: a nanosecond-resolution virtual clock, a deterministic
// event queue, and a seeded random source.
//
// All simulated subsystems (links, switches, TCP endpoints, virtual switches)
// schedule callbacks on a single Simulator. Runs are fully deterministic for
// a given seed: events with equal timestamps fire in scheduling order.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// run. It is deliberately distinct from time.Time: the simulation clock has
// no relation to the wall clock.
type Time int64

// Common durations, expressed in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts t to a time.Duration for formatting and interop.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time using time.Duration notation (e.g. "1.5ms").
func (t Time) String() string { return time.Duration(t).String() }

// FromDuration converts a wall-clock style duration to simulated Time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// FromSeconds converts floating-point seconds to simulated Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// TransmissionTime returns the time to serialize bytes onto a link of the
// given rate in bits per second. It panics if rateBps is not positive,
// because a zero-rate link would silently absorb all traffic.
func TransmissionTime(bytes int, rateBps int64) Time {
	if rateBps <= 0 {
		panic(fmt.Sprintf("sim: non-positive link rate %d", rateBps))
	}
	bits := int64(bytes) * 8
	return Time(bits * int64(Second) / rateBps)
}
