package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the concurrent sweep engine. Every figure expands its
// (scheme, load, seed) grid into independent jobs; runJobs executes them
// across a bounded worker pool and each job writes its result into a
// pre-sized slice at its own index, so aggregation order — and therefore
// every Row and every FormatRows byte — is identical at any parallelism.
// Safety rests on each job building a fully self-contained simulation
// (cluster.New wires a private event heap, RNG, topology, and recorder;
// no package in the sim stack holds mutable package-level state), which
// determinism_test.go pins end-to-end and the -race smoke test checks.

// Workers resolves the Scale's Parallelism setting to a concrete worker
// count: Parallelism if positive, else GOMAXPROCS.
func (sc Scale) Workers() int {
	if sc.Parallelism > 0 {
		return sc.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runJobs executes fn(i) for every i in [0, n) across at most workers
// goroutines. With workers <= 1 it degrades to a plain serial loop on the
// calling goroutine (the -j 1 path has no goroutine machinery at all).
// fn must confine its writes to index-owned state; runJobs returns after
// all jobs complete, and that return happens-before the caller's reads.
func runJobs(workers, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// progressTracker serializes progress output from concurrent jobs. Per-job
// completion lines stream in completion order (they carry wall-clock
// timings and are inherently nondeterministic); aggregate row lines are
// emitted by the caller after the pool drains, in deterministic grid
// order. A nil tracker (no progress writer) makes every method a no-op.
type progressTracker struct {
	mu    sync.Mutex
	w     io.Writer
	total int
	done  int
	start time.Time
}

func newProgressTracker(w io.Writer, total int) *progressTracker {
	if w == nil {
		return nil
	}
	return &progressTracker{w: w, total: total, start: time.Now()}
}

// jobDone reports one completed job with its wall-clock duration.
func (p *progressTracker) jobDone(label string, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	fmt.Fprintf(p.w, "  [%d/%d] %s  (%.2fs, %.1fs elapsed)\n",
		p.done, p.total, label, d.Seconds(), time.Since(p.start).Seconds())
}

// rowf emits one aggregate line (the per-row summary the serial sweep used
// to stream); callers invoke it in deterministic order after runJobs.
func (p *progressTracker) rowf(format string, args ...any) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, format, args...)
}
