package experiments

import (
	"math"
	"strings"
	"testing"

	"clove/internal/cluster"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// TestDeriveHeadlineRatios checks the headline-ratio arithmetic against
// hand-computed values.
func TestDeriveHeadlineRatios(t *testing.T) {
	h := deriveHeadline(0.7, map[cluster.Scheme]float64{
		cluster.SchemeECMP:        10,
		cluster.SchemeEdgeFlowlet: 5,
		cluster.SchemeCloveECN:    4,
		cluster.SchemeCloveINT:    3,
		cluster.SchemeCONGA:       2,
	})
	if h.Load != 0.7 {
		t.Errorf("load = %v", h.Load)
	}
	if !almost(h.CloveVsECMP, 2.5) {
		t.Errorf("CloveVsECMP = %v, want 2.5", h.CloveVsECMP)
	}
	if !almost(h.EdgeFlowletVsECMP, 2.0) {
		t.Errorf("EdgeFlowletVsECMP = %v, want 2", h.EdgeFlowletVsECMP)
	}
	// Gain ECMP->CONGA is 8; Clove-ECN recovers 6 of it, Clove-INT 7.
	if !almost(h.CloveECNGainCapture, 0.75) {
		t.Errorf("CloveECNGainCapture = %v, want 0.75", h.CloveECNGainCapture)
	}
	if !almost(h.CloveINTGainCapture, 0.875) {
		t.Errorf("CloveINTGainCapture = %v, want 0.875", h.CloveINTGainCapture)
	}
}

// TestDeriveHeadlineDegenerate: zero/missing means must not divide by
// zero or emit NaNs — ratios stay at their zero values.
func TestDeriveHeadlineDegenerate(t *testing.T) {
	h := deriveHeadline(0.8, map[cluster.Scheme]float64{})
	if h.CloveVsECMP != 0 || h.EdgeFlowletVsECMP != 0 ||
		h.CloveECNGainCapture != 0 || h.CloveINTGainCapture != 0 {
		t.Errorf("degenerate input produced nonzero ratios: %+v", h)
	}
	for _, v := range []float64{h.CloveVsECMP, h.CloveECNGainCapture} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("non-finite ratio: %+v", h)
		}
	}
}

// TestDeriveHeadlineNoGain: when CONGA fails to improve on ECMP the
// gain-capture fractions are undefined and must stay 0 (not negative or
// infinite).
func TestDeriveHeadlineNoGain(t *testing.T) {
	h := deriveHeadline(0.6, map[cluster.Scheme]float64{
		cluster.SchemeECMP:        5,
		cluster.SchemeCONGA:       5, // no gain
		cluster.SchemeCloveECN:    4,
		cluster.SchemeCloveINT:    4,
		cluster.SchemeEdgeFlowlet: 4,
	})
	if h.CloveECNGainCapture != 0 || h.CloveINTGainCapture != 0 {
		t.Errorf("gain capture defined without gain: %+v", h)
	}
	if !almost(h.CloveVsECMP, 1.25) {
		t.Errorf("CloveVsECMP = %v", h.CloveVsECMP)
	}
}

// TestHeadlineString checks the rendered comparison carries the measured
// numbers and the paper's reference claims.
func TestHeadlineString(t *testing.T) {
	h := HeadlineResult{
		Load: 0.7, CloveVsECMP: 2.39, EdgeFlowletVsECMP: 2.24,
		CloveECNGainCapture: 0.851, CloveINTGainCapture: 0.851,
	}
	s := h.String()
	for _, want := range []string{"70%", "2.39x", "2.24x", "85.1%", "paper:"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary string missing %q:\n%s", want, s)
		}
	}
}
