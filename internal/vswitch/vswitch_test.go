package vswitch

import (
	"testing"

	"clove/internal/clove"
	"clove/internal/netem"
	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/tcp"
)

// rig is a test fabric: leaf-spine topology with a vswitch per host.
type rig struct {
	s    *sim.Simulator
	ls   *netem.LeafSpine
	vsw  []*VSwitch
	rtt  sim.Time
	tcpC tcp.Config
}

// newRig builds a scaled-down paper testbed with the given policy factory.
func newRig(t *testing.T, seed int64, mkPolicy func(i int) PathPolicy, mutate func(*Config)) *rig {
	t.Helper()
	s := sim.New(seed)
	ls := netem.BuildLeafSpine(s, netem.PaperTestbed(0.01)) // 100M host links
	r := &rig{s: s, ls: ls, rtt: ls.BaseRTT()}
	cfg := DefaultConfig(r.rtt)
	if mutate != nil {
		mutate(&cfg)
	}
	for i, h := range ls.Hosts() {
		r.vsw = append(r.vsw, New(s, h, cfg, mkPolicy(i)))
	}
	r.tcpC = tcp.DefaultConfig()
	return r
}

// conn wires a one-direction TCP transfer from host a to host b and returns
// the sender and receiver.
func (r *rig) conn(a, b packet.HostID, srcPort, dstPort uint16) (*tcp.Sender, *tcp.Receiver) {
	flow := packet.FiveTuple{Src: a, Dst: b, SrcPort: srcPort, DstPort: dstPort, Proto: packet.ProtoTCP}
	snd := tcp.NewSender(r.s, r.tcpC, flow, r.vsw[a].FromVM)
	rcv := tcp.NewReceiver(r.s, r.tcpC, flow, r.vsw[b].FromVM)
	r.vsw[b].Register(flow, rcv.HandleData)
	r.vsw[a].Register(flow.Reverse(), snd.HandleAck)
	return snd, rcv
}

// fourPorts finds, by brute force over the rig's actual switch hashing,
// encap source ports that land on the four distinct L1 uplinks — a stand-in
// for the traceroute discovery tested separately in internal/discovery.
func (r *rig) fourPorts(t *testing.T, src, dst packet.HostID) []uint16 {
	t.Helper()
	leaf := r.ls.Leaves[0]
	if src >= 16 {
		leaf = r.ls.Leaves[1]
	}
	seen := map[packet.LinkID]uint16{}
	for port := uint16(32768); port < 42768 && len(seen) < 4; port++ {
		p := &packet.Packet{Encap: &packet.Encap{SrcHyp: src, DstHyp: dst, SrcPort: port, DstPort: 7471}}
		cands := leaf.NextHops(dst)
		if len(cands) == 0 {
			t.Fatal("no route")
		}
		lk := leaf.RoutePreview(p)
		if _, ok := seen[lk.ID()]; !ok {
			seen[lk.ID()] = port
		}
	}
	if len(seen) != 4 {
		t.Fatalf("found only %d distinct first hops", len(seen))
	}
	out := make([]uint16, 0, 4)
	for _, port := range seen {
		out = append(out, port)
	}
	return out
}

func TestECMPTransferAcrossFabric(t *testing.T) {
	r := newRig(t, 1, func(int) PathPolicy { return NewECMP() }, func(c *Config) { c.MaskECN = false })
	snd, rcv := r.conn(0, 16, 1000, 2000)
	var fct sim.Time = -1
	snd.StartJob(500_000, func(d sim.Time) { fct = d })
	r.s.RunUntil(10 * sim.Second)
	if fct < 0 {
		t.Fatalf("transfer incomplete: rcvd=%d", rcv.RcvNxt())
	}
	if rcv.Stats().BytesDelivered != 500_000 {
		t.Errorf("delivered %d", rcv.Stats().BytesDelivered)
	}
	vs := r.vsw[0].Stats()
	if vs.Encapped == 0 || r.vsw[16].Stats().Decapped == 0 {
		t.Errorf("encap/decap counters: %+v", vs)
	}
}

func TestECMPPinsFlowToOnePath(t *testing.T) {
	r := newRig(t, 1, func(int) PathPolicy { return NewECMP() }, nil)
	// Observe encap ports chosen for many packets of one flow.
	ports := map[uint16]bool{}
	h := r.ls.Host(0)
	orig := h.Uplink()
	_ = orig
	snd, _ := r.conn(0, 16, 1000, 2000)
	// Wrap FromVM? Easier: inspect flowlet count — ECMP maps every flowlet
	// to the same port, so distinct encap ports must be 1. Tap via the
	// destination vswitch obs table after the run.
	snd.StartJob(300_000, nil)
	r.s.RunUntil(5 * sim.Second)
	for _, ob := range r.vsw[16].obs[0].paths {
		ports[ob.port] = true
	}
	if len(ports) != 1 {
		t.Errorf("ECMP used %d ports for one flow, want 1", len(ports))
	}
}

func TestEdgeFlowletUsesMultiplePorts(t *testing.T) {
	r := newRig(t, 1, func(int) PathPolicy { return NewEdgeFlowlet() }, nil)
	snd, _ := r.conn(0, 16, 1000, 2000)
	// Many sequential small jobs with idle gaps create many flowlets.
	var start func(n int)
	start = func(n int) {
		if n == 0 {
			return
		}
		snd.StartJob(20_000, func(sim.Time) {
			r.s.After(5*r.rtt, func() { start(n - 1) })
		})
	}
	start(20)
	r.s.RunUntil(20 * sim.Second)
	if got := r.vsw[0].Flowlets(); got < 10 {
		t.Errorf("flowlets = %d, want many", got)
	}
	if got := len(r.vsw[16].obs[0].paths); got < 3 {
		t.Errorf("edge-flowlet used %d distinct ports", got)
	}
}

func TestCloveECNLearnsCongestion(t *testing.T) {
	mk := func(int) PathPolicy {
		return NewCloveECN(clove.DefaultWeightTableConfig(100 * sim.Microsecond))
	}
	r := newRig(t, 3, mk, nil)
	ports := r.fourPorts(t, 0, 16)
	pol := r.vsw[0].Policy().(*CloveECN)
	pol.SetPaths(16, ports)

	// Fail one trunk so two ports share the bottleneck, then drive enough
	// traffic to mark ECN.
	r.ls.FailPaperLink()
	snd, _ := r.conn(0, 16, 1000, 2000)
	snd.StartJob(3_000_000, nil)
	// A competing flow to add pressure.
	snd2, _ := r.conn(1, 16, 1001, 2001)
	snd2.StartJob(3_000_000, nil)
	r.s.RunUntil(5 * sim.Second)

	table := pol.Table(16)
	if table == nil {
		t.Fatal("no weight table")
	}
	w := table.Weights()
	var minW, maxW = 1.0, 0.0
	for _, x := range w {
		if x < minW {
			minW = x
		}
		if x > maxW {
			maxW = x
		}
	}
	if r.vsw[16].Stats().CEObserved == 0 {
		t.Fatal("no CE observed at receiver; congestion never happened")
	}
	if r.vsw[0].Stats().FeedbackReceived == 0 {
		t.Fatal("source never received feedback")
	}
	if maxW-minW < 0.01 {
		t.Errorf("weights did not differentiate: %v", w)
	}
}

func TestCloveECNMasksCEFromVM(t *testing.T) {
	mk := func(int) PathPolicy {
		return NewCloveECN(clove.DefaultWeightTableConfig(100 * sim.Microsecond))
	}
	r := newRig(t, 4, mk, nil)
	pol := r.vsw[0].Policy().(*CloveECN)
	pol.SetPaths(16, r.fourPorts(t, 0, 16))
	r.ls.FailPaperLink()
	snd, rcv := r.conn(0, 16, 1000, 2000)
	snd.StartJob(3_000_000, nil)
	r.s.RunUntil(5 * sim.Second)
	if r.vsw[16].Stats().CEObserved == 0 {
		t.Skip("no congestion generated; nothing to mask")
	}
	if rcv.Stats().CESeen != 0 {
		t.Errorf("VM saw %d CE marks despite masking", rcv.Stats().CESeen)
	}
	if r.vsw[16].Stats().ECNMasked == 0 {
		t.Error("mask counter zero")
	}
}

func TestRFC6040CopyWithoutMasking(t *testing.T) {
	r := newRig(t, 5, func(int) PathPolicy { return NewECMP() }, func(c *Config) { c.MaskECN = false })
	snd, rcv := r.conn(0, 16, 1000, 2000)
	snd.StartJob(5_000_000, nil)
	snd2, _ := r.conn(1, 16, 1001, 2001)
	snd2.StartJob(5_000_000, nil)
	r.s.RunUntil(3 * sim.Second)
	if r.vsw[16].Stats().CEObserved == 0 {
		t.Skip("no congestion generated")
	}
	if rcv.Stats().CESeen == 0 {
		t.Error("CE not copied to inner on decap without masking")
	}
}

func TestStandaloneFeedbackWhenNoReverseTraffic(t *testing.T) {
	mk := func(int) PathPolicy {
		return NewCloveECN(clove.DefaultWeightTableConfig(100 * sim.Microsecond))
	}
	r := newRig(t, 6, mk, nil)
	// Hand-deliver a CE-marked packet to host 16's vswitch from host 0,
	// with no TCP connection (so no reverse data to piggyback on; the ACK
	// stream doesn't exist).
	p := &packet.Packet{
		Kind:       packet.KindData,
		Inner:      packet.FiveTuple{Src: 0, Dst: 16, SrcPort: 9, DstPort: 9, Proto: packet.ProtoTCP},
		PayloadLen: 100,
		Encap:      &packet.Encap{SrcHyp: 0, DstHyp: 16, SrcPort: 50000, DstPort: 7471, ECT: true, CE: true},
	}
	r.vsw[16].FromNetwork(p)
	r.s.RunUntil(sim.Second)
	if r.vsw[16].Stats().FeedbackStandalone == 0 {
		t.Error("no standalone feedback emitted")
	}
	if r.vsw[0].Stats().FeedbackReceived == 0 {
		t.Error("source did not receive standalone feedback")
	}
}

func TestCloveINTPrefersIdlePath(t *testing.T) {
	var vsws []*VSwitch
	mk := func(i int) PathPolicy {
		return NewCloveINT(clove.DefaultWeightTableConfig(100*sim.Microsecond), func() sim.Time {
			return vsws[i].sim.Now()
		})
	}
	r := newRig(t, 7, mk, func(c *Config) { c.RequestINT = true })
	vsws = r.vsw
	pol := r.vsw[0].Policy().(*CloveINT)
	ports := r.fourPorts(t, 0, 16)
	pol.SetPaths(16, ports)
	snd, _ := r.conn(0, 16, 1000, 2000)
	snd.StartJob(2_000_000, nil)
	r.s.RunUntil(3 * sim.Second)
	table := pol.Table(16)
	states := table.States()
	anyUtil := false
	for _, st := range states {
		if st.UtilAt > 0 {
			anyUtil = true
		}
	}
	if !anyUtil {
		t.Error("no INT utilization reports reached the source table")
	}
}

func TestPrestoFlowcellRotationAndReassembly(t *testing.T) {
	var s *sim.Simulator
	mk := func(int) PathPolicy { return NewPresto(s) }
	// Need the simulator before newRig constructs policies: construct in
	// two steps.
	s = sim.New(8)
	ls := netem.BuildLeafSpine(s, netem.PaperTestbed(0.01))
	r := &rig{s: s, ls: ls, rtt: ls.BaseRTT(), tcpC: tcp.DefaultConfig()}
	cfg := DefaultConfig(r.rtt)
	cfg.MaskECN = false
	for i := range ls.Hosts() {
		r.vsw = append(r.vsw, New(s, ls.Hosts()[i], cfg, mk(i)))
	}
	pol := r.vsw[0].Policy().(*Presto)
	pol.SetPaths(16, r.fourPorts(t, 0, 16))

	snd, rcv := r.conn(0, 16, 1000, 2000)
	var fct sim.Time = -1
	snd.StartJob(1_000_000, func(d sim.Time) { fct = d })
	r.s.RunUntil(10 * sim.Second)
	if fct < 0 {
		t.Fatal("presto transfer incomplete")
	}
	if pol.FlowcellsStarted < 10 {
		t.Errorf("flowcells = %d, want >= 10 for 1MB/64KB", pol.FlowcellsStarted)
	}
	// Reassembly must hide almost all reordering from the VM.
	if ooo := rcv.Stats().OutOfOrder; ooo > 20 {
		t.Errorf("VM saw %d out-of-order segments despite reassembly", ooo)
	}
	// And multiple paths were actually used.
	if got := len(r.vsw[16].obs[0].paths); got < 3 {
		t.Errorf("presto used %d distinct ports", got)
	}
}

func TestPrestoReorderBufferFlushOnTimeout(t *testing.T) {
	s := sim.New(9)
	pol := NewPresto(s)
	var delivered []int64
	deliver := func(p *packet.Packet) { delivered = append(delivered, p.Seq) }
	mkPkt := func(seq int64) *packet.Packet {
		return &packet.Packet{Inner: packet.FiveTuple{Src: 1, Dst: 2}, Seq: seq, PayloadLen: 100}
	}
	// Arrives out of order with a hole at 0 that never fills.
	pol.OnDeliver(mkPkt(100), deliver)
	pol.OnDeliver(mkPkt(200), deliver)
	if len(delivered) != 0 {
		t.Fatal("hole leaked through")
	}
	s.RunUntil(2 * PrestoReorderTimeout)
	if len(delivered) != 2 {
		t.Fatalf("timeout flush delivered %d", len(delivered))
	}
	if delivered[0] != 100 || delivered[1] != 200 {
		t.Errorf("flush out of order: %v", delivered)
	}
	if pol.TimeoutFlushes == 0 {
		t.Error("timeout flush not counted")
	}
}

func TestPrestoStaticWeights(t *testing.T) {
	s := sim.New(10)
	pol := NewPresto(s)
	pol.SetPaths(5, []uint16{10, 20, 30, 40})
	pol.SetStaticWeights(5, map[uint16]float64{10: 0.33, 20: 0.33, 30: 0.17, 40: 0.17})
	counts := map[uint16]int{}
	flow := packet.FiveTuple{Src: 1, Dst: 5, SrcPort: 99, DstPort: 98}
	// 100 flowcells worth of packets.
	for i := 0; i < 100*45; i++ {
		p := pol.PickPortPacket(5, flow, 1460)
		counts[p]++
	}
	if counts[10] <= counts[30] {
		t.Errorf("heavy port 10 (%d) not favored over light port 30 (%d)", counts[10], counts[30])
	}
}

func TestProbeEchoReachesProber(t *testing.T) {
	r := newRig(t, 11, func(int) PathPolicy { return NewECMP() }, nil)
	// The hook may not retain the echo packet (the vswitch recycles it when
	// the hook returns), so copy out the field under test.
	var echoes []packet.LinkID
	r.vsw[0].OnProbeEcho = func(p *packet.Packet) { echoes = append(echoes, p.EchoLink) }
	for ttl := 1; ttl <= 5; ttl++ {
		r.vsw[0].SendProbe(16, 51000, ttl, 42)
	}
	r.s.RunUntil(100 * sim.Millisecond)
	if len(echoes) != 5 {
		t.Fatalf("echoes = %d, want 5 (3 switches + dst host x2 overshoot)", len(echoes))
	}
	// TTL 4 and 5 overshoot the 3-switch path: answered by the host.
	hostEchoes := 0
	for _, link := range echoes {
		if link == -1 {
			hostEchoes++
		}
	}
	if hostEchoes != 2 {
		t.Errorf("host echoes = %d, want 2", hostEchoes)
	}
}

func TestUnregisteredFlowCounted(t *testing.T) {
	r := newRig(t, 12, func(int) PathPolicy { return NewECMP() }, nil)
	p := &packet.Packet{
		Kind:       packet.KindData,
		Inner:      packet.FiveTuple{Src: 0, Dst: 16, SrcPort: 7, DstPort: 7, Proto: packet.ProtoTCP},
		PayloadLen: 10,
		Encap:      &packet.Encap{SrcHyp: 0, DstHyp: 16, SrcPort: 50000, DstPort: 7471},
	}
	r.vsw[16].FromNetwork(p)
	if r.vsw[16].Stats().NoHandler != 1 {
		t.Error("NoHandler not counted")
	}
}

func TestFeedbackRateLimiting(t *testing.T) {
	mk := func(int) PathPolicy {
		return NewCloveECN(clove.DefaultWeightTableConfig(100 * sim.Microsecond))
	}
	r := newRig(t, 13, mk, func(c *Config) { c.StandaloneFeedback = false })
	v := r.vsw[16]
	// Observe CE on the same path many times within one relay interval.
	for i := 0; i < 10; i++ {
		p := &packet.Packet{
			Kind:       packet.KindData,
			Inner:      packet.FiveTuple{Src: 0, Dst: 16, SrcPort: 9, DstPort: 9, Proto: packet.ProtoTCP},
			PayloadLen: 10,
			Encap:      &packet.Encap{SrcHyp: 0, DstHyp: 16, SrcPort: 50000, DstPort: 7471, ECT: true, CE: true},
		}
		v.FromNetwork(p)
	}
	// First outgoing packet toward host 0 carries feedback...
	fb1, ok1 := v.takeFeedback(0, v.sim.Now())
	// ...the second within the same interval must not.
	_, ok2 := v.takeFeedback(0, v.sim.Now())
	if !ok1 || !fb1.ECN || fb1.Port != 50000 {
		t.Fatalf("first relay: %v %v", fb1, ok1)
	}
	if ok2 {
		t.Error("relay not rate-limited per path")
	}
	// After the interval elapses with no new CE, nothing pending (ECN was
	// consumed) unless util is known — there is none here.
	_, ok3 := v.takeFeedback(0, v.sim.Now()+10*v.cfg.RelayInterval)
	if ok3 {
		t.Error("stale relay without pending state")
	}
}
