package tcp

import (
	"sort"

	"clove/internal/packet"
	"clove/internal/sim"
)

// ReceiverStats counts receive-side events.
type ReceiverStats struct {
	SegmentsReceived int64
	OutOfOrder       int64
	Duplicates       int64
	AcksSent         int64
	CESeen           int64
	BytesDelivered   int64
}

// interval is a half-open received byte range [start, end).
type interval struct{ start, end int64 }

// Receiver is the data sink for one direction of a connection: it tracks the
// in-order delivery point, buffers out-of-order segments, generates
// cumulative ACKs, and echoes ECN congestion marks back to the sender
// (ECE set on ACKs for marked segments, DCTCP-style per-packet echo).
type Receiver struct {
	sim  *sim.Simulator
	cfg  Config
	flow packet.FiveTuple // direction of the *data* (ACKs go the other way)

	// Output transmits ACK segments toward the network.
	Output func(*packet.Packet)

	rcvNxt int64
	ooo    []interval // sorted, disjoint, all > rcvNxt

	stats ReceiverStats
}

// NewReceiver creates a receiver for data flowing along flow; ACKs are
// emitted on the reverse tuple via output.
func NewReceiver(s *sim.Simulator, cfg Config, flow packet.FiveTuple, output func(*packet.Packet)) *Receiver {
	return &Receiver{sim: s, cfg: cfg.withDefaults(), flow: flow, Output: output}
}

// Stats returns a snapshot of the receiver counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// RcvNxt returns the next expected in-order byte.
func (r *Receiver) RcvNxt() int64 { return r.rcvNxt }

// OOOSegments reports how many disjoint out-of-order ranges are buffered.
func (r *Receiver) OOOSegments() int { return len(r.ooo) }

// HandleData processes an incoming (inner, already-decapsulated) data
// segment and emits a cumulative ACK. The receiver consumes the packet: it
// is released to the configured pool before returning and must not be
// referenced by the caller afterwards.
func (r *Receiver) HandleData(pkt *packet.Packet) {
	r.stats.SegmentsReceived++
	ce := pkt.InnerCE
	if ce {
		r.stats.CESeen++
	}
	start, end := pkt.Seq, pkt.Seq+int64(pkt.PayloadLen)
	r.cfg.Pool.Put(pkt)

	oldNxt := r.rcvNxt
	switch {
	case end <= r.rcvNxt:
		r.stats.Duplicates++
	case start > r.rcvNxt:
		r.stats.OutOfOrder++
		r.insertOOO(start, end)
	default:
		// Advances the in-order point; absorb any buffered continuation.
		r.stats.BytesDelivered += end - r.rcvNxt
		r.rcvNxt = end
		r.drainOOO()
	}
	if r.rcvNxt > oldNxt {
		if o := r.cfg.Pool.Obs(); o != nil {
			o.StreamDeliver(r.flow, oldNxt, r.rcvNxt)
		}
	}
	r.sendAck(ce)
}

func (r *Receiver) insertOOO(start, end int64) {
	r.ooo = append(r.ooo, interval{start, end})
	sort.Slice(r.ooo, func(i, j int) bool { return r.ooo[i].start < r.ooo[j].start })
	// Merge overlaps.
	merged := r.ooo[:1]
	for _, iv := range r.ooo[1:] {
		last := &merged[len(merged)-1]
		if iv.start <= last.end {
			if iv.end > last.end {
				last.end = iv.end
			}
		} else {
			merged = append(merged, iv)
		}
	}
	r.ooo = merged
}

func (r *Receiver) drainOOO() {
	for len(r.ooo) > 0 && r.ooo[0].start <= r.rcvNxt {
		if r.ooo[0].end > r.rcvNxt {
			r.stats.BytesDelivered += r.ooo[0].end - r.rcvNxt
			r.rcvNxt = r.ooo[0].end
		}
		r.ooo = r.ooo[1:]
	}
}

func (r *Receiver) sendAck(ce bool) {
	flags := packet.FlagACK
	if ce && r.cfg.ECN {
		flags |= packet.FlagECE
	}
	ack := r.cfg.Pool.Get()
	ack.Kind = packet.KindData
	ack.Inner = r.flow.Reverse()
	ack.Ack = r.rcvNxt
	ack.Flags = flags
	ack.InnerECT = r.cfg.ECN
	r.stats.AcksSent++
	r.Output(ack)
}
