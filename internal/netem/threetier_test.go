package netem

import (
	"testing"

	"clove/internal/packet"
	"clove/internal/sim"
)

func TestThreeTierConstruction(t *testing.T) {
	s := sim.New(1)
	tt := BuildThreeTier(s, DefaultThreeTier())
	if len(tt.Leaves) != 4 || len(tt.Aggs) != 4 || len(tt.Spines) != 2 {
		t.Fatalf("switches: leaves=%d aggs=%d spines=%d", len(tt.Leaves), len(tt.Aggs), len(tt.Spines))
	}
	if len(tt.Hosts()) != 16 {
		t.Fatalf("hosts = %d", len(tt.Hosts()))
	}
}

func TestThreeTierCrossPodRouting(t *testing.T) {
	s := sim.New(1)
	tt := BuildThreeTier(s, DefaultThreeTier())
	src, dst := tt.CrossPodPair()
	if src == dst {
		t.Fatal("degenerate pair")
	}
	// Source leaf has 2 equal-cost agg uplinks toward a cross-pod host.
	leaf := tt.Leaves[0]
	if got := len(leaf.NextHops(dst)); got != 2 {
		t.Errorf("leaf next-hops cross-pod = %d, want 2 aggs", got)
	}
	// Aggs have 2 spine choices.
	if got := len(tt.Aggs[0].NextHops(dst)); got != 2 {
		t.Errorf("agg next-hops cross-pod = %d, want 2 spines", got)
	}
	// Same-pod same-leaf traffic: single downlink.
	if got := len(leaf.NextHops(1)); got != 1 {
		t.Errorf("leaf next-hops same-leaf = %d", got)
	}
}

func TestThreeTierEndToEndDelivery(t *testing.T) {
	s := sim.New(2)
	tt := BuildThreeTier(s, DefaultThreeTier())
	src, dst := tt.CrossPodPair()
	var got int
	tt.Host(dst).Deliver = func(p *packet.Packet) { got++ }
	for i := 0; i < 50; i++ {
		p := &packet.Packet{
			Kind:       packet.KindData,
			Inner:      packet.FiveTuple{Src: src, Dst: dst, SrcPort: uint16(i), DstPort: 80, Proto: packet.ProtoTCP},
			PayloadLen: 1000,
			Encap:      &packet.Encap{SrcHyp: src, DstHyp: dst, SrcPort: uint16(40000 + i), DstPort: 7471},
		}
		tt.Host(src).Send(p)
	}
	s.Run()
	if got != 50 {
		t.Errorf("delivered %d/50 across 3 tiers", got)
	}
}

func TestThreeTierPathDiversity(t *testing.T) {
	s := sim.New(3)
	tt := BuildThreeTier(s, DefaultThreeTier())
	src, dst := tt.CrossPodPair()
	tt.Host(dst).Deliver = func(*packet.Packet) {}
	paths := map[string]bool{}
	for i := 0; i < 200; i++ {
		p := &packet.Packet{
			Kind:  packet.KindData,
			Encap: &packet.Encap{SrcHyp: src, DstHyp: dst, SrcPort: uint16(33000 + i*7), DstPort: 7471},
		}
		p.PathTrace = []packet.LinkID{}
		tt.Host(src).Send(p)
		s.Run()
		key := ""
		for _, l := range p.PathTrace {
			key += tt.LinkByID(l).Name() + ","
		}
		paths[key] = true
	}
	// 2 aggs x 2 spines x 2 remote aggs... remote agg determined by spine
	// choice? Each spine connects to both aggs of the far pod: 2x2x2 = 8
	// possible cross-pod paths. Require at least 4 observed.
	if len(paths) < 4 {
		t.Errorf("only %d distinct cross-pod paths exercised", len(paths))
	}
}

func TestThreeTierFailureReroutes(t *testing.T) {
	s := sim.New(4)
	tt := BuildThreeTier(s, DefaultThreeTier())
	src, dst := tt.CrossPodPair()
	// Fail one leaf-agg link in the source pod.
	tt.SetLinkPairUp("P1L1", "P1A1", 0, false)
	if got := len(tt.Leaves[0].NextHops(dst)); got != 1 {
		t.Errorf("next-hops after agg link failure = %d, want 1", got)
	}
	var got int
	tt.Host(dst).Deliver = func(*packet.Packet) { got++ }
	p := &packet.Packet{
		Kind:  packet.KindData,
		Encap: &packet.Encap{SrcHyp: src, DstHyp: dst, SrcPort: 55555, DstPort: 7471},
	}
	tt.Host(src).Send(p)
	s.Run()
	if got != 1 {
		t.Error("no delivery after reroute")
	}
}
