//go:build linux && amd64

package datapath

// recvmmsg/sendmmsg syscall numbers (sendmmsg postdates the stdlib syscall
// table freeze, so both are spelled out per target).
const (
	sysRecvmmsg uintptr = 299
	sysSendmmsg uintptr = 307
)
