package lifecycle

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recorder is a Component that appends phase markers to a shared log.
type recorder struct {
	name     string
	log      *eventLog
	initErr  error
	startErr error
	stopErr  error
	stops    atomic.Int64
}

type eventLog struct {
	mu     sync.Mutex
	events []string
}

func (l *eventLog) add(s string) {
	l.mu.Lock()
	l.events = append(l.events, s)
	l.mu.Unlock()
}

func (l *eventLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.events...)
}

func (r *recorder) Init(context.Context) error {
	r.log.add("init:" + r.name)
	return r.initErr
}

func (r *recorder) Start(context.Context) error {
	r.log.add("start:" + r.name)
	return r.startErr
}

func (r *recorder) Stop() error {
	r.stops.Add(1)
	r.log.add("stop:" + r.name)
	return r.stopErr
}

func join(ss []string) string { return strings.Join(ss, " ") }

func TestOrderedInitStartReverseStop(t *testing.T) {
	log := &eventLog{}
	m := New()
	a := &recorder{name: "a", log: log}
	b := &recorder{name: "b", log: log}
	c := &recorder{name: "c", log: log}
	m.Add("a", a)
	m.Add("b", b)
	m.Add("c", c)
	ctx := context.Background()
	if err := m.Init(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Stop(); err != nil {
		t.Fatal(err)
	}
	want := "init:a init:b init:c start:a start:b start:c stop:c stop:b stop:a"
	if got := join(log.snapshot()); got != want {
		t.Errorf("sequence = %q, want %q", got, want)
	}
}

func TestInitFirstErrorAborts(t *testing.T) {
	log := &eventLog{}
	m := New()
	m.Add("a", &recorder{name: "a", log: log})
	m.Add("b", &recorder{name: "b", log: log, initErr: errors.New("boom")})
	m.Add("c", &recorder{name: "c", log: log})
	err := m.Init(context.Background())
	if err == nil || !strings.Contains(err.Error(), "init b") {
		t.Fatalf("err = %v, want init b failure", err)
	}
	if got := join(log.snapshot()); got != "init:a init:b" {
		t.Errorf("sequence = %q: init continued past the failure", got)
	}
}

func TestStartFailureRollsBackStartedPrefix(t *testing.T) {
	log := &eventLog{}
	m := New()
	a := &recorder{name: "a", log: log}
	b := &recorder{name: "b", log: log}
	c := &recorder{name: "c", log: log, startErr: errors.New("bind failed")}
	d := &recorder{name: "d", log: log}
	for _, e := range []*recorder{a, b, c, d} {
		m.Add(e.name, e)
	}
	err := m.Start(context.Background())
	if err == nil || !strings.Contains(err.Error(), "start c") {
		t.Fatalf("err = %v, want start c failure", err)
	}
	want := "start:a start:b start:c stop:b stop:a"
	if got := join(log.snapshot()); got != want {
		t.Errorf("sequence = %q, want %q (reverse rollback, d never started, c not stopped)", got, want)
	}
}

func TestStopAggregatesErrorsAndContinues(t *testing.T) {
	log := &eventLog{}
	m := New()
	a := &recorder{name: "a", log: log, stopErr: errors.New("a-stop-err")}
	b := &recorder{name: "b", log: log, stopErr: errors.New("b-stop-err")}
	c := &recorder{name: "c", log: log}
	for _, e := range []*recorder{a, b, c} {
		m.Add(e.name, e)
	}
	ctx := context.Background()
	if err := m.Start(ctx); err != nil {
		t.Fatal(err)
	}
	err := m.Stop()
	if err == nil {
		t.Fatal("stop errors swallowed")
	}
	for _, want := range []string{"a-stop-err", "b-stop-err"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error %q missing %q", err, want)
		}
	}
	// Every component was still stopped despite the earlier errors.
	if got := join(log.snapshot()); !strings.HasSuffix(got, "stop:c stop:b stop:a") {
		t.Errorf("sequence = %q: stop did not continue past errors", got)
	}
}

func TestDoubleStopIdempotent(t *testing.T) {
	log := &eventLog{}
	m := New()
	a := &recorder{name: "a", log: log, stopErr: errors.New("sticky")}
	m.Add("a", a)
	if err := m.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	err1 := m.Stop()
	err2 := m.Stop()
	if a.stops.Load() != 1 {
		t.Errorf("component stopped %d times, want 1", a.stops.Load())
	}
	if err1 == nil || err2 == nil || err1.Error() != err2.Error() {
		t.Errorf("second Stop result %v differs from first %v", err2, err1)
	}
}

func TestStopTimeoutNamesComponentAndMovesOn(t *testing.T) {
	log := &eventLog{}
	m := New()
	m.StopTimeout = 50 * time.Millisecond
	release := make(chan struct{})
	stuck := &Fn{StopFn: func() error { <-release; return nil }}
	a := &recorder{name: "a", log: log}
	m.Add("a", a)
	m.Add("stuck", stuck)
	if err := m.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := m.Stop()
	close(release)
	if err == nil || !strings.Contains(err.Error(), "stop stuck: timed out") {
		t.Fatalf("err = %v, want stop stuck timeout", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("stop blocked %v on a stuck component", el)
	}
	// The stuck component did not prevent the earlier component's stop.
	if a.stops.Load() != 1 {
		t.Error("component behind the stuck one was never stopped")
	}
}

func TestStartTimeout(t *testing.T) {
	m := New()
	m.StartTimeout = 50 * time.Millisecond
	release := make(chan struct{})
	defer close(release)
	m.Add("slow", &Fn{StartFn: func(context.Context) error { <-release; return nil }})
	err := m.Start(context.Background())
	if err == nil || !strings.Contains(err.Error(), "start slow: timed out") {
		t.Fatalf("err = %v, want start timeout", err)
	}
}

func TestReadyAggregation(t *testing.T) {
	m := New()
	readyErr := errors.New("no remote yet")
	var gate atomic.Pointer[error]
	gate.Store(&readyErr)
	m.Add("tunnel", &Fn{ReadyFn: func() error {
		if e := gate.Load(); e != nil {
			return *e
		}
		return nil
	}})
	m.Add("plain", &recorder{name: "plain", log: &eventLog{}})

	if err := m.Ready(); err == nil {
		t.Error("ready before start")
	}
	if err := m.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := m.Ready(); err == nil || !strings.Contains(err.Error(), "no remote yet") {
		t.Errorf("ready = %v, want tunnel unready", err)
	}
	gate.Store(nil)
	if err := m.Ready(); err != nil {
		t.Errorf("ready = %v after gate cleared", err)
	}
	m.Stop()
	if err := m.Ready(); err == nil {
		t.Error("ready after stop")
	}
}

func TestHealthyAggregation(t *testing.T) {
	m := New()
	m.Add("ok", &Fn{})
	m.Add("sick", &Fn{HealthyFn: func() error { return errors.New("degraded") }})
	if err := m.Healthy(); err == nil || !strings.Contains(err.Error(), "sick: degraded") {
		t.Errorf("healthy = %v, want sick component named", err)
	}
}

func TestTickerTicksAndStops(t *testing.T) {
	var ticks atomic.Int64
	tk := &Ticker{Interval: 5 * time.Millisecond, Tick: func() { ticks.Add(1) }}
	if err := tk.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := tk.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for ticks.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ticks.Load() < 3 {
		t.Fatal("ticker never ticked")
	}
	if err := tk.Stop(); err != nil {
		t.Fatal(err)
	}
	n := ticks.Load()
	time.Sleep(25 * time.Millisecond)
	if m := ticks.Load(); m != n {
		t.Errorf("ticker ticked after Stop (%d -> %d)", n, m)
	}
	if err := tk.Stop(); err != nil { // double stop
		t.Fatal(err)
	}
}

func TestTickerStopBeforeStart(t *testing.T) {
	tk := &Ticker{Interval: time.Millisecond, Tick: func() {}}
	if err := tk.Stop(); err != nil { // never inited
		t.Fatal(err)
	}
	if err := tk.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := tk.Stop(); err != nil { // inited, never started
		t.Fatal(err)
	}
}

func TestTickerRejectsBadConfig(t *testing.T) {
	if err := (&Ticker{Interval: 0, Tick: func() {}}).Init(context.Background()); err == nil {
		t.Error("zero interval accepted")
	}
	if err := (&Ticker{Interval: time.Second}).Init(context.Background()); err == nil {
		t.Error("nil tick accepted")
	}
}
