package datapath

// PR 9 battery: zero-allocation contracts for the steady-state send and
// receive paths, batched-vs-fallback differential equivalence, read-loop
// error backoff, payload-size boundaries, and deterministic feedback relay.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"clove/internal/wire"
)

// pairCfg creates a connected a->b, b->a endpoint pair with cfg.
func pairCfg(t *testing.T, cfg Config) (*Endpoint, *Endpoint) {
	t.Helper()
	a, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	if err := a.Start(fmt.Sprintf("127.0.0.1:%d", b.Ports()[0])); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(fmt.Sprintf("127.0.0.1:%d", a.Ports()[0])); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// --- payload-size boundary (silent uint16 truncation fix) ---

func TestSendPayloadSizeBoundary(t *testing.T) {
	a, _ := pair(t, DefaultConfig())
	// 65535 is representable in the shim: it must not be rejected as
	// oversize. (The kernel may still refuse the oversized datagram with
	// EMSGSIZE — that is a socket-level error, not silent truncation.)
	if err := a.Send(make([]byte, MaxPayload)); errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("65535-byte payload rejected as too large: %v", err)
	}
	// 65536 would wrap PayloadLen to 0 and arrive garbled: explicit error.
	if err := a.Send(make([]byte, MaxPayload+1)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("65536-byte payload not rejected, got %v", err)
	}
	if err := a.Enqueue(make([]byte, MaxPayload+1)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("Enqueue 65536-byte payload not rejected, got %v", err)
	}
}

// --- deterministic feedback relay (map-iteration fix) ---

func TestTakeFeedbackRoundRobinDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Paths = 1
	cfg.RelayInterval = 0
	e, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sh := e.shards[0]
	for _, p := range []uint16{10, 20, 30} {
		sh.noteCE(p)
	}
	now := time.Now()
	take := func() uint16 {
		fb := e.takeFeedbackLocked(now)
		if !fb.Valid {
			t.Fatal("no feedback due")
		}
		return fb.Port
	}
	// First-observed order, not map order.
	if got := []uint16{take(), take(), take()}; got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("relay order = %v, want [10 20 30]", got)
	}
	// Round-robin continuation: a re-pending early port must not starve
	// later ports — after relaying 10 again the cursor resumes at 20.
	for _, p := range []uint16{10, 20, 30} {
		sh.noteCE(p)
	}
	if got := take(); got != 10 {
		t.Fatalf("second round starts at %d, want 10", got)
	}
	sh.noteCE(10)
	if got := []uint16{take(), take(), take()}; got[0] != 20 || got[1] != 30 || got[2] != 10 {
		t.Fatalf("round-robin order = %v, want [20 30 10]", got)
	}
	if fb := e.takeFeedbackLocked(now); fb.Valid {
		t.Fatalf("spurious feedback %+v", fb)
	}
}

func TestTakeFeedbackRotatesShards(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Paths = 2
	cfg.RelayInterval = 0
	e, err := NewEndpoint("127.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.shards[0].noteCE(10)
	e.shards[1].noteCE(99)
	e.shards[0].noteCE(11)
	now := time.Now()
	var got []uint16
	for i := 0; i < 3; i++ {
		fb := e.takeFeedbackLocked(now)
		if !fb.Valid {
			t.Fatalf("feedback %d not due", i)
		}
		got = append(got, fb.Port)
	}
	// Shards alternate: shard0's first entry, shard1's entry, shard0 again.
	if got[0] != 10 || got[1] != 99 || got[2] != 11 {
		t.Fatalf("cross-shard relay order = %v, want [10 99 11]", got)
	}
}

// --- read-loop backoff (busy-spin fix) ---

func TestNextBackoffBounded(t *testing.T) {
	d := errBackoffMin
	seen := []time.Duration{d}
	for i := 0; i < 12; i++ {
		d = nextBackoff(d)
		seen = append(seen, d)
	}
	if seen[1] != 2*errBackoffMin {
		t.Errorf("backoff does not double: %v", seen[:3])
	}
	if d != errBackoffMax {
		t.Errorf("backoff cap = %v, want %v", d, errBackoffMax)
	}
	if nextBackoff(errBackoffMax) != errBackoffMax {
		t.Error("backoff exceeds cap")
	}
}

func TestReadLoopNoBusySpinOnSocketError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Paths = 2
	a, b := pairCfg(t, cfg)
	b.SetOnRecv(func([]byte) {})

	// Kill one of a's sockets out from under its read loop (not via
	// Close): the loop must count the error and terminate — the old code
	// hot-spun on `continue` forever.
	a.shards[1].conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for a.Stats().SocketErrors == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	n1 := a.Stats().SocketErrors
	if n1 == 0 {
		t.Fatal("socket error never counted")
	}
	time.Sleep(100 * time.Millisecond)
	if n2 := a.Stats().SocketErrors; n2 != n1 {
		t.Errorf("socket error counter still growing (%d -> %d): read loop is spinning", n1, n2)
	}
	// The surviving paths still deliver.
	var got int64
	var mu sync.Mutex
	b.SetOnRecv(func([]byte) { mu.Lock(); got++; mu.Unlock() })
	for i := 0; i < 5; i++ {
		// Path 0 is b's ingress; a's dead socket only breaks a's own
		// receive on path 1.
		if err := a.transmit(a.ports[0], 1, wire.Feedback{}, []byte("x"), 0); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool { mu.Lock(); defer mu.Unlock(); return got == 5 }, "delivery after socket loss")
}

// --- batched vs fallback differential ---

// collectPayloads drains n seq-tagged payloads into an indexed table.
type collector struct {
	mu   sync.Mutex
	got  map[int][]byte
	dups int
}

func newCollector() *collector { return &collector{got: map[int][]byte{}} }

func (c *collector) fn(p []byte) {
	if len(p) < 4 {
		return
	}
	seq := int(p[0])<<24 | int(p[1])<<16 | int(p[2])<<8 | int(p[3])
	c.mu.Lock()
	if _, ok := c.got[seq]; ok {
		c.dups++
	} else {
		c.got[seq] = append([]byte(nil), p...)
	}
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func seqPayload(seq, size int) []byte {
	p := make([]byte, size)
	p[0], p[1], p[2], p[3] = byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq)
	for i := 4; i < size; i++ {
		p[i] = byte(seq * (i + 7))
	}
	return p
}

// runTransfer pushes n payloads a->b using Enqueue/Flush and returns the
// receiver's indexed copies.
func runTransfer(t *testing.T, cfg Config, n int) map[int][]byte {
	t.Helper()
	a, b := pairCfg(t, cfg)
	col := newCollector()
	b.SetOnRecv(col.fn)
	for i := 0; i < n; i++ {
		if err := a.Enqueue(seqPayload(i, 600)); err != nil {
			t.Fatal(err)
		}
		if i%8 == 7 {
			if err := a.Flush(); err != nil {
				t.Fatal(err)
			}
			// Pace gently: this is a correctness transfer, not a flood.
			time.Sleep(200 * time.Microsecond)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return col.count() == n }, "differential transfer")
	if col.dups != 0 {
		t.Fatalf("%d duplicate datagrams", col.dups)
	}
	return col.got
}

func TestBatchedFallbackDifferential(t *testing.T) {
	if !batchSyscallsAvailable {
		t.Skip("batched syscalls unavailable on this platform")
	}
	const n = 200
	batched := DefaultConfig()
	fallback := DefaultConfig()
	fallback.NoBatchSyscalls = true

	gotB := runTransfer(t, batched, n)
	gotF := runTransfer(t, fallback, n)
	for i := 0; i < n; i++ {
		want := seqPayload(i, 600)
		if string(gotB[i]) != string(want) {
			t.Fatalf("batched payload %d corrupted", i)
		}
		if string(gotB[i]) != string(gotF[i]) {
			t.Fatalf("batched and fallback payloads differ at %d", i)
		}
	}
}

// TestBatchedFallbackInterop crosses the two I/O paths on one wire: a
// batched sender feeding a fallback receiver and vice versa, proving the
// syscall seam changes nothing about the bytes on the wire.
func TestBatchedFallbackInterop(t *testing.T) {
	if !batchSyscallsAvailable {
		t.Skip("batched syscalls unavailable on this platform")
	}
	const n = 100
	mk := func(noBatch bool) *Endpoint {
		cfg := DefaultConfig()
		cfg.NoBatchSyscalls = noBatch
		e, err := NewEndpoint("127.0.0.1", cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		return e
	}
	for _, dir := range []struct {
		name             string
		sendNoB, recvNoB bool
	}{
		{"batched->fallback", false, true},
		{"fallback->batched", true, false},
	} {
		snd, rcv := mk(dir.sendNoB), mk(dir.recvNoB)
		if err := snd.Start(fmt.Sprintf("127.0.0.1:%d", rcv.Ports()[0])); err != nil {
			t.Fatal(err)
		}
		if err := rcv.Start(fmt.Sprintf("127.0.0.1:%d", snd.Ports()[0])); err != nil {
			t.Fatal(err)
		}
		col := newCollector()
		rcv.SetOnRecv(col.fn)
		for i := 0; i < n; i++ {
			if err := snd.Enqueue(seqPayload(i, 300)); err != nil {
				t.Fatal(err)
			}
			if i%16 == 15 {
				snd.Flush()
				time.Sleep(200 * time.Microsecond)
			}
		}
		snd.Flush()
		waitFor(t, 5*time.Second, func() bool { return col.count() == n }, dir.name)
		for i := 0; i < n; i++ {
			if string(col.got[i]) != string(seqPayload(i, 300)) {
				t.Fatalf("%s: payload %d corrupted", dir.name, i)
			}
		}
	}
}

// --- zero-allocation contracts ---

func TestSteadyStateSendZeroAlloc(t *testing.T) {
	for _, mode := range []struct {
		name    string
		noBatch bool
	}{{"batched", false}, {"fallback", true}} {
		if !batchSyscallsAvailable && !mode.noBatch {
			continue
		}
		t.Run(mode.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.NoBatchSyscalls = mode.noBatch
			a, b := pairCfg(t, cfg)
			b.SetOnRecv(func([]byte) {})
			payload := make([]byte, 512)
			for i := 0; i < 100; i++ { // warm rings, WRR, flowlet state
				if err := a.Send(payload); err != nil {
					t.Fatal(err)
				}
			}
			if n := testing.AllocsPerRun(500, func() { a.Send(payload) }); n != 0 {
				t.Errorf("steady-state Send allocates %v/op, contract is 0", n)
			}
			if n := testing.AllocsPerRun(500, func() { a.Enqueue(payload) }); n != 0 {
				t.Errorf("steady-state Enqueue allocates %v/op, contract is 0", n)
			}
			a.Flush()
			if n := testing.AllocsPerRun(500, func() {
				a.Enqueue(payload)
				a.Flush()
			}); n != 0 {
				t.Errorf("steady-state Enqueue+Flush allocates %v/op, contract is 0", n)
			}
		})
	}
}

func TestSteadyStateReceiveZeroAlloc(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := pairCfg(t, cfg)
	a.SetOnRecv(func([]byte) {})
	sh := a.shards[0]

	frame := make([]byte, headerLen+512)
	encodeFrame(frame, 40001, 7, wire.Feedback{}, make([]byte, 512), 0)

	// Steady-state data datagram (no CE, no feedback): the dominant path.
	a.handleFrame(sh, frame, 40001)
	if n := testing.AllocsPerRun(1000, func() { a.handleFrame(sh, frame, 40001) }); n != 0 {
		t.Errorf("steady-state receive allocates %v/op, contract is 0", n)
	}

	// CE-marked datagram for an already-observed peer port: still zero
	// (only the first observation of a port allocates its entry).
	ce := make([]byte, headerLen+512)
	encodeFrame(ce, 40001, 7, wire.Feedback{}, make([]byte, 512), 0)
	ce[0] |= fabricCE
	a.handleFrame(sh, ce, 40001)
	if n := testing.AllocsPerRun(1000, func() { a.handleFrame(sh, ce, 40001) }); n != 0 {
		t.Errorf("CE receive allocates %v/op after first observation, contract is 0", n)
	}
}
