// Command cloveprobe demonstrates Clove's traceroute-based path discovery
// (Sec. 3.1) inside the simulated fabric: it sends TTL-limited probes with
// rotated encapsulation source ports from one hypervisor, assembles the
// port→path mapping from the switch echoes, runs the greedy disjoint-path
// selection, and prints the result — before and, optionally, after a link
// failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"clove/internal/clove"
	"clove/internal/discovery"
	"clove/internal/netem"
	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/vswitch"
)

func main() {
	var (
		hosts      = flag.Int("hosts", 8, "hosts per leaf")
		candidates = flag.Int("candidates", 32, "candidate source ports per round")
		k          = flag.Int("k", 4, "paths to select")
		fail       = flag.Bool("fail", false, "fail the S2-L2 trunk and rediscover (leaf-spine only)")
		threeTier  = flag.Bool("three-tier", false, "probe a 3-tier Clos (pods of leaves+aggs under spines) instead")
		seed       = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	s := sim.New(*seed)
	var (
		topo *netem.Topology
		ls   *netem.LeafSpine
		dst  packet.HostID
	)
	if *threeTier {
		tt := netem.BuildThreeTier(s, netem.DefaultThreeTier())
		topo = tt.Topology
		_, dst = tt.CrossPodPair()
	} else {
		ls = netem.BuildLeafSpine(s, netem.ScaledTestbed(1.0, *hosts))
		topo = ls.Topology
		dst = packet.HostID(*hosts) // first host on the far leaf
	}
	// A rough base-RTT estimate is fine for prober timing.
	rtt := 100 * sim.Microsecond
	if ls != nil {
		rtt = ls.BaseRTT()
	}
	fmt.Printf("fabric: %d hosts, %d candidate ports, k=%d\n\n",
		len(topo.Hosts()), *candidates, *k)

	var vsws []*vswitch.VSwitch
	for _, h := range topo.Hosts() {
		pol := vswitch.NewCloveECN(clove.DefaultWeightTableConfig(rtt))
		vsws = append(vsws, vswitch.New(s, h, vswitch.DefaultConfig(rtt), pol))
	}

	cfg := discovery.DefaultConfig(rtt)
	cfg.CandidatePorts = *candidates
	cfg.K = *k
	if *threeTier {
		cfg.MaxTTL = 7 // 5 switch hops cross-pod
	}
	prober := discovery.NewProber(s, vsws[0], cfg)
	printRound := func(label string) {
		done := false
		prober.OnPaths = func(_ packet.HostID, ports []uint16, paths []discovery.Path) {
			fmt.Printf("== %s: selected %d paths to h%d ==\n", label, len(ports), dst)
			sort.Slice(paths, func(i, j int) bool { return paths[i].Port < paths[j].Port })
			for _, p := range paths {
				fmt.Printf("  port %5d -> %d hops via links", p.Port, p.Hops)
				for _, l := range p.Links {
					fmt.Printf(" %s", topo.LinkByID(l).Name())
				}
				fmt.Println()
			}
			st := prober.Stats()
			fmt.Printf("  (%d probes sent, %d echoes, %d incomplete ports)\n\n",
				st.ProbesSent, st.EchoesReceived, st.IncompletePorts)
			done = true
		}
		prober.Discover(dst)
		s.RunUntil(s.Now() + sim.Second)
		if !done {
			fmt.Fprintln(os.Stderr, "cloveprobe: discovery round produced no paths")
			os.Exit(1)
		}
	}

	printRound("baseline")
	if *fail {
		if ls == nil {
			fmt.Fprintln(os.Stderr, "cloveprobe: -fail applies to the leaf-spine fabric only")
			os.Exit(2)
		}
		ls.FailPaperLink()
		fmt.Println("** failed trunk L2-S2#0; ECMP tables recomputed **")
		printRound("after failure")
	}
}
