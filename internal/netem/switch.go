package netem

import (
	"fmt"
	"sort"

	"clove/internal/packet"
	"clove/internal/sim"
)

// SwitchLB lets an in-network load balancer (the CONGA baseline) take over
// egress selection and observe traffic at a switch. The default fabric uses
// plain ECMP and needs no hook.
type SwitchLB interface {
	// Observe sees every packet the switch receives, before forwarding.
	Observe(sw *Switch, pkt *packet.Packet, ingress *Link)
	// Pick chooses the egress among ECMP candidates. ok=false falls back to
	// standard ECMP hashing.
	Pick(sw *Switch, pkt *packet.Packet, candidates []*Link) (*Link, bool)
}

// SwitchStats aggregates counters across a switch.
type SwitchStats struct {
	RxPackets   int64
	NoRoute     int64
	ProbeEchoes int64
	TTLDrops    int64
}

// Switch is an output-queued L3 switch. It forwards on the packet's outer
// destination using equal-cost multi-path: the set of next-hop links is
// precomputed by the Topology, and the choice among them is a hash of the
// outer 5-tuple salted with a per-switch seed — so, as in a real fabric, the
// edge cannot predict the port→path mapping and must discover it (Sec. 3.1).
type Switch struct {
	id   packet.NodeID
	name string
	sim  *sim.Simulator
	pool *packet.Pool
	seed uint64
	topo *Topology

	egress       []*Link // all egress links, kept sorted by ID once finalized
	egressSorted bool
	// routes holds the ECMP next-hop sets, indexed by destination HostID
	// (host addresses are dense, assigned in creation order). A dense slice
	// instead of a map keeps the per-packet forwarding lookup to one bounds
	// check and one load — no hashing — which matters at fabric scale where
	// every switch consults it for every forwarded packet.
	routes [][]*Link

	lb SwitchLB
	// stampLoad makes this switch initiate INT on transiting data packets
	// (Charon-style switch-assisted telemetry): the fabric stamps per-path
	// load whether or not the edge asked for it. See SetLoadStamp.
	stampLoad bool
	stats     SwitchStats
}

// ID implements Node.
func (s *Switch) ID() packet.NodeID { return s.id }

// Name returns the builder-assigned name (e.g. "L1", "S2").
func (s *Switch) Name() string { return s.name }

// Sim returns the Simulator this switch schedules on (its owning domain's
// on sharded topologies).
func (s *Switch) Sim() *sim.Simulator { return s.sim }

// SetLB installs an in-network load balancer hook (CONGA).
func (s *Switch) SetLB(lb SwitchLB) { s.lb = lb }

// SetLoadStamp makes the switch enable INT on every data packet it
// forwards, so the fabric itself reports per-path load to the edges without
// the sending hypervisor requesting telemetry (the switch-assisted Charon
// scheme). Once enabled here, the ordinary INT stamping records this and
// every downstream hop's egress utilization. Stamping is a purely local
// read of the chosen egress link's DRE, so it is safe in sharded
// (domain-mode) topologies where CONGA's cross-switch tables are not.
func (s *Switch) SetLoadStamp(on bool) { s.stampLoad = on }

// Stats returns a snapshot of switch counters.
func (s *Switch) Stats() SwitchStats { return s.stats }

// Egress returns all egress links, sorted by ID.
func (s *Switch) Egress() []*Link {
	s.sortEgress()
	return s.egress
}

// NextHops returns the current ECMP candidate set toward dst (nil if
// unreachable). The returned slice must not be modified.
func (s *Switch) NextHops(dst packet.HostID) []*Link { return s.nextHops(dst) }

// nextHops is the forwarding-path route lookup: dense-indexed, bounds-guarded
// (an out-of-range address is simply unreachable, matching the old map miss).
func (s *Switch) nextHops(dst packet.HostID) []*Link {
	if uint(dst) >= uint(len(s.routes)) {
		return nil
	}
	return s.routes[dst]
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvMix folds the 8 bytes of v into h, least-significant byte first — the
// FNV-1a byte loop, unrolled. This must stay bit-identical to
//
//	for i := 0; i < 8; i++ { h ^= (v >> (8 * i)) & 0xff; h *= prime }
//
// (the closure body it replaced): every discovered path set and therefore
// every golden figure depends on these exact hash values.
// TestHashTupleVectors pins recorded outputs against drift.
func fnvMix(h, v uint64) uint64 {
	h = (h ^ (v & 0xff)) * fnvPrime
	h = (h ^ (v >> 8 & 0xff)) * fnvPrime
	h = (h ^ (v >> 16 & 0xff)) * fnvPrime
	h = (h ^ (v >> 24 & 0xff)) * fnvPrime
	h = (h ^ (v >> 32 & 0xff)) * fnvPrime
	h = (h ^ (v >> 40 & 0xff)) * fnvPrime
	h = (h ^ (v >> 48 & 0xff)) * fnvPrime
	h = (h ^ (v >> 56)) * fnvPrime
	return h
}

// hashTuple implements the ECMP hash: FNV-1a over the 5-tuple, salted.
// The unrolled, closure-free body keeps the per-packet routing decision
// free of the capture-and-loop overhead the original closure paid.
func hashTuple(seed uint64, t packet.FiveTuple) uint64 {
	h := fnvOffset ^ seed
	h = fnvMix(h, uint64(uint32(t.Src)))
	h = fnvMix(h, uint64(uint32(t.Dst)))
	h = fnvMix(h, uint64(t.SrcPort)<<16|uint64(t.DstPort))
	h = fnvMix(h, uint64(t.Proto))
	// Avalanche finalizer (Murmur3-style). Without it, the per-switch seed
	// only offsets the FNV state, and the offset propagates almost
	// additively — two switches' hashes then differ by a near-constant, so
	// their modulo choices correlate and deep Clos topologies lose path
	// diversity.
	h ^= seed
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ecmpPick returns the hash-selected candidate. Candidates must be non-empty.
func (s *Switch) ecmpPick(pkt *packet.Packet, candidates []*Link) *Link {
	if len(candidates) == 1 {
		return candidates[0]
	}
	h := hashTuple(s.seed, pkt.OuterTuple())
	return candidates[h%uint64(len(candidates))]
}

// RoutePreview returns the egress link plain ECMP would choose for pkt,
// without forwarding it or touching any state. It returns nil when the
// destination is unreachable. Used by oracle-style path enumeration in
// tests and fast experiment setup; the data plane never calls it.
func (s *Switch) RoutePreview(pkt *packet.Packet) *Link {
	candidates := s.nextHops(pkt.OuterDst())
	if len(candidates) == 0 {
		return nil
	}
	return s.ecmpPick(pkt, candidates)
}

// Receive implements Node: route, apply telemetry, and enqueue on egress.
func (s *Switch) Receive(pkt *packet.Packet, ingress *Link) {
	s.stats.RxPackets++
	if s.lb != nil {
		s.lb.Observe(s, pkt, ingress)
	}

	if pkt.Kind == packet.KindProbe {
		pkt.TTL--
		if pkt.TTL <= 0 {
			s.answerProbe(pkt)
			return
		}
	}

	dst := pkt.OuterDst()
	candidates := s.nextHops(dst)
	if len(candidates) == 0 {
		s.stats.NoRoute++
		s.pool.Put(pkt)
		return
	}

	var eg *Link
	if s.lb != nil {
		if picked, ok := s.lb.Pick(s, pkt, candidates); ok {
			eg = picked
		}
	}
	if eg == nil {
		eg = s.ecmpPick(pkt, candidates)
	}

	// Switch-assisted load stamping (Charon): the fabric initiates INT on
	// transit data traffic, so the block below stamps this hop and
	// INT.Enabled rides the packet to stamp every later hop too.
	if s.stampLoad && pkt.Kind == packet.KindData {
		pkt.INT.Enabled = true
	}

	// Telemetry stamping happens at egress selection: INT records the
	// maximum egress utilization along the path; CONGA accumulates its
	// congestion metric the same way.
	if pkt.INT.Enabled {
		if u := eg.Utilization(); u > pkt.INT.MaxUtil {
			pkt.INT.MaxUtil = u
		}
		pkt.INT.Hops++
	}
	if pkt.Conga != nil {
		if u := eg.Utilization(); u > pkt.Conga.CEMetric {
			pkt.Conga.CEMetric = u
		}
	}

	eg.Enqueue(pkt)
}

// answerProbe emits a KindProbeEcho back to the probing hypervisor,
// reporting which egress this switch would have hashed the probe onto. This
// is the simulator's analogue of a TTL-expired ICMP reply in the
// Paris-traceroute-style discovery mechanism (Sec. 3.1).
func (s *Switch) answerProbe(probe *packet.Packet) {
	s.stats.ProbeEchoes++
	src := probe.Encap.SrcHyp

	// What egress would the probe have taken had it lived?
	var chosenLink packet.LinkID = -1
	if cands := s.nextHops(probe.OuterDst()); len(cands) > 0 {
		chosenLink = s.ecmpPick(probe, cands).ID()
	}

	echo := s.pool.Get()
	echo.Kind = packet.KindProbeEcho
	echo.ProbeID = probe.ProbeID
	echo.ProbePort = probe.ProbePort
	echo.HopIndex = probe.HopIndex
	echo.EchoNode = s.id
	echo.EchoLink = chosenLink
	echo.TTL = 64
	e := s.pool.GetEncap()
	e.SrcHyp = probe.Encap.DstHyp // nominal; echoes route on DstHyp
	e.DstHyp = src
	e.SrcPort = probe.ProbePort
	e.DstPort = probe.Encap.DstPort
	echo.Encap = e

	// The probe terminates here; the echo replaces it on the wire.
	s.pool.Put(probe)

	cands := s.nextHops(src)
	if len(cands) == 0 {
		s.stats.NoRoute++
		s.pool.Put(echo)
		return
	}
	s.ecmpPick(echo, cands).Enqueue(echo)
}

// addEgress registers a new egress link. Insertion just appends and marks
// the slice dirty; sortEgress sorts once when the set is first consumed
// (route computation or the Egress accessor). Sorting on every insertion
// made topology build O(n²·log n) in the per-switch port count, which
// dominated setup on large fat-trees.
func (s *Switch) addEgress(l *Link) {
	s.egress = append(s.egress, l)
	s.egressSorted = false
}

// sortEgress finalizes the egress set into ID order. Link IDs are unique,
// so the order is total and identical to what per-insertion sorting
// produced — ECMP candidate order (and hence every golden figure) does not
// depend on when the sort happens.
func (s *Switch) sortEgress() {
	if s.egressSorted {
		return
	}
	sort.Slice(s.egress, func(i, j int) bool { return s.egress[i].ID() < s.egress[j].ID() })
	s.egressSorted = true
}

// String implements fmt.Stringer.
func (s *Switch) String() string { return fmt.Sprintf("switch %s(%d)", s.name, s.id) }
