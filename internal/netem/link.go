// Package netem emulates the physical datacenter fabric: store-and-forward
// links with drop-tail queues and ECN marking, ECMP switches with per-switch
// hash seeds, DRE link-utilization estimators for INT/CONGA, host NICs, and
// leaf–spine / fat-tree topology builders with link-failure injection.
package netem

import (
	"fmt"
	"sync/atomic"

	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/telemetry"
)

// Node is anything that can receive a packet from a link.
type Node interface {
	// ID returns the node's fabric-unique identifier.
	ID() packet.NodeID
	// Receive handles a packet arriving over lk.
	Receive(pkt *packet.Packet, lk *Link)
}

// LinkStats counts what happened on a link since the start of the run.
type LinkStats struct {
	TxPackets int64
	TxBytes   int64
	Drops     int64 // queue-overflow drops
	ECNMarks  int64
	DownDrops int64 // packets dropped because the link was down
}

// Link is a unidirectional link: an egress queue at the sender, a serializer
// at Rate bits/s, and a propagation delay. Bidirectional connectivity is two
// Links. The queue is drop-tail with a packet-count capacity and marks ECN
// when the instantaneous occupancy at enqueue meets the threshold, matching
// the switch-port behaviour Clove assumes (Sec. 3.2).
type Link struct {
	id    packet.LinkID
	name  string
	sim   *sim.Simulator
	from  packet.NodeID
	to    Node
	rate  int64    // bits per second
	delay sim.Time // propagation delay

	queueCap int // packets
	ecnK     int // mark when queued packets >= ecnK at enqueue; 0 disables

	// queue is a fixed-capacity ring buffer (len(queue) == queueCap): qhead
	// is the oldest packet, qlen the occupancy, and slots wrap modulo the
	// capacity. A ring makes dequeue O(1) — the previous slice-shift form
	// paid an O(occupancy) copy() per transmitted packet, which dominated
	// link cost on deep host qdiscs (HostQdiscCap = 1024).
	queue   []*packet.Packet
	qhead   int
	qlen    int
	sending *packet.Packet // the packet occupying the serializer, if any
	busy    bool
	up      bool
	dre     *DRE
	pool    *packet.Pool
	stats   LinkStats
	onDrop  func(*packet.Packet)

	// Cross-domain channel state (sharded topologies; see domains.go).
	// srcDom is non-nil iff the endpoints live in different event domains:
	// the propagation stage then crosses via Domain.Post and runs in the
	// receiving domain. rxPool is the receiving node's pool (== pool on
	// domain-local links). propDownDrops counts down-drops detected on the
	// receive side; it is separate from stats (and atomic) because the
	// source domain may be running — and writing stats — concurrently.
	srcDom        *sim.Domain
	dstDomID      int
	rxPool        *packet.Pool
	propDownDrops atomic.Int64

	// Telemetry counter handles, resolved at wiring time in SetTrace; nil
	// when telemetry is disabled (Add on a nil handle is a no-op branch).
	trMarks *telemetry.Counter
	trDrops *telemetry.Counter
}

// LinkConfig parameterizes a link.
type LinkConfig struct {
	RateBps  int64
	Delay    sim.Time
	QueueCap int // packets; 0 means default (256)
	ECNK     int // ECN marking threshold in packets; 0 disables marking
}

// DefaultQueueCap is the per-port buffer used when LinkConfig.QueueCap is 0.
const DefaultQueueCap = 256

func newLink(s *sim.Simulator, pool *packet.Pool, id packet.LinkID, name string, from packet.NodeID, to Node, cfg LinkConfig) *Link {
	if cfg.QueueCap == 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	l := &Link{
		id:       id,
		name:     name,
		sim:      s,
		pool:     pool,
		rxPool:   pool,
		from:     from,
		to:       to,
		rate:     cfg.RateBps,
		delay:    cfg.Delay,
		queueCap: cfg.QueueCap,
		ecnK:     cfg.ECNK,
		up:       true,
		// The ring is allocated at full capacity up front; it never grows.
		queue: make([]*packet.Packet, cfg.QueueCap),
	}
	l.dre = NewDRE(s, cfg.RateBps)
	return l
}

// ID returns the link's fabric-unique identifier.
func (l *Link) ID() packet.LinkID { return l.id }

// Name returns the human-readable name assigned by the topology builder.
func (l *Link) Name() string { return l.name }

// To returns the receiving node.
func (l *Link) To() Node { return l.to }

// From returns the sending node's ID.
func (l *Link) From() packet.NodeID { return l.from }

// RateBps returns the link rate in bits per second.
func (l *Link) RateBps() int64 { return l.rate }

// Delay returns the propagation delay.
func (l *Link) Delay() sim.Time { return l.delay }

// Up reports whether the link is administratively up.
func (l *Link) Up() bool { return l.up }

// SetRateBps changes the link rate (scenario speed downgrades: a negotiated
// 40G->10G step-down, a failing optic). The new rate applies from the next
// serialization; the packet currently on the serializer keeps the timing it
// was scheduled with. The DRE capacity follows so utilization stays
// normalized to the current rate.
func (l *Link) SetRateBps(rate int64) {
	if rate <= 0 {
		panic(fmt.Sprintf("netem: link rate %d", rate))
	}
	l.rate = rate
	l.dre.SetRate(rate)
}

// QueueLen returns the instantaneous number of queued packets (not counting
// the one currently serializing).
func (l *Link) QueueLen() int { return l.qlen }

// Stats returns a snapshot of the link counters. On a cross-domain link the
// receive-side down-drop count is folded in; the snapshot is exact whenever
// the engine is at a barrier (or done).
func (l *Link) Stats() LinkStats {
	st := l.stats
	st.DownDrops += l.propDownDrops.Load()
	return st
}

// Utilization returns the DRE-estimated egress utilization in [0, ~1.1].
func (l *Link) Utilization() float64 { return l.dre.Utilization() }

// SetOnDrop installs a hook invoked on every dropped packet (tests, tracing).
func (l *Link) SetOnDrop(fn func(*packet.Packet)) { l.onDrop = fn }

// SetTrace resolves this link's telemetry counter handles (fabric-wide
// aggregates: every link shares the same named counters). Nil disables.
func (l *Link) SetTrace(tr *telemetry.Tracer) {
	if tr == nil {
		return
	}
	l.trMarks = tr.Counter("netem.ecn_marks")
	l.trDrops = tr.Counter("netem.drops")
}

// SetUp changes the administrative state. Taking a link down drops the
// queue contents and everything sent while down; bringing it back up starts
// clean.
func (l *Link) SetUp(up bool) {
	if l.up == up {
		return
	}
	l.up = up
	if o := l.pool.Obs(); o != nil {
		o.LinkSetUp(l.id, up)
	}
	if !up {
		n := l.qlen
		l.stats.DownDrops += int64(n)
		for i := 0; i < n; i++ {
			idx := l.qhead + i
			if idx >= l.queueCap {
				idx -= l.queueCap
			}
			pkt := l.queue[idx]
			l.queue[idx] = nil
			if o := l.pool.Obs(); o != nil {
				o.LinkDrop(l.id, pkt, packet.DropLinkDown, n, l.queueCap)
			}
			l.pool.Put(pkt)
		}
		l.qhead, l.qlen = 0, 0
		// The packet currently serializing (if any) is lost too; the busy
		// flag is cleared when its tx timer fires and finds the link down.
	}
}

// Enqueue offers a packet to the link. It applies ECN marking and drop-tail
// policy, then starts the serializer if idle.
func (l *Link) Enqueue(pkt *packet.Packet) {
	if !l.up {
		l.stats.DownDrops++
		if o := l.pool.Obs(); o != nil {
			o.LinkDrop(l.id, pkt, packet.DropLinkDown, l.qlen, l.queueCap)
		}
		if l.onDrop != nil {
			l.onDrop(pkt)
		}
		l.pool.Put(pkt)
		return
	}
	if l.qlen >= l.queueCap {
		l.stats.Drops++
		l.trDrops.Inc()
		if o := l.pool.Obs(); o != nil {
			o.LinkDrop(l.id, pkt, packet.DropQueueFull, l.qlen, l.queueCap)
		}
		if l.onDrop != nil {
			l.onDrop(pkt)
		}
		l.pool.Put(pkt)
		return
	}
	marked := false
	if l.ecnK > 0 && l.qlen >= l.ecnK {
		if pkt.MarkCE() {
			l.stats.ECNMarks++
			l.trMarks.Inc()
			marked = true
		}
	}
	if o := l.pool.Obs(); o != nil {
		o.LinkEnqueue(l.id, pkt, l.qlen, l.queueCap, l.ecnK, marked)
	}
	idx := l.qhead + l.qlen
	if idx >= l.queueCap {
		idx -= l.queueCap
	}
	l.queue[idx] = pkt
	l.qlen++
	if !l.busy {
		l.transmitNext()
	}
}

// linkTxDone and linkPropagate are the static trampolines for the two
// per-packet-hop events. Using package-level EventFuncs (rather than
// closures or method values) with the link and packet passed as operands is
// what makes a forwarded hop schedule zero allocations.
func linkTxDone(a, _ any) { a.(*Link).txDone() }

// linkPropagate runs in the RECEIVING node's domain: on a cross-domain link
// it must touch only receive-side state (l.up and queueCap are safe — the
// former changes only at engine barriers, the latter is immutable).
func linkPropagate(a, b any) {
	l := a.(*Link)
	pkt := b.(*packet.Packet)
	if l.up {
		if o := l.rxPool.Obs(); o != nil {
			o.LinkDeliver(l.id, pkt)
		}
		l.to.Receive(pkt, l)
		return
	}
	if l.srcDom != nil {
		// The source domain may be running (and writing l.stats / l.qlen)
		// concurrently: count atomically and report occupancy as unknown.
		l.propDownDrops.Add(1)
		if o := l.rxPool.Obs(); o != nil {
			o.LinkDrop(l.id, pkt, packet.DropLinkDown, 0, l.queueCap)
		}
		l.rxPool.Put(pkt)
		return
	}
	l.stats.DownDrops++
	if o := l.pool.Obs(); o != nil {
		o.LinkDrop(l.id, pkt, packet.DropLinkDown, l.qlen, l.queueCap)
	}
	l.pool.Put(pkt)
}

func (l *Link) transmitNext() {
	if l.qlen == 0 || !l.up {
		l.busy = false
		return
	}
	pkt := l.queue[l.qhead]
	l.queue[l.qhead] = nil
	l.qhead++
	if l.qhead == l.queueCap {
		l.qhead = 0
	}
	l.qlen--

	l.busy = true
	size := pkt.Size()
	txTime := sim.TransmissionTime(size, l.rate)
	l.stats.TxPackets++
	l.stats.TxBytes += int64(size)
	l.dre.Add(size)

	if pkt.PathTrace != nil {
		pkt.PathTrace = append(pkt.PathTrace, l.id)
	}

	// Serializer occupies the link for txTime; the packet lands after
	// txTime + propagation delay.
	l.sending = pkt
	l.sim.AfterCall(txTime, linkTxDone, l, nil)
}

// txDone fires when the serializer finishes: hand the packet to the
// propagation stage and start on the next queued packet. The propagation
// event is scheduled before transmitNext so the event-sequence order is
// identical to the nested-closure formulation this replaced.
func (l *Link) txDone() {
	pkt := l.sending
	l.sending = nil
	if l.up {
		if l.srcDom != nil {
			l.srcDom.Post(l.dstDomID, l.sim.Now()+l.delay, linkPropagate, l, pkt)
		} else {
			l.sim.AfterCall(l.delay, linkPropagate, l, pkt)
		}
	} else {
		l.stats.DownDrops++
		if o := l.pool.Obs(); o != nil {
			o.LinkDrop(l.id, pkt, packet.DropLinkDown, l.qlen, l.queueCap)
		}
		l.pool.Put(pkt)
	}
	l.transmitNext()
}

// String implements fmt.Stringer.
func (l *Link) String() string {
	return fmt.Sprintf("link %d (%s)", l.id, l.name)
}
