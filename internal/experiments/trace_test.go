package experiments

import (
	"io"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"clove/internal/cluster"
	"clove/internal/sim"
)

// traceScale is a trimmed sweep that still exercises every traced stream:
// one load point, two seeds, one clove scheme so weights and flowlets flow.
func traceScale(dir string, parallelism int) Scale {
	sc := Quick()
	sc.TotalJobs = 200
	sc.Seeds = []int64{1, 2}
	sc.Loads = []float64{0.5}
	sc.Parallelism = parallelism
	sc.Telemetry = &TraceSpec{Dir: dir, Interval: sim.Millisecond}
	return sc
}

// readTree returns path->contents for every regular file under root, with
// paths relative to root.
func readTree(t *testing.T, root string) map[string]string {
	t.Helper()
	files := map[string]string{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		files[rel] = string(b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestTraceFilesDeterministicAcrossParallelism is the ISSUE's trace-level
// determinism gate: the exported trace tree for the same seeds must be
// byte-identical whether the sweep ran serially or on four workers.
func TestTraceFilesDeterministicAcrossParallelism(t *testing.T) {
	dir1, dir4 := t.TempDir(), t.TempDir()
	opts := sweepOpts{figure: "trace", schemes: []cluster.Scheme{cluster.SchemeCloveECN}}
	sweep(traceScale(dir1, 1), opts, io.Discard)
	sweep(traceScale(dir4, 4), opts, io.Discard)

	tree1 := readTree(t, dir1)
	tree4 := readTree(t, dir4)
	if len(tree1) == 0 {
		t.Fatal("serial sweep exported no trace files")
	}
	if len(tree1) != len(tree4) {
		t.Fatalf("serial run exported %d files, parallel %d", len(tree1), len(tree4))
	}
	var names []string
	for name := range tree1 {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		got, ok := tree4[name]
		if !ok {
			t.Fatalf("parallel run missing %s", name)
		}
		if got != tree1[name] {
			t.Errorf("trace file %s differs between -j1 and -j4", name)
		}
	}

	// Every run directory must carry the five headline streams with data
	// (more rows than just the CSV header).
	dirs := map[string]bool{}
	for _, name := range names {
		dirs[filepath.Dir(name)] = true
	}
	if len(dirs) != 2 { // 1 scheme x 1 load x 2 seeds
		t.Fatalf("expected 2 run directories, got %v", dirs)
	}
	for d := range dirs {
		for _, stream := range []string{"queue", "weights", "cwnd", "flowlet", "fct"} {
			csv, ok := tree1[filepath.Join(d, stream+".csv")]
			if !ok {
				t.Fatalf("%s: missing %s.csv", d, stream)
			}
			if lines := len(splitLines(csv)); lines < 2 {
				t.Errorf("%s: %s.csv has no data rows", d, stream)
			}
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
