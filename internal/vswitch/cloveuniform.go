package vswitch

import (
	"clove/internal/packet"
	"clove/internal/sim"
)

// CloveUniform is a reference policy for differential testing, not a paper
// scheme: plain round-robin over discovered paths in discovery order, with
// no congestion adaptation. It is the closed-form answer to "what must
// Clove-ECN with frozen uniform weights do?" — smooth WRR over equal
// weights visits the table in order, so a frozen Clove-ECN run and a
// CloveUniform run must be byte-for-byte identical. Any divergence means
// the weighted machinery itself (not the weights) perturbed path choice.
type CloveUniform struct {
	ports map[packet.HostID][]uint16
	next  map[packet.HostID]int
}

// NewCloveUniform returns the uniform round-robin reference policy.
func NewCloveUniform() *CloveUniform {
	return &CloveUniform{
		ports: map[packet.HostID][]uint16{},
		next:  map[packet.HostID]int{},
	}
}

// Name implements PathPolicy.
func (*CloveUniform) Name() string { return "clove-uniform" }

// PickPort implements PathPolicy: rotate through discovered paths; before
// discovery completes, degrade to Edge-Flowlet hashing exactly like
// Clove-ECN does.
func (c *CloveUniform) PickPort(dst packet.HostID, flow packet.FiveTuple, flowletID uint32) uint16 {
	ps := c.ports[dst]
	if len(ps) == 0 {
		return portHash(flow, flowletID+1)
	}
	port := ps[c.next[dst]]
	c.next[dst] = (c.next[dst] + 1) % len(ps)
	return port
}

// OnFeedback implements PathPolicy (ignored: congestion-oblivious).
func (*CloveUniform) OnFeedback(packet.HostID, packet.Feedback, sim.Time) {}

// SetPaths implements PathPolicy.
func (c *CloveUniform) SetPaths(dst packet.HostID, ports []uint16) {
	c.ports[dst] = append([]uint16(nil), ports...)
	c.next[dst] = 0
}

// AllCongested implements PathPolicy.
func (*CloveUniform) AllCongested(packet.HostID, sim.Time) bool { return false }
