package vswitch

import (
	"fmt"
	"sort"

	"clove/internal/clove"
	"clove/internal/netem"
	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/telemetry"
)

// Config parameterizes a virtual switch.
type Config struct {
	// EncapDstPort is the fixed outer destination port of the overlay
	// protocol (STT's well-known port by default).
	EncapDstPort uint16
	// FlowletGap is the inter-packet idle time that starts a new flowlet
	// (paper recommendation: one to two RTTs, Fig. 6).
	FlowletGap sim.Time
	// RelayInterval is the minimum spacing between feedback relays for any
	// one path ("half the RTT" per Sec. 3.2).
	RelayInterval sim.Time
	// MaskECN hides underlay CE marks from the tenant VM unless every path
	// to the peer is congested (the Clove behaviour). When false, CE is
	// copied to the inner header on decapsulation per RFC 6040 (standard
	// overlay behaviour, used for ECMP/Edge-Flowlet/Presto/MPTCP runs).
	MaskECN bool
	// RequestINT makes outgoing data packets carry INT instructions so
	// switches stamp max link utilization (Clove-INT).
	RequestINT bool
	// MeasureLatency timestamps outgoing packets at encapsulation and has
	// the receiving hypervisor reflect the measured one-way path delay as
	// the path metric — the Sec. 7 "use of path latency" variant, which
	// needs only NIC timestamping and clock sync instead of INT switches.
	MeasureLatency bool
	// StandaloneFeedback sends a dedicated feedback packet when congestion
	// was observed but no reverse traffic appeared within RelayInterval.
	StandaloneFeedback bool
	// AdaptiveFlowletGap grows the flowlet gap with the measured spread of
	// path delays (Sec. 7 "Flowlet optimization": adapt the gap to the RTT
	// variance across paths so flowlets rarely arrive out of order).
	// Effective only together with MeasureLatency, which produces the
	// delay samples.
	AdaptiveFlowletGap bool
}

// DefaultConfig returns Clove-ECN defaults scaled to the given base RTT.
func DefaultConfig(rtt sim.Time) Config {
	return Config{
		EncapDstPort:       7471,
		FlowletGap:         rtt,
		RelayInterval:      rtt / 2,
		MaskECN:            true,
		StandaloneFeedback: true,
	}
}

// Stats counts vswitch-level events.
type Stats struct {
	Encapped           int64
	Decapped           int64
	CEObserved         int64 // outer CE marks intercepted at the receiver
	FeedbackPiggy      int64 // feedback piggybacked on reverse traffic
	FeedbackStandalone int64
	FeedbackReceived   int64
	ECNMasked          int64 // CE marks hidden from the tenant VM
	ECNRelayedToVM     int64 // ECE set on inner ACKs (all paths congested)
	ProbeEchoes        int64
	NoHandler          int64
}

// pathObs is the receiver-side record of one forward path (identified by
// the encap source port the remote sender used).
type pathObs struct {
	port       uint16
	pendingECN bool
	lastUtil   float64
	hasUtil    bool
	lastRelay  sim.Time
}

// peerObs keeps one remote hypervisor's path observations sorted by port,
// so the relay scan is deterministic without per-packet sorting. Peers use
// a handful of ports, so linear search wins over a map here.
type peerObs struct {
	paths []*pathObs // sorted by port
}

func (po *peerObs) get(port uint16) *pathObs {
	i := sort.Search(len(po.paths), func(i int) bool { return po.paths[i].port >= port })
	if i < len(po.paths) && po.paths[i].port == port {
		return po.paths[i]
	}
	ob := &pathObs{port: port, lastRelay: sim.Time(-1 << 60)}
	po.paths = append(po.paths, nil)
	copy(po.paths[i+1:], po.paths[i:])
	po.paths[i] = ob
	return ob
}

// VSwitch is one hypervisor's virtual switch. It encapsulates tenant
// traffic with an overlay header whose source port is chosen by the
// configured PathPolicy per flowlet, and on the receive side intercepts
// congestion state and reflects it to peers inside encap context bits.
type VSwitch struct {
	sim  *sim.Simulator
	host *netem.Host
	cfg  Config
	self packet.HostID
	pool *packet.Pool

	policy   PathPolicy
	flowlets *clove.FlowletTable

	// trace is nil unless telemetry is enabled; the flowlet bookkeeping in
	// FromVM sits behind a single nil check so the disabled hot path is
	// unchanged.
	trace *telemetry.Tracer

	// deliverFn is v.deliver bound once at construction; taking the method
	// value per delivered packet would allocate.
	deliverFn func(*packet.Packet)

	// endpoints maps an arriving inner 5-tuple to its VM-side handler.
	endpoints map[packet.FiveTuple]func(*packet.Packet)

	// obs is receiver-side path state per remote hypervisor.
	obs map[packet.HostID]*peerObs
	// standalone tracks the standalone-feedback timer state per peer.
	standalone map[packet.HostID]*standaloneState

	// OnProbeEcho, when set, receives discovery echoes (the prober).
	OnProbeEcho func(*packet.Packet)

	// Adaptive-gap state: EWMA of the fastest and slowest reflected path
	// delay per peer (seconds).
	delayLo, delayHi map[packet.HostID]float64
	baseGap          sim.Time

	stats Stats
}

// New creates a virtual switch on host using policy, and installs itself as
// the host's delivery handler.
func New(s *sim.Simulator, host *netem.Host, cfg Config, policy PathPolicy) *VSwitch {
	v := &VSwitch{
		sim:        s,
		host:       host,
		cfg:        cfg,
		self:       host.HostID(),
		pool:       host.Pool(),
		policy:     policy,
		endpoints:  map[packet.FiveTuple]func(*packet.Packet){},
		obs:        map[packet.HostID]*peerObs{},
		standalone: map[packet.HostID]*standaloneState{},
	}
	v.deliverFn = v.deliver
	v.flowlets = clove.NewFlowletTable(cfg.FlowletGap)
	v.baseGap = cfg.FlowletGap
	if cfg.AdaptiveFlowletGap {
		v.delayLo = map[packet.HostID]float64{}
		v.delayHi = map[packet.HostID]float64{}
	}
	host.Deliver = v.FromNetwork
	return v
}

// FlowletGap returns the current (possibly adapted) flowlet gap.
func (v *VSwitch) FlowletGap() sim.Time { return v.flowlets.Gap() }

// SetTrace enables flowlet telemetry: every completed flowlet (closed by the
// idle gap that starts the next one on the same flow) is recorded with its
// packet/byte size and the gap that ended it. Nil leaves tracing off.
func (v *VSwitch) SetTrace(tr *telemetry.Tracer) {
	if tr == nil {
		return
	}
	v.trace = tr
}

// adaptGap updates the per-peer delay envelope from a reflected delay
// sample and widens the flowlet gap to cover the largest observed spread,
// so that switching paths after a gap almost never reorders.
func (v *VSwitch) adaptGap(peer packet.HostID, delaySec float64) {
	const alpha = 0.125 // EWMA smoothing
	lo, okLo := v.delayLo[peer]
	hi, okHi := v.delayHi[peer]
	if !okLo || delaySec < lo {
		lo = delaySec
	} else {
		lo += alpha * (delaySec - lo) * 0.1 // slow upward drift of the floor
	}
	if !okHi || delaySec > hi {
		hi = delaySec
	} else {
		hi -= alpha * (hi - delaySec) * 0.1 // slow decay of the ceiling
	}
	v.delayLo[peer], v.delayHi[peer] = lo, hi

	var maxSpread float64
	for p, h := range v.delayHi {
		if s := h - v.delayLo[p]; s > maxSpread {
			maxSpread = s
		}
	}
	gap := v.baseGap + sim.FromSeconds(maxSpread)
	v.flowlets.SetGap(gap)
}

// Host returns the underlying NIC attachment.
func (v *VSwitch) Host() *netem.Host { return v.host }

// Policy returns the installed path policy.
func (v *VSwitch) Policy() PathPolicy { return v.policy }

// SetPaths installs a discovered path set into the policy, reporting the
// installation to the observer first (the oracle's conn-consistency
// invariant needs to know which ports are legal before the first pick can
// use them). All control-plane installs — the prober and the oracle-walk
// setup — go through here; tests poking a bare policy may call
// Policy().SetPaths directly.
func (v *VSwitch) SetPaths(dst packet.HostID, ports []uint16) {
	if o := v.pool.Obs(); o != nil {
		o.PolicyPaths(v.self, dst, ports)
	}
	v.policy.SetPaths(dst, ports)
}

// Stats returns a snapshot of the counters.
func (v *VSwitch) Stats() Stats { return v.stats }

// Flowlets reports how many flowlets the source side has created.
func (v *VSwitch) Flowlets() int64 { return v.flowlets.Flowlets() }

// Register installs the VM-side handler for packets whose inner 5-tuple
// equals match (use flow for a receiver, flow.Reverse() for a sender's ACK
// stream).
func (v *VSwitch) Register(match packet.FiveTuple, handler func(*packet.Packet)) {
	v.endpoints[match] = handler
}

// Unregister removes an endpoint handler.
func (v *VSwitch) Unregister(match packet.FiveTuple) { delete(v.endpoints, match) }

// FromVM accepts a packet from the tenant VM, encapsulates it, picks the
// path, piggybacks any pending feedback for the destination hypervisor, and
// transmits it.
func (v *VSwitch) FromVM(pkt *packet.Packet) {
	dstHyp := packet.HostID(pkt.Inner.Dst) // one VM per host: identity mapping
	now := v.sim.Now()

	var port uint16
	if pp, ok := v.policy.(perPacketPolicy); ok {
		port = pp.PickPortPacket(dstHyp, pkt.Inner, pkt.PayloadLen)
	} else {
		e, isNew := v.flowlets.Touch(pkt.Inner, now)
		if tr := v.trace; tr != nil {
			if isNew && e.Packets > 0 {
				// The previous flowlet of this flow just closed: record it
				// before PickPort overwrites the pinned port. The flow's last
				// flowlet never closes, so it gets no record.
				tr.Flowlet(now, pkt.Inner, e.ID-1, e.Port, e.Packets, e.Bytes, e.LastGap)
				e.Packets, e.Bytes = 0, 0
			}
			e.Packets++
			e.Bytes += int64(pkt.PayloadLen)
		}
		if isNew {
			e.Port = v.policy.PickPort(dstHyp, pkt.Inner, e.ID)
		}
		port = e.Port
		if o := v.pool.Obs(); o != nil {
			o.FlowletPick(pkt.Inner, e.ID, port)
		}
	}

	e := v.pool.GetEncap()
	e.SrcHyp = v.self
	e.DstHyp = dstHyp
	e.SrcPort = port
	e.DstPort = v.cfg.EncapDstPort
	e.ECT = true
	pkt.Encap = e
	if v.cfg.RequestINT {
		pkt.INT.Enabled = true
	}
	if v.cfg.MeasureLatency {
		pkt.SentAtNs = int64(now)
	}
	if fb, ok := v.takeFeedback(dstHyp, now); ok {
		pkt.Encap.Feedback = fb
		v.stats.FeedbackPiggy++
	}
	v.stats.Encapped++
	v.host.Send(pkt)
}

// SendProbe emits a discovery probe toward dst with the given candidate
// source port and TTL. Echoes come back through OnProbeEcho.
func (v *VSwitch) SendProbe(dst packet.HostID, srcPort uint16, ttl int, probeID uint32) {
	p := v.pool.Get()
	p.Kind = packet.KindProbe
	p.ProbeID = probeID
	p.ProbePort = srcPort
	p.TTL = ttl
	p.HopIndex = ttl
	e := v.pool.GetEncap()
	e.SrcHyp = v.self
	e.DstHyp = dst
	e.SrcPort = srcPort
	e.DstPort = v.cfg.EncapDstPort
	p.Encap = e
	v.host.Send(p)
}

// FromNetwork handles every packet arriving at the NIC.
func (v *VSwitch) FromNetwork(pkt *packet.Packet) {
	now := v.sim.Now()
	switch pkt.Kind {
	case packet.KindProbeEcho:
		v.stats.ProbeEchoes++
		if v.OnProbeEcho != nil {
			// The hook may inspect but not retain the echo: it is released
			// as soon as the hook returns.
			v.OnProbeEcho(pkt)
		}
		v.pool.Put(pkt)
		return
	case packet.KindProbe:
		// Probe outlived the path: we are the destination. Answer like a
		// traceroute endpoint so the prober learns the path length.
		v.answerProbe(pkt)
		return
	case packet.KindFeedback:
		if pkt.Encap != nil && pkt.Encap.Feedback.Valid {
			v.stats.FeedbackReceived++
			v.policy.OnFeedback(pkt.Encap.SrcHyp, pkt.Encap.Feedback, now)
		}
		v.pool.Put(pkt)
		return
	}

	if pkt.Encap == nil {
		v.deliver(pkt) // non-overlay packet: deliver directly
		return
	}
	remote := pkt.Encap.SrcHyp

	// 1. Intercept congestion state about the forward path remote->self.
	ob := v.observe(remote, pkt.Encap.SrcPort)
	if pkt.Encap.CE {
		v.stats.CEObserved++
		ob.pendingECN = true
		if v.cfg.StandaloneFeedback {
			v.armStandalone(remote)
		}
	}
	if pkt.INT.Enabled {
		ob.lastUtil = pkt.INT.MaxUtil
		ob.hasUtil = true
	}
	if v.cfg.MeasureLatency && pkt.SentAtNs > 0 {
		// One-way path delay as the reflected metric; the table's
		// least-metric selection then prefers the currently-fastest path.
		ob.lastUtil = (now - sim.Time(pkt.SentAtNs)).Seconds()
		ob.hasUtil = true
	}

	// 2. Consume feedback the remote reflected about our paths to it.
	if pkt.Encap.Feedback.Valid {
		v.stats.FeedbackReceived++
		v.policy.OnFeedback(remote, pkt.Encap.Feedback, now)
		if v.cfg.AdaptiveFlowletGap && v.cfg.MeasureLatency && pkt.Encap.Feedback.HasUtil {
			v.adaptGap(remote, pkt.Encap.Feedback.Util)
		}
	}

	// 3. Decapsulate. The detached overlay header goes straight back to the
	// pool; the inner packet lives on toward the VM.
	outerCE := pkt.Encap.CE
	v.pool.PutEncap(pkt.Encap)
	pkt.Encap = nil
	v.stats.Decapped++

	if v.cfg.MaskECN {
		// Clove hides underlay CE from the VM...
		if outerCE {
			v.stats.ECNMasked++
		}
		// ...unless every path we use toward the remote VM is congested:
		// then relay ECN into the inner ACK stream so the sending VM backs
		// off (Sec. 3.2).
		if pkt.Flags.Has(packet.FlagACK) && pkt.PayloadLen == 0 &&
			v.policy.AllCongested(remote, now) {
			pkt.Flags |= packet.FlagECE
			v.stats.ECNRelayedToVM++
		}
	} else if outerCE {
		// RFC 6040: propagate CE to the inner header.
		pkt.InnerCE = true
	}

	// 4. Deliver to the VM, via the policy's receiver hook if any.
	if hook, ok := v.policy.(receiverHook); ok {
		hook.OnDeliver(pkt, v.deliverFn)
		return
	}
	v.deliver(pkt)
}

// deliver hands the packet to the registered VM-side endpoint, which takes
// ownership (the TCP endpoints release consumed packets themselves).
func (v *VSwitch) deliver(pkt *packet.Packet) {
	h := v.endpoints[pkt.Inner]
	if h == nil {
		v.stats.NoHandler++
		v.pool.Put(pkt)
		return
	}
	h(pkt)
}

func (v *VSwitch) answerProbe(probe *packet.Packet) {
	echo := v.pool.Get()
	echo.Kind = packet.KindProbeEcho
	echo.ProbeID = probe.ProbeID
	echo.ProbePort = probe.ProbePort
	echo.HopIndex = probe.HopIndex
	echo.EchoNode = v.host.ID()
	echo.EchoLink = -1
	echo.TTL = 64
	e := v.pool.GetEncap()
	e.SrcHyp = v.self
	e.DstHyp = probe.Encap.SrcHyp
	e.SrcPort = probe.ProbePort
	e.DstPort = v.cfg.EncapDstPort
	echo.Encap = e
	// The probe terminates here; the echo replaces it on the wire.
	v.pool.Put(probe)
	v.host.Send(echo)
}

func (v *VSwitch) observe(remote packet.HostID, port uint16) *pathObs {
	po := v.obs[remote]
	if po == nil {
		po = &peerObs{}
		v.obs[remote] = po
	}
	return po.get(port)
}

// takeFeedback selects at most one pending observation about paths from
// peer to us that is due for relay (rate-limited per path), clears its
// pending state, and returns it for piggybacking.
func (v *VSwitch) takeFeedback(peer packet.HostID, now sim.Time) (packet.Feedback, bool) {
	po := v.obs[peer]
	if po == nil {
		return packet.Feedback{}, false
	}
	// Prefer ECN-pending paths; fall back to the stalest utilization
	// report. The slice is port-sorted, keeping the scan deterministic so
	// runs are reproducible.
	var best *pathObs
	for _, ob := range po.paths {
		if now-ob.lastRelay < v.cfg.RelayInterval {
			continue
		}
		if ob.pendingECN {
			best = ob
			break
		}
		if ob.hasUtil && (best == nil || ob.lastRelay < best.lastRelay) {
			best = ob
		}
	}
	if best == nil {
		return packet.Feedback{}, false
	}
	fb := packet.Feedback{
		Valid:   true,
		Port:    best.port,
		ECN:     best.pendingECN,
		HasUtil: best.hasUtil,
		Util:    best.lastUtil,
	}
	best.pendingECN = false
	best.lastRelay = now
	return fb, true
}

// standaloneState is the per-peer timer record for standalone feedback. One
// struct per peer lives for the whole run, so arming a timer allocates
// nothing: the state pointer rides in the event's operand slot.
type standaloneState struct {
	v     *VSwitch
	peer  packet.HostID
	armed bool
}

func standaloneFire(a, _ any) { a.(*standaloneState).fire() }

func (st *standaloneState) fire() {
	st.armed = false
	v := st.v
	fb, ok := v.takeFeedback(st.peer, v.sim.Now())
	if !ok || !fb.ECN {
		return
	}
	v.stats.FeedbackStandalone++
	p := v.pool.Get()
	p.Kind = packet.KindFeedback
	e := v.pool.GetEncap()
	e.SrcHyp = v.self
	e.DstHyp = st.peer
	e.SrcPort = portHash(packet.FiveTuple{Src: v.self, Dst: st.peer}, uint32(v.sim.Now()))
	e.DstPort = v.cfg.EncapDstPort
	e.Feedback = fb
	p.Encap = e
	v.host.Send(p)
}

// armStandalone schedules a standalone feedback packet to peer if pending
// congestion state is not piggybacked within RelayInterval.
func (v *VSwitch) armStandalone(peer packet.HostID) {
	st := v.standalone[peer]
	if st == nil {
		st = &standaloneState{v: v, peer: peer}
		v.standalone[peer] = st
	}
	if st.armed {
		return
	}
	st.armed = true
	v.sim.AfterCall(v.cfg.RelayInterval, standaloneFire, st, nil)
}

// String implements fmt.Stringer.
func (v *VSwitch) String() string {
	return fmt.Sprintf("vswitch[%s %s]", v.host.Name(), v.policy.Name())
}
