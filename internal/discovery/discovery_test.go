package discovery

import (
	"testing"

	"clove/internal/clove"
	"clove/internal/netem"
	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/vswitch"
)

// testFabric builds a scaled paper testbed with Clove-ECN vswitches.
func testFabric(seed int64) (*sim.Simulator, *netem.LeafSpine, []*vswitch.VSwitch) {
	s := sim.New(seed)
	ls := netem.BuildLeafSpine(s, netem.PaperTestbed(0.01))
	rtt := ls.BaseRTT()
	var vsws []*vswitch.VSwitch
	for _, h := range ls.Hosts() {
		pol := vswitch.NewCloveECN(clove.DefaultWeightTableConfig(rtt))
		vsws = append(vsws, vswitch.New(s, h, vswitch.DefaultConfig(rtt), pol))
	}
	return s, ls, vsws
}

func TestDiscoverFindsFourDisjointPaths(t *testing.T) {
	s, ls, vsws := testFabric(1)
	cfg := DefaultConfig(ls.BaseRTT())
	p := NewProber(s, vsws[0], cfg)
	var gotPorts []uint16
	var gotPaths []Path
	p.OnPaths = func(dst packet.HostID, ports []uint16, paths []Path) {
		gotPorts, gotPaths = ports, paths
	}
	p.Discover(16)
	s.RunUntil(sim.Second)

	if len(gotPorts) != 4 {
		t.Fatalf("selected %d ports, want 4 (stats %+v)", len(gotPorts), p.Stats())
	}
	// Paths must be link-disjoint on the fabric hops; every path to the
	// same host necessarily shares the final leaf->host downlink.
	used := map[packet.LinkID]bool{}
	for _, path := range gotPaths {
		if path.Hops != 3 {
			t.Errorf("path hops = %d, want 3", path.Hops)
		}
		if len(path.Links) != 3 {
			t.Errorf("path links = %d, want 3 (leaf, spine, dst-leaf egress)", len(path.Links))
		}
		for _, l := range path.Links[:len(path.Links)-1] {
			if used[l] {
				t.Errorf("fabric link %d shared between selected paths", l)
			}
			used[l] = true
		}
	}
	// The four first-hop links must be the four L1 uplinks.
	firstHops := map[packet.LinkID]bool{}
	for _, path := range gotPaths {
		firstHops[path.Links[0]] = true
	}
	if len(firstHops) != 4 {
		t.Errorf("first hops = %d distinct, want 4", len(firstHops))
	}
	// The policy received the ports.
	pol := vsws[0].Policy().(*vswitch.CloveECN)
	if pol.Table(16) == nil || pol.Table(16).Len() != 4 {
		t.Error("policy table not installed")
	}
}

func TestDiscoverAfterFailureFindsMergedPaths(t *testing.T) {
	s, ls, vsws := testFabric(2)
	cfg := DefaultConfig(ls.BaseRTT())
	p := NewProber(s, vsws[0], cfg)
	var lastPaths []Path
	p.OnPaths = func(_ packet.HostID, _ []uint16, paths []Path) { lastPaths = paths }

	ls.FailPaperLink() // S2->L2 trunk 0 down
	p.Discover(16)
	s.RunUntil(sim.Second)

	if len(lastPaths) == 0 {
		t.Fatal("no paths after failure")
	}
	// With the failure, S2 has one remaining trunk to L2: the two L1->S2
	// uplinks now converge on it. Distinct full paths: 2 via S1 + 2 via S2
	// sharing the last link = 4 selected ports but only 3 disjoint link
	// sets at the spine->leaf stage. Verify selection still spans all 4
	// L1 uplinks (maximal spreading at the first hop).
	firstHops := map[packet.LinkID]bool{}
	for _, path := range lastPaths {
		firstHops[path.Links[0]] = true
	}
	if len(firstHops) < 3 {
		t.Errorf("selection collapsed to %d first hops after failure", len(firstHops))
	}
}

func TestPeriodicRediscoveryAdaptsToTopologyChange(t *testing.T) {
	s, ls, vsws := testFabric(3)
	cfg := DefaultConfig(ls.BaseRTT())
	cfg.Interval = 50 * sim.Millisecond
	p := NewProber(s, vsws[0], cfg)
	updates := 0
	p.OnPaths = func(packet.HostID, []uint16, []Path) { updates++ }
	p.Start([]packet.HostID{16})
	s.At(120*sim.Millisecond, ls.FailPaperLink)
	s.RunUntil(400 * sim.Millisecond)
	p.Stop()
	if updates < 4 {
		t.Errorf("updates = %d, want multiple periodic rounds", updates)
	}
	if p.Stats().Rounds < 4 {
		t.Errorf("rounds = %d", p.Stats().Rounds)
	}
	// After Stop, no more rounds fire.
	before := p.Stats().Rounds
	s.RunUntil(s.Now() + 500*sim.Millisecond)
	if p.Stats().Rounds != before {
		t.Error("prober kept probing after Stop")
	}
}

func TestAssemblePathIncomplete(t *testing.T) {
	// Missing hop 2: incomplete.
	hops := map[int]packet.LinkID{
		1: 5,
		3: -1,
	}
	if _, ok := assemblePath(100, hops); ok {
		t.Error("path with missing hop assembled")
	}
	if _, ok := assemblePath(100, nil); ok {
		t.Error("empty echo set assembled")
	}
}

func TestSelectDisjointPrefersNonOverlapping(t *testing.T) {
	paths := []Path{
		{Port: 1, Links: []packet.LinkID{10, 20}},
		{Port: 2, Links: []packet.LinkID{10, 21}}, // shares 10 with port 1
		{Port: 3, Links: []packet.LinkID{11, 22}}, // disjoint
		{Port: 4, Links: []packet.LinkID{12, 23}}, // disjoint
	}
	sel := SelectDisjoint(paths, 3)
	if len(sel) != 3 {
		t.Fatalf("selected %d", len(sel))
	}
	ports := map[uint16]bool{}
	for _, s := range sel {
		ports[s.Port] = true
	}
	if !ports[1] || !ports[3] || !ports[4] {
		t.Errorf("greedy picked %v, want {1,3,4}", ports)
	}
}

func TestSelectDisjointSkipsDuplicates(t *testing.T) {
	paths := []Path{
		{Port: 1, Links: []packet.LinkID{10, 20}},
		{Port: 2, Links: []packet.LinkID{10, 20}}, // duplicate of 1
		{Port: 3, Links: []packet.LinkID{11, 21}},
	}
	sel := SelectDisjoint(paths, 2)
	if len(sel) != 2 {
		t.Fatalf("selected %d", len(sel))
	}
	if sel[0].Port == 2 || sel[1].Port == 2 {
		t.Error("duplicate path selected over distinct one")
	}
}

func TestSelectDisjointFallsBackToDuplicates(t *testing.T) {
	// Only one distinct path exists; k=3 should still return the
	// duplicates rather than fewer paths than available.
	paths := []Path{
		{Port: 1, Links: []packet.LinkID{10}},
		{Port: 2, Links: []packet.LinkID{10}},
		{Port: 3, Links: []packet.LinkID{10}},
	}
	sel := SelectDisjoint(paths, 3)
	if len(sel) != 3 {
		t.Errorf("selected %d, want all 3 duplicates when nothing else exists", len(sel))
	}
	if got := SelectDisjoint(nil, 4); got != nil {
		t.Error("empty input")
	}
}
