package main

// legacyEndpoint is a self-contained replica of the pre-PR-9 datapath send
// and receive paths, kept here so dpbench can measure the speedup of the
// batched zero-alloc datapath against the code it replaced: one global
// mutex around all endpoint state, a fresh []byte and an append-based shim
// marshal per transmitted datagram, a linear port->socket scan, one
// WriteToUDP/ReadFromUDP syscall per datagram (both allocate: the write
// converts the *net.UDPAddr, the read materializes one), and a payload
// copy before every receive callback.
//
// Socket buffer sizes are matched to the new datapath (4 MB) so the
// comparison isolates the per-packet code path, not socket tuning.

import (
	"fmt"
	"net"
	"sync"
	"time"

	"clove/internal/clove"
	"clove/internal/sim"
	"clove/internal/wire"
)

const (
	legacyFabricECT = 1 << 0
	legacyHeaderLen = 1 + wire.SttShimLen
	legacyShimVer   = 1
)

type legacyEndpoint struct {
	conns  []*net.UDPConn
	ports  []uint16
	remote *net.UDPAddr

	mu         sync.Mutex
	onRecv     func([]byte)
	weights    *clove.WeightTable
	start      time.Time
	lastSend   time.Time
	curPort    uint16
	flowlet    uint32
	flowletGap time.Duration

	wg     sync.WaitGroup
	closed chan struct{}
}

func newLegacyEndpoint(localIP string, paths int, flowletGap time.Duration) (*legacyEndpoint, error) {
	e := &legacyEndpoint{
		start:      time.Now(),
		flowletGap: flowletGap,
		closed:     make(chan struct{}),
	}
	for i := 0; i < paths; i++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.ParseIP(localIP)})
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("legacy: bind path %d: %w", i, err)
		}
		conn.SetReadBuffer(4 << 20)
		conn.SetWriteBuffer(4 << 20)
		e.conns = append(e.conns, conn)
		e.ports = append(e.ports, uint16(conn.LocalAddr().(*net.UDPAddr).Port))
	}
	e.weights = clove.NewWeightTable(clove.WeightTableConfig{
		Beta:         1.0 / 3.0,
		Floor:        0.02,
		CongestedAge: sim.FromDuration(time.Millisecond),
		UtilAge:      sim.FromDuration(2 * time.Millisecond),
	}, e.ports)
	return e, nil
}

func (e *legacyEndpoint) Ports() []uint16 { return append([]uint16(nil), e.ports...) }

func (e *legacyEndpoint) SetOnRecv(fn func([]byte)) {
	e.mu.Lock()
	e.onRecv = fn
	e.mu.Unlock()
}

func (e *legacyEndpoint) Start(remote string) error {
	addr, err := net.ResolveUDPAddr("udp", remote)
	if err != nil {
		return err
	}
	e.remote = addr
	for _, conn := range e.conns {
		conn := conn
		e.wg.Add(1)
		go e.readLoop(conn)
	}
	return nil
}

// Enqueue sends one datagram immediately — the legacy path had no
// batching, so Enqueue==Send and Flush is a no-op.
func (e *legacyEndpoint) Enqueue(payload []byte) error {
	e.mu.Lock()
	nowT := time.Now()
	if e.lastSend.IsZero() || nowT.Sub(e.lastSend) > e.flowletGap {
		e.curPort = e.weights.NextPort()
		e.flowlet++
	}
	e.lastSend = nowT
	port := e.curPort
	flowlet := e.flowlet
	e.mu.Unlock()

	shim := wire.SttShim{
		Version:    legacyShimVer,
		FlowletID:  flowlet,
		PathPort:   port,
		PayloadLen: uint16(len(payload)),
	}
	buf := make([]byte, 1, legacyHeaderLen+len(payload))
	buf[0] = legacyFabricECT
	buf = shim.Marshal(buf)
	buf = append(buf, payload...)

	conn := e.connFor(port)
	if conn == nil {
		return fmt.Errorf("legacy: unknown path port %d", port)
	}
	_, err := conn.WriteToUDP(buf, e.remote)
	return err
}

func (e *legacyEndpoint) Flush() error { return nil }

func (e *legacyEndpoint) connFor(port uint16) *net.UDPConn {
	for i, p := range e.ports {
		if p == port {
			return e.conns[i]
		}
	}
	return nil
}

func (e *legacyEndpoint) readLoop(conn *net.UDPConn) {
	defer e.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-e.closed:
				return
			default:
				continue
			}
		}
		e.handle(buf[:n])
	}
}

func (e *legacyEndpoint) handle(b []byte) {
	if len(b) < legacyHeaderLen {
		return
	}
	var shim wire.SttShim
	if _, err := shim.Unmarshal(b[1:]); err != nil || shim.Version != legacyShimVer {
		return
	}
	payload := b[legacyHeaderLen:]
	if int(shim.PayloadLen) != len(payload) {
		return
	}
	e.mu.Lock()
	recv := e.onRecv
	e.mu.Unlock()
	if recv != nil {
		out := make([]byte, len(payload))
		copy(out, payload)
		recv(out)
	}
}

func (e *legacyEndpoint) Close() error {
	select {
	case <-e.closed:
	default:
		close(e.closed)
	}
	for _, c := range e.conns {
		c.Close()
	}
	e.wg.Wait()
	return nil
}
