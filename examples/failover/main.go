// Failover demonstrates Clove's two adaptation loops live: the fast loop
// (ECN-driven path weights, RTT timescale) and the slow loop (periodic
// traceroute rediscovery, probe-interval timescale). A Clove-ECN cluster
// runs steady traffic while a spine trunk fails mid-run; the example prints
// the source hypervisor's path-weight table as it shifts, then the
// rediscovered port set.
package main

import (
	"fmt"
	"sort"

	"clove/internal/cluster"
	"clove/internal/netem"
	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/vswitch"
)

func main() {
	c := cluster.New(cluster.Config{
		Seed:          1,
		Topo:          netem.ScaledTestbed(1.0, 4),
		Scheme:        cluster.SchemeCloveECN,
		UseProber:     true, // real traceroute discovery with periodic refresh
		ProbeInterval: 20 * sim.Millisecond,
	})

	// Paths first (the prober needs its start-of-run round), then steady
	// bidirectional elephants keep the fabric busy.
	var pairs [][2]packet.HostID
	for i := 0; i < 4; i++ {
		client, server := packet.HostID(i), packet.HostID(4+i)
		pairs = append(pairs, [2]packet.HostID{client, server}, [2]packet.HostID{server, client})
	}
	c.SetupPaths(pairs)
	// Chains of 2MB transfers with short idle gaps between them: each job
	// starts a fresh flowlet, so the WRR table actually steers traffic.
	// The chains start at t=2ms, after the first discovery round lands.
	for i := 0; i < 4; i++ {
		conn := c.OpenConn(packet.HostID(i), packet.HostID(4+i), 0)
		var chain func()
		chain = func() {
			conn.StartJob(2_000_000, func(sim.Time) {
				c.Sim.After(200*sim.Microsecond, chain)
			})
		}
		c.Sim.At(2*sim.Millisecond, chain)
	}

	pol := c.VSwitches[0].Policy().(*vswitch.CloveECN)
	printWeights := func(label string) {
		t := pol.Table(4)
		if t == nil {
			fmt.Printf("%-28s (no paths discovered yet)\n", label)
			return
		}
		w := t.Weights()
		ports := make([]int, 0, len(w))
		for p := range w {
			ports = append(ports, int(p))
		}
		sort.Ints(ports)
		fmt.Printf("%-28s", label)
		for _, p := range ports {
			fmt.Printf("  %d:%.2f", p, w[uint16(p)])
		}
		fmt.Println()
	}

	c.Sim.At(5*sim.Millisecond, func() { printWeights("t=5ms (warm)") })
	c.Sim.At(30*sim.Millisecond, func() {
		printWeights("t=30ms (before failure)")
		fmt.Println("** failing trunk L2-S2#0 **")
		c.LS.FailPaperLink()
	})
	c.Sim.At(35*sim.Millisecond, func() { printWeights("t=35ms (+5ms after failure)") })
	c.Sim.At(60*sim.Millisecond, func() { printWeights("t=60ms (post-rediscovery)") })

	c.Sim.RunUntil(100 * sim.Millisecond)
	printWeights("t=100ms (final)")

	st := c.VSwitches[0].Stats()
	fmt.Printf("\nvswitch[h0]: %d flowlets, %d feedback msgs received, %d probe echoes\n",
		c.VSwitches[0].Flowlets(), st.FeedbackReceived, st.ProbeEchoes)
	fmt.Println("watch the S2-bound ports lose weight after the failure, and the")
	fmt.Println("rediscovered port set re-balance once probing maps the new topology")
}
