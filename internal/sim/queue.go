package sim

// EventFunc is the closure-free callback form used on the simulator's hot
// path. The two operands are supplied at scheduling time (AtCall/AfterCall)
// and handed back verbatim when the event fires, so callers can bind a
// receiver and a payload without allocating a closure per event. Pass
// pointers (or nil): boxing a pointer into an interface does not allocate,
// while boxing most scalar values does.
type EventFunc func(a, b any)

// event is one scheduled callback. Events live in the Simulator's contiguous
// slab ([]event); fired and cancelled slots are recycled through a free list
// of slot indices. An event is identified across recycling by its seq — the
// globally unique schedule number — so a stale EventID can never cancel (or
// be confused with) the slot's next tenant.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among equal timestamps; doubles as the
	// incarnation stamp (globally unique per schedule, never reused)
	fn func() // cold path: closure form (At/After)

	// Hot path: closure-free form (AtCall/AfterCall). When call is non-nil
	// it takes precedence over fn.
	call EventFunc
	a, b any

	// heapIdx is the slot's position in the Simulator's heap order array,
	// maintained by the sift routines so that cancellation can be O(log n).
	// Negative once fired or cancelled.
	heapIdx int32
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// EventID is never issued (slots are stamped +1). IDs carry the event's
// schedule sequence number as an incarnation stamp: once the event has fired
// or been cancelled, the ID goes stale and Cancel on it is a no-op, even if
// the underlying slab slot has been recycled for a new event — seq values
// are never reused, so a stale ID cannot collide with a later tenant even
// across slab shrinks.
type EventID struct {
	slot int32  // slab index + 1; 0 marks the zero (never-issued) ID
	seq  uint64 // incarnation stamp of the identified event
}

// The event queue is a 4-ary implicit min-heap of heapEnt entries, ordered
// by (at, seq). Compared to container/heap over []*event this removes the
// heap.Interface virtual calls and — via the 4-ary fanout — half the tree
// depth. Each entry carries a copy of its event's sort key alongside the
// slab slot index: sift comparisons then read only the contiguous heap
// array (a parent's four children share one or two cache lines) instead of
// chasing four random 64-byte slab entries per level, which at
// fabric-scale queue depths (hundreds of pending events per spine domain)
// is the difference between arithmetic and memory stalls. The key copy
// cannot go stale: a pending event's (at, seq) never changes — reschedule
// is cancel + schedule, and recycled slots get a fresh, never-reused seq.
// Ordering is the strict total order (at, seq), identical to the binary
// container/heap this replaced, so pop order — and therefore every golden
// figure — is byte-identical by construction.

// heapEnt is one pending-queue entry: the event's sort key plus its slab
// slot. 24 bytes, so a 4-child comparison spans at most two cache lines.
type heapEnt struct {
	at   Time
	seq  uint64
	slot int32
}

// entLess orders entries by (at, seq). seq uniqueness makes the order strict.
func entLess(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush appends slot and restores the heap property. Pushing onto an
// empty heap — the steady state of serialized event chains, where exactly
// one event is pending at a time — skips the sift-up call entirely.
func (s *Simulator) heapPush(slot int32) {
	ev := &s.slab[slot]
	i := len(s.heap)
	s.heap = append(s.heap, heapEnt{at: ev.at, seq: ev.seq, slot: slot})
	if i == 0 {
		ev.heapIdx = 0
		return
	}
	s.siftUp(i)
}

// heapPopRoot removes and returns the minimum entry's slot. The caller must
// know the heap is non-empty. The single-entry case returns without touching
// the entry bytes beyond the slot — the steady state of serialized event
// chains pops and pushes through this path once per event.
func (s *Simulator) heapPopRoot() int32 {
	h := s.heap
	root := h[0].slot
	n := len(h) - 1
	s.heap = h[:n]
	if n > 0 {
		h[0] = h[n]
		s.siftDown(0)
	}
	return root
}

// heapRemove deletes the entry at heap position i (cancellation).
func (s *Simulator) heapRemove(i int) {
	h := s.heap
	n := len(h) - 1
	last := h[n]
	s.heap = h[:n]
	if i < n {
		s.heap[i] = last
		if !s.siftDown(i) {
			s.siftUp(i)
		}
	}
}

// siftUp moves the entry at position i toward the root until its parent is
// smaller. The hole-based formulation (hold the entry, slide parents down,
// write once) does one store per level instead of a three-way swap.
func (s *Simulator) siftUp(i int) {
	h := s.heap
	ent := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		pe := h[p]
		if entLess(pe, ent) {
			break
		}
		h[i] = pe
		s.slab[pe.slot].heapIdx = int32(i)
		i = p
	}
	h[i] = ent
	s.slab[ent.slot].heapIdx = int32(i)
}

// siftDown moves the entry at position i toward the leaves until it is no
// larger than its smallest child. It reports whether the entry moved, which
// heapRemove uses to decide if a sift-up is needed instead.
func (s *Simulator) siftDown(i int) bool {
	h := s.heap
	n := len(h)
	ent := h[i]
	i0 := i
	for {
		c := i<<2 + 1 // first of up to four children
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if entLess(h[j], h[m]) {
				m = j
			}
		}
		if entLess(ent, h[m]) {
			break
		}
		h[i] = h[m]
		s.slab[h[m].slot].heapIdx = int32(i)
		i = m
	}
	h[i] = ent
	s.slab[ent.slot].heapIdx = int32(i)
	return i > i0
}
