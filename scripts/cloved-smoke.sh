#!/usr/bin/env bash
# End-to-end smoke for the operated cloved service (needs curl + jq).
#
# Brings up two cloved processes over loopback: A receive-only with an
# admin plane, B pointed at A's first path port. Drives a counted line
# transfer through the tunnel, probes /healthz /readyz /stats, hot-reloads
# the flowlet gap and A's remote through /config, then SIGTERMs both and
# asserts clean exits, the drain banner, a final stats line per process,
# and that every payload B's drain counted as sent was delivered to A.
#
# Usage: scripts/cloved-smoke.sh            (builds cloved itself)
#        CLOVED=/path/to/cloved scripts/cloved-smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
cleanup() {
    kill "$(jobs -p)" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

if [[ -z "${CLOVED:-}" ]]; then
    CLOVED="$WORK/cloved"
    go build -o "$CLOVED" ./cmd/cloved
fi

fail() { echo "cloved-smoke: FAIL: $*" >&2; exit 1; }
note() { echo "cloved-smoke: $*"; }

wait_line() { # file pattern
    for _ in $(seq 1 100); do
        grep -q "$2" "$1" 2>/dev/null && return 0
        sleep 0.1
    done
    fail "timeout waiting for '$2' in $1 ($(cat "$1" 2>/dev/null))"
}

http_code() { curl -s -o /dev/null -w '%{http_code}' "$@"; }

# --- A: receive-only, operated (admin plane keeps it serving after EOF).
"$CLOVED" -paths 2 -admin 127.0.0.1:0 -stats 0 \
    </dev/null >"$WORK/a.out" 2>"$WORK/a.err" &
A_PID=$!
wait_line "$WORK/a.out" '^admin: '
A_ADMIN=$(sed -n 's|^admin: http://||p' "$WORK/a.out" | head -1)
wait_line "$WORK/a.out" 'receive-only'

[[ $(http_code "http://$A_ADMIN/healthz") == 200 ]] || fail "A /healthz not 200"
# No remote yet: alive but not ready.
[[ $(http_code "http://$A_ADMIN/readyz") == 503 ]] || fail "A /readyz should be 503 before a remote is installed"
A_PORT=$(curl -fsS "http://$A_ADMIN/stats" | jq -r '.tenants[0].ports[0]')
[[ "$A_PORT" =~ ^[0-9]+$ ]] || fail "no path port in A /stats"
note "A up (pid $A_PID, admin $A_ADMIN, path port $A_PORT)"

# --- B: sender pointed at A, fed N lines then EOF (admin keeps it serving).
N=500
( for i in $(seq 1 "$N"); do echo "smoke-$i"; done ) | \
    "$CLOVED" -paths 2 -remote "127.0.0.1:$A_PORT" -admin 127.0.0.1:0 -stats 0 \
    >"$WORK/b.out" 2>"$WORK/b.err" &
B_PID=$!
wait_line "$WORK/b.out" '^admin: '
B_ADMIN=$(sed -n 's|^admin: http://||p' "$WORK/b.out" | head -1)
[[ $(http_code "http://$B_ADMIN/readyz") == 200 ]] || fail "B /readyz not 200 (it has a remote)"
wait_line "$WORK/b.out" 'stdin closed; serving until signalled'
note "B up (pid $B_PID, admin $B_ADMIN), $N lines fed"

# --- Transfer lands on A.
for _ in $(seq 1 100); do
    [[ "$(grep -c '^<- smoke-' "$WORK/a.out")" -ge "$N" ]] && break
    sleep 0.1
done
GOT=$(grep -c '^<- smoke-' "$WORK/a.out")
note "A delivered $GOT/$N payloads"

# --- Hot-reload: retarget A at B (tunnel becomes bidirectional) and move
#     B's flowlet gap; both answer with the applied config.
B_PORT=$(curl -fsS "http://$B_ADMIN/stats" | jq -r '.tenants[0].ports[0]')
curl -fsS -X POST -d "{\"remote\":\"127.0.0.1:$B_PORT\"}" "http://$A_ADMIN/config" >/dev/null \
    || fail "A /config retarget rejected"
[[ $(http_code "http://$A_ADMIN/readyz") == 200 ]] || fail "A /readyz not 200 after retarget"
APPLIED=$(curl -fsS -X POST -d '{"flowlet_gap":"2ms"}' "http://$B_ADMIN/config" | jq -r .flowlet_gap)
[[ "$APPLIED" == "2ms" ]] || fail "B flowlet_gap reload answered '$APPLIED', want 2ms"
note "hot-reload ok (A retargeted, B flowlet_gap=2ms)"

# --- SIGTERM both: clean exit, drain banner, final stats, zero loss.
kill -TERM "$B_PID"; B_CODE=0; wait "$B_PID" || B_CODE=$?
kill -TERM "$A_PID"; A_CODE=0; wait "$A_PID" || A_CODE=$?
[[ "$A_CODE" == 0 ]] || fail "A exit code $A_CODE (stderr: $(cat "$WORK/a.err"))"
[[ "$B_CODE" == 0 ]] || fail "B exit code $B_CODE (stderr: $(cat "$WORK/b.err"))"
grep -q 'received terminated, draining' "$WORK/b.out" || fail "B missing drain banner"
grep -q '^-- final sent=' "$WORK/a.out" || fail "A missing final drain stats line"
SENT=$(sed -n 's/^-- final sent=\([0-9]*\).*/\1/p' "$WORK/b.out")
[[ -n "$SENT" ]] || fail "B missing final drain stats line"
GOT=$(grep -c '^<- smoke-' "$WORK/a.out")
[[ "$GOT" == "$SENT" ]] || fail "loss across drain: B sent $SENT, A delivered $GOT"
note "drain ok: B sent=$SENT, A delivered=$GOT, exits 0/0"
echo "cloved-smoke: PASS"
