package netem

import (
	"fmt"
	"reflect"
	"testing"

	"clove/internal/packet"
	"clove/internal/sim"
)

func shardedCfg() LeafSpineConfig {
	return LeafSpineConfig{
		Leaves:        4,
		Spines:        2,
		TrunksPerPair: 1,
		HostsPerLeaf:  2,
		HostRateBps:   1e8,
		TrunkRateBps:  4e8,
		LinkDelay:     5 * sim.Microsecond,
		TrunkDelay:    5 * sim.Microsecond,
		QueueCap:      64,
		ECNK:          8,
	}
}

// runShardedFabric drives cross-leaf traffic over a sharded leaf–spine and
// returns a per-destination arrival log (host order), plus total DownDrops.
// A global event flaps one trunk pair mid-run so the barrier/recompute path
// is exercised too.
func runShardedFabric(t *testing.T, workers int) ([]string, int64) {
	t.Helper()
	cfg := shardedCfg()
	eng := sim.NewEngine(77, cfg.TrunkDelay)
	ls := BuildLeafSpineSharded(eng, cfg)
	n := cfg.Leaves * cfg.HostsPerLeaf
	logs := make([][]string, n)
	for i := 0; i < n; i++ {
		h := ls.Host(packet.HostID(i))
		i := i
		h.Deliver = func(p *packet.Packet) {
			logs[i] = append(logs[i], fmt.Sprintf("src=%d sport=%d at=%d",
				p.Inner.Src, p.Encap.SrcPort, h.Domain().Now()))
		}
	}
	for i := 0; i < n; i++ {
		src := ls.Host(packet.HostID(i))
		dst := packet.HostID((i + cfg.HostsPerLeaf) % n) // always another leaf
		for k := 0; k < 30; k++ {
			at := sim.Time(k)*3*sim.Microsecond + sim.Time(i)*sim.Microsecond
			i, k := i, k
			src.Domain().At(at, func() {
				p := dataPacket(packet.HostID(i), dst, 500)
				p.Encap = &packet.Encap{SrcHyp: packet.HostID(i), DstHyp: dst,
					SrcPort: uint16(40000 + 100*i + k), DstPort: 7471}
				src.Send(p)
			})
		}
	}
	eng.GlobalAt(30*sim.Microsecond, func() { ls.SetLinkPairUp("L1", "S1", 0, false) })
	eng.GlobalAt(60*sim.Microsecond, func() { ls.SetLinkPairUp("L1", "S1", 0, true) })
	eng.Run(5*sim.Millisecond, workers, nil)
	if eng.Pending() != 0 {
		t.Fatalf("workers=%d: %d events still pending after run", workers, eng.Pending())
	}
	var all []string
	for i, lg := range logs {
		for _, s := range lg {
			all = append(all, fmt.Sprintf("h%d<- %s", i, s))
		}
	}
	var downDrops int64
	for _, l := range ls.Links() {
		downDrops += l.Stats().DownDrops
	}
	return all, downDrops
}

// TestShardedFabricDeterministicAcrossWorkers: identical arrivals (content,
// order, timestamps) at any worker count, including across a mid-run trunk
// flap driven from a global event.
func TestShardedFabricDeterministicAcrossWorkers(t *testing.T) {
	ref, refDrops := runShardedFabric(t, 1)
	if len(ref) == 0 {
		t.Fatal("reference run delivered nothing")
	}
	for _, w := range []int{2, 4, 8} {
		got, drops := runShardedFabric(t, w)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d arrival log diverges (len %d vs %d)", w, len(got), len(ref))
		}
		if drops != refDrops {
			t.Fatalf("workers=%d DownDrops = %d, want %d", w, drops, refDrops)
		}
	}
}

// TestShardedBuilderMatchesLegacyShape: node/link naming and creation order
// must match BuildLeafSpine so scenario link references (L1-S1#0 etc.) and
// seeds carry over unchanged.
func TestShardedBuilderMatchesLegacyShape(t *testing.T) {
	cfg := shardedCfg()
	legacy := BuildLeafSpine(sim.New(1), cfg)
	eng := sim.NewEngine(1, cfg.TrunkDelay)
	sharded := BuildLeafSpineSharded(eng, cfg)
	if got, want := len(sharded.Links()), len(legacy.Links()); got != want {
		t.Fatalf("link count %d, want %d", got, want)
	}
	for i, l := range sharded.Links() {
		if l.Name() != legacy.Links()[i].Name() {
			t.Fatalf("link %d named %q, want %q", i, l.Name(), legacy.Links()[i].Name())
		}
	}
	if eng.NumDomains() != cfg.Leaves+cfg.Spines {
		t.Fatalf("domains = %d, want %d", eng.NumDomains(), cfg.Leaves+cfg.Spines)
	}
	if got := len(sharded.Pools()); got != cfg.Leaves+cfg.Spines {
		t.Fatalf("pools = %d, want %d", got, cfg.Leaves+cfg.Spines)
	}
	// Hosts belong to their leaf's domain; leaf domains come first.
	for i := 0; i < cfg.Leaves*cfg.HostsPerLeaf; i++ {
		h := sharded.Host(packet.HostID(i))
		if want := i / cfg.HostsPerLeaf; h.Domain().ID() != want {
			t.Fatalf("host %d in domain %d, want %d", i, h.Domain().ID(), want)
		}
	}
}

// TestShardedTrunkDelayUnderLookaheadPanics pins the build-time safety
// check: a trunk faster than the lookahead would allow causality violations.
func TestShardedTrunkDelayUnderLookaheadPanics(t *testing.T) {
	cfg := shardedCfg()
	cfg.TrunkDelay = 2 * sim.Microsecond
	eng := sim.NewEngine(1, 5*sim.Microsecond)
	defer func() {
		if recover() == nil {
			t.Error("BuildLeafSpineSharded with trunk delay < lookahead did not panic")
		}
	}()
	BuildLeafSpineSharded(eng, cfg)
}
