package cluster

import (
	"fmt"

	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/stats"
	"clove/internal/workload"
)

// runMixDomains is the sharded counterpart of RunMix: every host is a
// client, its servers are hosts on other leaves (capped by
// Config.ServersPerClient — the legacy full mesh would be quadratic at 1024
// hosts), and each client's arrival chain runs entirely inside its own
// event domain using that domain's RNG stream. Web, RPC, and ML jobs are
// domain-local at issue time (their senders live on the client host); only
// incast crosses domains — the request to each responding server, and each
// shard's completion notification back, travel as cross-domain posts with
// the engine lookahead as the modeled control latency.
//
// Completions are counted per domain and summed by the engine's stop
// predicate at barriers, and FCT samples land in per-domain recorders
// merged in domain order afterwards — so the figure tables, like
// everything else, are bit-identical at any worker count.
func (c *Cluster) runMixDomains(p MixParams) MixResult {
	if p.SizeScale == 0 {
		p.SizeScale = 1
	}
	if p.MaxSimTime == 0 {
		p.MaxSimTime = 600 * sim.Second
	}
	fracSum := p.FracWebSearch + p.FracRPC + p.FracML + p.FracIncast
	if p.FracWebSearch < 0 || p.FracRPC < 0 || p.FracML < 0 || p.FracIncast < 0 ||
		fracSum < 0.999 || fracSum > 1.001 {
		panic(fmt.Sprintf("cluster: mix fractions must be >= 0 and sum to 1, got %v", fracSum))
	}
	hostsPerLeaf := c.Cfg.Topo.HostsPerLeaf
	nHosts := c.Cfg.Topo.Leaves * hostsPerLeaf
	spc := c.Cfg.ServersPerClient
	maxSpc := nHosts - hostsPerLeaf // hosts on other leaves
	if spc <= 0 {
		spc = 32
	}
	if spc > maxSpc {
		spc = maxSpc
	}
	if p.IncastFanout <= 0 || p.IncastFanout > spc {
		p.IncastFanout = spc
	}
	if p.IncastBytes == 0 {
		p.IncastBytes = 1e6
	}
	if p.MLBytes == 0 {
		p.MLBytes = 1e6
	}

	webDist := workload.WebSearch()
	rpcDist := workload.CacheFollower()
	if p.SizeScale != 1 {
		webDist = webDist.Scaled(p.SizeScale)
		rpcDist = rpcDist.Scaled(p.SizeScale)
	}
	mlBytes := int64(float64(p.MLBytes) * p.SizeScale)
	incastBytes := int64(float64(p.IncastBytes) * p.SizeScale)
	if mlBytes <= 0 {
		mlBytes = 1
	}
	if incastBytes <= 0 {
		incastBytes = 1
	}
	c.Recorder.SetSizeScale(p.SizeScale)

	// Per-domain run state. Each slot is written only by its owning domain
	// (mid-window) and read at barriers / after the run; padding keeps the
	// hot counters off shared cache lines.
	nd := c.Eng.NumDomains()
	type domCounters struct {
		completed int
		issued    int
		_         [48]byte
	}
	cnt := make([]domCounters, nd)
	recs := make([]*stats.FCTRecorder, nd)
	for i := range recs {
		recs[i] = &stats.FCTRecorder{}
		recs[i].SetSizeScale(p.SizeScale)
	}

	// Persistent connections: servers for client ci are hosts on other
	// leaves in host order, rotated by ci so load spreads evenly.
	fwd := make([][]*Conn, nHosts)
	var rev [][]*Conn
	if p.FracIncast > 0 {
		rev = make([][]*Conn, nHosts)
	}
	var pairs [][2]packet.HostID
	for ci := 0; ci < nHosts; ci++ {
		leaf := ci / hostsPerLeaf
		cand := make([]packet.HostID, 0, maxSpc)
		for h := 0; h < nHosts; h++ {
			if h/hostsPerLeaf != leaf {
				cand = append(cand, packet.HostID(h))
			}
		}
		fwd[ci] = make([]*Conn, spc)
		if rev != nil {
			rev[ci] = make([]*Conn, spc)
		}
		client := packet.HostID(ci)
		for k := 0; k < spc; k++ {
			server := cand[(ci+k)%len(cand)]
			fwd[ci][k] = c.OpenConn(client, server, 0)
			pairs = append(pairs, [2]packet.HostID{client, server}, [2]packet.HostID{server, client})
			if rev != nil {
				rev[ci][k] = c.OpenConn(server, client, 0)
			}
		}
	}
	c.SetupPaths(pairs)

	meanJob := p.FracWebSearch*webDist.Mean() + p.FracRPC*rpcDist.Mean() +
		p.FracML*float64(mlBytes) + p.FracIncast*float64(incastBytes)
	rate := workload.ArrivalRateForLoad(p.Load, c.LS.BisectionBps(), nHosts, meanJob)

	jobsPerClient := p.TotalJobs / nHosts
	if jobsPerClient == 0 {
		jobsPerClient = 1
	}
	target := jobsPerClient * nHosts
	la := c.Eng.Lookahead()

	// Per-client arrival chains, entirely inside the client's domain.
	for ci := 0; ci < nHosts; ci++ {
		ci := ci
		d := c.domFor(packet.HostID(ci))
		domID := d.ID()
		rec := recs[domID]
		tr := c.traceFor(packet.HostID(ci))
		rng := d.Rand()

		jobDone := func() { cnt[domID].completed++ }
		recordFlow := func(conn *Conn, size int64) func(sim.Time) {
			return func(fct sim.Time) {
				rec.Add(size, fct)
				if tr != nil {
					tr.FCT(d.Now(), conn.Client, conn.Server, size, fct)
				}
				jobDone()
			}
		}
		type composite struct {
			pending int
			total   int64
			start   sim.Time
		}
		recordShard := func(conn *Conn, comp *composite, shard int64) func(sim.Time) {
			return func(sim.Time) {
				if tr != nil {
					tr.FCT(d.Now(), conn.Client, conn.Server, shard, d.Now()-comp.start)
				}
				comp.pending--
				if comp.pending == 0 {
					rec.Add(comp.total, d.Now()-comp.start)
					jobDone()
				}
			}
		}
		pick := func() int {
			u := rng.Float64()
			switch {
			case u < p.FracWebSearch:
				return mixWeb
			case u < p.FracWebSearch+p.FracRPC:
				return mixRPC
			case u < p.FracWebSearch+p.FracRPC+p.FracML:
				return mixML
			default:
				return mixIncast
			}
		}
		issueJob := func() {
			cnt[domID].issued++
			switch pick() {
			case mixWeb:
				k := rng.Intn(spc)
				size := webDist.Sample(rng)
				fwd[ci][k].StartJob(size, recordFlow(fwd[ci][k], size))
			case mixRPC:
				k := rng.Intn(spc)
				size := rpcDist.Sample(rng)
				fwd[ci][k].StartJob(size, recordFlow(fwd[ci][k], size))
			case mixML:
				shard := mlBytes / int64(spc)
				if shard <= 0 {
					shard = 1
				}
				comp := &composite{pending: spc, total: shard * int64(spc), start: d.Now()}
				for k := 0; k < spc; k++ {
					fwd[ci][k].StartJob(shard, recordShard(fwd[ci][k], comp, shard))
				}
			case mixIncast:
				shard := incastBytes / int64(p.IncastFanout)
				if shard <= 0 {
					shard = 1
				}
				perm := rng.Perm(spc)[:p.IncastFanout]
				comp := &composite{pending: p.IncastFanout, total: shard * int64(p.IncastFanout), start: d.Now()}
				for _, k := range perm {
					conn := rev[ci][k]
					// The responding sender lives on the server host, in
					// another domain: ship the request over as a post (one
					// lookahead of modeled request latency), and the shard
					// completion back the same way. recordShard then runs in
					// this domain, where comp and rec live.
					req := &incastReq{
						c:         c,
						conn:      conn,
						shard:     shard,
						clientDom: domID,
						finish:    recordShard(conn, comp, shard),
					}
					d.Post(c.domFor(conn.Client).ID(), d.Now()+la, incastStart, req, nil)
				}
			}
		}
		nextGap := func() sim.Time {
			return sim.FromSeconds(rng.ExpFloat64() / (rate * c.loadScale))
		}
		var issue func(remaining int)
		issue = func(remaining int) {
			if remaining == 0 {
				return
			}
			issueJob()
			d.After(nextGap(), func() { issue(remaining - 1) })
		}
		d.After(p.Warmup+nextGap(), func() { issue(jobsPerClient) })
	}

	workers := c.Cfg.DomainWorkers
	if workers <= 0 {
		workers = 1
	}
	c.Eng.Run(p.MaxSimTime, workers, func() bool {
		tot := 0
		for i := range cnt {
			tot += cnt[i].completed
		}
		return tot >= target
	})

	res := MixResult{}
	for i := range cnt {
		res.Completed += cnt[i].completed
		res.Issued += cnt[i].issued
		c.Recorder.Merge(recs[i])
	}
	if res.Completed < target {
		res.TimedOut = true
	}
	return res
}

// incastReq carries one incast shard across domains: incastStart fires in
// the responding server's domain and starts the reverse-connection job;
// when that job completes (still in the server's domain), the notification
// posts back and finish — a client-domain closure — runs at the client.
type incastReq struct {
	c         *Cluster
	conn      *Conn // reverse conn: sender on the responding server host
	shard     int64
	clientDom int
	finish    func(sim.Time)
}

// incastStart runs in the server's domain.
func incastStart(a, _ any) {
	req := a.(*incastReq)
	sd := req.c.domFor(req.conn.Client) // conn.Client is the responding server
	req.conn.StartJob(req.shard, func(sim.Time) {
		sd.Post(req.clientDom, sd.Now()+req.c.Eng.Lookahead(), incastFinish, req, nil)
	})
}

// incastFinish runs back in the client's domain.
func incastFinish(a, _ any) {
	req := a.(*incastReq)
	req.finish(0)
}
