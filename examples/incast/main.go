// Incast reproduces the Sec. 5.3 partition-aggregate experiment shape: one
// client fans a request out to n servers, all of which answer at once,
// stressing the client's access link. It prints client goodput vs fanout
// for Clove-ECN, Edge-Flowlet, and MPTCP — the paper's Fig. 7 shows MPTCP's
// synchronized subflows collapsing as fanout grows while Clove-ECN (plain
// tenant TCP underneath) holds up.
package main

import (
	"flag"
	"fmt"

	"clove"
)

func main() {
	var (
		hosts    = flag.Int("hosts", 16, "hosts per leaf (max fanout)")
		requests = flag.Int("requests", 15, "sequential requests per point")
		respMB   = flag.Float64("resp-mb", 10, "response size per request in MB (paper: 10)")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	schemes := []clove.Scheme{clove.CloveECN, clove.EdgeFlowlet, clove.MPTCP}
	fanouts := []int{1, 5, 10, 15}
	if *hosts < 15 {
		fanouts = []int{1, 2, *hosts / 2, *hosts - 1}
	}

	fmt.Printf("incast: %d requests of %.1f MB split across n servers\n\n", *requests, *respMB)
	fmt.Printf("%-8s", "fanout")
	for _, s := range schemes {
		fmt.Printf("%16s", s)
	}
	fmt.Println()

	for _, fanout := range fanouts {
		fmt.Printf("%-8d", fanout)
		for _, scheme := range schemes {
			c := clove.NewCluster(clove.ClusterConfig{
				Seed:   *seed,
				Topo:   clove.ScaledTestbed(1.0, *hosts),
				Scheme: scheme,
			})
			res := c.RunIncast(clove.IncastParams{
				Fanout:        fanout,
				ResponseBytes: int64(*respMB * 1e6),
				Requests:      *requests,
			})
			if res.TimedOut {
				fmt.Printf("%16s", "timeout")
				continue
			}
			fmt.Printf("%11.2f Gbps", res.GoodputBps/1e9)
		}
		fmt.Println()
	}
	fmt.Println("\n(client access-link goodput; compare the fanout trend per scheme with Fig. 7)")
}
