package wire

import (
	"encoding/binary"
	"fmt"
)

// EncapFrame is a fully assembled Clove overlay packet as carried on the
// wire by the userspace datapath: outer IPv4 + outer TCP (STT-like) + shim
// + the opaque tenant payload. The outer TCP source port is the path
// selector; the outer header's ECN codepoint carries fabric congestion.
type EncapFrame struct {
	OuterIP  IPv4
	OuterTCP TCP
	Shim     SttShim
	Payload  []byte
}

// Marshal assembles the frame into a fresh buffer, fixing up lengths and
// checksums.
func (f *EncapFrame) Marshal() []byte {
	f.Shim.PayloadLen = uint16(len(f.Payload))
	segLen := TCPHeaderLen + SttShimLen + len(f.Payload)
	f.OuterIP.TotalLen = uint16(IPv4HeaderLen + segLen)
	if f.OuterIP.TTL == 0 {
		f.OuterIP.TTL = 64
	}
	f.OuterIP.Protocol = 6 // STT rides on TCP

	b := make([]byte, 0, int(f.OuterIP.TotalLen))
	b = f.OuterIP.Marshal(b)
	tcpStart := len(b)
	f.OuterTCP.Checksum = 0
	b = f.OuterTCP.Marshal(b)
	b = f.Shim.Marshal(b)
	b = append(b, f.Payload...)
	// Transport checksum over pseudo-header + segment.
	csum := PseudoChecksum(f.OuterIP.SrcIP, f.OuterIP.DstIP, 6, b[tcpStart:])
	binary.BigEndian.PutUint16(b[tcpStart+16:], csum)
	return b
}

// UnmarshalEncapFrame parses a wire buffer into a frame, validating both
// checksums. The returned frame's Payload aliases b.
func UnmarshalEncapFrame(b []byte) (*EncapFrame, error) {
	f := &EncapFrame{}
	n, err := f.OuterIP.Unmarshal(b)
	if err != nil {
		return nil, fmt.Errorf("outer IP: %w", err)
	}
	if int(f.OuterIP.TotalLen) > len(b) {
		return nil, fmt.Errorf("outer IP: %w", ErrBadLength)
	}
	seg := b[n:f.OuterIP.TotalLen]
	if PseudoChecksum(f.OuterIP.SrcIP, f.OuterIP.DstIP, f.OuterIP.Protocol, seg) != 0 {
		return nil, fmt.Errorf("outer TCP: %w", ErrBadChecksum)
	}
	tn, err := f.OuterTCP.Unmarshal(seg)
	if err != nil {
		return nil, fmt.Errorf("outer TCP: %w", err)
	}
	sn, err := f.Shim.Unmarshal(seg[tn:])
	if err != nil {
		return nil, fmt.Errorf("shim: %w", err)
	}
	f.Payload = seg[tn+sn:]
	if int(f.Shim.PayloadLen) != len(f.Payload) {
		return nil, fmt.Errorf("shim payload: %w", ErrBadLength)
	}
	return f, nil
}
