// Command cloved runs a real userspace Clove tunnel endpoint over UDP as an
// operated, long-running service: multiple local sockets (one per ECMP
// path, distinguished by outer source port), flowlet switching, in-band
// congestion feedback with adaptive path weights — plus a component
// lifecycle with graceful drain on SIGINT/SIGTERM, an optional admin plane
// (-admin) serving health/readiness probes, JSON stats, and hot-reload of
// the flowlet gap, relay interval, and remote without dropping flows, and
// multi-tenant serving (-tenants) mapping N overlays onto N shared-nothing
// endpoints in one process.
//
// Lines read from stdin are sent through the (first) tenant's tunnel;
// received payloads are printed to stdout. Two instances pointed at each
// other (or at a path emulator) form a bidirectional overlay.
//
// Example (two terminals):
//
//	cloved -listen 127.0.0.1 -paths 4 -admin 127.0.0.1:7070
//	  -> prints "paths: [p1 p2 p3 p4]"; pick the first port P
//	cloved -listen 127.0.0.1 -paths 4 -remote 127.0.0.1:P
//	  -> then re-point the first instance without restarting it:
//	     curl -X POST -d '{"remote":"127.0.0.1:Q"}' http://127.0.0.1:7070/config
//
// On SIGINT/SIGTERM the service drains: input stops, tickers stop, every
// tenant flushes its transmit rings and closes within -drain-timeout, a
// final stats line is emitted per tenant, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its environment injected, so tests can drive the whole
// service — flags, signals, drain, exit code — in process.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cloved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen   = fs.String("listen", "127.0.0.1", "local IP to bind path sockets on")
		remote   = fs.String("remote", "", "remote endpoint addr (host:port); empty = receive-only until a /config retarget")
		paths    = fs.Int("paths", 4, "number of path sockets (outer source ports)")
		gap      = fs.Duration("flowlet-gap", 500*time.Microsecond, "flowlet inter-packet gap")
		relay    = fs.Duration("relay", 250*time.Microsecond, "feedback relay interval")
		stats    = fs.Duration("stats", 2*time.Second, "stats print interval (0 disables)")
		keepint  = fs.Duration("keepalive", 100*time.Millisecond, "keepalive/feedback-carrier interval (0 disables)")
		batch    = fs.Int("batch", 0, "datagrams per batched syscall / ring depth (0 = default)")
		bufsize  = fs.Int("bufsize", 0, "transmit ring slot size in bytes (0 = default)")
		noBatch  = fs.Bool("no-batch", false, "force one-datagram-per-syscall I/O (portable path)")
		noSeg    = fs.Bool("no-gso", false, "disable UDP GSO/GRO segmentation offload")
		admin    = fs.String("admin", "", "admin HTTP addr (host:port) serving /healthz /readyz /stats /config; empty disables")
		tenants  = fs.String("tenants", "", "JSON tenants spec file; overrides -listen/-remote/-paths/-flowlet-gap/-relay")
		drainTmo = fs.Duration("drain-timeout", 5*time.Second, "max wait for each tenant's drain on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Serialize writers: tenants, tickers, and the admin plane all print.
	stdout, stderr = newSyncWriter(stdout), newSyncWriter(stderr)

	cfg := appConfig{
		adminAddr:     *admin,
		keepalive:     *keepint,
		statsEvery:    *stats,
		drainTimeout:  *drainTmo,
		batch:         *batch,
		bufSize:       *bufsize,
		noBatch:       *noBatch,
		noSeg:         *noSeg,
		serveAfterEOF: *admin != "" || *tenants != "",
	}
	if *tenants != "" {
		specs, err := loadTenants(*tenants)
		if err != nil {
			fmt.Fprintln(stderr, "cloved:", err)
			return 1
		}
		cfg.tenants = specs
	} else {
		cfg.tenants = []TenantSpec{{
			Name:          "default",
			Listen:        *listen,
			Remote:        *remote,
			Paths:         *paths,
			FlowletGap:    Duration(*gap),
			RelayInterval: Duration(*relay),
		}}
	}

	a, err := newApp(cfg, stdin, stdout, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "cloved:", err)
		return 1
	}
	ctx := context.Background()
	if err := a.mgr.Init(ctx); err != nil {
		fmt.Fprintln(stderr, "cloved:", err)
		return 1
	}
	if err := a.mgr.Start(ctx); err != nil {
		fmt.Fprintln(stderr, "cloved:", err)
		return 1
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	exit := 0
	select {
	case s := <-sigCh:
		fmt.Fprintf(stdout, "cloved: received %v, draining\n", s)
	case err := <-a.inputDone:
		if err != nil {
			// The old scanner loop dropped this error and exited silently;
			// a >64 KiB line looked like a clean EOF.
			fmt.Fprintln(stderr, "cloved: stdin:", err)
			exit = 1
		} else if a.cfg.serveAfterEOF {
			fmt.Fprintln(stdout, "cloved: stdin closed; serving until signalled")
			s := <-sigCh
			fmt.Fprintf(stdout, "cloved: received %v, draining\n", s)
		}
	}
	if err := a.mgr.Stop(); err != nil {
		fmt.Fprintln(stderr, "cloved: shutdown:", err)
		if exit == 0 {
			exit = 1
		}
	}
	return exit
}

// syncWriter serializes concurrent writers (shard receive callbacks, stats
// tickers, the drain path) onto one stream.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func newSyncWriter(w io.Writer) io.Writer {
	if _, ok := w.(*syncWriter); ok {
		return w
	}
	return &syncWriter{w: w}
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
