package wire

import "encoding/binary"

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCP flag bits as they appear on the wire.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
	TCPUrg = 1 << 5
	TCPEce = 1 << 6
	TCPCwr = 1 << 7
)

// TCP is a minimal TCP header (no options).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16 // 0 on Marshal unless precomputed by caller
	Urgent           uint16
}

// Marshal appends the 20-byte header to b. The checksum field is written
// verbatim; compute it with PseudoChecksum over the assembled segment.
func (h *TCP) Marshal(b []byte) []byte {
	off := len(b)
	b = append(b, make([]byte, TCPHeaderLen)...)
	p := b[off:]
	binary.BigEndian.PutUint16(p[0:], h.SrcPort)
	binary.BigEndian.PutUint16(p[2:], h.DstPort)
	binary.BigEndian.PutUint32(p[4:], h.Seq)
	binary.BigEndian.PutUint32(p[8:], h.Ack)
	p[12] = 5 << 4 // data offset: 5 words
	p[13] = h.Flags
	binary.BigEndian.PutUint16(p[14:], h.Window)
	binary.BigEndian.PutUint16(p[16:], h.Checksum)
	binary.BigEndian.PutUint16(p[18:], h.Urgent)
	return b
}

// Unmarshal parses a header and returns bytes consumed (including options,
// which are skipped).
func (h *TCP) Unmarshal(b []byte) (int, error) {
	if len(b) < TCPHeaderLen {
		return 0, ErrTruncated
	}
	dataOff := int(b[12]>>4) * 4
	if dataOff < TCPHeaderLen || len(b) < dataOff {
		return 0, ErrBadLength
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:])
	h.DstPort = binary.BigEndian.Uint16(b[2:])
	h.Seq = binary.BigEndian.Uint32(b[4:])
	h.Ack = binary.BigEndian.Uint32(b[8:])
	h.Flags = b[13]
	h.Window = binary.BigEndian.Uint16(b[14:])
	h.Checksum = binary.BigEndian.Uint16(b[16:])
	h.Urgent = binary.BigEndian.Uint16(b[18:])
	return dataOff, nil
}

// UDPHeaderLen is the fixed UDP header length.
const UDPHeaderLen = 8

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16 // header + payload
	Checksum         uint16
}

// Marshal appends the 8-byte header to b.
func (h *UDP) Marshal(b []byte) []byte {
	off := len(b)
	b = append(b, make([]byte, UDPHeaderLen)...)
	p := b[off:]
	binary.BigEndian.PutUint16(p[0:], h.SrcPort)
	binary.BigEndian.PutUint16(p[2:], h.DstPort)
	binary.BigEndian.PutUint16(p[4:], h.Length)
	binary.BigEndian.PutUint16(p[6:], h.Checksum)
	return b
}

// Unmarshal parses a header and returns bytes consumed.
func (h *UDP) Unmarshal(b []byte) (int, error) {
	if len(b) < UDPHeaderLen {
		return 0, ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:])
	h.DstPort = binary.BigEndian.Uint16(b[2:])
	h.Length = binary.BigEndian.Uint16(b[4:])
	if int(h.Length) < UDPHeaderLen {
		return 0, ErrBadLength
	}
	h.Checksum = binary.BigEndian.Uint16(b[6:])
	return UDPHeaderLen, nil
}

// PseudoChecksum computes the TCP/UDP checksum over the IPv4 pseudo-header
// plus the transport segment.
func PseudoChecksum(src, dst [4]byte, proto uint8, segment []byte) uint16 {
	pseudo := make([]byte, 12, 12+len(segment)+1)
	copy(pseudo[0:4], src[:])
	copy(pseudo[4:8], dst[:])
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(segment)))
	pseudo = append(pseudo, segment...)
	return Checksum(pseudo)
}
