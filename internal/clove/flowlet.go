// Package clove implements the scheme-independent building blocks of the
// Clove load balancer (Sec. 3): software flowlet detection, smooth weighted
// round-robin path rotation, and the congestion-adaptive path-weight table
// driven by ECN or INT feedback. The hypervisor virtual switch in
// internal/vswitch composes these into the full Edge-Flowlet, Clove-ECN and
// Clove-INT schemes.
package clove

import (
	"clove/internal/packet"
	"clove/internal/sim"
)

// FlowletEntry is the per-flow state the virtual switch keeps to pin all
// packets of a flowlet to one path (encap source port).
type FlowletEntry struct {
	lastSeen sim.Time
	// Port is the encap source port this flowlet is pinned to. The caller
	// sets it when Touch reports a new flowlet.
	Port uint16
	// ID increments on every new flowlet of the flow.
	ID uint32
	// LastGap is the idle gap that started the current flowlet (0 for the
	// first flowlet of a flow). Telemetry reads it when a new flowlet closes
	// the previous one.
	LastGap sim.Time
	// Packets and Bytes count the current flowlet's traffic. The table does
	// not reset them on a new flowlet: the caller owns them (the vswitch
	// reports the finished flowlet's size to telemetry, then zeroes them).
	Packets int64
	Bytes   int64
}

// FlowletTable detects flowlet boundaries: a new flowlet starts when a
// flow's inter-packet gap exceeds the configured gap (Sec. 3.2 recommends
// about twice the network RTT, Fig. 6 explores the sensitivity). The table
// is size-bounded with amortized eviction of idle entries.
type FlowletTable struct {
	gap     sim.Time
	entries map[packet.FiveTuple]*FlowletEntry

	// maxEntries bounds memory; once reached, each insert scans a bounded
	// number of eviction candidates (see evictScan).
	maxEntries int

	// scanQueue holds every live flow's key exactly once, in FIFO order
	// (insertion order, with surviving candidates recycled to the back).
	// scanHead indexes the front; the prefix before it is dead space that
	// compaction reclaims. A deterministic queue — rather than sampling the
	// map, whose iteration order is randomized per process — is what keeps
	// eviction, and therefore flowlet IDs and the whole simulation,
	// reproducible.
	scanQueue []packet.FiveTuple
	scanHead  int

	flowlets int64 // total new flowlets observed
}

// DefaultMaxFlowletEntries bounds the table (paper: order of the number of
// destination hypervisors actively talked to, i.e. small).
const DefaultMaxFlowletEntries = 65536

// evictScanBudget is how many candidate entries one insert examines when the
// table is at capacity. The previous implementation swept the whole map
// inline — an O(maxEntries) stall on a single packet's forwarding path; the
// budget amortizes the same reclamation over inserts while keeping each
// Touch O(1).
const evictScanBudget = 8

// evictIdleGaps is how many flowlet gaps an entry must sit idle before it is
// evictable. Any such entry's next packet starts a new flowlet regardless,
// so eviction never changes path pinning — only the (deterministic) ID
// restart.
const evictIdleGaps = 10

// NewFlowletTable creates a table with the given flowlet inter-packet gap.
func NewFlowletTable(gap sim.Time) *FlowletTable {
	return &FlowletTable{
		gap:        gap,
		entries:    map[packet.FiveTuple]*FlowletEntry{},
		maxEntries: DefaultMaxFlowletEntries,
	}
}

// Gap returns the configured flowlet time gap.
func (t *FlowletTable) Gap() sim.Time { return t.gap }

// SetGap changes the flowlet gap (used by the adaptive-gap extension).
func (t *FlowletTable) SetGap(gap sim.Time) { t.gap = gap }

// SetMaxEntries overrides the capacity bound (tests).
func (t *FlowletTable) SetMaxEntries(n int) { t.maxEntries = n }

// Flowlets reports the total number of flowlet starts observed.
func (t *FlowletTable) Flowlets() int64 { return t.flowlets }

// Len reports the number of tracked flows.
func (t *FlowletTable) Len() int { return len(t.entries) }

// Touch records a packet of flow at time now. It returns the flow's entry
// and whether this packet starts a new flowlet (first packet of the flow, or
// idle gap exceeded). On a new flowlet the caller must choose and store the
// entry's Port; on a continuing flowlet the stored Port must be reused —
// that invariant is what keeps flowlets in order on a single path.
func (t *FlowletTable) Touch(flow packet.FiveTuple, now sim.Time) (e *FlowletEntry, isNew bool) {
	e, ok := t.entries[flow]
	if !ok {
		if len(t.entries) >= t.maxEntries {
			t.evictScan(now)
		}
		e = &FlowletEntry{lastSeen: now}
		t.entries[flow] = e
		t.scanQueue = append(t.scanQueue, flow)
		t.flowlets++
		return e, true
	}
	idle := now - e.lastSeen
	e.lastSeen = now
	if idle > t.gap {
		e.ID++
		e.LastGap = idle
		t.flowlets++
		return e, true
	}
	return e, false
}

// evictScan examines up to evictScanBudget candidates from the front of the
// FIFO queue, deleting entries idle for more than evictIdleGaps gaps and
// giving live ones a second chance at the back. If nothing in the budget
// qualifies, the table is allowed to grow (correctness over the bound); the
// next inserts keep scanning from where this one stopped.
func (t *FlowletTable) evictScan(now sim.Time) {
	cutoff := now - evictIdleGaps*t.gap
	for i := 0; i < evictScanBudget && t.scanHead < len(t.scanQueue); i++ {
		key := t.scanQueue[t.scanHead]
		t.scanHead++
		e, ok := t.entries[key]
		if !ok {
			continue // already evicted; stale queue slot
		}
		if e.lastSeen < cutoff {
			delete(t.entries, key)
		} else {
			t.scanQueue = append(t.scanQueue, key)
		}
	}
	// Compact the consumed prefix once it dominates the queue, keeping the
	// amortized cost per insert O(1) and the slack memory bounded.
	if t.scanHead > len(t.scanQueue)/2 && t.scanHead > 16 {
		n := copy(t.scanQueue, t.scanQueue[t.scanHead:])
		t.scanQueue = t.scanQueue[:n]
		t.scanHead = 0
	}
}
