package packet

// Pool is a single-threaded free list for Packet, Encap, and Conga structs,
// owned by one simulation (the topology builder creates it; every element of
// that simulation shares it). It exists because the simulator's hot path —
// one Packet per TCP segment, one Encap per overlay hop, one ACK per
// delivery — otherwise spends most of its time in the allocator.
//
// Pool is deliberately not a sync.Pool: simulations are sequential programs
// and a sync.Pool's per-P caches and GC-driven emptying would both cost
// more and make reuse patterns nondeterministic across runs.
//
// All methods are nil-receiver safe: a nil *Pool degrades to plain
// allocation on Get and a no-op on Put, so components built outside a
// pooled simulation (unit tests, examples) need no wiring.
//
// See the package comment for the ownership rule governing who must call
// Put. Put zeroes the struct before recycling, so recycled and fresh
// structs are indistinguishable — a requirement for run determinism.
type Pool struct {
	packets []*Packet
	encaps  []*Encap
	congas  []*Conga

	// Counters for telemetry and leak tests.
	gets, puts int64

	// obs, when non-nil, observes every pool event (and, via Obs, every
	// datapath event of the components sharing this pool). See Observer.
	obs Observer
}

// SetObserver installs (or, with nil, removes) the datapath observer. Safe
// on a nil pool (no-op), so test helpers can call it unconditionally.
func (p *Pool) SetObserver(o Observer) {
	if p == nil {
		return
	}
	p.obs = o
}

// Obs returns the installed observer, nil when disabled or when p is nil.
// Datapath components fetch their observer through the pool they already
// share; the nil check at each hook site is the entire disabled-mode cost.
func (p *Pool) Obs() Observer {
	if p == nil {
		return nil
	}
	return p.obs
}

// maxPoolFree bounds each free list; surplus structs are left to the GC.
// Peak in-flight packets in even the paper-scale fabric is far below this.
const maxPoolFree = 1 << 15

// Gets reports how many packets this pool has issued (fresh or recycled).
func (p *Pool) Gets() int64 {
	if p == nil {
		return 0
	}
	return p.gets
}

// Puts reports how many packets have been released back.
func (p *Pool) Puts() int64 {
	if p == nil {
		return 0
	}
	return p.puts
}

// FreePackets reports the current packet free-list size.
func (p *Pool) FreePackets() int {
	if p == nil {
		return 0
	}
	return len(p.packets)
}

// Get returns a zeroed packet, recycled when possible.
func (p *Pool) Get() *Packet {
	if p == nil {
		return &Packet{}
	}
	p.gets++
	if n := len(p.packets); n > 0 {
		pkt := p.packets[n-1]
		p.packets[n-1] = nil
		p.packets = p.packets[:n-1]
		if p.obs != nil {
			p.obs.PoolGet(pkt)
		}
		return pkt
	}
	pkt := &Packet{}
	if p.obs != nil {
		p.obs.PoolGet(pkt)
	}
	return pkt
}

// Put releases a packet (and its Encap and Conga, when present) back to the
// pool. The packet must not be referenced afterwards. Put(nil) is a no-op.
func (p *Pool) Put(pkt *Packet) {
	if p == nil || pkt == nil {
		return
	}
	if p.obs != nil {
		p.obs.PoolPut(pkt)
	}
	p.puts++
	if pkt.Encap != nil {
		p.PutEncap(pkt.Encap)
	}
	if pkt.Conga != nil {
		p.PutConga(pkt.Conga)
	}
	*pkt = Packet{}
	if len(p.packets) < maxPoolFree {
		p.packets = append(p.packets, pkt)
	}
}

// GetEncap returns a zeroed encapsulation header, recycled when possible.
func (p *Pool) GetEncap() *Encap {
	if p == nil {
		return &Encap{}
	}
	if n := len(p.encaps); n > 0 {
		e := p.encaps[n-1]
		p.encaps[n-1] = nil
		p.encaps = p.encaps[:n-1]
		if p.obs != nil {
			p.obs.PoolGetEncap(e)
		}
		return e
	}
	e := &Encap{}
	if p.obs != nil {
		p.obs.PoolGetEncap(e)
	}
	return e
}

// PutEncap releases an encap header detached from its packet (the decap
// path); Put releases an attached one automatically.
func (p *Pool) PutEncap(e *Encap) {
	if p == nil || e == nil {
		return
	}
	if p.obs != nil {
		p.obs.PoolPutEncap(e)
	}
	*e = Encap{}
	if len(p.encaps) < maxPoolFree {
		p.encaps = append(p.encaps, e)
	}
}

// GetConga returns a zeroed CONGA metadata header, recycled when possible.
func (p *Pool) GetConga() *Conga {
	if p == nil {
		return &Conga{}
	}
	if n := len(p.congas); n > 0 {
		c := p.congas[n-1]
		p.congas[n-1] = nil
		p.congas = p.congas[:n-1]
		return c
	}
	return &Conga{}
}

// PutConga releases a detached CONGA header; Put releases an attached one
// automatically.
func (p *Pool) PutConga(c *Conga) {
	if p == nil || c == nil {
		return
	}
	*c = Conga{}
	if len(p.congas) < maxPoolFree {
		p.congas = append(p.congas, c)
	}
}
