// Package vswitch implements the hypervisor virtual switch: overlay
// encapsulation and decapsulation, software flowlet switching, ECN/INT
// feedback reflection between hypervisors, ECN masking from tenant VMs, and
// the pluggable path-selection policies (ECMP, Edge-Flowlet, Clove-ECN,
// Clove-INT, Presto) evaluated in the paper.
package vswitch

import (
	"clove/internal/packet"
	"clove/internal/sim"
)

// PathPolicy is a load-balancing scheme plugged into the source-side
// virtual switch. Implementations choose the encapsulation source port —
// the only steering knob an edge scheme has over an ECMP fabric.
type PathPolicy interface {
	// Name identifies the scheme ("ecmp", "clove-ecn", ...).
	Name() string
	// PickPort returns the encap source port for a new flowlet of flow
	// toward the destination hypervisor dst.
	PickPort(dst packet.HostID, flow packet.FiveTuple, flowletID uint32) uint16
	// OnFeedback delivers a reflected path observation for a path toward
	// dst (Feedback.Port identifies the path).
	OnFeedback(dst packet.HostID, fb packet.Feedback, now sim.Time)
	// SetPaths installs the discovered encap source ports for dst,
	// replacing any previously installed set.
	//
	// An empty (or nil) list withdraws the path set. After a withdrawal
	// the policy must behave as it did before discovery: it never panics,
	// never starts a new flowlet (or flowcell) on a withdrawn port, and
	// picks by its pre-discovery hashing instead; AllCongested reports
	// false; and OnFeedback for the withdrawn ports is accepted and
	// ignored. A later non-empty SetPaths re-installs normally. In-flight
	// flowlets are outside the policy's hands (the vswitch pins them), so
	// only new picks are constrained. (Discovery never installs an empty
	// set today, but scenario scripts can kill every path to a
	// destination, and the policies must agree on what that means —
	// TestSetPathsEmptyContract pins each one.)
	SetPaths(dst packet.HostID, ports []uint16)
	// AllCongested reports whether every known path toward dst currently
	// has fresh congestion feedback (drives ECN un-masking).
	AllCongested(dst packet.HostID, now sim.Time) bool
}

// perPacketPolicy is implemented by schemes that decide per packet rather
// than per flowlet (Presto's fixed-size flowcells).
type perPacketPolicy interface {
	// PickPortPacket is called for every outgoing packet; payloadLen lets
	// the policy count flowcell bytes.
	PickPortPacket(dst packet.HostID, flow packet.FiveTuple, payloadLen int) uint16
}

// receiverHook is implemented by schemes that intercept inbound inner
// packets before VM delivery (Presto's flowcell reassembly).
type receiverHook interface {
	// OnDeliver may deliver pkt now, buffer it, or deliver several packets.
	OnDeliver(pkt *packet.Packet, deliver func(*packet.Packet))
}

// portHash maps a flow (plus an optional flowlet discriminator) onto the
// ephemeral port range. It reuses FNV-1a so that, like a real
// implementation, the mapping is stable and spreads well.
func portHash(flow packet.FiveTuple, salt uint32) uint16 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(uint64(uint32(flow.Src)))
	mix(uint64(uint32(flow.Dst)))
	mix(uint64(flow.SrcPort)<<16 | uint64(flow.DstPort))
	mix(uint64(flow.Proto))
	mix(uint64(salt))
	// Ephemeral range 32768..65535.
	return uint16(32768 + h%32768)
}

// ECMP is the baseline scheme (Sec. 5): the outer source port is a static
// hash of the inner 5-tuple, so every flow is pinned to one path for its
// lifetime, congestion-obliviously.
type ECMP struct{}

// NewECMP returns the baseline policy.
func NewECMP() *ECMP { return &ECMP{} }

// Name implements PathPolicy.
func (*ECMP) Name() string { return "ecmp" }

// PickPort implements PathPolicy: static per-flow hash, flowlet-invariant.
func (*ECMP) PickPort(_ packet.HostID, flow packet.FiveTuple, _ uint32) uint16 {
	return portHash(flow, 0)
}

// OnFeedback implements PathPolicy (ignored: congestion-oblivious).
func (*ECMP) OnFeedback(packet.HostID, packet.Feedback, sim.Time) {}

// SetPaths implements PathPolicy (ECMP does not use discovered paths).
func (*ECMP) SetPaths(packet.HostID, []uint16) {}

// AllCongested implements PathPolicy; ECMP never masks ECN, so this is
// irrelevant and reports false.
func (*ECMP) AllCongested(packet.HostID, sim.Time) bool { return false }

// EdgeFlowlet is the congestion-oblivious flowlet scheme (Sec. 3.2): a new
// outer source port per flowlet, chosen by hashing the 6-tuple of flow plus
// flowlet ID — the testbed implementation of Sec. 5.
type EdgeFlowlet struct{}

// NewEdgeFlowlet returns the Edge-Flowlet policy.
func NewEdgeFlowlet() *EdgeFlowlet { return &EdgeFlowlet{} }

// Name implements PathPolicy.
func (*EdgeFlowlet) Name() string { return "edge-flowlet" }

// PickPort implements PathPolicy: rehash per flowlet.
func (*EdgeFlowlet) PickPort(_ packet.HostID, flow packet.FiveTuple, flowletID uint32) uint16 {
	return portHash(flow, flowletID+1)
}

// OnFeedback implements PathPolicy (ignored: congestion-oblivious).
func (*EdgeFlowlet) OnFeedback(packet.HostID, packet.Feedback, sim.Time) {}

// SetPaths implements PathPolicy (not needed: any port maps to some path).
func (*EdgeFlowlet) SetPaths(packet.HostID, []uint16) {}

// AllCongested implements PathPolicy.
func (*EdgeFlowlet) AllCongested(packet.HostID, sim.Time) bool { return false }
