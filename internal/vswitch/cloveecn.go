package vswitch

import (
	"sort"

	"clove/internal/clove"
	"clove/internal/packet"
	"clove/internal/sim"
)

// CloveECN is the paper's primary deployable scheme (Sec. 3.2): weighted
// round-robin over discovered paths, with path weights reduced on ECN
// feedback and the remainder redistributed to uncongested paths.
type CloveECN struct {
	cfg    clove.WeightTableConfig
	tables map[packet.HostID]*clove.WeightTable
	dsts   []packet.HostID // table keys, ascending (deterministic iteration)
}

// NewCloveECN creates the policy; cfg controls the weight-adjustment rule.
func NewCloveECN(cfg clove.WeightTableConfig) *CloveECN {
	return &CloveECN{cfg: cfg, tables: map[packet.HostID]*clove.WeightTable{}}
}

// Name implements PathPolicy.
func (*CloveECN) Name() string { return "clove-ecn" }

// Table returns the weight table for dst (nil before discovery) — exposed
// for tests and telemetry.
func (c *CloveECN) Table(dst packet.HostID) *clove.WeightTable { return c.tables[dst] }

// VisitTables calls fn for every destination's weight table in ascending
// HostID order. The telemetry sampler walks tables every interval; iterating
// the map directly would randomize sample order per process.
func (c *CloveECN) VisitTables(fn func(packet.HostID, *clove.WeightTable)) {
	for _, d := range c.dsts {
		fn(d, c.tables[d])
	}
}

// PickPort implements PathPolicy: weighted round-robin across discovered
// paths. Before discovery completes it degrades to Edge-Flowlet behaviour
// so traffic keeps flowing.
func (c *CloveECN) PickPort(dst packet.HostID, flow packet.FiveTuple, flowletID uint32) uint16 {
	t := c.tables[dst]
	if t == nil || t.Len() == 0 {
		return portHash(flow, flowletID+1)
	}
	return t.NextPort()
}

// OnFeedback implements PathPolicy: ECN feedback reduces the path's weight.
func (c *CloveECN) OnFeedback(dst packet.HostID, fb packet.Feedback, now sim.Time) {
	t := c.tables[dst]
	if t == nil || !fb.Valid {
		return
	}
	if fb.ECN {
		t.OnCongestion(fb.Port, now)
	}
	if fb.HasUtil {
		t.OnUtilization(fb.Port, fb.Util, now)
	}
}

// SetPaths implements PathPolicy, preserving state across rediscovery.
func (c *CloveECN) SetPaths(dst packet.HostID, ports []uint16) {
	if t := c.tables[dst]; t != nil {
		t.SetPorts(ports)
		return
	}
	c.tables[dst] = clove.NewWeightTable(c.cfg, ports)
	c.dsts = insertHostID(c.dsts, dst)
}

// AllCongested implements PathPolicy.
func (c *CloveECN) AllCongested(dst packet.HostID, now sim.Time) bool {
	t := c.tables[dst]
	return t != nil && t.AllCongested(now)
}

// CloveINT is the forward-looking variant (Sec. 3.2): the destination
// reflects INT-measured maximum path utilization, and new flowlets go to
// the least-utilized path.
type CloveINT struct {
	cfg    clove.WeightTableConfig
	tables map[packet.HostID]*clove.WeightTable
	dsts   []packet.HostID // table keys, ascending (deterministic iteration)
	now    func() sim.Time
}

// NewCloveINT creates the policy. now provides the simulation clock (the
// least-utilized choice needs sample freshness).
func NewCloveINT(cfg clove.WeightTableConfig, now func() sim.Time) *CloveINT {
	return &CloveINT{cfg: cfg, tables: map[packet.HostID]*clove.WeightTable{}, now: now}
}

// Name implements PathPolicy.
func (*CloveINT) Name() string { return "clove-int" }

// Table returns the weight table for dst (nil before discovery).
func (c *CloveINT) Table(dst packet.HostID) *clove.WeightTable { return c.tables[dst] }

// VisitTables calls fn for every destination's weight table in ascending
// HostID order (see CloveECN.VisitTables).
func (c *CloveINT) VisitTables(fn func(packet.HostID, *clove.WeightTable)) {
	for _, d := range c.dsts {
		fn(d, c.tables[d])
	}
}

// PickPort implements PathPolicy: least utilized discovered path.
func (c *CloveINT) PickPort(dst packet.HostID, flow packet.FiveTuple, flowletID uint32) uint16 {
	t := c.tables[dst]
	if t == nil || t.Len() == 0 {
		return portHash(flow, flowletID+1)
	}
	return t.LeastUtilizedPort(c.now())
}

// OnFeedback implements PathPolicy: records reflected path utilization.
func (c *CloveINT) OnFeedback(dst packet.HostID, fb packet.Feedback, now sim.Time) {
	t := c.tables[dst]
	if t == nil || !fb.Valid {
		return
	}
	if fb.HasUtil {
		t.OnUtilization(fb.Port, fb.Util, now)
	}
	if fb.ECN {
		t.OnCongestion(fb.Port, now)
	}
}

// SetPaths implements PathPolicy.
func (c *CloveINT) SetPaths(dst packet.HostID, ports []uint16) {
	if t := c.tables[dst]; t != nil {
		t.SetPorts(ports)
		return
	}
	c.tables[dst] = clove.NewWeightTable(c.cfg, ports)
	c.dsts = insertHostID(c.dsts, dst)
}

// insertHostID inserts id into the sorted slice if absent.
func insertHostID(s []packet.HostID, id packet.HostID) []packet.HostID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i < len(s) && s[i] == id {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

// AllCongested implements PathPolicy.
func (c *CloveINT) AllCongested(dst packet.HostID, now sim.Time) bool {
	t := c.tables[dst]
	return t != nil && t.AllCongested(now)
}
