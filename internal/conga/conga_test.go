package conga

import (
	"testing"

	"clove/internal/netem"
	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/tcp"
	"clove/internal/vswitch"
)

// congaRig builds the paper fabric with CONGA attached and plain ECMP
// vswitches (CONGA does the balancing in-network).
type congaRig struct {
	s   *sim.Simulator
	ls  *netem.LeafSpine
	f   *Fabric
	vsw []*vswitch.VSwitch
}

func newCongaRig(seed int64) *congaRig {
	s := sim.New(seed)
	ls := netem.BuildLeafSpine(s, netem.PaperTestbed(0.01))
	f := Attach(s, ls, Config{FlowletGap: ls.BaseRTT() / 2})
	r := &congaRig{s: s, ls: ls, f: f}
	cfg := vswitch.DefaultConfig(ls.BaseRTT())
	cfg.MaskECN = false
	for _, h := range ls.Hosts() {
		r.vsw = append(r.vsw, vswitch.New(s, h, cfg, vswitch.NewECMP()))
	}
	return r
}

func (r *congaRig) conn(a, b packet.HostID, sp, dp uint16) (*tcp.Sender, *tcp.Receiver) {
	flow := packet.FiveTuple{Src: a, Dst: b, SrcPort: sp, DstPort: dp, Proto: packet.ProtoTCP}
	cfg := tcp.DefaultConfig()
	snd := tcp.NewSender(r.s, cfg, flow, r.vsw[a].FromVM)
	rcv := tcp.NewReceiver(r.s, cfg, flow, r.vsw[b].FromVM)
	r.vsw[b].Register(flow, rcv.HandleData)
	r.vsw[a].Register(flow.Reverse(), snd.HandleAck)
	return snd, rcv
}

func TestCongaTransfersComplete(t *testing.T) {
	r := newCongaRig(1)
	done := 0
	for i := 0; i < 4; i++ {
		snd, _ := r.conn(packet.HostID(i), packet.HostID(16+i), 1000, 2000)
		snd.StartJob(500_000, func(sim.Time) { done++ })
	}
	r.s.RunUntil(10 * sim.Second)
	if done != 4 {
		t.Fatalf("completed %d/4 under CONGA", done)
	}
	if r.f.Stats().FlowletsRouted == 0 {
		t.Error("CONGA routed no flowlets")
	}
}

func TestCongaLearnsAndFeedsBackMetrics(t *testing.T) {
	r := newCongaRig(2)
	snd, _ := r.conn(0, 16, 1000, 2000)
	snd.StartJob(2_000_000, nil)
	snd2, _ := r.conn(16, 0, 1500, 2500) // reverse traffic for feedback
	snd2.StartJob(2_000_000, nil)
	r.s.RunUntil(5 * sim.Second)
	st := r.f.Stats()
	if st.MetricsLearned == 0 {
		t.Error("destination leaf learned no metrics")
	}
	if st.FeedbackSent == 0 {
		t.Error("no feedback piggybacked")
	}
	// The source leaf's toLeaf table should be populated.
	l1 := r.ls.Leaves[0]
	tl := r.f.leaves[l1.ID()].toLeaf
	if len(tl) == 0 {
		t.Error("L1 toLeaf table empty after bidirectional traffic")
	}
}

func TestCongaAvoidsFailedTrunkBottleneck(t *testing.T) {
	r := newCongaRig(3)
	r.ls.FailPaperLink() // S2->L2#0 down: S2 keeps one trunk to L2
	// Several heavy flows cross-leaf.
	done := 0
	for i := 0; i < 8; i++ {
		snd, _ := r.conn(packet.HostID(i), packet.HostID(16+i), 1000, 2000)
		snd.StartJob(1_000_000, func(sim.Time) { done++ })
	}
	r.s.RunUntil(30 * sim.Second)
	if done != 8 {
		t.Fatalf("completed %d/8 on asymmetric fabric", done)
	}
	// Traffic through S2 must be lighter than through S1 (S2 has half the
	// downlink capacity): compare bytes on L1->S1 uplinks vs L1->S2.
	var viaS1, viaS2 int64
	for _, name := range []string{"L1->S1#0", "L1->S1#1"} {
		viaS1 += r.ls.LinkByName(name).Stats().TxBytes
	}
	for _, name := range []string{"L1->S2#0", "L1->S2#1"} {
		viaS2 += r.ls.LinkByName(name).Stats().TxBytes
	}
	if viaS2 >= viaS1 {
		t.Errorf("CONGA did not shift load away from the degraded spine: S1=%d S2=%d", viaS1, viaS2)
	}
}

func TestCongaFlowletPinning(t *testing.T) {
	// Back-to-back packets of one flow must stay on one uplink.
	r := newCongaRig(4)
	l1 := r.ls.Leaves[0]
	st := r.f.leaves[l1.ID()]
	flow := packet.FiveTuple{Src: 0, Dst: 16, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	mk := func() *packet.Packet {
		return &packet.Packet{Kind: packet.KindData, Inner: flow, PayloadLen: 100,
			Encap: &packet.Encap{SrcHyp: 0, DstHyp: 16, SrcPort: 50000, DstPort: 7471}}
	}
	cands := l1.NextHops(16)
	first, ok := r.f.Pick(l1, mk(), cands)
	if !ok || first == nil {
		t.Fatal("no pick at source leaf")
	}
	for i := 0; i < 5; i++ {
		next, _ := r.f.Pick(l1, mk(), cands)
		if next != first {
			t.Fatal("flowlet changed uplink mid-burst")
		}
	}
	if st.pinned[packet.FiveTuple{Src: 0, Dst: 16, SrcPort: 50000, DstPort: 7471, Proto: packet.ProtoTCP}] == nil {
		t.Error("no pinned entry for the outer tuple")
	}
}

func TestCongaSameLeafTrafficUntouched(t *testing.T) {
	r := newCongaRig(5)
	l1 := r.ls.Leaves[0]
	flow := packet.FiveTuple{Src: 0, Dst: 1, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	p := &packet.Packet{Kind: packet.KindData, Inner: flow, PayloadLen: 100,
		Encap: &packet.Encap{SrcHyp: 0, DstHyp: 1, SrcPort: 50000, DstPort: 7471}}
	_, ok := r.f.Pick(l1, p, l1.NextHops(1))
	if ok {
		t.Error("CONGA intervened in same-leaf traffic")
	}
	if p.Conga != nil {
		t.Error("same-leaf packet tagged")
	}
}
