// Realnet runs the deployable userspace datapath over real loopback UDP
// sockets: a sender tunnels traffic through an in-process multipath fabric
// emulator whose second path is slow and ECN-marking; the receiver reflects
// congestion feedback in the shim header of its keepalives, and the sender's
// path weights visibly shift away from the bad path — Clove's control loop
// on actual sockets rather than the simulator.
package main

import (
	"fmt"
	"time"

	"clove"
)

func main() {
	cfg := clove.DefaultEndpointConfig()
	cfg.Paths = 2
	cfg.FlowletGap = 200 * time.Microsecond
	cfg.RelayInterval = 100 * time.Microsecond

	recv, err := clove.NewEndpoint("127.0.0.1", cfg)
	check(err)
	defer recv.Close()

	// Path 0: clean. Path 1: 5 Mbps with aggressive ECN marking.
	emu, err := clove.NewPathEmulator("127.0.0.1",
		fmt.Sprintf("127.0.0.1:%d", recv.Ports()[0]),
		[]clove.PathProfile{
			{},
			{RateBps: 5_000_000, ECNDepth: 1},
		})
	check(err)
	defer emu.Close()

	snd, err := clove.NewEndpoint("127.0.0.1", cfg)
	check(err)
	defer snd.Close()

	check(snd.Start(emu.Addr()))
	check(recv.Start(fmt.Sprintf("127.0.0.1:%d", snd.Ports()[0])))
	recv.SetOnRecv(func([]byte) {})
	snd.SetOnRecv(func([]byte) {})

	fmt.Printf("sender paths (outer source ports): %v\n", snd.Ports())
	fmt.Printf("emulator ingress: %s  receiver: 127.0.0.1:%d\n\n", emu.Addr(), recv.Ports()[0])

	stop := make(chan struct{})
	go func() { // forward traffic
		payload := make([]byte, 1200)
		for {
			select {
			case <-stop:
				return
			default:
				snd.Send(payload)
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	go func() { // reverse keepalives carry feedback
		for {
			select {
			case <-stop:
				return
			default:
				recv.Keepalive()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	for i := 0; i < 10; i++ {
		time.Sleep(100 * time.Millisecond)
		sst, rst := snd.Stats(), recv.Stats()
		fmt.Printf("t=%3dms weights=%v  sent=%d delivered=%d ce=%d fb=%d\n",
			(i+1)*100, fmtWeights(snd.Weights()), sst.Sent, rst.Received, rst.CEObserved, sst.FeedbackReceived)
	}
	close(stop)

	fmt.Println("\nthe marked path's weight should have collapsed toward the floor")
}

func fmtWeights(w map[uint16]float64) string {
	out := "{"
	first := true
	for p, v := range w {
		if !first {
			out += " "
		}
		first = false
		out += fmt.Sprintf("%d:%.2f", p, v)
	}
	return out + "}"
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
