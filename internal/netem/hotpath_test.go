package netem

import (
	"testing"

	"clove/internal/packet"
	"clove/internal/sim"
)

// hotPathFabric builds the smallest forwarding path that exercises every
// per-hop stage — host uplink (link), ECMP switch, host downlink (link),
// NIC delivery — with the destination host acting as a terminal sink that
// releases packets back to the topology pool (Deliver == nil).
func hotPathFabric() (*sim.Simulator, *Topology, *Host, *Host) {
	s := sim.New(1)
	t := NewTopology(s)
	sw := t.AddSwitch("S")
	cfg := LinkConfig{RateBps: 40e9, Delay: 2 * sim.Microsecond}
	src := t.AddHost("h0", sw, cfg, cfg)
	dst := t.AddHost("h1", sw, cfg, cfg)
	t.ComputeRoutes()
	return s, t, src, dst
}

// sendOne drives one full packet hop chain: pool Get, enqueue on the source
// uplink, serialize, propagate, switch, serialize, propagate, sink Put.
func sendOne(s *sim.Simulator, t *Topology, src *Host) {
	pkt := t.Pool().Get()
	pkt.Kind = packet.KindData
	pkt.Inner = packet.FiveTuple{Src: 0, Dst: 1, SrcPort: 40000, DstPort: 80, Proto: packet.ProtoTCP}
	pkt.PayloadLen = 1460
	src.Send(pkt)
	s.Run()
}

// TestHotPathForwardingZeroAllocs asserts the tentpole acceptance criterion:
// a packet traversing link -> switch -> link costs zero allocations once the
// event free list and packet pool are warm.
func TestHotPathForwardingZeroAllocs(t *testing.T) {
	s, topo, src, dst := hotPathFabric()
	sendOne(s, topo, src) // warm pools, heap backing, queue capacity

	allocs := testing.AllocsPerRun(100, func() { sendOne(s, topo, src) })
	if allocs != 0 {
		t.Fatalf("allocs per forwarded packet-hop = %v, want 0", allocs)
	}
	if dst.RxPackets() == 0 {
		t.Fatal("sink received nothing; the path is miswired")
	}
	if gets, puts := topo.Pool().Gets(), topo.Pool().Puts(); gets != puts {
		t.Errorf("pool leak: %d gets vs %d puts", gets, puts)
	}
}

// BenchmarkHotPathLinkSwitchLink measures ns per forwarded packet (uplink
// serialization + switch + downlink + delivery) and fails on any alloc
// regression; the CI bench-smoke job runs it.
func BenchmarkHotPathLinkSwitchLink(b *testing.B) {
	s, topo, src, _ := hotPathFabric()
	sendOne(s, topo, src)
	if allocs := testing.AllocsPerRun(20, func() { sendOne(s, topo, src) }); allocs != 0 {
		b.Fatalf("allocs per forwarded packet-hop = %v, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sendOne(s, topo, src)
	}
}
