package vswitch

import (
	"clove/internal/packet"
	"clove/internal/sim"
)

// concuryBuckets is the size of the per-destination lookup table. A few
// dozen entries per path already spreads connections evenly; 256 keeps the
// table one cache line per 32 paths while making bucket collisions (two
// heavy flows sharing a bucket) rare at the scale simulated here.
const concuryBuckets = 256

// concurySalt decorrelates the bucket index from the port-hash fallback:
// both are FNV over the five-tuple, so without a distinct salt every
// pre-discovery flow would land in a bucket correlated with its fallback
// port.
const concurySalt = 0x9e3779b9

// concuryBucket maps a flow to its lookup-table slot. The mapping uses only
// the five-tuple, never the flowlet ID, so a connection always addresses
// the same slot for its whole lifetime.
func concuryBucket(flow packet.FiveTuple) int {
	return int(portHash(flow, concurySalt)) % concuryBuckets
}

// concuryTable is one destination's versioned lookup table. The data plane
// (PickPort) only ever reads the current buckets slice; SetPaths builds the
// next version off to the side and swaps it in, so a pick never observes a
// half-updated table.
type concuryTable struct {
	version int
	ports   []uint16 // currently installed set (install order); empty = withdrawn
	buckets []uint16 // slot -> port; every entry is in ports while ports is non-empty
}

// Concury is the stateless consistent-hashing policy, modeled on Concury's
// small-state L4 balancer discipline: the data plane is a pure lookup — a
// hash of the five-tuple indexes a fixed-size bucket table — and control
// never updates that table in place. SetPaths builds version N+1 from
// version N, keeping each bucket's port wherever it survived the churn, so
// a connection's path changes only when the path itself disappears
// (per-connection consistency). There is no per-flow state at all: PickPort
// allocates nothing and the table footprint is independent of flow count.
//
// Unlike the Clove schemes, Concury is congestion-oblivious; its value in
// the matrix is showing what consistency-without-state costs under
// asymmetry, and exercising the oracle's conn-consistency invariant.
type Concury struct {
	tables map[packet.HostID]*concuryTable
}

// NewConcury returns the stateless consistent-hashing policy.
func NewConcury() *Concury {
	return &Concury{tables: map[packet.HostID]*concuryTable{}}
}

// Name implements PathPolicy.
func (*Concury) Name() string { return "concury" }

// PickPort implements PathPolicy: a pure bucket lookup. The flowlet ID is
// deliberately ignored — the scheme pins connections, not flowlets. Before
// discovery (or after a full withdrawal) it degrades to the static
// per-connection hash, which is equally flowlet-invariant.
func (c *Concury) PickPort(dst packet.HostID, flow packet.FiveTuple, _ uint32) uint16 {
	t := c.tables[dst]
	if t == nil || len(t.ports) == 0 {
		return portHash(flow, 0)
	}
	return t.buckets[concuryBucket(flow)]
}

// OnFeedback implements PathPolicy (ignored: congestion-oblivious).
func (*Concury) OnFeedback(packet.HostID, packet.Feedback, sim.Time) {}

// SetPaths implements PathPolicy: the two-version swap. Buckets whose port
// survives into the new set keep it; orphaned buckets are reassigned
// round-robin over the new set by slot index (deterministic, so any two
// replicas of the table agree). An empty list withdraws the path set per
// the PathPolicy contract — picks fall back to hashing — but the bucket
// contents are retained so a later re-install with overlapping ports
// restores surviving connections to their old paths.
func (c *Concury) SetPaths(dst packet.HostID, ports []uint16) {
	t := c.tables[dst]
	if t == nil {
		t = &concuryTable{buckets: make([]uint16, concuryBuckets)}
		c.tables[dst] = t
	}
	t.version++
	if len(ports) == 0 {
		t.ports = t.ports[:0]
		return
	}
	next := make([]uint16, concuryBuckets)
	for i := range next {
		if containsPort(ports, t.buckets[i]) {
			next[i] = t.buckets[i]
		} else {
			next[i] = ports[i%len(ports)]
		}
	}
	t.buckets = next
	t.ports = append(t.ports[:0], ports...)
}

// AllCongested implements PathPolicy; Concury never masks ECN.
func (*Concury) AllCongested(packet.HostID, sim.Time) bool { return false }

// Version reports how many SetPaths calls dst has seen (tests).
func (c *Concury) Version(dst packet.HostID) int {
	if t := c.tables[dst]; t != nil {
		return t.version
	}
	return 0
}

// containsPort reports whether ports contains p (path sets are a handful of
// entries, so a linear scan beats building a set).
func containsPort(ports []uint16, p uint16) bool {
	for _, q := range ports {
		if q == p {
			return true
		}
	}
	return false
}

// ConcuryRef is the independent reference for differential-testing Concury:
// instead of maintaining the bucket table incrementally, it records the full
// history of installed port sets and derives a bucket's current port by
// replaying the keep-if-present-else-reassign rule over that history on
// every pick. The incremental table and the replay must agree on every
// sample of a full run; a divergence means the in-place versioning (not the
// hash) broke consistency.
type ConcuryRef struct {
	history map[packet.HostID][][]uint16
}

// NewConcuryRef returns the replay-based reference policy.
func NewConcuryRef() *ConcuryRef {
	return &ConcuryRef{history: map[packet.HostID][][]uint16{}}
}

// Name implements PathPolicy.
func (*ConcuryRef) Name() string { return "concury-ref" }

// SetPaths implements PathPolicy: append-only history, no table.
func (c *ConcuryRef) SetPaths(dst packet.HostID, ports []uint16) {
	c.history[dst] = append(c.history[dst], append([]uint16(nil), ports...))
}

// PickPort implements PathPolicy by folding the install history from the
// beginning: each non-empty version keeps the bucket's port if present,
// otherwise reassigns slot i to version[i%len]. Empty versions withdraw the
// active set without disturbing bucket assignments, mirroring Concury's
// retained buckets.
func (c *ConcuryRef) PickPort(dst packet.HostID, flow packet.FiveTuple, _ uint32) uint16 {
	hist := c.history[dst]
	var active []uint16
	if len(hist) > 0 {
		active = hist[len(hist)-1]
	}
	if len(active) == 0 {
		return portHash(flow, 0)
	}
	slot := concuryBucket(flow)
	var port uint16 // zero = unassigned; never a valid encap port
	for _, version := range hist {
		if len(version) == 0 {
			continue
		}
		if !containsPort(version, port) {
			port = version[slot%len(version)]
		}
	}
	return port
}

// OnFeedback implements PathPolicy (ignored: congestion-oblivious).
func (*ConcuryRef) OnFeedback(packet.HostID, packet.Feedback, sim.Time) {}

// AllCongested implements PathPolicy.
func (*ConcuryRef) AllCongested(packet.HostID, sim.Time) bool { return false }
