// Package discovery implements Clove's Paris-traceroute-style path
// discovery (Sec. 3.1): for each destination hypervisor, probes with
// randomized encapsulation source ports and incrementing TTLs map candidate
// ports to the sequence of switch egress links they traverse; a greedy
// heuristic then selects k ports whose paths share the fewest links.
// Discovery repeats periodically to track topology changes.
package discovery

import (
	"sort"

	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/vswitch"
)

// Path is one discovered port→path mapping.
type Path struct {
	Port  uint16
	Links []packet.LinkID // switch egress links, hop by hop
	Hops  int             // path length in switches
}

// Config parameterizes the prober.
type Config struct {
	// CandidatePorts probed per destination per round.
	CandidatePorts int
	// MaxTTL bounds the traceroute depth (must exceed the fabric diameter).
	MaxTTL int
	// K is how many minimally-overlapping paths to select.
	K int
	// ResponseWait is how long a round waits for echoes before assembling.
	ResponseWait sim.Time
	// Interval between periodic rounds per destination ("every few
	// seconds", Sec. 4; short in simulation).
	Interval sim.Time
}

// DefaultConfig returns prober parameters suitable for the paper fabric.
func DefaultConfig(rtt sim.Time) Config {
	return Config{
		CandidatePorts: 32,
		MaxTTL:         5,
		K:              4,
		ResponseWait:   20 * rtt,
		Interval:       200 * sim.Millisecond,
	}
}

// Stats counts prober activity.
type Stats struct {
	Rounds          int64
	ProbesSent      int64
	EchoesReceived  int64
	IncompletePorts int64
	PathSetUpdates  int64
}

// round is one in-flight discovery round toward a destination. Only the
// echoed link ID is kept per hop — the echo packet itself belongs to the
// vswitch and is recycled as soon as the handler returns.
type round struct {
	dst    packet.HostID
	ports  []uint16
	echoes map[uint16]map[int]packet.LinkID // port -> hop -> echoed egress link
}

// Prober drives discovery through one hypervisor's virtual switch and
// installs results into its path policy.
type Prober struct {
	sim *sim.Simulator
	vsw *vswitch.VSwitch
	cfg Config

	nextProbeID uint32
	rounds      map[uint32]*round
	cancels     []func()

	// OnPaths, when set, observes every completed round's selection.
	OnPaths func(dst packet.HostID, ports []uint16, paths []Path)

	stats Stats
}

// NewProber creates a prober bound to vsw and installs itself as the
// vswitch's probe-echo handler.
func NewProber(s *sim.Simulator, vsw *vswitch.VSwitch, cfg Config) *Prober {
	p := &Prober{sim: s, vsw: vsw, cfg: cfg, rounds: map[uint32]*round{}}
	vsw.OnProbeEcho = p.handleEcho
	return p
}

// Stats returns a snapshot of the counters.
func (p *Prober) Stats() Stats { return p.stats }

// Start begins periodic discovery toward the given destinations (the paper
// probes only hypervisors with active traffic). An immediate first round
// runs at once. Stop cancels the periodic rounds.
func (p *Prober) Start(dsts []packet.HostID) {
	for _, dst := range dsts {
		dst := dst
		p.Discover(dst)
		cancel := p.sim.Ticker(p.cfg.Interval, func() { p.Discover(dst) })
		p.cancels = append(p.cancels, cancel)
	}
}

// Stop cancels periodic probing.
func (p *Prober) Stop() {
	for _, c := range p.cancels {
		c()
	}
	p.cancels = nil
}

// Discover runs one probing round toward dst: CandidatePorts random ports x
// MaxTTL probes, then after ResponseWait assembles paths and installs the
// selected ports into the policy.
func (p *Prober) Discover(dst packet.HostID) {
	p.stats.Rounds++
	id := p.nextProbeID
	p.nextProbeID++
	r := &round{dst: dst, echoes: map[uint16]map[int]packet.LinkID{}}
	rng := p.sim.Rand()
	seen := map[uint16]bool{}
	for len(r.ports) < p.cfg.CandidatePorts {
		port := uint16(32768 + rng.Intn(32768))
		if seen[port] {
			continue
		}
		seen[port] = true
		r.ports = append(r.ports, port)
	}
	p.rounds[id] = r
	for _, port := range r.ports {
		for ttl := 1; ttl <= p.cfg.MaxTTL; ttl++ {
			p.vsw.SendProbe(dst, port, ttl, id)
			p.stats.ProbesSent++
		}
	}
	p.sim.After(p.cfg.ResponseWait, func() { p.finish(id) })
}

func (p *Prober) handleEcho(echo *packet.Packet) {
	r := p.rounds[echo.ProbeID]
	if r == nil {
		return // late echo from a closed round
	}
	p.stats.EchoesReceived++
	hops := r.echoes[echo.ProbePort]
	if hops == nil {
		hops = map[int]packet.LinkID{}
		r.echoes[echo.ProbePort] = hops
	}
	hops[echo.HopIndex] = echo.EchoLink
}

// finish assembles complete paths from echoes and installs the selection.
func (p *Prober) finish(id uint32) {
	r := p.rounds[id]
	if r == nil {
		return
	}
	delete(p.rounds, id)

	var paths []Path
	for _, port := range r.ports {
		path, ok := assemblePath(port, r.echoes[port])
		if !ok {
			p.stats.IncompletePorts++
			continue
		}
		paths = append(paths, path)
	}
	if len(paths) == 0 {
		return
	}
	selected := SelectDisjoint(paths, p.cfg.K)
	ports := make([]uint16, len(selected))
	for i, s := range selected {
		ports[i] = s.Port
	}
	p.vsw.SetPaths(r.dst, ports)
	p.stats.PathSetUpdates++
	if p.OnPaths != nil {
		p.OnPaths(r.dst, ports, selected)
	}
}

// assemblePath orders a port's echoes by hop index: switch echoes carry the
// egress link chosen at that hop; an EchoLink of -1 marks the destination
// host, terminating the path. The path is complete when hops 1..end are all
// present.
func assemblePath(port uint16, hops map[int]packet.LinkID) (Path, bool) {
	if len(hops) == 0 {
		return Path{}, false
	}
	path := Path{Port: port}
	for h := 1; ; h++ {
		link, ok := hops[h]
		if !ok {
			return Path{}, false // lost echo: incomplete trace
		}
		if link == -1 {
			path.Hops = h - 1
			return path, true
		}
		path.Links = append(path.Links, link)
	}
}

// SelectDisjoint greedily picks up to k paths minimizing link overlap: it
// starts from the first candidate (candidates are scanned in stable order)
// and repeatedly adds the path sharing the fewest links with the selection
// so far. Duplicate paths (identical link sets) are skipped while distinct
// candidates remain.
func SelectDisjoint(paths []Path, k int) []Path {
	if len(paths) == 0 || k <= 0 {
		return nil
	}
	// Stable ordering for determinism.
	sort.Slice(paths, func(i, j int) bool { return paths[i].Port < paths[j].Port })

	selected := []Path{paths[0]}
	used := map[packet.LinkID]int{}
	for _, l := range paths[0].Links {
		used[l]++
	}
	remaining := append([]Path(nil), paths[1:]...)

	for len(selected) < k && len(remaining) > 0 {
		bestIdx, bestOverlap := -1, 1<<30
		for i, cand := range remaining {
			overlap := 0
			for _, l := range cand.Links {
				if used[l] > 0 {
					overlap++
				}
			}
			if overlap < bestOverlap {
				bestIdx, bestOverlap = i, overlap
			}
		}
		if bestIdx < 0 {
			break
		}
		pick := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		// Skip exact duplicates of already-selected paths unless nothing
		// else remains (k distinct paths may simply not exist).
		if bestOverlap == len(pick.Links) && isDuplicate(selected, pick) && hasNonDuplicate(remaining, selected) {
			continue
		}
		selected = append(selected, pick)
		for _, l := range pick.Links {
			used[l]++
		}
	}
	return selected
}

func isDuplicate(selected []Path, cand Path) bool {
	for _, s := range selected {
		if sameLinks(s.Links, cand.Links) {
			return true
		}
	}
	return false
}

func hasNonDuplicate(remaining, selected []Path) bool {
	for _, r := range remaining {
		if !isDuplicate(selected, r) {
			return true
		}
	}
	return false
}

func sameLinks(a, b []packet.LinkID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
