package packet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFiveTupleReverse(t *testing.T) {
	ft := FiveTuple{Src: 1, Dst: 2, SrcPort: 100, DstPort: 200, Proto: ProtoTCP}
	r := ft.Reverse()
	if r.Src != 2 || r.Dst != 1 || r.SrcPort != 200 || r.DstPort != 100 {
		t.Errorf("Reverse = %+v", r)
	}
	if r.Reverse() != ft {
		t.Error("double Reverse is not identity")
	}
}

func TestFlagsHas(t *testing.T) {
	f := FlagSYN | FlagACK
	if !f.Has(FlagSYN) || !f.Has(FlagACK) || !f.Has(FlagSYN|FlagACK) {
		t.Error("Has missed set bits")
	}
	if f.Has(FlagFIN) || f.Has(FlagSYN|FlagFIN) {
		t.Error("Has reported unset bits")
	}
}

func TestSize(t *testing.T) {
	p := &Packet{Kind: KindData, PayloadLen: 1000}
	if got := p.Size(); got != InnerHeaderLen+1000 {
		t.Errorf("bare data size = %d", got)
	}
	p.Encap = &Encap{}
	if got := p.Size(); got != InnerHeaderLen+1000+EncapHeaderLen {
		t.Errorf("encapped data size = %d", got)
	}
	probe := &Packet{Kind: KindProbe}
	if got := probe.Size(); got != ProbePacketLen+EncapHeaderLen {
		t.Errorf("probe size = %d", got)
	}
}

func TestOuterTuple(t *testing.T) {
	p := &Packet{Inner: FiveTuple{Src: 1, Dst: 2, SrcPort: 5, DstPort: 6, Proto: ProtoTCP}}
	if p.OuterTuple() != p.Inner {
		t.Error("bare packet outer tuple should be inner tuple")
	}
	if p.OuterDst() != 2 {
		t.Error("bare OuterDst")
	}
	p.Encap = &Encap{SrcHyp: 10, DstHyp: 20, SrcPort: 50000, DstPort: 7471}
	ot := p.OuterTuple()
	if ot.Src != 10 || ot.Dst != 20 || ot.SrcPort != 50000 || ot.DstPort != 7471 {
		t.Errorf("encap outer tuple = %+v", ot)
	}
	if p.OuterDst() != 20 {
		t.Error("encap OuterDst")
	}
}

func TestMarkCE(t *testing.T) {
	// Encapsulated, outer ECT: marks the outer header only.
	p := &Packet{Encap: &Encap{ECT: true}, InnerECT: true}
	if !p.MarkCE() {
		t.Fatal("ECT outer not markable")
	}
	if !p.Encap.CE || p.InnerCE {
		t.Error("mark should hit outer header only")
	}
	if !p.CEMarked() {
		t.Error("CEMarked false after mark")
	}

	// Encapsulated, outer not ECT: unmarkable even if inner is ECT.
	p = &Packet{Encap: &Encap{ECT: false}, InnerECT: true}
	if p.MarkCE() {
		t.Error("non-ECT outer was marked")
	}
	if p.CEMarked() {
		t.Error("CEMarked true without mark")
	}

	// Bare packet, inner ECT.
	p = &Packet{InnerECT: true}
	if !p.MarkCE() || !p.InnerCE || !p.CEMarked() {
		t.Error("bare ECT packet marking failed")
	}

	// Bare packet, not ECT.
	p = &Packet{}
	if p.MarkCE() {
		t.Error("non-ECT bare packet was marked")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := &Packet{
		Kind:      KindData,
		Inner:     FiveTuple{Src: 1, Dst: 2},
		Encap:     &Encap{SrcPort: 1111, Feedback: Feedback{Valid: true, Port: 9}},
		Conga:     &Conga{LBTag: 3, CEMetric: 0.5},
		PathTrace: []LinkID{1, 2, 3},
	}
	q := p.Clone()
	q.Encap.SrcPort = 2222
	q.Conga.CEMetric = 0.9
	q.PathTrace[0] = 99
	if p.Encap.SrcPort != 1111 || p.Conga.CEMetric != 0.5 || p.PathTrace[0] != 1 {
		t.Error("Clone shares state with original")
	}
	if q.Encap.Feedback.Port != 9 {
		t.Error("Clone lost feedback")
	}
}

func TestCloneNilOptionals(t *testing.T) {
	p := &Packet{Kind: KindData}
	q := p.Clone()
	if q.Encap != nil || q.Conga != nil || q.PathTrace != nil {
		t.Error("Clone invented optional fields")
	}
}

func TestStringCoverage(t *testing.T) {
	for _, p := range []*Packet{
		{Kind: KindData, Inner: FiveTuple{Src: 1, Dst: 2}},
		{Kind: KindProbe, ProbeID: 7, ProbePort: 100, TTL: 3},
		{Kind: KindProbeEcho, ProbeID: 7, HopIndex: 2, EchoNode: 5},
		{Kind: KindFeedback, Encap: &Encap{SrcHyp: 1, DstHyp: 2}},
		{Kind: KindFeedback},
	} {
		if p.String() == "" {
			t.Errorf("empty String for kind %d", p.Kind)
		}
	}
}

// Property: reversing a five-tuple twice is the identity.
func TestQuickReverseInvolution(t *testing.T) {
	f := func(src, dst int32, sp, dp uint16, proto uint8) bool {
		ft := FiveTuple{Src: HostID(src), Dst: HostID(dst), SrcPort: sp, DstPort: dp, Proto: Proto(proto)}
		return ft.Reverse().Reverse() == ft
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// Property: Clone never aliases Encap/Conga, and Size is invariant under
// Clone.
func TestQuickCloneIndependence(t *testing.T) {
	f := func(payload uint16, srcPort uint16, hasEncap bool) bool {
		p := &Packet{Kind: KindData, PayloadLen: int(payload % 1460)}
		if hasEncap {
			p.Encap = &Encap{SrcPort: srcPort, ECT: true}
		}
		q := p.Clone()
		if q.Size() != p.Size() {
			return false
		}
		if hasEncap {
			q.Encap.CE = true
			if p.Encap.CE {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}
