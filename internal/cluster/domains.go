package cluster

import (
	"fmt"
	"path/filepath"

	"clove/internal/clove"
	"clove/internal/netem"
	"clove/internal/oracle"
	"clove/internal/packet"
	"clove/internal/sim"
	"clove/internal/stats"
	"clove/internal/tcp"
	"clove/internal/telemetry"
	"clove/internal/vswitch"
)

// Sharded (domain-mode) cluster construction. The fabric is built with
// netem.BuildLeafSpineSharded — one event domain per leaf (leaf switch +
// its hosts + everything stacked on them: vswitches, TCP endpoints,
// probers) and one per spine — and the run executes on a sim.Engine in
// conservative windows bounded by the trunk propagation delay. Everything
// a host schedules lands on its own domain's Simulator; the only
// cross-domain interactions are trunk-link propagation (netem) and the
// sharded workload driver's incast request/response hand-offs
// (mixdomains.go), both via Domain.Post.
//
// Results are bit-identical at any Config.DomainWorkers, but a sharded run
// is a *different* simulation than a single-sim run of the same seed: the
// engine defines its own same-timestamp event order and per-domain RNG
// streams. Determinism guarantees therefore hold within a mode, not across
// modes.

// newSharded builds the domain-mode cluster. Mirrors New; CONGA is
// rejected (its fabric state spans switches in different domains).
func newSharded(cfg Config) *Cluster {
	if cfg.Scheme == SchemeCONGA {
		panic("cluster: conga is not supported in domain (sharded) mode: its leaf-to-leaf congestion tables span event domains")
	}
	if cfg.PathsK == 0 {
		cfg.PathsK = 4
	}
	if cfg.MPTCPSubflows == 0 {
		cfg.MPTCPSubflows = tcp.DefaultSubflows
	}
	eng := sim.NewEngine(cfg.Seed, cfg.Topo.FabricDelay())
	ls := netem.BuildLeafSpineSharded(eng, cfg.Topo)
	c := &Cluster{
		Cfg:       cfg,
		Eng:       eng,
		LS:        ls,
		Recorder:  &stats.FCTRecorder{},
		rtt:       ls.BaseRTT(),
		conns:     map[connKey]*Conn{},
		nextPort:  10000,
		loadScale: 1,
	}
	if cfg.Oracle {
		c.Oracle = oracle.New()
		obs := oracle.NewLocked(c.Oracle)
		for _, p := range ls.Pools() {
			p.SetObserver(obs)
		}
		// No per-event hook: it only drives the periodic live-counter
		// self-audit, which CheckOracle's end-of-run Check covers.
		if connConsistent(cfg.Scheme) {
			c.Oracle.RequireConnConsistency()
		}
	}
	if cfg.FlowletGap == 0 {
		c.Cfg.FlowletGap = c.rtt
	}
	if cfg.RelayInterval == 0 {
		c.Cfg.RelayInterval = c.rtt / 2
	}
	if cfg.Beta == 0 {
		c.Cfg.Beta = 1.0 / 3.0
	}
	c.tcpCfg = cfg.TCP
	if c.tcpCfg.MSS == 0 {
		c.tcpCfg = tcp.DefaultConfig()
	}
	c.tcpCfg.ECN = cfg.TenantECN
	// tcpCfg.Pool stays nil: endpoints get their own domain's pool in
	// OpenConn.

	if cfg.AsymmetricFailure {
		ls.FailPaperLink()
	}

	vcfg := vswitch.Config{
		EncapDstPort:       7471,
		FlowletGap:         c.Cfg.FlowletGap,
		RelayInterval:      c.Cfg.RelayInterval,
		StandaloneFeedback: true,
	}
	switch cfg.Scheme {
	case SchemeCloveECN, SchemeCloveINT, SchemeCloveUniform:
		vcfg.MaskECN = true
		vcfg.RequestINT = cfg.Scheme == SchemeCloveINT
	case SchemeCloveLatency:
		vcfg.MaskECN = true
		vcfg.MeasureLatency = true
		vcfg.AdaptiveFlowletGap = cfg.AdaptiveFlowletGap
	default:
		vcfg.MaskECN = false
	}

	wtCfg := clove.DefaultWeightTableConfig(c.rtt)
	wtCfg.Beta = c.Cfg.Beta
	wtCfg.Frozen = cfg.FreezeWeights
	if cfg.CongestedAge > 0 {
		wtCfg.CongestedAge = cfg.CongestedAge
	}
	if cfg.UtilAge > 0 {
		wtCfg.UtilAge = cfg.UtilAge
	}

	for _, h := range ls.Hosts() {
		s := h.Domain().Simulator
		var pol vswitch.PathPolicy
		switch cfg.Scheme {
		case SchemeECMP, SchemeMPTCP, SchemeLetFlow:
			pol = vswitch.NewECMP()
		case SchemeEdgeFlowlet:
			pol = vswitch.NewEdgeFlowlet()
		case SchemeCloveECN:
			pol = vswitch.NewCloveECN(wtCfg)
		case SchemeCloveUniform:
			pol = vswitch.NewCloveUniform()
		case SchemeCloveINT, SchemeCloveLatency:
			pol = vswitch.NewCloveINT(wtCfg, s.Now)
		case SchemePresto:
			pol = vswitch.NewPresto(s)
		case SchemeConcury:
			pol = vswitch.NewConcury()
		case SchemeConcuryRef:
			pol = vswitch.NewConcuryRef()
		case SchemeCharon:
			pol = vswitch.NewCharon(wtCfg.UtilAge, s.Now)
		case SchemeCharonRef:
			pol = vswitch.NewCharonRef(wtCfg.UtilAge, s.Now)
		default:
			panic(fmt.Sprintf("cluster: unknown scheme %q", cfg.Scheme))
		}
		c.VSwitches = append(c.VSwitches, vswitch.New(s, h, vcfg, pol))
	}

	switch cfg.Scheme {
	case SchemeLetFlow:
		attachLetFlowSharded(ls, c.Cfg.FlowletGap)
	case SchemeCharon, SchemeCharonRef:
		// Load stamping reads only the local egress link's DRE, so unlike
		// CONGA it is domain-safe: each leaf stamps inside its own window.
		attachCharonStamping(ls)
	}
	c.setupTelemetrySharded()
	return c
}

// attachLetFlowSharded installs one LetFlow instance per switch, each bound
// to its switch's own domain Simulator (clock and RNG). The legacy attach
// shares one instance across switches; since all its per-switch state is
// keyed by switch ID and it only reads sim.Now/Rand, per-switch instances
// implement the same algorithm with domain-confined state.
func attachLetFlowSharded(ls *netem.LeafSpine, gap sim.Time) {
	for _, sw := range ls.Switches() {
		lb := &letFlowLB{
			sim:      sw.Sim(),
			flowlets: map[packet.NodeID]*clove.FlowletTable{sw.ID(): clove.NewFlowletTable(gap)},
			pinned:   map[packet.NodeID]map[packet.FiveTuple]*netem.Link{sw.ID(): {}},
		}
		sw.SetLB(lb)
	}
}

// domFor returns the event domain owning host h (sharded mode only).
func (c *Cluster) domFor(h packet.HostID) *sim.Domain { return c.LS.Host(h).Domain() }

// simFor returns the Simulator everything on host h must schedule on.
func (c *Cluster) simFor(h packet.HostID) *sim.Simulator {
	if c.Eng != nil {
		return c.domFor(h).Simulator
	}
	return c.Sim
}

// poolFor returns the packet pool endpoints on host h must use. In legacy
// mode this is the topology-wide shared pool, so using it uniformly keeps
// single-sim behavior unchanged.
func (c *Cluster) poolFor(h packet.HostID) *packet.Pool { return c.LS.Host(h).Pool() }

// traceFor returns the tracer events on host h must report to: the single
// run tracer in legacy mode, the owning domain's in sharded mode. Nil when
// telemetry is disabled.
func (c *Cluster) traceFor(h packet.HostID) *telemetry.Tracer {
	if c.Eng == nil {
		return c.Trace
	}
	if c.domTraces == nil {
		return nil
	}
	return c.domTraces[c.domFor(h).ID()]
}

// ScheduleControl schedules a control-plane action (scenario link flaps,
// load ramps) at absolute time at: an ordinary event in legacy mode, a
// global barrier event in sharded mode (control actions touch state in many
// domains, so they must run while all domains are paused).
func (c *Cluster) ScheduleControl(at sim.Time, fn func()) {
	if c.Eng != nil {
		c.Eng.GlobalAt(at, fn)
		return
	}
	c.Sim.After(at-c.Sim.Now(), fn)
}

// setupTelemetrySharded mirrors setupTelemetry with one tracer per domain,
// each sampling only domain-owned state (links by source node, weight
// tables and senders by host), so sampling happens race-free inside the
// owner's windows and every domain's trace bytes are a pure function of
// the run. ExportTraces writes them under domain-NN subdirectories.
func (c *Cluster) setupTelemetrySharded() {
	if c.Cfg.Telemetry == nil {
		return
	}
	nd := c.Eng.NumDomains()
	c.domTraces = make([]*telemetry.Tracer, nd)
	c.domConns = make([][]*Conn, nd)
	for i := 0; i < nd; i++ {
		c.domTraces[i] = telemetry.NewTracer(c.Eng.Domain(i).Simulator, *c.Cfg.Telemetry)
	}

	domLinks := make([][]*netem.Link, nd)
	for _, l := range c.LS.Links() {
		id := c.LS.NodeDomain(l.From()).ID()
		domLinks[id] = append(domLinks[id], l)
		l.SetTrace(c.domTraces[id])
	}
	domHosts := make([][]int, nd)
	for hi, v := range c.VSwitches {
		id := c.domFor(packet.HostID(hi)).ID()
		domHosts[id] = append(domHosts[id], hi)
		v.SetTrace(c.domTraces[id])
	}

	for i := 0; i < nd; i++ {
		tr := c.domTraces[i]
		links := domLinks[i]
		hosts := domHosts[i]
		domID := i
		tr.AddSampler(func(now sim.Time) {
			for _, l := range links {
				st := l.Stats()
				tr.QueueSample(now, l.ID(), l.Name(), l.QueueLen(), st.ECNMarks, st.Drops+st.DownDrops)
			}
		})
		tr.AddSampler(func(now sim.Time) {
			for _, hi := range hosts {
				tv, ok := c.VSwitches[hi].Policy().(tableVisitor)
				if !ok {
					continue
				}
				srcID := packet.HostID(hi)
				tv.VisitTables(func(dst packet.HostID, t *clove.WeightTable) {
					t.VisitStates(func(p clove.PathState) {
						age := sim.Time(-1)
						if p.LastCongested > 0 {
							age = now - p.LastCongested
						}
						tr.WeightSample(now, srcID, dst, p.Port, p.Weight, p.Util, age)
					})
				})
			}
		})
		tr.AddSampler(func(now sim.Time) {
			for _, conn := range c.domConns[domID] {
				if conn.mp != nil {
					for _, sub := range conn.mp.Subflows() {
						sampleSender(tr, now, sub)
					}
					continue
				}
				sampleSender(tr, now, conn.snd)
			}
		})
		tr.Start()
	}
}

// ExportTraces writes the run's trace files under dir: the single tracer's
// files directly (legacy), or one domain-NN subdirectory per domain
// (sharded). No-op when telemetry is disabled.
func (c *Cluster) ExportTraces(dir string) error {
	if c.Eng == nil {
		return c.Trace.Export(dir)
	}
	for i, tr := range c.domTraces {
		if err := tr.Export(filepath.Join(dir, fmt.Sprintf("domain-%02d", i))); err != nil {
			return err
		}
	}
	return nil
}
