package vswitch

import (
	"encoding/binary"
	"testing"

	"clove/internal/clove"
	"clove/internal/packet"
	"clove/internal/sim"
)

// TestPortHashPinnedVectors pins portHash against fixed vectors: the hash
// steers every scheme's fallback path AND Concury's bucket assignment, so a
// silent change would shift every golden in the repo. If an intentional
// change lands here, regenerate the goldens in the same commit.
func TestPortHashPinnedVectors(t *testing.T) {
	cases := []struct {
		flow   packet.FiveTuple
		salt   uint32
		want   uint16
		bucket int
	}{
		{packet.FiveTuple{}, 0, 56389, 154},
		{packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 100, DstPort: 200, Proto: packet.ProtoTCP}, 0, 40300, 51},
		{packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 100, DstPort: 200, Proto: packet.ProtoTCP}, 1, 59277, 51},
		{packet.FiveTuple{Src: 7, Dst: 31, SrcPort: 55000, DstPort: 443, Proto: packet.ProtoTCP}, concurySalt, 34414, 110},
	}
	for _, c := range cases {
		if got := portHash(c.flow, c.salt); got != c.want {
			t.Errorf("portHash(%+v, %d) = %d, want %d", c.flow, c.salt, got, c.want)
		}
		if got := concuryBucket(c.flow); got != c.bucket {
			t.Errorf("concuryBucket(%+v) = %d, want %d", c.flow, got, c.bucket)
		}
	}
}

// FuzzPickPort drives every registered policy with fuzzer-chosen five-tuples,
// path-set sizes (0, 1, and non-powers-of-two included), and feedback
// orderings. Invariants: no policy panics; path-consuming policies return an
// installed port whenever the set is non-empty; hash fallbacks stay in the
// ephemeral range; picks are idempotent for the stateless schemes.
func FuzzPickPort(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{0xff, 0x00, 0x13, 0x37, 0x01, 0x05, 0x03, 0xfe, 0x42, 0x42, 0x42})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})

	f.Fuzz(func(t *testing.T, data []byte) {
		read := func(i int) byte {
			if i < len(data) {
				return data[i]
			}
			return 0
		}
		u16 := func(i int) uint16 {
			return binary.LittleEndian.Uint16([]byte{read(i), read(i + 1)})
		}
		dst := packet.HostID(read(0) % 8)
		flow := packet.FiveTuple{
			Src:     packet.HostID(read(1) % 8),
			Dst:     dst,
			SrcPort: u16(2),
			DstPort: u16(4),
			Proto:   packet.Proto(read(6)),
		}
		// Path-set size 0..6 covers empty, singleton, and non-powers-of-two.
		n := int(read(7) % 7)
		ports := make([]uint16, 0, n)
		for i := 0; i < n; i++ {
			p := 1000 + uint16(read(8+i)%32) // below 32768: disjoint from hash fallbacks
			if !containsPort(ports, p) {
				ports = append(ports, p)
			}
		}
		flowletID := uint32(u16(14))

		wtCfg := clove.DefaultWeightTableConfig(100 * sim.Microsecond)
		var now sim.Time
		clock := func() sim.Time { return now }
		policies := []struct {
			pol           PathPolicy
			consumesPaths bool
			stateless     bool
		}{
			{NewECMP(), false, true},
			{NewEdgeFlowlet(), false, true},
			{NewCloveECN(wtCfg), true, false},
			{NewCloveUniform(), true, false},
			{NewCloveINT(wtCfg, clock), true, false},
			{NewPresto(sim.New(1)), false, false},
			{NewConcury(), true, true},
			{NewConcuryRef(), true, true},
			{NewCharon(100*sim.Microsecond, clock), true, true},
			{NewCharonRef(100*sim.Microsecond, clock), true, true},
		}
		for _, pc := range policies {
			pol := pc.pol
			pol.SetPaths(dst, ports)
			// Feedback ordering chosen by the fuzzer: ECN-first, util-first,
			// or interleaved, for installed and never-installed ports.
			for i := 0; i < int(read(16)%4); i++ {
				fb := packet.Feedback{
					Valid:   read(17+i)%4 != 0,
					Port:    1000 + uint16(read(18+i)%40),
					ECN:     read(19+i)%2 == 0,
					HasUtil: read(20+i)%3 == 0,
					Util:    float64(read(21+i)) / 255,
				}
				now = sim.Time(i+1) * sim.Microsecond
				pol.OnFeedback(dst, fb, now)
			}
			got := pol.PickPort(dst, flow, flowletID)
			if len(ports) > 0 && pc.consumesPaths && !containsPort(ports, got) {
				t.Fatalf("%s: pick %d outside installed %v", pol.Name(), got, ports)
			}
			if len(ports) == 0 && pc.consumesPaths && got < 32768 {
				t.Fatalf("%s: empty-set pick %d is not a hash fallback", pol.Name(), got)
			}
			if pc.stateless {
				if again := pol.PickPort(dst, flow, flowletID); again != got {
					t.Fatalf("%s: pick not idempotent: %d then %d", pol.Name(), got, again)
				}
			}
			// Withdraw and pick again: the empty-set contract under fuzz.
			pol.SetPaths(dst, nil)
			if p := pol.PickPort(dst, flow, flowletID+1); pc.consumesPaths && p < 32768 {
				t.Fatalf("%s: withdrawn pick %d is not a hash fallback", pol.Name(), p)
			}
		}
	})
}
