package sim

import (
	"fmt"
	"math/rand"
)

// maxEventFree bounds how much event-slab memory a drained Simulator keeps.
// Recycling beyond the peak number of concurrently pending events buys
// nothing, and the cap keeps a burst from pinning memory for the rest of the
// run: when the queue fully drains and the slab has grown past the cap, the
// slab and free list are reallocated at the cap and the surplus is left to
// the garbage collector.
const maxEventFree = 1 << 15

// Simulator is a single-threaded discrete-event scheduler. It owns the
// virtual clock: time only advances when Run (or Step) pops the next event.
//
// Simulator is not safe for concurrent use; the simulated network is a
// sequential program by design so that runs are reproducible.
//
// Scheduling comes in two forms. At/After take a plain closure and are fine
// for cold paths (setup, workload arrival chains, tickers). AtCall/AfterCall
// take a static EventFunc plus two operands and do not allocate per event.
//
// Events live in one contiguous slab ([]event) and the pending queue is a
// 4-ary implicit min-heap of slot indices (see queue.go) — no per-event
// allocation, no pointer chasing on sift, no heap.Interface dispatch. Fired
// and cancelled slots are recycled through a free list of indices, so the
// per-packet event path of the network model runs allocation-free.
type Simulator struct {
	now    Time
	slab   []event   // all event structs, addressed by slot index
	heap   []heapEnt // pending events: 4-ary min-heap keyed by (at, seq)
	free   []int32   // recycled slot indices
	nextID uint64
	rng    *rand.Rand

	processed uint64
	running   bool
	stopped   bool

	// onEvent, when non-nil, runs after every fired event's callback. It is
	// the simulator-side hook of the opt-in correctness oracle (the datapath
	// hooks travel through packet.Pool, which sim cannot import).
	onEvent func()
}

// New returns a Simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. All randomness
// in a run must come from here to keep runs reproducible.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Processed reports how many events have fired so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// Pending reports how many events are scheduled but not yet fired.
func (s *Simulator) Pending() int { return len(s.heap) }

// NextEventAt returns the timestamp of the earliest pending event, or
// ok=false when the queue is empty. The sharded engine uses it to compute
// each window's horizon.
func (s *Simulator) NextEventAt() (Time, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].at, true
}

// FreeEvents reports the current size of the event free list (telemetry and
// leak tests; slab memory is bounded by maxEventFree once the queue drains).
func (s *Simulator) FreeEvents() int { return len(s.free) }

// getSlot takes a recycled slab slot or extends the slab by one. The
// returned slot's payload fields are already cleared (putSlot clears them).
func (s *Simulator) getSlot() int32 {
	if n := len(s.free); n > 0 {
		slot := s.free[n-1]
		s.free = s.free[:n-1]
		return slot
	}
	s.slab = append(s.slab, event{heapIdx: -1})
	return int32(len(s.slab) - 1)
}

// putSlot recycles a fired or cancelled event's slot. The slot's seq stays
// — it is the stamp that invalidates every outstanding EventID for this
// incarnation (the next tenant overwrites it with a fresh, never-reused
// value) — and clearing fn/call/a/b is what keeps the slab from pinning
// dead closures or packets across the (arbitrarily long) wait until reuse.
func (s *Simulator) putSlot(slot int32) {
	ev := &s.slab[slot]
	ev.fn = nil
	ev.call = nil
	ev.a, ev.b = nil, nil
	ev.heapIdx = -1
	s.free = append(s.free, slot)
}

func (s *Simulator) schedule(at Time) (int32, uint64) {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	slot := s.getSlot()
	ev := &s.slab[slot]
	ev.at = at
	ev.seq = s.nextID
	s.nextID++
	s.heapPush(slot)
	return slot, ev.seq
}

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: it would violate causality and always indicates a bug.
//
// The closure form allocates; use AtCall on per-packet paths.
func (s *Simulator) At(at Time, fn func()) EventID {
	slot, seq := s.schedule(at)
	s.slab[slot].fn = fn
	return EventID{slot: slot + 1, seq: seq}
}

// After schedules fn to run delay after the current time.
func (s *Simulator) After(delay Time, fn func()) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// AtCall schedules fn(a, b) at absolute time at without allocating: the
// event slot comes from the free list and fn is a static function value
// rather than a closure. Callers pass their receiver and payload through a
// and b (pointers box into interfaces allocation-free).
func (s *Simulator) AtCall(at Time, fn EventFunc, a, b any) EventID {
	slot, seq := s.schedule(at)
	ev := &s.slab[slot]
	ev.call = fn
	ev.a, ev.b = a, b
	return EventID{slot: slot + 1, seq: seq}
}

// AfterCall schedules fn(a, b) delay after the current time; the
// allocation-free form of After.
func (s *Simulator) AfterCall(delay Time, fn EventFunc, a, b any) EventID {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return s.AtCall(s.now+delay, fn, a, b)
}

// Cancel removes a scheduled event. Cancelling an already-fired,
// already-cancelled, or otherwise stale ID is a no-op and reports false;
// the seq stamp guarantees a stale ID can never cancel a later event that
// happens to reuse the same recycled slot.
func (s *Simulator) Cancel(id EventID) bool {
	i := int(id.slot) - 1
	if i < 0 || i >= len(s.slab) {
		return false
	}
	ev := &s.slab[i]
	if ev.seq != id.seq || ev.heapIdx < 0 {
		return false
	}
	s.heapRemove(int(ev.heapIdx))
	s.putSlot(int32(i))
	return true
}

// fire pops the next event, advances the clock, and runs the callback. The
// slot is recycled before the callback executes, so a callback that
// immediately reschedules reuses the slot it just vacated and the free list
// stays at the size of the peak pending set.
func (s *Simulator) fire() {
	slot := s.heapPopRoot()
	ev := &s.slab[slot]
	s.now = ev.at
	s.processed++
	fn, call, a, b := ev.fn, ev.call, ev.a, ev.b
	s.putSlot(slot)
	if len(s.heap) == 0 && len(s.slab) > maxEventFree {
		// The queue drained with an oversized slab (a scheduling burst has
		// passed its peak): every slot is free, so drop the surplus rather
		// than pinning burst-sized memory for the rest of the run. Stale
		// EventIDs into the discarded region fail Cancel's bounds check, and
		// seq stamps stay valid across the reallocation because they are
		// never reused.
		s.slab = make([]event, 0, maxEventFree)
		s.free = make([]int32, 0, maxEventFree)
	}
	if call != nil {
		call(a, b)
	} else {
		fn()
	}
	if s.onEvent != nil {
		s.onEvent()
	}
}

// SetEventHook installs (or, with nil, removes) a function invoked after
// every fired event's callback returns. Used by the correctness oracle for
// per-event audits; nil (the default) costs one predictable branch per event.
func (s *Simulator) SetEventHook(fn func()) { s.onEvent = fn }

// Step fires the single next event. It reports false when the queue is empty.
func (s *Simulator) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	s.fire()
	return true
}

// The three run loops are written out directly rather than sharing a
// continue-predicate closure: the predicate was an indirect call per fired
// event, measurable on the hot path (the dispatch loop is otherwise just a
// compare and a call to fire).

// beginRun guards against reentrant dispatch; endRun is deferred by every
// run loop so a panicking callback leaves the Simulator restartable.
func (s *Simulator) beginRun() {
	if s.running {
		panic("sim: reentrant Run")
	}
	s.running = true
	s.stopped = false
}

func (s *Simulator) endRun() { s.running = false }

// Run fires events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.beginRun()
	defer s.endRun()
	for len(s.heap) > 0 && !s.stopped {
		s.fire()
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to exactly deadline. Events scheduled after deadline remain queued.
func (s *Simulator) RunUntil(deadline Time) {
	s.beginRun()
	defer s.endRun()
	for len(s.heap) > 0 && !s.stopped && s.heap[0].at <= deadline {
		s.fire()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// RunForEvents fires at most n events; useful as a watchdog in tests.
func (s *Simulator) RunForEvents(n uint64) {
	s.beginRun()
	defer s.endRun()
	for fired := uint64(0); len(s.heap) > 0 && !s.stopped && fired < n; fired++ {
		s.fire()
	}
}

// Stop makes the innermost Run/RunUntil return after the current event's
// callback completes. Pending events stay queued.
func (s *Simulator) Stop() { s.stopped = true }

// tickerState is the pinned per-ticker record. One struct and one cancel
// closure are allocated when the ticker is created; each tick then
// reschedules through the static tickerFire trampoline with the state as
// operand, so a running ticker (periodic DRE relays, probe rounds) costs
// zero allocations per tick.
type tickerState struct {
	s        *Simulator
	interval Time
	fn       func()
	stopped  bool
}

// tickerFire is the static trampoline for ticker events. As with the
// pre-slab closure ticker, a cancelled ticker's already-scheduled event
// still fires once as a no-op (and is not rescheduled), so cancellation
// semantics — and event sequence numbering — are unchanged.
func tickerFire(a, _ any) {
	t := a.(*tickerState)
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.s.AfterCall(t.interval, tickerFire, t, nil)
	}
}

// Ticker invokes fn every interval, starting interval from now, until the
// returned cancel function is called. fn observes the tick time via Now.
func (s *Simulator) Ticker(interval Time, fn func()) (cancel func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive ticker interval %v", interval))
	}
	t := &tickerState{s: s, interval: interval, fn: fn}
	s.AfterCall(interval, tickerFire, t, nil)
	return func() { t.stopped = true }
}
