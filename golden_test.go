package clove

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden from the current simulator output")

// TestGoldenFiguresQuick pins the quick-scale output of every reproducible
// figure byte-for-byte against testdata/golden/quick/. Two full passes run:
// serial (-j 1) with the correctness oracle installed — so every figure is
// also certified against the conservation/TCP/pool/queue/flowlet invariants
// — and parallel (-j 4) without it, proving worker-pool scheduling cannot
// leak into results. Any intentional simulator change regenerates the files
// with `go test -run TestGoldenFiguresQuick -update`.
func TestGoldenFiguresQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("golden figure regression is minutes of simulation; skipped in -short")
	}
	passes := []struct {
		name        string
		parallelism int
		oracle      bool
	}{
		{"serial-oracle", 1, true},
		{"parallel-j4", 4, false},
	}
	for _, pass := range passes {
		pass := pass
		t.Run(pass.name, func(t *testing.T) {
			for _, id := range FigureIDs() {
				sc := QuickScale()
				sc.Parallelism = pass.parallelism
				sc.Oracle = pass.oracle
				rows, err := RunFigure(id, sc, nil)
				if err != nil {
					t.Fatalf("RunFigure(%q): %v", id, err)
				}
				got := FormatRows(rows)
				path := filepath.Join("testdata", "golden", "quick", fmt.Sprintf("fig%s.txt", id))
				if *updateGolden && pass.name == "serial-oracle" {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatalf("update golden %s: %v", path, err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (run with -update to create): %v", err)
				}
				if got != string(want) {
					t.Errorf("fig%s output diverges from %s (-update to accept):\n--- got ---\n%s--- want ---\n%s",
						id, path, got, want)
				}
			}
		})
	}
}
