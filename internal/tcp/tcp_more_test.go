package tcp

import (
	"testing"

	"clove/internal/packet"
	"clove/internal/sim"
)

// TestCWRSetAfterECNReduction: the segment following an ECN-triggered
// window cut must carry CWR, exactly once.
func TestCWRSetAfterECNReduction(t *testing.T) {
	s := sim.New(1)
	var cwrCount int
	flow := packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	rev := &pipe{s: s, delay: 50 * sim.Microsecond}
	fwd := &pipe{s: s, delay: 50 * sim.Microsecond}
	snd := NewSender(s, DefaultConfig(), flow, func(p *packet.Packet) {
		if p.Flags.Has(packet.FlagCWR) {
			cwrCount++
		}
		fwd.send(p)
	})
	rcv := NewReceiver(s, DefaultConfig(), flow, rev.send)
	fwd.deliver = func(p *packet.Packet) {
		p.InnerCE = true // mark everything
		rcv.HandleData(p)
	}
	rev.deliver = snd.HandleAck
	snd.StartJob(500_000, nil)
	s.RunUntil(50 * sim.Millisecond)
	reductions := snd.Stats().ECNReductions
	if reductions == 0 {
		t.Fatal("no ECN reductions under universal marking")
	}
	if cwrCount == 0 {
		t.Error("no CWR segments after reductions")
	}
	if cwrCount > int(reductions) {
		t.Errorf("CWR on %d segments for %d reductions (must be <= 1 each)", cwrCount, reductions)
	}
}

// TestECEEchoedOnlyWhenReceiverECNEnabled: the receiver echoes ECE per
// marked segment only with ECN configured.
func TestECEEchoedPerMarkedSegment(t *testing.T) {
	s := sim.New(1)
	flow := packet.FiveTuple{Src: 1, Dst: 2}
	var eceAcks, acks int
	r := NewReceiver(s, DefaultConfig(), flow, func(p *packet.Packet) {
		acks++
		if p.Flags.Has(packet.FlagECE) {
			eceAcks++
		}
	})
	for i := 0; i < 4; i++ {
		r.HandleData(&packet.Packet{Inner: flow, Seq: int64(i * 100), PayloadLen: 100,
			InnerCE: i%2 == 0})
	}
	if acks != 4 {
		t.Fatalf("acks = %d", acks)
	}
	if eceAcks != 2 {
		t.Errorf("ECE on %d/4 acks, want exactly the 2 marked ones", eceAcks)
	}
}

// TestRecoveryNotReenteredBelowRecover exercises the RFC 6582 careful
// variant directly: dupacks arriving after a recovery, while sndUna is
// still at or below the old recovery point, must not trigger another
// window cut.
func TestRecoveryNotReenteredBelowRecover(t *testing.T) {
	s := sim.New(1)
	snd, _, fwd, _ := loop(s, DefaultConfig(), 50*sim.Microsecond)
	dropped := 0
	fwd.intercept = func(p *packet.Packet) bool {
		// Drop two separated segments in the same window.
		if (p.Seq == 14600 || p.Seq == 29200) && dropped < 2 {
			dropped++
			return false
		}
		return true
	}
	snd.StartJob(300_000, nil)
	s.RunUntil(5 * sim.Second)
	st := snd.Stats()
	if st.FastRetransmits != 1 {
		t.Errorf("fast retransmits = %d, want 1 (one loss event, careful re-entry)", st.FastRetransmits)
	}
}

// TestRTOBackoffDoubles verifies exponential backoff across consecutive
// timeouts.
func TestRTOBackoffDoubles(t *testing.T) {
	s := sim.New(1)
	cfg := cfgMinRTO(sim.Millisecond)
	cfg.InitRTO = sim.Millisecond // no RTT samples will arrive
	blocked := true
	flow := packet.FiveTuple{Src: 1, Dst: 2}
	var sendTimes []sim.Time
	snd := NewSender(s, cfg, flow, func(p *packet.Packet) {
		if blocked {
			sendTimes = append(sendTimes, s.Now())
			return // blackhole
		}
	})
	snd.StartJob(100, nil)
	s.RunUntil(40 * sim.Millisecond)
	if snd.Stats().Timeouts < 3 {
		t.Fatalf("timeouts = %d, want several", snd.Stats().Timeouts)
	}
	// Gaps between successive retransmissions must grow.
	if len(sendTimes) < 4 {
		t.Fatalf("sends = %d", len(sendTimes))
	}
	g1 := sendTimes[2] - sendTimes[1]
	g2 := sendTimes[3] - sendTimes[2]
	if g2 < g1*3/2 {
		t.Errorf("backoff gaps %v then %v: not doubling", g1, g2)
	}
}

// TestJobFCTIncludesQueueing: a job queued behind a long job has an FCT
// that includes the wait, per the paper's job-completion-time metric.
func TestJobFCTIncludesQueueing(t *testing.T) {
	s := sim.New(1)
	snd, _, _, _ := loop(s, DefaultConfig(), 100*sim.Microsecond)
	var first, second sim.Time
	snd.StartJob(1_000_000, func(d sim.Time) { first = d })
	snd.StartJob(1_000, func(d sim.Time) { second = d })
	s.RunUntil(10 * sim.Second)
	if first == 0 || second == 0 {
		t.Fatal("jobs incomplete")
	}
	if second < first {
		t.Errorf("queued 1KB job FCT %v < preceding 1MB job FCT %v", second, first)
	}
}

// TestMPTCPOutstandingAccounting sanity-checks the aggregate accounting.
func TestMPTCPOutstandingAccounting(t *testing.T) {
	s := sim.New(1)
	base := packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 100, DstPort: 200}
	blackhole := func(*packet.Packet) {}
	mp := NewMPSender(s, DefaultConfig(), base, 4, blackhole)
	mp.StartJob(1_000_000, nil)
	s.RunUntil(sim.Millisecond)
	out := mp.Outstanding()
	// 4 subflows x IW10 x MSS = at most 58400 bytes in flight initially.
	if out <= 0 || out > 4*10*1460 {
		t.Errorf("outstanding = %d, want (0, 58400]", out)
	}
}

// TestIdleResetAfterJobAtTimeZero is the idle-restart regression test: the
// sender used lastSendTime > 0 as a "has ever sent" sentinel, so a
// connection whose entire first job was emitted at t=0 (a window-sized burst
// that triggers no further sends) never qualified for the slow-start-after-
// idle reset. The "has sent" state is now tracked explicitly.
func TestIdleResetAfterJobAtTimeZero(t *testing.T) {
	s := sim.New(1)
	cfg := DefaultConfig()
	snd, _, _, _ := loop(s, cfg, 50*sim.Microsecond)
	// Exactly one initial window: every segment leaves in the t=0 burst and
	// the returning ACKs grow cwnd without causing another send, so
	// lastSendTime stays 0 — the ambiguous sentinel value.
	size := int64(cfg.InitCwnd) * int64(cfg.MSS)
	snd.StartJob(size, nil)
	s.RunUntil(sim.Second)
	if snd.lastSendTime != 0 {
		t.Fatalf("premise broken: lastSendTime = %v, want 0 (job must fit the initial window)", snd.lastSendTime)
	}
	grown := snd.Cwnd()
	if grown <= cfg.InitCwnd {
		t.Skipf("window did not grow (%v); cannot test idle reset", grown)
	}
	// Idle far beyond the RTO, then a new job: cwnd must restart from the
	// initial window even though the only sends so far happened at t=0.
	s.At(s.Now()+sim.Second, func() {
		snd.StartJob(1000, nil)
		if snd.Cwnd() != cfg.InitCwnd {
			t.Errorf("cwnd after idle = %v, want %v (t=0 sender skipped the idle reset)", snd.Cwnd(), cfg.InitCwnd)
		}
	})
	s.RunUntil(s.Now() + 2*sim.Second)
}
