package experiments

import (
	"strings"
	"testing"

	"clove/internal/sim"
	"clove/internal/stats"
)

// tiny is an even smaller scale than Quick, for unit tests.
func tiny() Scale {
	return Scale{
		Name: "tiny", HostsPerLeaf: 4, SizeScale: 0.02,
		TotalJobs: 60, ConnsPerClient: 1, Seeds: []int64{1},
		Loads:          []float64{0.4},
		IncastRequests: 3, IncastBytes: 300_000,
		MaxSimTime: 120 * sim.Second,
	}
}

func checkRows(t *testing.T, rows []Row, wantSchemes int, figure string) {
	t.Helper()
	if len(rows) != wantSchemes {
		t.Fatalf("%s: %d rows, want %d", figure, len(rows), wantSchemes)
	}
	for _, r := range rows {
		if r.Figure != figure {
			t.Errorf("row figure %q", r.Figure)
		}
		if r.Samples == 0 {
			t.Errorf("%s/%s: no samples", figure, r.Scheme)
		}
		if r.TimedOutRuns > 0 {
			t.Errorf("%s/%s: %d timed-out runs", figure, r.Scheme, r.TimedOutRuns)
		}
	}
}

func TestFig4b(t *testing.T) {
	rows := Fig4b(tiny(), nil)
	checkRows(t, rows, 5, "fig4b")
	for _, r := range rows {
		if r.MeanFCTSec <= 0 {
			t.Errorf("%s: non-positive mean", r.Scheme)
		}
	}
}

func TestFig4cAsymmetric(t *testing.T) {
	rows := Fig4c(tiny(), nil)
	checkRows(t, rows, 5, "fig4c")
}

func TestFig5Breakdowns(t *testing.T) {
	sc := tiny()
	for name, fn := range map[string]func(Scale, interface{ Write([]byte) (int, error) }) []Row{} {
		_ = name
		_ = fn
	}
	rows := Fig5a(sc, nil)
	checkRows(t, rows, 5, "fig5a")
	for _, r := range rows {
		if r.MiceFCTSec <= 0 {
			t.Errorf("fig5a %s: no mice FCT", r.Scheme)
		}
	}
	rows = Fig5c(sc, nil)
	checkRows(t, rows, 5, "fig5c")
	for _, r := range rows {
		if r.P99FCTSec < r.MeanFCTSec {
			t.Errorf("fig5c %s: p99 %v < mean %v", r.Scheme, r.P99FCTSec, r.MeanFCTSec)
		}
	}
}

func TestFig6Variants(t *testing.T) {
	rows := Fig6(tiny(), nil)
	if len(rows) != 4 {
		t.Fatalf("fig6 rows = %d, want 4 variants x 1 load", len(rows))
	}
	labels := map[string]bool{}
	for _, r := range rows {
		labels[r.Variant] = true
	}
	if len(labels) != 4 {
		t.Errorf("variants = %v", labels)
	}
}

func TestFig7Incast(t *testing.T) {
	sc := tiny()
	rows := Fig7(sc, nil)
	// Fanouts capped at HostsPerLeaf=4: {1,3} x 3 schemes.
	if len(rows) != 6 {
		t.Fatalf("fig7 rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.GoodputBps <= 0 {
			t.Errorf("fig7 %s fanout %d: no goodput", r.Scheme, r.Fanout)
		}
	}
}

func TestFig8Simulation(t *testing.T) {
	rows := Fig8a(tiny(), nil)
	checkRows(t, rows, 7, "fig8a")
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Scheme] = true
	}
	if !seen["clove-int"] || !seen["conga"] {
		t.Error("fig8a missing hardware-comparison schemes")
	}
	if !seen["concury"] || !seen["charon"] {
		t.Error("fig8a missing the stateless/in-network contrast schemes")
	}
	rows = Fig8b(tiny(), nil)
	checkRows(t, rows, 7, "fig8b")
}

func TestFig9CDF(t *testing.T) {
	rows := Fig9(tiny(), nil)
	if len(rows) != 3 {
		t.Fatalf("fig9 rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.CDF) == 0 {
			t.Errorf("fig9 %s: empty CDF", r.Scheme)
		}
		last := r.CDF[len(r.CDF)-1]
		if last.P != 1 {
			t.Errorf("fig9 %s: CDF ends at %v", r.Scheme, last.P)
		}
	}
}

func TestSummaryRatios(t *testing.T) {
	sc := tiny()
	sc.TotalJobs = 1000
	sc.SizeScale = 0.1
	sc.Seeds = []int64{1, 2}
	h := Summary(sc, 0.7, nil)
	if h.CloveVsECMP <= 0 || h.EdgeFlowletVsECMP <= 0 {
		t.Fatalf("bad ratios: %+v", h)
	}
	// Direction checks at modest scale: Clove-ECN should improve on ECMP
	// under asymmetry.
	if h.CloveVsECMP < 1 {
		t.Errorf("Clove-ECN slower than ECMP under asymmetry: %v", h.CloveVsECMP)
	}
	if h.String() == "" {
		t.Error("empty summary string")
	}
}

func TestFormatRows(t *testing.T) {
	out := FormatRows([]Row{
		{Figure: "fig4b", Scheme: "ecmp", Load: 0.5, MeanFCTSec: 1.5, Samples: 10},
		{Figure: "fig7", Scheme: "mptcp", Fanout: 8, GoodputBps: 5e9, Samples: 3},
		{Figure: "fig9", Scheme: "conga", Samples: 5,
			CDF: []stats.CDFPoint{{Seconds: 0.1, P: 1}}},
	})
	if !strings.Contains(out, "== fig4b ==") || !strings.Contains(out, "fanout=8") {
		t.Errorf("format output:\n%s", out)
	}
	if !strings.Contains(out, "100%@") {
		t.Errorf("CDF row missing:\n%s", out)
	}
}

func TestRegistryComplete(t *testing.T) {
	for _, id := range ExperimentIDs() {
		if Registry[id] == nil {
			t.Errorf("registry missing %q", id)
		}
	}
	if len(Registry) != len(ExperimentIDs()) {
		t.Error("registry/IDs mismatch")
	}
}
