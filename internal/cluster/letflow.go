package cluster

import (
	"clove/internal/clove"
	"clove/internal/netem"
	"clove/internal/packet"
	"clove/internal/sim"
)

// letFlowLB implements the LetFlow baseline (Sec. 8): switches split flows
// into flowlets and hash each flowlet to a *random* next-hop, with no
// congestion awareness at all. LetFlow's insight — which the paper's
// Edge-Flowlet transplants to the hypervisor — is that flowlet boundaries
// themselves adapt to congestion, because congested paths stall ACK
// clocking and spawn new flowlets.
type letFlowLB struct {
	sim      *sim.Simulator
	flowlets map[packet.NodeID]*clove.FlowletTable
	pinned   map[packet.NodeID]map[packet.FiveTuple]*netem.Link
}

// attachLetFlow installs LetFlow on every switch in the fabric.
func attachLetFlow(s *sim.Simulator, ls *netem.LeafSpine, gap sim.Time) {
	lb := &letFlowLB{
		sim:      s,
		flowlets: map[packet.NodeID]*clove.FlowletTable{},
		pinned:   map[packet.NodeID]map[packet.FiveTuple]*netem.Link{},
	}
	for _, sw := range ls.Switches() {
		lb.flowlets[sw.ID()] = clove.NewFlowletTable(gap)
		lb.pinned[sw.ID()] = map[packet.FiveTuple]*netem.Link{}
		sw.SetLB(lb)
	}
}

// Observe implements netem.SwitchLB (LetFlow keeps no global state).
func (l *letFlowLB) Observe(*netem.Switch, *packet.Packet, *netem.Link) {}

// Pick implements netem.SwitchLB: random next-hop per flowlet.
func (l *letFlowLB) Pick(sw *netem.Switch, pkt *packet.Packet, candidates []*netem.Link) (*netem.Link, bool) {
	if len(candidates) == 1 {
		return candidates[0], true
	}
	outer := pkt.OuterTuple()
	ft := l.flowlets[sw.ID()]
	pinned := l.pinned[sw.ID()]
	_, isNew := ft.Touch(outer, l.sim.Now())
	eg := pinned[outer]
	if isNew || eg == nil || !containsLink(eg, candidates) {
		eg = candidates[l.sim.Rand().Intn(len(candidates))]
		pinned[outer] = eg
	}
	return eg, true
}

func containsLink(l *netem.Link, set []*netem.Link) bool {
	for _, c := range set {
		if c == l {
			return true
		}
	}
	return false
}
