package cluster

import (
	"clove/internal/discovery"
	"clove/internal/netem"
	"clove/internal/packet"
	"clove/internal/vswitch"
)

// oracleInstall enumerates port→path mappings by walking the routing tables
// directly (no probe traffic) and installs the selected disjoint set. It
// produces the same result the traceroute prober converges to, instantly —
// used by benchmarks where discovery latency is not under test.
func (c *Cluster) oracleInstall(src, dst packet.HostID) {
	paths := c.OraclePaths(src, dst, 64)
	if len(paths) == 0 {
		return
	}
	selected := discovery.SelectDisjoint(paths, c.Cfg.PathsK)
	ports := make([]uint16, len(selected))
	for i, p := range selected {
		ports[i] = p.Port
	}
	c.VSwitches[src].SetPaths(dst, ports)
	if c.Cfg.Scheme == SchemePresto && c.Cfg.PrestoIdealWeights {
		c.installPrestoWeights(src, dst, ports, selected)
	}
}

// OraclePaths walks up to maxPorts candidate encap source ports through the
// current routing state and returns their full paths.
func (c *Cluster) OraclePaths(src, dst packet.HostID, maxPorts int) []discovery.Path {
	var paths []discovery.Path
	for i := 0; i < maxPorts; i++ {
		port := uint16(33000 + i*97)
		p := &packet.Packet{
			Kind:  packet.KindData,
			Encap: &packet.Encap{SrcHyp: src, DstHyp: dst, SrcPort: port, DstPort: 7471},
		}
		links, ok := c.walk(src, p)
		if !ok {
			continue
		}
		paths = append(paths, discovery.Path{Port: port, Links: links, Hops: len(links)})
	}
	return paths
}

// walk traces pkt from src's uplink to the destination host via
// RoutePreview at each switch.
func (c *Cluster) walk(src packet.HostID, pkt *packet.Packet) ([]packet.LinkID, bool) {
	node := c.LS.Host(src).Uplink().To()
	var links []packet.LinkID
	for hop := 0; hop < 16; hop++ {
		sw, ok := node.(*netem.Switch)
		if !ok {
			return links, true // reached a host
		}
		lk := sw.RoutePreview(pkt)
		if lk == nil {
			return nil, false
		}
		links = append(links, lk.ID())
		node = lk.To()
	}
	return nil, false // loop guard tripped
}

// DiscoveredPorts reports the ports currently installed for (src,dst), for
// schemes that keep weight tables; nil otherwise (test/telemetry helper).
func (c *Cluster) DiscoveredPorts(src, dst packet.HostID) []uint16 {
	switch pol := c.VSwitches[src].Policy().(type) {
	case *vswitch.CloveECN:
		if t := pol.Table(dst); t != nil {
			return t.Ports()
		}
	case *vswitch.CloveINT:
		if t := pol.Table(dst); t != nil {
			return t.Ports()
		}
	}
	return nil
}
