package netem

import (
	"fmt"

	"clove/internal/packet"
	"clove/internal/sim"
)

// Host is a physical server's NIC attachment: one uplink to its leaf switch
// and a delivery callback into the hypervisor virtual switch. The tenant VM
// and the vswitch live above this in internal/vswitch.
type Host struct {
	id     packet.NodeID
	hostID packet.HostID
	name   string
	uplink *Link // host -> leaf
	pool   *packet.Pool
	dom    *sim.Domain // owning event domain; nil on single-sim topologies

	// Deliver is invoked for every packet arriving at the NIC. The vswitch
	// installs itself here. Packets arriving before installation are counted
	// and dropped.
	Deliver func(pkt *packet.Packet)

	undelivered int64
	rxPackets   int64
}

// ID implements Node.
func (h *Host) ID() packet.NodeID { return h.id }

// HostID returns the host's fabric address (what routing targets).
func (h *Host) HostID() packet.HostID { return h.hostID }

// Name returns the builder-assigned name (e.g. "h3").
func (h *Host) Name() string { return h.name }

// Uplink returns the host->leaf link (the NIC egress).
func (h *Host) Uplink() *Link { return h.uplink }

// Pool returns the packet free list everything on this host draws from: the
// simulation-wide pool on single-sim topologies, the owning domain's pool on
// sharded ones.
func (h *Host) Pool() *packet.Pool { return h.pool }

// Domain returns the event domain owning this host, or nil on a single-sim
// topology. Everything stacked on the host (vswitch, TCP endpoints) must
// schedule on its Simulator.
func (h *Host) Domain() *sim.Domain { return h.dom }

// RxPackets reports packets delivered to this host.
func (h *Host) RxPackets() int64 { return h.rxPackets }

// Send transmits a packet out the NIC.
func (h *Host) Send(pkt *packet.Packet) { h.uplink.Enqueue(pkt) }

// Receive implements Node.
func (h *Host) Receive(pkt *packet.Packet, _ *Link) {
	h.rxPackets++
	if o := h.pool.Obs(); o != nil {
		o.HostDeliver(h.hostID, pkt)
	}
	if h.Deliver == nil {
		h.undelivered++
		h.pool.Put(pkt)
		return
	}
	h.Deliver(pkt)
}

// String implements fmt.Stringer.
func (h *Host) String() string { return fmt.Sprintf("host %s(%d)", h.name, h.hostID) }
