// Package oracle is the simulator's opt-in correctness oracle: an
// implementation of packet.Observer (plus a sim event hook) that shadows a
// run and checks the invariants the fast path is trusted to preserve.
//
// # Hook contract
//
// The oracle attaches through two hooks and relies on their contract:
//
//   - packet.Pool.SetObserver distributes the oracle to every datapath
//     component sharing the pool (links, hosts, TCP endpoints, vswitches).
//     Each hook site fires synchronously at the point the event occurs,
//     before the component acts on its outcome, and guards with a nil
//     check — so a disabled oracle costs one predictable branch and zero
//     allocations per hook site (see packet.Observer).
//   - sim.Simulator.SetEventHook runs AfterEvent after every fired event's
//     callback, giving the oracle a place for periodic self-audits.
//
// The oracle only reads; it never retains, mutates, or releases packets, so
// a run with the oracle installed is byte-identical to one without.
//
// # Invariant classes
//
//   - conservation: every packet issued by the pool is, at any moment,
//     exactly one of in-flight / delivered / dropped, and once the event
//     queue drains every packet has been released back. A retained packet
//     (skipped Put) surfaces as a leak at Check time.
//   - pool: no double-release and no use of a packet after its release
//     (the datapath hooks double as use-after-release detectors), for both
//     packets and detached encap headers.
//   - tcp-stream: each TCP receiver observes its sender's byte stream in
//     order, exactly once — senders emit contiguous coverage [0, maxSent)
//     (retransmits re-send inside it), receivers advance their in-order
//     point contiguously and never past what was sent, across retransmits
//     and MPTCP subflow striping (subflows are distinct five-tuples).
//   - queue-ecn: enqueue occupancy stays below capacity, drop-tail drops
//     happen only at capacity, and a packet is CE-marked at enqueue iff the
//     queue met the ECN threshold and the packet was ECN-capable.
//   - routing: no packet is forwarded over an administratively-down link,
//     and every packet a host NIC receives is addressed to that host.
//   - flowlet: all packets of one (flow, flowlet) keep one outer source
//     port — the property that makes a flowlet atomic on one path.
//   - conn-consistency (opt-in, RequireConnConsistency): a connection's
//     outer source port changes only if the port it was using left the
//     installed path set (PolicyPaths) at some point since it was picked —
//     the relaxation of flowlet pinning that stateless consistent-hashing
//     schemes (Concury) guarantee instead of per-flowlet state. Enabled
//     only for schemes that promise it; flowlet-rotating schemes move
//     ports at every gap by design.
//
// Violations are recorded (capped, counted) rather than panicking, so a run
// completes and Check/Err report everything found.
package oracle

import (
	"fmt"

	"clove/internal/packet"
)

// Violation is one detected invariant breach.
type Violation struct {
	// Class is the invariant class: "conservation", "pool", "tcp-stream",
	// "queue-ecn", "routing", "flowlet", or "conn-consistency".
	Class string
	// Msg describes the specific breach.
	Msg string
}

func (v Violation) String() string { return v.Class + ": " + v.Msg }

// maxViolations bounds how many violations are recorded verbatim; the total
// count keeps incrementing past the cap.
const maxViolations = 64

// auditInterval is how many fired events pass between periodic self-audits.
const auditInterval = 1 << 16

type pktState uint8

const (
	stFree pktState = iota // released to the pool
	stLive                 // issued and owned by some component
)

type streamState struct {
	maxSent   int64 // contiguous sent coverage is [0, maxSent)
	delivered int64 // receiver's in-order point
}

type flowletKey struct {
	flow packet.FiveTuple
	id   uint32
}

// pairKey identifies a (source hypervisor, destination hypervisor) path
// table for the conn-consistency invariant.
type pairKey struct {
	src, dst packet.HostID
}

// pathSetState tracks one pair's installed-port history: the current set
// and, per port, the last install version at which it was absent. Versions
// count PolicyPaths events for the pair (0 = before any install).
type pathSetState struct {
	version    int
	present    map[uint16]bool
	lastAbsent map[uint16]int
}

// connPick is the conn-consistency record of a connection's current port:
// the port and the pair's install version when that port was first picked.
type connPick struct {
	port    uint16
	version int
}

// Oracle shadows one simulation run. Install with
// pool.SetObserver(o) and sim.SetEventHook(o.AfterEvent); call Check once
// the run finishes. Not safe for concurrent use — one Oracle per run,
// matching the simulator's own single-threaded contract.
type Oracle struct {
	pkts   map[*packet.Packet]pktState
	encaps map[*packet.Encap]bool // true = live

	created  int64 // packets issued (incl. implicitly registered ones)
	released int64 // packets released
	live     int64 // created - released, cached for the periodic audit

	linkDown map[packet.LinkID]bool // unknown links are up

	streams  map[packet.FiveTuple]*streamState
	flowlets map[flowletKey]uint16

	// Conn-consistency state: installed path sets per pair (always
	// tracked; installs are control-plane-rare) and, when connCheck is
	// enabled, each connection's current (port, pick-version).
	connCheck bool
	pathSets  map[pairKey]*pathSetState
	conns     map[packet.FiveTuple]connPick

	events     uint64
	violations []Violation
	count      int64
}

// New returns an empty oracle.
func New() *Oracle {
	return &Oracle{
		pkts:     map[*packet.Packet]pktState{},
		encaps:   map[*packet.Encap]bool{},
		linkDown: map[packet.LinkID]bool{},
		streams:  map[packet.FiveTuple]*streamState{},
		flowlets: map[flowletKey]uint16{},
		pathSets: map[pairKey]*pathSetState{},
		conns:    map[packet.FiveTuple]connPick{},
	}
}

// RequireConnConsistency arms the conn-consistency invariant: call it for
// runs of schemes that guarantee per-connection path stability (Concury).
// Without it, PolicyPaths installs are still tracked but picks are not
// judged — flowlet-rotating schemes legitimately move connections at every
// flowlet gap.
func (o *Oracle) RequireConnConsistency() { o.connCheck = true }

func (o *Oracle) violationf(class, format string, args ...any) {
	o.count++
	if len(o.violations) < maxViolations {
		o.violations = append(o.violations, Violation{Class: class, Msg: fmt.Sprintf(format, args...)})
	}
}

// Violations returns the recorded violations (capped at maxViolations).
func (o *Oracle) Violations() []Violation { return o.violations }

// Count returns the total number of violations detected, including any past
// the recording cap.
func (o *Oracle) Count() int64 { return o.count }

// Err returns nil when no violation was detected, otherwise an error
// naming the first violation and the total count.
func (o *Oracle) Err() error {
	if o.count == 0 {
		return nil
	}
	return fmt.Errorf("oracle: %d violation(s); first: %s", o.count, o.violations[0])
}

// Check runs the end-of-run audit and returns the accumulated verdict.
// When pendingEvents is 0 the event queue drained naturally, so every
// tracked packet and encap header must have been released — anything still
// live is a conservation leak. A run stopped early (pendingEvents > 0)
// legitimately has packets in flight, so the leak check is skipped.
func (o *Oracle) Check(pendingEvents int) error {
	if pendingEvents == 0 {
		leaked := 0
		for pkt, st := range o.pkts {
			if st != stFree {
				leaked++
				o.violationf("conservation", "packet leaked (never released): %s", pkt)
			}
		}
		for e, liveE := range o.encaps {
			if liveE {
				leaked++
				o.violationf("conservation", "encap header leaked (never released): srcPort=%d dst=%d", e.SrcPort, e.DstHyp)
			}
		}
		if leaked == 0 && o.live != 0 {
			o.violationf("conservation", "live counter %d at drain with no leaked packets (accounting bug)", o.live)
		}
	}
	return o.Err()
}

// AfterEvent is the sim event hook: counts events and periodically audits
// the cached live counter against a map scan.
func (o *Oracle) AfterEvent() {
	o.events++
	if o.events%auditInterval != 0 {
		return
	}
	var live int64
	for _, st := range o.pkts {
		if st == stLive {
			live++
		}
	}
	if live != o.live {
		o.violationf("conservation", "audit after %d events: %d live packets tracked, counter says %d", o.events, live, o.live)
		o.live = live // resync so one bug doesn't repeat every interval
	}
}

// register notes a packet the oracle has not seen through PoolGet — a raw
// struct or a Clone — as live. Such packets still get conservation and
// use-after-release coverage from their first observed event onward.
func (o *Oracle) register(pkt *packet.Packet) {
	o.pkts[pkt] = stLive
	o.created++
	o.live++
}

// checkLive verifies a datapath hook is not seeing a released packet.
func (o *Oracle) checkLive(pkt *packet.Packet, where string) {
	st, ok := o.pkts[pkt]
	if !ok {
		o.register(pkt)
		return
	}
	if st == stFree {
		o.violationf("pool", "use after release at %s: %s", where, pkt)
	}
}

// --- packet.Observer: pool ---

// PoolGet implements packet.Observer.
func (o *Oracle) PoolGet(pkt *packet.Packet) {
	if st, ok := o.pkts[pkt]; ok && st != stFree {
		// The pool reissued a struct the oracle still considers owned —
		// only possible if internal accounting broke, since Put gates entry
		// to the free list.
		o.violationf("pool", "pool issued a packet still marked live: %s", pkt)
		return
	}
	o.pkts[pkt] = stLive
	o.created++
	o.live++
}

// PoolPut implements packet.Observer.
func (o *Oracle) PoolPut(pkt *packet.Packet) {
	st, ok := o.pkts[pkt]
	if !ok {
		// First sighting: a raw struct released into the pool. Count both
		// sides so conservation stays balanced.
		o.register(pkt)
		st = stLive
	}
	if st == stFree {
		o.violationf("pool", "double release: %s", pkt)
		return
	}
	o.pkts[pkt] = stFree
	o.released++
	o.live--
}

// PoolGetEncap implements packet.Observer.
func (o *Oracle) PoolGetEncap(e *packet.Encap) {
	if liveE, ok := o.encaps[e]; ok && liveE {
		o.violationf("pool", "pool issued an encap header still marked live")
		return
	}
	o.encaps[e] = true
}

// PoolPutEncap implements packet.Observer.
func (o *Oracle) PoolPutEncap(e *packet.Encap) {
	liveE, ok := o.encaps[e]
	if !ok {
		o.encaps[e] = false
		return
	}
	if !liveE {
		o.violationf("pool", "double release of encap header")
		return
	}
	o.encaps[e] = false
}

// --- packet.Observer: links ---

// LinkSetUp implements packet.Observer.
func (o *Oracle) LinkSetUp(link packet.LinkID, up bool) {
	o.linkDown[link] = !up
}

// LinkEnqueue implements packet.Observer.
func (o *Oracle) LinkEnqueue(link packet.LinkID, pkt *packet.Packet, qlenBefore, queueCap, ecnK int, marked bool) {
	o.checkLive(pkt, "link enqueue")
	if qlenBefore >= queueCap {
		o.violationf("queue-ecn", "link %d accepted a packet at occupancy %d >= capacity %d", link, qlenBefore, queueCap)
	}
	markable := pkt.Encap != nil && pkt.Encap.ECT || pkt.Encap == nil && pkt.InnerECT
	wantMark := ecnK > 0 && qlenBefore >= ecnK && markable
	if marked != wantMark {
		o.violationf("queue-ecn", "link %d CE mark = %v, want %v (qlen %d, K %d, markable %v)", link, marked, wantMark, qlenBefore, ecnK, markable)
	}
	if o.linkDown[link] {
		o.violationf("routing", "link %d enqueued a packet while down: %s", link, pkt)
	}
}

// LinkDrop implements packet.Observer.
func (o *Oracle) LinkDrop(link packet.LinkID, pkt *packet.Packet, reason packet.DropReason, qlenBefore, queueCap int) {
	o.checkLive(pkt, "link drop")
	if reason == packet.DropQueueFull && qlenBefore < queueCap {
		o.violationf("queue-ecn", "link %d drop-tail dropped at occupancy %d < capacity %d", link, qlenBefore, queueCap)
	}
}

// LinkDeliver implements packet.Observer.
func (o *Oracle) LinkDeliver(link packet.LinkID, pkt *packet.Packet) {
	o.checkLive(pkt, "link deliver")
	if o.linkDown[link] {
		o.violationf("routing", "link %d delivered a packet while down: %s", link, pkt)
	}
}

// --- packet.Observer: hosts ---

// HostDeliver implements packet.Observer.
func (o *Oracle) HostDeliver(host packet.HostID, pkt *packet.Packet) {
	o.checkLive(pkt, "host deliver")
	if dst := pkt.OuterDst(); dst != host {
		o.violationf("routing", "host %d received a packet addressed to %d: %s", host, dst, pkt)
	}
}

// --- packet.Observer: TCP streams ---

// StreamSent implements packet.Observer.
func (o *Oracle) StreamSent(flow packet.FiveTuple, seq, end int64, _ bool) {
	s := o.streams[flow]
	if s == nil {
		s = &streamState{}
		o.streams[flow] = s
	}
	if seq < 0 || end <= seq {
		o.violationf("tcp-stream", "%s sent empty or negative range [%d,%d)", flow, seq, end)
		return
	}
	// Contiguous coverage: a sender may re-send any already-covered bytes
	// (retransmission, whether or not flagged as one — go-back-N re-emits
	// with the normal path) but may never leave a gap.
	if seq > s.maxSent {
		o.violationf("tcp-stream", "%s sent [%d,%d) leaving gap after %d", flow, seq, end, s.maxSent)
	}
	if end > s.maxSent {
		s.maxSent = end
	}
}

// StreamDeliver implements packet.Observer.
func (o *Oracle) StreamDeliver(flow packet.FiveTuple, from, to int64) {
	s := o.streams[flow]
	if s == nil {
		o.violationf("tcp-stream", "%s delivered [%d,%d) with no bytes ever sent", flow, from, to)
		return
	}
	if from != s.delivered {
		o.violationf("tcp-stream", "%s delivery from %d, want contiguous from %d", flow, from, s.delivered)
	}
	if to <= from {
		o.violationf("tcp-stream", "%s empty delivery [%d,%d)", flow, from, to)
		return
	}
	if to > s.maxSent {
		o.violationf("tcp-stream", "%s delivered [%d,%d) beyond sent coverage %d", flow, from, to, s.maxSent)
	}
	if to > s.delivered {
		s.delivered = to
	}
}

// --- packet.Observer: flowlets ---

// FlowletPick implements packet.Observer.
func (o *Oracle) FlowletPick(flow packet.FiveTuple, flowletID uint32, port uint16) {
	k := flowletKey{flow: flow, id: flowletID}
	if prev, ok := o.flowlets[k]; ok {
		if prev != port {
			o.violationf("flowlet", "%s flowlet %d switched outer port %d -> %d mid-flowlet", flow, flowletID, prev, port)
		}
		return
	}
	o.flowlets[k] = port
	if o.connCheck {
		o.checkConnConsistency(flow, port)
	}
}

// checkConnConsistency judges a new flowlet's port against the connection's
// previous one. A change is legal only if the previous port was absent from
// the pair's installed set at some install version since it was picked
// (including "absent right now" and "picked before any install"). The
// record is updated only when the port actually changes, so mid-run
// installs cannot launder a pinned port's age.
func (o *Oracle) checkConnConsistency(flow packet.FiveTuple, port uint16) {
	pk := pairKey{src: flow.Src, dst: flow.Dst}
	ps := o.pathSets[pk]
	version := 0
	if ps != nil {
		version = ps.version
		// A pick of a port outside the current set (fallback during a
		// withdrawal) is direct evidence the port is absent at this
		// version; record it so moving off it later stays legal.
		if !ps.present[port] && ps.lastAbsent[port] < version {
			ps.lastAbsent[port] = version
		}
	}
	prev, ok := o.conns[flow]
	if !ok {
		o.conns[flow] = connPick{port: port, version: version}
		return
	}
	if prev.port == port {
		return
	}
	if ps != nil && ps.present[prev.port] && ps.lastAbsent[prev.port] < prev.version {
		o.violationf("conn-consistency",
			"%s moved outer port %d -> %d while %d stayed installed since its pick (pick v%d, now v%d)",
			flow, prev.port, port, prev.port, prev.version, version)
	}
	o.conns[flow] = connPick{port: port, version: version}
}

// PolicyPaths implements packet.Observer: record the pair's new installed
// set and note which previously-present ports just left it.
func (o *Oracle) PolicyPaths(src, dst packet.HostID, ports []uint16) {
	pk := pairKey{src: src, dst: dst}
	ps := o.pathSets[pk]
	if ps == nil {
		ps = &pathSetState{present: map[uint16]bool{}, lastAbsent: map[uint16]int{}}
		o.pathSets[pk] = ps
	}
	ps.version++
	next := make(map[uint16]bool, len(ports))
	for _, p := range ports {
		next[p] = true
	}
	for p := range ps.present {
		if !next[p] {
			ps.lastAbsent[p] = ps.version
		}
	}
	ps.present = next
}

// Stats is a snapshot of what the oracle observed (tests, telemetry).
type Stats struct {
	PacketsCreated  int64
	PacketsReleased int64
	PacketsLive     int64
	Streams         int
	Flowlets        int
	Events          uint64
}

// Stats returns observation counters.
func (o *Oracle) Stats() Stats {
	return Stats{
		PacketsCreated:  o.created,
		PacketsReleased: o.released,
		PacketsLive:     o.live,
		Streams:         len(o.streams),
		Flowlets:        len(o.flowlets),
		Events:          o.events,
	}
}

var _ packet.Observer = (*Oracle)(nil)
