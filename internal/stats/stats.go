// Package stats aggregates flow-completion-time measurements into the
// metrics the paper reports: average FCT overall and by flow-size bucket,
// high percentiles, and CDFs.
package stats

import (
	"fmt"
	"math"
	"sort"

	"clove/internal/sim"
)

// Sample is one completed flow.
type Sample struct {
	Size int64    // flow size in bytes
	FCT  sim.Time // completion time (arrival to last byte acked)
}

// FCTRecorder collects flow completions.
type FCTRecorder struct {
	samples []Sample
	sorted  bool

	// sizeScale rescales the mice/elephant bucket cutoffs for runs whose
	// flow sizes were shrunk relative to the paper's distribution (a run at
	// SizeScale 0.1 calls a 1MB flow an "elephant" because it stands in for
	// a 10MB one). 0 means 1.
	sizeScale float64
}

// SetSizeScale declares the flow-size multiplier of the run feeding this
// recorder, so the <100KB and >10MB paper buckets scale with it.
func (r *FCTRecorder) SetSizeScale(s float64) { r.sizeScale = s }

func (r *FCTRecorder) scale() float64 {
	if r.sizeScale <= 0 {
		return 1
	}
	return r.sizeScale
}

// Add records a completion.
func (r *FCTRecorder) Add(size int64, fct sim.Time) {
	r.samples = append(r.samples, Sample{Size: size, FCT: fct})
	r.sorted = false
}

// Merge appends every sample of o, in o's insertion order. The sharded
// workload driver keeps one recorder per event domain and merges them in
// domain order, so the combined sample sequence — and with it every
// order-sensitive float summation downstream — is deterministic.
func (r *FCTRecorder) Merge(o *FCTRecorder) {
	r.samples = append(r.samples, o.samples...)
	r.sorted = false
}

// Count returns the number of samples.
func (r *FCTRecorder) Count() int { return len(r.samples) }

// Samples returns the raw samples (not a copy; treat as read-only).
func (r *FCTRecorder) Samples() []Sample { return r.samples }

// Mean returns the average FCT in seconds (0 with no samples).
func (r *FCTRecorder) Mean() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.samples {
		sum += s.FCT.Seconds()
	}
	return sum / float64(len(r.samples))
}

// Percentile returns the p-quantile (0 < p <= 1) of FCT in seconds using
// the nearest-rank method. It panics on an out-of-range p.
func (r *FCTRecorder) Percentile(p float64) float64 {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("stats: percentile %v out of (0,1]", p))
	}
	if len(r.samples) == 0 {
		return 0
	}
	r.ensureSorted()
	rank := int(math.Ceil(p*float64(len(r.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return r.samples[rank].FCT.Seconds()
}

// Filter returns a new recorder holding only samples with keep(size)=true.
func (r *FCTRecorder) Filter(keep func(size int64) bool) *FCTRecorder {
	out := &FCTRecorder{}
	for _, s := range r.samples {
		if keep(s.Size) {
			out.samples = append(out.samples, s)
		}
	}
	return out
}

// Mice returns samples under 100KB (the paper's small-flow bucket),
// rescaled by the run's size scale.
func (r *FCTRecorder) Mice() *FCTRecorder {
	cutoff := int64(100_000 * r.scale())
	out := r.Filter(func(size int64) bool { return size < cutoff })
	out.sizeScale = r.sizeScale
	return out
}

// Elephants returns samples over 10MB (the paper's large-flow bucket),
// rescaled by the run's size scale.
func (r *FCTRecorder) Elephants() *FCTRecorder {
	cutoff := int64(10_000_000 * r.scale())
	out := r.Filter(func(size int64) bool { return size > cutoff })
	out.sizeScale = r.sizeScale
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Seconds float64 // FCT
	P       float64 // cumulative probability
}

// CDF returns up to n evenly-spaced points of the empirical FCT CDF,
// always ending at P=1.
func (r *FCTRecorder) CDF(n int) []CDFPoint {
	if len(r.samples) == 0 || n <= 0 {
		return nil
	}
	r.ensureSorted()
	if n > len(r.samples) {
		n = len(r.samples)
	}
	out := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		idx := i*len(r.samples)/n - 1
		out = append(out, CDFPoint{
			Seconds: r.samples[idx].FCT.Seconds(),
			P:       float64(idx+1) / float64(len(r.samples)),
		})
	}
	return out
}

func (r *FCTRecorder) ensureSorted() {
	if r.sorted {
		return
	}
	sort.Slice(r.samples, func(i, j int) bool { return r.samples[i].FCT < r.samples[j].FCT })
	r.sorted = true
}

// MeanStderr aggregates one metric across independent replicates (e.g.
// the per-seed means of a grid point): it returns the sample mean and the
// standard error of that mean (sample stddev / sqrt(n)). With fewer than
// two replicates the stderr is 0. Summation runs in slice order, so a
// deterministic input order gives bit-identical results.
func MeanStderr(xs []float64) (mean, stderr float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	n := float64(len(xs))
	stderr = math.Sqrt(ss/(n-1)) / math.Sqrt(n)
	return mean, stderr
}

// Summary is a compact digest of a recorder, as printed in result tables.
type Summary struct {
	Count        int
	MeanSec      float64
	P50Sec       float64
	P95Sec       float64
	P99Sec       float64
	MiceMeanSec  float64 // flows < 100KB
	ElephMeanSec float64 // flows > 10MB
}

// Summarize digests the recorder.
func (r *FCTRecorder) Summarize() Summary {
	return Summary{
		Count:        len(r.samples),
		MeanSec:      r.Mean(),
		P50Sec:       r.Percentile(0.50),
		P95Sec:       r.Percentile(0.95),
		P99Sec:       r.Percentile(0.99),
		MiceMeanSec:  r.Mice().Mean(),
		ElephMeanSec: r.Elephants().Mean(),
	}
}

// String renders the summary as one table row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4fs p50=%.4fs p95=%.4fs p99=%.4fs mice=%.4fs eleph=%.4fs",
		s.Count, s.MeanSec, s.P50Sec, s.P95Sec, s.P99Sec, s.MiceMeanSec, s.ElephMeanSec)
}
