// Command benchreport runs the repository's hot-path and figure benchmarks
// in-process via testing.Benchmark, emits a machine-readable JSON baseline
// (BENCH_<n>.json), and optionally compares a fresh run against a committed
// baseline with a benchstat-style relative-mean gate.
//
// Two modes:
//
//	benchreport -out BENCH_4.json              # record a baseline
//	benchreport -baseline BENCH_4.json         # gate: exit 1 on >10% ns/op
//	                                           # regression of any gated bench
//
// Each benchmark is sampled -count times (default 3) and the mean ns/op is
// what the gate compares, damping single-sample scheduler noise the same way
// benchstat's mean-delta column does. Baselines are machine-specific: a
// committed baseline gates CI runners against each other, and local runs
// against a locally recorded file, not laptops against CI.
//
// Hot-path benches additionally hard-fail (regardless of -baseline) if they
// allocate: per-forwarded-hop and per-event allocations must be exactly 0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"clove/internal/experiments"
	"clove/internal/netem"
	"clove/internal/packet"
	"clove/internal/sim"
)

// Report is the BENCH_<n>.json schema.
type Report struct {
	Schema  int                     `json:"schema"`
	Go      string                  `json:"go"`
	Note    string                  `json:"note"`
	Benches map[string]*BenchResult `json:"benches"`
}

// BenchResult records one benchmark's samples and their mean.
type BenchResult struct {
	NsPerOp     float64   `json:"ns_per_op"` // mean across samples
	NsPerEvent  float64   `json:"ns_per_event,omitempty"`
	AllocsPerOp int64     `json:"allocs_per_op"`
	BytesPerOp  int64     `json:"bytes_per_op"`
	Samples     []float64 `json:"samples_ns_per_op"`
}

// benchSpec declares one benchmark: its body, how many simulator events one
// op corresponds to (0 = not meaningful), whether the zero-alloc contract
// applies, and whether the regression gate covers it.
type benchSpec struct {
	name            string
	run             func(b *testing.B)
	eventsPerOp     float64
	mustBeZeroAlloc bool
	gated           bool
}

// --- HotPathEventChain: the sim package's pooled scheduling path ---

type chainState struct {
	s    *sim.Simulator
	left int
}

func chainStep(a, _ any) {
	st := a.(*chainState)
	st.left--
	if st.left > 0 {
		st.s.AfterCall(sim.Microsecond, chainStep, st, nil)
	}
}

func runChain(s *sim.Simulator, st *chainState, n int) {
	st.left = n
	s.AfterCall(0, chainStep, st, nil)
	s.Run()
}

func benchEventChain(b *testing.B) {
	s := sim.New(1)
	st := &chainState{s: s}
	runChain(s, st, 100) // warm slab, heap, free list
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runChain(s, st, 100)
	}
}

// --- HotPathLinkSwitchLink: one forwarded packet hop through the fabric ---

func hotPathFabric() (*sim.Simulator, *netem.Topology, *netem.Host) {
	s := sim.New(1)
	t := netem.NewTopology(s)
	sw := t.AddSwitch("S")
	cfg := netem.LinkConfig{RateBps: 40e9, Delay: 2 * sim.Microsecond}
	src := t.AddHost("h0", sw, cfg, cfg)
	t.AddHost("h1", sw, cfg, cfg)
	t.ComputeRoutes()
	return s, t, src
}

func sendOne(s *sim.Simulator, t *netem.Topology, src *netem.Host) {
	pkt := t.Pool().Get()
	pkt.Kind = packet.KindData
	pkt.Inner = packet.FiveTuple{Src: 0, Dst: 1, SrcPort: 40000, DstPort: 80, Proto: packet.ProtoTCP}
	pkt.PayloadLen = 1460
	src.Send(pkt)
	s.Run()
}

func benchLinkSwitchLink(b *testing.B) {
	s, topo, src := hotPathFabric()
	sendOne(s, topo, src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sendOne(s, topo, src)
	}
}

// --- Fig6Quick: the parameter-sensitivity figure at quick scale ---

func benchFig6(b *testing.B) {
	sc := experiments.Quick()
	sc.Loads = []float64{0.7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig6(sc, nil)
	}
}

func specs() []benchSpec {
	return []benchSpec{
		// One op = a 100-event AfterCall chain; 4 events per forwarded hop
		// (2 serializations + 2 propagations) on the link-switch-link path.
		{name: "HotPathEventChain", run: benchEventChain, eventsPerOp: 100, mustBeZeroAlloc: true, gated: true},
		{name: "HotPathLinkSwitchLink", run: benchLinkSwitchLink, eventsPerOp: 4, mustBeZeroAlloc: true, gated: true},
		{name: "Fig6Quick", run: benchFig6, gated: true},
	}
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default: stdout)")
	baseline := flag.String("baseline", "", "compare against this baseline file and exit 1 on regression")
	threshold := flag.Float64("threshold", 0.10, "relative mean-ns/op regression gate (0.10 = +10%)")
	count := flag.Int("count", 3, "samples per benchmark")
	flag.Parse()

	rep := &Report{
		Schema:  1,
		Go:      runtime.Version(),
		Note:    "means of samples_ns_per_op; recorded by cmd/benchreport on a single machine — compare like against like",
		Benches: map[string]*BenchResult{},
	}

	failed := false
	for _, spec := range specs() {
		res := &BenchResult{}
		for i := 0; i < *count; i++ {
			r := testing.Benchmark(spec.run)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			res.Samples = append(res.Samples, ns)
			res.AllocsPerOp = r.AllocsPerOp()
			res.BytesPerOp = r.AllocedBytesPerOp()
		}
		var sum float64
		for _, s := range res.Samples {
			sum += s
		}
		res.NsPerOp = sum / float64(len(res.Samples))
		if spec.eventsPerOp > 0 {
			res.NsPerEvent = res.NsPerOp / spec.eventsPerOp
		}
		rep.Benches[spec.name] = res
		fmt.Fprintf(os.Stderr, "%-24s %12.1f ns/op  %8d allocs/op", spec.name, res.NsPerOp, res.AllocsPerOp)
		if res.NsPerEvent > 0 {
			fmt.Fprintf(os.Stderr, "  %8.1f ns/event", res.NsPerEvent)
		}
		fmt.Fprintln(os.Stderr)
		if spec.mustBeZeroAlloc && res.AllocsPerOp != 0 {
			fmt.Fprintf(os.Stderr, "FAIL: %s allocates %d allocs/op, contract is exactly 0\n", spec.name, res.AllocsPerOp)
			failed = true
		}
	}

	if *baseline != "" {
		base, err := readReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: read baseline: %v\n", err)
			os.Exit(2)
		}
		if compare(base, rep, *threshold) {
			failed = true
		}
	}

	if err := writeReport(rep, *out); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func writeReport(rep *Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// compare prints a benchstat-style old/new/delta table for every gated
// bench present in both reports and reports whether any regressed past the
// threshold. Improvements and in-tolerance drift pass.
func compare(base, cur *Report, threshold float64) (regressed bool) {
	fmt.Fprintf(os.Stderr, "\n%-24s %14s %14s %8s\n", "name", "old ns/op", "new ns/op", "delta")
	for _, spec := range specs() {
		if !spec.gated {
			continue
		}
		b, okB := base.Benches[spec.name]
		c, okC := cur.Benches[spec.name]
		if !okB || !okC {
			fmt.Fprintf(os.Stderr, "%-24s missing from %s\n", spec.name,
				map[bool]string{true: "current run", false: "baseline"}[okB])
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := ""
		if delta > threshold {
			verdict = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(os.Stderr, "%-24s %14.1f %14.1f %+7.1f%%%s\n",
			spec.name, b.NsPerOp, c.NsPerOp, delta*100, verdict)
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "\nFAIL: mean ns/op regressed more than %.0f%% on a gated bench\n", threshold*100)
	}
	return regressed
}
