// Package scenarios embeds the repository's named scenario library: one
// JSON spec per file, loaded and validated by internal/scenario. Add a
// scenario by dropping a new .json here (the spec's name conventionally
// matches the filename) and regenerating its golden with
// `go test -run TestScenarioGoldens -update`.
package scenarios

import "embed"

// FS holds every shipped scenario spec.
//
//go:embed *.json
var FS embed.FS
