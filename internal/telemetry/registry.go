// Package telemetry is the opt-in metrics and tracing subsystem. It has two
// halves:
//
//   - A counter/gauge Registry. Components resolve typed handles by name at
//     wiring time (SetTrace on a link, a sender, a vswitch); the hot path
//     then touches only the handle pointer — no map lookup, no interface
//     dispatch. Handles are nil-safe: with telemetry disabled every handle
//     is nil and an increment is a single predictable branch, the same
//     disabled-cost contract as packet.Observer (see internal/oracle).
//
//   - A time-series Tracer recording sampled streams — link queue occupancy
//     and ECN marks, per-destination path weights and congestion ages, TCP
//     cwnd/ssthresh/RTO and retransmit events, flowlet sizes and inter-gap
//     times, per-job FCTs, and event-engine load — into bounded per-stream
//     ring buffers, exported as JSONL and CSV.
//
// Everything is deterministic: records carry only simulated time, streams
// are appended in event order, and export formats numbers with strconv, so
// a trace directory is byte-identical for the same seed at any worker count.
package telemetry

import "sort"

// Counter is a monotonically increasing run-level metric. The zero handle
// (nil) is the disabled state: Add and Inc are no-ops costing one nil check.
type Counter struct {
	name string
	v    int64
}

// Add increments the counter by n. Safe on a nil (disabled) handle.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc increments the counter by one. Safe on a nil (disabled) handle.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Name returns the registry name ("" on a nil handle).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a last-value-wins run-level metric.
type Gauge struct {
	name string
	v    float64
}

// Set records the gauge value. Safe on a nil (disabled) handle.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the last set value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Name returns the registry name ("" on a nil handle).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Registry owns the named counters and gauges of one run. Lookup happens at
// wiring time only; the same name always resolves to the same handle, so
// components sharing a name (every link's ECN-mark counter, say) aggregate
// into one metric.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// Counter resolves (creating on first use) the counter named name.
func (r *Registry) Counter(name string) *Counter {
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge resolves (creating on first use) the gauge named name.
func (r *Registry) Gauge(name string) *Gauge {
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// VisitSorted calls the callbacks for every counter and gauge in ascending
// name order (export and tests; the order makes output deterministic).
func (r *Registry) VisitSorted(counter func(*Counter), gauge func(*Gauge)) {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		counter(r.counters[n])
	}
	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		gauge(r.gauges[n])
	}
}
