package clove

import (
	"runtime"
	"testing"

	"clove/internal/cluster"
	"clove/internal/experiments"
	"clove/internal/netem"
	"clove/internal/sim"
)

// The benchmarks below regenerate every evaluation artifact of the paper at
// QuickScale (see EXPERIMENTS.md for paper-vs-measured tables at larger
// scales). Each reports the figure's headline metric via b.ReportMetric so
// `go test -bench=.` output doubles as a miniature results table.

func reportTopLoad(b *testing.B, rows []experiments.Row) {
	b.Helper()
	var maxLoad float64
	for _, r := range rows {
		if r.Load > maxLoad {
			maxLoad = r.Load
		}
	}
	for _, r := range rows {
		if r.Load == maxLoad && r.MeanFCTSec > 0 {
			name := r.Scheme
			if r.Variant != "" {
				name = r.Variant
			}
			b.ReportMetric(r.MeanFCTSec*1000, "msFCT:"+metricSafe(name))
		}
	}
}

// metricSafe strips characters testing.B.ReportMetric rejects in units.
func metricSafe(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '\t':
			out = append(out, '_')
		case '(', ')', ',':
			// drop
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func BenchmarkFig4b_SymmetricAvgFCT(b *testing.B) {
	b.ReportAllocs()
	sc := experiments.Quick()
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig4b(sc, nil)
	}
	reportTopLoad(b, rows)
}

func BenchmarkFig4c_AsymmetricAvgFCT(b *testing.B) {
	b.ReportAllocs()
	sc := experiments.Quick()
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig4c(sc, nil)
	}
	reportTopLoad(b, rows)
}

func BenchmarkFig5a_MiceFCT(b *testing.B) {
	b.ReportAllocs()
	sc := experiments.Quick()
	sc.Loads = []float64{0.7} // the breakdown figure's interesting point
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig5a(sc, nil)
	}
	for _, r := range rows {
		b.ReportMetric(r.MiceFCTSec*1000, "msMice:"+r.Scheme)
	}
}

func BenchmarkFig5b_ElephantFCT(b *testing.B) {
	b.ReportAllocs()
	sc := experiments.Quick()
	sc.Loads = []float64{0.7}
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig5b(sc, nil)
	}
	for _, r := range rows {
		b.ReportMetric(r.ElephFCTSec*1000, "msEleph:"+r.Scheme)
	}
}

func BenchmarkFig5c_P99FCT(b *testing.B) {
	b.ReportAllocs()
	sc := experiments.Quick()
	sc.Loads = []float64{0.7}
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig5c(sc, nil)
	}
	for _, r := range rows {
		b.ReportMetric(r.P99FCTSec*1000, "msP99:"+r.Scheme)
	}
}

func BenchmarkFig6_ParamSensitivity(b *testing.B) {
	b.ReportAllocs()
	sc := experiments.Quick()
	sc.Loads = []float64{0.7}
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig6(sc, nil)
	}
	reportTopLoad(b, rows)
}

func BenchmarkFig7_Incast(b *testing.B) {
	b.ReportAllocs()
	sc := experiments.Quick()
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig7(sc, nil)
	}
	for _, r := range rows {
		if r.Fanout == 3 { // the largest fanout at quick scale
			b.ReportMetric(r.GoodputBps/1e9, "gbps:"+r.Scheme)
		}
	}
}

func BenchmarkFig8a_SimSymmetric(b *testing.B) {
	b.ReportAllocs()
	sc := experiments.Quick()
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig8a(sc, nil)
	}
	reportTopLoad(b, rows)
}

func BenchmarkFig8b_SimAsymmetric(b *testing.B) {
	b.ReportAllocs()
	sc := experiments.Quick()
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig8b(sc, nil)
	}
	reportTopLoad(b, rows)
}

func BenchmarkFig9_MiceCDF(b *testing.B) {
	b.ReportAllocs()
	sc := experiments.Quick()
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig9(sc, nil)
	}
	for _, r := range rows {
		b.ReportMetric(r.P99FCTSec*1000, "msMiceP99:"+r.Scheme)
	}
}

func BenchmarkHeadlineSummary(b *testing.B) {
	b.ReportAllocs()
	sc := experiments.Quick()
	var h experiments.HeadlineResult
	for i := 0; i < b.N; i++ {
		h = experiments.Summary(sc, 0.7, nil)
	}
	b.ReportMetric(h.CloveVsECMP, "xCloveVsECMP")
	b.ReportMetric(h.EdgeFlowletVsECMP, "xEdgeFlowletVsECMP")
	b.ReportMetric(h.CloveECNGainCapture*100, "pctGainCaptureECN")
	b.ReportMetric(h.CloveINTGainCapture*100, "pctGainCaptureINT")
}

// --- Ablation benches (design choices beyond the paper's figures) ---

func ablationRun(b *testing.B, mutate func(*cluster.Config)) float64 {
	b.Helper()
	var mean float64
	for _, seed := range []int64{1, 2} {
		cfg := cluster.Config{
			Seed: seed, Topo: netem.ScaledTestbed(1.0, 4),
			Scheme: cluster.SchemeCloveECN, AsymmetricFailure: true,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		c := cluster.New(cfg)
		c.RunWebSearch(cluster.WebSearchParams{
			Load: 0.7, TotalJobs: 1000, SizeScale: 0.1, MaxSimTime: 300 * sim.Second,
		})
		mean += c.Recorder.Mean() / 2
	}
	return mean
}

// BenchmarkAblationBeta sweeps the weight-reduction fraction (Sec. 3.2
// suggests "e.g., by a third").
func BenchmarkAblationBeta(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, beta := range []float64{0.125, 1.0 / 3.0, 0.5} {
			beta := beta
			mean := ablationRun(b, func(cfg *cluster.Config) { cfg.Beta = beta })
			b.ReportMetric(mean*1000, "msFCT:beta="+fmtFloat(beta))
		}
	}
}

// BenchmarkAblationRelayFreq sweeps the ECN relay interval around the
// paper's RTT/2 recommendation.
func BenchmarkAblationRelayFreq(b *testing.B) {
	b.ReportAllocs()
	rtt := netem.BuildLeafSpine(sim.New(0), netem.ScaledTestbed(1.0, 4)).BaseRTT()
	for i := 0; i < b.N; i++ {
		for _, mult := range []float64{0.25, 0.5, 2, 4} {
			mult := mult
			mean := ablationRun(b, func(cfg *cluster.Config) {
				cfg.RelayInterval = sim.Time(float64(rtt) * mult)
			})
			b.ReportMetric(mean*1000, "msFCT:relay="+fmtFloat(mult)+"xRTT")
		}
	}
}

// BenchmarkAblationPathCount sweeps the number of discovered disjoint paths
// k (Sec. 3.1 picks k from the probe results).
func BenchmarkAblationPathCount(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, k := range []int{2, 3, 4} {
			k := k
			mean := ablationRun(b, func(cfg *cluster.Config) { cfg.PathsK = k })
			b.ReportMetric(mean*1000, "msFCT:k="+fmtInt(k))
		}
	}
}

// BenchmarkAblationFlowletGap reproduces the gap sensitivity at finer grain
// than Fig. 6.
func BenchmarkAblationFlowletGap(b *testing.B) {
	b.ReportAllocs()
	rtt := netem.BuildLeafSpine(sim.New(0), netem.ScaledTestbed(1.0, 4)).BaseRTT()
	for i := 0; i < b.N; i++ {
		for _, mult := range []float64{0.5, 1, 2, 4} {
			mult := mult
			mean := ablationRun(b, func(cfg *cluster.Config) {
				cfg.FlowletGap = sim.Time(float64(rtt) * mult)
			})
			b.ReportMetric(mean*1000, "msFCT:gap="+fmtFloat(mult)+"xRTT")
		}
	}
}

// BenchmarkAblationProberVsOracle verifies real traceroute discovery costs
// nothing measurable vs the oracle installation.
func BenchmarkAblationProberVsOracle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, prober := range []bool{false, true} {
			prober := prober
			mean := ablationRun(b, func(cfg *cluster.Config) { cfg.UseProber = prober })
			name := "oracle"
			if prober {
				name = "prober"
			}
			b.ReportMetric(mean*1000, "msFCT:"+name)
		}
	}
}

// --- Parallel runner benches ---
//
// The same Fig. 8a sweep at fixed worker counts: comparing J1 against J4
// / JMax measures the concurrent runner's speedup on this machine (the
// figure tables themselves are byte-identical at every -j). On a 1-core
// runner all three converge; the >= 2x J4-vs-J1 target applies to
// multi-core hardware.

func benchSweepAtJ(b *testing.B, workers int) {
	b.ReportAllocs()
	b.Helper()
	sc := experiments.Quick()
	sc.Parallelism = workers
	for i := 0; i < b.N; i++ {
		experiments.Fig8a(sc, nil)
	}
}

func BenchmarkSweepJ1(b *testing.B)   { benchSweepAtJ(b, 1) }
func BenchmarkSweepJ4(b *testing.B)   { benchSweepAtJ(b, 4) }
func BenchmarkSweepJMax(b *testing.B) { benchSweepAtJ(b, runtime.GOMAXPROCS(0)) }

// BenchmarkSimulatorThroughput measures raw simulator speed: events per
// second on a loaded fabric (engineering metric, not a paper figure).
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		c := cluster.New(cluster.Config{
			Seed: 1, Topo: netem.ScaledTestbed(1.0, 4), Scheme: cluster.SchemeCloveECN,
		})
		c.RunWebSearch(cluster.WebSearchParams{
			Load: 0.5, TotalJobs: 500, SizeScale: 0.1, MaxSimTime: 300 * sim.Second,
		})
		events += c.Sim.Processed()
		b.ReportMetric(float64(c.Sim.Processed()), "events/run")
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

func fmtFloat(f float64) string {
	switch {
	case f == 0.125:
		return "0.125"
	case f == 0.25:
		return "0.25"
	case f == 0.5:
		return "0.5"
	case f == 1.0/3.0:
		return "0.33"
	default:
		if f == float64(int(f)) {
			return fmtInt(int(f))
		}
		return "x"
	}
}

func fmtInt(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}
